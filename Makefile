GO ?= go

.PHONY: test test-race chaos-race crash-matrix migrate-matrix fuzz-short vet lint lint-determinism sanitize bench-smoke golden-trace obs-golden ci

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# The bank chaos matrix under the race detector: fault injection + retries +
# dedup exercise every cross-node locking path, which is exactly where a
# data race would hide.
chaos-race:
	$(GO) test -race ./internal/chaos -run TestBankChaosMatrix

# Durability proofs under the race detector: the crash-point sweep (kill the
# disk at every WAL/checkpoint write boundary, replay, diff against the
# model), the replay-convergence property test, and the process-crash chaos
# cells (crash-restart-disk, crash-lose-disk) for bank and TPC-C.
crash-matrix:
	$(GO) test -race ./internal/crashtest
	$(GO) test -race ./internal/chaos -run 'DurableChaosMatrix'

# Live-migration proofs under the race detector: the journal boundary
# sweep (crash the management node at every journal-write durability
# boundary of a migration, in Lost and Applied variants; the range must end
# on exactly one owner), plus the kill-source / kill-target /
# kill-manager-at-cutover chaos cells for bank and TPC-C under histcheck.
migrate-matrix:
	$(GO) test -race ./internal/crashtest -run TestMigrationJournalBoundarySweep
	$(GO) test -race ./internal/chaos -run 'MigrationChaos'

# Short continuous-fuzzing session for the wire codecs; the regular test
# run only replays the corpus.
fuzz-short:
	$(GO) test ./internal/wire -run=Fuzz -fuzz=FuzzRoundTrip -fuzztime=10s

vet:
	$(GO) vet ./...

# tellvet: the determinism-and-concurrency analyzer suite (see DESIGN.md
# §6 and §9). Exits non-zero on any unsuppressed finding.
lint:
	$(GO) run ./cmd/tellvet ./...

# The analyzer suite must itself be deterministic: two runs over identical
# inputs produce byte-identical summaries (package counts, per-analyzer
# finding/suppression counts). Any map-order or load-order nondeterminism
# in the analyzers shows up here as a diff.
lint-determinism:
	$(GO) run ./cmd/tellvet -summary ./... > /tmp/tellvet-sum-a.txt
	$(GO) run ./cmd/tellvet -summary ./... > /tmp/tellvet-sum-b.txt
	cmp /tmp/tellvet-sum-a.txt /tmp/tellvet-sum-b.txt
	rm -f /tmp/tellvet-sum-a.txt /tmp/tellvet-sum-b.txt

# Runtime sanitizer smoke: the telldebug build tag swaps every engine mutex
# for the instrumented internal/sanitize variant (acquisition-order graph,
# inversion detection, long-hold watchdog), and each suite's TestMain fails
# the package on leaked goroutines or recorded inversions. The bank chaos
# cell is the densest cross-node locking path, so it runs under the race
# detector with the sanitizers armed.
sanitize:
	$(GO) test -race -tags telldebug ./internal/sanitize
	$(GO) test -race -tags telldebug ./internal/chaos -run TestBankChaosMatrix

# Allocation guards for the pooled wire hot path: the AllocsPerRun tests
# pin encode/decode at zero steady-state allocations, and every benchmark
# runs for one iteration so a broken hot path fails fast in CI.
bench-smoke:
	$(GO) test ./internal/wire -run 'ZeroAlloc|PutBufRejects' -bench . -benchtime 1x

# Golden-trace determinism: the same seed must produce byte-identical
# trace files across two independent small TPC-C runs.
golden-trace:
	TELL_SEED=7 $(GO) run ./cmd/tellbench -wh 2 -scale 0.02 -warmup 20 -measure 150 -trace /tmp/tell-trace-a.json
	TELL_SEED=7 $(GO) run ./cmd/tellbench -wh 2 -scale 0.02 -warmup 20 -measure 150 -trace /tmp/tell-trace-b.json
	cmp /tmp/tell-trace-a.json /tmp/tell-trace-b.json
	rm -f /tmp/tell-trace-a.json /tmp/tell-trace-b.json

# Telemetry determinism: two same-seed runs must render byte-identical
# telemetry (series windows, heat rows, breaches, flight captures) and the
# Prometheus exposition must match its golden (see internal/obs tests).
obs-golden:
	$(GO) test ./internal/exp -run TestObsGoldenDeterminism -count=1
	$(GO) test ./internal/obs -run 'TestPromGolden|TestDeterministicDump' -count=1

# Everything CI runs, in order (race on the fast packages only).
ci:
	$(GO) build ./...
	$(GO) test ./...
	$(GO) test -race ./internal/wire ./internal/env ./internal/sim \
		./internal/metrics ./internal/btree ./internal/lint
	$(MAKE) chaos-race
	$(MAKE) crash-matrix
	$(MAKE) migrate-matrix
	$(GO) vet ./...
	$(MAKE) lint
	$(MAKE) lint-determinism
	$(MAKE) sanitize
	$(GO) test ./internal/wire -run=FuzzRoundTrip
	$(MAKE) bench-smoke
	$(MAKE) golden-trace
	$(MAKE) obs-golden
