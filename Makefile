GO ?= go

.PHONY: test test-race fuzz-short vet

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# Short continuous-fuzzing session for the wire codecs; the regular test
# run only replays the corpus.
fuzz-short:
	$(GO) test ./internal/wire -run=Fuzz -fuzz=FuzzRoundTrip -fuzztime=10s

vet:
	$(GO) vet ./...
