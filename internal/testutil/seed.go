// Package testutil holds helpers shared by the repository's test suites.
package testutil

import (
	"os"
	"strconv"
	"testing"

	"tell/internal/env"
)

// SeedEnv is the environment variable that overrides every sim-based
// test's RNG seed, replaying a failure deterministically:
//
//	TELL_SEED=12345 go test ./internal/chaos -run TestName
const SeedEnv = env.SeedEnv

// Seed returns the simulation seed for a test: $TELL_SEED when set,
// otherwise def. Whatever the source, a failing test logs the seed so the
// exact run — kernel event order, fault schedule, message casualties —
// replays with TELL_SEED=<seed>.
func Seed(t testing.TB, def int64) int64 {
	t.Helper()
	seed := def
	if s := os.Getenv(SeedEnv); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("testutil: bad %s=%q: %v", SeedEnv, s, err)
		}
		seed = v
		t.Logf("testutil: seed %d from %s", seed, SeedEnv)
	}
	t.Cleanup(func() {
		if t.Failed() {
			t.Logf("testutil: replay this failure with %s=%d", SeedEnv, seed)
		}
	})
	return seed
}
