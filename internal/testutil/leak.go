package testutil

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"tell/internal/sanitize"
)

// TestingM is the subset of *testing.M that Main needs; a named interface
// keeps this file importable from non-test code without dragging testing
// into the build graph of packages that only want Seed.
type TestingM interface {
	Run() int
}

// Main is a drop-in TestMain body that turns two whole-package invariants
// into test failures:
//
//   - No leaked goroutines: after the package's tests finish, every
//     goroutine they spawned must have exited (modulo the runtime's and
//     testing's own). A lingering accept loop, kernel process, or retry
//     ticker fails the package and dumps the offending stacks.
//   - No lock-order inversions: under -tags telldebug the instrumented
//     mutexes in internal/sanitize record the acquisition-order graph;
//     any inversion observed during the run fails the package even if no
//     deadlock actually fired.
//
// Use it as:
//
//	func TestMain(m *testing.M) { testutil.Main(m) }
func Main(m TestingM) {
	code := m.Run()
	if code == 0 {
		if leaked := settle(5 * time.Second); len(leaked) > 0 {
			fmt.Fprintf(os.Stderr, "testutil: %d goroutine(s) leaked by this package's tests:\n\n%s\n",
				len(leaked), strings.Join(leaked, "\n\n"))
			code = 1
		}
	}
	if code == 0 && sanitize.Enabled {
		for _, inv := range sanitize.Inversions() {
			fmt.Fprintf(os.Stderr,
				"testutil: lock-order inversion: acquired %q while holding %q\n--- acquisition ---\n%s\n--- prior reverse-order acquisition ---\n%s\n",
				inv.Taking, inv.Held, inv.Stack, inv.PriorStack)
			code = 1
		}
	}
	os.Exit(code)
}

// settle polls the goroutine dump until only benign goroutines remain or
// the deadline passes, returning the stacks still alive. The grace period
// absorbs teardown in flight when the last test returns — closed listeners
// unwinding accept loops, killed sim processes draining — without hiding
// genuine leaks, which by definition never exit.
func settle(deadline time.Duration) []string {
	start := time.Now()
	for {
		leaked := leakedGoroutines()
		if len(leaked) == 0 || time.Since(start) > deadline {
			return leaked
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// benignMarkers identify goroutines that legitimately outlive the tests:
// the goroutine running this checker, testing's own machinery, and the
// runtime/os helpers Go starts on demand. runtime.Stack already excludes
// system goroutines (GC workers etc.), so the list is short.
var benignMarkers = []string{
	"tell/internal/testutil.leakedGoroutines", // this checker itself
	"testing.(*M).Run",
	"testing.runTests",
	"testing.(*T).Run",      // parent test blocked in t.Parallel bookkeeping
	"os/signal.signal_recv", // signal handling, started on demand
	"os/signal.loop",
	"runtime.ensureSigM",
	"runtime.ReadTrace", // -trace support
}

func leakedGoroutines() []string {
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	for n == len(buf) {
		buf = make([]byte, 2*len(buf))
		n = runtime.Stack(buf, true)
	}
	var leaked []string
	for _, g := range strings.Split(string(buf[:n]), "\n\n") {
		if g == "" || benign(g) {
			continue
		}
		leaked = append(leaked, g)
	}
	return leaked
}

func benign(stack string) bool {
	for _, m := range benignMarkers {
		if strings.Contains(stack, m) {
			return true
		}
	}
	return false
}
