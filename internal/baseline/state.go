// Package baseline provides the shared substrate of the three comparison
// systems the paper evaluates against (§6.4/6.5): a native in-memory TPC-C
// state representation and the five transactions as stored procedures over
// it. The partitioned engines (voltlike, ndblike) and the shared-data
// baseline (fdblike) differ in *how* they mediate access to this state —
// serial single-threaded partitions, row locks with two-phase commit, or a
// central optimistic resolver — which is exactly the architectural axis the
// paper's comparison isolates.
package baseline

import (
	"math/rand"

	"tell/internal/tpcc"
)

// Customer is one customer row.
type Customer struct {
	ID          int
	First, Last string
	Credit      string
	Discount    float64
	Balance     float64
	YtdPayment  float64
	PaymentCnt  int
	DeliveryCnt int
	Data        string
}

// Order is one order with its lines.
type Order struct {
	ID       int64
	C        int
	EntryD   int64
	Carrier  int64
	AllLocal bool
	Lines    []OrderLine
}

// OrderLine is one order line.
type OrderLine struct {
	ItemID    int
	SupplyW   int
	Quantity  int
	Amount    float64
	DeliveryD int64
}

// District is one district's state, including its order book.
type District struct {
	ID     int
	Tax    float64
	Ytd    float64
	NextO  int64
	Orders map[int64]*Order
	// Open is the FIFO of undelivered order ids (the new-order table).
	Open []int64
	// LastOrder maps customer id → most recent order id.
	LastOrder map[int]int64
	Customers []*Customer // index c-1
	// ByLast maps last name → customer ids (sorted by first name at use).
	ByLast map[string][]int
}

// Stock is one stock row.
type Stock struct {
	Quantity  int
	Ytd       int
	OrderCnt  int
	RemoteCnt int
}

// Warehouse is the full native state of one TPC-C warehouse.
type Warehouse struct {
	W         int
	Tax       float64
	Ytd       float64
	Districts [tpcc.DistrictsPerWarehouse]*District
	Stock     []Stock // index item-1
	Payments  int
}

// Item is one row of the shared item table.
type Item struct {
	Price float64
}

// Dataset is a populated native TPC-C database.
type Dataset struct {
	Cfg        tpcc.Config
	Items      []Item // index item-1
	Warehouses map[int]*Warehouse
}

// NewDataset populates warehouses [1..cfg.Warehouses].
func NewDataset(cfg tpcc.Config) *Dataset {
	rng := rand.New(rand.NewSource(cfg.Seed))
	ds := &Dataset{Cfg: cfg, Warehouses: make(map[int]*Warehouse)}
	for i := 0; i < cfg.Items(); i++ {
		ds.Items = append(ds.Items, Item{Price: 1 + float64(rng.Intn(9900))/100})
	}
	for w := 1; w <= cfg.Warehouses; w++ {
		ds.Warehouses[w] = newWarehouse(cfg, w, rng)
	}
	return ds
}

func newWarehouse(cfg tpcc.Config, w int, rng *rand.Rand) *Warehouse {
	wh := &Warehouse{W: w, Tax: float64(rng.Intn(2000)) / 10000, Ytd: 300000}
	wh.Stock = make([]Stock, cfg.Items())
	for i := range wh.Stock {
		wh.Stock[i] = Stock{Quantity: 10 + rng.Intn(91)}
	}
	nCust := cfg.CustomersPerDistrict()
	nOrd := cfg.OrdersPerDistrict()
	for d := 0; d < tpcc.DistrictsPerWarehouse; d++ {
		dist := &District{
			ID:        d + 1,
			Tax:       float64(rng.Intn(2000)) / 10000,
			Ytd:       30000,
			NextO:     int64(nOrd + 1),
			Orders:    make(map[int64]*Order),
			LastOrder: make(map[int]int64),
			ByLast:    make(map[string][]int),
		}
		for c := 1; c <= nCust; c++ {
			lastNum := (c - 1) % 1000
			credit := "GC"
			if rng.Intn(10) == 0 {
				credit = "BC"
			}
			cust := &Customer{
				ID:         c,
				First:      randName(rng),
				Last:       tpcc.LastName(lastNum),
				Credit:     credit,
				Discount:   float64(rng.Intn(5000)) / 10000,
				Balance:    -10,
				YtdPayment: 10,
				PaymentCnt: 1,
			}
			dist.Customers = append(dist.Customers, cust)
			dist.ByLast[cust.Last] = append(dist.ByLast[cust.Last], c)
		}
		perm := rng.Perm(nCust)
		deliveredUpTo := nOrd * 7 / 10
		for o := 1; o <= nOrd; o++ {
			ord := &Order{ID: int64(o), C: perm[o-1] + 1, AllLocal: true}
			if o <= deliveredUpTo {
				ord.Carrier = int64(1 + rng.Intn(10))
			} else {
				dist.Open = append(dist.Open, int64(o))
			}
			n := 5 + rng.Intn(11)
			for l := 0; l < n; l++ {
				ol := OrderLine{
					ItemID:   1 + rng.Intn(cfg.Items()),
					SupplyW:  w,
					Quantity: 5,
				}
				if o <= deliveredUpTo {
					ol.DeliveryD = 1
				} else {
					ol.Amount = float64(1+rng.Intn(999899)) / 100
				}
				ord.Lines = append(ord.Lines, ol)
			}
			dist.Orders[int64(o)] = ord
			dist.LastOrder[ord.C] = int64(o)
		}
		wh.Districts[d] = dist
	}
	return wh
}

func randName(rng *rand.Rand) string {
	const chars = "abcdefghijklmnopqrstuvwxyz"
	b := make([]byte, 6+rng.Intn(4))
	for i := range b {
		b[i] = chars[rng.Intn(len(chars))]
	}
	return string(b)
}
