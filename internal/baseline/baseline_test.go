package baseline_test

import (
	"math/rand"
	"testing"

	"tell/internal/baseline"
	"tell/internal/tpcc"
)

func cfg() tpcc.Config { return tpcc.Config{Warehouses: 2, Scale: 0.02, Seed: 3} }

func TestDatasetShapes(t *testing.T) {
	c := cfg()
	ds := baseline.NewDataset(c)
	if len(ds.Items) != c.Items() {
		t.Fatalf("items = %d", len(ds.Items))
	}
	if len(ds.Warehouses) != 2 {
		t.Fatalf("warehouses = %d", len(ds.Warehouses))
	}
	wh := ds.Warehouses[1]
	if len(wh.Stock) != c.Items() {
		t.Fatalf("stock = %d", len(wh.Stock))
	}
	d := wh.Districts[0]
	if len(d.Customers) != c.CustomersPerDistrict() {
		t.Fatalf("customers = %d", len(d.Customers))
	}
	if d.NextO != int64(c.OrdersPerDistrict()+1) {
		t.Fatalf("nextO = %d", d.NextO)
	}
	if len(d.Open) != c.OrdersPerDistrict()-c.OrdersPerDistrict()*7/10 {
		t.Fatalf("open = %d", len(d.Open))
	}
}

func TestNewOrderProcedure(t *testing.T) {
	ds := baseline.NewDataset(cfg())
	before := ds.Warehouses[1].Districts[0].NextO
	res := baseline.NewOrder(ds, &tpcc.NewOrderInput{
		W: 1, D: 1, C: 1,
		Items: []tpcc.OrderItem{{ItemID: 1, SupplyW: 1, Quantity: 3}, {ItemID: 2, SupplyW: 2, Quantity: 1}},
	})
	if !res.OK {
		t.Fatal("neworder failed")
	}
	d := ds.Warehouses[1].Districts[0]
	if d.NextO != before+1 {
		t.Fatalf("nextO = %d", d.NextO)
	}
	ord := d.Orders[before]
	if ord == nil || len(ord.Lines) != 2 {
		t.Fatalf("order = %+v", ord)
	}
	// Remote stock updated in warehouse 2.
	if ds.Warehouses[2].Stock[1].RemoteCnt != 1 {
		t.Fatal("remote stock count not bumped")
	}
	// Read/write sets include the district and both stocks.
	r, w := res.RowAccessCount()
	if w != 3 || r != 2 {
		t.Fatalf("accesses: %d reads %d writes", r, w)
	}
}

func TestNewOrderInvalidItemLeavesNoTrace(t *testing.T) {
	ds := baseline.NewDataset(cfg())
	before := ds.Warehouses[1].Districts[0].NextO
	res := baseline.NewOrder(ds, &tpcc.NewOrderInput{
		W: 1, D: 1, C: 1, InvalidItem: true,
		Items: []tpcc.OrderItem{{ItemID: 1, SupplyW: 1, Quantity: 3}, {ItemID: 2, SupplyW: 1, Quantity: 1}},
	})
	if res.OK {
		t.Fatal("invalid item committed")
	}
	if ds.Warehouses[1].Districts[0].NextO != before {
		t.Fatal("district sequence leaked")
	}
	if ds.Warehouses[1].Stock[0].OrderCnt != 0 {
		t.Fatal("stock mutated before validation")
	}
}

func TestPaymentAndDelivery(t *testing.T) {
	ds := baseline.NewDataset(cfg())
	res := baseline.Payment(ds, &tpcc.PaymentInput{W: 1, D: 1, CW: 1, CD: 1, C: 3, Amount: 10})
	if !res.OK {
		t.Fatal("payment failed")
	}
	if ds.Warehouses[1].Ytd != 300010 {
		t.Fatalf("w_ytd = %v", ds.Warehouses[1].Ytd)
	}
	if ds.Warehouses[1].Districts[0].Customers[2].Balance != -20 {
		t.Fatalf("balance = %v", ds.Warehouses[1].Districts[0].Customers[2].Balance)
	}
	// By last name.
	res = baseline.Payment(ds, &tpcc.PaymentInput{
		W: 1, D: 2, CW: 1, CD: 2, ByLastName: true, CLast: tpcc.LastName(0), Amount: 5,
	})
	if !res.OK {
		t.Fatal("payment by last name failed")
	}
	// Delivery consumes one open order per district.
	open := len(ds.Warehouses[1].Districts[0].Open)
	res = baseline.Delivery(ds, &tpcc.DeliveryInput{W: 1, Carrier: 2})
	if !res.OK {
		t.Fatal("delivery failed")
	}
	if len(ds.Warehouses[1].Districts[0].Open) != open-1 {
		t.Fatal("open order not consumed")
	}
}

func TestReadOnlyProcedures(t *testing.T) {
	ds := baseline.NewDataset(cfg())
	if res := baseline.OrderStatus(ds, &tpcc.OrderStatusInput{W: 1, D: 1, C: 1}); !res.OK {
		t.Fatal("orderstatus failed")
	}
	res := baseline.StockLevel(ds, &tpcc.StockLevelInput{W: 1, D: 1, Threshold: 20})
	if !res.OK {
		t.Fatal("stocklevel failed")
	}
	r, w := res.RowAccessCount()
	if w != 0 || r < 10 {
		t.Fatalf("stocklevel accesses: %d reads %d writes", r, w)
	}
}

func TestWarehousesOf(t *testing.T) {
	in := &tpcc.NewOrderInput{W: 1, Items: []tpcc.OrderItem{{SupplyW: 1}, {SupplyW: 3}, {SupplyW: 1}}}
	ws := baseline.WarehousesOf(tpcc.TxNewOrder, in)
	if len(ws) != 2 || ws[0] != 1 || ws[1] != 3 {
		t.Fatalf("ws = %v", ws)
	}
	pin := &tpcc.PaymentInput{W: 2, CW: 5}
	ws = baseline.WarehousesOf(tpcc.TxPayment, pin)
	if len(ws) != 2 || ws[0] != 2 || ws[1] != 5 {
		t.Fatalf("ws = %v", ws)
	}
	if ws := baseline.WarehousesOf(tpcc.TxDelivery, &tpcc.DeliveryInput{W: 7}); len(ws) != 1 || ws[0] != 7 {
		t.Fatalf("ws = %v", ws)
	}
}

func TestAccessSetMatchesExecution(t *testing.T) {
	ds := baseline.NewDataset(cfg())
	in := &tpcc.NewOrderInput{
		W: 1, D: 3, C: 2,
		Items: []tpcc.OrderItem{{ItemID: 5, SupplyW: 1, Quantity: 1}, {ItemID: 9, SupplyW: 2, Quantity: 2}},
	}
	reads, writes := baseline.AccessSet(ds, tpcc.TxNewOrder, in)
	res := baseline.NewOrder(ds, in)
	if !res.OK {
		t.Fatal("exec failed")
	}
	want := make(map[string]bool)
	for _, a := range res.Accesses {
		if a.Write {
			want[a.Key] = true
		}
	}
	got := make(map[string]bool)
	for _, k := range writes {
		got[k] = true
	}
	for k := range want {
		if !got[k] {
			t.Fatalf("write %s missing from precomputed set", k)
		}
	}
	if len(reads) == 0 {
		t.Fatal("no reads predicted")
	}
}

func TestConsistencyAfterManyTransactions(t *testing.T) {
	c := cfg()
	ds := baseline.NewDataset(c)
	gen := tpcc.NewInputGen(c, tpcc.StandardMix(), 1, 1, newRand(11))
	for i := 0; i < 2000; i++ {
		ty, input := gen.Next()
		baseline.Exec(ds, ty, input)
	}
	// Condition: d_next_o_id - 1 == max(o_id) per district.
	for _, wh := range ds.Warehouses {
		for _, d := range wh.Districts {
			var maxO int64
			for o := range d.Orders {
				if o > maxO {
					maxO = o
				}
			}
			if d.NextO != maxO+1 {
				t.Fatalf("w%d d%d: nextO=%d maxO=%d", wh.W, d.ID, d.NextO, maxO)
			}
			// Open orders are all undelivered.
			for _, o := range d.Open {
				if d.Orders[o].Carrier != 0 {
					t.Fatalf("delivered order %d still open", o)
				}
			}
		}
	}
}

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
