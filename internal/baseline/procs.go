package baseline

import (
	"sort"

	"tell/internal/tpcc"
)

// The five TPC-C transactions as stored procedures over native state. The
// caller is responsible for isolation: voltlike guarantees it by serial
// execution, ndblike by row locks, fdblike by optimistic validation of the
// returned access sets.
//
// Every procedure also reports its logical row accesses (reads/writes) so
// the mediating engines can model per-row costs and conflict detection
// without duplicating the transaction logic.

// Access is one logical row access.
type Access struct {
	Key   string // logical row id, e.g. "d/3/7" for district 7 of warehouse 3
	Write bool
}

// Result of a procedure.
type Result struct {
	OK       bool // false = intentional rollback (invalid item)
	Accesses []Access
}

func (r *Result) read(key string)  { r.Accesses = append(r.Accesses, Access{Key: key}) }
func (r *Result) write(key string) { r.Accesses = append(r.Accesses, Access{Key: key, Write: true}) }

func dKey(w, d int) string    { return "d/" + itoa(w) + "/" + itoa(d) }
func wKey(w int) string       { return "w/" + itoa(w) }
func cKey(w, d, c int) string { return "c/" + itoa(w) + "/" + itoa(d) + "/" + itoa(c) }
func sKey(w, i int) string    { return "s/" + itoa(w) + "/" + itoa(i) }

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [12]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

// NewOrder executes the new-order procedure. When it returns OK=false the
// caller must discard the mutations — the procedure itself defers all state
// changes until it is certain to succeed, so a rollback is a no-op.
func NewOrder(ds *Dataset, in *tpcc.NewOrderInput) Result {
	var res Result
	wh := ds.Warehouses[in.W]
	dist := wh.Districts[in.D-1]
	res.read(wKey(in.W))
	res.write(dKey(in.W, in.D))
	res.read(cKey(in.W, in.D, in.C))

	// Validate items first; mutate only if everything checks out.
	type stockUpd struct {
		wh   *Warehouse
		item int
		qty  int
	}
	var upds []stockUpd
	for n, item := range in.Items {
		if in.InvalidItem && n == len(in.Items)-1 {
			return res // OK=false: intentional rollback
		}
		if item.ItemID < 1 || item.ItemID > len(ds.Items) {
			return res
		}
		res.write(sKey(item.SupplyW, item.ItemID))
		upds = append(upds, stockUpd{wh: ds.Warehouses[item.SupplyW], item: item.ItemID, qty: item.Quantity})
	}

	oID := dist.NextO
	dist.NextO++
	cust := dist.Customers[in.C-1]
	ord := &Order{ID: oID, C: in.C, AllLocal: !in.Remote}
	for i, item := range in.Items {
		u := upds[i]
		s := &u.wh.Stock[u.item-1]
		if s.Quantity >= u.qty+10 {
			s.Quantity -= u.qty
		} else {
			s.Quantity = s.Quantity - u.qty + 91
		}
		s.Ytd += u.qty
		s.OrderCnt++
		if item.SupplyW != in.W {
			s.RemoteCnt++
		}
		amount := float64(u.qty) * ds.Items[u.item-1].Price *
			(1 + wh.Tax + dist.Tax) * (1 - cust.Discount)
		ord.Lines = append(ord.Lines, OrderLine{
			ItemID: u.item, SupplyW: item.SupplyW, Quantity: u.qty, Amount: amount,
		})
	}
	dist.Orders[oID] = ord
	dist.Open = append(dist.Open, oID)
	dist.LastOrder[in.C] = oID
	res.OK = true
	return res
}

// Payment executes the payment procedure.
func Payment(ds *Dataset, in *tpcc.PaymentInput) Result {
	var res Result
	wh := ds.Warehouses[in.W]
	res.write(wKey(in.W))
	wh.Ytd += in.Amount
	wh.Payments++
	dist := wh.Districts[in.D-1]
	res.write(dKey(in.W, in.D))
	dist.Ytd += in.Amount

	cwh := ds.Warehouses[in.CW]
	cdist := cwh.Districts[in.CD-1]
	cust := selectCustomer(cdist, in.ByLastName, in.CLast, in.C)
	if cust == nil {
		return res
	}
	res.write(cKey(in.CW, in.CD, cust.ID))
	cust.Balance -= in.Amount
	cust.YtdPayment += in.Amount
	cust.PaymentCnt++
	res.OK = true
	return res
}

// selectCustomer resolves by id or by last name (middle row by first name).
func selectCustomer(dist *District, byLast bool, last string, c int) *Customer {
	if !byLast {
		if c < 1 || c > len(dist.Customers) {
			return nil
		}
		return dist.Customers[c-1]
	}
	ids := dist.ByLast[last]
	if len(ids) == 0 {
		return nil
	}
	custs := make([]*Customer, len(ids))
	for i, id := range ids {
		custs[i] = dist.Customers[id-1]
	}
	sort.Slice(custs, func(i, j int) bool { return custs[i].First < custs[j].First })
	return custs[len(custs)/2]
}

// OrderStatus executes the order-status procedure (read-only).
func OrderStatus(ds *Dataset, in *tpcc.OrderStatusInput) Result {
	var res Result
	dist := ds.Warehouses[in.W].Districts[in.D-1]
	cust := selectCustomer(dist, in.ByLastName, in.CLast, in.C)
	if cust == nil {
		return res
	}
	res.read(cKey(in.W, in.D, cust.ID))
	if oID, ok := dist.LastOrder[cust.ID]; ok {
		res.read(dKey(in.W, in.D))
		_ = dist.Orders[oID]
	}
	res.OK = true
	return res
}

// Delivery executes the delivery procedure: the oldest open order of every
// district is delivered.
func Delivery(ds *Dataset, in *tpcc.DeliveryInput) Result {
	var res Result
	wh := ds.Warehouses[in.W]
	for d := 0; d < tpcc.DistrictsPerWarehouse; d++ {
		dist := wh.Districts[d]
		res.write(dKey(in.W, d+1))
		if len(dist.Open) == 0 {
			continue
		}
		oID := dist.Open[0]
		dist.Open = dist.Open[1:]
		ord := dist.Orders[oID]
		ord.Carrier = int64(in.Carrier)
		total := 0.0
		for i := range ord.Lines {
			ord.Lines[i].DeliveryD = 1
			total += ord.Lines[i].Amount
		}
		cust := dist.Customers[ord.C-1]
		res.write(cKey(in.W, d+1, ord.C))
		cust.Balance += total
		cust.DeliveryCnt++
	}
	res.OK = true
	return res
}

// StockLevel executes the stock-level procedure (read-only).
func StockLevel(ds *Dataset, in *tpcc.StockLevelInput) Result {
	var res Result
	wh := ds.Warehouses[in.W]
	dist := wh.Districts[in.D-1]
	res.read(dKey(in.W, in.D))
	lo := dist.NextO - 20
	if lo < 1 {
		lo = 1
	}
	seen := make(map[int]bool)
	low := 0
	for o := lo; o < dist.NextO; o++ {
		ord, ok := dist.Orders[o]
		if !ok {
			continue
		}
		for _, l := range ord.Lines {
			if seen[l.ItemID] {
				continue
			}
			seen[l.ItemID] = true
			res.read(sKey(in.W, l.ItemID))
			if wh.Stock[l.ItemID-1].Quantity < in.Threshold {
				low++
			}
		}
	}
	res.OK = true
	return res
}

// RowAccessCount estimates the logical row accesses of one transaction for
// cost models.
func (r *Result) RowAccessCount() (reads, writes int) {
	for _, a := range r.Accesses {
		if a.Write {
			writes++
		} else {
			reads++
		}
	}
	return
}

// WarehousesOf lists the distinct warehouses a transaction input touches —
// the partitioning question every sharded engine must answer.
func WarehousesOf(t tpcc.TxType, input any) []int {
	switch t {
	case tpcc.TxNewOrder:
		in := input.(*tpcc.NewOrderInput)
		set := map[int]bool{in.W: true}
		for _, it := range in.Items {
			set[it.SupplyW] = true
		}
		return keysOf(set)
	case tpcc.TxPayment:
		in := input.(*tpcc.PaymentInput)
		set := map[int]bool{in.W: true, in.CW: true}
		return keysOf(set)
	case tpcc.TxOrderStatus:
		return []int{input.(*tpcc.OrderStatusInput).W}
	case tpcc.TxDelivery:
		return []int{input.(*tpcc.DeliveryInput).W}
	default:
		return []int{input.(*tpcc.StockLevelInput).W}
	}
}

func keysOf(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
