package baseline

import (
	"time"

	"tell/internal/env"
	"tell/internal/trace"
)

// The baseline engines model their networks and coordination as explicit
// Sleep calls rather than transport messages, so latency attribution cannot
// ride on the transport layer the way it does for Tell. These helpers let
// the engines charge those sleeps and measured waits into the driving
// transaction's breakdown with no allocation when tracing is off.

// SleepNet advances time by d and charges it to the network component.
func SleepNet(ctx env.Ctx, d time.Duration) {
	ctx.Sleep(d)
	ctx.Trace().Agg.Add(trace.CompNetwork, d)
}

// SleepRemote advances time by d and charges it to the remote component
// (coordination or work performed on the engine's behalf elsewhere).
func SleepRemote(ctx env.Ctx, d time.Duration) {
	ctx.Sleep(d)
	ctx.Trace().Agg.Add(trace.CompRemote, d)
}

// Charge adds an already-measured duration to the given component.
func Charge(ctx env.Ctx, c trace.Comp, d time.Duration) {
	ctx.Trace().Agg.Add(c, d)
}
