package baseline

import "tell/internal/tpcc"

// AccessSet computes a transaction's logical row access set from its input
// without mutating state. The locking engine (ndblike) acquires these rows
// before execution; the optimistic engine (fdblike) validates them at its
// resolver. Keys use the same naming as Result accesses.
//
// Rows whose identity depends on current state (the delivery transaction's
// customers, stock-level's items) are resolved with an unlocked peek; the
// engines re-execute under their protection regime, so a racing change
// costs at most a spurious conflict or an extra lock — the same slack real
// systems have between query planning and execution.
func AccessSet(ds *Dataset, t tpcc.TxType, input any) (reads, writes []string) {
	switch t {
	case tpcc.TxNewOrder:
		in := input.(*tpcc.NewOrderInput)
		reads = append(reads, wKey(in.W), cKey(in.W, in.D, in.C))
		writes = append(writes, dKey(in.W, in.D))
		seen := map[string]bool{}
		for _, it := range in.Items {
			k := sKey(it.SupplyW, it.ItemID)
			if !seen[k] {
				seen[k] = true
				writes = append(writes, k)
			}
		}
	case tpcc.TxPayment:
		in := input.(*tpcc.PaymentInput)
		writes = append(writes, wKey(in.W), dKey(in.W, in.D))
		if c := peekCustomer(ds, in.CW, in.CD, in.ByLastName, in.CLast, in.C); c > 0 {
			writes = append(writes, cKey(in.CW, in.CD, c))
		}
	case tpcc.TxOrderStatus:
		in := input.(*tpcc.OrderStatusInput)
		reads = append(reads, dKey(in.W, in.D))
		if c := peekCustomer(ds, in.W, in.D, in.ByLastName, in.CLast, in.C); c > 0 {
			reads = append(reads, cKey(in.W, in.D, c))
		}
	case tpcc.TxDelivery:
		in := input.(*tpcc.DeliveryInput)
		wh := ds.Warehouses[in.W]
		for d := 0; d < tpcc.DistrictsPerWarehouse; d++ {
			writes = append(writes, dKey(in.W, d+1))
			dist := wh.Districts[d]
			if len(dist.Open) > 0 {
				if ord, ok := dist.Orders[dist.Open[0]]; ok {
					writes = append(writes, cKey(in.W, d+1, ord.C))
				}
			}
		}
	case tpcc.TxStockLevel:
		in := input.(*tpcc.StockLevelInput)
		reads = append(reads, dKey(in.W, in.D))
		wh := ds.Warehouses[in.W]
		dist := wh.Districts[in.D-1]
		lo := dist.NextO - 20
		if lo < 1 {
			lo = 1
		}
		seen := map[int]bool{}
		for o := lo; o < dist.NextO; o++ {
			if ord, ok := dist.Orders[o]; ok {
				for _, l := range ord.Lines {
					if !seen[l.ItemID] {
						seen[l.ItemID] = true
						reads = append(reads, sKey(in.W, l.ItemID))
					}
				}
			}
		}
	}
	return reads, writes
}

// peekCustomer resolves the customer id a payment/order-status will touch.
func peekCustomer(ds *Dataset, w, d int, byLast bool, last string, c int) int {
	wh, ok := ds.Warehouses[w]
	if !ok {
		return 0
	}
	cust := selectCustomer(wh.Districts[d-1], byLast, last, c)
	if cust == nil {
		return 0
	}
	return cust.ID
}

// Exec runs the procedure for (t, input), returning its Result.
func Exec(ds *Dataset, t tpcc.TxType, input any) Result {
	switch t {
	case tpcc.TxNewOrder:
		return NewOrder(ds, input.(*tpcc.NewOrderInput))
	case tpcc.TxPayment:
		return Payment(ds, input.(*tpcc.PaymentInput))
	case tpcc.TxOrderStatus:
		return OrderStatus(ds, input.(*tpcc.OrderStatusInput))
	case tpcc.TxDelivery:
		return Delivery(ds, input.(*tpcc.DeliveryInput))
	default:
		return StockLevel(ds, input.(*tpcc.StockLevelInput))
	}
}

// IsWrite reports whether the transaction type mutates state.
func IsWrite(t tpcc.TxType) bool {
	return t == tpcc.TxNewOrder || t == tpcc.TxPayment || t == tpcc.TxDelivery
}
