// Package metrics provides the throughput and latency instrumentation the
// evaluation reports: means, standard deviations and high percentiles
// (Tables 4 and 5 report mean ± σ, TP99 and TP999).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Histogram records durations in logarithmically spaced buckets, giving
// accurate percentiles across six orders of magnitude without storing
// samples. It is not safe for concurrent use; under the simulator all
// recording is single-threaded, and real-environment callers must own one
// histogram per goroutine (and Merge them).
type Histogram struct {
	count  uint64
	sum    float64
	sumSq  float64
	min    time.Duration
	max    time.Duration
	bucket [nBuckets]uint64
}

// Buckets: 128 per factor-of-10, spanning 1µs .. 100s.
const (
	bucketBase    = float64(time.Microsecond)
	bucketsPerDec = 128
	nDecades      = 8
	nBuckets      = bucketsPerDec*nDecades + 2
)

func bucketIndex(d time.Duration) int {
	if d <= 0 {
		return 0
	}
	r := float64(d) / bucketBase
	if r < 1 {
		return 0
	}
	i := 1 + int(math.Log10(r)*bucketsPerDec)
	if i >= nBuckets {
		i = nBuckets - 1
	}
	return i
}

// bucketValue returns the representative duration of bucket i (its upper
// boundary).
func bucketValue(i int) time.Duration {
	if i <= 0 {
		return time.Microsecond
	}
	return time.Duration(bucketBase * math.Pow(10, float64(i)/bucketsPerDec))
}

// Record adds one observation.
func (h *Histogram) Record(d time.Duration) {
	if h.count == 0 {
		// First observation defines both extremes (the zero-valued max of an
		// empty histogram is "nothing seen", not an observation of zero).
		h.min, h.max = d, d
	} else {
		if d < h.min {
			h.min = d
		}
		if d > h.max {
			h.max = d
		}
	}
	h.count++
	f := float64(d)
	h.sum += f
	h.sumSq += f * f
	h.bucket[bucketIndex(d)]++
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Mean returns the arithmetic mean.
func (h *Histogram) Mean() time.Duration {
	if h.count == 0 {
		return 0
	}
	return time.Duration(h.sum / float64(h.count))
}

// Stddev returns the population standard deviation.
func (h *Histogram) Stddev() time.Duration {
	if h.count == 0 {
		return 0
	}
	n := float64(h.count)
	v := h.sumSq/n - (h.sum/n)*(h.sum/n)
	if v < 0 {
		v = 0
	}
	return time.Duration(math.Sqrt(v))
}

// Min returns the smallest observation.
func (h *Histogram) Min() time.Duration { return h.min }

// Max returns the largest observation.
func (h *Histogram) Max() time.Duration { return h.max }

// Percentile returns the value at or below which p (0..100) percent of
// observations fall, to bucket resolution.
func (h *Histogram) Percentile(p float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	target := uint64(math.Ceil(p / 100 * float64(h.count)))
	if target == 0 {
		target = 1
	}
	var seen uint64
	for i := 0; i < nBuckets; i++ {
		seen += h.bucket[i]
		if seen >= target {
			if i == nBuckets-1 {
				return h.max
			}
			return bucketValue(i)
		}
	}
	return h.max
}

// Merge folds other into h.
func (h *Histogram) Merge(other *Histogram) {
	if other.count == 0 {
		return
	}
	if h.count == 0 {
		// An empty receiver adopts the other side's extremes wholesale: its
		// zero-valued min/max are "no observations", not observations of
		// zero, so comparing against them would keep a bogus 0 whenever the
		// other side's range does not straddle zero.
		h.min, h.max = other.min, other.max
	} else {
		if other.min < h.min {
			h.min = other.min
		}
		if other.max > h.max {
			h.max = other.max
		}
	}
	h.count += other.count
	h.sum += other.sum
	h.sumSq += other.sumSq
	for i := range h.bucket {
		h.bucket[i] += other.bucket[i]
	}
}

// String formats the histogram like the paper's latency tables.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%.2fms σ=%.2fms p99=%.2fms p99.9=%.2fms",
		h.count,
		float64(h.Mean())/float64(time.Millisecond),
		float64(h.Stddev())/float64(time.Millisecond),
		float64(h.Percentile(99))/float64(time.Millisecond),
		float64(h.Percentile(99.9))/float64(time.Millisecond))
}

// Counter is a monotonically increasing event count. It carries no time
// component; rates come from pairing its value with an externally measured
// interval via PerSecond or PerMinute.
type Counter struct {
	n uint64
}

// Add increments the counter by d.
func (c *Counter) Add(d uint64) { c.n += d }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n++ }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n }

// PerMinute converts a count observed over elapsed into a per-minute rate —
// the TpmC convention.
func PerMinute(count uint64, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(count) / elapsed.Minutes()
}

// PerSecond converts a count observed over elapsed into a per-second rate.
func PerSecond(count uint64, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(count) / elapsed.Seconds()
}

// Summary aggregates named histograms, used for per-transaction-type
// latency reporting.
type Summary struct {
	hists map[string]*Histogram
}

// NewSummary returns an empty summary.
func NewSummary() *Summary { return &Summary{hists: make(map[string]*Histogram)} }

// Record adds an observation under name.
func (s *Summary) Record(name string, d time.Duration) {
	h, ok := s.hists[name]
	if !ok {
		h = &Histogram{}
		s.hists[name] = h
	}
	h.Record(d)
}

// Get returns the histogram for name, or nil.
func (s *Summary) Get(name string) *Histogram { return s.hists[name] }

// Names returns the recorded names in sorted order.
func (s *Summary) Names() []string {
	names := make([]string, 0, len(s.hists))
	for n := range s.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Total returns a histogram merging all names. The merge walks names in
// sorted order: float accumulation is not associative, so map order would
// make the totals differ bit-for-bit between identical runs.
func (s *Summary) Total() *Histogram {
	t := &Histogram{}
	for _, n := range s.Names() {
		t.Merge(s.hists[n])
	}
	return t
}
