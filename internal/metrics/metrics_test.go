package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramBasics(t *testing.T) {
	h := &Histogram{}
	for i := 1; i <= 100; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Mean(); got < 50*time.Millisecond || got > 51*time.Millisecond {
		t.Fatalf("mean = %v, want ~50.5ms", got)
	}
	if h.Min() != time.Millisecond || h.Max() != 100*time.Millisecond {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
	// σ of 1..100 is ~28.9ms.
	if got := h.Stddev(); got < 28*time.Millisecond || got > 30*time.Millisecond {
		t.Fatalf("stddev = %v, want ~28.9ms", got)
	}
}

func TestHistogramPercentilesWithinBucketResolution(t *testing.T) {
	h := &Histogram{}
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}
	check := func(p float64, want time.Duration) {
		got := h.Percentile(p)
		lo := time.Duration(float64(want) * 0.95)
		hi := time.Duration(float64(want) * 1.05)
		if got < lo || got > hi {
			t.Fatalf("p%v = %v, want ~%v", p, got, want)
		}
	}
	check(50, 500*time.Millisecond)
	check(99, 990*time.Millisecond)
	check(99.9, 999*time.Millisecond)
}

func TestHistogramMaxPercentileIsMax(t *testing.T) {
	h := &Histogram{}
	h.Record(time.Millisecond)
	h.Record(time.Second)
	if got := h.Percentile(100); got > time.Second*11/10 || got < time.Second*9/10 {
		t.Fatalf("p100 = %v, want ~1s", got)
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := &Histogram{}, &Histogram{}
	for i := 0; i < 50; i++ {
		a.Record(10 * time.Millisecond)
		b.Record(30 * time.Millisecond)
	}
	a.Merge(b)
	if a.Count() != 100 {
		t.Fatalf("count = %d", a.Count())
	}
	if got := a.Mean(); got < 19*time.Millisecond || got > 21*time.Millisecond {
		t.Fatalf("mean = %v, want 20ms", got)
	}
	if a.Min() != 10*time.Millisecond || a.Max() != 30*time.Millisecond {
		t.Fatalf("min/max = %v/%v", a.Min(), a.Max())
	}
}

// TestHistogramMergeIntoEmpty: merging into an empty receiver must adopt the
// other side's min and max verbatim. The regression: an empty histogram's
// zero-valued extremes were treated as observations, so a merged-in side
// whose range did not straddle zero kept min=0 (when all values were
// positive the old min check happened to adopt, but max stayed 0 whenever
// every merged value was negative or zero).
func TestHistogramMergeIntoEmpty(t *testing.T) {
	// All-positive values: min and max must both come from the other side.
	empty, pos := &Histogram{}, &Histogram{}
	pos.Record(5 * time.Millisecond)
	pos.Record(9 * time.Millisecond)
	empty.Merge(pos)
	if empty.Min() != 5*time.Millisecond || empty.Max() != 9*time.Millisecond {
		t.Fatalf("positive merge: min/max = %v/%v, want 5ms/9ms", empty.Min(), empty.Max())
	}

	// Non-positive values (a clock-skewed duration, or a gauge-style use):
	// the empty receiver's max must not stay at zero.
	empty2, neg := &Histogram{}, &Histogram{}
	neg.Record(-3 * time.Millisecond)
	neg.Record(-1 * time.Millisecond)
	empty2.Merge(neg)
	if empty2.Min() != -3*time.Millisecond || empty2.Max() != -time.Millisecond {
		t.Fatalf("negative merge: min/max = %v/%v, want -3ms/-1ms", empty2.Min(), empty2.Max())
	}

	// Merging an empty histogram into a populated one stays a no-op.
	keep := &Histogram{}
	keep.Record(2 * time.Millisecond)
	keep.Merge(&Histogram{})
	if keep.Min() != 2*time.Millisecond || keep.Max() != 2*time.Millisecond || keep.Count() != 1 {
		t.Fatalf("no-op merge changed state: min=%v max=%v n=%d", keep.Min(), keep.Max(), keep.Count())
	}
}

func TestHistogramZeroAndTinyValues(t *testing.T) {
	h := &Histogram{}
	h.Record(0)
	h.Record(time.Nanosecond)
	h.Record(time.Microsecond)
	if h.Count() != 3 {
		t.Fatal("records lost")
	}
	if h.Percentile(50) > time.Microsecond {
		t.Fatalf("p50 = %v", h.Percentile(50))
	}
}

// TestHistogramPercentileProperty: for uniform random data the histogram
// percentile must be within bucket resolution (~1.8%) of the exact value.
func TestHistogramPercentileProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := &Histogram{}
		samples := make([]float64, 0, 500)
		for i := 0; i < 500; i++ {
			d := time.Duration(rng.Intn(1e9)) + time.Microsecond
			h.Record(d)
			samples = append(samples, float64(d))
		}
		for _, p := range []float64{50, 90, 99} {
			got := float64(h.Percentile(p))
			// Exact percentile by sorting.
			sorted := append([]float64(nil), samples...)
			for i := 1; i < len(sorted); i++ {
				for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
					sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
				}
			}
			idx := int(math.Ceil(p/100*float64(len(sorted)))) - 1
			want := sorted[idx]
			if got < want*0.95 || got > want*1.05 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestHistogramBucketBoundaryAccuracy pins the bucket-resolution bound. At
// 128 buckets per decade one bucket spans a factor of 10^(1/128) ≈ 1.0181,
// and Percentile reports the upper boundary of the bucket holding the exact
// quantile sample, so the reported value must lie in
// [exact, exact·10^(1/128)] — a relative error of at most ~1.82%. The
// samples are log-spaced so every decade (and thus every bucket width) is
// exercised evenly.
func TestHistogramBucketBoundaryAccuracy(t *testing.T) {
	h := &Histogram{}
	const n = 4096
	samples := make([]float64, n) // ascending by construction
	for i := 0; i < n; i++ {
		// Four decades: 10µs .. 100ms.
		d := time.Duration(1e4 * math.Pow(10, 4*float64(i)/n))
		h.Record(d)
		samples[i] = float64(d)
	}
	oneBucket := math.Pow(10, 1.0/bucketsPerDec)
	for _, p := range []float64{10, 25, 50, 75, 90, 95, 99, 99.9} {
		got := float64(h.Percentile(p))
		exact := samples[int(math.Ceil(p/100*n))-1]
		// Tiny slack for float rounding at exact bucket boundaries.
		if got < exact*0.9999 || got > exact*oneBucket*1.0001 {
			t.Errorf("p%v = %v vs exact %v: rel err %+.3f%%, one-bucket bound %.3f%%",
				p, time.Duration(got), time.Duration(exact),
				100*(got/exact-1), 100*(oneBucket-1))
		}
	}
}

func TestRates(t *testing.T) {
	if got := PerMinute(600, time.Minute); got != 600 {
		t.Fatalf("PerMinute = %v", got)
	}
	if got := PerMinute(100, 30*time.Second); got != 200 {
		t.Fatalf("PerMinute = %v", got)
	}
	if got := PerSecond(100, 2*time.Second); got != 50 {
		t.Fatalf("PerSecond = %v", got)
	}
	if PerMinute(5, 0) != 0 || PerSecond(5, 0) != 0 {
		t.Fatal("zero elapsed must give zero rate")
	}
}

func TestSummary(t *testing.T) {
	s := NewSummary()
	s.Record("neworder", 10*time.Millisecond)
	s.Record("neworder", 20*time.Millisecond)
	s.Record("payment", 5*time.Millisecond)
	if got := s.Get("neworder").Count(); got != 2 {
		t.Fatalf("neworder count = %d", got)
	}
	names := s.Names()
	if len(names) != 2 || names[0] != "neworder" || names[1] != "payment" {
		t.Fatalf("names = %v", names)
	}
	if got := s.Total().Count(); got != 3 {
		t.Fatalf("total = %d", got)
	}
	if s.Get("missing") != nil {
		t.Fatal("missing name should be nil")
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(9)
	if c.Value() != 10 {
		t.Fatalf("value = %d", c.Value())
	}
}
