// Package det holds small helpers for deterministic iteration. Engine code
// may not let map-iteration order reach simulation-visible state (enforced
// by the maporder analyzer, see internal/lint); the canonical fix is to
// iterate over sorted keys, which these helpers make a one-liner.
package det

import (
	"cmp"
	"slices"
)

// Keys returns the keys of m in ascending order. Iterating a map through
// Keys makes the loop order deterministic:
//
//	for _, k := range det.Keys(m) {
//		use(k, m[k])
//	}
func Keys[M ~map[K]V, K cmp.Ordered, V any](m M) []K {
	ks := make([]K, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	slices.Sort(ks)
	return ks
}
