package obs

import (
	"sort"
	"sync"
	"time"

	"tell/internal/det"
)

// HeatDelta is one batch of per-range activity a storage node folds into
// its heat tracker: operation counts, payload bytes, and handler latency
// attributed to the range (LatN observations summing to Lat).
type HeatDelta struct {
	Reads      int64
	Writes     int64
	Conflicts  int64
	ReadBytes  int64
	WriteBytes int64
	Lat        time.Duration
	LatN       int64
}

func (d *HeatDelta) add(o HeatDelta) {
	d.Reads += o.Reads
	d.Writes += o.Writes
	d.Conflicts += o.Conflicts
	d.ReadBytes += o.ReadBytes
	d.WriteBytes += o.WriteBytes
	d.Lat += o.Lat
	d.LatN += o.LatN
}

// Ops returns the operation count (reads + writes) — the scalar "heat" a
// placement controller ranks ranges by.
func (d *HeatDelta) Ops() int64 { return d.Reads + d.Writes }

// heatCell is one window of one range's activity.
type heatCell struct {
	idx int64
	d   HeatDelta
}

// rangeHeat is one partition's ring of windows plus all-time totals.
type rangeHeat struct {
	ring  []heatCell
	cur   int64
	live  bool
	total HeatDelta
}

// Heat tracks per-range activity on one storage node: windowed cells for
// recent-rate queries (the placement feed) and monotonic totals for
// counters. It has its own mutex — storage nodes call Add on their hot
// path without touching the pipeline lock. All methods are nil-safe.
type Heat struct {
	node    string
	width   time.Duration
	windows int

	mu     sync.Mutex
	ranges map[uint64]*rangeHeat
	cur    int64 // highest window index seen on this node
}

func newHeat(node string, width time.Duration, windows int) *Heat {
	return &Heat{node: node, width: width, windows: windows,
		ranges: make(map[uint64]*rangeHeat)}
}

// Add folds a delta for range rng at time at.
func (h *Heat) Add(at time.Duration, rng uint64, d HeatDelta) {
	if h == nil {
		return
	}
	if at < 0 {
		at = 0
	}
	h.mu.Lock()
	idx := int64(at / h.width)
	if idx > h.cur {
		h.cur = idx
	}
	r := h.ranges[rng]
	if r == nil {
		r = &rangeHeat{ring: make([]heatCell, h.windows)}
		h.ranges[rng] = r
	}
	if r.live && idx < r.cur {
		idx = r.cur // fold stragglers into the current window
	}
	if !r.live || idx > r.cur {
		r.cur, r.live = idx, true
	}
	c := &r.ring[idx%int64(len(r.ring))]
	if c.idx != idx {
		*c = heatCell{idx: idx}
	}
	c.d.add(d)
	r.total.add(d)
	h.mu.Unlock()
}

// sync advances the node's current-window marker so recent-rate queries
// age out stale cells even when the node has gone quiet.
func (h *Heat) sync(at time.Duration) {
	if h == nil {
		return
	}
	h.mu.Lock()
	if idx := int64(at / h.width); idx > h.cur {
		h.cur = idx
	}
	h.mu.Unlock()
}

// HeatRow is the export form of one (node, range) pair: all-time totals
// plus activity summed over the retained recent windows, with the span
// those windows cover (for rate conversion).
type HeatRow struct {
	Node   string
	Range  uint64
	Total  HeatDelta
	Recent HeatDelta
	// RecentSpan is the wall span the Recent window set covers — the
	// retention horizon, windows*width — so Recent.Ops()/RecentSpan is an
	// ops/sec rate comparable across rows.
	RecentSpan time.Duration
}

// MeanLat returns the mean attributed latency over d's observations.
func (d *HeatDelta) MeanLat() time.Duration {
	if d.LatN == 0 {
		return 0
	}
	return d.Lat / time.Duration(d.LatN)
}

// snapshot exports the node's rows sorted by range id. Caller-side lock
// discipline: takes h.mu itself.
func (h *Heat) snapshot() []HeatRow {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	span := time.Duration(h.windows) * h.width
	out := make([]HeatRow, 0, len(h.ranges))
	for _, rng := range det.Keys(h.ranges) {
		r := h.ranges[rng]
		row := HeatRow{Node: h.node, Range: rng, Total: r.total, RecentSpan: span}
		lo := h.cur - int64(h.windows) + 1
		for j := range r.ring {
			c := &r.ring[j]
			if c.idx >= lo && (c.idx > 0 || c.d != (HeatDelta{})) {
				row.Recent.add(c.d)
			}
		}
		out = append(out, row)
	}
	return out
}

// HeatRows exports every node's per-range rows, sorted by (node, range) —
// the deterministic heat feed for dumps, the wire stats extension, and a
// future placement controller.
func (p *Pipeline) HeatRows() []HeatRow {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	heats := p.sortedHeatLocked()
	p.mu.Unlock()
	var out []HeatRow
	for _, h := range heats {
		out = append(out, h.snapshot()...)
	}
	return out
}

// HottestRange returns the row with the highest recent operation count
// (ties broken by lower node then range id, the sort order), plus false
// when there is no heat at all.
func HottestRange(rows []HeatRow) (HeatRow, bool) {
	var best HeatRow
	found := false
	for _, r := range rows {
		if !found || r.Recent.Ops() > best.Recent.Ops() {
			best, found = r, true
		}
	}
	return best, found
}

// SortHeatByRecent orders rows hottest-first (recent ops descending, then
// node, then range) — the presentation order for `tellcli top`.
func SortHeatByRecent(rows []HeatRow) {
	sort.Slice(rows, func(i, j int) bool {
		oi, oj := rows[i].Recent.Ops(), rows[j].Recent.Ops()
		if oi != oj {
			return oi > oj
		}
		if rows[i].Node != rows[j].Node {
			return rows[i].Node < rows[j].Node
		}
		return rows[i].Range < rows[j].Range
	})
}
