package obs

import (
	"hash/fnv"
	"io"
	"sync"
	"time"

	"tell/internal/trace"
)

// Flight is the slow-transaction flight recorder: a bounded ring of the
// most recent trace events (fed through trace.Recorder's tap, so it works
// even in counters-only mode where the Recorder stores nothing) from which
// the span tree of a transaction that just proved interesting — slower
// than the fixed or adaptive threshold, or extending an abort streak — is
// extracted retroactively. Tail-based sampling: the keep/drop decision is
// made after the outcome is known, so the ring holds everything briefly
// and the captures hold only outliers.
//
// Memory is bounded by FlightEvents ring slots plus FlightCaptures
// retained captures. Under the deterministic kernel the ring contents,
// thresholds and therefore the captures are byte-identical across
// same-seed runs. All methods are nil-safe.
type Flight struct {
	cfg Config

	mu     sync.Mutex
	ring   []trace.Event
	head   int    // next write position
	filled bool   // ring has wrapped at least once
	seen   uint64 // total events ever offered

	streak   map[string]int // class -> consecutive aborts
	captures []Capture
	next     uint64 // capture sequence number
	evicted  uint64 // captures pushed out of the bounded window
}

// Capture is one retained outlier: the transaction's identity, why it was
// kept, and its extracted span tree (spans, instants and message flows in
// recording order).
type Capture struct {
	Seq       uint64
	At        time.Duration // observation time (transaction end)
	Class     string
	Root      trace.SpanID
	E2E       time.Duration
	Committed bool
	// Reason is "slow" (fixed threshold), "p999-outlier" (adaptive
	// threshold) or "abort-streak".
	Reason    string
	Threshold time.Duration // threshold that fired (zero for abort-streak)
	Events    []trace.Event
}

func newFlight(cfg Config) *Flight {
	return &Flight{
		cfg:    cfg,
		ring:   make([]trace.Event, cfg.FlightEvents),
		streak: make(map[string]int),
	}
}

// TraceEvent implements trace.Tap: every event the recorder sees lands in
// the ring, overwriting the oldest. Called with the Recorder's lock held —
// it must stay cheap and must not call back into the recorder (it doesn't:
// one ring store under the Flight lock).
func (f *Flight) TraceEvent(e trace.Event) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.ring[f.head] = e
	f.head++
	if f.head == len(f.ring) {
		f.head, f.filled = 0, true
	}
	f.seen++
	f.mu.Unlock()
}

// observe applies the capture policy to one finished transaction. slow is
// the fixed threshold, adaptive the class p99.9 threshold (zero when not
// yet armed); either firing — or the class's abort streak reaching the
// configured length — captures the transaction's span tree from the ring.
func (f *Flight) observe(at time.Duration, class string, root trace.SpanID,
	e2e time.Duration, committed bool, slow, adaptive time.Duration) {
	if f == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()

	reason := ""
	var threshold time.Duration
	if !committed && f.cfg.AbortStreak > 0 {
		f.streak[class]++
		if f.streak[class] >= f.cfg.AbortStreak {
			reason = "abort-streak"
			f.streak[class] = 0
		}
	} else if committed {
		f.streak[class] = 0
	}
	if reason == "" && slow > 0 && e2e >= slow {
		reason, threshold = "slow", slow
	}
	if reason == "" && adaptive > 0 && e2e >= adaptive {
		reason, threshold = "p999-outlier", adaptive
	}
	if reason == "" || root == 0 {
		return
	}

	c := Capture{Seq: f.next, At: at, Class: class, Root: root, E2E: e2e,
		Committed: committed, Reason: reason, Threshold: threshold,
		Events: f.extractLocked(root)}
	f.next++
	f.captures = append(f.captures, c)
	if len(f.captures) > f.cfg.FlightCaptures {
		// Keep the most recent window of captures.
		copy(f.captures, f.captures[1:])
		f.captures = f.captures[:len(f.captures)-1]
		f.evicted++
	}
}

// extractLocked pulls the span tree rooted at root out of the ring.
//
// Spans are recorded when they close, and children close before their
// ancestors (response arrives after the handler span it caused), so a
// backward scan sees every ancestor before its descendants: an event
// belongs to the tree if its ID is the root or its Parent is already a
// member. A second, forward pass then collects the tree's events in
// recording order and joins message flows — a send whose Parent is in the
// tree admits the matching recv (sends precede recvs in forward order).
// Caller holds f.mu.
func (f *Flight) extractLocked(root trace.SpanID) []trace.Event {
	n := f.head
	if f.filled {
		n = len(f.ring)
	}
	// at returns the i-th oldest retained event.
	at := func(i int) *trace.Event {
		if f.filled {
			return &f.ring[(f.head+i)%len(f.ring)]
		}
		return &f.ring[i]
	}

	ids := map[trace.SpanID]bool{root: true}
	for i := n - 1; i >= 0; i-- {
		e := at(i)
		if e.Kind != trace.KindSpan {
			continue
		}
		if ids[e.ID] || (e.Parent != 0 && ids[e.Parent]) {
			ids[e.ID] = true
		}
	}

	var out []trace.Event
	flows := make(map[trace.SpanID]bool)
	for i := 0; i < n; i++ {
		e := at(i)
		switch e.Kind {
		case trace.KindSpan:
			if ids[e.ID] {
				out = append(out, *e)
			}
		case trace.KindInstant:
			if e.Parent != 0 && ids[e.Parent] {
				out = append(out, *e)
			}
		case trace.KindMsgSend:
			if e.Parent != 0 && ids[e.Parent] {
				flows[e.ID] = true
				out = append(out, *e)
			}
		case trace.KindMsgRecv:
			if flows[e.ID] {
				out = append(out, *e)
			}
		}
	}
	return out
}

// Captures returns the retained captures in sequence order plus how many
// older ones were evicted by the retention cap.
func (f *Flight) Captures() ([]Capture, uint64) {
	if f == nil {
		return nil, 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]Capture, len(f.captures))
	copy(out, f.captures)
	return out, f.evicted
}

// Seen returns how many trace events have passed through the ring.
func (f *Flight) Seen() uint64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.seen
}

// Hash is a compact FNV-1a digest of the capture's identity and events,
// used by determinism goldens to compare flight contents across runs
// without embedding full event dumps.
func (c *Capture) Hash() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	w64 := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		//lint:allow errdiscard hash.Hash Write never returns an error
		h.Write(buf[:])
	}
	ws := func(s string) {
		//lint:allow errdiscard hash.Hash Write never returns an error
		io.WriteString(h, s)
	}
	w64(c.Seq)
	w64(uint64(c.At))
	ws(c.Class)
	w64(uint64(c.Root))
	w64(uint64(c.E2E))
	ws(c.Reason)
	for i := range c.Events {
		e := &c.Events[i]
		w64(uint64(e.Kind))
		w64(uint64(e.At))
		w64(uint64(e.Dur))
		w64(uint64(e.ID))
		w64(uint64(e.Parent))
		ws(e.Node)
		ws(e.Name)
		w64(uint64(e.Arg1))
		w64(uint64(e.Arg2))
	}
	return h.Sum64()
}

// WriteChromeTrace renders one capture's events as Chrome trace_event
// JSON (Perfetto-loadable) — the per-outlier export.
func (c *Capture) WriteChromeTrace(w io.Writer) error {
	return trace.WriteChromeTraceEvents(w, c.Events)
}
