package obs

import (
	"bufio"
	"fmt"
	"io"
	"time"
)

// WriteDump renders the whole pipeline — every series window, heat row,
// breach and flight capture — as a fixed-format text dump. This is the
// determinism surface: the obs golden runs the same workload twice under
// the same seed and requires byte-identical dumps. at closes trailing
// windows before export (pass the run's end time).
func (p *Pipeline) WriteDump(w io.Writer, at time.Duration) error {
	bw := bufio.NewWriter(w)
	if p == nil {
		fmt.Fprintln(bw, "obs disabled")
		return bw.Flush()
	}
	p.Sync(at)

	fmt.Fprintf(bw, "obs window=%v windows=%d at=%v\n", p.cfg.Window, p.cfg.Windows, at)

	for _, d := range p.Snapshot() {
		k := "rate"
		if d.Hist {
			k = "hist"
		}
		fmt.Fprintf(bw, "series %s %s %s total=%d\n", d.Node, d.Metric, k, d.Total)
		for _, pt := range d.Points {
			if d.Hist {
				fmt.Fprintf(bw, "  w%d t=%v n=%d mean=%v p50=%v p99=%v p999=%v min=%v max=%v\n",
					pt.Idx, pt.Start, pt.Count, pt.Mean, pt.P50, pt.P99, pt.P999, pt.Min, pt.Max)
			} else {
				fmt.Fprintf(bw, "  w%d t=%v n=%d\n", pt.Idx, pt.Start, pt.N)
			}
		}
	}

	for _, r := range p.HeatRows() {
		fmt.Fprintf(bw, "heat %s range=%d reads=%d writes=%d conflicts=%d rbytes=%d wbytes=%d lat=%v recent_ops=%d recent_lat=%v\n",
			r.Node, r.Range, r.Total.Reads, r.Total.Writes, r.Total.Conflicts,
			r.Total.ReadBytes, r.Total.WriteBytes, r.Total.MeanLat(),
			r.Recent.Ops(), r.Recent.MeanLat())
	}

	breaches, bdrop := p.Breaches()
	for _, b := range breaches {
		fmt.Fprintf(bw, "breach t=%v class=%s q=%s observed=%v target=%v n=%d\n",
			b.At, b.Class, b.Quantile, b.Observed, b.Target, b.Count)
	}
	if bdrop > 0 {
		fmt.Fprintf(bw, "breach dropped=%d\n", bdrop)
	}

	caps, evicted := p.flight.Captures()
	fmt.Fprintf(bw, "flight captures=%d evicted=%d seen=%d\n",
		len(caps), evicted, p.flight.Seen())
	for i := range caps {
		c := &caps[i]
		fmt.Fprintf(bw, "capture seq=%d t=%v class=%s reason=%s committed=%t e2e=%v threshold=%v root=%d events=%d hash=%016x\n",
			c.Seq, c.At, c.Class, c.Reason, c.Committed, c.E2E, c.Threshold,
			c.Root, len(c.Events), c.Hash())
	}
	return bw.Flush()
}
