package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"
)

// WritePrometheus renders the pipeline in the Prometheus text exposition
// format (version 0.0.4): windowed latency quantiles as summaries over the
// retention horizon, rate series and heat counters as counters, SLO
// breaches and flight-recorder state as counters. at is the export time on
// the pipeline's clock; trailing windows older than it are closed first.
//
// The output is deterministic — series sorted by (node, metric), ranges by
// (node, range), floats in Go 'g' shortest form — so same-seed runs
// produce byte-identical expositions (the CI golden relies on this).
func (p *Pipeline) WritePrometheus(w io.Writer, at time.Duration) error {
	bw := bufio.NewWriter(w)
	if p == nil {
		fmt.Fprintln(bw, "# tell telemetry disabled")
		return bw.Flush()
	}
	p.Sync(at)

	var hists, rates []SeriesDump
	for _, d := range p.Snapshot() {
		if d.Hist {
			hists = append(hists, d)
		} else {
			rates = append(rates, d)
		}
	}

	if len(hists) > 0 {
		fmt.Fprintln(bw, "# HELP tell_latency_seconds Latency quantiles over the retained windows.")
		fmt.Fprintln(bw, "# TYPE tell_latency_seconds summary")
		for _, d := range hists {
			h := p.Class(d.Node, d.Metric)
			if h == nil || h.Count() == 0 {
				continue
			}
			l := labels("node", d.Node, "metric", d.Metric)
			for _, q := range []struct {
				name string
				pct  float64
			}{{"0.5", 50}, {"0.99", 99}, {"0.999", 99.9}} {
				fmt.Fprintf(bw, "tell_latency_seconds{%s,quantile=%q} %s\n",
					l, q.name, secs(h.Percentile(q.pct)))
			}
			fmt.Fprintf(bw, "tell_latency_seconds_sum{%s} %s\n",
				l, secs(time.Duration(uint64(h.Mean())*h.Count())))
			fmt.Fprintf(bw, "tell_latency_seconds_count{%s} %d\n", l, h.Count())
		}
	}

	if len(rates) > 0 {
		fmt.Fprintln(bw, "# HELP tell_events_total All-time event counts per rate series.")
		fmt.Fprintln(bw, "# TYPE tell_events_total counter")
		for _, d := range rates {
			fmt.Fprintf(bw, "tell_events_total{%s} %d\n",
				labels("node", d.Node, "metric", d.Metric), d.Total)
		}
	}

	rows := p.HeatRows()
	if len(rows) > 0 {
		fmt.Fprintln(bw, "# HELP tell_range_ops_total All-time operations (reads+writes) per range.")
		fmt.Fprintln(bw, "# TYPE tell_range_ops_total counter")
		for _, r := range rows {
			fmt.Fprintf(bw, "tell_range_ops_total{%s} %d\n", rangeLabels(r), r.Total.Ops())
		}
		fmt.Fprintln(bw, "# HELP tell_range_conflicts_total All-time write conflicts per range.")
		fmt.Fprintln(bw, "# TYPE tell_range_conflicts_total counter")
		for _, r := range rows {
			fmt.Fprintf(bw, "tell_range_conflicts_total{%s} %d\n", rangeLabels(r), r.Total.Conflicts)
		}
		fmt.Fprintln(bw, "# HELP tell_range_bytes_total All-time payload bytes per range.")
		fmt.Fprintln(bw, "# TYPE tell_range_bytes_total counter")
		for _, r := range rows {
			fmt.Fprintf(bw, "tell_range_bytes_total{%s} %d\n",
				rangeLabels(r), r.Total.ReadBytes+r.Total.WriteBytes)
		}
		fmt.Fprintln(bw, "# HELP tell_range_recent_ops Operations per range over the retention horizon.")
		fmt.Fprintln(bw, "# TYPE tell_range_recent_ops gauge")
		for _, r := range rows {
			fmt.Fprintf(bw, "tell_range_recent_ops{%s} %d\n", rangeLabels(r), r.Recent.Ops())
		}
	}

	breaches, bdrop := p.Breaches()
	if len(breaches) > 0 || bdrop > 0 {
		fmt.Fprintln(bw, "# HELP tell_slo_breaches_total Closed windows whose quantile exceeded its SLO target.")
		fmt.Fprintln(bw, "# TYPE tell_slo_breaches_total counter")
		type bkey struct{ class, q string }
		counts := make(map[bkey]int)
		var order []bkey
		for _, b := range breaches {
			k := bkey{b.Class, b.Quantile}
			if counts[k] == 0 {
				order = append(order, k)
			}
			counts[k]++
		}
		// Occurrence order is deterministic but presentation should be
		// sorted like everything else.
		sort.Slice(order, func(i, j int) bool {
			if order[i].class != order[j].class {
				return order[i].class < order[j].class
			}
			return order[i].q < order[j].q
		})
		for _, k := range order {
			fmt.Fprintf(bw, "tell_slo_breaches_total{%s} %d\n",
				labels("class", k.class, "quantile", k.q), counts[k])
		}
	}

	caps, evicted := p.flight.Captures()
	fmt.Fprintln(bw, "# HELP tell_flight_captures Flight-recorder captures retained / evicted / events seen.")
	fmt.Fprintln(bw, "# TYPE tell_flight_captures gauge")
	fmt.Fprintf(bw, "tell_flight_captures{state=\"retained\"} %d\n", len(caps))
	fmt.Fprintf(bw, "tell_flight_captures{state=\"evicted\"} %d\n", evicted)
	fmt.Fprintf(bw, "tell_flight_captures{state=\"events_seen\"} %d\n", p.flight.Seen())
	return bw.Flush()
}

// secs renders a duration as seconds in shortest-form float notation.
func secs(d time.Duration) string {
	return strconv.FormatFloat(float64(d)/float64(time.Second), 'g', -1, 64)
}

// labels renders k1=v1,k2=v2 label pairs with Prometheus escaping.
func labels(kv ...string) string {
	var b strings.Builder
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(kv[i+1]))
		b.WriteByte('"')
	}
	return b.String()
}

func rangeLabels(r HeatRow) string {
	return labels("node", r.Node, "range", strconv.FormatUint(r.Range, 10))
}

func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, c := range s {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}
