package obs

import (
	"sort"
	"time"

	"tell/internal/metrics"
)

// seriesKey identifies one series. A struct key (not a concatenated
// string) so hot-path lookups do not allocate.
type seriesKey struct {
	Node   string
	Metric string
}

// kind discriminates series payloads.
type kind uint8

const (
	kindHist kind = iota // windowed latency histogram
	kindRate             // windowed event counter
)

// window is one time bucket of a series. idx is the absolute window index
// (at / Window), so the ring can tell a live slot from a stale one.
type window struct {
	idx    int64
	closed bool
	hist   metrics.Histogram // kindHist
	n      int64             // kindRate
}

// Series is one ring of windows for a (node, metric) pair. Rotation is
// driven entirely by the timestamps callers pass in, never by wall time,
// so series contents are a pure function of the event sequence.
type Series struct {
	key  seriesKey
	kind kind
	slo  *SLO // evaluated as histogram windows close; nil for most series

	ring []window
	cur  int64 // highest window index seen
	live bool  // any window recorded yet

	// total is the monotonic all-time count (rate deltas, or histogram
	// observations), for Prometheus-style counters that must survive
	// window eviction.
	total int64
}

// slot advances the series to the window containing at and returns that
// window. Windows the advance skips past are closed — histogram windows
// with an SLO get evaluated, in index order, producing breach events.
// Timestamps behind the current window fold into the current window (the
// clock is monotonic under the kernel; a daemon thread racing a rotation
// loses at most one window of attribution). Caller holds p.mu.
func (s *Series) slot(p *Pipeline, at time.Duration) *window {
	if at < 0 {
		at = 0
	}
	idx := int64(at / p.cfg.Window)
	if s.live && idx < s.cur {
		idx = s.cur
	}
	if !s.live || idx > s.cur {
		if s.live {
			s.closeUpTo(p, idx)
		}
		s.cur = idx
		s.live = true
	}
	w := &s.ring[idx%int64(len(s.ring))]
	if w.idx != idx {
		*w = window{idx: idx}
	}
	return w
}

// closeUpTo closes every still-open window with index < idx that holds
// data (empty windows are left alone — they never become points). Caller
// holds p.mu and guarantees s.live.
func (s *Series) closeUpTo(p *Pipeline, idx int64) {
	lo := s.cur - int64(len(s.ring)) + 1
	if lo < 0 {
		lo = 0
	}
	for j := lo; j < idx && j <= s.cur; j++ {
		w := &s.ring[j%int64(len(s.ring))]
		if w.idx != j || w.closed || (w.hist.Count() == 0 && w.n == 0) {
			continue
		}
		w.closed = true
		if s.kind == kindHist {
			p.evalWindowLocked(s, w)
		}
	}
}

// getSeriesLocked returns (creating if needed) the series for key. Caller
// holds p.mu.
func (p *Pipeline) getSeriesLocked(node, metric string, k kind, slo *SLO) *Series {
	key := seriesKey{Node: node, Metric: metric}
	s := p.series[key]
	if s == nil {
		s = &Series{key: key, kind: k, slo: slo, ring: make([]window, p.cfg.Windows)}
		p.series[key] = s
	}
	if s.slo == nil && slo != nil {
		s.slo = slo
	}
	return s
}

func (p *Pipeline) histLocked(at time.Duration, node, metric string, slo *SLO) *metrics.Histogram {
	s := p.getSeriesLocked(node, metric, kindHist, slo)
	s.total++ // one Record per call, so this is the all-time observation count
	return &s.slot(p, at).hist
}

func (p *Pipeline) countLocked(at time.Duration, node, metric string, delta int64) {
	s := p.getSeriesLocked(node, metric, kindRate, nil)
	s.total += delta
	s.slot(p, at).n += delta
}

// Sync advances every series to the window containing at, closing (and
// SLO-evaluating) everything older. Exporters call it so that quiescent
// series still close their trailing windows. Series are walked in sorted
// key order, keeping breach-event order deterministic.
func (p *Pipeline) Sync(at time.Duration) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	idx := int64(at / p.cfg.Window)
	for _, s := range p.sortedSeriesLocked() {
		if s.live && idx > s.cur {
			s.closeUpTo(p, idx)
			s.cur = idx
		}
	}
	for _, h := range p.sortedHeatLocked() {
		h.sync(at)
	}
}

// Point is one exported window of a series.
type Point struct {
	Idx   int64         // absolute window index
	Start time.Duration // Idx * Window
	// Histogram windows:
	Count            uint64
	Mean, P50, P99   time.Duration
	P999, Min, Max   time.Duration
	// Rate windows:
	N int64
}

// SeriesDump is the export form of one series: its retained windows in
// index order plus the all-time total.
type SeriesDump struct {
	Node   string
	Metric string
	Hist   bool
	Total  int64 // all-time count (rate) or observation count (hist)
	Points []Point
}

// Snapshot exports every series, sorted by (node, metric), windows in
// ascending index order — the deterministic feed for dumps and the wire
// stats extension.
func (p *Pipeline) Snapshot() []SeriesDump {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]SeriesDump, 0, len(p.series))
	for _, s := range p.sortedSeriesLocked() {
		d := SeriesDump{Node: s.key.Node, Metric: s.key.Metric,
			Hist: s.kind == kindHist, Total: s.total}
		for _, w := range s.windows() {
			pt := Point{Idx: w.idx, Start: time.Duration(w.idx) * p.cfg.Window}
			if s.kind == kindHist {
				pt.Count = w.hist.Count()
				if pt.Count > 0 {
					pt.Mean = w.hist.Mean()
					pt.P50 = w.hist.Percentile(50)
					pt.P99 = w.hist.Percentile(99)
					pt.P999 = w.hist.Percentile(99.9)
					pt.Min = w.hist.Min()
					pt.Max = w.hist.Max()
				}
			} else {
				pt.N = w.n
			}
			d.Points = append(d.Points, pt)
		}
		out = append(out, d)
	}
	return out
}

// Class returns the merged all-time histogram of one windowed histogram
// series (node, metric), merging retained windows in index order; nil if
// the series does not exist. Used by exporters that want run-level
// quantiles from the same data the windows hold.
func (p *Pipeline) Class(node, metric string) *metrics.Histogram {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	s := p.series[seriesKey{Node: node, Metric: metric}]
	if s == nil || s.kind != kindHist {
		return nil
	}
	h := &metrics.Histogram{}
	for _, w := range s.windows() {
		h.Merge(&w.hist)
	}
	return h
}

// windows returns pointers to the retained windows in ascending index
// order. Caller holds p.mu.
func (s *Series) windows() []*window {
	if !s.live {
		return nil
	}
	out := make([]*window, 0, len(s.ring))
	lo := s.cur - int64(len(s.ring)) + 1
	if lo < 0 {
		lo = 0
	}
	for j := lo; j <= s.cur; j++ {
		w := &s.ring[j%int64(len(s.ring))]
		if w.idx == j && (w.hist.Count() > 0 || w.n != 0 || w.closed || j == s.cur) {
			out = append(out, w)
		}
	}
	return out
}

// sortedSeriesLocked returns the series sorted by key. Caller holds p.mu.
func (p *Pipeline) sortedSeriesLocked() []*Series {
	out := make([]*Series, 0, len(p.series))
	for _, s := range p.series {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].key.Node != out[j].key.Node {
			return out[i].key.Node < out[j].key.Node
		}
		return out[i].key.Metric < out[j].key.Metric
	})
	return out
}

// sortedHeatLocked returns the heat trackers sorted by node. Caller holds
// p.mu.
func (p *Pipeline) sortedHeatLocked() []*Heat {
	out := make([]*Heat, 0, len(p.heat))
	for _, h := range p.heat {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].node < out[j].node })
	return out
}
