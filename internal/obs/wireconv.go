package obs

import (
	"tell/internal/wire"
)

// StatsExt renders the pipeline as the extended stats wire snapshot a
// daemon serves for KindStatsExtReq: merged series digests, heat rows,
// aggregated breach tallies and flight-recorder state. node names the
// answering daemon. Safe on a nil pipeline (returns an empty snapshot, so
// a daemon without telemetry still answers the protocol).
func (p *Pipeline) StatsExt(node string) *wire.StatsExt {
	ext := &wire.StatsExt{Node: node}
	if p == nil {
		return ext
	}
	now := p.Now()
	p.Sync(now)
	ext.NowNs = int64(now)
	ext.WindowNs = int64(p.cfg.Window)

	for _, d := range p.Snapshot() {
		s := wire.SeriesStat{Node: d.Node, Metric: d.Metric, Hist: d.Hist, Total: d.Total}
		if d.Hist {
			if h := p.Class(d.Node, d.Metric); h != nil && h.Count() > 0 {
				s.Count = h.Count()
				s.MeanNs = int64(h.Mean())
				s.P50Ns = int64(h.Percentile(50))
				s.P99Ns = int64(h.Percentile(99))
				s.P999Ns = int64(h.Percentile(99.9))
			}
		}
		ext.Series = append(ext.Series, s)
	}

	for _, r := range p.HeatRows() {
		ext.Heat = append(ext.Heat, wire.HeatStat{
			Node:        r.Node,
			Range:       r.Range,
			Reads:       r.Total.Reads,
			Writes:      r.Total.Writes,
			Conflicts:   r.Total.Conflicts,
			ReadBytes:   r.Total.ReadBytes,
			WriteBytes:  r.Total.WriteBytes,
			RecentOps:   r.Recent.Ops(),
			RecentLatNs: int64(r.Recent.MeanLat()),
		})
	}

	breaches, _ := p.Breaches()
	tally := make(map[[2]string]int64)
	var order [][2]string
	for _, b := range breaches {
		k := [2]string{b.Class, b.Quantile}
		if tally[k] == 0 {
			order = append(order, k)
		}
		tally[k]++
	}
	for _, k := range order {
		ext.Breaches = append(ext.Breaches, wire.BreachStat{
			Class: k[0], Quantile: k[1], Count: tally[k]})
	}

	caps, evicted := p.flight.Captures()
	ext.Flight = wire.FlightStat{
		Retained: uint64(len(caps)),
		Evicted:  evicted,
		Seen:     p.flight.Seen(),
	}
	ext.SortRows()
	return ext
}
