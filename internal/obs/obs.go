// Package obs is the deterministic time-series telemetry pipeline: the
// live, windowed view of the engine that PR-3's trace layer (running
// totals, whole-run traces) cannot give. It answers the questions the
// paper's shared-data design raises operationally — which storage-node
// range is hot, which transaction class is violating its latency SLO, what
// exactly did the slowest transactions do — with three instruments layered
// on the virtual clock:
//
//   - Windowed series: ring-buffered, mergeable windows of the existing
//     metrics.Histogram plus counter-rate series, keyed by (node, metric).
//     Windows advance with the timestamps callers pass in (the env clock),
//     so two runs with the same TELL_SEED produce byte-identical series.
//
//   - Per-range heat: read/write/conflict/bytes counters and latency per
//     partition on every storage node, the feed a placement controller
//     needs to detect and move hot ranges (H2O-style autonomic placement).
//
//   - Flight recorder: tail-based sampling that retroactively captures the
//     full span tree of any transaction crossing a latency threshold (fixed
//     or adaptive p99.9) or extending a per-class abort streak, into a
//     bounded deterministic ring with Perfetto export of just the outliers.
//
// Like internal/trace, the whole pipeline is free when absent: every method
// is a no-op on a nil receiver and the disabled path allocates nothing, so
// hooks can stay unconditional on hot paths.
package obs

import (
	"sync"
	"time"

	"tell/internal/metrics"
	"tell/internal/trace"
)

// SLO is one declarative latency objective for a transaction class.
// Quantiles with a zero target are not checked.
type SLO struct {
	Class          string
	P50, P99, P999 time.Duration
}

// Config tunes the pipeline. The zero value gets usable defaults.
type Config struct {
	// Window is the width of one series window (default 100ms — sized for
	// simulated runs; daemons use ~1s).
	Window time.Duration
	// Windows is the ring capacity per series (default 64).
	Windows int
	// SLOs are the declarative per-class latency targets evaluated each
	// time a window closes.
	SLOs []SLO
	// MaxBreaches bounds the breach-event log (default 1024); past it new
	// breaches are counted but not stored.
	MaxBreaches int

	// Slow is the flight recorder's fixed latency threshold; transactions
	// at or above it are captured. Zero relies on the adaptive threshold
	// alone.
	Slow time.Duration
	// AdaptiveOutliers, when true, additionally captures any transaction at
	// or above its class's all-time p99.9 once MinSamples of the class have
	// been observed (the "p99.9 outlier" rule; deterministic because the
	// threshold depends only on prior same-run samples).
	AdaptiveOutliers bool
	// MinSamples gates the adaptive threshold (default 500).
	MinSamples int
	// AbortStreak captures the transaction that extends a class's run of
	// consecutive aborts to this length (default 3; the "aborting after N
	// retries" rule — a terminal retrying a conflicting transaction shows
	// up as exactly such a streak). Zero disables abort capture.
	AbortStreak int
	// FlightEvents is the tap ring capacity in events (default 1<<16,
	// ~4 MiB); FlightCaptures bounds retained captures (default 32).
	FlightEvents   int
	FlightCaptures int
}

func (c *Config) defaults() {
	if c.Window <= 0 {
		c.Window = 100 * time.Millisecond
	}
	if c.Windows <= 0 {
		c.Windows = 64
	}
	if c.MaxBreaches <= 0 {
		c.MaxBreaches = 1024
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 500
	}
	if c.AbortStreak == 0 {
		c.AbortStreak = 3
	}
	if c.FlightEvents <= 0 {
		c.FlightEvents = 1 << 16
	}
	if c.FlightCaptures <= 0 {
		c.FlightCaptures = 32
	}
}

// Pipeline is the telemetry hub one run (or one daemon) owns: the series
// table, per-node heat trackers, the SLO breach log and the flight
// recorder. All methods are safe on a nil receiver — the disabled state —
// and safe for concurrent use.
type Pipeline struct {
	cfg Config
	now func() time.Duration

	mu       sync.Mutex
	series   map[seriesKey]*Series
	heat     map[string]*Heat
	slos     map[string]*SLO // class -> target
	breaches []Breach
	bdrop    uint64
	// classAll is the all-time per-class latency histogram backing the
	// adaptive outlier threshold.
	classAll map[string]*metrics.Histogram

	flight *Flight
}

// New creates a pipeline stamping relative time with now (the owning
// environment's clock; injected so obs depends on neither env nor sim).
func New(cfg Config, now func() time.Duration) *Pipeline {
	cfg.defaults()
	p := &Pipeline{
		cfg:      cfg,
		now:      now,
		series:   make(map[seriesKey]*Series),
		heat:     make(map[string]*Heat),
		slos:     make(map[string]*SLO),
		classAll: make(map[string]*metrics.Histogram),
	}
	for i := range cfg.SLOs {
		s := cfg.SLOs[i]
		p.slos[s.Class] = &s
	}
	p.flight = newFlight(cfg)
	return p
}

// Enabled reports whether the pipeline is live.
func (p *Pipeline) Enabled() bool { return p != nil }

// Window returns the configured window width (zero when disabled).
func (p *Pipeline) Window() time.Duration {
	if p == nil {
		return 0
	}
	return p.cfg.Window
}

// Now reads the pipeline's clock (zero when disabled).
func (p *Pipeline) Now() time.Duration {
	if p == nil || p.now == nil {
		return 0
	}
	return p.now()
}

// Flight returns the flight recorder (nil when the pipeline is disabled).
// The result implements trace.Tap; install it with Recorder.SetTap.
func (p *Pipeline) Flight() *Flight {
	if p == nil {
		return nil
	}
	return p.flight
}

// Heat returns (creating on first use) the per-range heat tracker for one
// storage node. Returns nil on a disabled pipeline; every Heat method is
// nil-safe, so callers attach it unconditionally.
func (p *Pipeline) Heat(node string) *Heat {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	h := p.heat[node]
	if h == nil {
		h = newHeat(node, p.cfg.Window, p.cfg.Windows)
		p.heat[node] = h
	}
	return h
}

// ObserveClass records one latency observation of a named class on a node
// into that class's windowed histogram series — the handler-latency feed
// daemons publish.
func (p *Pipeline) ObserveClass(at time.Duration, node, class string, d time.Duration) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.histLocked(at, node, "lat/"+class, nil).Record(d)
	p.mu.Unlock()
}

// Count adds delta to a windowed counter-rate series (node, metric) at
// time at.
func (p *Pipeline) Count(at time.Duration, node, metric string, delta int64) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.countLocked(at, node, metric, delta)
	p.mu.Unlock()
}

// ObserveTxn folds one finished transaction into the pipeline: the class's
// windowed latency histogram (evaluated against its SLO as windows close),
// committed/aborted rate series, the adaptive outlier threshold, and the
// flight recorder's capture decision. root is the transaction's root span
// (zero when tracing is off — the flight recorder then has nothing to
// extract and skips capture).
func (p *Pipeline) ObserveTxn(at time.Duration, class string, root trace.SpanID, e2e time.Duration, committed bool) {
	if p == nil {
		return
	}
	p.mu.Lock()
	slo := p.slos[class]
	p.histLocked(at, "txn", "lat/"+class, slo).Record(e2e)
	if committed {
		p.countLocked(at, "txn", "rate/committed", 1)
	} else {
		p.countLocked(at, "txn", "rate/aborted", 1)
	}
	all := p.classAll[class]
	if all == nil {
		all = &metrics.Histogram{}
		p.classAll[class] = all
	}
	// Threshold from the distribution *before* this sample, so the first
	// extreme outlier is judged against its predecessors.
	var adaptive time.Duration
	if p.cfg.AdaptiveOutliers && all.Count() >= uint64(p.cfg.MinSamples) {
		adaptive = all.Percentile(99.9)
	}
	all.Record(e2e)
	p.mu.Unlock()

	p.flight.observe(at, class, root, e2e, committed, p.cfg.Slow, adaptive)
}

// Breach is one SLO violation: a closed window whose class quantile
// exceeded its declarative target.
type Breach struct {
	At       time.Duration // window start
	Class    string
	Quantile string // "p50" | "p99" | "p999"
	Observed time.Duration
	Target   time.Duration
	Count    uint64 // samples in the window
}

// Breaches returns the stored breach events in occurrence order plus the
// count of breaches dropped at the MaxBreaches cap.
func (p *Pipeline) Breaches() ([]Breach, uint64) {
	if p == nil {
		return nil, 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]Breach, len(p.breaches))
	copy(out, p.breaches)
	return out, p.bdrop
}

// breachLocked appends one breach event. Caller holds p.mu.
func (p *Pipeline) breachLocked(b Breach) {
	if len(p.breaches) >= p.cfg.MaxBreaches {
		p.bdrop++
		return
	}
	p.breaches = append(p.breaches, b)
}

// evalWindowLocked checks a just-closed histogram window against its
// series' SLO target. Caller holds p.mu.
func (p *Pipeline) evalWindowLocked(s *Series, w *window) {
	if s.slo == nil || w.hist.Count() == 0 {
		return
	}
	at := time.Duration(w.idx) * p.cfg.Window
	check := func(q string, pct float64, target time.Duration) {
		if target <= 0 {
			return
		}
		if got := w.hist.Percentile(pct); got > target {
			p.breachLocked(Breach{At: at, Class: s.slo.Class, Quantile: q,
				Observed: got, Target: target, Count: w.hist.Count()})
		}
	}
	check("p50", 50, s.slo.P50)
	check("p99", 99, s.slo.P99)
	check("p999", 99.9, s.slo.P999)
}
