package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"tell/internal/trace"
)

func ms(n int64) time.Duration { return time.Duration(n) * time.Millisecond }

func TestSeriesWindowingAndSnapshot(t *testing.T) {
	p := New(Config{Window: 100 * time.Millisecond, Windows: 4}, nil)
	p.ObserveClass(ms(10), "sn1", "store", ms(2))
	p.ObserveClass(ms(50), "sn1", "store", ms(4))
	p.ObserveClass(ms(150), "sn1", "store", ms(8)) // second window
	p.Count(ms(10), "sn1", "rate/msgs", 3)
	p.Count(ms(250), "sn1", "rate/msgs", 5) // third window

	snap := p.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("series = %d, want 2", len(snap))
	}
	// Sorted by (node, metric): lat/store before rate/msgs.
	lat, rate := snap[0], snap[1]
	if lat.Metric != "lat/store" || !lat.Hist || lat.Total != 3 {
		t.Fatalf("lat series = %+v", lat)
	}
	if len(lat.Points) != 2 || lat.Points[0].Count != 2 || lat.Points[1].Count != 1 {
		t.Fatalf("lat points = %+v", lat.Points)
	}
	if lat.Points[0].Idx != 0 || lat.Points[1].Idx != 1 || lat.Points[1].Start != ms(100) {
		t.Fatalf("lat point indices = %+v", lat.Points)
	}
	if rate.Metric != "rate/msgs" || rate.Hist || rate.Total != 8 {
		t.Fatalf("rate series = %+v", rate)
	}
	if len(rate.Points) != 2 || rate.Points[0].N != 3 || rate.Points[1].N != 5 {
		t.Fatalf("rate points = %+v", rate.Points)
	}
}

func TestSeriesRingEviction(t *testing.T) {
	p := New(Config{Window: ms(10), Windows: 4}, nil)
	for i := int64(0); i < 10; i++ {
		p.Count(ms(10*i), "n", "rate/x", 1)
	}
	snap := p.Snapshot()
	if snap[0].Total != 10 {
		t.Fatalf("total = %d, want 10 (eviction must not lose the monotonic total)", snap[0].Total)
	}
	if len(snap[0].Points) != 4 {
		t.Fatalf("points = %d, want ring capacity 4", len(snap[0].Points))
	}
	if snap[0].Points[0].Idx != 6 || snap[0].Points[3].Idx != 9 {
		t.Fatalf("retained window range = [%d, %d], want [6, 9]",
			snap[0].Points[0].Idx, snap[0].Points[3].Idx)
	}
}

func TestSLOBreachOnWindowClose(t *testing.T) {
	p := New(Config{
		Window: ms(100),
		SLOs:   []SLO{{Class: "neworder", P99: ms(10)}},
	}, nil)
	// Window 0: all observations slow — p99 >> 10ms target.
	for i := 0; i < 20; i++ {
		p.ObserveTxn(ms(5), "neworder", 0, ms(50), true)
	}
	if b, _ := p.Breaches(); len(b) != 0 {
		t.Fatalf("breach before window closed: %+v", b)
	}
	// Advancing into window 1 closes window 0 and evaluates it.
	p.ObserveTxn(ms(150), "neworder", 0, ms(1), true)
	b, _ := p.Breaches()
	if len(b) != 1 {
		t.Fatalf("breaches = %+v, want 1", b)
	}
	if b[0].Class != "neworder" || b[0].Quantile != "p99" || b[0].At != 0 || b[0].Count != 20 {
		t.Fatalf("breach = %+v", b[0])
	}
	if b[0].Observed <= b[0].Target {
		t.Fatalf("observed %v must exceed target %v", b[0].Observed, b[0].Target)
	}
	// Sync past window 1 closes it; its p99 (1ms) is under target — no new
	// breach — and a healthy class never breaches.
	p.Sync(ms(1000))
	if b, _ := p.Breaches(); len(b) != 1 {
		t.Fatalf("breaches after sync = %+v, want still 1", b)
	}
}

func TestHeatTracksHottestRange(t *testing.T) {
	p := New(Config{Window: ms(100)}, nil)
	h := p.Heat("sn1")
	for i := 0; i < 100; i++ {
		h.Add(ms(int64(i)), 3, HeatDelta{Reads: 1, ReadBytes: 64})
	}
	h.Add(ms(5), 1, HeatDelta{Writes: 1, WriteBytes: 32, Conflicts: 1})
	p.Heat("sn2").Add(ms(7), 2, HeatDelta{Reads: 2})

	rows := p.HeatRows()
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	// Sorted by (node, range).
	if rows[0].Node != "sn1" || rows[0].Range != 1 || rows[2].Node != "sn2" {
		t.Fatalf("row order = %+v", rows)
	}
	hot, ok := HottestRange(rows)
	if !ok || hot.Range != 3 || hot.Recent.Ops() != 100 || hot.Total.ReadBytes != 6400 {
		t.Fatalf("hottest = %+v ok=%t", hot, ok)
	}
	SortHeatByRecent(rows)
	if rows[0].Range != 3 {
		t.Fatalf("hottest-first order = %+v", rows)
	}
	if rows[1].Node != "sn2" || rows[2].Node != "sn1" {
		t.Fatalf("tie order (2 ops before 1 op) = %+v", rows)
	}
}

// TestHeatRecentAgesOut: a once-hot range must stop looking hot once its
// windows fall outside the retention horizon.
func TestHeatRecentAgesOut(t *testing.T) {
	p := New(Config{Window: ms(10), Windows: 4}, nil)
	h := p.Heat("sn1")
	h.Add(0, 7, HeatDelta{Reads: 50})
	p.Sync(ms(1000)) // long quiet period
	rows := p.HeatRows()
	if rows[0].Total.Reads != 50 {
		t.Fatalf("total lost: %+v", rows[0])
	}
	if rows[0].Recent.Ops() != 0 {
		t.Fatalf("recent ops = %d, want 0 after aging out", rows[0].Recent.Ops())
	}
}

// buildTrace emits a small two-node transaction span tree through a
// counters-only recorder feeding the flight tap, and returns the root id.
func buildTrace(r *trace.Recorder, clock *time.Duration) trace.SpanID {
	root := r.NewID()
	*clock += ms(1)
	child := r.NewID()
	flow := r.MsgSend(child, "client", "sn1", 100)
	*clock += ms(2)
	r.MsgRecv(flow, "sn1", 100)
	r.Instant(child, "sn1", "read", 1, 0)
	handler := r.Span(0, child, "sn1", "handler", *clock, 0, 0)
	_ = handler
	*clock += ms(1)
	r.Span(child, root, "client", "rpc", *clock-ms(4), 0, 0)
	r.Span(root, 0, "client", "txn", *clock-ms(5), 0, 0)
	return root
}

func TestFlightCapturesSlowTxn(t *testing.T) {
	var clock time.Duration
	now := func() time.Duration { return clock }
	p := New(Config{Window: ms(100), Slow: ms(20), FlightEvents: 1024}, now)
	r := trace.NewCounters(now)
	r.SetTap(p.Flight())

	// A fast transaction: below threshold, not captured.
	fastRoot := buildTrace(r, &clock)
	p.ObserveTxn(clock, "neworder", fastRoot, ms(5), true)

	// A slow one: captured with its full tree, not the fast one's.
	slowRoot := buildTrace(r, &clock)
	p.ObserveTxn(clock, "neworder", slowRoot, ms(25), true)

	caps, evicted := p.Flight().Captures()
	if len(caps) != 1 || evicted != 0 {
		t.Fatalf("captures = %d evicted = %d, want 1/0", len(caps), evicted)
	}
	c := caps[0]
	if c.Reason != "slow" || c.Root != slowRoot || c.E2E != ms(25) || c.Threshold != ms(20) {
		t.Fatalf("capture = %+v", c)
	}
	// Tree: txn span, rpc span, handler span, msg send+recv, instant = 6.
	if len(c.Events) != 6 {
		t.Fatalf("events = %d (%+v), want 6", len(c.Events), c.Events)
	}
	for _, e := range c.Events {
		if e.ID == fastRoot || e.Parent == fastRoot {
			t.Fatalf("fast txn's event leaked into capture: %+v", e)
		}
	}
	// Perfetto export of just this capture renders its events.
	var buf bytes.Buffer
	if err := c.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"handler"`) || !strings.Contains(buf.String(), `"send:sn1"`) {
		t.Fatalf("chrome trace missing capture content:\n%s", buf.String())
	}
}

func TestFlightAbortStreak(t *testing.T) {
	var clock time.Duration
	now := func() time.Duration { return clock }
	p := New(Config{Window: ms(100), AbortStreak: 3, FlightEvents: 1024}, now)
	r := trace.NewCounters(now)
	r.SetTap(p.Flight())

	for i := 0; i < 2; i++ {
		root := buildTrace(r, &clock)
		p.ObserveTxn(clock, "payment", root, ms(1), false)
	}
	if caps, _ := p.Flight().Captures(); len(caps) != 0 {
		t.Fatalf("captured before streak length reached: %d", len(caps))
	}
	root := buildTrace(r, &clock)
	p.ObserveTxn(clock, "payment", root, ms(1), false)
	caps, _ := p.Flight().Captures()
	if len(caps) != 1 || caps[0].Reason != "abort-streak" || caps[0].Root != root {
		t.Fatalf("captures = %+v", caps)
	}
	// Streak reset: two more aborts don't re-fire...
	for i := 0; i < 2; i++ {
		rt := buildTrace(r, &clock)
		p.ObserveTxn(clock, "payment", rt, ms(1), false)
	}
	if caps, _ := p.Flight().Captures(); len(caps) != 1 {
		t.Fatalf("streak did not reset: %d captures", len(caps))
	}
	// ...and a commit in between restarts the count.
	ok := buildTrace(r, &clock)
	p.ObserveTxn(clock, "payment", ok, ms(1), true)
	for i := 0; i < 3; i++ {
		rt := buildTrace(r, &clock)
		p.ObserveTxn(clock, "payment", rt, ms(1), false)
	}
	if caps, _ := p.Flight().Captures(); len(caps) != 2 {
		t.Fatalf("captures after second streak = %d, want 2", len(caps))
	}
}

func TestFlightAdaptiveOutlier(t *testing.T) {
	var clock time.Duration
	now := func() time.Duration { return clock }
	p := New(Config{Window: ms(100), AdaptiveOutliers: true, MinSamples: 100,
		FlightEvents: 4096, AbortStreak: -1}, now)
	r := trace.NewCounters(now)
	r.SetTap(p.Flight())

	// 200 unremarkable transactions arm the threshold near 1ms...
	for i := 0; i < 200; i++ {
		root := buildTrace(r, &clock)
		p.ObserveTxn(clock, "neworder", root, ms(1), true)
	}
	if caps, _ := p.Flight().Captures(); len(caps) != 0 {
		t.Fatalf("uniform traffic captured: %d", len(caps))
	}
	// ...so a 100ms straggler is a p99.9 outlier.
	root := buildTrace(r, &clock)
	p.ObserveTxn(clock, "neworder", root, ms(100), true)
	caps, _ := p.Flight().Captures()
	if len(caps) != 1 || caps[0].Reason != "p999-outlier" {
		t.Fatalf("captures = %+v", caps)
	}
	if caps[0].Threshold <= 0 || caps[0].Threshold > ms(2) {
		t.Fatalf("adaptive threshold = %v, want ~1ms", caps[0].Threshold)
	}
}

func TestFlightCaptureRingBounded(t *testing.T) {
	var clock time.Duration
	now := func() time.Duration { return clock }
	p := New(Config{Window: ms(100), Slow: ms(1), FlightEvents: 1024,
		FlightCaptures: 2}, now)
	r := trace.NewCounters(now)
	r.SetTap(p.Flight())
	var roots []trace.SpanID
	for i := 0; i < 5; i++ {
		root := buildTrace(r, &clock)
		roots = append(roots, root)
		p.ObserveTxn(clock, "neworder", root, ms(10), true)
	}
	caps, evicted := p.Flight().Captures()
	if len(caps) != 2 || evicted != 3 {
		t.Fatalf("captures = %d evicted = %d, want 2/3", len(caps), evicted)
	}
	if caps[0].Root != roots[3] || caps[1].Root != roots[4] {
		t.Fatalf("retained wrong captures: %+v", caps)
	}
}

// synthLoad drives one deterministic synthetic workload through a fresh
// pipeline + recorder pair and returns the dump and prom exposition.
func synthLoad(t *testing.T) (string, string) {
	t.Helper()
	var clock time.Duration
	now := func() time.Duration { return clock }
	p := New(Config{
		Window: ms(50), Windows: 8,
		SLOs: []SLO{{Class: "neworder", P99: ms(30)}},
		Slow: ms(40), FlightEvents: 8192,
	}, now)
	r := trace.NewCounters(now)
	r.SetTap(p.Flight())
	h := p.Heat("sn1")

	lat := []int64{2, 5, 9, 50, 3, 41, 7, 2, 60, 4}
	for i := 0; i < 40; i++ {
		root := buildTrace(r, &clock)
		d := ms(lat[i%len(lat)])
		committed := i%7 != 3
		p.ObserveTxn(clock, "neworder", root, d, committed)
		h.Add(clock, uint64(i%3), HeatDelta{Reads: 2, Writes: 1,
			ReadBytes: 128, WriteBytes: 64, Lat: d, LatN: 1})
		p.Count(clock, "sn1", "rate/msgs", 4)
		p.ObserveClass(clock, "sn1", "store", d/10)
		clock += ms(13)
	}

	var dump, prom bytes.Buffer
	if err := p.WriteDump(&dump, clock); err != nil {
		t.Fatal(err)
	}
	if err := p.WritePrometheus(&prom, clock); err != nil {
		t.Fatal(err)
	}
	return dump.String(), prom.String()
}

// TestDeterministicDump: two identical synthetic runs must produce
// byte-identical dumps and expositions — the package-level determinism
// contract the end-to-end obs golden builds on.
func TestDeterministicDump(t *testing.T) {
	d1, p1 := synthLoad(t)
	d2, p2 := synthLoad(t)
	if d1 != d2 {
		t.Fatalf("dumps differ:\n--- run1\n%s\n--- run2\n%s", d1, d2)
	}
	if p1 != p2 {
		t.Fatalf("prom expositions differ:\n--- run1\n%s\n--- run2\n%s", p1, p2)
	}
	// The workload has slow transactions and an SLO set tight enough to
	// breach; the dump must show real content, not vacuous equality.
	for _, want := range []string{"series ", "heat sn1", "breach ", "capture "} {
		if !strings.Contains(d1, want) {
			t.Fatalf("dump missing %q:\n%s", want, d1)
		}
	}
}

// TestPromGolden pins the exact exposition for a tiny fixed input: the
// format is a wire contract for scrapers, so any change must be deliberate.
func TestPromGolden(t *testing.T) {
	p := New(Config{Window: ms(100), SLOs: []SLO{{Class: "neworder", P99: ms(1)}}}, nil)
	p.ObserveTxn(ms(10), "neworder", 0, ms(4), true)
	p.ObserveTxn(ms(20), "neworder", 0, ms(4), false)
	p.Heat("sn1").Add(ms(10), 2, HeatDelta{Reads: 3, Writes: 1, ReadBytes: 256, Conflicts: 1})

	var buf bytes.Buffer
	if err := p.WritePrometheus(&buf, ms(250)); err != nil {
		t.Fatal(err)
	}
	want := `# HELP tell_latency_seconds Latency quantiles over the retained windows.
# TYPE tell_latency_seconds summary
tell_latency_seconds{node="txn",metric="lat/neworder",quantile="0.5"} 0.004067944
tell_latency_seconds{node="txn",metric="lat/neworder",quantile="0.99"} 0.004067944
tell_latency_seconds{node="txn",metric="lat/neworder",quantile="0.999"} 0.004067944
tell_latency_seconds_sum{node="txn",metric="lat/neworder"} 0.008
tell_latency_seconds_count{node="txn",metric="lat/neworder"} 2
# HELP tell_events_total All-time event counts per rate series.
# TYPE tell_events_total counter
tell_events_total{node="txn",metric="rate/aborted"} 1
tell_events_total{node="txn",metric="rate/committed"} 1
# HELP tell_range_ops_total All-time operations (reads+writes) per range.
# TYPE tell_range_ops_total counter
tell_range_ops_total{node="sn1",range="2"} 4
# HELP tell_range_conflicts_total All-time write conflicts per range.
# TYPE tell_range_conflicts_total counter
tell_range_conflicts_total{node="sn1",range="2"} 1
# HELP tell_range_bytes_total All-time payload bytes per range.
# TYPE tell_range_bytes_total counter
tell_range_bytes_total{node="sn1",range="2"} 256
# HELP tell_range_recent_ops Operations per range over the retention horizon.
# TYPE tell_range_recent_ops gauge
tell_range_recent_ops{node="sn1",range="2"} 4
# HELP tell_slo_breaches_total Closed windows whose quantile exceeded its SLO target.
# TYPE tell_slo_breaches_total counter
tell_slo_breaches_total{class="neworder",quantile="p99"} 1
# HELP tell_flight_captures Flight-recorder captures retained / evicted / events seen.
# TYPE tell_flight_captures gauge
tell_flight_captures{state="retained"} 0
tell_flight_captures{state="evicted"} 0
tell_flight_captures{state="events_seen"} 0
`
	if got := buf.String(); got != want {
		t.Fatalf("exposition drifted:\n--- got\n%s\n--- want\n%s", got, want)
	}
}

// TestDisabledPipelineZeroAlloc pins the disabled path: every hook on a
// nil pipeline (and nil heat/flight) must allocate nothing, so callers can
// leave telemetry hooks unconditional on hot paths.
func TestDisabledPipelineZeroAlloc(t *testing.T) {
	var p *Pipeline
	h := p.Heat("sn1")
	f := p.Flight()
	if h != nil || f != nil {
		t.Fatal("disabled pipeline handed out live components")
	}
	allocs := testing.AllocsPerRun(100, func() {
		p.ObserveTxn(ms(1), "neworder", 1, ms(5), true)
		p.ObserveClass(ms(1), "sn1", "store", ms(1))
		p.Count(ms(1), "sn1", "rate/msgs", 1)
		p.Sync(ms(1))
		h.Add(ms(1), 0, HeatDelta{Reads: 1})
		f.TraceEvent(trace.Event{})
		f.observe(ms(1), "neworder", 1, ms(5), true, 0, 0)
	})
	if allocs != 0 {
		t.Fatalf("disabled path allocates %.1f per run, want 0", allocs)
	}
}

func TestNilPipelineQueriesSafe(t *testing.T) {
	var p *Pipeline
	if p.Enabled() || p.Snapshot() != nil || p.HeatRows() != nil {
		t.Fatal("nil pipeline returned live data")
	}
	if b, n := p.Breaches(); b != nil || n != 0 {
		t.Fatal("nil breaches")
	}
	var buf bytes.Buffer
	if err := p.WriteDump(&buf, 0); err != nil {
		t.Fatal(err)
	}
	if err := p.WritePrometheus(&buf, 0); err != nil {
		t.Fatal(err)
	}
	var f *Flight
	if c, n := f.Captures(); c != nil || n != 0 || f.Seen() != 0 {
		t.Fatal("nil flight returned data")
	}
}
