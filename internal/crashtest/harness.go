package crashtest

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"tell/internal/det"
	"tell/internal/env"
	"tell/internal/sim"
	"tell/internal/store"
	"tell/internal/transport"
	"tell/internal/wire"
)

// OpKind enumerates the workload's operations.
type OpKind int

const (
	OpPut OpKind = iota
	OpDelete
	OpCounter
	OpCheckpoint
)

// Op is one workload step. Checkpoint steps mutate nothing but move the
// durable floor, so a crash during one must never lose earlier state.
type Op struct {
	Kind  OpKind
	Key   string
	Val   string
	Delta int64
}

func (o Op) String() string {
	switch o.Kind {
	case OpPut:
		return fmt.Sprintf("put(%s=%s)", o.Key, o.Val)
	case OpDelete:
		return fmt.Sprintf("del(%s)", o.Key)
	case OpCounter:
		return fmt.Sprintf("ctr(%s%+d)", o.Key, o.Delta)
	case OpCheckpoint:
		return "checkpoint"
	}
	return "?"
}

// GenOps builds a deterministic op history: puts and deletes over a small
// hot key space, counter bumps on a disjoint key space, and periodic
// checkpoints. Deletes target only keys live at that point of the history,
// so every prefix of the history is a valid execution.
func GenOps(seed int64, n int) []Op {
	rng := rand.New(rand.NewSource(seed))
	live := make(map[string]bool)
	ops := make([]Op, 0, n)
	for i := 0; i < n; i++ {
		r := rng.Intn(100)
		switch {
		case r < 55:
			key := fmt.Sprintf("k%02d", rng.Intn(16))
			ops = append(ops, Op{Kind: OpPut, Key: key, Val: fmt.Sprintf("v%d.%d", i, rng.Intn(1000))})
			live[key] = true
		case r < 70:
			ops = append(ops, Op{Kind: OpCounter, Key: fmt.Sprintf("c%d", rng.Intn(4)),
				Delta: int64(rng.Intn(21)) - 5})
		case r < 85:
			keys := det.Keys(live)
			if len(keys) == 0 {
				ops = append(ops, Op{Kind: OpCheckpoint})
				continue
			}
			key := keys[rng.Intn(len(keys))]
			ops = append(ops, Op{Kind: OpDelete, Key: key})
			delete(live, key)
		default:
			ops = append(ops, Op{Kind: OpCheckpoint})
		}
	}
	return ops
}

// Entry is the logical value of one key in the shadow model: a regular
// value, a counter, or a tombstone — stamps deliberately excluded so the
// model stays independent of the engine's internals.
type Entry struct {
	Val     string
	Ctr     int64
	Counter bool
	Deleted bool
}

func (e Entry) String() string {
	switch {
	case e.Deleted:
		return "<tombstone>"
	case e.Counter:
		return fmt.Sprintf("ctr:%d", e.Ctr)
	}
	return fmt.Sprintf("%q", e.Val)
}

// ModelAt replays the first n ops through the shadow model.
func ModelAt(ops []Op, n int) map[string]Entry {
	m := make(map[string]Entry)
	for _, op := range ops[:n] {
		switch op.Kind {
		case OpPut:
			m[op.Key] = Entry{Val: op.Val}
		case OpDelete:
			m[op.Key] = Entry{Deleted: true}
		case OpCounter:
			e := m[op.Key]
			e.Counter, e.Ctr = true, e.Ctr+op.Delta
			m[op.Key] = e
		}
	}
	return m
}

// Normalize projects a storage node's state dump onto the model's domain.
func Normalize(dump []wire.Mutation) map[string]Entry {
	m := make(map[string]Entry, len(dump))
	for _, mu := range dump {
		var e Entry
		switch {
		case mu.Deleted:
			e.Deleted = true
		case mu.Counter:
			e.Counter, e.Ctr = true, mu.CtrVal
		default:
			e.Val = string(mu.Val)
		}
		m[string(mu.Key)] = e
	}
	return m
}

// Diff returns a human-readable difference between want and got, or "" if
// they represent the same logical state.
func Diff(want, got map[string]Entry) string {
	keys := make(map[string]bool, len(want)+len(got))
	for _, k := range det.Keys(want) {
		keys[k] = true
	}
	for _, k := range det.Keys(got) {
		keys[k] = true
	}
	var b strings.Builder
	for _, k := range det.Keys(keys) {
		w, okW := want[k]
		g, okG := got[k]
		switch {
		case !okW:
			fmt.Fprintf(&b, " %s: unexpected %s;", k, g)
		case !okG:
			fmt.Fprintf(&b, " %s: missing (want %s);", k, w)
		case w != g:
			fmt.Fprintf(&b, " %s: want %s got %s;", k, w, g)
		}
	}
	return b.String()
}

// WorkloadResult summarizes one workload run against a crash-point disk.
type WorkloadResult struct {
	// Acked is how many ops were acknowledged before the first failure.
	Acked int
	// Failed is the index of the first op that returned an error, -1 if
	// the whole history ran clean. The failed op is the one in-flight at
	// the crash: it may or may not have reached the disk.
	Failed int
	// Image is the disk's post-crash durable contents.
	Image map[string][]byte
}

// durOptions are the crashtest cluster's durability settings: tiny segments
// and chunks so checkpoints and segment rolls happen every few ops, and no
// automatic checkpointing — the workload's explicit Checkpoint ops keep the
// boundary schedule sequential and therefore enumerable.
func durOptions(disk *Disk) *store.DurOptions {
	return &store.DurOptions{Backend: disk, SegmentBytes: 512, ChunkBytes: 512}
}

// RunWorkload drives ops sequentially through a single durable storage node
// backed by disk, stopping at the first error (the crash surfacing). The
// manager is stopped: this harness pins fail-stop local recovery, and the
// failure detector would only race the driver to declare the node dead.
func RunWorkload(t *testing.T, seed int64, disk *Disk, ops []Op) WorkloadResult {
	t.Helper()
	k := sim.NewKernel(seed)
	defer k.Shutdown()
	envr := env.NewSim(k)
	net := transport.NewSimNet(k, transport.InfiniBand())
	cl, err := store.NewCluster(envr, net, store.ClusterConfig{
		NumNodes: 1, ReplicationFactor: 1, Durable: durOptions(disk),
	})
	if err != nil {
		t.Fatal(err)
	}
	cl.Manager.Stop()
	pn := envr.NewNode("pn0", 2)
	client := cl.NewClient(pn)
	res := WorkloadResult{Failed: -1}
	pn.Go("driver", func(ctx env.Ctx) {
		defer k.Stop()
		for i := range ops {
			if err := issueOp(ctx, client, cl, ops[i]); err != nil {
				res.Failed = i
				return
			}
			res.Acked = i + 1
		}
	})
	if err := k.RunUntil(sim.Time(600 * time.Second)); err != nil {
		t.Fatal(err)
	}
	res.Image = disk.Image()
	return res
}

func issueOp(ctx env.Ctx, client *store.Client, cl *store.Cluster, op Op) error {
	switch op.Kind {
	case OpPut:
		_, err := client.Put(ctx, []byte(op.Key), []byte(op.Val))
		return err
	case OpDelete:
		return client.Delete(ctx, []byte(op.Key), 0)
	case OpCounter:
		_, err := client.CounterAdd(ctx, []byte(op.Key), op.Delta)
		return err
	case OpCheckpoint:
		return cl.Node("sn0").Checkpoint(ctx)
	}
	return fmt.Errorf("crashtest: unknown op kind %d", op.Kind)
}

// RecoverImage boots a fresh storage node on a copy of the crash image, runs
// checkpoint-load + WAL replay, and returns the recovered logical state.
func RecoverImage(t *testing.T, seed int64, image map[string][]byte) map[string]Entry {
	t.Helper()
	k := sim.NewKernel(seed + 1)
	defer k.Shutdown()
	envr := env.NewSim(k)
	net := transport.NewSimNet(k, transport.InfiniBand())
	cl, err := store.NewCluster(envr, net, store.ClusterConfig{
		NumNodes: 1, ReplicationFactor: 1, Durable: durOptions(NewDiskFrom(image)),
	})
	if err != nil {
		t.Fatal(err)
	}
	cl.Manager.Stop()
	var dump []wire.Mutation
	ok := false
	boot := envr.NewNode("boot", 2)
	boot.Go("recover", func(ctx env.Ctx) {
		defer k.Stop()
		if _, err := cl.Node("sn0").RecoverLocal(ctx); err != nil {
			t.Errorf("recover from image: %v", err)
			return
		}
		dump = cl.Node("sn0").StateDump()
		ok = true
	})
	if err := k.RunUntil(sim.Time(600 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.FailNow()
	}
	return Normalize(dump)
}
