package crashtest

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"tell/internal/env"
	"tell/internal/sim"
	"tell/internal/store"
	"tell/internal/testutil"
	"tell/internal/transport"
	"tell/internal/wire"
)

// TestCrashEveryBoundary is the tentpole proof: a dry run counts the
// workload's durability boundaries, then the same workload is re-run once
// per boundary with a crash injected there (cycling the lost/torn/applied
// variants), the surviving image is replayed into a fresh node, and the
// recovered state must equal the acknowledged prefix of the history — or
// the acknowledged prefix plus the single in-flight op, which a crash
// between durability and ack legitimately leaves applied.
func TestCrashEveryBoundary(t *testing.T) {
	seed := testutil.Seed(t, 50)
	ops := GenOps(seed, 70)

	dry := NewDisk()
	clean := RunWorkload(t, seed, dry, ops)
	if clean.Failed != -1 {
		t.Fatalf("dry run failed at op %d", clean.Failed)
	}
	total := dry.Boundaries()
	if total < len(ops)/2 {
		t.Fatalf("suspiciously few durability boundaries: %d for %d ops", total, len(ops))
	}
	if diff := Diff(ModelAt(ops, len(ops)), RecoverImage(t, seed, clean.Image)); diff != "" {
		t.Fatalf("clean image replay diverged:%s", diff)
	}

	for fail := 1; fail <= total; fail++ {
		variant := Variant(fail % 3)
		disk := NewDisk()
		disk.SetCrashPoint(fail, variant)
		res := RunWorkload(t, seed, disk, ops)
		if !disk.Crashed() {
			t.Fatalf("boundary %d/%d never fired", fail, total)
		}
		got := RecoverImage(t, seed, res.Image)
		acked := ModelAt(ops, res.Acked)
		diff := Diff(acked, got)
		if diff != "" && res.Failed >= 0 {
			// The op in flight at the crash may have become durable
			// before the ack was lost; both outcomes are legal.
			if withInflight := Diff(ModelAt(ops, res.Failed+1), got); withInflight == "" {
				diff = ""
			}
		}
		if diff != "" {
			t.Fatalf("crash at %s (boundary %d/%d): replay diverged from acked prefix (%d ops):%s",
				disk.Site(), fail, total, res.Acked, diff)
		}
	}
	t.Logf("seed=%d: swept %d crash boundaries over %d ops, replay converged at every one",
		seed, total, len(ops))
}

// convergeDiff runs one uninterrupted history on a durable node, then kills
// the node's volatile state and replays checkpoint + WAL suffix; the
// recovered dump must be byte-identical (stamps included) to the live dump.
// Op errors are treated as no-ops so the predicate is total over arbitrary
// subsequences, which shrinking produces.
func convergeDiff(t *testing.T, seed int64, ops []Op) string {
	t.Helper()
	k := sim.NewKernel(seed)
	defer k.Shutdown()
	envr := env.NewSim(k)
	net := transport.NewSimNet(k, transport.InfiniBand())
	cl, err := store.NewCluster(envr, net, store.ClusterConfig{
		NumNodes: 1, ReplicationFactor: 1, Durable: durOptions(NewDisk()),
	})
	if err != nil {
		t.Fatal(err)
	}
	cl.Manager.Stop()
	pn := envr.NewNode("pn0", 2)
	client := cl.NewClient(pn)
	var diff string
	done := false
	pn.Go("driver", func(ctx env.Ctx) {
		defer k.Stop()
		for i := range ops {
			if err := issueOp(ctx, client, cl, ops[i]); err != nil {
				// Only benign rejections (delete of a missing key in a
				// shrunk subsequence) are expected; they mutate nothing.
				if ops[i].Kind != OpDelete {
					diff = fmt.Sprintf("op %d %v failed: %v", i, ops[i], err)
					done = true
					return
				}
			}
		}
		sn := cl.Node("sn0")
		live := sn.StateDump()
		sn.CrashVolatile(false)
		if _, err := sn.RecoverLocal(ctx); err != nil {
			diff = fmt.Sprintf("recover: %v", err)
			done = true
			return
		}
		diff = dumpDiff(live, sn.StateDump())
		done = true
	})
	if err := k.RunUntil(sim.Time(600 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("converge driver did not finish")
	}
	return diff
}

// dumpDiff compares two state dumps field-for-field, stamps included.
func dumpDiff(live, recovered []wire.Mutation) string {
	if reflect.DeepEqual(live, recovered) {
		return ""
	}
	if len(live) != len(recovered) {
		return fmt.Sprintf("live has %d cells, recovered %d", len(live), len(recovered))
	}
	for i := range live {
		if !reflect.DeepEqual(live[i], recovered[i]) {
			return fmt.Sprintf("cell %d: live %+v, recovered %+v", i, live[i], recovered[i])
		}
	}
	return "dumps differ"
}

// shrinkOps greedily minimizes a failing history: repeatedly drop chunks
// (halving the chunk size) while the divergence persists.
func shrinkOps(t *testing.T, seed int64, ops []Op) []Op {
	t.Helper()
	cur := ops
	for chunk := len(cur) / 2; chunk >= 1; {
		removed := false
		for start := 0; start+chunk <= len(cur); start += chunk {
			cand := make([]Op, 0, len(cur)-chunk)
			cand = append(cand, cur[:start]...)
			cand = append(cand, cur[start+chunk:]...)
			if len(cand) > 0 && convergeDiff(t, seed, cand) != "" {
				cur = cand
				removed = true
				break
			}
		}
		if !removed {
			chunk /= 2
		}
	}
	return cur
}

// TestReplayConvergesProperty is the randomized property: for random op
// histories with checkpoints at random positions, killing the volatile
// state and replaying checkpoint + WAL suffix reproduces the uninterrupted
// execution byte-for-byte. On failure the history is shrunk to a minimal
// reproducer before reporting.
func TestReplayConvergesProperty(t *testing.T) {
	seed := testutil.Seed(t, 51)
	rng := rand.New(rand.NewSource(seed))
	for trial := 0; trial < 6; trial++ {
		opSeed := rng.Int63()
		ops := GenOps(opSeed, 40+rng.Intn(80))
		if diff := convergeDiff(t, opSeed, ops); diff != "" {
			shrunk := shrinkOps(t, opSeed, ops)
			t.Fatalf("trial %d (op seed %d): replay diverged: %s\nminimal failing history (%d ops): %v",
				trial, opSeed, diff, len(shrunk), shrunk)
		}
	}
}

// TestDiskCrashVariants pins the Disk model itself: lost keeps nothing,
// torn keeps a prefix, applied keeps everything, and the disk refuses all
// traffic after the crash.
func TestDiskCrashVariants(t *testing.T) {
	seed := testutil.Seed(t, 52)
	k := sim.NewKernel(seed)
	defer k.Shutdown()
	envr := env.NewSim(k)
	n := envr.NewNode("t0", 1)
	n.Go("test", func(ctx env.Ctx) {
		defer k.Stop()
		payload := []byte("0123456789abcdef")
		for _, v := range []Variant{Lost, Torn, Applied} {
			d := NewDisk()
			d.SetCrashPoint(1, v)
			if err := d.Append(ctx, "o", payload); err != nil {
				t.Fatalf("%v: append: %v", v, err)
			}
			if err := d.Sync(ctx, "o"); err != ErrDiskCrashed {
				t.Fatalf("%v: sync returned %v, want crash", v, err)
			}
			img := d.Image()
			want := map[Variant]int{Lost: 0, Torn: len(payload) / 2, Applied: len(payload)}[v]
			if len(img["o"]) != want {
				t.Fatalf("%v: image has %d bytes, want %d", v, len(img["o"]), want)
			}
			if _, err := d.Get(ctx, "o"); err != ErrDiskCrashed {
				t.Fatalf("%v: post-crash get returned %v", v, err)
			}
		}
	})
	if err := k.RunUntil(sim.Time(10 * time.Second)); err != nil {
		t.Fatal(err)
	}
}
