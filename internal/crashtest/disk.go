// Package crashtest proves the durability tier's crash safety by brute
// force. Disk is a durable.Backend that fails at exactly the k-th durability
// boundary (a WAL sync, a checkpoint put, a GC delete) in one of three ways
// — effect lost, effect torn, effect applied but unacknowledged. The harness
// runs a deterministic workload once per boundary, boots a fresh storage
// node from the surviving disk image, and asserts replay converges to the
// acknowledged prefix of the workload. A failing boundary plus the printed
// seed reproduces the divergence exactly.
package crashtest

import (
	"errors"
	"fmt"
	"strings"
	"sync"

	"tell/internal/det"
	"tell/internal/durable"
	"tell/internal/env"
)

// ErrDiskCrashed is returned by every operation after the crash point fires:
// the process died at that boundary and nothing further reaches the disk.
var ErrDiskCrashed = errors.New("crashtest: disk crashed")

// Variant selects what the crashing boundary operation leaves behind.
type Variant int

const (
	// Lost: the boundary op has no durable effect (crash just before).
	Lost Variant = iota
	// Torn: a strict prefix of the staged bytes becomes durable — a torn
	// WAL sync. Put and Delete are atomic, so for them Torn degrades to
	// Lost.
	Torn
	// Applied: the op's full effect is durable but the caller never hears
	// back (crash between the write and the ack).
	Applied
)

func (v Variant) String() string {
	switch v {
	case Lost:
		return "lost"
	case Torn:
		return "torn"
	case Applied:
		return "applied"
	}
	return "?"
}

// Disk is an in-memory durable.Backend with an injectable crash point.
// Appends stage bytes that become durable only on Sync, mirroring the blob
// backend; Sync, Put and Delete are the durability boundaries and each call
// increments the boundary counter.
type Disk struct {
	mu      sync.Mutex
	objects map[string][]byte
	staged  map[string][]byte
	n       int // durability boundaries seen so far
	failAt  int // 1-based boundary to crash at; 0 = run forever
	variant Variant
	crashed bool
	site    string
}

// NewDisk returns an empty disk that never crashes (until SetCrashPoint).
func NewDisk() *Disk {
	return &Disk{objects: make(map[string][]byte), staged: make(map[string][]byte)}
}

// NewDiskFrom boots a disk from a crash image: durable objects only, staged
// bytes gone with the process.
func NewDiskFrom(image map[string][]byte) *Disk {
	d := NewDisk()
	for _, name := range det.Keys(image) {
		d.objects[name] = append([]byte(nil), image[name]...)
	}
	return d
}

// SetCrashPoint arms the disk to crash at the k-th (1-based) durability
// boundary with the given variant.
func (d *Disk) SetCrashPoint(k int, v Variant) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.failAt, d.variant = k, v
}

// Boundaries returns how many durability boundaries have executed; a dry run
// (no crash point) measures the sweep range.
func (d *Disk) Boundaries() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.n
}

// Crashed reports whether the crash point fired.
func (d *Disk) Crashed() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.crashed
}

// Site describes the boundary the crash fired at, for test output.
func (d *Disk) Site() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.site
}

// Image deep-copies the durable contents — what a post-mortem disk holds.
// Staged appends are volatile and do not survive.
func (d *Disk) Image() map[string][]byte {
	d.mu.Lock()
	defer d.mu.Unlock()
	img := make(map[string][]byte, len(d.objects))
	for _, name := range det.Keys(d.objects) {
		img[name] = append([]byte(nil), d.objects[name]...)
	}
	return img
}

// boundary counts one durability boundary and reports whether this is the
// crash point. Caller holds d.mu.
func (d *Disk) boundary(op, name string) bool {
	d.n++
	if d.failAt != 0 && d.n == d.failAt {
		d.crashed = true
		d.site = fmt.Sprintf("%s %q (boundary %d, %v)", op, name, d.n, d.variant)
		return true
	}
	return false
}

// Put atomically replaces the object. At the crash point, Applied installs
// the new contents and Lost/Torn keep the old — never a mix.
func (d *Disk) Put(ctx env.Ctx, name string, data []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.crashed {
		return ErrDiskCrashed
	}
	if d.boundary("put", name) {
		if d.variant == Applied {
			d.objects[name] = append([]byte(nil), data...)
		}
		return ErrDiskCrashed
	}
	d.objects[name] = append([]byte(nil), data...)
	return nil
}

// Append stages bytes; staging is volatile, so it is not a boundary.
func (d *Disk) Append(ctx env.Ctx, name string, data []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.crashed {
		return ErrDiskCrashed
	}
	d.staged[name] = append(d.staged[name], data...)
	return nil
}

// Sync promotes the object's staged bytes to durable. At the crash point,
// Lost promotes nothing, Torn promotes a strict prefix (a torn write), and
// Applied promotes everything — the ack is lost in all three.
func (d *Disk) Sync(ctx env.Ctx, name string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.crashed {
		return ErrDiskCrashed
	}
	buf := d.staged[name]
	if d.boundary("sync", name) {
		switch d.variant {
		case Torn:
			d.objects[name] = append(d.objects[name], buf[:len(buf)/2]...)
		case Applied:
			d.objects[name] = append(d.objects[name], buf...)
		}
		return ErrDiskCrashed
	}
	if len(buf) > 0 {
		d.objects[name] = append(d.objects[name], buf...)
		delete(d.staged, name)
	}
	return nil
}

// Get returns the durable contents.
func (d *Disk) Get(ctx env.Ctx, name string) ([]byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.crashed {
		return nil, ErrDiskCrashed
	}
	data, ok := d.objects[name]
	if !ok {
		return nil, durable.ErrNotExist
	}
	return append([]byte(nil), data...), nil
}

// List returns durable object names under prefix, sorted.
func (d *Disk) List(ctx env.Ctx, prefix string) ([]string, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.crashed {
		return nil, ErrDiskCrashed
	}
	var names []string
	for _, name := range det.Keys(d.objects) {
		if strings.HasPrefix(name, prefix) {
			names = append(names, name)
		}
	}
	return names, nil
}

// Delete removes the object. Like Put it is atomic: Applied deletes,
// Lost/Torn keep the object.
func (d *Disk) Delete(ctx env.Ctx, name string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.crashed {
		return ErrDiskCrashed
	}
	if d.boundary("delete", name) {
		if d.variant == Applied {
			delete(d.objects, name)
			delete(d.staged, name)
		}
		return ErrDiskCrashed
	}
	delete(d.objects, name)
	delete(d.staged, name)
	return nil
}
