package crashtest

import (
	"fmt"
	"testing"
	"time"

	"tell/internal/env"
	"tell/internal/sim"
	"tell/internal/store"
	"tell/internal/testutil"
	"tell/internal/transport"
)

// Migration-journal boundary sweep: the manager's migration journal is a
// crash-point Disk, and one migration is driven once per durability boundary
// per variant (Lost / Applied; Torn degrades to Lost for atomic Puts). After
// the coordinator surfaces the crash, a fresh manager adopts the surviving
// journal image and resolves it. Whatever the boundary, the swept range must
// end on exactly one owner, every node must converge to the resolved map,
// every acknowledged write must remain readable, and the range must accept
// new writes — no stuck fence, no split ownership, no lost data.

// migSweepRun is one full workload+migration+recovery execution against an
// armed journal disk.
type migSweepRun struct {
	boundaries int
	// acked maps key -> last acknowledged value.
	acked map[string]string
}

// runMigrationSweep executes the scripted migration against a journal disk
// armed at boundary k (0 = dry run) and, when the disk crashed, adopts the
// surviving image with a fresh manager and verifies the invariants.
// total is the dry-run boundary count (0 on the dry run itself): only the
// terminal done-mark boundary may crash without the coordinator noticing.
func runMigrationSweep(t *testing.T, seed int64, k, total int, v Variant) migSweepRun {
	t.Helper()
	kern := sim.NewKernel(seed)
	defer kern.Shutdown()
	envr := env.NewSim(kern)
	net := transport.NewSimNet(kern, transport.InfiniBand())
	cl, err := store.NewCluster(envr, net, store.ClusterConfig{NumNodes: 2, PartitionsPerNode: 2})
	if err != nil {
		t.Fatal(err)
	}
	// The failure detector would race the sweep to declare endpoints dead;
	// this harness pins journal-boundary recovery, not failover.
	cl.Manager.Stop()
	disk := NewDisk()
	if k > 0 {
		disk.SetCrashPoint(k, v)
	}
	cl.Manager.SetJournal(disk)

	base := cl.Manager.Map()
	pid := base.Partitions[0].ID
	src := base.Partitions[0].Master
	dst := "sn1"
	if src == dst {
		dst = "sn0"
	}

	res := migSweepRun{acked: make(map[string]string)}
	pn := envr.NewNode("pn0", 2)
	client := cl.NewClient(pn)
	pn.Go("sweep-driver", func(ctx env.Ctx) {
		defer kern.Stop()
		// Seed data across all ranges; all acked values must survive.
		for i := 0; i < 48; i++ {
			key, val := fmt.Sprintf("mig%03d", i), fmt.Sprintf("v%d", i)
			if _, err := client.Put(ctx, []byte(key), []byte(val)); err != nil {
				t.Errorf("seed put %s: %v", key, err)
				return
			}
			res.acked[key] = val
		}

		migErr := cl.Manager.MigratePartition(ctx, pid, dst)
		if k == 0 && migErr != nil {
			t.Errorf("dry-run migration failed: %v", migErr)
		}
		if disk.Crashed() && migErr == nil && k != total {
			// The done mark is the only advisory write; any other boundary
			// crash must surface to the coordinator.
			t.Errorf("crash at %s absorbed silently", disk.Site())
		}

		// Post-crash writes: acked ones must survive recovery; a fenced
		// range may refuse them, which is fine — refused writes are not
		// acked. Target keys across ranges, including the swept one.
		for i := 0; i < 12; i++ {
			key, val := fmt.Sprintf("post%03d", i), fmt.Sprintf("p%d", i)
			if _, err := client.Put(ctx, []byte(key), []byte(val)); err == nil {
				res.acked[key] = val
			}
		}

		if k == 0 {
			return
		}

		// Adopt the surviving journal image with a fresh manager, as a
		// restarted management process would, and resolve it.
		m2 := store.NewManager("mgmt-r", envr, envr.NewNode("mgmt-r", 2), net)
		m2.Stop()
		m2.SetMap(base)
		m2.SetJournal(NewDiskFrom(disk.Image()))
		if err := m2.ResolveJournal(ctx); err != nil {
			t.Errorf("resolve journal (crash at %s): %v", disk.Site(), err)
			return
		}

		// Exactly one owner: every node converged to the same epoch and the
		// same master for the swept range.
		var nodeEpoch uint64
		var owner string
		for i, addr := range cl.Addrs() {
			nm := cl.Node(addr).CurrentMap()
			var master string
			for _, p := range nm.Partitions {
				if p.ID == pid {
					master = p.Master
				}
			}
			if i == 0 {
				nodeEpoch, owner = nm.Epoch, master
				continue
			}
			if nm.Epoch != nodeEpoch || master != owner {
				t.Errorf("crash at %s: %s sees epoch %d master %s, peer sees epoch %d master %s",
					disk.Site(), addr, nm.Epoch, master, nodeEpoch, owner)
			}
		}
		if owner != src && owner != dst {
			t.Errorf("crash at %s: range %d resolved to %q, want %s or %s",
				disk.Site(), pid, owner, src, dst)
		}
		// The resolved manager agrees whenever its view is current. A journal
		// that was already terminal (done) leaves the handed-in base map
		// untouched, and the live cluster is legitimately ahead of it.
		pm := m2.Map()
		if pm.Epoch >= nodeEpoch {
			for _, p := range pm.Partitions {
				if p.ID == pid && p.Master != owner {
					t.Errorf("crash at %s: resolved map says %s, nodes converged on %s",
						disk.Site(), p.Master, owner)
				}
			}
		}

		// The fence must be gone and ownership live: a write routed into
		// the swept range has to commit.
		// Short keys sharing a prefix hash into one range (FNV's high bits
		// are pinned by the early bytes), so the probe varies its leading
		// bytes to land inside the swept range's quarter.
		wrote := false
		for i := 0; i < 64 && !wrote; i++ {
			key := fmt.Sprintf("%03dafter", i)
			owned := false
			for _, p := range base.Partitions {
				if p.ID == pid && p.Owns(store.KeyHash([]byte(key))) {
					owned = true
				}
			}
			if !owned {
				continue
			}
			if _, err := client.Put(ctx, []byte(key), []byte("alive")); err != nil {
				t.Errorf("crash at %s: post-resolution write to swept range failed: %v",
					disk.Site(), err)
			}
			res.acked[key] = "alive"
			wrote = true
		}
		if !wrote {
			t.Errorf("no probe key hashed into range %d", pid)
		}

		// Zero committed-data loss: every acked value is still readable.
		for key, want := range res.acked {
			got, _, err := client.Get(ctx, []byte(key))
			if err != nil {
				t.Errorf("crash at %s: acked key %s unreadable: %v", disk.Site(), key, err)
				continue
			}
			if string(got) != want {
				t.Errorf("crash at %s: acked key %s = %q, want %q",
					disk.Site(), key, got, want)
			}
		}
	})
	if err := kern.RunUntil(sim.Time(600 * time.Second)); err != nil {
		t.Fatal(err)
	}
	res.boundaries = disk.Boundaries()
	return res
}

// TestMigrationJournalBoundarySweep dry-runs one migration to count its
// journal boundaries, then replays it crashing the journal at every boundary
// under the Lost and Applied variants.
func TestMigrationJournalBoundarySweep(t *testing.T) {
	seed := testutil.Seed(t, 77)
	dry := runMigrationSweep(t, seed, 0, 0, Lost)
	if dry.boundaries == 0 {
		t.Fatal("dry run journaled nothing; the sweep has no boundaries to cover")
	}
	t.Logf("migration journal spans %d durability boundaries", dry.boundaries)
	for k := 1; k <= dry.boundaries; k++ {
		for _, v := range []Variant{Lost, Applied} {
			t.Run(fmt.Sprintf("boundary-%02d-%v", k, v), func(t *testing.T) {
				runMigrationSweep(t, seed, k, dry.boundaries, v)
			})
		}
	}
}
