package resil

import (
	"fmt"

	"tell/internal/det"
	"tell/internal/sanitize"
	"tell/internal/wire"
)

// BeginState is the dedup verdict for an incoming (client, seq) token.
type BeginState int

const (
	// StateNew: first sighting — process the request; the token is now
	// in-flight and a concurrent duplicate will see StateInFlight until
	// Commit or Abort.
	StateNew BeginState = iota
	// StateReplay: the request already completed — do not re-execute;
	// Begin returned a copy of the cached response to send back.
	StateReplay
	// StateInFlight: another handler is executing this very request
	// right now (a duplicate raced the original). The caller must answer
	// with a retryable status and NOT execute.
	StateInFlight
	// StateStale: the token is older than the window floor and its
	// cached response has been evicted. The original response was
	// produced long ago; answer retryable-unavailable. With a window
	// capacity larger than the client's maximum outstanding tokens this
	// only happens to duplicates delayed far beyond any retry deadline.
	StateStale
)

func (s BeginState) String() string {
	switch s {
	case StateNew:
		return "new"
	case StateReplay:
		return "replay"
	case StateInFlight:
		return "inflight"
	case StateStale:
		return "stale"
	}
	return fmt.Sprintf("BeginState(%d)", int(s))
}

// Window is a bounded per-client dedup memory giving a server exactly-once
// execution under duplicated and retried requests. Clients stamp mutating
// requests with (clientID, seq); the server brackets execution between
// Begin and Commit. Completed responses are cached (cloned — both the
// stored copy and every replayed copy are private, because transports
// recycle response buffers) and replayed byte-identically on duplicates.
//
// Per client at most Cap completed entries are kept; older entries are
// evicted lowest-seq-first, raising that client's floor. The safety
// invariant is Cap ≥ the client's maximum number of outstanding tokens,
// which makes eviction of a token that might still be retried impossible.
type Window struct {
	// Cap is the per-client completed-entry capacity. <=0 means 256.
	Cap int

	mu      sanitize.Mutex
	clients map[string]*clientWindow
	replays uint64
}

type clientWindow struct {
	floor    uint64            // seqs <= floor may have been evicted
	done     map[uint64][]byte // seq -> cached encoded response
	inflight map[uint64]struct{}
}

// NewWindow returns a dedup window keeping up to cap completed entries per
// client.
func NewWindow(cap int) *Window {
	w := &Window{Cap: cap, clients: make(map[string]*clientWindow)}
	w.mu.SetName("resil.Window.mu")
	return w
}

func (w *Window) cap() int {
	if w.Cap <= 0 {
		return 256
	}
	return w.Cap
}

func (w *Window) client(id string) *clientWindow {
	c := w.clients[id]
	if c == nil {
		c = &clientWindow{done: make(map[uint64][]byte), inflight: make(map[uint64]struct{})}
		w.clients[id] = c
	}
	return c
}

// Begin classifies an incoming token. Seq 0 is the reserved "no token"
// value and always classifies as StateNew without entering the window
// (the request is processed unprotected).
func (w *Window) Begin(client string, seq uint64) (cached []byte, state BeginState) {
	if seq == 0 || client == "" {
		return nil, StateNew
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	c := w.client(client)
	if resp, ok := c.done[seq]; ok {
		w.replays++
		return append([]byte(nil), resp...), StateReplay
	}
	if seq <= c.floor {
		return nil, StateStale
	}
	if _, ok := c.inflight[seq]; ok {
		return nil, StateInFlight
	}
	c.inflight[seq] = struct{}{}
	return nil, StateNew
}

// Commit records the completed response for a token Begin classified as
// StateNew. resp is cloned; the caller keeps ownership of its buffer.
func (w *Window) Commit(client string, seq uint64, resp []byte) {
	if seq == 0 || client == "" {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	c := w.client(client)
	delete(c.inflight, seq)
	c.done[seq] = append([]byte(nil), resp...)
	if len(c.done) > w.cap() {
		seqs := det.Keys(c.done)
		for _, s := range seqs[:len(seqs)-w.cap()] {
			delete(c.done, s)
			if s > c.floor {
				c.floor = s
			}
		}
	}
}

// Abort releases a token Begin classified as StateNew without caching a
// response — used when the request was not executed (shed, decode error)
// so a retry must be allowed to run it.
func (w *Window) Abort(client string, seq uint64) {
	if seq == 0 || client == "" {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if c := w.clients[client]; c != nil {
		delete(c.inflight, seq)
	}
}

// Replays returns how many duplicate requests were answered from cache.
func (w *Window) Replays() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.replays
}

// windowCodecVersion guards the serialized layout.
const windowCodecVersion = 1

// Encode serializes the window's completed state (floors and cached
// responses; in-flight tokens are transient and skipped) for checkpointing.
// Output is deterministic: clients and seqs are emitted in sorted order.
func (w *Window) Encode() []byte {
	w.mu.Lock()
	defer w.mu.Unlock()
	wr := wire.NewWriter(64)
	wr.Byte(windowCodecVersion)
	wr.Uvarint(uint64(w.Cap))
	// Skip clients with no durable state so Encode∘Decode is a fixpoint.
	ids := make([]string, 0, len(w.clients))
	for _, id := range det.Keys(w.clients) {
		c := w.clients[id]
		if c.floor == 0 && len(c.done) == 0 {
			continue
		}
		ids = append(ids, id)
	}
	wr.Uvarint(uint64(len(ids)))
	for _, id := range ids {
		c := w.clients[id]
		wr.String(id)
		wr.Uvarint(c.floor)
		wr.Uvarint(uint64(len(c.done)))
		for _, seq := range det.Keys(c.done) {
			wr.Uvarint(seq)
			wr.BytesN(c.done[seq])
		}
	}
	return wr.Bytes()
}

// DecodeWindow parses a buffer produced by Encode. Cached responses are
// cloned out of b, so the input buffer may be recycled afterwards.
func DecodeWindow(b []byte) (*Window, error) {
	r := wire.NewReader(b)
	if v := r.Byte(); v != windowCodecVersion {
		return nil, fmt.Errorf("resil: unknown window codec version %d", v)
	}
	w := NewWindow(int(r.Uvarint()))
	nClients := r.Count(3)
	for i := 0; i < nClients; i++ {
		id := r.String()
		floor := r.Uvarint()
		nDone := r.Count(2)
		if r.Err() != nil {
			return nil, r.Err()
		}
		c := w.client(id)
		c.floor = floor
		for j := 0; j < nDone; j++ {
			seq := r.Uvarint()
			resp := r.BytesN()
			if r.Err() != nil {
				return nil, r.Err()
			}
			c.done[seq] = append([]byte(nil), resp...)
		}
	}
	return w, r.Close()
}
