package resil

import (
	"time"

	"tell/internal/sanitize"
)

// Breaker is a per-endpoint circuit breaker. It opens after Threshold
// consecutive failures and stays open for Cooldown of virtual time; while
// open, Allow rejects immediately so clients stop burning transport
// timeouts against a dead endpoint and can fail over (reads route to
// replicas). After the cooldown one probe is admitted (half-open); its
// outcome closes the breaker or re-arms the cooldown.
//
// All methods take the caller's notion of now (ctx.Now()) so the breaker
// runs on the virtual clock and never reads wall time.
type Breaker struct {
	// Threshold is the number of consecutive failures that open the
	// breaker. <=0 disables it (Allow always true).
	Threshold int
	// Cooldown is how long the breaker stays open before admitting a
	// half-open probe.
	Cooldown time.Duration

	mu        sanitize.Mutex
	fails     int
	openUntil time.Duration // 0 = closed
}

// Allow reports whether a call may proceed. In the half-open state it
// admits exactly one probe per cooldown window: admitting re-arms
// openUntil so concurrent callers keep failing fast until the probe's
// outcome is known.
func (b *Breaker) Allow(now time.Duration) bool {
	if b.Threshold <= 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.openUntil == 0 {
		return true
	}
	if now >= b.openUntil {
		b.openUntil = now + b.Cooldown // half-open: this caller is the probe
		return true
	}
	return false
}

// Open reports whether the breaker is currently open, without consuming
// the half-open probe slot. Clients use it to decide routing (e.g. send a
// read to a replica) before building a request.
func (b *Breaker) Open(now time.Duration) bool {
	if b.Threshold <= 0 {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.openUntil != 0 && now < b.openUntil
}

// Success records a successful call, closing the breaker.
func (b *Breaker) Success() {
	if b.Threshold <= 0 {
		return
	}
	b.mu.Lock()
	b.fails = 0
	b.openUntil = 0
	b.mu.Unlock()
}

// Failure records a failed call, opening the breaker once Threshold
// consecutive failures accumulate.
func (b *Breaker) Failure(now time.Duration) {
	if b.Threshold <= 0 {
		return
	}
	b.mu.Lock()
	b.fails++
	if b.fails >= b.Threshold {
		b.openUntil = now + b.Cooldown
	}
	b.mu.Unlock()
}

// BreakerSet is a lazily-populated map of endpoint address to Breaker,
// sharing one configuration.
type BreakerSet struct {
	// Threshold and Cooldown configure every breaker in the set.
	Threshold int
	Cooldown  time.Duration

	mu sanitize.Mutex
	m  map[string]*Breaker
}

// NewBreakerSet returns a set whose breakers open after threshold
// consecutive failures and cool down for the given duration.
func NewBreakerSet(threshold int, cooldown time.Duration) *BreakerSet {
	s := &BreakerSet{Threshold: threshold, Cooldown: cooldown, m: make(map[string]*Breaker)}
	s.mu.SetName("resil.BreakerSet.mu")
	return s
}

func (s *BreakerSet) get(addr string) *Breaker {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.m[addr]
	if b == nil {
		b = &Breaker{Threshold: s.Threshold, Cooldown: s.Cooldown}
		b.mu.SetName("resil.Breaker.mu")
		s.m[addr] = b
	}
	return b
}

// Allow reports whether a call to addr may proceed (see Breaker.Allow).
func (s *BreakerSet) Allow(addr string, now time.Duration) bool {
	if s == nil {
		return true
	}
	return s.get(addr).Allow(now)
}

// Open reports whether addr's breaker is open (see Breaker.Open).
func (s *BreakerSet) Open(addr string, now time.Duration) bool {
	if s == nil {
		return false
	}
	return s.get(addr).Open(now)
}

// Success records a success against addr.
func (s *BreakerSet) Success(addr string) {
	if s == nil {
		return
	}
	s.get(addr).Success()
}

// Failure records a failure against addr.
func (s *BreakerSet) Failure(addr string, now time.Duration) {
	if s == nil {
		return
	}
	s.get(addr).Failure(now)
}

// Trip force-opens addr's breaker (used when the failure detector declares
// an endpoint dead out-of-band).
func (s *BreakerSet) Trip(addr string, now time.Duration) {
	if s == nil {
		return
	}
	b := s.get(addr)
	b.mu.Lock()
	b.fails = b.Threshold
	b.openUntil = now + b.Cooldown
	b.mu.Unlock()
}
