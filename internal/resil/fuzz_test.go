package resil_test

import (
	"bytes"
	"testing"

	"tell/internal/resil"
)

// FuzzWindowCodec feeds arbitrary bytes to the dedup-window decoder: it
// must never panic, and anything it accepts must re-encode to a fixpoint
// (Encode∘Decode∘Encode = Encode) so a checkpointed window survives
// arbitrarily many save/load cycles unchanged.
func FuzzWindowCodec(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 8, 0})
	w := resil.NewWindow(4)
	for i := 1; i <= 6; i++ {
		w.Begin("pn0", uint64(i))
		w.Commit("pn0", uint64(i), []byte{0xab, byte(i)})
	}
	w.Begin("pn1", 3)
	w.Commit("pn1", 3, nil)
	f.Add(w.Encode())

	f.Fuzz(func(t *testing.T, b []byte) {
		decoded, err := resil.DecodeWindow(b)
		if err != nil {
			return
		}
		enc := decoded.Encode()
		again, err := resil.DecodeWindow(enc)
		if err != nil {
			t.Fatalf("re-decode of accepted window failed: %v", err)
		}
		if !bytes.Equal(again.Encode(), enc) {
			t.Fatal("Encode∘Decode not a fixpoint")
		}
	})
}
