package resil_test

import (
	"testing"
	"time"

	"tell/internal/env"
	"tell/internal/resil"
	"tell/internal/sim"
)

func TestGateBoundsInflight(t *testing.T) {
	k := sim.NewKernel(1)
	e := env.NewSim(k)
	n := e.NewNode("sn0", 4)
	g := resil.NewGate(e, 2, time.Millisecond)

	var peak, cur, admitted, shed int
	for i := 0; i < 8; i++ {
		n.Go("req", func(ctx env.Ctx) {
			if !g.Enter(ctx) {
				shed++
				return
			}
			admitted++
			cur++
			if cur > peak {
				peak = cur
			}
			ctx.Sleep(5 * time.Millisecond) // hold the slot well past the queue deadline
			cur--
			g.Exit()
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()

	if peak > 2 {
		t.Fatalf("peak inflight = %d, want <= 2", peak)
	}
	// 2 admitted immediately; the rest wait at most 1ms while slots are
	// held 5ms, so they all shed.
	if admitted != 2 || shed != 6 {
		t.Fatalf("admitted=%d shed=%d, want 2/6", admitted, shed)
	}
	if g.Sheds() != 6 {
		t.Fatalf("Sheds = %d, want 6", g.Sheds())
	}
}

func TestGateAdmitsAfterExit(t *testing.T) {
	k := sim.NewKernel(1)
	e := env.NewSim(k)
	n := e.NewNode("sn0", 4)
	g := resil.NewGate(e, 1, 10*time.Millisecond)

	var order []string
	n.Go("a", func(ctx env.Ctx) {
		if !g.Enter(ctx) {
			t.Error("a shed")
			return
		}
		ctx.Sleep(2 * time.Millisecond)
		order = append(order, "a")
		g.Exit()
	})
	n.Go("b", func(ctx env.Ctx) {
		ctx.Sleep(time.Millisecond) // arrive while a holds the slot
		if !g.Enter(ctx) {          // waits ~1ms, inside the 10ms deadline
			t.Error("b shed")
			return
		}
		order = append(order, "b")
		g.Exit()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Fatalf("order = %v, want [a b]", order)
	}
}

func TestGateNilIsOpen(t *testing.T) {
	var g *resil.Gate
	if !g.Enter(nil) {
		t.Fatal("nil gate shed")
	}
	g.Exit()
	if g.Sheds() != 0 {
		t.Fatal("nil gate counted sheds")
	}
}
