package resil

import (
	"time"

	"tell/internal/env"
	"tell/internal/sanitize"
)

// Gate is server-side admission control: a bounded pool of inflight slots
// with a queue deadline. A handler calls Enter before doing work; if no
// slot frees up within QueueDeadline the request is shed — the handler
// answers a retryable overload status instead of joining an unbounded
// queue. Shedding converts queue collapse under overload into fast
// retryable failures the client's backoff spreads out.
//
// The slot pool is an env.Queue of tokens, so waiting for a slot is a
// virtual-clock wait under simulation (never a spin, never wall time).
type Gate struct {
	// QueueDeadline is how long Enter waits for a slot before shedding.
	QueueDeadline time.Duration

	q env.Queue

	mu    sanitize.Mutex
	sheds uint64
}

// NewGate returns a gate admitting at most maxInflight concurrent holders,
// shedding requests that wait longer than queueDeadline for a slot.
func NewGate(f env.Factory, maxInflight int, queueDeadline time.Duration) *Gate {
	if maxInflight <= 0 {
		maxInflight = 64
	}
	g := &Gate{QueueDeadline: queueDeadline, q: f.NewQueue()}
	g.mu.SetName("resil.Gate.mu")
	for i := 0; i < maxInflight; i++ {
		g.q.Put(struct{}{})
	}
	return g
}

// Enter acquires an inflight slot, reporting false (shed) if none frees up
// within the queue deadline. On true the caller must Exit when done.
func (g *Gate) Enter(ctx env.Ctx) bool {
	if g == nil {
		return true
	}
	_, ok, timedOut := g.q.GetTimeout(ctx, g.QueueDeadline)
	if !ok || timedOut {
		g.mu.Lock()
		g.sheds++
		g.mu.Unlock()
		return false
	}
	return true
}

// Exit releases a slot acquired by Enter.
func (g *Gate) Exit() {
	if g == nil {
		return
	}
	g.q.Put(struct{}{})
}

// Sheds returns how many requests were shed so far.
func (g *Gate) Sheds() uint64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.sheds
}
