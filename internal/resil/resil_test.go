package resil_test

import (
	"errors"
	"testing"
	"time"

	"tell/internal/env"
	"tell/internal/resil"
	"tell/internal/sim"
)

// runSim spawns fn on a fresh simulated node and runs the kernel dry.
func runSim(t *testing.T, seed int64, fn func(ctx env.Ctx, e env.Full)) {
	t.Helper()
	k := sim.NewKernel(seed)
	e := env.NewSim(k)
	n := e.NewNode("n1", 4)
	n.Go("test", func(ctx env.Ctx) { fn(ctx, e) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
}

func TestRetrierRetriesUntilSuccess(t *testing.T) {
	runSim(t, 1, func(ctx env.Ctx, e env.Full) {
		r := resil.NewRetrier()
		calls := 0
		err := r.Do(ctx, resil.ClassRead, "sn0", func(attempt int) error {
			if attempt != calls {
				t.Errorf("attempt = %d, want %d", attempt, calls)
			}
			calls++
			if calls < 3 {
				return errors.New("transient")
			}
			return nil
		})
		if err != nil {
			t.Fatalf("Do: %v", err)
		}
		if calls != 3 {
			t.Fatalf("calls = %d, want 3", calls)
		}
		if r.Retries() != 2 {
			t.Fatalf("Retries = %d, want 2", r.Retries())
		}
		if ctx.Now() == 0 {
			t.Fatal("no virtual time elapsed: backoff did not sleep")
		}
	})
}

func TestRetrierAttemptBudget(t *testing.T) {
	runSim(t, 1, func(ctx env.Ctx, e env.Full) {
		r := resil.NewRetrier()
		r.Policies[resil.ClassWrite].Attempts = 3
		calls := 0
		fail := errors.New("down")
		err := r.Do(ctx, resil.ClassWrite, "sn0", func(int) error {
			calls++
			return fail
		})
		if !errors.Is(err, fail) {
			t.Fatalf("err = %v, want %v", err, fail)
		}
		if calls != 3 {
			t.Fatalf("calls = %d, want 3", calls)
		}
	})
}

func TestRetrierPermanentStopsImmediately(t *testing.T) {
	runSim(t, 1, func(ctx env.Ctx, e env.Full) {
		r := resil.NewRetrier()
		calls := 0
		bad := errors.New("bad request")
		err := r.Do(ctx, resil.ClassRead, "sn0", func(int) error {
			calls++
			return resil.Permanent(bad)
		})
		if !errors.Is(err, bad) {
			t.Fatalf("err = %v, want %v", err, bad)
		}
		if resil.IsPermanent(err) {
			t.Fatal("returned error still wrapped as permanent")
		}
		if calls != 1 {
			t.Fatalf("calls = %d, want 1", calls)
		}
		if ctx.Now() != 0 {
			t.Fatalf("permanent failure slept %v", ctx.Now())
		}
	})
}

func TestRetrierPingNeverRetries(t *testing.T) {
	runSim(t, 1, func(ctx env.Ctx, e env.Full) {
		r := resil.NewRetrier()
		calls := 0
		_ = r.Do(ctx, resil.ClassPing, "pn0", func(int) error {
			calls++
			return errors.New("lost")
		})
		if calls != 1 {
			t.Fatalf("ping calls = %d, want 1 (a lost ping is information)", calls)
		}
		if r.Retries() != 0 {
			t.Fatalf("ping scheduled %d retries", r.Retries())
		}
	})
}

func TestRetrierDeadlineBudget(t *testing.T) {
	runSim(t, 1, func(ctx env.Ctx, e env.Full) {
		r := resil.NewRetrier()
		r.Policies[resil.ClassRead] = resil.Policy{
			Attempts: 100, Deadline: 5 * time.Millisecond,
			BaseBackoff: 2 * time.Millisecond, MaxBackoff: 2 * time.Millisecond,
		}
		calls := 0
		_ = r.Do(ctx, resil.ClassRead, "sn0", func(int) error {
			calls++
			return errors.New("down")
		})
		// 2ms backoff into a 5ms budget: at most 2 backoffs fit, so at
		// most 3 attempts — far below the 100-attempt cap.
		if calls > 3 {
			t.Fatalf("calls = %d, want <= 3 under the 5ms deadline", calls)
		}
	})
}

// TestRetrierScheduleDeterministic is the seed-reproducibility contract:
// identical seeds give byte-identical retry schedules (same hash), and a
// different seed moves the jitter, changing the hash.
func TestRetrierScheduleDeterministic(t *testing.T) {
	run := func(seed int64) (uint64, uint64) {
		var hash, n uint64
		runSim(t, seed, func(ctx env.Ctx, e env.Full) {
			r := resil.NewRetrier()
			for i := 0; i < 5; i++ {
				calls := 0
				_ = r.Do(ctx, resil.ClassWrite, "sn0", func(int) error {
					calls++
					if calls < 3 {
						return errors.New("transient")
					}
					return nil
				})
			}
			hash, n = r.ScheduleHash(), r.Retries()
		})
		return hash, n
	}
	h1, n1 := run(42)
	h2, n2 := run(42)
	if h1 != h2 || n1 != n2 {
		t.Fatalf("same seed diverged: (%x,%d) vs (%x,%d)", h1, n1, h2, n2)
	}
	h3, _ := run(43)
	if h3 == h1 {
		t.Fatalf("different seeds produced the same schedule hash %x", h1)
	}
}

func TestRetrierBreakerOpensAndRecovers(t *testing.T) {
	runSim(t, 1, func(ctx env.Ctx, e env.Full) {
		r := resil.NewRetrier()
		r.Breakers = resil.NewBreakerSet(3, 10*time.Millisecond)
		r.Policies[resil.ClassRead] = resil.Policy{Attempts: 1}

		down := errors.New("down")
		for i := 0; i < 3; i++ {
			if err := r.Do(ctx, resil.ClassRead, "sn0", func(int) error { return down }); !errors.Is(err, down) {
				t.Fatalf("err = %v", err)
			}
		}
		if !r.Breakers.Open("sn0", ctx.Now()) {
			t.Fatal("breaker not open after 3 consecutive failures")
		}
		// While open, Do fails fast without invoking fn.
		calls := 0
		err := r.Do(ctx, resil.ClassRead, "sn0", func(int) error { calls++; return nil })
		if !errors.Is(err, resil.ErrCircuitOpen) || calls != 0 {
			t.Fatalf("open breaker: err=%v calls=%d", err, calls)
		}
		// Another endpoint is unaffected.
		if err := r.Do(ctx, resil.ClassRead, "sn1", func(int) error { return nil }); err != nil {
			t.Fatalf("sn1: %v", err)
		}
		// After the cooldown one probe is admitted; success closes it.
		ctx.Sleep(11 * time.Millisecond)
		if err := r.Do(ctx, resil.ClassRead, "sn0", func(int) error { return nil }); err != nil {
			t.Fatalf("half-open probe: %v", err)
		}
		if r.Breakers.Open("sn0", ctx.Now()) {
			t.Fatal("breaker still open after successful probe")
		}
	})
}

func TestBreakerHalfOpenAdmitsOneProbe(t *testing.T) {
	b := &resil.Breaker{Threshold: 1, Cooldown: 10 * time.Millisecond}
	b.Failure(0)
	if b.Allow(5 * time.Millisecond) {
		t.Fatal("open breaker admitted a call inside the cooldown")
	}
	if !b.Allow(10 * time.Millisecond) {
		t.Fatal("half-open breaker rejected the probe")
	}
	if b.Allow(11 * time.Millisecond) {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}
	b.Success()
	if !b.Allow(12 * time.Millisecond) {
		t.Fatal("closed breaker rejected a call")
	}
}

func TestMergeSchedule(t *testing.T) {
	runSim(t, 7, func(ctx env.Ctx, e env.Full) {
		a, b := resil.NewRetrier(), resil.NewRetrier()
		_ = a.Do(ctx, resil.ClassRead, "x", func(at int) error {
			if at == 0 {
				return errors.New("once")
			}
			return nil
		})
		hash, n := resil.MergeSchedule([]*resil.Retrier{a, b, nil})
		if n != 1 {
			t.Fatalf("merged retries = %d, want 1", n)
		}
		if hash != a.ScheduleHash()^b.ScheduleHash() {
			t.Fatal("merged hash is not the XOR of member digests")
		}
	})
}
