package resil_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"tell/internal/resil"
	"tell/internal/testutil"
)

func TestWindowExactlyOnce(t *testing.T) {
	w := resil.NewWindow(8)

	// First sighting executes.
	if _, st := w.Begin("pn0", 1); st != resil.StateNew {
		t.Fatalf("first Begin = %v, want new", st)
	}
	// A duplicate racing the in-flight original must not execute.
	if _, st := w.Begin("pn0", 1); st != resil.StateInFlight {
		t.Fatalf("concurrent duplicate = %v, want inflight", st)
	}
	w.Commit("pn0", 1, []byte("resp-1"))
	// A duplicate after completion replays the cached response.
	cached, st := w.Begin("pn0", 1)
	if st != resil.StateReplay {
		t.Fatalf("post-commit duplicate = %v, want replay", st)
	}
	if string(cached) != "resp-1" {
		t.Fatalf("replayed %q, want resp-1", cached)
	}
	if w.Replays() != 1 {
		t.Fatalf("Replays = %d, want 1", w.Replays())
	}
	// Clients are independent.
	if _, st := w.Begin("pn1", 1); st != resil.StateNew {
		t.Fatalf("other client's seq 1 = %v, want new", st)
	}
	// Seq 0 is the no-token value: always processed, never tracked.
	if _, st := w.Begin("pn0", 0); st != resil.StateNew {
		t.Fatalf("seq 0 = %v, want new", st)
	}
	if _, st := w.Begin("pn0", 0); st != resil.StateNew {
		t.Fatalf("second seq 0 = %v, want new (untracked)", st)
	}
}

func TestWindowAbortAllowsRetry(t *testing.T) {
	w := resil.NewWindow(8)
	if _, st := w.Begin("pn0", 5); st != resil.StateNew {
		t.Fatalf("Begin = %v", st)
	}
	w.Abort("pn0", 5) // shed: not executed, no response cached
	if _, st := w.Begin("pn0", 5); st != resil.StateNew {
		t.Fatalf("retry after abort = %v, want new", st)
	}
}

// TestWindowReplayByteIdentical is the satellite property test: the
// replayed response is byte-identical to the original, and both the cached
// copy and every replayed copy are private — mutating the buffer the
// server handed to the transport (which recycles it) or a previously
// replayed buffer cannot corrupt later replays.
func TestWindowReplayByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(testutil.Seed(t, 11)))
	w := resil.NewWindow(64)
	for i := 1; i <= 50; i++ {
		orig := make([]byte, rng.Intn(200))
		rng.Read(orig)
		want := append([]byte(nil), orig...)

		if _, st := w.Begin("c", uint64(i)); st != resil.StateNew {
			t.Fatalf("seq %d: Begin = %v", i, st)
		}
		w.Commit("c", uint64(i), orig)
		// The server's buffer is recycled by the transport after send:
		// scribble over it.
		for j := range orig {
			orig[j] ^= 0xff
		}
		first, st := w.Begin("c", uint64(i))
		if st != resil.StateReplay {
			t.Fatalf("seq %d: dup = %v", i, st)
		}
		if !bytes.Equal(first, want) {
			t.Fatalf("seq %d: replay differs from original response", i)
		}
		// The replayed buffer is recycled too; a second replay must
		// still match.
		for j := range first {
			first[j] = 0
		}
		second, st := w.Begin("c", uint64(i))
		if st != resil.StateReplay || !bytes.Equal(second, want) {
			t.Fatalf("seq %d: second replay corrupted (st=%v)", i, st)
		}
	}
}

func TestWindowEvictionRaisesFloor(t *testing.T) {
	w := resil.NewWindow(4)
	for i := 1; i <= 10; i++ {
		if _, st := w.Begin("c", uint64(i)); st != resil.StateNew {
			t.Fatalf("seq %d: %v", i, st)
		}
		w.Commit("c", uint64(i), []byte{byte(i)})
	}
	// Seqs 7..10 are retained, 1..6 evicted below the floor.
	for i := 7; i <= 10; i++ {
		if _, st := w.Begin("c", uint64(i)); st != resil.StateReplay {
			t.Fatalf("seq %d: %v, want replay", i, st)
		}
	}
	for i := 1; i <= 6; i++ {
		if _, st := w.Begin("c", uint64(i)); st != resil.StateStale {
			t.Fatalf("seq %d: %v, want stale", i, st)
		}
	}
}

func TestWindowCodecRoundTrip(t *testing.T) {
	w := resil.NewWindow(16)
	for c := 0; c < 3; c++ {
		client := fmt.Sprintf("pn%d", c)
		for i := 1; i <= 20; i++ { // overflows Cap → nonzero floor
			w.Begin(client, uint64(i))
			w.Commit(client, uint64(i), []byte(fmt.Sprintf("%s-%d", client, i)))
		}
	}
	enc := w.Encode()
	got, err := resil.DecodeWindow(enc)
	if err != nil {
		t.Fatalf("DecodeWindow: %v", err)
	}
	// Round trip must be a fixpoint (deterministic order, same content).
	if !bytes.Equal(got.Encode(), enc) {
		t.Fatal("Encode(Decode(Encode(w))) != Encode(w)")
	}
	// Decoded windows must behave identically: replay and floor survive.
	cached, st := got.Begin("pn1", 20)
	if st != resil.StateReplay || string(cached) != "pn1-20" {
		t.Fatalf("decoded replay: st=%v resp=%q", st, cached)
	}
	if _, st := got.Begin("pn1", 1); st != resil.StateStale {
		t.Fatalf("decoded floor: seq 1 = %v, want stale", st)
	}
}

func TestWindowCodecEmpty(t *testing.T) {
	w := resil.NewWindow(8)
	got, err := resil.DecodeWindow(w.Encode())
	if err != nil {
		t.Fatalf("DecodeWindow(empty): %v", err)
	}
	if !bytes.Equal(got.Encode(), w.Encode()) {
		t.Fatal("empty round trip not a fixpoint")
	}
}

func TestDecodeWindowRejectsGarbage(t *testing.T) {
	for _, b := range [][]byte{
		nil,
		{},
		{0xff},                  // bad version
		{1, 8, 5},               // client count beyond buffer
		{1, 8, 1, 2, 'a'},       // truncated client id
		{1, 8, 1, 1, 'a', 0, 9}, // done count beyond buffer
	} {
		if _, err := resil.DecodeWindow(b); err == nil {
			t.Errorf("DecodeWindow(%v) accepted garbage", b)
		}
	}
}
