// Package resil is the unified RPC resilience layer: per-message-class
// retry policies with capped exponential backoff and seeded jitter, a
// per-endpoint circuit breaker, a bounded per-client dedup window giving
// servers exactly-once semantics under duplication and retry, and a
// server-side admission gate that sheds load instead of queueing without
// bound.
//
// Everything is driven through env.Ctx — backoff sleeps use the virtual
// clock and jitter draws come from the environment's seeded random source —
// so under simulation the full retry schedule is a deterministic function
// of TELL_SEED. The Retrier folds every scheduled retry into an FNV-64a
// hash; two runs with the same seed must produce identical hashes.
package resil

import (
	"errors"
	"fmt"
	"hash/fnv"
	"time"

	"tell/internal/env"
	"tell/internal/sanitize"
	"tell/internal/trace"
)

// Class partitions RPCs into the message classes of the resilience policy
// table. Reads can retry aggressively; writes retry only when paired with
// idempotency tokens; pings must not retry at all (a lost ping IS the
// signal the failure detectors count).
type Class int

const (
	// ClassRead is read-only storage traffic (Get/Scan).
	ClassRead Class = iota
	// ClassWrite is mutating storage traffic, made safe to retry by
	// idempotency tokens and the server-side dedup Window.
	ClassWrite
	// ClassCM is commit-manager traffic (start/finished groups).
	ClassCM
	// ClassReplicate is master-to-replica mutation shipping (the apply
	// path is idempotent by stamp, so retries are safe without tokens).
	ClassReplicate
	// ClassPing is failure-detector probing: never retried, a miss is
	// information.
	ClassPing
	// ClassMeta is management traffic (partition-map fetches, transfers).
	ClassMeta

	NClasses // number of classes
)

var classNames = [NClasses]string{"read", "write", "cm", "replicate", "ping", "meta"}

func (c Class) String() string {
	if c < 0 || c >= NClasses {
		return fmt.Sprintf("Class(%d)", int(c))
	}
	return classNames[c]
}

// Policy is the retry budget for one message class.
type Policy struct {
	// Attempts is the maximum number of tries including the first.
	// 1 disables retries.
	Attempts int
	// Deadline bounds the total time Do may spend across attempts and
	// backoffs; 0 means unbounded (the attempt budget alone governs).
	Deadline time.Duration
	// BaseBackoff is the backoff before the first retry; each further
	// retry doubles it, capped at MaxBackoff.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth.
	MaxBackoff time.Duration
	// JitterFrac adds a uniform random [0, JitterFrac) fraction of the
	// backoff on top, decorrelating retry storms. Drawn from ctx.Rand()
	// so it is deterministic under simulation.
	JitterFrac float64
}

// DefaultPolicies is the policy table tuned for the simulated cluster: the
// per-attempt transport timeout is expected to be a few milliseconds, so
// backoffs start well below it and cap near it.
func DefaultPolicies() [NClasses]Policy {
	return [NClasses]Policy{
		ClassRead:      {Attempts: 5, Deadline: 100 * time.Millisecond, BaseBackoff: 200 * time.Microsecond, MaxBackoff: 5 * time.Millisecond, JitterFrac: 0.5},
		ClassWrite:     {Attempts: 5, Deadline: 100 * time.Millisecond, BaseBackoff: 200 * time.Microsecond, MaxBackoff: 5 * time.Millisecond, JitterFrac: 0.5},
		ClassCM:        {Attempts: 4, Deadline: 100 * time.Millisecond, BaseBackoff: 300 * time.Microsecond, MaxBackoff: 5 * time.Millisecond, JitterFrac: 0.5},
		ClassReplicate: {Attempts: 4, Deadline: 50 * time.Millisecond, BaseBackoff: 200 * time.Microsecond, MaxBackoff: 2 * time.Millisecond, JitterFrac: 0.5},
		ClassPing:      {Attempts: 1},
		ClassMeta:      {Attempts: 4, Deadline: 100 * time.Millisecond, BaseBackoff: 500 * time.Microsecond, MaxBackoff: 10 * time.Millisecond, JitterFrac: 0.5},
	}
}

// FastPolicies returns the policy table scaled for a fast fabric whose
// per-attempt transport timeout is timeout. The defaults assume a
// kernel-TCP-scale timeout of a few milliseconds; on a microsecond-scale
// simulated fabric a dropped leg should cost roughly one timeout plus one
// short backoff, not a millisecond-scale pause. Backoffs start at a
// quarter of the timeout and cap at four timeouts; attempt counts, jitter
// and deadlines keep their defaults (ClassPing stays single-attempt).
func FastPolicies(timeout time.Duration) [NClasses]Policy {
	p := DefaultPolicies()
	for c := range p {
		if p[c].Attempts <= 1 {
			continue
		}
		p[c].BaseBackoff = timeout / 4
		p[c].MaxBackoff = timeout * 4
	}
	return p
}

// ErrCircuitOpen reports that the endpoint's circuit breaker is open: the
// failure detector (or a run of consecutive failures) has declared it dead
// and the client should fail over instead of waiting out a timeout.
var ErrCircuitOpen = errors.New("resil: circuit open")

// permanentError marks an error as non-retryable.
type permanentError struct{ err error }

func (p *permanentError) Error() string { return p.err.Error() }
func (p *permanentError) Unwrap() error { return p.err }

// Permanent wraps err so Do stops retrying and returns it immediately.
// Use it for outcomes where a retry cannot help (bad request, closed
// transport) or must not happen (non-idempotent operation without a token).
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// IsPermanent reports whether err was wrapped by Permanent.
func IsPermanent(err error) bool {
	var p *permanentError
	return errors.As(err, &p)
}

// Retrier executes RPCs under the policy table, consulting an optional
// breaker set and recording every scheduled retry into a deterministic
// schedule hash. One Retrier is shared by all of a client's activities;
// its internal state is mutex-protected (no blocking env operations happen
// under the lock).
type Retrier struct {
	Policies [NClasses]Policy
	// Breakers, when non-nil, short-circuits attempts against endpoints
	// whose breaker is open.
	Breakers *BreakerSet

	mu      sanitize.Mutex
	hash    uint64 // FNV-64a over (class, addr, attempt, backoff, now)
	retries uint64
}

// NewRetrier returns a Retrier with the default policy table and no
// breaker set.
func NewRetrier() *Retrier {
	r := &Retrier{Policies: DefaultPolicies(), hash: fnvOffset}
	r.mu.SetName("resil.Retrier.mu")
	return r
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// Do runs fn under the class's retry policy against addr. fn receives the
// 0-based attempt number; any non-nil return is retried with backoff until
// the attempt or deadline budget runs out, unless wrapped with Permanent.
// The final attempt's error (unwrapped from Permanent) is returned.
//
// Pings and other Attempts:1 classes never retry: Do degrades to a single
// guarded call.
func (r *Retrier) Do(ctx env.Ctx, class Class, addr string, fn func(attempt int) error) error {
	p := r.Policies[class]
	if p.Attempts < 1 {
		p.Attempts = 1
	}
	start := ctx.Now()
	var err error
	for attempt := 0; attempt < p.Attempts; attempt++ {
		if r.Breakers != nil && !r.Breakers.Allow(addr, ctx.Now()) {
			if err == nil {
				err = ErrCircuitOpen
			}
			return unwrapPermanent(err)
		}
		err = fn(attempt)
		if err == nil {
			if r.Breakers != nil {
				r.Breakers.Success(addr)
			}
			return nil
		}
		if r.Breakers != nil {
			r.Breakers.Failure(addr, ctx.Now())
		}
		if IsPermanent(err) || attempt == p.Attempts-1 {
			break
		}
		backoff := r.backoff(ctx, &p, attempt)
		if p.Deadline > 0 && ctx.Now()-start+backoff > p.Deadline {
			break
		}
		r.record(class, addr, attempt, backoff, ctx.Now())
		sc := ctx.Trace()
		sc.R.CounterAdd(ctx.Node().Name(), "resil/retries", 1)
		if sc.Agg != nil {
			prev := sc.Agg.Redirect
			sc.Agg.Redirect = trace.CompRetry
			ctx.Sleep(backoff)
			sc.Agg.Redirect = prev
		} else {
			ctx.Sleep(backoff)
		}
	}
	return unwrapPermanent(err)
}

func unwrapPermanent(err error) error {
	var p *permanentError
	if errors.As(err, &p) {
		return p.err
	}
	return err
}

// backoff computes the capped exponential backoff for the given attempt,
// with jitter from the environment's seeded random source.
func (r *Retrier) backoff(ctx env.Ctx, p *Policy, attempt int) time.Duration {
	b := p.BaseBackoff
	if b <= 0 {
		b = 100 * time.Microsecond
	}
	for i := 0; i < attempt && b < p.MaxBackoff; i++ {
		b *= 2
	}
	if p.MaxBackoff > 0 && b > p.MaxBackoff {
		b = p.MaxBackoff
	}
	if p.JitterFrac > 0 {
		b += time.Duration(float64(b) * p.JitterFrac * ctx.Rand().Float64())
	}
	return b
}

// record folds one scheduled retry into the deterministic schedule hash.
func (r *Retrier) record(class Class, addr string, attempt int, backoff time.Duration, now time.Duration) {
	r.mu.Lock()
	h := r.hash
	h = fnvByte(h, byte(class))
	for i := 0; i < len(addr); i++ {
		h = fnvByte(h, addr[i])
	}
	h = fnvU64(h, uint64(attempt))
	h = fnvU64(h, uint64(backoff))
	h = fnvU64(h, uint64(now))
	r.hash = h
	r.retries++
	r.mu.Unlock()
}

func fnvByte(h uint64, b byte) uint64 { return (h ^ uint64(b)) * fnvPrime }

func fnvU64(h uint64, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = fnvByte(h, byte(v>>(8*i)))
	}
	return h
}

// ScheduleHash returns the FNV-64a digest of every retry scheduled so far:
// (class, addr, attempt, backoff, virtual time) in schedule order. With the
// same TELL_SEED two runs must produce identical hashes.
func (r *Retrier) ScheduleHash() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.hash
}

// Retries returns the number of retries scheduled so far.
func (r *Retrier) Retries() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.retries
}

// MergeSchedule folds another retrier's schedule digest into a combined
// fleet-level hash (order-independent across retriers: XOR of digests,
// sum of counts).
func MergeSchedule(rs []*Retrier) (hash uint64, retries uint64) {
	for _, r := range rs {
		if r == nil {
			continue
		}
		hash ^= r.ScheduleHash()
		retries += r.Retries()
	}
	return hash, retries
}

// fnvCheck guards the inlined constants against drift from hash/fnv.
var _ = func() struct{} {
	h := fnv.New64a()
	if h.Sum64() != fnvOffset {
		panic("resil: fnv offset mismatch")
	}
	return struct{}{}
}()
