//go:build telldebug

package sanitize

import (
	"fmt"
	"runtime"
	"sync"
	"time"
)

// Enabled reports whether the build carries the telldebug instrumentation.
const Enabled = true

// registry is the global acquisition state. A single plain mutex guards it:
// the sanitizer is a debug build, and one short critical section per
// Lock/Unlock is an acceptable price for a data structure that must observe
// a globally consistent edge set.
var registry struct {
	mu sync.Mutex
	// held is the per-goroutine stack of named locks currently held.
	held map[uint64][]heldEntry
	// edges maps class-order edge {from, to} → the stack that first
	// recorded it. Edges are never forgotten (until Reset): an inversion is
	// a property of the run, not of a moment.
	edges map[edgeKey]string
	// seen dedups reported inversions per unordered class pair.
	seen       map[edgeKey]bool
	inversions []Inversion
	longHolds  []LongHold
	threshold  time.Duration
}

type heldEntry struct {
	lock  interface{} // *Mutex or *RWMutex identity, for recursion checks
	class string
	since time.Time
}

type edgeKey struct{ from, to string }

func init() {
	registry.held = make(map[uint64][]heldEntry)
	registry.edges = make(map[edgeKey]string)
	registry.seen = make(map[edgeKey]bool)
	registry.threshold = 250 * time.Millisecond
}

// gid returns the current goroutine's id, parsed from the runtime stack
// header ("goroutine N [running]: ..."). Slow, and exactly as slow as every
// other user-space goroutine-local trick; acceptable under telldebug.
func gid() uint64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	const prefix = len("goroutine ")
	id := uint64(0)
	for _, c := range buf[prefix:n] {
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + uint64(c-'0')
	}
	return id
}

func stack() string {
	buf := make([]byte, 8<<10)
	n := runtime.Stack(buf, false)
	return string(buf[:n])
}

// beforeAcquire runs before blocking on the underlying lock: recording the
// edge first means a run that truly deadlocks has already written the
// evidence down by the time it hangs.
func beforeAcquire(lock interface{}, class string) {
	g := gid()
	st := stack()
	registry.mu.Lock()
	held := registry.held[g]
	for i := range held {
		if held[i].lock == lock {
			registry.mu.Unlock()
			panic(fmt.Sprintf("sanitize: goroutine %d recursively locking %q\n%s", g, class, st))
		}
	}
	for i := range held {
		from := held[i].class
		fwd := edgeKey{from, class}
		rev := edgeKey{class, from}
		if prior, ok := registry.edges[rev]; ok {
			pair := fwd
			if rev.from < fwd.from {
				pair = rev
			}
			if !registry.seen[pair] {
				registry.seen[pair] = true
				registry.inversions = append(registry.inversions, Inversion{
					Held:       from,
					Taking:     class,
					Stack:      st,
					PriorStack: prior,
				})
			}
		}
		if _, ok := registry.edges[fwd]; !ok {
			registry.edges[fwd] = st
		}
	}
	registry.mu.Unlock()
}

func afterAcquire(lock interface{}, class string) {
	g := gid()
	registry.mu.Lock()
	registry.held[g] = append(registry.held[g], heldEntry{lock: lock, class: class, since: time.Now()})
	registry.mu.Unlock()
}

func beforeRelease(lock interface{}) {
	g := gid()
	now := time.Now()
	registry.mu.Lock()
	defer registry.mu.Unlock()
	held := registry.held[g]
	for i := len(held) - 1; i >= 0; i-- {
		if held[i].lock != lock {
			continue
		}
		if d := now.Sub(held[i].since); d >= registry.threshold {
			registry.longHolds = append(registry.longHolds, LongHold{
				Class:  held[i].class,
				Millis: d.Milliseconds(),
				Stack:  stack(),
			})
		}
		held = append(held[:i], held[i+1:]...)
		if len(held) == 0 {
			delete(registry.held, g)
		} else {
			registry.held[g] = held
		}
		return
	}
	// Unlock on a goroutine that never locked (lock handoff between
	// goroutines). Legal for sync.Mutex; the hold simply goes unmeasured.
}

// Mutex is an instrumented sync.Mutex. Zero value is usable; untracked
// until SetName is called (which must happen before concurrent use).
type Mutex struct {
	mu   sync.Mutex
	name string
}

// SetName assigns the lock's class for order tracking. Call once, during
// construction, before the lock is shared.
func (m *Mutex) SetName(name string) { m.name = name }

func (m *Mutex) Lock() {
	if m.name != "" {
		beforeAcquire(m, m.name)
	}
	m.mu.Lock()
	if m.name != "" {
		afterAcquire(m, m.name)
	}
}

func (m *Mutex) Unlock() {
	if m.name != "" {
		beforeRelease(m)
	}
	m.mu.Unlock()
}

func (m *Mutex) TryLock() bool {
	ok := m.mu.TryLock()
	if ok && m.name != "" {
		afterAcquire(m, m.name)
	}
	return ok
}

// RWMutex is an instrumented sync.RWMutex. Read and write acquisitions
// record the same class edges: an RLock-then-Lock cycle deadlocks exactly
// like a Lock-then-Lock one once a writer queues up.
type RWMutex struct {
	mu   sync.RWMutex
	name string
}

// SetName assigns the lock's class for order tracking. Call once, during
// construction, before the lock is shared.
func (m *RWMutex) SetName(name string) { m.name = name }

func (m *RWMutex) Lock() {
	if m.name != "" {
		beforeAcquire(m, m.name)
	}
	m.mu.Lock()
	if m.name != "" {
		afterAcquire(m, m.name)
	}
}

func (m *RWMutex) Unlock() {
	if m.name != "" {
		beforeRelease(m)
	}
	m.mu.Unlock()
}

func (m *RWMutex) RLock() {
	if m.name != "" {
		beforeAcquire(m, m.name)
	}
	m.mu.RLock()
	if m.name != "" {
		afterAcquire(m, m.name)
	}
}

func (m *RWMutex) RUnlock() {
	if m.name != "" {
		beforeRelease(m)
	}
	m.mu.RUnlock()
}

func (m *RWMutex) TryLock() bool {
	ok := m.mu.TryLock()
	if ok && m.name != "" {
		afterAcquire(m, m.name)
	}
	return ok
}

// Inversions returns the lock-order inversions observed so far.
func Inversions() []Inversion {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	out := make([]Inversion, len(registry.inversions))
	copy(out, registry.inversions)
	return out
}

// LongHolds returns the overlong critical sections observed so far.
func LongHolds() []LongHold {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	out := make([]LongHold, len(registry.longHolds))
	copy(out, registry.longHolds)
	return out
}

// Reset clears recorded inversions, long holds and the acquisition graph.
// Held-lock state survives: locks held across Reset keep being tracked.
func Reset() {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	registry.edges = make(map[edgeKey]string)
	registry.seen = make(map[edgeKey]bool)
	registry.inversions = nil
	registry.longHolds = nil
}

// SetLongHoldThreshold sets the wall-clock hold time above which an Unlock
// records a LongHold.
func SetLongHoldThreshold(millis int64) {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	registry.threshold = time.Duration(millis) * time.Millisecond
}
