//go:build !telldebug

package sanitize

import "sync"

// Enabled reports whether the build carries the telldebug instrumentation.
const Enabled = false

// Mutex is a plain sync.Mutex in non-debug builds. The embedded field (not
// an alias) keeps the method set identical across build modes so code using
// sanitize.Mutex compiles the same way with and without the tag.
type Mutex struct {
	sync.Mutex
}

// SetName is a no-op without telldebug.
func (m *Mutex) SetName(string) {}

// RWMutex is a plain sync.RWMutex in non-debug builds.
type RWMutex struct {
	sync.RWMutex
}

// SetName is a no-op without telldebug.
func (m *RWMutex) SetName(string) {}

// Inversions returns the lock-order inversions observed so far (always nil
// without telldebug).
func Inversions() []Inversion { return nil }

// LongHolds returns the overlong critical sections observed so far (always
// nil without telldebug).
func LongHolds() []LongHold { return nil }

// Reset clears recorded inversions, long holds and the acquisition graph.
func Reset() {}

// SetLongHoldThreshold sets the wall-clock hold time above which an Unlock
// records a LongHold. No-op without telldebug.
func SetLongHoldThreshold(millis int64) {}
