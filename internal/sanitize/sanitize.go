// Package sanitize provides drop-in replacements for sync.Mutex and
// sync.RWMutex that, under the telldebug build tag, record lock-acquisition
// order and hold times at runtime. The static lockorder analyzer
// (cmd/tellvet) proves ordering properties about lock *classes* it can see
// syntactically; the runtime sanitizer closes the gap for orders that only
// materialize dynamically — locks reached through interfaces, callbacks, or
// goroutine handoffs the analyzer's per-package view cannot follow.
//
// In a normal build (no telldebug tag) the types compile to plain sync
// mutexes with zero overhead: SetName is a no-op and no registry exists.
// Under -tags telldebug every named mutex participates in a global
// acquisition graph keyed by class name (the SetName string). Taking lock B
// while holding lock A records the edge A→B; if the reverse edge B→A was
// ever recorded — by any goroutine, at any earlier point in the run — the
// inversion is reported with both stacks. This is the classic happened-
// before-free lock-order discipline (as in mutex deadlock detectors such as
// Valgrind's Helgrind or Go's own runtime lock ranking): a cycle in the
// class graph means some interleaving can deadlock, even if this run did
// not.
//
// Locks that are never named are not tracked: unexported scratch mutexes
// with trivially local critical sections can opt out by simply not calling
// SetName. Every engine-layer mutex that guards cross-component state
// should be named.
package sanitize

// Inversion is one detected lock-order cycle: the goroutine acquired Taking
// while holding Held, but the opposite order Held-after-Taking was recorded
// earlier (by the goroutine whose stack is PriorStack).
type Inversion struct {
	Held       string // class name of the lock already held
	Taking     string // class name of the lock being acquired
	Stack      string // stack of the acquisition completing the cycle
	PriorStack string // stack that recorded the opposite edge
}

// LongHold is a critical section that exceeded the configured threshold.
// Under chaos matrices a long hold usually means I/O or an RPC crept under
// a lock — exactly what the static lockorder analyzer flags, caught here
// when it happens through an indirection the analyzer cannot see.
type LongHold struct {
	Class  string
	Millis int64
	Stack  string // stack of the Unlock that observed the overlong hold
}
