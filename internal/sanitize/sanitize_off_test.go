//go:build !telldebug

package sanitize

import "testing"

// TestPassthrough checks the non-debug build is a plain mutex: usable zero
// value, no-op SetName, empty reports.
func TestPassthrough(t *testing.T) {
	if Enabled {
		t.Fatal("Enabled must be false without the telldebug tag")
	}
	var m Mutex
	m.SetName("x")
	m.Lock()
	m.Unlock()
	var rw RWMutex
	rw.SetName("y")
	rw.RLock()
	rw.RUnlock()
	rw.Lock()
	rw.Unlock()
	if Inversions() != nil || LongHolds() != nil {
		t.Fatal("non-debug build must report nothing")
	}
	Reset()
	SetLongHoldThreshold(1)
}
