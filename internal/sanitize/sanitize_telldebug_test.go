//go:build telldebug

package sanitize

import (
	"strings"
	"testing"
	"time"
)

// TestInversionDetected provokes the textbook A→B / B→A cycle across two
// goroutine turns and checks the sanitizer reports it exactly once.
func TestInversionDetected(t *testing.T) {
	Reset()
	var a, b Mutex
	a.SetName("test.A")
	b.SetName("test.B")

	a.Lock()
	b.Lock()
	b.Unlock()
	a.Unlock()

	// Opposite order, other goroutine: no actual deadlock (sequential),
	// but the class-order cycle is now a fact of the run.
	done := make(chan struct{})
	go func() {
		defer close(done)
		b.Lock()
		a.Lock()
		a.Unlock()
		b.Unlock()
	}()
	<-done

	invs := Inversions()
	if len(invs) != 1 {
		t.Fatalf("got %d inversions, want 1: %+v", len(invs), invs)
	}
	inv := invs[0]
	if inv.Held != "test.B" || inv.Taking != "test.A" {
		t.Fatalf("inversion edge = %s→%s, want test.B→test.A", inv.Held, inv.Taking)
	}
	if inv.Stack == "" || inv.PriorStack == "" {
		t.Fatalf("inversion must carry both stacks")
	}

	// The same pair again must not double-report.
	b.Lock()
	a.Lock()
	a.Unlock()
	b.Unlock()
	if got := len(Inversions()); got != 1 {
		t.Fatalf("pair reported %d times, want deduplicated to 1", got)
	}
}

// TestNoInversionOnConsistentOrder takes two locks in the same order from
// two goroutines: a consistent hierarchy must stay silent.
func TestNoInversionOnConsistentOrder(t *testing.T) {
	Reset()
	var a, b Mutex
	a.SetName("test.C")
	b.SetName("test.D")
	for i := 0; i < 2; i++ {
		done := make(chan struct{})
		go func() {
			defer close(done)
			a.Lock()
			b.Lock()
			b.Unlock()
			a.Unlock()
		}()
		<-done
	}
	if invs := Inversions(); len(invs) != 0 {
		t.Fatalf("consistent order reported inversions: %+v", invs)
	}
}

// TestRWMutexInversion checks read acquisitions participate in ordering.
func TestRWMutexInversion(t *testing.T) {
	Reset()
	var a Mutex
	var b RWMutex
	a.SetName("test.E")
	b.SetName("test.F")

	a.Lock()
	b.RLock()
	b.RUnlock()
	a.Unlock()

	done := make(chan struct{})
	go func() {
		defer close(done)
		b.RLock()
		a.Lock()
		a.Unlock()
		b.RUnlock()
	}()
	<-done

	if invs := Inversions(); len(invs) != 1 {
		t.Fatalf("got %d inversions, want 1: %+v", len(invs), invs)
	}
}

func TestLongHold(t *testing.T) {
	Reset()
	SetLongHoldThreshold(5)
	defer SetLongHoldThreshold(250)
	var m Mutex
	m.SetName("test.slow")
	m.Lock()
	time.Sleep(20 * time.Millisecond)
	m.Unlock()
	holds := LongHolds()
	if len(holds) != 1 || holds[0].Class != "test.slow" {
		t.Fatalf("long hold not recorded: %+v", holds)
	}
	if holds[0].Millis < 5 {
		t.Fatalf("recorded hold of %dms under the 5ms threshold", holds[0].Millis)
	}
}

func TestRecursiveLockPanics(t *testing.T) {
	Reset()
	var m Mutex
	m.SetName("test.recursive")
	m.Lock()
	defer m.Unlock()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("recursive Lock did not panic")
		}
		if !strings.Contains(r.(string), "recursively locking") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	m.Lock()
}

// TestUnnamedUntracked: locks without SetName never enter the registry.
func TestUnnamedUntracked(t *testing.T) {
	Reset()
	var a, b Mutex // unnamed
	a.Lock()
	b.Lock()
	b.Unlock()
	a.Unlock()
	b.Lock()
	a.Lock()
	a.Unlock()
	b.Unlock()
	if invs := Inversions(); len(invs) != 0 {
		t.Fatalf("unnamed locks were tracked: %+v", invs)
	}
}
