package relational

import (
	"bytes"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func sampleSchema() *TableSchema {
	return &TableSchema{
		Name: "customer",
		ID:   3,
		Cols: []Column{
			{Name: "c_id", Type: TInt64},
			{Name: "c_name", Type: TString},
			{Name: "c_balance", Type: TFloat64},
			{Name: "c_data", Type: TBytes},
			{Name: "c_good", Type: TBool},
		},
		PKCols:  []int{0},
		Indexes: []IndexSchema{{Name: "byname", Cols: []int{1}}},
	}
}

func TestSchemaValidate(t *testing.T) {
	s := sampleSchema()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := *s
	bad.PKCols = []int{9}
	if bad.Validate() == nil {
		t.Fatal("out-of-range PK accepted")
	}
	bad2 := *s
	bad2.Cols = append([]Column{}, s.Cols...)
	bad2.Cols[1].Name = "c_id"
	if bad2.Validate() == nil {
		t.Fatal("duplicate column accepted")
	}
	bad3 := *s
	bad3.PKCols = nil
	if bad3.Validate() == nil {
		t.Fatal("missing PK accepted")
	}
}

func TestSchemaCodec(t *testing.T) {
	s := sampleSchema()
	got, err := DecodeSchema(s.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "customer" || got.ID != 3 || len(got.Cols) != 5 {
		t.Fatalf("got %+v", got)
	}
	if got.Cols[2].Type != TFloat64 || got.PKCols[0] != 0 {
		t.Fatalf("got %+v", got)
	}
	if len(got.Indexes) != 1 || got.Indexes[0].Name != "byname" || got.Indexes[0].Cols[0] != 1 {
		t.Fatalf("indexes %+v", got.Indexes)
	}
}

func TestRowCodecRoundTrip(t *testing.T) {
	s := sampleSchema()
	row := Row{I64(7), Str("Alice"), F64(-12.5), Bytes([]byte{1, 2, 0, 3}), BoolV(true)}
	b, err := EncodeRow(s, row)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeRow(s, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range row {
		if !got[i].Equal(row[i]) {
			t.Fatalf("col %d: %v != %v", i, got[i], row[i])
		}
	}
}

func TestRowCodecNulls(t *testing.T) {
	s := sampleSchema()
	row := Row{I64(1), Null(TString), Null(TFloat64), Null(TBytes), Null(TBool)}
	b, err := EncodeRow(s, row)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeRow(s, b)
	if err != nil {
		t.Fatal(err)
	}
	if !got[1].Null || !got[4].Null {
		t.Fatalf("nulls lost: %+v", got)
	}
}

func TestRowCodecRejectsTypeMismatch(t *testing.T) {
	s := sampleSchema()
	if _, err := EncodeRow(s, Row{Str("x"), Str("y"), F64(0), Bytes(nil), BoolV(false)}); err == nil {
		t.Fatal("type mismatch accepted")
	}
	if _, err := EncodeRow(s, Row{I64(1)}); err == nil {
		t.Fatal("arity mismatch accepted")
	}
}

func TestKeyEncodingOrderInt64(t *testing.T) {
	vals := []int64{math.MinInt64, -1 << 40, -255, -1, 0, 1, 255, 1 << 40, math.MaxInt64}
	var prev []byte
	for i, v := range vals {
		k := EncodeKey(I64(v))
		if i > 0 && bytes.Compare(prev, k) >= 0 {
			t.Fatalf("order broken at %d", v)
		}
		prev = k
	}
}

func TestKeyEncodingOrderFloat(t *testing.T) {
	vals := []float64{math.Inf(-1), -1e100, -1.5, -0.0001, 0, 0.0001, 1.5, 1e100, math.Inf(1)}
	var prev []byte
	for i, v := range vals {
		k := EncodeKey(F64(v))
		if i > 0 && bytes.Compare(prev, k) >= 0 {
			t.Fatalf("order broken at %g", v)
		}
		prev = k
	}
}

func TestKeyEncodingOrderStringsWithZeroBytes(t *testing.T) {
	vals := []string{"", "\x00", "\x00a", "a", "a\x00", "a\x00b", "ab", "b"}
	var prev []byte
	for i, v := range vals {
		k := EncodeKey(Str(v))
		if i > 0 && bytes.Compare(prev, k) >= 0 {
			t.Fatalf("order broken at %q", v)
		}
		prev = k
	}
}

func TestKeyEncodingCompositePrefixSafety(t *testing.T) {
	// ("a", "b") must sort before ("ab",) style confusions are impossible
	// thanks to terminators.
	k1 := EncodeKey(Str("a"), Str("z"))
	k2 := EncodeKey(Str("ab"), Str("a"))
	if bytes.Compare(k1, k2) >= 0 {
		t.Fatal("composite ordering broken")
	}
	// Null sorts before any value.
	if bytes.Compare(EncodeKey(Null(TString)), EncodeKey(Str(""))) >= 0 {
		t.Fatal("null must sort first")
	}
}

// TestKeyEncodingPropertyInt property: byte order == numeric order.
func TestKeyEncodingPropertyInt(t *testing.T) {
	f := func(a, b int64) bool {
		ka, kb := EncodeKey(I64(a)), EncodeKey(I64(b))
		switch {
		case a < b:
			return bytes.Compare(ka, kb) < 0
		case a > b:
			return bytes.Compare(ka, kb) > 0
		default:
			return bytes.Equal(ka, kb)
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

// TestKeyEncodingPropertyString property: byte order == lexicographic order.
func TestKeyEncodingPropertyString(t *testing.T) {
	f := func(a, b string) bool {
		ka, kb := EncodeKey(Str(a)), EncodeKey(Str(b))
		switch {
		case a < b:
			return bytes.Compare(ka, kb) < 0
		case a > b:
			return bytes.Compare(ka, kb) > 0
		default:
			return bytes.Equal(ka, kb)
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

// TestKeyEncodingPropertyComposite property: composite keys sort like
// component tuples.
func TestKeyEncodingPropertyComposite(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	type tuple struct {
		a int64
		s string
	}
	var tuples []tuple
	for i := 0; i < 300; i++ {
		tuples = append(tuples, tuple{a: int64(rng.Intn(10) - 5), s: string(rune('a' + rng.Intn(4)))})
	}
	keys := make([][]byte, len(tuples))
	for i, tp := range tuples {
		keys[i] = EncodeKey(I64(tp.a), Str(tp.s))
	}
	order := make([]int, len(tuples))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(x, y int) bool {
		return bytes.Compare(keys[order[x]], keys[order[y]]) < 0
	})
	for i := 1; i < len(order); i++ {
		p, q := tuples[order[i-1]], tuples[order[i]]
		if p.a > q.a || (p.a == q.a && p.s > q.s) {
			t.Fatalf("tuple order violated: %+v after %+v", q, p)
		}
	}
}

func TestRecordKeys(t *testing.T) {
	k := RecordKey(7, 12345)
	rid, ok := RidFromRecordKey(k)
	if !ok || rid != 12345 {
		t.Fatalf("rid = %d, %v", rid, ok)
	}
	if _, ok := RidFromRecordKey([]byte("short")); ok {
		t.Fatal("bad key accepted")
	}
	// Keys for the same table share a scannable prefix and order by rid.
	if bytes.Compare(RecordKey(7, 1), RecordKey(7, 2)) >= 0 {
		t.Fatal("record keys not rid-ordered")
	}
}

func TestRidIndexValRoundTrip(t *testing.T) {
	if got := RidFromIndexVal(RidToIndexVal(987654321)); got != 987654321 {
		t.Fatalf("got %d", got)
	}
	if RidFromIndexVal([]byte{1, 2}) != 0 {
		t.Fatal("short value should decode to 0")
	}
}

func TestAppendRidPreservesOrderWithinKey(t *testing.T) {
	base := EncodeKey(Str("dup"))
	k1 := AppendRid(append([]byte(nil), base...), 1)
	k2 := AppendRid(append([]byte(nil), base...), 2)
	if bytes.Compare(k1, k2) >= 0 {
		t.Fatal("rid suffix order broken")
	}
}

func TestPrefixEnd(t *testing.T) {
	if got := PrefixEnd([]byte{1, 2, 3}); !bytes.Equal(got, []byte{1, 2, 4}) {
		t.Fatalf("got %v", got)
	}
	if got := PrefixEnd([]byte{1, 0xFF}); !bytes.Equal(got, []byte{2}) {
		t.Fatalf("got %v", got)
	}
	if got := PrefixEnd([]byte{0xFF, 0xFF}); got != nil {
		t.Fatalf("got %v", got)
	}
}
