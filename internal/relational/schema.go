// Package relational maps relational data onto the key-value model (§5.1):
// table schemas, a typed row codec, record identifiers, and the
// order-preserving key encodings used by the primary and secondary B+tree
// indexes. Every relational row is stored as one key-value pair whose key
// is a unique numeric record identifier (rid) and whose value is the
// serialized set of all row versions (package mvcc).
package relational

import (
	"encoding/binary"
	"fmt"

	"tell/internal/wire"
)

// ColType is a column's data type.
type ColType byte

const (
	TInt64 ColType = iota + 1
	TFloat64
	TString
	TBytes
	TBool
)

func (t ColType) String() string {
	switch t {
	case TInt64:
		return "INT64"
	case TFloat64:
		return "FLOAT64"
	case TString:
		return "STRING"
	case TBytes:
		return "BYTES"
	case TBool:
		return "BOOL"
	}
	return fmt.Sprintf("ColType(%d)", byte(t))
}

// Column describes one table column.
type Column struct {
	Name string
	Type ColType
}

// IndexSchema describes a secondary index over column positions.
type IndexSchema struct {
	Name string
	Cols []int
}

// TableSchema describes a table: columns, the primary key (a prefix-free
// ordered set of column positions) and secondary indexes.
type TableSchema struct {
	Name    string
	ID      uint32
	Cols    []Column
	PKCols  []int
	Indexes []IndexSchema
}

// ColIndex returns the position of the named column.
func (s *TableSchema) ColIndex(name string) (int, bool) {
	for i := range s.Cols {
		if s.Cols[i].Name == name {
			return i, true
		}
	}
	return 0, false
}

// Validate checks internal consistency.
func (s *TableSchema) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("relational: table needs a name")
	}
	if len(s.Cols) == 0 {
		return fmt.Errorf("relational: table %s has no columns", s.Name)
	}
	seen := make(map[string]bool)
	for _, c := range s.Cols {
		if seen[c.Name] {
			return fmt.Errorf("relational: duplicate column %s.%s", s.Name, c.Name)
		}
		seen[c.Name] = true
	}
	if len(s.PKCols) == 0 {
		return fmt.Errorf("relational: table %s has no primary key", s.Name)
	}
	check := func(cols []int, what string) error {
		for _, i := range cols {
			if i < 0 || i >= len(s.Cols) {
				return fmt.Errorf("relational: %s of %s references column %d", what, s.Name, i)
			}
		}
		return nil
	}
	if err := check(s.PKCols, "primary key"); err != nil {
		return err
	}
	idxNames := make(map[string]bool)
	for _, ix := range s.Indexes {
		if ix.Name == "" || idxNames[ix.Name] {
			return fmt.Errorf("relational: bad index name %q on %s", ix.Name, s.Name)
		}
		idxNames[ix.Name] = true
		if err := check(ix.Cols, "index "+ix.Name); err != nil {
			return err
		}
	}
	return nil
}

// Encode serializes the schema for the shared catalog.
func (s *TableSchema) Encode() []byte {
	w := wire.NewWriter(64)
	w.String(s.Name)
	w.U32(s.ID)
	w.Uvarint(uint64(len(s.Cols)))
	for _, c := range s.Cols {
		w.String(c.Name)
		w.Byte(byte(c.Type))
	}
	w.Uvarint(uint64(len(s.PKCols)))
	for _, i := range s.PKCols {
		w.Uvarint(uint64(i))
	}
	w.Uvarint(uint64(len(s.Indexes)))
	for _, ix := range s.Indexes {
		w.String(ix.Name)
		w.Uvarint(uint64(len(ix.Cols)))
		for _, i := range ix.Cols {
			w.Uvarint(uint64(i))
		}
	}
	return w.Bytes()
}

// DecodeSchema parses a stored schema.
func DecodeSchema(b []byte) (*TableSchema, error) {
	r := wire.NewReader(b)
	s := &TableSchema{Name: r.String(), ID: r.U32()}
	nc := r.Count(2)
	s.Cols = make([]Column, nc)
	for i := range s.Cols {
		s.Cols[i].Name = r.String()
		s.Cols[i].Type = ColType(r.Byte())
	}
	np := r.Count(1)
	for i := 0; i < np; i++ {
		s.PKCols = append(s.PKCols, int(r.Uvarint()))
	}
	ni := r.Count(1)
	for i := 0; i < ni; i++ {
		ix := IndexSchema{Name: r.String()}
		nx := r.Count(1)
		for j := 0; j < nx; j++ {
			ix.Cols = append(ix.Cols, int(r.Uvarint()))
		}
		s.Indexes = append(s.Indexes, ix)
	}
	if err := r.Close(); err != nil {
		return nil, err
	}
	return s, nil
}

// Store key layout for the relational layer.

// SchemaKey is where a table's schema lives in the shared catalog.
func SchemaKey(name string) []byte { return []byte("schema/" + name) }

// SchemaPrefix bounds catalog scans.
func SchemaPrefix() ([]byte, []byte) { return []byte("schema/"), []byte("schema0") }

// RecordKey is the store key of a row: "d/<tableID>/<rid BE>". One row, one
// key-value pair (§5.1).
func RecordKey(tableID uint32, rid uint64) []byte {
	k := make([]byte, 0, 16)
	k = append(k, 'd', '/')
	k = binary.BigEndian.AppendUint32(k, tableID)
	k = append(k, '/')
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], rid)
	return append(k, b[:]...)
}

// RidFromRecordKey recovers the rid from a record key.
func RidFromRecordKey(key []byte) (uint64, bool) {
	if len(key) != 15 || key[0] != 'd' || key[1] != '/' || key[6] != '/' {
		return 0, false
	}
	return binary.BigEndian.Uint64(key[7:]), true
}

// ParseRecordKey recovers both the table id and rid from a record key.
func ParseRecordKey(key []byte) (tableID uint32, rid uint64, ok bool) {
	if len(key) != 15 || key[0] != 'd' || key[1] != '/' || key[6] != '/' {
		return 0, 0, false
	}
	return binary.BigEndian.Uint32(key[2:6]), binary.BigEndian.Uint64(key[7:]), true
}

// RecordPrefix returns the scan bounds covering all records of a table.
func RecordPrefix(tableID uint32) (lo, hi []byte) {
	lo = RecordKey(tableID, 0)[:7]
	return lo, PrefixEnd(lo)
}

// RidCounterKey is the rid-allocation counter of a table. Rids are
// monotonically incremented numeric values (§5.1).
func RidCounterKey(tableID uint32) []byte {
	return []byte(fmt.Sprintf("t/%d/ridctr", tableID))
}

// PKIndexName is the B+tree holding primary key → rid.
func PKIndexName(table string) string { return "pk:" + table }

// SecIndexName is the B+tree of a secondary index.
func SecIndexName(table, index string) string { return "ix:" + table + ":" + index }
