package relational

import (
	"encoding/binary"
	"fmt"
	"math"

	"tell/internal/wire"
)

// Value is one typed column value. Null is legal for any type.
type Value struct {
	T    ColType
	Null bool
	I    int64
	F    float64
	S    string
	B    []byte
	Bool bool
}

// Typed constructors.
func I64(v int64) Value    { return Value{T: TInt64, I: v} }
func F64(v float64) Value  { return Value{T: TFloat64, F: v} }
func Str(v string) Value   { return Value{T: TString, S: v} }
func Bytes(v []byte) Value { return Value{T: TBytes, B: v} }
func BoolV(v bool) Value   { return Value{T: TBool, Bool: v} }
func Null(t ColType) Value { return Value{T: t, Null: true} }

// Equal compares two values of the same type.
func (v Value) Equal(o Value) bool {
	if v.T != o.T || v.Null != o.Null {
		return false
	}
	if v.Null {
		return true
	}
	switch v.T {
	case TInt64:
		return v.I == o.I
	case TFloat64:
		return v.F == o.F
	case TString:
		return v.S == o.S
	case TBytes:
		return string(v.B) == string(o.B)
	case TBool:
		return v.Bool == o.Bool
	}
	return false
}

// String renders the value for debugging and the CLI.
func (v Value) String() string {
	if v.Null {
		return "NULL"
	}
	switch v.T {
	case TInt64:
		return fmt.Sprintf("%d", v.I)
	case TFloat64:
		return fmt.Sprintf("%g", v.F)
	case TString:
		return v.S
	case TBytes:
		return fmt.Sprintf("%x", v.B)
	case TBool:
		return fmt.Sprintf("%v", v.Bool)
	}
	return "?"
}

// Row is one relational tuple, positionally matching a schema's columns.
type Row []Value

// EncodeRow serializes a row against its schema.
func EncodeRow(s *TableSchema, row Row) ([]byte, error) {
	if len(row) != len(s.Cols) {
		return nil, fmt.Errorf("relational: row has %d values, table %s has %d columns",
			len(row), s.Name, len(s.Cols))
	}
	w := wire.NewWriter(16 * len(row))
	for i, v := range row {
		if v.T != s.Cols[i].Type {
			return nil, fmt.Errorf("relational: column %s.%s is %v, got %v",
				s.Name, s.Cols[i].Name, s.Cols[i].Type, v.T)
		}
		w.Bool(v.Null)
		if v.Null {
			continue
		}
		switch v.T {
		case TInt64:
			w.Varint(v.I)
		case TFloat64:
			w.U64(math.Float64bits(v.F))
		case TString:
			w.String(v.S)
		case TBytes:
			w.BytesN(v.B)
		case TBool:
			w.Bool(v.Bool)
		}
	}
	return w.Bytes(), nil
}

// DecodeRow parses a row against its schema.
func DecodeRow(s *TableSchema, b []byte) (Row, error) {
	r := wire.NewReader(b)
	row := make(Row, len(s.Cols))
	for i := range s.Cols {
		v := Value{T: s.Cols[i].Type, Null: r.Bool()}
		if !v.Null {
			switch v.T {
			case TInt64:
				v.I = r.Varint()
			case TFloat64:
				v.F = math.Float64frombits(r.U64())
			case TString:
				v.S = r.String()
			case TBytes:
				v.B = append([]byte(nil), r.BytesN()...)
			case TBool:
				v.Bool = r.Bool()
			}
		}
		row[i] = v
	}
	if err := r.Close(); err != nil {
		return nil, err
	}
	return row, nil
}

// --- Order-preserving index key encoding -----------------------------------
//
// Index keys must compare bytewise in the same order as their typed values,
// and composite keys must compare component-wise. Each component is
// self-terminating:
//
//	int64:   sign-flipped 8-byte big-endian
//	float64: IEEE bits, sign-massaged, 8-byte big-endian
//	string/bytes: 0x00 escaped as 0x00 0xFF, terminated by 0x00 0x00
//	bool:    one byte
//	null:    tag byte 0x00 (sorts before any value, which has tag 0x01)

// AppendKeyValue appends v's order-preserving encoding to dst.
func AppendKeyValue(dst []byte, v Value) []byte {
	if v.Null {
		return append(dst, 0x00)
	}
	dst = append(dst, 0x01)
	switch v.T {
	case TInt64:
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], uint64(v.I)^(1<<63))
		return append(dst, b[:]...)
	case TFloat64:
		bits := math.Float64bits(v.F)
		if bits&(1<<63) != 0 {
			bits = ^bits // negative: flip all
		} else {
			bits |= 1 << 63 // positive: set sign
		}
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], bits)
		return append(dst, b[:]...)
	case TString:
		return appendEscaped(dst, []byte(v.S))
	case TBytes:
		return appendEscaped(dst, v.B)
	case TBool:
		if v.Bool {
			return append(dst, 1)
		}
		return append(dst, 0)
	}
	panic(fmt.Sprintf("relational: unknown type %v", v.T))
}

func appendEscaped(dst, s []byte) []byte {
	for _, b := range s {
		if b == 0x00 {
			dst = append(dst, 0x00, 0xFF)
		} else {
			dst = append(dst, b)
		}
	}
	return append(dst, 0x00, 0x00)
}

// EncodeKey builds a composite order-preserving key from values.
func EncodeKey(vals ...Value) []byte {
	var dst []byte
	for _, v := range vals {
		dst = AppendKeyValue(dst, v)
	}
	return dst
}

// IndexKeyFromRow builds the index key of a row for the given column set.
func IndexKeyFromRow(row Row, cols []int) []byte {
	var dst []byte
	for _, c := range cols {
		dst = AppendKeyValue(dst, row[c])
	}
	return dst
}

// AppendRid appends a rid suffix to a secondary index key, making
// non-unique entries distinct.
func AppendRid(key []byte, rid uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], rid)
	return append(key, b[:]...)
}

// RidFromIndexVal decodes an index entry's value (the rid).
func RidFromIndexVal(v []byte) uint64 {
	if len(v) != 8 {
		return 0
	}
	return binary.BigEndian.Uint64(v)
}

// RidToIndexVal encodes a rid as an index entry value.
func RidToIndexVal(rid uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], rid)
	return b[:]
}

// PrefixEnd returns the smallest key greater than every key with the given
// prefix, for range scans; nil means unbounded.
func PrefixEnd(prefix []byte) []byte {
	end := append([]byte(nil), prefix...)
	for i := len(end) - 1; i >= 0; i-- {
		if end[i] < 0xFF {
			end[i]++
			return end[:i+1]
		}
	}
	return nil
}
