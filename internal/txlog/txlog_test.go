package txlog_test

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"tell/internal/env"
	"tell/internal/sim"
	"tell/internal/store"
	"tell/internal/testutil"
	"tell/internal/transport"
	"tell/internal/txlog"
)

func runWithLog(t *testing.T, fn func(ctx env.Ctx, l *txlog.Log)) {
	t.Helper()
	k := sim.NewKernel(testutil.Seed(t, 5))
	envr := env.NewSim(k)
	net := transport.NewSimNet(k, transport.InfiniBand())
	sc, err := store.NewCluster(envr, net, store.ClusterConfig{NumNodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	pn := envr.NewNode("pn0", 2)
	l := txlog.New(sc.NewClient(pn))
	done := false
	pn.Go("test", func(ctx env.Ctx) {
		fn(ctx, l)
		done = true
		k.Stop()
	})
	if err := k.RunUntil(sim.Time(60 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("test did not finish")
	}
	k.Shutdown()
}

func TestKeyOrderMatchesTidOrder(t *testing.T) {
	prev := txlog.Key(0)
	for _, tid := range []uint64{1, 2, 255, 256, 1 << 20, 1 << 40, ^uint64(0)} {
		k := txlog.Key(tid)
		if bytes.Compare(prev, k) >= 0 {
			t.Fatalf("key order broken at tid %d", tid)
		}
		got, ok := txlog.TIDFromKey(k)
		if !ok || got != tid {
			t.Fatalf("TIDFromKey(%v) = %d, %v", k, got, ok)
		}
		prev = k
	}
	if _, ok := txlog.TIDFromKey([]byte("nonsense")); ok {
		t.Fatal("bad key accepted")
	}
}

func TestEntryCodec(t *testing.T) {
	e := &txlog.Entry{
		TID:       42,
		PN:        "pn3",
		Timestamp: 17 * time.Millisecond,
		WriteSet:  [][]byte{[]byte("t0/r1"), []byte("t0/r2")},
		Committed: true,
	}
	got, err := txlog.Decode(e.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.TID != 42 || got.PN != "pn3" || !got.Committed || got.Timestamp != e.Timestamp {
		t.Fatalf("got %+v", got)
	}
	if len(got.WriteSet) != 2 || string(got.WriteSet[1]) != "t0/r2" {
		t.Fatalf("writeset %v", got.WriteSet)
	}
}

func TestAppendAndGet(t *testing.T) {
	runWithLog(t, func(ctx env.Ctx, l *txlog.Log) {
		e := &txlog.Entry{TID: 7, PN: "pn0", WriteSet: [][]byte{[]byte("k")}}
		if err := l.Append(ctx, e); err != nil {
			t.Fatalf("append: %v", err)
		}
		// Double append must fail: tids are unique.
		if err := l.Append(ctx, e); err == nil {
			t.Fatal("double append succeeded")
		}
		got, err := l.Get(ctx, 7)
		if err != nil || got.PN != "pn0" || got.Committed {
			t.Fatalf("get: %+v %v", got, err)
		}
	})
}

func TestMarkCommitted(t *testing.T) {
	runWithLog(t, func(ctx env.Ctx, l *txlog.Log) {
		l.Append(ctx, &txlog.Entry{TID: 9, PN: "pn0"})
		if err := l.MarkCommitted(ctx, 9); err != nil {
			t.Fatalf("mark: %v", err)
		}
		got, _ := l.Get(ctx, 9)
		if !got.Committed {
			t.Fatal("flag not set")
		}
		// Idempotent.
		if err := l.MarkCommitted(ctx, 9); err != nil {
			t.Fatalf("re-mark: %v", err)
		}
	})
}

func TestScanBackwardOrderAndBounds(t *testing.T) {
	runWithLog(t, func(ctx env.Ctx, l *txlog.Log) {
		for tid := uint64(1); tid <= 20; tid++ {
			l.Append(ctx, &txlog.Entry{TID: tid, PN: "pn0"})
		}
		var got []uint64
		if err := l.ScanBackward(ctx, 5, 15, func(e *txlog.Entry) bool {
			got = append(got, e.TID)
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if len(got) != 11 || got[0] != 15 || got[10] != 5 {
			t.Fatalf("got %v", got)
		}
		for i := 1; i < len(got); i++ {
			if got[i] != got[i-1]-1 {
				t.Fatalf("not descending: %v", got)
			}
		}
		// Early stop.
		n := 0
		l.ScanBackward(ctx, 0, ^uint64(0), func(e *txlog.Entry) bool {
			n++
			return n < 3
		})
		if n != 3 {
			t.Fatalf("early stop visited %d", n)
		}
	})
}

func TestTruncate(t *testing.T) {
	runWithLog(t, func(ctx env.Ctx, l *txlog.Log) {
		for tid := uint64(1); tid <= 10; tid++ {
			l.Append(ctx, &txlog.Entry{TID: tid, PN: "pn0"})
		}
		n, err := l.Truncate(ctx, 6)
		if err != nil || n != 5 {
			t.Fatalf("truncate: %d %v", n, err)
		}
		var got []uint64
		l.ScanBackward(ctx, 0, ^uint64(0), func(e *txlog.Entry) bool {
			got = append(got, e.TID)
			return true
		})
		if len(got) != 5 || got[0] != 10 || got[4] != 6 {
			t.Fatalf("after truncate: %v", got)
		}
	})
}

// TestScanStopsAtCorruptEntry is the regression test for torn/corrupted log
// records: replay must deliver every intact entry above the corruption,
// then stop cleanly with a typed error naming the offending tid — not
// return garbage, not skip silently, not visit anything below it.
func TestScanStopsAtCorruptEntry(t *testing.T) {
	k := sim.NewKernel(testutil.Seed(t, 6))
	defer k.Shutdown()
	envr := env.NewSim(k)
	net := transport.NewSimNet(k, transport.InfiniBand())
	cl, err := store.NewCluster(envr, net, store.ClusterConfig{NumNodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	pn := envr.NewNode("pn0", 2)
	sc := cl.NewClient(pn)
	l := txlog.New(sc)
	done := false
	pn.Go("test", func(ctx env.Ctx) {
		defer k.Stop()
		for tid := uint64(1); tid <= 5; tid++ {
			if err := l.Append(ctx, &txlog.Entry{TID: tid, PN: "pn0"}); err != nil {
				t.Errorf("append %d: %v", tid, err)
				return
			}
		}
		// Tear entry 3: overwrite it with a truncated encoding, as a torn
		// store write would leave it.
		torn := (&txlog.Entry{TID: 3, PN: "pn0", WriteSet: [][]byte{[]byte("t0/r9")}}).Encode()
		if _, err := sc.Put(ctx, txlog.Key(3), torn[:len(torn)-3]); err != nil {
			t.Errorf("corrupt put: %v", err)
			return
		}

		var visited []uint64
		err := l.ScanBackward(ctx, 1, 5, func(e *txlog.Entry) bool {
			visited = append(visited, e.TID)
			return true
		})
		var ce *txlog.CorruptEntryError
		if !errors.As(err, &ce) {
			t.Errorf("scan returned %v, want CorruptEntryError", err)
			return
		}
		if ce.TID != 3 {
			t.Errorf("corrupt tid = %d, want 3", ce.TID)
		}
		if len(visited) != 2 || visited[0] != 5 || visited[1] != 4 {
			t.Errorf("visited %v, want [5 4]: intact entries above the corruption only", visited)
		}

		// Point reads report the same typed error.
		if _, err := l.Get(ctx, 3); !errors.As(err, &ce) || ce.TID != 3 {
			t.Errorf("get corrupt entry: %v", err)
		}
		// Entries on either side stay readable.
		if e, err := l.Get(ctx, 2); err != nil || e.TID != 2 {
			t.Errorf("get 2: %+v %v", e, err)
		}
		done = true
	})
	if err := k.RunUntil(sim.Time(60 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("test did not finish")
	}
}
