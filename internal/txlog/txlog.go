// Package txlog implements the transaction log: an ordered map of log
// entries kept in the shared store (§4.4.1). Before a transaction applies
// its updates, it appends an entry carrying its write set; after the
// updates and index changes are in place it sets the committed flag. The
// recovery process iterates the log backwards from the highest tid to the
// lowest active version number and rolls back entries of failed processing
// nodes that never reached the committed state.
package txlog

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"tell/internal/env"
	"tell/internal/store"
	"tell/internal/wire"
)

// prefix namespaces log keys inside the shared store. Keys embed the tid
// big-endian so that lexicographic key order equals tid order and the log
// can be scanned backwards.
const prefix = "sys/txlog/"

// Entry is one transaction-log record.
type Entry struct {
	TID       uint64
	PN        string // processing-node id, so recovery can filter by node
	Timestamp time.Duration
	WriteSet  [][]byte // store keys of updated records
	Committed bool
	// Aborted is the recovery fence: once set, the owning PN can no
	// longer mark the transaction committed. It resolves the race between
	// a falsely-suspected (slow but alive) PN and the recovery process.
	Aborted bool
}

// Key returns the store key for tid.
func Key(tid uint64) []byte {
	k := make([]byte, len(prefix)+8)
	copy(k, prefix)
	binary.BigEndian.PutUint64(k[len(prefix):], tid)
	return k
}

// TIDFromKey recovers the tid from a log key.
func TIDFromKey(key []byte) (uint64, bool) {
	if len(key) != len(prefix)+8 || string(key[:len(prefix)]) != prefix {
		return 0, false
	}
	return binary.BigEndian.Uint64(key[len(prefix):]), true
}

// Encode serializes the entry.
func (e *Entry) Encode() []byte {
	w := wire.NewWriter(64)
	w.Uvarint(e.TID)
	w.String(e.PN)
	w.Uvarint(uint64(e.Timestamp))
	w.Bool(e.Committed)
	w.Bool(e.Aborted)
	w.Uvarint(uint64(len(e.WriteSet)))
	for _, k := range e.WriteSet {
		w.BytesN(k)
	}
	return w.Bytes()
}

// Decode parses an entry.
func Decode(b []byte) (*Entry, error) {
	r := wire.NewReader(b)
	e := &Entry{
		TID:       r.Uvarint(),
		PN:        r.String(),
		Timestamp: time.Duration(r.Uvarint()),
		Committed: r.Bool(),
		Aborted:   r.Bool(),
	}
	n := r.Count(1)
	for i := 0; i < n; i++ {
		e.WriteSet = append(e.WriteSet, append([]byte(nil), r.BytesN()...))
	}
	if err := r.Close(); err != nil {
		return nil, err
	}
	return e, nil
}

// Log provides transaction-log operations over a store client.
type Log struct {
	sc *store.Client
}

// New returns a log bound to the given store client.
func New(sc *store.Client) *Log { return &Log{sc: sc} }

// Append writes a new entry; the tid guarantees uniqueness so this is an
// insert (§4.3 Try-Commit: "a transaction must append a new entry to the
// log" before applying updates).
func (l *Log) Append(ctx env.Ctx, e *Entry) error {
	_, err := l.sc.CondPut(ctx, Key(e.TID), e.Encode(), 0)
	if err == store.ErrConflict {
		return fmt.Errorf("txlog: entry for tid %d already exists", e.TID)
	}
	return err
}

// ErrFenced is returned by MarkCommitted when a recovery process has
// already fenced the transaction off: it must abort.
var ErrFenced = errors.New("txlog: transaction fenced by recovery")

// MarkCommitted sets the committed flag on tid's entry (§4.3 Commit). It
// fails with ErrFenced if recovery marked the transaction aborted first.
func (l *Log) MarkCommitted(ctx env.Ctx, tid uint64) error {
	for {
		raw, stamp, err := l.sc.Get(ctx, Key(tid))
		if err != nil {
			return err
		}
		e, err := Decode(raw)
		if err != nil {
			return err
		}
		if e.Aborted {
			return ErrFenced
		}
		if e.Committed {
			return nil
		}
		e.Committed = true
		_, err = l.sc.CondPut(ctx, Key(tid), e.Encode(), stamp)
		if err == nil {
			return nil
		}
		if err != store.ErrConflict {
			return err
		}
		// Raced with another writer (a recovery process); retry.
	}
}

// MarkAborted is the recovery fence: it prevents a falsely-suspected PN
// from committing tid later. It reports whether the fence took hold;
// committed=true means the transaction already committed and must NOT be
// rolled back.
func (l *Log) MarkAborted(ctx env.Ctx, tid uint64) (fenced, committed bool, err error) {
	for {
		raw, stamp, err := l.sc.Get(ctx, Key(tid))
		if err != nil {
			return false, false, err
		}
		e, err := Decode(raw)
		if err != nil {
			return false, false, err
		}
		if e.Committed {
			return false, true, nil
		}
		if e.Aborted {
			return true, false, nil
		}
		e.Aborted = true
		_, err = l.sc.CondPut(ctx, Key(tid), e.Encode(), stamp)
		if err == nil {
			return true, false, nil
		}
		if err != store.ErrConflict {
			return false, false, err
		}
	}
}

// CorruptEntryError reports a transaction-log record that failed to decode
// (torn or corrupted bytes in the shared store). Replay stops cleanly at the
// first such record: every entry already delivered decoded intact, and
// nothing past the corrupt record is visited.
type CorruptEntryError struct {
	// TID is the corrupt entry's transaction id, recovered from its store
	// key (the key embeds the tid even when the value is garbage).
	TID uint64
	Err error
}

func (e *CorruptEntryError) Error() string {
	return fmt.Sprintf("txlog: corrupt entry for tid %d: %v", e.TID, e.Err)
}

func (e *CorruptEntryError) Unwrap() error { return e.Err }

// Get fetches the entry for tid.
func (l *Log) Get(ctx env.Ctx, tid uint64) (*Entry, error) {
	raw, _, err := l.sc.Get(ctx, Key(tid))
	if err != nil {
		return nil, err
	}
	e, err := Decode(raw)
	if err != nil {
		return nil, &CorruptEntryError{TID: tid, Err: err}
	}
	return e, nil
}

// ScanBackward visits entries with lo <= tid <= hi in descending tid order,
// stopping early when fn returns false. This is the recovery iteration
// pattern: from the highest tid down to the lav checkpoint (§4.4.1). A
// record that fails to decode stops the scan with a *CorruptEntryError
// identifying the offending tid; entries already visited were intact.
func (l *Log) ScanBackward(ctx env.Ctx, lo, hi uint64, fn func(e *Entry) bool) error {
	loKey := Key(lo)
	hiKey := Key(hi + 1) // exclusive upper bound
	if hi == ^uint64(0) {
		hiKey = append([]byte(prefix), 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff)
	}
	pairs, err := l.sc.Scan(ctx, loKey, hiKey, 0, true)
	if err != nil {
		return err
	}
	for _, p := range pairs {
		e, err := Decode(p.Val)
		if err != nil {
			tid, _ := TIDFromKey(p.Key)
			return &CorruptEntryError{TID: tid, Err: err}
		}
		if !fn(e) {
			return nil
		}
	}
	return nil
}

// Truncate deletes entries with tid < lo. The lav acts as a rolling
// checkpoint, so entries below it can be dropped by the lazy GC.
func (l *Log) Truncate(ctx env.Ctx, lo uint64) (int, error) {
	pairs, err := l.sc.Scan(ctx, Key(0), Key(lo), 0, false)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, p := range pairs {
		if err := l.sc.Delete(ctx, p.Key, 0); err == nil {
			n++
		}
	}
	return n, nil
}
