package sim

import (
	"testing"
	"time"
)

func TestSleepAdvancesVirtualTime(t *testing.T) {
	k := NewKernel(1)
	var woke Time
	k.Go("sleeper", func(p *Proc) {
		p.Sleep(5 * time.Millisecond)
		woke = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if woke != Time(5*time.Millisecond) {
		t.Fatalf("woke at %v, want 5ms", woke)
	}
	if k.Now() != woke {
		t.Fatalf("kernel time %v, want %v", k.Now(), woke)
	}
}

func TestEventsFireInTimeOrder(t *testing.T) {
	k := NewKernel(1)
	var order []int
	k.Go("a", func(p *Proc) {
		p.Sleep(3 * time.Millisecond)
		order = append(order, 3)
	})
	k.Go("b", func(p *Proc) {
		p.Sleep(1 * time.Millisecond)
		order = append(order, 1)
	})
	k.Go("c", func(p *Proc) {
		p.Sleep(2 * time.Millisecond)
		order = append(order, 2)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i+1 {
			t.Fatalf("order = %v, want [1 2 3]", order)
		}
	}
}

func TestEqualTimeEventsFireInScheduleOrder(t *testing.T) {
	k := NewKernel(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.After(time.Millisecond, func() { order = append(order, i) })
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v, want ascending", order)
		}
	}
}

func TestRunUntilStopsAtDeadline(t *testing.T) {
	k := NewKernel(1)
	fired := 0
	k.After(time.Second, func() { fired++ })
	k.After(3*time.Second, func() { fired++ })
	if err := k.RunUntil(Time(2 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if k.Now() != Time(2*time.Second) {
		t.Fatalf("now = %v, want 2s", k.Now())
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
}

func TestRunForIsRelative(t *testing.T) {
	k := NewKernel(1)
	if err := k.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	if err := k.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	if k.Now() != Time(2*time.Second) {
		t.Fatalf("now = %v, want 2s", k.Now())
	}
}

func TestProcessPanicSurfacesAsError(t *testing.T) {
	k := NewKernel(1)
	k.Go("boom", func(p *Proc) {
		p.Sleep(time.Millisecond)
		panic("kaboom")
	})
	err := k.Run()
	if err == nil {
		t.Fatal("expected error from panicking process")
	}
}

func TestStopHaltsRun(t *testing.T) {
	k := NewKernel(1)
	n := 0
	k.Go("stopper", func(p *Proc) {
		for i := 0; i < 100; i++ {
			p.Sleep(time.Millisecond)
			n++
			if n == 5 {
				p.Kernel().Stop()
			}
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("n = %d, want 5", n)
	}
	k.Shutdown()
	if k.Procs() != 0 {
		t.Fatalf("procs = %d after shutdown, want 0", k.Procs())
	}
}

func TestShutdownReleasesBlockedProcesses(t *testing.T) {
	k := NewKernel(1)
	q := NewQueue(k)
	for i := 0; i < 3; i++ {
		k.Go("blocked", func(p *Proc) { q.Get(p) })
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if k.Procs() != 3 {
		t.Fatalf("procs = %d, want 3 blocked", k.Procs())
	}
	k.Shutdown()
	if k.Procs() != 0 {
		t.Fatalf("procs = %d after shutdown, want 0", k.Procs())
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	trace := func() []int64 {
		k := NewKernel(42)
		var out []int64
		for i := 0; i < 5; i++ {
			k.Go("p", func(p *Proc) {
				for j := 0; j < 20; j++ {
					d := time.Duration(k.Rand().Intn(1000)) * time.Microsecond
					p.Sleep(d)
					out = append(out, int64(p.Now()))
				}
			})
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		k.Shutdown()
		return out
	}
	a, b := trace(), trace()
	if len(a) != len(b) || len(a) != 100 {
		t.Fatalf("trace lengths %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %d != %d", i, a[i], b[i])
		}
	}
}

func TestNestedSpawn(t *testing.T) {
	k := NewKernel(1)
	done := 0
	k.Go("parent", func(p *Proc) {
		p.Go("child", func(c *Proc) {
			c.Sleep(time.Millisecond)
			done++
		})
		p.Sleep(2 * time.Millisecond)
		done++
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if done != 2 {
		t.Fatalf("done = %d, want 2", done)
	}
}
