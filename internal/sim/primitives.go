package sim

import "time"

// waiter is a process parked on a synchronization primitive, together with
// the slot the primitive delivers its result into.
type waiter struct {
	p        *Proc
	val      any
	ok       bool
	done     bool // delivered or timed out; skip on later delivery attempts
	timedOut bool
	unit     int // resource unit handed over by a releasing process
}

// wakeNow schedules w's process to resume at the current virtual time.
func (k *Kernel) wakeNow(w *waiter) { k.schedule(k.now, w.p, nil) }

// Queue is an unbounded FIFO queue usable across simulated processes.
// Put never blocks and may be called from kernel callbacks; Get blocks the
// calling process until a value or close arrives.
type Queue struct {
	k       *Kernel
	buf     []any
	head    int
	waiters []*waiter
	closed  bool
}

// NewQueue returns an empty queue bound to kernel k.
func NewQueue(k *Kernel) *Queue { return &Queue{k: k} }

// Len returns the number of buffered values.
func (q *Queue) Len() int { return len(q.buf) - q.head }

// Put appends v to the queue, waking one waiting process if any.
func (q *Queue) Put(v any) {
	if q.closed {
		return
	}
	for len(q.waiters) > 0 {
		w := q.waiters[0]
		q.waiters = q.waiters[1:]
		if w.done {
			continue
		}
		w.val, w.ok, w.done = v, true, true
		q.k.wakeNow(w)
		return
	}
	q.buf = append(q.buf, v)
}

// Close releases all waiting processes with ok=false. Further Puts are
// dropped and further Gets return immediately.
func (q *Queue) Close() {
	if q.closed {
		return
	}
	q.closed = true
	for _, w := range q.waiters {
		if !w.done {
			w.done = true
			q.k.wakeNow(w)
		}
	}
	q.waiters = nil
}

func (q *Queue) pop() (any, bool) {
	if q.head < len(q.buf) {
		v := q.buf[q.head]
		q.buf[q.head] = nil
		q.head++
		if q.head == len(q.buf) {
			q.buf = q.buf[:0]
			q.head = 0
		}
		return v, true
	}
	return nil, false
}

// Get blocks p until a value is available. ok is false if the queue closed.
func (q *Queue) Get(p *Proc) (v any, ok bool) {
	if v, ok := q.pop(); ok {
		return v, true
	}
	if q.closed {
		return nil, false
	}
	w := &waiter{p: p}
	q.waiters = append(q.waiters, w)
	p.block()
	return w.val, w.ok
}

// GetTimeout is like Get but gives up after d of virtual time.
func (q *Queue) GetTimeout(p *Proc, d time.Duration) (v any, ok, timedOut bool) {
	if v, ok := q.pop(); ok {
		return v, true, false
	}
	if q.closed {
		return nil, false, false
	}
	w := &waiter{p: p}
	q.waiters = append(q.waiters, w)
	q.k.After(d, func() {
		if !w.done {
			w.done, w.timedOut = true, true
			q.k.wakeNow(w)
		}
	})
	p.block()
	return w.val, w.ok, w.timedOut
}

// Future is a write-once value that any number of processes can wait on.
type Future struct {
	k       *Kernel
	set     bool
	val     any
	waiters []*waiter
}

// NewFuture returns an unset future bound to kernel k.
func NewFuture(k *Kernel) *Future { return &Future{k: k} }

// IsSet reports whether the future has a value.
func (f *Future) IsSet() bool { return f.set }

// Set stores v and wakes all waiters. Setting twice panics: a future is the
// reply slot of exactly one request.
func (f *Future) Set(v any) {
	if f.set {
		panic("sim: Future set twice")
	}
	f.set = true
	f.val = v
	for _, w := range f.waiters {
		if !w.done {
			w.val, w.ok, w.done = v, true, true
			f.k.wakeNow(w)
		}
	}
	f.waiters = nil
}

// Get blocks p until the future is set and returns its value.
func (f *Future) Get(p *Proc) any {
	if f.set {
		return f.val
	}
	w := &waiter{p: p}
	f.waiters = append(f.waiters, w)
	p.block()
	return w.val
}

// GetTimeout is like Get but gives up after d of virtual time, returning
// ok=false on timeout.
func (f *Future) GetTimeout(p *Proc, d time.Duration) (v any, ok bool) {
	if f.set {
		return f.val, true
	}
	w := &waiter{p: p}
	f.waiters = append(f.waiters, w)
	f.k.After(d, func() {
		if !w.done {
			w.done, w.timedOut = true, true
			f.k.wakeNow(w)
		}
	})
	p.block()
	return w.val, w.ok
}

// Resource models a pool of identical servers (for example the CPU cores of
// a simulated machine). Acquire blocks until a unit is free; queueing is
// FIFO, which models an OS run queue well enough for throughput studies.
type Resource struct {
	k       *Kernel
	total   int
	inUse   int
	waiters []*waiter
	busy    time.Duration // accumulated busy time across all units
	last    Time          // last accounting instant
	free    []int         // free unit indices (LIFO; unit 0 preferred)

	// OnUse, when set, observes every completed Use interval: unit was
	// busy over [start, end). Tracing hooks per-core run tracks here.
	OnUse func(unit int, start, end Time)
}

// NewResource returns a resource with n units.
func NewResource(k *Kernel, n int) *Resource {
	if n <= 0 {
		panic("sim: resource must have at least one unit")
	}
	r := &Resource{k: k, total: n, free: make([]int, n)}
	for i := range r.free {
		r.free[i] = n - 1 - i
	}
	return r
}

func (r *Resource) account() {
	now := r.k.Now()
	r.busy += time.Duration(r.inUse) * now.Sub(r.last)
	r.last = now
}

// Acquire blocks p until a unit is available and takes it, returning the
// unit's index.
func (r *Resource) Acquire(p *Proc) int {
	if r.inUse < r.total {
		r.account()
		r.inUse++
		u := r.free[len(r.free)-1]
		r.free = r.free[:len(r.free)-1]
		return u
	}
	w := &waiter{p: p}
	r.waiters = append(r.waiters, w)
	p.block()
	// The releasing process transferred its unit to us; inUse unchanged.
	return w.unit
}

// Release returns unit to the pool, handing it to the first waiter if any.
func (r *Resource) Release(unit int) {
	for len(r.waiters) > 0 {
		w := r.waiters[0]
		r.waiters = r.waiters[1:]
		if w.done {
			continue
		}
		w.done = true
		w.unit = unit
		r.k.wakeNow(w)
		return
	}
	r.account()
	r.inUse--
	r.free = append(r.free, unit)
}

// Use occupies one unit for d of virtual time: the canonical way to charge
// CPU work to a simulated machine.
func (r *Resource) Use(p *Proc, d time.Duration) {
	u := r.Acquire(p)
	start := p.Now()
	p.Sleep(d)
	r.Release(u)
	if r.OnUse != nil {
		r.OnUse(u, start, p.Now())
	}
}

// Utilization returns the fraction of total capacity that has been busy
// since the kernel started.
func (r *Resource) Utilization() float64 {
	r.account()
	elapsed := r.k.Now().Duration()
	if elapsed <= 0 {
		return 0
	}
	return float64(r.busy) / float64(elapsed) / float64(r.total)
}

// InUse returns the number of currently held units.
func (r *Resource) InUse() int { return r.inUse }
