package sim

import (
	"testing"
	"time"
)

func TestQueueFIFO(t *testing.T) {
	k := NewKernel(1)
	q := NewQueue(k)
	var got []int
	k.Go("consumer", func(p *Proc) {
		for i := 0; i < 3; i++ {
			v, ok := q.Get(p)
			if !ok {
				t.Error("queue closed unexpectedly")
				return
			}
			got = append(got, v.(int))
		}
	})
	k.Go("producer", func(p *Proc) {
		for i := 1; i <= 3; i++ {
			q.Put(i)
			p.Sleep(time.Millisecond)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("got %v, want [1 2 3]", got)
	}
}

func TestQueueBuffersWhenNoWaiter(t *testing.T) {
	k := NewKernel(1)
	q := NewQueue(k)
	q.Put("a")
	q.Put("b")
	if q.Len() != 2 {
		t.Fatalf("len = %d, want 2", q.Len())
	}
	var got []string
	k.Go("c", func(p *Proc) {
		for i := 0; i < 2; i++ {
			v, _ := q.Get(p)
			got = append(got, v.(string))
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got[0] != "a" || got[1] != "b" {
		t.Fatalf("got %v", got)
	}
}

func TestQueueCloseWakesWaiters(t *testing.T) {
	k := NewKernel(1)
	q := NewQueue(k)
	closedSeen := 0
	for i := 0; i < 2; i++ {
		k.Go("w", func(p *Proc) {
			if _, ok := q.Get(p); !ok {
				closedSeen++
			}
		})
	}
	k.After(time.Millisecond, func() { q.Close() })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if closedSeen != 2 {
		t.Fatalf("closedSeen = %d, want 2", closedSeen)
	}
}

func TestQueueGetTimeout(t *testing.T) {
	k := NewKernel(1)
	q := NewQueue(k)
	var timedOut, gotValue bool
	k.Go("w", func(p *Proc) {
		_, _, to := q.GetTimeout(p, time.Millisecond)
		timedOut = to
		v, ok, to2 := q.GetTimeout(p, 10*time.Millisecond)
		gotValue = ok && !to2 && v.(int) == 7
	})
	k.After(2*time.Millisecond, func() { q.Put(7) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !timedOut {
		t.Fatal("first Get should have timed out")
	}
	if !gotValue {
		t.Fatal("second Get should have received 7")
	}
}

func TestQueueTimedOutWaiterDoesNotConsumeValue(t *testing.T) {
	k := NewKernel(1)
	q := NewQueue(k)
	var late, value bool
	k.Go("w1", func(p *Proc) {
		_, _, to := q.GetTimeout(p, time.Millisecond)
		late = to
	})
	k.Go("w2", func(p *Proc) {
		v, ok := q.Get(p)
		value = ok && v.(int) == 9
	})
	k.After(5*time.Millisecond, func() { q.Put(9) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !late || !value {
		t.Fatalf("late=%v value=%v, want both true", late, value)
	}
}

func TestFutureDeliversToAllWaiters(t *testing.T) {
	k := NewKernel(1)
	f := NewFuture(k)
	sum := 0
	for i := 0; i < 3; i++ {
		k.Go("w", func(p *Proc) { sum += f.Get(p).(int) })
	}
	k.After(time.Millisecond, func() { f.Set(5) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if sum != 15 {
		t.Fatalf("sum = %d, want 15", sum)
	}
}

func TestFutureGetAfterSetReturnsImmediately(t *testing.T) {
	k := NewKernel(1)
	f := NewFuture(k)
	f.Set("x")
	var got string
	var at Time
	k.Go("w", func(p *Proc) {
		got = f.Get(p).(string)
		at = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got != "x" || at != 0 {
		t.Fatalf("got %q at %v", got, at)
	}
}

func TestFutureGetTimeout(t *testing.T) {
	k := NewKernel(1)
	f := NewFuture(k)
	var ok bool
	k.Go("w", func(p *Proc) { _, ok = f.GetTimeout(p, time.Millisecond) })
	k.After(time.Hour, func() { f.Set(1) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("expected timeout")
	}
}

func TestResourceSerializesWork(t *testing.T) {
	// Three jobs of 10ms on a 1-unit resource finish at 10, 20, 30ms.
	k := NewKernel(1)
	r := NewResource(k, 1)
	var ends []Time
	for i := 0; i < 3; i++ {
		k.Go("job", func(p *Proc) {
			r.Use(p, 10*time.Millisecond)
			ends = append(ends, p.Now())
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []Time{Time(10 * time.Millisecond), Time(20 * time.Millisecond), Time(30 * time.Millisecond)}
	for i := range want {
		if ends[i] != want[i] {
			t.Fatalf("ends = %v, want %v", ends, want)
		}
	}
}

func TestResourceParallelism(t *testing.T) {
	// Four jobs of 10ms on a 2-unit resource finish at 10, 10, 20, 20ms.
	k := NewKernel(1)
	r := NewResource(k, 2)
	var ends []Time
	for i := 0; i < 4; i++ {
		k.Go("job", func(p *Proc) {
			r.Use(p, 10*time.Millisecond)
			ends = append(ends, p.Now())
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if k.Now() != Time(20*time.Millisecond) {
		t.Fatalf("finished at %v, want 20ms", k.Now())
	}
}

func TestResourceUtilization(t *testing.T) {
	k := NewKernel(1)
	r := NewResource(k, 2)
	k.Go("job", func(p *Proc) { r.Use(p, 10*time.Millisecond) })
	if err := k.RunUntil(Time(20 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	// One of two units busy for half the elapsed time: 25%.
	if u := r.Utilization(); u < 0.24 || u > 0.26 {
		t.Fatalf("utilization = %v, want 0.25", u)
	}
}
