// Package sim implements a deterministic discrete-event simulator.
//
// The simulator is the substrate for all scalability experiments in this
// repository: the paper's evaluation ran on a 12-server InfiniBand cluster,
// which we reproduce as a virtual cluster whose nodes, CPU cores and network
// links are simulated resources. The database code itself executes for real;
// only time is virtual.
//
// Processes are ordinary goroutines scheduled cooperatively with strict
// hand-off: exactly one process runs at any instant, and control returns to
// the kernel whenever a process blocks on a simulated primitive (Sleep,
// Queue.Get, Resource.Acquire, Future.Get). This makes simulations fully
// deterministic — a given seed and program always produce the same event
// order — and lets a single host core simulate an arbitrarily large cluster.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"runtime/debug"
	"time"
)

// Time is a point in virtual time, expressed as nanoseconds since the start
// of the simulation.
type Time int64

// Add returns the time d after t.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration between t and earlier time u.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Duration converts t to the duration elapsed since the simulation started.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// event is a scheduled occurrence: either a process wake-up or a kernel
// callback. Events with equal times fire in scheduling order (seq).
type event struct {
	at   Time
	seq  uint64
	proc *Proc  // process to resume, or nil
	fn   func() // kernel callback, run inline; must not block
	idx  int    // heap index
	dead bool   // cancelled
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx, h[j].idx = i, j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// yieldKind reports why a process handed control back to the kernel.
type yieldKind int

const (
	yieldBlocked yieldKind = iota // process is waiting on an event
	yieldDone                     // process function returned
	yieldPanic                    // process function panicked
)

type yieldMsg struct {
	kind yieldKind
	err  error
}

// Kernel is a discrete-event simulation instance. It is not safe for
// concurrent use; all interaction happens from the goroutine that calls Run
// and from the processes the kernel itself schedules.
type Kernel struct {
	now     Time
	seq     uint64
	events  eventHeap
	rng     *rand.Rand
	yield   chan yieldMsg
	cur     *Proc
	procs   map[*Proc]struct{}
	stopped bool
	err     error
	nspawn  int
}

// ErrKilled is the panic value delivered to processes that are still blocked
// when the kernel shuts down. The kernel recovers it silently.
var ErrKilled = fmt.Errorf("sim: process killed at shutdown")

// NewKernel returns a kernel whose random source is seeded with seed.
func NewKernel(seed int64) *Kernel {
	return &Kernel{
		rng:   rand.New(rand.NewSource(seed)),
		yield: make(chan yieldMsg),
		procs: make(map[*Proc]struct{}),
	}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Rand returns the kernel's deterministic random source.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// Err returns the first process panic observed, if any.
func (k *Kernel) Err() error { return k.err }

// Procs returns the number of live (running or blocked) processes.
func (k *Kernel) Procs() int { return len(k.procs) }

func (k *Kernel) schedule(at Time, p *Proc, fn func()) *event {
	if at < k.now {
		at = k.now
	}
	k.seq++
	e := &event{at: at, seq: k.seq, proc: p, fn: fn}
	heap.Push(&k.events, e)
	return e
}

// After schedules fn to run at the current time plus d. fn executes on the
// kernel goroutine and must not block on simulated primitives; it may wake
// processes, put to queues, set futures, or schedule further callbacks.
func (k *Kernel) After(d time.Duration, fn func()) {
	k.schedule(k.now.Add(d), nil, fn)
}

// Go spawns a new process that begins executing at the current virtual time.
func (k *Kernel) Go(name string, fn func(p *Proc)) *Proc {
	p := &Proc{k: k, name: name, wake: make(chan wakeMsg)}
	k.procs[p] = struct{}{}
	k.nspawn++
	go func() {
		if m := <-p.wake; m.kill {
			k.yield <- yieldMsg{kind: yieldDone}
			return
		}
		defer func() {
			if r := recover(); r != nil {
				if r == ErrKilled {
					k.yield <- yieldMsg{kind: yieldDone}
					return
				}
				k.yield <- yieldMsg{
					kind: yieldPanic,
					err:  fmt.Errorf("sim: process %q panicked: %v\n%s", p.name, r, debug.Stack()),
				}
				return
			}
			k.yield <- yieldMsg{kind: yieldDone}
		}()
		fn(p)
	}()
	k.schedule(k.now, p, nil)
	return p
}

// dispatch resumes process p and waits for it to block or finish.
func (k *Kernel) dispatch(p *Proc) {
	k.cur = p
	p.wake <- wakeMsg{}
	m := <-k.yield
	k.cur = nil
	switch m.kind {
	case yieldDone:
		delete(k.procs, p)
	case yieldPanic:
		delete(k.procs, p)
		if k.err == nil {
			k.err = m.err
		}
		k.stopped = true
	}
}

// Stop halts the simulation: Run returns after the current event completes.
func (k *Kernel) Stop() { k.stopped = true }

// maxTime is the sentinel deadline meaning "run until the queue drains".
const maxTime = Time(1<<62 - 1)

// Run executes events until the event queue is empty, Stop is called, or a
// process panics. It returns the first process panic, if any.
func (k *Kernel) Run() error { return k.RunUntil(maxTime) }

// RunFor runs the simulation for d virtual time from now.
func (k *Kernel) RunFor(d time.Duration) error { return k.RunUntil(k.now.Add(d)) }

// RunUntil executes events with timestamps at or before deadline. When it
// returns, virtual time equals the deadline (unless the event queue drained
// or the kernel stopped first).
func (k *Kernel) RunUntil(deadline Time) error {
	for !k.stopped {
		e := k.next()
		if e == nil {
			// Queue drained: idle until the deadline.
			if deadline != maxTime && deadline > k.now {
				k.now = deadline
			}
			break
		}
		if e.at > deadline {
			// Put it back for a later Run call.
			heap.Push(&k.events, e)
			k.now = deadline
			return k.err
		}
		k.now = e.at
		if e.fn != nil {
			e.fn()
			continue
		}
		k.dispatch(e.proc)
	}
	return k.err
}

func (k *Kernel) next() *event {
	for len(k.events) > 0 {
		e := heap.Pop(&k.events).(*event)
		if !e.dead {
			return e
		}
	}
	return nil
}

// Shutdown terminates all still-blocked processes so their goroutines exit.
// It must be called after Run returns; the kernel is unusable afterwards.
func (k *Kernel) Shutdown() {
	k.stopped = true
	for p := range k.procs {
		p.wake <- wakeMsg{kill: true}
		<-k.yield
	}
	k.procs = map[*Proc]struct{}{}
}

type wakeMsg struct{ kill bool }

// Proc is a handle to a simulated process. All methods must be called from
// within the process's own function.
type Proc struct {
	k    *Kernel
	name string
	wake chan wakeMsg
}

// Name returns the name given at spawn time.
func (p *Proc) Name() string { return p.name }

// Kernel returns the kernel this process belongs to.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.k.now }

// block hands control to the kernel until another event resumes p.
func (p *Proc) block() {
	p.k.yield <- yieldMsg{kind: yieldBlocked}
	if m := <-p.wake; m.kill {
		panic(ErrKilled)
	}
}

// Sleep suspends the process for d of virtual time.
func (p *Proc) Sleep(d time.Duration) {
	if d <= 0 {
		// Yield anyway so zero-duration sleeps still provide a scheduling
		// point, mirroring runtime.Gosched.
		d = 0
	}
	p.k.schedule(p.k.now.Add(d), p, nil)
	p.block()
}

// Go spawns a sibling process.
func (p *Proc) Go(name string, fn func(p *Proc)) *Proc { return p.k.Go(name, fn) }
