package recovery_test

import (
	"testing"

	"tell/internal/core"
	"tell/internal/mvcc"
	"tell/internal/relational"
)

func decodeRecord(t *testing.T, raw []byte) *mvcc.Record {
	t.Helper()
	rec, err := mvcc.Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

func encodeRow(t *testing.T, table *core.TableInfo, row relational.Row) []byte {
	t.Helper()
	b, err := relational.EncodeRow(table.Schema, row)
	if err != nil {
		t.Fatal(err)
	}
	return b
}
