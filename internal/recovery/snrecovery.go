package recovery

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"tell/internal/durable"
	"tell/internal/env"
	"tell/internal/resil"
	"tell/internal/sanitize"
	"tell/internal/transport"
	"tell/internal/wire"
)

// SNRecoverer rebuilds a dead storage node's partitions from its durable
// objects, RamCloud-style: the dead node's WAL segments and checkpoint
// chunks are partitioned across the surviving SNs, each survivor fetches and
// replays its shard in parallel, and records are routed to the partitions'
// new masters. Recovery time therefore shrinks with cluster size — the
// premise of log-structured durability on shared storage (§4.4.2, and the
// RamCloud fast-recovery design the paper's SN tier follows).
//
// It plugs into store.Manager.Recoverer; the store layer defines the
// interface to avoid an import cycle.
type SNRecoverer struct {
	envr env.Full
	node env.Node
	tr   transport.Transport
	be   durable.Backend
	// retr retries replay RPCs under the meta policy: replaying an object is
	// apply-if-newer on the receiving master, so a duplicate delivery after a
	// lost response is harmless.
	retr *resil.Retrier

	mu    sanitize.Mutex
	conns map[string]transport.Conn
	last  RecoveryReport

	// OnRecovered, if set, is called after each completed recovery.
	OnRecovered func(r RecoveryReport)
}

// RecoveryReport summarizes one scatter-gather recovery.
type RecoveryReport struct {
	Dead      string
	Survivors int
	Objects   int
	Records   uint64
	Bytes     uint64
	Elapsed   time.Duration
}

// NewSNRecoverer creates a coordinator homed on the given execution node
// (typically the management node) reading the cluster's shared backend.
func NewSNRecoverer(envr env.Full, node env.Node, tr transport.Transport, be durable.Backend) *SNRecoverer {
	r := &SNRecoverer{
		envr:  envr,
		node:  node,
		tr:    tr,
		be:    be,
		retr:  resil.NewRetrier(),
		conns: make(map[string]transport.Conn),
	}
	r.mu.SetName("recovery.SNRecoverer.mu")
	return r
}

// LastReport returns the most recent recovery's summary.
func (r *SNRecoverer) LastReport() RecoveryReport {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.last
}

func (r *SNRecoverer) conn(addr string) (transport.Conn, error) {
	r.mu.Lock()
	if c, ok := r.conns[addr]; ok {
		r.mu.Unlock()
		return c, nil
	}
	r.mu.Unlock()
	// Dial outside the lock: recovery workers dial their survivors in
	// parallel and must not serialize on one slow dial.
	c, err := r.tr.Dial(r.node, addr)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if exist, ok := r.conns[addr]; ok {
		// Lost a dial race; keep the first connection.
		//lint:allow errdiscard closing a redundant just-dialed connection nothing was sent on
		c.Close()
		return exist, nil
	}
	r.conns[addr] = c
	return c, nil
}

// RecoverSN implements store.SNRecoverer. It lists the dead node's durable
// objects, assigns each orphaned partition a new master round-robin over the
// survivors, shards the objects round-robin across the survivors, and drives
// all workers in parallel. Every worker sees the full assignment table, so
// it can route any record it decodes; apply-if-newer by stamp makes the
// result independent of worker interleaving.
func (r *SNRecoverer) RecoverSN(ctx env.Ctx, dead string, pids []uint64, survivors []string) (map[uint64]string, error) {
	if len(survivors) == 0 {
		return nil, fmt.Errorf("recovery: no survivors to recover %s onto", dead)
	}
	start := ctx.Now()
	objs, err := durable.RecoveryObjects(ctx, r.be, dead)
	if err != nil {
		return nil, fmt.Errorf("recovery: list %s: %w", dead, err)
	}

	pids = append([]uint64(nil), pids...)
	sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })
	survivors = append([]string(nil), survivors...)
	sort.Strings(survivors)

	assign := make(map[uint64]string, len(pids))
	table := make([]wire.RecoverAssign, len(pids))
	for i, pid := range pids {
		addr := survivors[i%len(survivors)]
		assign[pid] = addr
		table[i] = wire.RecoverAssign{Pid: pid, Addr: addr}
	}

	// Shard objects round-robin so each survivor replays ~1/n of the log.
	shards := make([][]string, len(survivors))
	for i, obj := range objs {
		w := i % len(survivors)
		shards[w] = append(shards[w], obj)
	}

	report := RecoveryReport{Dead: dead, Survivors: len(survivors), Objects: len(objs)}
	var repMu sync.Mutex
	var firstErr error
	done := make([]env.Future, 0, len(survivors))
	for w := range survivors {
		if len(shards[w]) == 0 {
			continue
		}
		w := w
		f := r.envr.NewFuture()
		done = append(done, f)
		ctx.Go("sn-recover", func(wctx env.Ctx) {
			err := r.runWorker(wctx, survivors[w], dead, shards[w], table, &report, &repMu)
			f.Set(err)
		})
	}
	for _, f := range done {
		if err, _ := f.Get(ctx).(error); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	report.Elapsed = ctx.Now() - start
	r.mu.Lock()
	r.last = report
	r.mu.Unlock()
	if r.OnRecovered != nil {
		r.OnRecovered(report)
	}
	return assign, nil
}

// runWorker drives one survivor through its object shard. Objects go one
// per RPC: each carries a full segment or chunk of replay work, and small
// requests keep every round-trip inside the transport's timeout budget.
func (r *SNRecoverer) runWorker(ctx env.Ctx, worker, dead string, objs []string,
	table []wire.RecoverAssign, report *RecoveryReport, repMu *sync.Mutex) error {
	conn, err := r.conn(worker)
	if err != nil {
		return fmt.Errorf("recovery: dial %s: %w", worker, err)
	}
	for _, obj := range objs {
		req := &wire.RecoverRequest{Dead: dead, Objects: []string{obj}, Assign: table}
		var raw []byte
		err := r.retr.Do(ctx, resil.ClassMeta, worker, func(int) error {
			var rtErr error
			raw, rtErr = conn.RoundTrip(ctx, req.Encode())
			return rtErr
		})
		if err != nil {
			return fmt.Errorf("recovery: worker %s object %s: %w", worker, obj, err)
		}
		resp, err := wire.DecodeRecoverResponse(raw)
		if err != nil {
			return fmt.Errorf("recovery: worker %s: %w", worker, err)
		}
		if resp.Status != wire.StatusOK {
			return fmt.Errorf("recovery: worker %s object %s: %v", worker, obj, resp.Status)
		}
		repMu.Lock()
		report.Records += resp.Records
		report.Bytes += resp.Bytes
		repMu.Unlock()
	}
	return nil
}
