// Package recovery implements the management node's processing-node
// recovery (§4.4.1). Failures are detected by an eventually perfect,
// timeout-based failure detector. When a PN is declared failed, a recovery
// process discovers its active transactions by iterating the transaction
// log backwards from the highest tid to the lowest active version number
// (which acts as a rolling checkpoint), fences each uncommitted entry, and
// reverts the write set: the version with number tid is removed from every
// record. The management node ensures only one recovery process runs at a
// time; a single process can handle multiple node failures.
package recovery

import (
	"time"

	"tell/internal/commitmgr"
	"tell/internal/core"
	"tell/internal/det"
	"tell/internal/env"
	"tell/internal/resil"
	"tell/internal/sanitize"
	"tell/internal/store"
	"tell/internal/transport"
	"tell/internal/txlog"
	"tell/internal/wire"
)

// Manager is the management node responsible for processing nodes.
type Manager struct {
	envr env.Full
	node env.Node
	tr   transport.Transport
	sc   *store.Client
	cm   *commitmgr.Client
	log  *txlog.Log

	// PingInterval and FailAfter tune the failure detector.
	PingInterval time.Duration
	FailAfter    int

	// retr pins probes to the single-attempt ping policy: a transport-level
	// retry inside one probe would count several misses per window and
	// destroy the FailAfter calibration.
	retr *resil.Retrier

	mu      sanitize.Mutex
	pns     map[string]bool // addr → declared dead
	misses  map[string]int
	conns   map[string]transport.Conn
	stopped bool
	// recovering serializes recovery processes ("the management node
	// ensures that only one recovery process is running at a time").
	recovering bool
	pendingQ   []string

	recoveries  int
	rolledBack  int
	OnRecovered func(pn string, rolledBack int)
}

// NewManager creates a PN management node.
func NewManager(envr env.Full, node env.Node, tr transport.Transport, sc *store.Client, cm *commitmgr.Client) *Manager {
	m := &Manager{
		envr:         envr,
		node:         node,
		tr:           tr,
		sc:           sc,
		cm:           cm,
		log:          txlog.New(sc),
		retr:         resil.NewRetrier(),
		PingInterval: 5 * time.Millisecond,
		FailAfter:    3,
		pns:          make(map[string]bool),
		misses:       make(map[string]int),
		conns:        make(map[string]transport.Conn),
	}
	m.mu.SetName("recovery.Manager.mu")
	return m
}

// Watch registers a PN address with the failure detector.
func (m *Manager) Watch(addr string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.pns[addr] = false
}

// Recoveries returns how many PN recoveries completed.
func (m *Manager) Recoveries() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.recoveries
}

// RolledBack returns the total number of transactions reverted.
func (m *Manager) RolledBack() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.rolledBack
}

// Start launches the failure detector loop.
func (m *Manager) Start() {
	m.node.Go("pn-failure-detector", m.monitor)
}

// Stop halts the failure detector.
func (m *Manager) Stop() {
	m.mu.Lock()
	m.stopped = true
	m.mu.Unlock()
}

func (m *Manager) monitor(ctx env.Ctx) {
	for {
		m.mu.Lock()
		if m.stopped {
			m.mu.Unlock()
			return
		}
		// Ping in sorted address order; the probe sequence is
		// simulation-visible (each ping is an RPC).
		var targets []string
		for _, addr := range det.Keys(m.pns) {
			if !m.pns[addr] {
				targets = append(targets, addr)
			}
		}
		m.mu.Unlock()

		for _, addr := range targets {
			alive := m.ping(ctx, addr)
			m.mu.Lock()
			if alive {
				m.misses[addr] = 0
				m.mu.Unlock()
				continue
			}
			if m.pns[addr] {
				// Already declared dead while this round was in flight. An
				// endpoint the chaos layer has both partitioned and crashed
				// fails for two reasons, but it is one failure: never let
				// a late probe count a second miss or queue a second
				// recovery.
				m.mu.Unlock()
				continue
			}
			m.misses[addr]++
			failed := m.misses[addr] >= m.FailAfter
			m.mu.Unlock()
			if failed {
				m.declareFailed(ctx, addr)
			}
		}
		ctx.Sleep(m.PingInterval)
	}
}

func (m *Manager) ping(ctx env.Ctx, addr string) bool {
	conn := m.conn(addr)
	if conn == nil {
		return false
	}
	// ClassPing allows exactly one attempt: one probe, one verdict. (The
	// Do wrapper still brackets the probe so its outcome enters the
	// deterministic retry schedule hash with the rest of the RPC paths.)
	alive := false
	_ = m.retr.Do(ctx, resil.ClassPing, addr, func(int) error {
		resp, err := conn.RoundTrip(ctx, []byte{byte(wire.KindPing)})
		if err != nil {
			return err
		}
		alive = wire.PeekKind(resp) == wire.KindPong
		return nil
	})
	return alive
}

func (m *Manager) conn(addr string) transport.Conn {
	m.mu.Lock()
	if c, ok := m.conns[addr]; ok {
		m.mu.Unlock()
		return c
	}
	m.mu.Unlock()
	// Dial outside the lock: probes of other nodes must not wait on it.
	c, err := m.tr.Dial(m.node, addr)
	if err != nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if exist, ok := m.conns[addr]; ok {
		// Lost a dial race; keep the first connection.
		//lint:allow errdiscard closing a redundant just-dialed connection nothing was sent on
		c.Close()
		return exist
	}
	m.conns[addr] = c
	return c
}

// declareFailed queues the node for recovery; one recovery process handles
// the queue (and can therefore absorb multiple concurrent failures). It is
// idempotent: a node can only be declared dead once per Watch, no matter how
// many overlapping fault conditions (crash, partition) made probes fail.
func (m *Manager) declareFailed(ctx env.Ctx, addr string) {
	m.mu.Lock()
	if m.pns[addr] {
		m.mu.Unlock()
		return
	}
	m.pns[addr] = true
	m.misses[addr] = 0 // a future re-Watch starts from a clean counter
	m.pendingQ = append(m.pendingQ, addr)
	launch := !m.recovering
	m.recovering = true
	m.mu.Unlock()
	if launch {
		m.node.Go("recovery", m.recoveryProcess)
	}
}

func (m *Manager) recoveryProcess(ctx env.Ctx) {
	for {
		m.mu.Lock()
		if len(m.pendingQ) == 0 {
			m.recovering = false
			m.mu.Unlock()
			return
		}
		addr := m.pendingQ[0]
		m.pendingQ = m.pendingQ[1:]
		m.mu.Unlock()

		n, err := m.Recover(ctx, addr)
		m.mu.Lock()
		if err == nil {
			m.recoveries++
			m.rolledBack += n
		}
		cb := m.OnRecovered
		m.mu.Unlock()
		if cb != nil && err == nil {
			cb(addr, n)
		}
	}
}

// Recover rolls back every active (uncommitted) transaction of the failed
// node pnID and returns how many were reverted. It is exported so tests and
// operators can trigger recovery directly.
func (m *Manager) Recover(ctx env.Ctx, pnID string) (int, error) {
	// Discover the scan bounds: the highest tid comes from the commit
	// manager (we start and immediately finish a probe transaction), and
	// the lav acts as the rolling checkpoint.
	probe, err := m.cm.Start(ctx)
	if err != nil {
		return 0, err
	}
	highest := probe.TID
	lav := probe.Lav
	m.cm.Aborted(ctx, probe.TID)

	var victims []*txlog.Entry
	err = m.log.ScanBackward(ctx, lav, highest, func(e *txlog.Entry) bool {
		if e.PN == pnID && !e.Committed && !e.Aborted {
			victims = append(victims, e)
		}
		return true
	})
	if err != nil {
		return 0, err
	}
	rolled := 0
	for _, e := range victims {
		// Fence first: a falsely-suspected PN that is still alive can no
		// longer set the commit flag once the entry is marked aborted.
		fenced, committed, err := m.log.MarkAborted(ctx, e.TID)
		if err != nil {
			return rolled, err
		}
		if committed || !fenced {
			continue // it committed after we scanned: leave it alone
		}
		for _, key := range e.WriteSet {
			if err := core.RollbackVersion(ctx, m.sc, key, e.TID); err != nil {
				return rolled, err
			}
		}
		m.cm.Aborted(ctx, e.TID)
		rolled++
	}
	return rolled, nil
}
