package recovery_test

import (
	"fmt"
	"testing"
	"time"

	"tell/internal/commitmgr"
	"tell/internal/core"
	"tell/internal/env"
	"tell/internal/recovery"
	"tell/internal/relational"
	"tell/internal/sim"
	"tell/internal/store"
	"tell/internal/testutil"
	"tell/internal/transport"
	"tell/internal/txlog"
)

type rig struct {
	k       *sim.Kernel
	envr    env.Full
	net     *transport.SimNet
	cluster *store.Cluster
	pns     []*core.PN
	mgr     *recovery.Manager
	driver  env.Node
}

func newRig(t *testing.T, nPNs int) *rig {
	t.Helper()
	k := sim.NewKernel(testutil.Seed(t, 31))
	envr := env.NewSim(k)
	net := transport.NewSimNet(k, transport.InfiniBand())
	cl, err := store.NewCluster(envr, net, store.ClusterConfig{NumNodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	cmNode := envr.NewNode("cm0", 2)
	cm := commitmgr.New("cm0", "cm0", envr, cmNode, net, cl.NewClient(cmNode))
	if err := cm.Start(); err != nil {
		t.Fatal(err)
	}
	r := &rig{k: k, envr: envr, net: net, cluster: cl}
	for i := 0; i < nPNs; i++ {
		name := fmt.Sprintf("pn%d", i)
		node := envr.NewNode(name, 4)
		pn := core.New(core.Config{ID: name}, envr, node, net,
			cl.NewClient(node), commitmgr.NewClient(envr, node, net, []string{"cm0"}))
		if err := pn.Serve(net); err != nil {
			t.Fatal(err)
		}
		r.pns = append(r.pns, pn)
	}
	mgmtNode := envr.NewNode("pn-mgmt", 2)
	r.mgr = recovery.NewManager(envr, mgmtNode, net, cl.NewClient(mgmtNode),
		commitmgr.NewClient(envr, mgmtNode, net, []string{"cm0"}))
	for i := 0; i < nPNs; i++ {
		r.mgr.Watch(fmt.Sprintf("pn%d", i))
	}
	r.driver = envr.NewNode("driver", 2)
	return r
}

func (r *rig) run(t *testing.T, fn func(ctx env.Ctx)) {
	t.Helper()
	done := false
	r.driver.Go("test", func(ctx env.Ctx) {
		defer r.k.Stop()
		fn(ctx)
		done = true
	})
	if err := r.k.RunUntil(sim.Time(3000 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("test activity did not finish")
	}
	r.k.Shutdown()
}

func schema() *relational.TableSchema {
	return &relational.TableSchema{
		Name:   "kv",
		Cols:   []relational.Column{{Name: "k", Type: relational.TInt64}, {Name: "v", Type: relational.TInt64}},
		PKCols: []int{0},
	}
}

// crashMidCommit simulates a PN that dies with partially applied updates:
// it writes the log entry and applies record changes but never sets the
// commit flag — exactly the state recovery must clean up (§4.4.1).
func crashMidCommit(t *testing.T, ctx env.Ctx, pn *core.PN, table *core.TableInfo, rid uint64, tidOut *uint64) {
	t.Helper()
	txn, err := pn.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	*tidOut = txn.TID()
	// Reproduce the commit prefix by hand: log entry + applied version.
	key := relational.RecordKey(table.Schema.ID, rid)
	log := txlog.New(pn.Store())
	if err := log.Append(ctx, &txlog.Entry{TID: txn.TID(), PN: pn.ID(), WriteSet: [][]byte{key}}); err != nil {
		t.Fatal(err)
	}
	raw, stamp, err := pn.Store().Get(ctx, key)
	if err != nil {
		t.Fatal(err)
	}
	rec := decodeRecord(t, raw)
	rec = rec.WithVersion(txn.TID(), false, encodeRow(t, table, relational.Row{relational.I64(1), relational.I64(666)}))
	if _, err := pn.Store().CondPut(ctx, key, rec.Encode(), stamp); err != nil {
		t.Fatal(err)
	}
	// ... and then the PN "crashes": no index update, no commit flag, no
	// commit-manager notification.
}

func TestRecoveryRollsBackUncommitted(t *testing.T) {
	r := newRig(t, 2)
	r.run(t, func(ctx env.Ctx) {
		pn0, pn1 := r.pns[0], r.pns[1]
		table, _ := pn0.Catalog().CreateTable(ctx, schema())
		setup, _ := pn0.Begin(ctx)
		rid, _ := setup.Insert(ctx, table, relational.Row{relational.I64(1), relational.I64(42)})
		if err := setup.Commit(ctx); err != nil {
			t.Fatal(err)
		}
		var deadTid uint64
		crashMidCommit(t, ctx, pn1, table, rid, &deadTid)

		// The partially applied version is present in the raw record.
		raw, _, _ := pn0.Store().Get(ctx, relational.RecordKey(table.Schema.ID, rid))
		if n := len(decodeRecord(t, raw).Versions); n != 2 {
			t.Fatalf("expected 2 versions pre-recovery, got %d", n)
		}

		// Run recovery for pn1 directly.
		n, err := r.mgr.Recover(ctx, "pn1")
		if err != nil {
			t.Fatal(err)
		}
		if n != 1 {
			t.Fatalf("rolled back %d transactions, want 1", n)
		}
		raw, _, _ = pn0.Store().Get(ctx, relational.RecordKey(table.Schema.ID, rid))
		rec := decodeRecord(t, raw)
		if len(rec.Versions) != 1 {
			t.Fatalf("version not reverted: %v", rec)
		}
		// Data is intact for new transactions.
		check, _ := pn0.Begin(ctx)
		row, found, _ := check.Read(ctx, table, rid)
		if !found || row[1].I != 42 {
			t.Fatalf("post-recovery read: %v %v", row, found)
		}
		check.Commit(ctx)
		// And the fence prevents a late commit flag.
		log := txlog.New(pn0.Store())
		if err := log.MarkCommitted(ctx, deadTid); err != txlog.ErrFenced {
			t.Fatalf("expected fence, got %v", err)
		}
	})
}

func TestRecoveryLeavesCommittedAlone(t *testing.T) {
	r := newRig(t, 2)
	r.run(t, func(ctx env.Ctx) {
		pn0 := r.pns[0]
		table, _ := pn0.Catalog().CreateTable(ctx, schema())
		setup, _ := pn0.Begin(ctx)
		rid, _ := setup.Insert(ctx, table, relational.Row{relational.I64(1), relational.I64(1)})
		setup.Commit(ctx)
		// A properly committed transaction from pn1.
		t1, _ := r.pns[1].Catalog().OpenTable(ctx, "kv")
		txn, _ := r.pns[1].Begin(ctx)
		txn.Update(ctx, t1, rid, relational.Row{relational.I64(1), relational.I64(2)})
		if err := txn.Commit(ctx); err != nil {
			t.Fatal(err)
		}
		n, err := r.mgr.Recover(ctx, "pn1")
		if err != nil {
			t.Fatal(err)
		}
		if n != 0 {
			t.Fatalf("recovery rolled back %d committed transactions", n)
		}
		check, _ := pn0.Begin(ctx)
		row, _, _ := check.Read(ctx, table, rid)
		if row[1].I != 2 {
			t.Fatalf("committed data lost: %v", row)
		}
		check.Commit(ctx)
	})
}

func TestFailureDetectorTriggersRecovery(t *testing.T) {
	r := newRig(t, 2)
	r.mgr.Start()
	recovered := ""
	r.mgr.OnRecovered = func(pn string, n int) { recovered = pn }
	r.run(t, func(ctx env.Ctx) {
		pn0, pn1 := r.pns[0], r.pns[1]
		table, _ := pn0.Catalog().CreateTable(ctx, schema())
		setup, _ := pn0.Begin(ctx)
		rid, _ := setup.Insert(ctx, table, relational.Row{relational.I64(1), relational.I64(7)})
		setup.Commit(ctx)
		var deadTid uint64
		crashMidCommit(t, ctx, pn1, table, rid, &deadTid)
		// Kill pn1's endpoint; the failure detector must notice and
		// recover within a few ping intervals.
		r.net.SetDown("pn1", true)
		ctx.Sleep(500 * time.Millisecond)
		if recovered != "pn1" {
			t.Fatalf("recovered = %q, want pn1", recovered)
		}
		if r.mgr.Recoveries() != 1 || r.mgr.RolledBack() != 1 {
			t.Fatalf("recoveries=%d rolledBack=%d", r.mgr.Recoveries(), r.mgr.RolledBack())
		}
		check, _ := pn0.Begin(ctx)
		row, found, _ := check.Read(ctx, table, rid)
		if !found || row[1].I != 7 {
			t.Fatalf("post-recovery: %v %v", row, found)
		}
		check.Commit(ctx)
	})
}

// TestCrashDuringPartitionDeclaredDeadOnce is the regression test for the
// failure detector double-count: an endpoint that is partitioned away from
// the management node AND crashed inside the same detection window fails its
// probes for two reasons, but it is one failure — the detector must declare
// it dead (and run recovery) exactly once, even after the partition heals
// while the node stays down.
func TestCrashDuringPartitionDeclaredDeadOnce(t *testing.T) {
	r := newRig(t, 2)
	r.mgr.Start()
	var recoveredCount int
	r.mgr.OnRecovered = func(pn string, n int) {
		if pn == "pn1" {
			recoveredCount++
		}
	}
	r.run(t, func(ctx env.Ctx) {
		pn0 := r.pns[0]
		table, _ := pn0.Catalog().CreateTable(ctx, schema())
		setup, _ := pn0.Begin(ctx)
		rid, _ := setup.Insert(ctx, table, relational.Row{relational.I64(1), relational.I64(7)})
		setup.Commit(ctx)
		var deadTid uint64
		crashMidCommit(t, ctx, r.pns[1], table, rid, &deadTid)

		// Partition pn1 away from the management node, then crash it while
		// the partition is still in force: both conditions overlap the same
		// detection window.
		r.net.DropFn = func(src, dst string) bool {
			return (src == "pn-mgmt" && dst == "pn1") || (src == "pn1" && dst == "pn-mgmt")
		}
		ctx.Sleep(20 * time.Millisecond) // a few missed pings into the window
		r.net.SetDown("pn1", true)
		ctx.Sleep(500 * time.Millisecond)
		// Heal the partition with the node still crashed: probes keep
		// failing, but the verdict must not be re-issued.
		r.net.DropFn = nil
		ctx.Sleep(500 * time.Millisecond)

		if recoveredCount != 1 {
			t.Fatalf("pn1 recovered %d times, want exactly 1", recoveredCount)
		}
		if r.mgr.Recoveries() != 1 {
			t.Fatalf("Recoveries = %d, want 1", r.mgr.Recoveries())
		}
	})
}

func TestRecoveryHandlesMultipleFailures(t *testing.T) {
	r := newRig(t, 3)
	r.mgr.Start()
	r.run(t, func(ctx env.Ctx) {
		pn0 := r.pns[0]
		table, _ := pn0.Catalog().CreateTable(ctx, schema())
		setup, _ := pn0.Begin(ctx)
		rid1, _ := setup.Insert(ctx, table, relational.Row{relational.I64(1), relational.I64(1)})
		rid2, _ := setup.Insert(ctx, table, relational.Row{relational.I64(2), relational.I64(2)})
		setup.Commit(ctx)
		var tid1, tid2 uint64
		t1, _ := r.pns[1].Catalog().OpenTable(ctx, "kv")
		t2, _ := r.pns[2].Catalog().OpenTable(ctx, "kv")
		crashMidCommit(t, ctx, r.pns[1], t1, rid1, &tid1)
		crashMidCommit(t, ctx, r.pns[2], t2, rid2, &tid2)
		r.net.SetDown("pn1", true)
		r.net.SetDown("pn2", true)
		ctx.Sleep(time.Second)
		if r.mgr.Recoveries() != 2 || r.mgr.RolledBack() != 2 {
			t.Fatalf("recoveries=%d rolledBack=%d", r.mgr.Recoveries(), r.mgr.RolledBack())
		}
		check, _ := pn0.Begin(ctx)
		for i, rid := range []uint64{rid1, rid2} {
			row, found, _ := check.Read(ctx, table, rid)
			if !found || row[1].I != int64(i+1) {
				t.Fatalf("rid%d: %v %v", i+1, row, found)
			}
		}
		check.Commit(ctx)
	})
}
