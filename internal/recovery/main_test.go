package recovery_test

import (
	"testing"

	"tell/internal/testutil"
)

// TestMain fails the package on leaked goroutines and (under
// -tags telldebug) on recorded lock-order inversions.
func TestMain(m *testing.M) { testutil.Main(m) }
