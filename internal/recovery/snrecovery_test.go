package recovery_test

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"tell/internal/durable"
	"tell/internal/env"
	"tell/internal/recovery"
	"tell/internal/sim"
	"tell/internal/store"
	"tell/internal/testutil"
	"tell/internal/transport"
)

// TestScatterGatherRecovery kills a durable RF1 node and checks the manager
// + SNRecoverer pipeline rebuilds its partitions on the survivors with zero
// acknowledged-write loss.
func TestScatterGatherRecovery(t *testing.T) {
	seed := testutil.Seed(t, 42)
	k := sim.NewKernel(seed)
	defer k.Shutdown()
	envr := env.NewSim(k)
	net := transport.NewSimNet(k, transport.InfiniBand())
	be := durable.NewMem()
	cl, err := store.NewCluster(envr, net, store.ClusterConfig{
		NumNodes:          4,
		PartitionsPerNode: 2,
		ReplicationFactor: 1,
		// Small segments and chunks: the dead node's state spreads over
		// many objects, so all three survivors get recovery work.
		Durable: &store.DurOptions{Backend: be, SegmentBytes: 512, ChunkBytes: 512},
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := recovery.NewSNRecoverer(envr, envr.NewNode("rec0", 2), net, be)
	var reported recovery.RecoveryReport
	rec.OnRecovered = func(r recovery.RecoveryReport) { reported = r }
	cl.Manager.Recoverer = rec

	recovered := envr.NewFuture()
	cl.Manager.OnFailover = func(addr string) { recovered.Set(addr) }

	pn := envr.NewNode("pn0", 4)
	client := cl.NewClient(pn)
	type kv struct{ key, val []byte }
	var acked []kv
	ok := false
	pn.Go("driver", func(ctx env.Ctx) {
		defer k.Stop()
		val := bytes.Repeat([]byte("v"), 48)
		for i := 0; i < 200; i++ {
			key := []byte(fmt.Sprintf("key-%04d", i))
			if _, err := client.Put(ctx, key, val); err != nil {
				t.Errorf("put %d: %v", i, err)
				return
			}
			acked = append(acked, kv{key, val})
		}
		// A mid-stream checkpoint on the victim exercises chunk+segment
		// recovery, not just raw log replay.
		if err := cl.Node("sn0").Checkpoint(ctx); err != nil {
			t.Errorf("checkpoint: %v", err)
			return
		}
		for i := 200; i < 300; i++ {
			key := []byte(fmt.Sprintf("key-%04d", i))
			if _, err := client.Put(ctx, key, val); err != nil {
				t.Errorf("put %d: %v", i, err)
				return
			}
			acked = append(acked, kv{key, val})
		}

		net.SetDown("sn0", true)
		if _, fin := recovered.GetTimeout(ctx, 5*time.Second); !fin {
			t.Error("failover+recovery never completed")
			return
		}
		// Every acknowledged write must be readable from the recovered
		// cluster — scatter-gather replay lost nothing.
		reader := cl.NewClient(pn)
		for _, w := range acked {
			got, _, err := reader.Get(ctx, w.key)
			if err != nil || !bytes.Equal(got, w.val) {
				t.Errorf("lost acknowledged write %q after recovery: %q %v", w.key, got, err)
				return
			}
		}
		ok = true
	})
	if err := k.RunUntil(sim.Time(600 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if !ok {
		return
	}
	if cl.Manager.Recoveries() != 2 {
		t.Errorf("recovered %d partitions, want 2", cl.Manager.Recoveries())
	}
	if reported.Dead != "sn0" || reported.Records == 0 || reported.Survivors != 3 {
		t.Errorf("unexpected recovery report: %+v", reported)
	}
	if reported.Objects < 3 {
		t.Errorf("expected several recovery objects (small segments), got %d", reported.Objects)
	}
}

// TestRecoverSNNoSurvivors pins the error path.
func TestRecoverSNNoSurvivors(t *testing.T) {
	seed := testutil.Seed(t, 43)
	k := sim.NewKernel(seed)
	defer k.Shutdown()
	envr := env.NewSim(k)
	net := transport.NewSimNet(k, transport.InfiniBand())
	rec := recovery.NewSNRecoverer(envr, envr.NewNode("rec0", 2), net, durable.NewMem())
	n := envr.NewNode("t0", 1)
	n.Go("test", func(ctx env.Ctx) {
		defer k.Stop()
		if _, err := rec.RecoverSN(ctx, "sn9", []uint64{1}, nil); err == nil {
			t.Error("recovery with no survivors must fail")
		}
	})
	if err := k.RunUntil(sim.Time(10 * time.Second)); err != nil {
		t.Fatal(err)
	}
}
