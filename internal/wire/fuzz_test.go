package wire

import (
	"bytes"
	"testing"
)

// FuzzRoundTrip feeds arbitrary bytes to every message decoder. Corrupt
// input must fail cleanly (no panic); input that decodes must reach an
// encode fixpoint: re-encoding the decoded message, decoding that, and
// encoding again must reproduce the same bytes. The fixpoint is checked on
// the second generation because the original bytes may contain
// non-canonical varints the encoder is free to normalize.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add((&StoreRequest{Epoch: 7, Ops: []Op{
		{Code: OpGet, Key: []byte("k")},
		{Code: OpPut, Key: []byte("k"), Val: []byte("v")},
		{Code: OpCondPut, Key: []byte("k"), Val: []byte("v"), Stamp: 9},
		{Code: OpDelete, Key: []byte("k"), Stamp: 3},
		{Code: OpCounterAdd, Key: []byte("c"), Delta: -4},
		{Code: OpScan, Key: []byte("a"), EndKey: []byte("z"), Limit: 10, Reverse: true},
		{Code: OpScanFiltered, Key: []byte("a"), EndKey: []byte("z"), Limit: 5, Val: []byte("f")},
	}}).Encode())
	f.Add((&StoreResponse{Status: StatusOK, Epoch: 3, Results: []Result{
		{Status: StatusOK, Val: []byte("v"), Stamp: 8, Count: -2,
			Pairs: []Pair{{Key: []byte("k"), Val: []byte("v"), Stamp: 1}}},
		{Status: StatusConflict, Stamp: 12},
	}}).Encode())
	f.Add((&ReplicateRequest{PartitionID: 2, Mutations: []Mutation{
		{Key: []byte("k"), Val: []byte("v"), Stamp: 5},
		{Key: []byte("c"), Counter: true, CtrVal: -1, Stamp: 6},
		{Key: []byte("d"), Deleted: true, Stamp: 7},
	}}).Encode())
	f.Add((&ReplicateResponse{Status: StatusOK}).Encode())
	f.Add((&RecoverRequest{Dead: "sn1",
		Objects: []string{"sn1/wal/seg-0000000003", "sn1/ckpt/g0000000001/chunk-000000"},
		Assign:  []RecoverAssign{{Pid: 4, Addr: "sn0"}, {Pid: 9, Addr: "sn2"}},
	}).Encode())
	f.Add((&RecoverResponse{Status: StatusOK, Records: 120, Bytes: 4096}).Encode())
	f.Add((&StatsSnapshot{Node: "sn0", UptimeNs: 12345,
		Classes:  []StatsClass{{Name: "store", Count: 9, MeanNs: 1200, P99Ns: 5000, MaxNs: 9000}},
		Counters: []StatsCounter{{Name: "sn0/gets", Value: 42}, {Name: "sn0/writes", Value: -1}},
	}).Encode())
	// A few corrupt variants: truncated, kind-swapped, bit-flipped.
	f.Add([]byte{byte(KindStoreReq)})
	f.Add([]byte{byte(KindStoreResp), 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{byte(KindReplicate), 0x01, 0x80})

	f.Fuzz(func(t *testing.T, data []byte) {
		if m, err := DecodeStoreRequest(data); err == nil {
			e1 := m.Encode()
			m2, err := DecodeStoreRequest(e1)
			if err != nil {
				t.Fatalf("re-decode StoreRequest: %v", err)
			}
			if e2 := m2.Encode(); !bytes.Equal(e1, e2) {
				t.Fatalf("StoreRequest fixpoint: % x != % x", e1, e2)
			}
		}
		if m, err := DecodeStoreResponse(data); err == nil {
			e1 := m.Encode()
			m2, err := DecodeStoreResponse(e1)
			if err != nil {
				t.Fatalf("re-decode StoreResponse: %v", err)
			}
			if e2 := m2.Encode(); !bytes.Equal(e1, e2) {
				t.Fatalf("StoreResponse fixpoint: % x != % x", e1, e2)
			}
		}
		if m, err := DecodeReplicateRequest(data); err == nil {
			e1 := m.Encode()
			m2, err := DecodeReplicateRequest(e1)
			if err != nil {
				t.Fatalf("re-decode ReplicateRequest: %v", err)
			}
			if e2 := m2.Encode(); !bytes.Equal(e1, e2) {
				t.Fatalf("ReplicateRequest fixpoint: % x != % x", e1, e2)
			}
		}
		if m, err := DecodeReplicateResponse(data); err == nil {
			e1 := m.Encode()
			m2, err := DecodeReplicateResponse(e1)
			if err != nil {
				t.Fatalf("re-decode ReplicateResponse: %v", err)
			}
			if e2 := m2.Encode(); !bytes.Equal(e1, e2) {
				t.Fatalf("ReplicateResponse fixpoint: % x != % x", e1, e2)
			}
		}
		if m, err := DecodeRecoverRequest(data); err == nil {
			e1 := m.Encode()
			m2, err := DecodeRecoverRequest(e1)
			if err != nil {
				t.Fatalf("re-decode RecoverRequest: %v", err)
			}
			if e2 := m2.Encode(); !bytes.Equal(e1, e2) {
				t.Fatalf("RecoverRequest fixpoint: % x != % x", e1, e2)
			}
		}
		if m, err := DecodeRecoverResponse(data); err == nil {
			e1 := m.Encode()
			m2, err := DecodeRecoverResponse(e1)
			if err != nil {
				t.Fatalf("re-decode RecoverResponse: %v", err)
			}
			if e2 := m2.Encode(); !bytes.Equal(e1, e2) {
				t.Fatalf("RecoverResponse fixpoint: % x != % x", e1, e2)
			}
		}
		if m, err := DecodeStatsSnapshot(data); err == nil {
			e1 := m.Encode()
			m2, err := DecodeStatsSnapshot(e1)
			if err != nil {
				t.Fatalf("re-decode StatsSnapshot: %v", err)
			}
			if e2 := m2.Encode(); !bytes.Equal(e1, e2) {
				t.Fatalf("StatsSnapshot fixpoint: % x != % x", e1, e2)
			}
		}
	})
}
