package wire

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestNoLintSuppressions asserts the wire package carries no tellvet
// suppressions: every message type must genuinely satisfy the wirecomplete
// analyzer (all exported fields cross the wire) rather than waive it. The
// one historical waiver (Result.Retried, a client-side annotation) was
// removed by unexporting the field; this test keeps the package clean.
func TestNoLintSuppressions(t *testing.T) {
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		src, err := os.ReadFile(filepath.Clean(e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if i := strings.Index(string(src), "lint:al"+"low"); i >= 0 {
			line := 1 + strings.Count(string(src[:i]), "\n")
			t.Errorf("%s:%d: internal/wire must stay free of lint suppressions", e.Name(), line)
		}
	}
}
