package wire

import "fmt"

// Kind identifies the protocol family of a message; it is the first byte of
// every encoded payload.
type Kind byte

const (
	KindInvalid Kind = iota
	KindStoreReq
	KindStoreResp
	KindReplicate
	KindReplicateResp
	KindCMReq
	KindCMResp
	KindMetaReq
	KindMetaResp
	KindPing
	KindPong
	KindStatsReq
	KindStatsResp
	KindRecoverReq
	KindRecoverResp
	// KindStatsExtReq / KindStatsExtResp carry the extended telemetry
	// protocol: windowed series digests, per-range heat and flight-recorder
	// state (see statsext.go). Appended after the recovery kinds so every
	// earlier kind keeps its byte value on the wire.
	KindStatsExtReq
	KindStatsExtResp
)

// PeekKind returns the kind byte of an encoded message.
func PeekKind(b []byte) Kind {
	if len(b) == 0 {
		return KindInvalid
	}
	return Kind(b[0])
}

// OpCode is a storage operation type.
type OpCode byte

const (
	OpGet OpCode = iota + 1
	OpPut
	OpCondPut
	OpDelete
	OpCounterAdd
	OpScan
	// OpScanFiltered is the push-down scan (§5.2): the storage node
	// evaluates a selection predicate and projection against the visible
	// version of each record and returns only matching, projected rows.
	// The spec (schema, snapshot, predicate, projection) travels in Val.
	OpScanFiltered
)

func (o OpCode) String() string {
	switch o {
	case OpGet:
		return "Get"
	case OpPut:
		return "Put"
	case OpCondPut:
		return "CondPut"
	case OpDelete:
		return "Delete"
	case OpCounterAdd:
		return "CounterAdd"
	case OpScan:
		return "Scan"
	case OpScanFiltered:
		return "ScanFiltered"
	}
	return fmt.Sprintf("OpCode(%d)", byte(o))
}

// IsWrite reports whether the operation mutates storage state.
func (o OpCode) IsWrite() bool {
	switch o {
	case OpPut, OpCondPut, OpDelete, OpCounterAdd:
		return true
	}
	return false
}

// Status is the outcome of an operation or request.
type Status byte

const (
	StatusOK Status = iota + 1
	// StatusConflict: a conditional operation failed because the cell's
	// stamp did not match — the LL/SC store-conditional failed.
	StatusConflict
	StatusNotFound
	// StatusWrongPartition: the contacted node does not own the key; the
	// client must refresh its partition map.
	StatusWrongPartition
	StatusUnavailable
	StatusError
	// StatusOverload: the server's admission gate shed the request before
	// execution (bounded inflight + queue deadline, see internal/resil).
	// Always retryable — the request was never run.
	StatusOverload
	// StatusStaleMap: the operation targeted a range the contacted node has
	// fenced for live migration (or no longer owns after a cutover the
	// client has not seen). The write was NOT executed. Always retryable:
	// the client must install a newer partition map (the response usually
	// piggybacks one) and re-route. Appended after StatusOverload so every
	// earlier status keeps its byte value on the wire.
	StatusStaleMap
)

func (s Status) String() string {
	switch s {
	case StatusOK:
		return "OK"
	case StatusConflict:
		return "Conflict"
	case StatusNotFound:
		return "NotFound"
	case StatusWrongPartition:
		return "WrongPartition"
	case StatusUnavailable:
		return "Unavailable"
	case StatusError:
		return "Error"
	case StatusOverload:
		return "Overload"
	case StatusStaleMap:
		return "StaleMap"
	}
	return fmt.Sprintf("Status(%d)", byte(s))
}

// Op is one storage operation. Which fields are meaningful depends on Code:
//
//	Get:        Key, Replica
//	Put:        Key, Val, Seq
//	CondPut:    Key, Val, Stamp (0 = key must not exist: an insert), Seq
//	Delete:     Key, Stamp (0 = unconditional), Seq
//	CounterAdd: Key, Delta, Seq
//	Scan:       Key (inclusive low), EndKey (exclusive high), Limit, Reverse
type Op struct {
	Code    OpCode
	Key     []byte
	Val     []byte
	Stamp   uint64
	Delta   int64
	EndKey  []byte
	Limit   uint32
	Reverse bool
	// Seq is the idempotency token of a write op: together with the
	// request's Client it identifies the op across retried and duplicated
	// deliveries, letting the node dedup and replay the cached Result
	// (exactly-once execution, see internal/resil). 0 = no token.
	Seq uint64
	// Replica marks a Get the client deliberately routed to a replica of
	// the key's partition because the master's circuit breaker is open.
	// The serving node answers from its replica copy instead of
	// redirecting with StatusWrongPartition.
	Replica bool
}

// Pair is one key-value result of a scan.
type Pair struct {
	Key   []byte
	Val   []byte
	Stamp uint64
}

// Result is the outcome of one Op.
type Result struct {
	Status Status
	Val    []byte // Get: current value
	Stamp  uint64 // Get/Put/CondPut: cell stamp after the operation
	Count  int64  // CounterAdd: counter value after the add
	Pairs  []Pair // Scan
	// retried is a client-side annotation (never serialized): the result
	// came from a retry, so a previous attempt may have been applied and
	// its response lost. Conditional writes reporting a conflict here are
	// ambiguous and must be read back. Unexported so the wirecomplete
	// analyzer can prove every exported field crosses the wire.
	retried bool
}

// MarkRetried flags the result as coming from a retried request.
func (r *Result) MarkRetried() { r.retried = true }

// WasRetried reports whether the result came from a retried request, making
// a Conflict status ambiguous (the first attempt may have been applied).
func (r *Result) WasRetried() bool { return r.retried }

// StoreRequest is a batch of operations addressed to one storage node. The
// paper's aggressive batching (§5.1) means a request routinely carries
// operations from several transactions.
type StoreRequest struct {
	Epoch uint64 // partition-map epoch known to the client
	// Client identifies the sending client for idempotency-token dedup
	// (paired with each write Op's Seq). Empty = no dedup.
	Client string
	Ops    []Op
}

// StoreResponse carries one Result per request Op, in order. If Status is
// not OK the results may be empty (for example StatusWrongPartition, where
// Epoch carries the node's newer partition-map epoch).
type StoreResponse struct {
	Status  Status
	Epoch   uint64
	Results []Result
	// Map optionally piggybacks the node's full encoded partition map
	// (PartitionMap.Encode bytes) when the node knows the client's map is
	// stale: the request's Epoch lagged the node's, or an op hit a range
	// fenced for migration (StatusStaleMap). Long-lived clients install it
	// and converge without a management-node round trip. Empty = absent.
	Map []byte
}

// Encode serializes the request. The buffer comes from the encode pool;
// hand it to PutBuf when its bytes are dead to close the loop (optional —
// see pool.go for the ownership rules).
func (m *StoreRequest) Encode() []byte {
	w := GetWriter()
	w.Byte(byte(KindStoreReq))
	w.Uvarint(m.Epoch)
	w.String(m.Client)
	w.Uvarint(uint64(len(m.Ops)))
	for i := range m.Ops {
		encodeOp(w, &m.Ops[i])
	}
	return w.Finish()
}

func encodeOp(w *Writer, op *Op) {
	w.Byte(byte(op.Code))
	w.BytesN(op.Key)
	switch op.Code {
	case OpGet:
		w.Bool(op.Replica)
	case OpPut:
		w.BytesN(op.Val)
		w.Uvarint(op.Seq)
	case OpCondPut:
		w.BytesN(op.Val)
		w.Uvarint(op.Stamp)
		w.Uvarint(op.Seq)
	case OpDelete:
		w.Uvarint(op.Stamp)
		w.Uvarint(op.Seq)
	case OpCounterAdd:
		w.Varint(op.Delta)
		w.Uvarint(op.Seq)
	case OpScan:
		w.BytesN(op.EndKey)
		w.Uvarint(uint64(op.Limit))
		w.Bool(op.Reverse)
	case OpScanFiltered:
		w.BytesN(op.EndKey)
		w.Uvarint(uint64(op.Limit))
		w.BytesN(op.Val)
	}
}

func decodeOp(r *Reader, op *Op) {
	op.Code = OpCode(r.Byte())
	op.Key = r.BytesN()
	switch op.Code {
	case OpGet:
		op.Replica = r.Bool()
	case OpPut:
		op.Val = r.BytesN()
		op.Seq = r.Uvarint()
	case OpCondPut:
		op.Val = r.BytesN()
		op.Stamp = r.Uvarint()
		op.Seq = r.Uvarint()
	case OpDelete:
		op.Stamp = r.Uvarint()
		op.Seq = r.Uvarint()
	case OpCounterAdd:
		op.Delta = r.Varint()
		op.Seq = r.Uvarint()
	case OpScan:
		op.EndKey = r.BytesN()
		op.Limit = uint32(r.Uvarint())
		op.Reverse = r.Bool()
	case OpScanFiltered:
		op.EndKey = r.BytesN()
		op.Limit = uint32(r.Uvarint())
		op.Val = r.BytesN()
	default:
		if r.err == nil {
			r.err = fmt.Errorf("wire: unknown op code %d", op.Code)
		}
	}
}

// DecodeStoreRequest parses an encoded StoreRequest.
func DecodeStoreRequest(b []byte) (*StoreRequest, error) {
	m := new(StoreRequest)
	if err := m.DecodeFrom(b); err != nil {
		return nil, err
	}
	return m, nil
}

// DecodeFrom parses b into m, reusing m's Ops slice when it has capacity.
// Decoded slices alias b; reuse is only safe once the previous message's
// fields are no longer referenced.
func (m *StoreRequest) DecodeFrom(b []byte) error {
	var r Reader
	r.Reset(b)
	if k := Kind(r.Byte()); k != KindStoreReq {
		return fmt.Errorf("wire: kind %d is not a store request", k)
	}
	m.Epoch = r.Uvarint()
	m.Client = r.String()
	n := r.Count(2)
	if cap(m.Ops) >= n {
		m.Ops = m.Ops[:n]
	} else {
		m.Ops = make([]Op, n)
	}
	for i := range m.Ops {
		m.Ops[i] = Op{}
		decodeOp(&r, &m.Ops[i])
	}
	return r.Close()
}

// EncodeResult appends one Result in its standalone encoding — the same
// layout StoreResponse uses per entry. The dedup window caches write
// results in this form so a replayed response decodes byte-identically to
// the original.
func EncodeResult(w *Writer, res *Result) {
	w.Byte(byte(res.Status))
	w.BytesN(res.Val)
	w.Uvarint(res.Stamp)
	w.Varint(res.Count)
	w.Uvarint(uint64(len(res.Pairs)))
	for _, p := range res.Pairs {
		w.BytesN(p.Key)
		w.BytesN(p.Val)
		w.Uvarint(p.Stamp)
	}
}

// DecodeResult reads one Result written by EncodeResult into res,
// overwriting all fields. Decoded slices alias the reader's buffer.
func DecodeResult(r *Reader, res *Result) {
	*res = Result{}
	res.Status = Status(r.Byte())
	res.Val = r.BytesN()
	res.Stamp = r.Uvarint()
	res.Count = r.Varint()
	np := r.Count(3)
	if np > 0 {
		res.Pairs = make([]Pair, np)
		for j := range res.Pairs {
			res.Pairs[j].Key = r.BytesN()
			res.Pairs[j].Val = r.BytesN()
			res.Pairs[j].Stamp = r.Uvarint()
		}
	}
}

// Encode serializes the response into a pool-backed buffer (see pool.go).
func (m *StoreResponse) Encode() []byte {
	w := GetWriter()
	w.Byte(byte(KindStoreResp))
	w.Byte(byte(m.Status))
	w.Uvarint(m.Epoch)
	w.Uvarint(uint64(len(m.Results)))
	for i := range m.Results {
		EncodeResult(w, &m.Results[i])
	}
	w.BytesN(m.Map)
	return w.Finish()
}

// DecodeStoreResponse parses an encoded StoreResponse.
func DecodeStoreResponse(b []byte) (*StoreResponse, error) {
	m := new(StoreResponse)
	if err := m.DecodeFrom(b); err != nil {
		return nil, err
	}
	return m, nil
}

// DecodeFrom parses b into m, reusing m's Results slice when it has
// capacity. The store client decodes one response per batch round trip into
// a long-lived struct this way, which removes the per-batch Results
// allocation. Decoded slices alias b.
func (m *StoreResponse) DecodeFrom(b []byte) error {
	var r Reader
	r.Reset(b)
	if k := Kind(r.Byte()); k != KindStoreResp {
		return fmt.Errorf("wire: kind %d is not a store response", k)
	}
	m.Status = Status(r.Byte())
	m.Epoch = r.Uvarint()
	n := r.Count(5)
	if cap(m.Results) >= n {
		m.Results = m.Results[:n]
	} else {
		m.Results = make([]Result, n)
	}
	for i := range m.Results {
		DecodeResult(&r, &m.Results[i])
	}
	m.Map = r.BytesN()
	return r.Close()
}

// Mutation is one applied write shipped from a partition master to its
// replicas. Stamp is the authoritative cell stamp assigned by the master;
// Deleted marks tombstones; Counter marks counter cells.
type Mutation struct {
	Key     []byte
	Val     []byte
	Stamp   uint64
	Deleted bool
	Counter bool
	CtrVal  int64
}

// ReplicateRequest ships a batch of mutations to one replica.
type ReplicateRequest struct {
	PartitionID uint64
	Mutations   []Mutation
}

// Encode serializes the replication request into a pool-backed buffer.
func (m *ReplicateRequest) Encode() []byte {
	w := GetWriter()
	w.Byte(byte(KindReplicate))
	w.Uvarint(m.PartitionID)
	w.Uvarint(uint64(len(m.Mutations)))
	for i := range m.Mutations {
		mu := &m.Mutations[i]
		w.BytesN(mu.Key)
		w.BytesN(mu.Val)
		w.Uvarint(mu.Stamp)
		w.Bool(mu.Deleted)
		w.Bool(mu.Counter)
		w.Varint(mu.CtrVal)
	}
	return w.Finish()
}

// DecodeReplicateRequest parses an encoded ReplicateRequest.
func DecodeReplicateRequest(b []byte) (*ReplicateRequest, error) {
	r := NewReader(b)
	if k := Kind(r.Byte()); k != KindReplicate {
		return nil, fmt.Errorf("wire: kind %d is not a replicate request", k)
	}
	m := &ReplicateRequest{PartitionID: r.Uvarint()}
	n := r.Count(6)
	m.Mutations = make([]Mutation, n)
	for i := range m.Mutations {
		mu := &m.Mutations[i]
		mu.Key = r.BytesN()
		mu.Val = r.BytesN()
		mu.Stamp = r.Uvarint()
		mu.Deleted = r.Bool()
		mu.Counter = r.Bool()
		mu.CtrVal = r.Varint()
	}
	return m, r.Close()
}

// ReplicateResponse acknowledges a replication batch.
type ReplicateResponse struct {
	Status Status
}

// Encode serializes the replication response.
func (m *ReplicateResponse) Encode() []byte {
	return []byte{byte(KindReplicateResp), byte(m.Status)}
}

// DecodeReplicateResponse parses an encoded ReplicateResponse.
func DecodeReplicateResponse(b []byte) (*ReplicateResponse, error) {
	r := NewReader(b)
	if k := Kind(r.Byte()); k != KindReplicateResp {
		return nil, fmt.Errorf("wire: kind %d is not a replicate response", k)
	}
	m := &ReplicateResponse{Status: Status(r.Byte())}
	return m, r.Close()
}

// RecoverAssign names the surviving node taking over one of a dead node's
// partitions; recovery workers route replayed records by this table.
type RecoverAssign struct {
	Pid  uint64
	Addr string
}

// RecoverRequest asks a surviving storage node to fetch and replay a shard
// of a dead node's durable objects (WAL segments and checkpoint chunks).
// The worker applies records for partitions it now masters directly and
// forwards the rest per the assignment table. One request carries a small
// object batch so each RPC stays within network timeouts.
type RecoverRequest struct {
	// Dead is the durable namespace (node address) being recovered.
	Dead    string
	Objects []string
	Assign  []RecoverAssign
}

// Encode serializes the recover request.
func (m *RecoverRequest) Encode() []byte {
	w := GetWriter()
	w.Byte(byte(KindRecoverReq))
	w.String(m.Dead)
	w.Uvarint(uint64(len(m.Objects)))
	for _, o := range m.Objects {
		w.String(o)
	}
	w.Uvarint(uint64(len(m.Assign)))
	for i := range m.Assign {
		w.Uvarint(m.Assign[i].Pid)
		w.String(m.Assign[i].Addr)
	}
	return w.Finish()
}

// DecodeRecoverRequest parses an encoded RecoverRequest.
func DecodeRecoverRequest(b []byte) (*RecoverRequest, error) {
	r := NewReader(b)
	if k := Kind(r.Byte()); k != KindRecoverReq {
		return nil, fmt.Errorf("wire: kind %d is not a recover request", k)
	}
	m := &RecoverRequest{Dead: r.String()}
	n := r.Count(1)
	m.Objects = make([]string, n)
	for i := range m.Objects {
		m.Objects[i] = r.String()
	}
	n = r.Count(2)
	m.Assign = make([]RecoverAssign, n)
	for i := range m.Assign {
		m.Assign[i].Pid = r.Uvarint()
		m.Assign[i].Addr = r.String()
	}
	return m, r.Close()
}

// RecoverResponse reports one worker's replay result: records routed and
// payload bytes read from the durable backend.
type RecoverResponse struct {
	Status  Status
	Records uint64
	Bytes   uint64
}

// Encode serializes the recover response.
func (m *RecoverResponse) Encode() []byte {
	w := GetWriter()
	w.Byte(byte(KindRecoverResp))
	w.Byte(byte(m.Status))
	w.Uvarint(m.Records)
	w.Uvarint(m.Bytes)
	return w.Finish()
}

// DecodeRecoverResponse parses an encoded RecoverResponse.
func DecodeRecoverResponse(b []byte) (*RecoverResponse, error) {
	r := NewReader(b)
	if k := Kind(r.Byte()); k != KindRecoverResp {
		return nil, fmt.Errorf("wire: kind %d is not a recover response", k)
	}
	m := &RecoverResponse{Status: Status(r.Byte())}
	m.Records = r.Uvarint()
	m.Bytes = r.Uvarint()
	return m, r.Close()
}
