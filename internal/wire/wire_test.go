package wire

import (
	"bytes"
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

func TestWriterReaderRoundTrip(t *testing.T) {
	w := NewWriter(0)
	w.Byte(7)
	w.Uvarint(math.MaxUint64)
	w.Varint(-12345)
	w.U64(0xdeadbeefcafe)
	w.U32(42)
	w.Bool(true)
	w.Bool(false)
	w.BytesN([]byte("hello"))
	w.BytesN(nil)
	w.String("world")

	r := NewReader(w.Bytes())
	if got := r.Byte(); got != 7 {
		t.Fatalf("Byte = %d", got)
	}
	if got := r.Uvarint(); got != math.MaxUint64 {
		t.Fatalf("Uvarint = %d", got)
	}
	if got := r.Varint(); got != -12345 {
		t.Fatalf("Varint = %d", got)
	}
	if got := r.U64(); got != 0xdeadbeefcafe {
		t.Fatalf("U64 = %x", got)
	}
	if got := r.U32(); got != 42 {
		t.Fatalf("U32 = %d", got)
	}
	if !r.Bool() || r.Bool() {
		t.Fatal("Bool mismatch")
	}
	if got := r.BytesN(); string(got) != "hello" {
		t.Fatalf("BytesN = %q", got)
	}
	if got := r.BytesN(); len(got) != 0 {
		t.Fatalf("empty BytesN = %q", got)
	}
	if got := r.String(); got != "world" {
		t.Fatalf("String = %q", got)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestReaderTruncation(t *testing.T) {
	w := NewWriter(0)
	w.BytesN([]byte("hello"))
	full := w.Bytes()
	for cut := 0; cut < len(full); cut++ {
		r := NewReader(full[:cut])
		r.BytesN()
		if r.Err() == nil {
			t.Fatalf("cut=%d: expected error", cut)
		}
	}
}

func TestReaderErrorsAreSticky(t *testing.T) {
	r := NewReader(nil)
	r.U64()
	if r.Err() == nil {
		t.Fatal("expected error")
	}
	// Later reads keep failing without panicking.
	r.Uvarint()
	r.BytesN()
	if r.Err() == nil {
		t.Fatal("error should persist")
	}
}

func TestReaderTrailingBytes(t *testing.T) {
	r := NewReader([]byte{1, 2, 3})
	r.Byte()
	if err := r.Close(); err == nil {
		t.Fatal("expected trailing-bytes error")
	}
}

func opsEqual(a, b Op) bool {
	return a.Code == b.Code &&
		bytes.Equal(a.Key, b.Key) &&
		bytes.Equal(a.Val, b.Val) &&
		a.Stamp == b.Stamp &&
		a.Delta == b.Delta &&
		bytes.Equal(a.EndKey, b.EndKey) &&
		a.Limit == b.Limit &&
		a.Reverse == b.Reverse
}

func TestStoreRequestRoundTrip(t *testing.T) {
	req := &StoreRequest{
		Epoch: 9,
		Ops: []Op{
			{Code: OpGet, Key: []byte("k1")},
			{Code: OpPut, Key: []byte("k2"), Val: []byte("v2")},
			{Code: OpCondPut, Key: []byte("k3"), Val: []byte("v3"), Stamp: 77},
			{Code: OpDelete, Key: []byte("k4"), Stamp: 3},
			{Code: OpCounterAdd, Key: []byte("c"), Delta: -5},
			{Code: OpScan, Key: []byte("a"), EndKey: []byte("z"), Limit: 100, Reverse: true},
		},
	}
	got, err := DecodeStoreRequest(req.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != 9 || len(got.Ops) != len(req.Ops) {
		t.Fatalf("header mismatch: %+v", got)
	}
	for i := range req.Ops {
		if !opsEqual(got.Ops[i], req.Ops[i]) {
			t.Fatalf("op %d mismatch:\n got %+v\nwant %+v", i, got.Ops[i], req.Ops[i])
		}
	}
}

func TestStoreResponseRoundTrip(t *testing.T) {
	resp := &StoreResponse{
		Status: StatusOK,
		Epoch:  4,
		Results: []Result{
			{Status: StatusOK, Val: []byte("v"), Stamp: 12},
			{Status: StatusConflict, Stamp: 13},
			{Status: StatusNotFound},
			{Status: StatusOK, Count: -99},
			{Status: StatusOK, Pairs: []Pair{
				{Key: []byte("a"), Val: []byte("1"), Stamp: 1},
				{Key: []byte("b"), Val: []byte("2"), Stamp: 2},
			}},
		},
	}
	got, err := DecodeStoreResponse(resp.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != StatusOK || got.Epoch != 4 || len(got.Results) != 5 {
		t.Fatalf("header mismatch: %+v", got)
	}
	if string(got.Results[0].Val) != "v" || got.Results[0].Stamp != 12 {
		t.Fatalf("result 0 mismatch: %+v", got.Results[0])
	}
	if got.Results[1].Status != StatusConflict {
		t.Fatalf("result 1 mismatch: %+v", got.Results[1])
	}
	if got.Results[3].Count != -99 {
		t.Fatalf("result 3 mismatch: %+v", got.Results[3])
	}
	if len(got.Results[4].Pairs) != 2 || string(got.Results[4].Pairs[1].Key) != "b" {
		t.Fatalf("result 4 mismatch: %+v", got.Results[4])
	}
}

func TestReplicateRoundTrip(t *testing.T) {
	req := &ReplicateRequest{
		PartitionID: 3,
		Mutations: []Mutation{
			{Key: []byte("k"), Val: []byte("v"), Stamp: 5},
			{Key: []byte("d"), Deleted: true, Stamp: 6},
			{Key: []byte("c"), Counter: true, CtrVal: 41, Stamp: 7},
		},
	}
	got, err := DecodeReplicateRequest(req.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.PartitionID != 3 || len(got.Mutations) != 3 {
		t.Fatalf("mismatch: %+v", got)
	}
	if !got.Mutations[1].Deleted || got.Mutations[2].CtrVal != 41 {
		t.Fatalf("mutation mismatch: %+v", got.Mutations)
	}

	resp := &ReplicateResponse{Status: StatusOK}
	gr, err := DecodeReplicateResponse(resp.Encode())
	if err != nil || gr.Status != StatusOK {
		t.Fatalf("resp mismatch: %+v err=%v", gr, err)
	}
}

func TestKindMismatchRejected(t *testing.T) {
	req := &StoreRequest{Ops: []Op{{Code: OpGet, Key: []byte("k")}}}
	if _, err := DecodeStoreResponse(req.Encode()); err == nil {
		t.Fatal("expected kind mismatch error")
	}
	if _, err := DecodeReplicateRequest(req.Encode()); err == nil {
		t.Fatal("expected kind mismatch error")
	}
}

// TestVarintPropertyRoundTrip checks uvarint/varint/bytes encodings for all
// generated values.
func TestVarintPropertyRoundTrip(t *testing.T) {
	f := func(u uint64, v int64, b []byte, s string) bool {
		w := NewWriter(0)
		w.Uvarint(u)
		w.Varint(v)
		w.BytesN(b)
		w.String(s)
		r := NewReader(w.Bytes())
		gu := r.Uvarint()
		gv := r.Varint()
		gb := r.BytesN()
		gs := r.String()
		return r.Close() == nil && gu == u && gv == v && bytes.Equal(gb, b) && gs == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestStoreRequestPropertyRoundTrip fuzzes op batches through the codec.
func TestStoreRequestPropertyRoundTrip(t *testing.T) {
	f := func(epoch uint64, keys [][]byte, vals [][]byte, stamps []uint64) bool {
		var ops []Op
		for i, k := range keys {
			op := Op{Code: OpCondPut, Key: k}
			if i < len(vals) {
				op.Val = vals[i]
			}
			if i < len(stamps) {
				op.Stamp = stamps[i]
			}
			ops = append(ops, op)
		}
		req := &StoreRequest{Epoch: epoch, Ops: ops}
		got, err := DecodeStoreRequest(req.Encode())
		if err != nil || got.Epoch != epoch || len(got.Ops) != len(ops) {
			return false
		}
		for i := range ops {
			if !opsEqual(got.Ops[i], ops[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestDecodeGarbageNeverPanics feeds random bytes to the decoders.
func TestDecodeGarbageNeverPanics(t *testing.T) {
	f := func(b []byte) bool {
		DecodeStoreRequest(b)
		DecodeStoreResponse(b)
		DecodeReplicateRequest(b)
		DecodeReplicateResponse(b)
		DecodeStatsSnapshot(b)
		DecodeStatsExt(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsExtRoundTrip(t *testing.T) {
	m := &StatsExt{
		Node:     "mgr",
		NowNs:    123456789,
		WindowNs: int64(100 * 1e6),
		Series: []SeriesStat{
			{Node: "txn", Metric: "lat/neworder", Hist: true, Total: 99,
				Count: 42, MeanNs: 1000, P50Ns: 900, P99Ns: 5000, P999Ns: 9000},
			{Node: "txn", Metric: "rate/committed", Total: 77},
		},
		Heat: []HeatStat{
			{Node: "sn1", Range: 3, Reads: 10, Writes: 5, Conflicts: 1,
				ReadBytes: 640, WriteBytes: 320, RecentOps: 15, RecentLatNs: 2500},
		},
		Breaches: []BreachStat{{Class: "neworder", Quantile: "p99", Count: 2}},
		Flight:   FlightStat{Retained: 3, Evicted: 1, Seen: 100000},
	}
	got, err := DecodeStatsExt(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, m)
	}
}

func TestStatsExtMerge(t *testing.T) {
	a := &StatsExt{Node: "mgr", NowNs: 5, WindowNs: 7,
		Series:   []SeriesStat{{Node: "sn2", Metric: "lat/store"}},
		Heat:     []HeatStat{{Node: "sn2", Range: 1}},
		Breaches: []BreachStat{{Class: "neworder", Quantile: "p99", Count: 2}},
		Flight:   FlightStat{Retained: 1}}
	b := &StatsExt{Node: "sn1", NowNs: 9,
		Series: []SeriesStat{{Node: "sn1", Metric: "lat/store"}},
		Heat:   []HeatStat{{Node: "sn1", Range: 2}},
		Breaches: []BreachStat{
			{Class: "neworder", Quantile: "p99", Count: 3},
			{Class: "payment", Quantile: "p50", Count: 1},
		},
		Flight: FlightStat{Retained: 2, Evicted: 1, Seen: 10}}
	a.Merge(b)
	a.SortRows()
	if a.NowNs != 9 || a.WindowNs != 7 {
		t.Fatalf("merged header: %+v", a)
	}
	if len(a.Series) != 2 || a.Series[0].Node != "sn1" || a.Series[1].Node != "sn2" {
		t.Fatalf("merged series: %+v", a.Series)
	}
	if len(a.Heat) != 2 || a.Heat[0].Node != "sn1" || a.Heat[1].Node != "sn2" {
		t.Fatalf("merged heat: %+v", a.Heat)
	}
	if len(a.Breaches) != 2 || a.Breaches[0].Count != 5 || a.Breaches[1].Class != "payment" {
		t.Fatalf("merged breaches: %+v", a.Breaches)
	}
	if a.Flight.Retained != 3 || a.Flight.Evicted != 1 || a.Flight.Seen != 10 {
		t.Fatalf("merged flight: %+v", a.Flight)
	}
}
