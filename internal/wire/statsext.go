package wire

import (
	"fmt"
	"sort"
)

// This file defines the extended stats protocol carrying the obs
// pipeline's view of a daemon: current windowed-series digests, per-range
// heat rows, SLO breach tallies and flight-recorder state. The base stats
// protocol (stats.go) stays untouched for old clients; `tellcli top` and
// the live views consume this one. The management node additionally
// answers it with a cluster-wide aggregation (fan-out over the storage
// nodes), so one request paints the whole heatmap.

// SeriesStat is the digest of one windowed series: the merged quantiles
// over the retained windows plus the all-time total.
type SeriesStat struct {
	Node   string
	Metric string
	Hist   bool
	Total  int64
	Count  uint64 // observations in the retained windows (hist only)
	MeanNs int64
	P50Ns  int64
	P99Ns  int64
	P999Ns int64
}

// HeatStat is one (node, range) heat row: all-time totals plus activity
// over the retention horizon.
type HeatStat struct {
	Node        string
	Range       uint64
	Reads       int64
	Writes      int64
	Conflicts   int64
	ReadBytes   int64
	WriteBytes  int64
	RecentOps   int64
	RecentLatNs int64 // mean attributed latency over the retained windows
}

// MigrationStat is one live or recently finished range migration as seen
// by the node reporting it (the management node reports the authoritative
// view; storage nodes report the ranges they are shipping or adopting).
type MigrationStat struct {
	Node       string // reporting node
	Range      uint64 // partition id being moved
	Phase      string // "copy", "delta", "fence", "cutover", "done", "aborted"
	Source     string
	Target     string
	BytesMoved int64
	Chunks     int64
}

// BreachStat is one aggregated SLO violation tally.
type BreachStat struct {
	Class    string
	Quantile string
	Count    int64
}

// FlightStat summarizes the flight recorder.
type FlightStat struct {
	Retained uint64
	Evicted  uint64
	Seen     uint64
}

// StatsExt is the extended telemetry snapshot.
type StatsExt struct {
	Node     string
	NowNs    int64
	WindowNs int64
	Series   []SeriesStat
	Heat     []HeatStat
	Breaches []BreachStat
	Migr     []MigrationStat
	Flight   FlightStat
}

// EncodeStatsExtReq builds the (payload-free) extended stats request.
func EncodeStatsExtReq() []byte { return []byte{byte(KindStatsExtReq)} }

// Merge folds another daemon's snapshot into m — the management node's
// cluster aggregation. Rows carry their origin node, so merging is
// concatenation plus breach-tally summation; call SortRows afterwards to
// restore the canonical order.
func (m *StatsExt) Merge(other *StatsExt) {
	m.Series = append(m.Series, other.Series...)
	m.Heat = append(m.Heat, other.Heat...)
	for _, ob := range other.Breaches {
		found := false
		for i := range m.Breaches {
			if m.Breaches[i].Class == ob.Class && m.Breaches[i].Quantile == ob.Quantile {
				m.Breaches[i].Count += ob.Count
				found = true
				break
			}
		}
		if !found {
			m.Breaches = append(m.Breaches, ob)
		}
	}
	m.Migr = append(m.Migr, other.Migr...)
	m.Flight.Retained += other.Flight.Retained
	m.Flight.Evicted += other.Flight.Evicted
	m.Flight.Seen += other.Flight.Seen
	if other.NowNs > m.NowNs {
		m.NowNs = other.NowNs
	}
	if m.WindowNs == 0 {
		m.WindowNs = other.WindowNs
	}
}

// SortRows restores the canonical row order: series by (node, metric),
// heat by (node, range), breaches by (class, quantile). Exporters rely on
// this for deterministic output.
func (m *StatsExt) SortRows() {
	sort.Slice(m.Series, func(i, j int) bool {
		if m.Series[i].Node != m.Series[j].Node {
			return m.Series[i].Node < m.Series[j].Node
		}
		return m.Series[i].Metric < m.Series[j].Metric
	})
	sort.Slice(m.Heat, func(i, j int) bool {
		if m.Heat[i].Node != m.Heat[j].Node {
			return m.Heat[i].Node < m.Heat[j].Node
		}
		return m.Heat[i].Range < m.Heat[j].Range
	})
	sort.Slice(m.Breaches, func(i, j int) bool {
		if m.Breaches[i].Class != m.Breaches[j].Class {
			return m.Breaches[i].Class < m.Breaches[j].Class
		}
		return m.Breaches[i].Quantile < m.Breaches[j].Quantile
	})
	sort.Slice(m.Migr, func(i, j int) bool {
		if m.Migr[i].Node != m.Migr[j].Node {
			return m.Migr[i].Node < m.Migr[j].Node
		}
		if m.Migr[i].Range != m.Migr[j].Range {
			return m.Migr[i].Range < m.Migr[j].Range
		}
		return m.Migr[i].Phase < m.Migr[j].Phase
	})
}

// Encode serializes the snapshot.
func (m *StatsExt) Encode() []byte {
	w := NewWriter(128 + 48*(len(m.Series)+len(m.Heat)))
	w.Byte(byte(KindStatsExtResp))
	w.String(m.Node)
	w.Varint(m.NowNs)
	w.Varint(m.WindowNs)
	w.Uvarint(uint64(len(m.Series)))
	for i := range m.Series {
		s := &m.Series[i]
		w.String(s.Node)
		w.String(s.Metric)
		w.Bool(s.Hist)
		w.Varint(s.Total)
		w.Uvarint(s.Count)
		w.Varint(s.MeanNs)
		w.Varint(s.P50Ns)
		w.Varint(s.P99Ns)
		w.Varint(s.P999Ns)
	}
	w.Uvarint(uint64(len(m.Heat)))
	for i := range m.Heat {
		h := &m.Heat[i]
		w.String(h.Node)
		w.Uvarint(h.Range)
		w.Varint(h.Reads)
		w.Varint(h.Writes)
		w.Varint(h.Conflicts)
		w.Varint(h.ReadBytes)
		w.Varint(h.WriteBytes)
		w.Varint(h.RecentOps)
		w.Varint(h.RecentLatNs)
	}
	w.Uvarint(uint64(len(m.Breaches)))
	for i := range m.Breaches {
		b := &m.Breaches[i]
		w.String(b.Class)
		w.String(b.Quantile)
		w.Varint(b.Count)
	}
	w.Uvarint(uint64(len(m.Migr)))
	for i := range m.Migr {
		g := &m.Migr[i]
		w.String(g.Node)
		w.Uvarint(g.Range)
		w.String(g.Phase)
		w.String(g.Source)
		w.String(g.Target)
		w.Varint(g.BytesMoved)
		w.Varint(g.Chunks)
	}
	w.Uvarint(m.Flight.Retained)
	w.Uvarint(m.Flight.Evicted)
	w.Uvarint(m.Flight.Seen)
	return w.Bytes()
}

// DecodeStatsExt parses an encoded StatsExt.
func DecodeStatsExt(b []byte) (*StatsExt, error) {
	r := NewReader(b)
	if k := Kind(r.Byte()); k != KindStatsExtResp {
		return nil, fmt.Errorf("wire: kind %d is not an extended stats response", k)
	}
	m := &StatsExt{Node: r.String(), NowNs: r.Varint(), WindowNs: r.Varint()}
	ns := r.Count(9)
	if ns > 0 {
		m.Series = make([]SeriesStat, ns)
	}
	for i := range m.Series {
		s := &m.Series[i]
		s.Node = r.String()
		s.Metric = r.String()
		s.Hist = r.Bool()
		s.Total = r.Varint()
		s.Count = r.Uvarint()
		s.MeanNs = r.Varint()
		s.P50Ns = r.Varint()
		s.P99Ns = r.Varint()
		s.P999Ns = r.Varint()
	}
	nh := r.Count(9)
	if nh > 0 {
		m.Heat = make([]HeatStat, nh)
	}
	for i := range m.Heat {
		h := &m.Heat[i]
		h.Node = r.String()
		h.Range = r.Uvarint()
		h.Reads = r.Varint()
		h.Writes = r.Varint()
		h.Conflicts = r.Varint()
		h.ReadBytes = r.Varint()
		h.WriteBytes = r.Varint()
		h.RecentOps = r.Varint()
		h.RecentLatNs = r.Varint()
	}
	nb := r.Count(3)
	if nb > 0 {
		m.Breaches = make([]BreachStat, nb)
	}
	for i := range m.Breaches {
		b := &m.Breaches[i]
		b.Class = r.String()
		b.Quantile = r.String()
		b.Count = r.Varint()
	}
	nm := r.Count(7)
	if nm > 0 {
		m.Migr = make([]MigrationStat, nm)
	}
	for i := range m.Migr {
		g := &m.Migr[i]
		g.Node = r.String()
		g.Range = r.Uvarint()
		g.Phase = r.String()
		g.Source = r.String()
		g.Target = r.String()
		g.BytesMoved = r.Varint()
		g.Chunks = r.Varint()
	}
	m.Flight.Retained = r.Uvarint()
	m.Flight.Evicted = r.Uvarint()
	m.Flight.Seen = r.Uvarint()
	return m, r.Close()
}
