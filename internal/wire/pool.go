// Buffer pooling for the encode hot path. Every encoded message used to be
// a fresh allocation; under the real transports (tcpnet/telld) that is one
// garbage buffer per message at wire rate. The pool closes the loop: Encode
// draws its scratch buffer from here, and the transport hands the bytes back
// with PutBuf once the frame is on the wire.
//
// Ownership discipline — this is the part that keeps pooling correct:
//
//   - GetWriter/Finish transfer buffer ownership to the caller. Nothing is
//     recycled implicitly, so call sites that never PutBuf behave exactly as
//     before (they just allocate less while the pool is warm).
//   - PutBuf may only be called with a buffer whose bytes are provably dead.
//     The simulated network is deliberately NOT a caller: its fault injector
//     can re-deliver a duplicated frame after the round trip returns, so a
//     recycled buffer could be scribbled over while still queued. tcpnet
//     recycles server responses after writeFrame has copied them to the
//     socket, which is safe.
//   - Decoded messages alias their input buffer (Reader.BytesN), so received
//     payloads are never pooled either.
//
// Determinism: sync.Pool is pure scratch-memory reuse — no iteration order,
// no time, no randomness observable by callers — so pooled and unpooled runs
// are byte-identical. The lint assertion in nodeps_test.go keeps it that way.
package wire

import "sync"

const (
	// defaultBufCap seeds new pool buffers; typical requests (a handful of
	// ops) and responses fit without growing.
	defaultBufCap = 512
	// minPooledCap guards against pooling tiny fixed responses (Pong, acks)
	// that are often shared package-level literals.
	minPooledCap = 64
	// maxPooledCap keeps pathological bulk-load frames from pinning large
	// buffers in the pool forever.
	maxPooledCap = 1 << 16
)

// pbuf boxes a byte slice for sync.Pool: storing a raw []byte in an
// interface would heap-allocate the slice header on every Put, defeating
// the zero-alloc goal. Empty wrappers cycle through wrapPool so steady state
// allocates nothing at all.
type pbuf struct{ b []byte }

var (
	writerPool sync.Pool // *Writer, buf possibly nil
	bufPool    sync.Pool // *pbuf with a live buffer
	wrapPool   sync.Pool // *pbuf with b == nil
)

// GetWriter returns a pooled Writer backed by a pooled (or fresh) buffer.
// Pair it with Finish.
func GetWriter() *Writer {
	w, _ := writerPool.Get().(*Writer)
	if w == nil {
		w = new(Writer)
	}
	if w.buf == nil {
		w.buf = getBuf()
	} else {
		w.buf = w.buf[:0]
	}
	return w
}

// Finish returns the encoded bytes and recycles the Writer struct. Buffer
// ownership passes to the caller; the Writer must not be used again. The
// buffer itself re-enters the pool only if the caller later hands it to
// PutBuf.
func (w *Writer) Finish() []byte {
	b := w.buf
	w.buf = nil
	writerPool.Put(w)
	return b
}

// PutBuf returns an encode buffer to the pool. Only call it when every
// reference to the bytes is dead (see the package comment for who qualifies).
// Buffers outside the pooled size band are dropped.
func PutBuf(b []byte) {
	if cap(b) < minPooledCap || cap(b) > maxPooledCap {
		return
	}
	p, _ := wrapPool.Get().(*pbuf)
	if p == nil {
		p = new(pbuf)
	}
	p.b = b[:0]
	bufPool.Put(p)
}

func getBuf() []byte {
	if p, _ := bufPool.Get().(*pbuf); p != nil {
		b := p.b
		p.b = nil
		wrapPool.Put(p)
		return b
	}
	return make([]byte, 0, defaultBufCap)
}
