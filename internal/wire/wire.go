// Package wire defines the binary message format spoken between processing
// nodes, storage nodes, commit managers and the management node. The same
// encoding is used over every transport (simulated network, in-process
// channels, TCP), so message sizes — which feed the simulator's bandwidth
// model — are the real encoded sizes.
//
// Encoding is little-endian with unsigned varints for lengths and counts
// (encoding/binary); byte strings are length-prefixed.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrTruncated is returned when a message ends before its declared content.
var ErrTruncated = errors.New("wire: truncated message")

// Writer appends primitive values to a byte buffer.
type Writer struct {
	buf []byte
}

// NewWriter returns a writer with the given initial capacity.
func NewWriter(capacity int) *Writer {
	return &Writer{buf: make([]byte, 0, capacity)}
}

// Bytes returns the encoded buffer.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the number of bytes written so far.
func (w *Writer) Len() int { return len(w.buf) }

// Byte appends a single byte.
func (w *Writer) Byte(b byte) { w.buf = append(w.buf, b) }

// Uvarint appends v in unsigned varint encoding.
func (w *Writer) Uvarint(v uint64) { w.buf = binary.AppendUvarint(w.buf, v) }

// Varint appends v in signed (zig-zag) varint encoding.
func (w *Writer) Varint(v int64) { w.buf = binary.AppendVarint(w.buf, v) }

// U64 appends v as 8 fixed little-endian bytes.
func (w *Writer) U64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }

// U32 appends v as 4 fixed little-endian bytes.
func (w *Writer) U32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }

// Bool appends a boolean as one byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.Byte(1)
	} else {
		w.Byte(0)
	}
}

// Bytes8 appends b length-prefixed with a uvarint.
func (w *Writer) BytesN(b []byte) {
	w.Uvarint(uint64(len(b)))
	w.buf = append(w.buf, b...)
}

// String appends s length-prefixed with a uvarint.
func (w *Writer) String(s string) {
	w.Uvarint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// Reader consumes primitive values from a byte buffer. Decoding errors are
// sticky: once an error occurs, all further reads return zero values and
// Err reports the failure.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader returns a reader over buf.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// Reset re-targets the reader at buf, clearing position and error so a
// stack-allocated Reader can be reused across messages without allocating.
func (r *Reader) Reset(buf []byte) {
	r.buf = buf
	r.off = 0
	r.err = nil
}

// Err returns the first decoding error, if any.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

func (r *Reader) fail() {
	if r.err == nil {
		r.err = ErrTruncated
	}
}

// Byte reads a single byte.
func (r *Reader) Byte() byte {
	if r.err != nil || r.off >= len(r.buf) {
		r.fail()
		return 0
	}
	b := r.buf[r.off]
	r.off++
	return b
}

// Uvarint reads an unsigned varint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return v
}

// Varint reads a signed (zig-zag) varint.
func (r *Reader) Varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return v
}

// U64 reads 8 fixed little-endian bytes.
func (r *Reader) U64() uint64 {
	if r.err != nil || r.off+8 > len(r.buf) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}

// U32 reads 4 fixed little-endian bytes.
func (r *Reader) U32() uint32 {
	if r.err != nil || r.off+4 > len(r.buf) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}

// Bool reads a boolean byte.
func (r *Reader) Bool() bool { return r.Byte() != 0 }

// BytesN reads a uvarint-length-prefixed byte string. The returned slice
// aliases the underlying buffer.
func (r *Reader) BytesN() []byte {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if uint64(r.Remaining()) < n {
		r.fail()
		return nil
	}
	b := r.buf[r.off : r.off+int(n)]
	r.off += int(n)
	return b
}

// String reads a uvarint-length-prefixed string.
func (r *Reader) String() string { return string(r.BytesN()) }

// Count reads an element count and validates it against the bytes remaining
// in the buffer, assuming each element occupies at least minBytes. This
// bounds slice pre-allocation when decoding untrusted input.
func (r *Reader) Count(minBytes int) int {
	n := r.Uvarint()
	if r.err != nil {
		return 0
	}
	if minBytes < 1 {
		minBytes = 1
	}
	if n > uint64(r.Remaining()/minBytes) {
		r.fail()
		return 0
	}
	return int(n)
}

// Expect returns an error unless the whole buffer was consumed cleanly.
func (r *Reader) Close() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.buf) {
		return fmt.Errorf("wire: %d trailing bytes", len(r.buf)-r.off)
	}
	return nil
}
