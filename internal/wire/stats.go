package wire

import "fmt"

// This file defines the stats protocol: a one-byte request any daemon role
// answers with a snapshot of its handler-latency summary and telemetry
// counters. tellcli's `stats` subcommand is the consumer.

// StatsClass is the digest of one latency class (a named histogram) in a
// stats snapshot. Durations travel as nanoseconds.
type StatsClass struct {
	Name   string
	Count  uint64
	MeanNs int64
	P99Ns  int64
	MaxNs  int64
}

// StatsCounter is one named running total.
type StatsCounter struct {
	Name  string
	Value int64
}

// StatsSnapshot is a daemon's point-in-time telemetry: latency classes from
// its metrics.Summary plus trace-recorder counters. UptimeNs is the env
// clock at snapshot time.
type StatsSnapshot struct {
	Node     string
	UptimeNs int64
	Classes  []StatsClass
	Counters []StatsCounter
}

// EncodeStatsReq builds the (payload-free) stats request.
func EncodeStatsReq() []byte { return []byte{byte(KindStatsReq)} }

// Encode serializes the snapshot.
func (m *StatsSnapshot) Encode() []byte {
	w := NewWriter(64 + 32*(len(m.Classes)+len(m.Counters)))
	w.Byte(byte(KindStatsResp))
	w.String(m.Node)
	w.Varint(m.UptimeNs)
	w.Uvarint(uint64(len(m.Classes)))
	for i := range m.Classes {
		c := &m.Classes[i]
		w.String(c.Name)
		w.Uvarint(c.Count)
		w.Varint(c.MeanNs)
		w.Varint(c.P99Ns)
		w.Varint(c.MaxNs)
	}
	w.Uvarint(uint64(len(m.Counters)))
	for i := range m.Counters {
		w.String(m.Counters[i].Name)
		w.Varint(m.Counters[i].Value)
	}
	return w.Bytes()
}

// DecodeStatsSnapshot parses an encoded StatsSnapshot.
func DecodeStatsSnapshot(b []byte) (*StatsSnapshot, error) {
	r := NewReader(b)
	if k := Kind(r.Byte()); k != KindStatsResp {
		return nil, fmt.Errorf("wire: kind %d is not a stats response", k)
	}
	m := &StatsSnapshot{Node: r.String(), UptimeNs: r.Varint()}
	n := r.Count(5)
	if n > 0 {
		m.Classes = make([]StatsClass, n)
	}
	for i := range m.Classes {
		c := &m.Classes[i]
		c.Name = r.String()
		c.Count = r.Uvarint()
		c.MeanNs = r.Varint()
		c.P99Ns = r.Varint()
		c.MaxNs = r.Varint()
	}
	nc := r.Count(2)
	if nc > 0 {
		m.Counters = make([]StatsCounter, nc)
	}
	for i := range m.Counters {
		m.Counters[i].Name = r.String()
		m.Counters[i].Value = r.Varint()
	}
	return m, r.Close()
}
