// Zero-allocation guards for the pooled encode/decode hot path. The race
// detector instruments allocations, so these run only in regular builds
// (make bench-smoke exercises them in CI).

//go:build !race

package wire

import (
	"testing"
)

// benchRequest is a representative point-op batch: the shape the store
// client sends on the TPC-C hot path.
func benchRequest() *StoreRequest {
	key := []byte("warehouse/0001/district/07")
	val := make([]byte, 96)
	return &StoreRequest{
		Epoch: 7,
		Ops: []Op{
			{Code: OpGet, Key: key},
			{Code: OpCondPut, Key: key, Val: val, Stamp: 42},
			{Code: OpCounterAdd, Key: key, Delta: 3},
			{Code: OpDelete, Key: key, Stamp: 9},
		},
	}
}

func benchResponse() *StoreResponse {
	val := make([]byte, 96)
	return &StoreResponse{
		Status: StatusOK,
		Epoch:  7,
		Results: []Result{
			{Status: StatusOK, Val: val, Stamp: 42},
			{Status: StatusConflict, Stamp: 43},
			{Status: StatusOK, Count: 17},
			{Status: StatusOK},
		},
	}
}

// TestEncodePutBufZeroAlloc pins the pooled encode cycle at zero
// steady-state allocations: a request encoded into a pooled buffer that is
// recycled with PutBuf must not touch the heap once the pool is warm.
func TestEncodePutBufZeroAlloc(t *testing.T) {
	req := benchRequest()
	// Warm the pools (first cycle allocates the writer, wrapper and buffer).
	for i := 0; i < 8; i++ {
		PutBuf(req.Encode())
	}
	if n := testing.AllocsPerRun(200, func() {
		PutBuf(req.Encode())
	}); n != 0 {
		t.Fatalf("StoreRequest Encode+PutBuf allocates %.1f times per op, want 0", n)
	}

	resp := benchResponse()
	for i := 0; i < 8; i++ {
		PutBuf(resp.Encode())
	}
	if n := testing.AllocsPerRun(200, func() {
		PutBuf(resp.Encode())
	}); n != 0 {
		t.Fatalf("StoreResponse Encode+PutBuf allocates %.1f times per op, want 0", n)
	}
}

// TestDecodeFromZeroAlloc pins in-place decoding at zero steady-state
// allocations: decoding into a long-lived message whose slices have
// capacity must not touch the heap (pair-free responses — the point-op hot
// path).
func TestDecodeFromZeroAlloc(t *testing.T) {
	rawReq := benchRequest().Encode()
	var req StoreRequest
	if err := req.DecodeFrom(rawReq); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(200, func() {
		if err := req.DecodeFrom(rawReq); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("StoreRequest DecodeFrom allocates %.1f times per op, want 0", n)
	}

	rawResp := benchResponse().Encode()
	var resp StoreResponse
	if err := resp.DecodeFrom(rawResp); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(200, func() {
		if err := resp.DecodeFrom(rawResp); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("StoreResponse DecodeFrom allocates %.1f times per op, want 0", n)
	}
}

// TestPutBufRejectsOutOfBand verifies the pool's capacity band: tiny shared
// literals (ack responses) and oversized buffers must not enter the pool.
func TestPutBufRejectsOutOfBand(t *testing.T) {
	shared := []byte{byte(KindReplicateResp), byte(StatusOK)}
	PutBuf(shared) // must be a no-op: cap < minPooledCap
	b := getBuf()
	if cap(b) >= minPooledCap && &b[:1][0] == &shared[:1][0] {
		t.Fatal("pool returned the shared literal buffer")
	}
	PutBuf(make([]byte, maxPooledCap+1)) // must also be a no-op
}

func BenchmarkStoreRequestEncodePooled(b *testing.B) {
	req := benchRequest()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		PutBuf(req.Encode())
	}
}

func BenchmarkStoreResponseDecodeFrom(b *testing.B) {
	raw := benchResponse().Encode()
	var resp StoreResponse
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := resp.DecodeFrom(raw); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStoreRequestDecodeFrom(b *testing.B) {
	raw := benchRequest().Encode()
	var req StoreRequest
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := req.DecodeFrom(raw); err != nil {
			b.Fatal(err)
		}
	}
}
