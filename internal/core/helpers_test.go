package core_test

import (
	"testing"

	"tell/internal/mvcc"
)

// countVersions decodes a raw record value and returns its version count.
func countVersions(t *testing.T, raw []byte) int {
	t.Helper()
	rec, err := mvcc.Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	return len(rec.Versions)
}
