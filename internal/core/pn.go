package core

import (
	"time"

	"tell/internal/commitmgr"
	"tell/internal/env"
	"tell/internal/mvcc"
	"tell/internal/relational"
	"tell/internal/sanitize"
	"tell/internal/store"
	"tell/internal/trace"
	"tell/internal/transport"
	"tell/internal/txlog"
	"tell/internal/wire"
)

// BufferStrategy selects how records are buffered on the PN (§5.5).
type BufferStrategy int

const (
	// TB: the transaction buffer only — every transaction caches the
	// records it read for its own lifetime (§5.5.1). This is Tell's
	// default and the best strategy for TPC-C (Figure 11).
	TB BufferStrategy = iota
	// SB: a shared record buffer across all transactions on the PN,
	// validated via version number sets (§5.5.2).
	SB
	// SBVS: the shared buffer with version-set synchronization through
	// the storage system, with records grouped into cache units (§5.5.3).
	SBVS
)

func (b BufferStrategy) String() string {
	switch b {
	case TB:
		return "TB"
	case SB:
		return "SB"
	case SBVS:
		return "SBVS"
	}
	return "?"
}

// Costs models the PN-side CPU time charged per engine step under
// simulation. The defaults are calibrated so that one 4-core PN saturates
// at roughly the paper's single-PN TPC-C throughput (§6.3.1).
type Costs struct {
	Begin    time.Duration // transaction setup
	ReadOp   time.Duration // per record read (decode, visibility)
	WriteOp  time.Duration // per buffered write (encode)
	IndexOp  time.Duration // per index traversal step driven locally
	CommitOp time.Duration // per applied update at commit
	Logic    time.Duration // per transaction application logic
}

// DefaultCosts returns the calibrated PN cost model.
func DefaultCosts() Costs {
	return Costs{
		Begin:    2 * time.Microsecond,
		ReadOp:   3 * time.Microsecond,
		WriteOp:  2 * time.Microsecond,
		IndexOp:  2 * time.Microsecond,
		CommitOp: 3 * time.Microsecond,
		Logic:    20 * time.Microsecond,
	}
}

// Config assembles a PN.
type Config struct {
	// ID names the node; it tags transaction-log entries for recovery.
	ID string
	// Workers is the number of synchronous worker threads (§6.1: "a
	// thread processes a transaction at a time; while waiting for an I/O
	// request to complete, another thread takes over").
	Workers int
	// Buffer selects the record-buffering strategy.
	Buffer BufferStrategy
	// SharedBufferSize caps the SB/SBVS buffer (entries).
	SharedBufferSize int
	// CacheUnitSize groups records per version-set entry under SBVS.
	CacheUnitSize int
	// Fanout is the B+tree node capacity.
	Fanout int
	// CacheIndexInner toggles B+tree inner-node caching (§5.3.1).
	CacheIndexInner bool
	// Costs is the CPU model (DefaultCosts if zero).
	Costs Costs
	// RidRange is how many rids one counter bump reserves per table.
	RidRange int64
	// SkipWriteValidation is a TEST-ONLY negative control for the
	// history checker: commits apply updates with blind puts instead of
	// LL/SC conditional writes and the running-conflict check of §4.1 is
	// skipped, deliberately permitting lost updates. Never enable it
	// outside a test that expects internal/histcheck to flag anomalies.
	SkipWriteValidation bool
}

func (c *Config) fill() {
	if c.ID == "" {
		c.ID = "pn"
	}
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.SharedBufferSize <= 0 {
		c.SharedBufferSize = 1 << 18
	}
	if c.CacheUnitSize <= 0 {
		c.CacheUnitSize = 10
	}
	if c.Fanout <= 0 {
		c.Fanout = 64
	}
	if c.Costs == (Costs{}) {
		c.Costs = DefaultCosts()
	}
	if c.RidRange <= 0 {
		c.RidRange = 256
	}
}

// PN is one processing node.
type PN struct {
	cfg  Config
	envr env.Full
	node env.Node
	sc   *store.Client
	cm   *commitmgr.Client
	log  *txlog.Log
	cat  *Catalog

	shared *sharedBuffer

	mu sanitize.Mutex
	// rec, when non-nil, observes the transaction history (histcheck).
	rec TxnRecorder
	// lastSnap is the snapshot of the most recently started transaction:
	// the Vmax of §5.5.2.
	lastSnap *mvcc.Snapshot
	// rid range cache per table id.
	ridNext map[uint32]uint64
	ridEnd  map[uint32]uint64

	jobs env.Queue

	// Counters.
	commits, aborts uint64
}

// New assembles a processing node on the given execution node. The caller
// supplies the shared-store client, commit-manager client and transport.
func New(cfg Config, envr env.Full, node env.Node, tr transport.Transport, sc *store.Client, cm *commitmgr.Client) *PN {
	cfg.fill()
	pn := &PN{
		cfg:     cfg,
		envr:    envr,
		node:    node,
		sc:      sc,
		cm:      cm,
		log:     txlog.New(sc),
		cat:     NewCatalog(sc, cfg.Fanout, cfg.CacheIndexInner),
		ridNext: make(map[uint32]uint64),
		ridEnd:  make(map[uint32]uint64),
		jobs:    envr.NewQueue(),
	}
	if cfg.Buffer != TB {
		pn.shared = newSharedBuffer(cfg.SharedBufferSize)
	}
	pn.mu.SetName("core.PN.mu")
	return pn
}

// ID returns the node's name.
func (pn *PN) ID() string { return pn.cfg.ID }

// Catalog returns the PN's table catalog.
func (pn *PN) Catalog() *Catalog { return pn.cat }

// Costs returns the PN's CPU cost model (workload code charges Logic).
func (pn *PN) Costs() Costs { return pn.cfg.Costs }

// Store returns the underlying store client (examples use it for scans).
func (pn *PN) Store() *store.Client { return pn.sc }

// Stats returns (commits, aborts).
func (pn *PN) Stats() (commits, aborts uint64) {
	pn.mu.Lock()
	defer pn.mu.Unlock()
	return pn.commits, pn.aborts
}

// StartWorkers launches the synchronous worker pool. Jobs submitted with
// Execute run on these workers; at most Workers transactions are in flight
// at once on this PN.
func (pn *PN) StartWorkers() {
	for i := 0; i < pn.cfg.Workers; i++ {
		pn.node.Go("worker", pn.workerLoop)
	}
}

// job is one queued unit of work with a completion future. The submitter's
// tracing scope rides along so the worker attributes its time (and spans)
// to the submitting transaction.
type job struct {
	fn   func(ctx env.Ctx)
	done env.Future
	sc   trace.Scope
	enq  time.Duration // submission time, for queue-wait attribution
}

func (pn *PN) workerLoop(ctx env.Ctx) {
	sc := ctx.Trace()
	for {
		v, ok := pn.jobs.Get(ctx)
		if !ok {
			return
		}
		j := v.(*job)
		if j.sc.R != nil {
			saved := *sc
			*sc = j.sc
			j.sc.Agg.Add(trace.CompPoolWait, ctx.Now()-j.enq)
			j.fn(ctx)
			*sc = saved
		} else {
			j.fn(ctx)
		}
		j.done.Set(nil)
	}
}

// Execute runs fn on one of the PN's workers and blocks until it finishes.
// This is how terminals drive the PN (§6.1's synchronous processing model).
func (pn *PN) Execute(ctx env.Ctx, fn func(ctx env.Ctx)) {
	j := &job{fn: fn, done: pn.envr.NewFuture()}
	if sc := ctx.Trace(); sc.R != nil {
		j.sc = *sc
		j.enq = ctx.Now()
		sc.R.Counter(pn.node.Name(), "jobqueue", int64(pn.jobs.Len()+1))
	}
	pn.jobs.Put(j)
	j.done.Get(ctx)
}

// Stop closes the job queue; workers drain and exit.
func (pn *PN) Stop() { pn.jobs.Close() }

// Serve registers the PN on the transport so the management node's failure
// detector can ping it. tr is the transport the PN was built with.
func (pn *PN) Serve(tr transport.Transport) error {
	return tr.Listen(pn.cfg.ID, pn.node, func(ctx env.Ctx, req []byte) []byte {
		if wire.PeekKind(req) == wire.KindPing {
			return []byte{byte(wire.KindPong)}
		}
		return []byte{byte(wire.KindInvalid)}
	})
}

// allocRid reserves a fresh rid for the table (range-cached).
func (pn *PN) allocRid(ctx env.Ctx, tableID uint32) (uint64, error) {
	pn.mu.Lock()
	if pn.ridNext[tableID] != 0 && pn.ridNext[tableID] <= pn.ridEnd[tableID] {
		rid := pn.ridNext[tableID]
		pn.ridNext[tableID]++
		pn.mu.Unlock()
		return rid, nil
	}
	pn.mu.Unlock()
	hi, err := pn.sc.CounterAdd(ctx, relational.RidCounterKey(tableID), pn.cfg.RidRange)
	if err != nil {
		return 0, err
	}
	pn.mu.Lock()
	lo := uint64(hi) - uint64(pn.cfg.RidRange) + 1
	if lo > pn.ridEnd[tableID] {
		pn.ridNext[tableID], pn.ridEnd[tableID] = lo, uint64(hi)
	}
	rid := pn.ridNext[tableID]
	pn.ridNext[tableID]++
	pn.mu.Unlock()
	return rid, nil
}

// BumpRidCounter advances a table's rid counter after bulk loading (the
// loader hands out rids itself).
func BumpRidCounter(ctx env.Ctx, sc *store.Client, tableID uint32, to uint64) error {
	cur, err := sc.CounterAdd(ctx, relational.RidCounterKey(tableID), 0)
	if err != nil {
		return err
	}
	if uint64(cur) < to {
		_, err = sc.CounterAdd(ctx, relational.RidCounterKey(tableID), int64(to-uint64(cur)))
	}
	return err
}
