package core_test

import (
	"fmt"
	"testing"
	"time"

	"tell/internal/commitmgr"
	"tell/internal/core"
	"tell/internal/env"
	"tell/internal/relational"
	"tell/internal/sim"
	"tell/internal/store"
	"tell/internal/testutil"
	"tell/internal/transport"
)

// engine is a full simulated Tell deployment: store cluster, one commit
// manager, and N processing nodes.
type engine struct {
	k       *sim.Kernel
	envr    env.Full
	net     *transport.SimNet
	cluster *store.Cluster
	cm      *commitmgr.Server
	pns     []*core.PN
	driver  env.Node
}

func newEngine(t *testing.T, nPNs int, buffer core.BufferStrategy) *engine {
	return newEngineRF(t, nPNs, buffer, 1)
}

// newEngineRF builds the deployment with an explicit replication factor.
func newEngineRF(t *testing.T, nPNs int, buffer core.BufferStrategy, rf int) *engine {
	t.Helper()
	k := sim.NewKernel(testutil.Seed(t, 21))
	envr := env.NewSim(k)
	net := transport.NewSimNet(k, transport.InfiniBand())
	cl, err := store.NewCluster(envr, net, store.ClusterConfig{NumNodes: 3, ReplicationFactor: rf})
	if err != nil {
		t.Fatal(err)
	}
	cmNode := envr.NewNode("cm0", 2)
	cm := commitmgr.New("cm0", "cm0", envr, cmNode, net, cl.NewClient(cmNode))
	if err := cm.Start(); err != nil {
		t.Fatal(err)
	}
	e := &engine{k: k, envr: envr, net: net, cluster: cl, cm: cm}
	for i := 0; i < nPNs; i++ {
		name := fmt.Sprintf("pn%d", i)
		node := envr.NewNode(name, 4)
		pn := core.New(core.Config{ID: name, Buffer: buffer}, envr, node, net,
			cl.NewClient(node), commitmgr.NewClient(envr, node, net, []string{"cm0"}))
		e.pns = append(e.pns, pn)
	}
	e.driver = envr.NewNode("driver", 4)
	return e
}

func (e *engine) run(t *testing.T, fn func(ctx env.Ctx)) {
	t.Helper()
	done := false
	e.driver.Go("test", func(ctx env.Ctx) {
		defer e.k.Stop() // also fires on t.Fatalf's Goexit
		fn(ctx)
		done = true
	})
	if err := e.k.RunUntil(sim.Time(3000 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("test activity did not finish")
	}
	e.k.Shutdown()
}

// accountsSchema is a tiny bank table used by many tests.
func accountsSchema() *relational.TableSchema {
	return &relational.TableSchema{
		Name: "accounts",
		Cols: []relational.Column{
			{Name: "id", Type: relational.TInt64},
			{Name: "owner", Type: relational.TString},
			{Name: "balance", Type: relational.TInt64},
		},
		PKCols:  []int{0},
		Indexes: []relational.IndexSchema{{Name: "byowner", Cols: []int{1}}},
	}
}

func account(id int64, owner string, balance int64) relational.Row {
	return relational.Row{relational.I64(id), relational.Str(owner), relational.I64(balance)}
}

// mustCommit fails the test on any commit error.
func mustCommit(t *testing.T, ctx env.Ctx, txn *core.Txn) {
	t.Helper()
	if err := txn.Commit(ctx); err != nil {
		t.Fatalf("commit: %v", err)
	}
}

func TestInsertCommitReadBack(t *testing.T) {
	e := newEngine(t, 2, core.TB)
	e.run(t, func(ctx env.Ctx) {
		table, err := e.pns[0].Catalog().CreateTable(ctx, accountsSchema())
		if err != nil {
			t.Fatal(err)
		}
		txn, err := e.pns[0].Begin(ctx)
		if err != nil {
			t.Fatal(err)
		}
		rid, err := txn.Insert(ctx, table, account(1, "alice", 100))
		if err != nil {
			t.Fatal(err)
		}
		// Own write is visible before commit.
		row, found, err := txn.Read(ctx, table, rid)
		if err != nil || !found || row[2].I != 100 {
			t.Fatalf("own read: %v %v %v", row, found, err)
		}
		mustCommit(t, ctx, txn)

		// Visible from ANOTHER PN: shared data, no ownership (§2.1).
		t2, _ := e.pns[1].Catalog().OpenTable(ctx, "accounts")
		txn2, _ := e.pns[1].Begin(ctx)
		gotRid, row, found, err := txn2.LookupPK(ctx, t2, relational.I64(1))
		if err != nil || !found || gotRid != rid || row[1].S != "alice" {
			t.Fatalf("cross-PN read: rid=%d row=%v found=%v err=%v", gotRid, row, found, err)
		}
		mustCommit(t, ctx, txn2)
	})
}

func TestSnapshotIsolationInvisibility(t *testing.T) {
	e := newEngine(t, 1, core.TB)
	e.run(t, func(ctx env.Ctx) {
		pn := e.pns[0]
		table, _ := pn.Catalog().CreateTable(ctx, accountsSchema())
		setup, _ := pn.Begin(ctx)
		rid, _ := setup.Insert(ctx, table, account(1, "alice", 100))
		mustCommit(t, ctx, setup)

		// reader starts BEFORE writer commits.
		reader, _ := pn.Begin(ctx)
		writer, _ := pn.Begin(ctx)
		if ok, err := writer.Update(ctx, table, rid, account(1, "alice", 999)); !ok || err != nil {
			t.Fatalf("update: %v %v", ok, err)
		}
		mustCommit(t, ctx, writer)

		// The reader's snapshot predates the writer: it must see 100.
		row, found, err := reader.Read(ctx, table, rid)
		if err != nil || !found || row[2].I != 100 {
			t.Fatalf("snapshot read: %v %v %v", row, found, err)
		}
		mustCommit(t, ctx, reader)

		// A fresh transaction sees 999.
		after, _ := pn.Begin(ctx)
		row, _, _ = after.Read(ctx, table, rid)
		if row[2].I != 999 {
			t.Fatalf("fresh read: %v", row)
		}
		mustCommit(t, ctx, after)
	})
}

func TestRepeatableReads(t *testing.T) {
	e := newEngine(t, 1, core.TB)
	e.run(t, func(ctx env.Ctx) {
		pn := e.pns[0]
		table, _ := pn.Catalog().CreateTable(ctx, accountsSchema())
		setup, _ := pn.Begin(ctx)
		rid, _ := setup.Insert(ctx, table, account(1, "a", 1))
		mustCommit(t, ctx, setup)

		reader, _ := pn.Begin(ctx)
		r1, _, _ := reader.Read(ctx, table, rid)
		writer, _ := pn.Begin(ctx)
		writer.Update(ctx, table, rid, account(1, "a", 2))
		mustCommit(t, ctx, writer)
		r2, _, _ := reader.Read(ctx, table, rid)
		if r1[2].I != r2[2].I {
			t.Fatalf("read not repeatable: %d then %d", r1[2].I, r2[2].I)
		}
		mustCommit(t, ctx, reader)
	})
}

func TestWriteWriteConflictAborts(t *testing.T) {
	e := newEngine(t, 2, core.TB)
	e.run(t, func(ctx env.Ctx) {
		table, _ := e.pns[0].Catalog().CreateTable(ctx, accountsSchema())
		setup, _ := e.pns[0].Begin(ctx)
		rid, _ := setup.Insert(ctx, table, account(1, "a", 10))
		mustCommit(t, ctx, setup)
		t2, _ := e.pns[1].Catalog().OpenTable(ctx, "accounts")

		// Two transactions on different PNs update the same record.
		txA, _ := e.pns[0].Begin(ctx)
		txB, _ := e.pns[1].Begin(ctx)
		txA.Update(ctx, table, rid, account(1, "a", 11))
		txB.Update(ctx, t2, rid, account(1, "a", 22))
		if err := txA.Commit(ctx); err != nil {
			t.Fatalf("first committer must win: %v", err)
		}
		if err := txB.Commit(ctx); err != core.ErrConflict {
			t.Fatalf("second committer must get ErrConflict, got %v", err)
		}
		// State reflects only A.
		check, _ := e.pns[0].Begin(ctx)
		row, _, _ := check.Read(ctx, table, rid)
		if row[2].I != 11 {
			t.Fatalf("balance = %d, want 11", row[2].I)
		}
		mustCommit(t, ctx, check)
	})
}

func TestConflictRollbackLeavesNoTrace(t *testing.T) {
	e := newEngine(t, 1, core.TB)
	e.run(t, func(ctx env.Ctx) {
		pn := e.pns[0]
		table, _ := pn.Catalog().CreateTable(ctx, accountsSchema())
		setup, _ := pn.Begin(ctx)
		rid1, _ := setup.Insert(ctx, table, account(1, "a", 1))
		rid2, _ := setup.Insert(ctx, table, account(2, "b", 2))
		mustCommit(t, ctx, setup)

		// txB writes rid1 (will succeed apply) and rid2 (will conflict).
		txA, _ := pn.Begin(ctx)
		txB, _ := pn.Begin(ctx)
		txB.Update(ctx, table, rid1, account(1, "a", 100))
		txB.Update(ctx, table, rid2, account(2, "b", 200))
		txA.Update(ctx, table, rid2, account(2, "b", 42))
		mustCommit(t, ctx, txA)
		if err := txB.Commit(ctx); err != core.ErrConflict {
			t.Fatalf("want conflict, got %v", err)
		}
		// rid1 must have been rolled back to its original value.
		check, _ := pn.Begin(ctx)
		row, _, _ := check.Read(ctx, table, rid1)
		if row[2].I != 1 {
			t.Fatalf("rid1 balance = %d after rollback, want 1", row[2].I)
		}
		row, _, _ = check.Read(ctx, table, rid2)
		if row[2].I != 42 {
			t.Fatalf("rid2 balance = %d, want 42", row[2].I)
		}
		mustCommit(t, ctx, check)
	})
}

func TestManualAbort(t *testing.T) {
	e := newEngine(t, 1, core.TB)
	e.run(t, func(ctx env.Ctx) {
		pn := e.pns[0]
		table, _ := pn.Catalog().CreateTable(ctx, accountsSchema())
		txn, _ := pn.Begin(ctx)
		txn.Insert(ctx, table, account(1, "ghost", 0))
		if err := txn.Abort(ctx); err != nil {
			t.Fatal(err)
		}
		if err := txn.Commit(ctx); err != core.ErrTxnDone {
			t.Fatalf("commit after abort: %v", err)
		}
		check, _ := pn.Begin(ctx)
		_, _, found, _ := check.LookupPK(ctx, table, relational.I64(1))
		if found {
			t.Fatal("aborted insert visible")
		}
		mustCommit(t, ctx, check)
	})
}

func TestDeleteVisibility(t *testing.T) {
	e := newEngine(t, 1, core.TB)
	e.run(t, func(ctx env.Ctx) {
		pn := e.pns[0]
		table, _ := pn.Catalog().CreateTable(ctx, accountsSchema())
		setup, _ := pn.Begin(ctx)
		rid, _ := setup.Insert(ctx, table, account(1, "a", 1))
		mustCommit(t, ctx, setup)

		old, _ := pn.Begin(ctx) // snapshot before the delete
		del, _ := pn.Begin(ctx)
		if ok, _ := del.Delete(ctx, table, rid); !ok {
			t.Fatal("delete found nothing")
		}
		mustCommit(t, ctx, del)

		// Old snapshot still sees the row.
		if _, found, _ := old.Read(ctx, table, rid); !found {
			t.Fatal("old snapshot lost the row")
		}
		mustCommit(t, ctx, old)
		// New snapshot does not.
		fresh, _ := pn.Begin(ctx)
		if _, found, _ := fresh.Read(ctx, table, rid); found {
			t.Fatal("deleted row visible")
		}
		// Double delete reports not-found.
		if ok, _ := fresh.Delete(ctx, table, rid); ok {
			t.Fatal("delete of deleted row reported ok")
		}
		mustCommit(t, ctx, fresh)
	})
}

func TestSecondaryIndexVersionUnaware(t *testing.T) {
	e := newEngine(t, 1, core.TB)
	e.run(t, func(ctx env.Ctx) {
		pn := e.pns[0]
		table, _ := pn.Catalog().CreateTable(ctx, accountsSchema())
		setup, _ := pn.Begin(ctx)
		rid, _ := setup.Insert(ctx, table, account(1, "alice", 1))
		mustCommit(t, ctx, setup)

		// A snapshot from before the rename.
		old, _ := pn.Begin(ctx)

		upd, _ := pn.Begin(ctx)
		upd.Update(ctx, table, rid, account(1, "bob", 1))
		mustCommit(t, ctx, upd)

		// Old snapshot finds the row under the OLD owner value.
		var oldHits []uint64
		old.ScanIndexPrefix(ctx, table, "byowner", []relational.Value{relational.Str("alice")},
			func(en core.IndexEntry) bool {
				oldHits = append(oldHits, en.Rid)
				return true
			})
		if len(oldHits) != 1 || oldHits[0] != rid {
			t.Fatalf("old snapshot via alice: %v", oldHits)
		}
		// And NOT under bob (the visible version there is alice).
		var bobOld []uint64
		old.ScanIndexPrefix(ctx, table, "byowner", []relational.Value{relational.Str("bob")},
			func(en core.IndexEntry) bool {
				bobOld = append(bobOld, en.Rid)
				return true
			})
		if len(bobOld) != 0 {
			t.Fatalf("old snapshot via bob: %v", bobOld)
		}
		mustCommit(t, ctx, old)

		// A fresh snapshot finds it under bob, not alice.
		fresh, _ := pn.Begin(ctx)
		var freshAlice, freshBob []uint64
		fresh.ScanIndexPrefix(ctx, table, "byowner", []relational.Value{relational.Str("alice")},
			func(en core.IndexEntry) bool {
				freshAlice = append(freshAlice, en.Rid)
				return true
			})
		fresh.ScanIndexPrefix(ctx, table, "byowner", []relational.Value{relational.Str("bob")},
			func(en core.IndexEntry) bool {
				freshBob = append(freshBob, en.Rid)
				return true
			})
		if len(freshAlice) != 0 || len(freshBob) != 1 {
			t.Fatalf("fresh: alice=%v bob=%v", freshAlice, freshBob)
		}
		mustCommit(t, ctx, fresh)
	})
}

func TestIndexEntryGCOnRead(t *testing.T) {
	e := newEngine(t, 1, core.TB)
	e.run(t, func(ctx env.Ctx) {
		pn := e.pns[0]
		table, _ := pn.Catalog().CreateTable(ctx, accountsSchema())
		setup, _ := pn.Begin(ctx)
		rid, _ := setup.Insert(ctx, table, account(1, "alice", 1))
		mustCommit(t, ctx, setup)
		// Rename several times; each adds an index entry.
		for i, name := range []string{"bob", "carol", "dave"} {
			txn, _ := pn.Begin(ctx)
			txn.Update(ctx, table, rid, account(1, name, int64(i)))
			mustCommit(t, ctx, txn)
		}
		// Once the old versions fall below the lav (all transactions
		// finished), reads through the stale entries must collect them.
		ctx.Sleep(50 * time.Millisecond) // let the idle-range close advance the lav
		probe, _ := pn.Begin(ctx)
		for _, name := range []string{"alice", "bob", "carol"} {
			probe.ScanIndexPrefix(ctx, table, "byowner", []relational.Value{relational.Str(name)},
				func(en core.IndexEntry) bool { return true })
		}
		mustCommit(t, ctx, probe)
		// The stale entries are now gone: a second scan sees an empty
		// tree range without touching any record.
		probe2, _ := pn.Begin(ctx)
		for _, name := range []string{"alice", "bob", "carol"} {
			n := 0
			probe2.ScanIndexPrefix(ctx, table, "byowner", []relational.Value{relational.Str(name)},
				func(en core.IndexEntry) bool { n++; return true })
			if n != 0 {
				t.Fatalf("stale entries for %s still produce rows", name)
			}
		}
		// The live entry works.
		found := 0
		probe2.ScanIndexPrefix(ctx, table, "byowner", []relational.Value{relational.Str("dave")},
			func(en core.IndexEntry) bool { found++; return true })
		if found != 1 {
			t.Fatalf("dave found %d times", found)
		}
		mustCommit(t, ctx, probe2)
	})
}

func TestEagerGCBoundsVersionGrowth(t *testing.T) {
	e := newEngine(t, 1, core.TB)
	e.run(t, func(ctx env.Ctx) {
		pn := e.pns[0]
		table, _ := pn.Catalog().CreateTable(ctx, accountsSchema())
		setup, _ := pn.Begin(ctx)
		rid, _ := setup.Insert(ctx, table, account(1, "a", 0))
		mustCommit(t, ctx, setup)
		// 50 sequential updates with idle pauses so the lav advances;
		// eager GC during each update must keep the version count small.
		for i := 0; i < 50; i++ {
			txn, _ := pn.Begin(ctx)
			txn.Update(ctx, table, rid, account(1, "a", int64(i)))
			mustCommit(t, ctx, txn)
			if i%10 == 0 {
				ctx.Sleep(10 * time.Millisecond)
			}
		}
		ctx.Sleep(10 * time.Millisecond)
		// One more update triggers the final prune.
		txn, _ := pn.Begin(ctx)
		txn.Update(ctx, table, rid, account(1, "a", 999))
		mustCommit(t, ctx, txn)
		// Inspect the raw record.
		raw, _, err := pn.Store().Get(ctx, relational.RecordKey(table.Schema.ID, rid))
		if err != nil {
			t.Fatal(err)
		}
		nv := countVersions(t, raw)
		if nv > 5 {
			t.Fatalf("record has %d versions; eager GC failed", nv)
		}
	})
}

func TestLazyGCPass(t *testing.T) {
	e := newEngine(t, 1, core.TB)
	e.run(t, func(ctx env.Ctx) {
		pn := e.pns[0]
		table, _ := pn.Catalog().CreateTable(ctx, accountsSchema())
		setup, _ := pn.Begin(ctx)
		var rids []uint64
		for i := int64(0); i < 20; i++ {
			rid, _ := setup.Insert(ctx, table, account(i, "x", i))
			rids = append(rids, rid)
		}
		mustCommit(t, ctx, setup)
		// Touch every record a few times without eager-GC opportunity
		// (lav lags while transactions overlap); then let lav advance.
		for round := 0; round < 3; round++ {
			txn, _ := pn.Begin(ctx)
			for i, rid := range rids {
				txn.Update(ctx, table, rid, account(int64(i), "x", int64(round)))
			}
			mustCommit(t, ctx, txn)
		}
		// Delete one row entirely.
		del, _ := pn.Begin(ctx)
		del.Delete(ctx, table, rids[0])
		mustCommit(t, ctx, del)
		ctx.Sleep(50 * time.Millisecond) // lav catches up
		res, err := pn.LazyGC(ctx, []*core.TableInfo{table})
		if err != nil {
			t.Fatal(err)
		}
		if res.RecordsScanned == 0 || res.RecordsPruned == 0 {
			t.Fatalf("gc did nothing: %+v", res)
		}
		if res.RecordsRemoved != 1 {
			t.Fatalf("deleted record not removed: %+v", res)
		}
		if res.LogTruncated == 0 {
			t.Fatalf("log not truncated: %+v", res)
		}
		// Data still correct afterwards.
		check, _ := pn.Begin(ctx)
		row, found, _ := check.Read(ctx, table, rids[5])
		if !found || row[2].I != 2 {
			t.Fatalf("post-GC read: %v %v", row, found)
		}
		if _, found, _ := check.Read(ctx, table, rids[0]); found {
			t.Fatal("deleted record visible after GC")
		}
		mustCommit(t, ctx, check)
	})
}

func TestDuplicatePrimaryKeyRejected(t *testing.T) {
	e := newEngine(t, 2, core.TB)
	e.run(t, func(ctx env.Ctx) {
		table, _ := e.pns[0].Catalog().CreateTable(ctx, accountsSchema())
		t2, _ := e.pns[1].Catalog().OpenTable(ctx, "accounts")
		txn, _ := e.pns[0].Begin(ctx)
		txn.Insert(ctx, table, account(7, "first", 0))
		mustCommit(t, ctx, txn)
		dup, _ := e.pns[1].Begin(ctx)
		dup.Insert(ctx, t2, account(7, "second", 0))
		if err := dup.Commit(ctx); err != core.ErrDuplicateKey {
			t.Fatalf("want ErrDuplicateKey, got %v", err)
		}
		check, _ := e.pns[0].Begin(ctx)
		_, row, found, _ := check.LookupPK(ctx, table, relational.I64(7))
		if !found || row[1].S != "first" {
			t.Fatalf("winner: %v %v", row, found)
		}
		mustCommit(t, ctx, check)
	})
}

// TestBankTransfersPreserveTotal is the classic isolation litmus test:
// concurrent transfers with conflict-retry must preserve the total balance.
func TestBankTransfersPreserveTotal(t *testing.T) {
	for _, buf := range []core.BufferStrategy{core.TB, core.SB, core.SBVS} {
		buf := buf
		t.Run(buf.String(), func(t *testing.T) {
			e := newEngine(t, 2, buf)
			const nAcc, nWorkers, nTransfers = 10, 6, 30
			finished := 0
			var rids []uint64
			e.driver.Go("setup", func(ctx env.Ctx) {
				table, err := e.pns[0].Catalog().CreateTable(ctx, accountsSchema())
				if err != nil {
					t.Error(err)
					e.k.Stop()
					return
				}
				setup, _ := e.pns[0].Begin(ctx)
				for i := int64(0); i < nAcc; i++ {
					rid, _ := setup.Insert(ctx, table, account(i, "acct", 100))
					rids = append(rids, rid)
				}
				mustCommit(t, ctx, setup)
				for w := 0; w < nWorkers; w++ {
					w := w
					pn := e.pns[w%len(e.pns)]
					e.driver.Go("worker", func(ctx env.Ctx) {
						tbl, _ := pn.Catalog().OpenTable(ctx, "accounts")
						rng := ctx.Rand()
						for i := 0; i < nTransfers; i++ {
							from := rids[rng.Intn(nAcc)]
							to := rids[rng.Intn(nAcc)]
							if from == to {
								continue
							}
							for {
								txn, err := pn.Begin(ctx)
								if err != nil {
									t.Error(err)
									return
								}
								fr, ok1, _ := txn.Read(ctx, tbl, from)
								tr, ok2, _ := txn.Read(ctx, tbl, to)
								if !ok1 || !ok2 {
									t.Error("account vanished")
									return
								}
								txn.Update(ctx, tbl, from, account(fr[0].I, "acct", fr[2].I-1))
								txn.Update(ctx, tbl, to, account(tr[0].I, "acct", tr[2].I+1))
								err = txn.Commit(ctx)
								if err == nil {
									break
								}
								if err != core.ErrConflict {
									t.Errorf("commit: %v", err)
									return
								}
							}
						}
						finished++
						if finished == nWorkers {
							// Verify the invariant.
							check, _ := pn.Begin(ctx)
							total := int64(0)
							for _, rid := range rids {
								row, _, _ := check.Read(ctx, tbl, rid)
								total += row[2].I
							}
							if total != nAcc*100 {
								t.Errorf("total = %d, want %d", total, nAcc*100)
							}
							check.Commit(ctx)
							e.k.Stop()
						}
					})
				}
			})
			if err := e.k.RunUntil(sim.Time(3000 * time.Second)); err != nil {
				t.Fatal(err)
			}
			if finished != nWorkers {
				t.Fatalf("only %d workers finished", finished)
			}
			e.k.Shutdown()
		})
	}
}

func TestBufferStrategiesSeeConsistentData(t *testing.T) {
	for _, buf := range []core.BufferStrategy{core.SB, core.SBVS} {
		buf := buf
		t.Run(buf.String(), func(t *testing.T) {
			e := newEngine(t, 2, buf)
			e.run(t, func(ctx env.Ctx) {
				table, _ := e.pns[0].Catalog().CreateTable(ctx, accountsSchema())
				t2, _ := e.pns[1].Catalog().OpenTable(ctx, "accounts")
				setup, _ := e.pns[0].Begin(ctx)
				rid, _ := setup.Insert(ctx, table, account(1, "a", 1))
				mustCommit(t, ctx, setup)

				// PN1 caches the record.
				r1, _ := e.pns[1].Begin(ctx)
				row, _, _ := r1.Read(ctx, t2, rid)
				if row[2].I != 1 {
					t.Fatalf("initial read: %v", row)
				}
				mustCommit(t, ctx, r1)

				// PN0 updates it remotely.
				u, _ := e.pns[0].Begin(ctx)
				u.Update(ctx, table, rid, account(1, "a", 2))
				mustCommit(t, ctx, u)

				// A NEW transaction on PN1 must see the update even
				// though the record sits in PN1's shared buffer.
				r2, _ := e.pns[1].Begin(ctx)
				row, _, _ = r2.Read(ctx, t2, rid)
				if row[2].I != 2 {
					t.Fatalf("%v buffer served stale data: %v", buf, row)
				}
				mustCommit(t, ctx, r2)
			})
		})
	}
}

func TestSharedBufferProducesHits(t *testing.T) {
	e := newEngine(t, 1, core.SB)
	e.run(t, func(ctx env.Ctx) {
		pn := e.pns[0]
		table, _ := pn.Catalog().CreateTable(ctx, accountsSchema())
		setup, _ := pn.Begin(ctx)
		rid, _ := setup.Insert(ctx, table, account(1, "a", 1))
		mustCommit(t, ctx, setup)
		// Many read-only transactions on the same record: later ones can
		// reuse the buffered copy (their snapshots are supersets).
		for i := 0; i < 20; i++ {
			txn, _ := pn.Begin(ctx)
			txn.Read(ctx, table, rid)
			mustCommit(t, ctx, txn)
		}
		if hr := pn.SharedBufferHitRatio(); hr <= 0 {
			t.Fatalf("hit ratio = %v, expected > 0", hr)
		}
	})
}

func TestScanTableSnapshotConsistent(t *testing.T) {
	e := newEngine(t, 1, core.TB)
	e.run(t, func(ctx env.Ctx) {
		pn := e.pns[0]
		table, _ := pn.Catalog().CreateTable(ctx, accountsSchema())
		setup, _ := pn.Begin(ctx)
		for i := int64(0); i < 15; i++ {
			setup.Insert(ctx, table, account(i, "s", i))
		}
		mustCommit(t, ctx, setup)

		scanner, _ := pn.Begin(ctx)
		// Concurrent insert must not appear in scanner's snapshot.
		w, _ := pn.Begin(ctx)
		w.Insert(ctx, table, account(99, "late", 0))
		mustCommit(t, ctx, w)

		count := 0
		sum := int64(0)
		scanner.ScanTable(ctx, table, func(rid uint64, row relational.Row) bool {
			count++
			sum += row[2].I
			return true
		})
		if count != 15 || sum != 105 {
			t.Fatalf("scan saw %d rows (sum %d), want 15 (105)", count, sum)
		}
		mustCommit(t, ctx, scanner)
	})
}

func TestWriteSkewIsAllowed(t *testing.T) {
	// SI famously permits write skew (§4.1: "some anomalies prevent SI to
	// guarantee serializability"). This documents the behaviour.
	e := newEngine(t, 1, core.TB)
	e.run(t, func(ctx env.Ctx) {
		pn := e.pns[0]
		table, _ := pn.Catalog().CreateTable(ctx, accountsSchema())
		setup, _ := pn.Begin(ctx)
		r1, _ := setup.Insert(ctx, table, account(1, "x", 50))
		r2, _ := setup.Insert(ctx, table, account(2, "y", 50))
		mustCommit(t, ctx, setup)

		// Each txn checks the sum and withdraws from a DIFFERENT row:
		// disjoint write sets, so both commit under SI.
		a, _ := pn.Begin(ctx)
		b, _ := pn.Begin(ctx)
		a.Read(ctx, table, r1)
		a.Read(ctx, table, r2)
		b.Read(ctx, table, r1)
		b.Read(ctx, table, r2)
		a.Update(ctx, table, r1, account(1, "x", -30))
		b.Update(ctx, table, r2, account(2, "y", -30))
		if err := a.Commit(ctx); err != nil {
			t.Fatalf("a: %v", err)
		}
		if err := b.Commit(ctx); err != nil {
			t.Fatalf("b (write skew should be permitted under SI): %v", err)
		}
	})
}

func TestReadOnlyTransactionCheap(t *testing.T) {
	e := newEngine(t, 1, core.TB)
	e.run(t, func(ctx env.Ctx) {
		pn := e.pns[0]
		table, _ := pn.Catalog().CreateTable(ctx, accountsSchema())
		setup, _ := pn.Begin(ctx)
		rid, _ := setup.Insert(ctx, table, account(1, "a", 1))
		mustCommit(t, ctx, setup)
		txn, _ := pn.Begin(ctx)
		txn.Read(ctx, table, rid)
		if err := txn.Commit(ctx); err != nil {
			t.Fatalf("read-only commit: %v", err)
		}
		// The setup commit plus the read-only commit.
		commits, aborts := pn.Stats()
		if commits != 2 || aborts != 0 {
			t.Fatalf("stats: %d commits %d aborts", commits, aborts)
		}
	})
}

func TestDeleteOwnInsertWithinTransaction(t *testing.T) {
	e := newEngine(t, 1, core.TB)
	e.run(t, func(ctx env.Ctx) {
		pn := e.pns[0]
		table, _ := pn.Catalog().CreateTable(ctx, accountsSchema())
		txn, _ := pn.Begin(ctx)
		rid, _ := txn.Insert(ctx, table, account(1, "ephemeral", 0))
		rid2, _ := txn.Insert(ctx, table, account(2, "kept", 0))
		if ok, err := txn.Delete(ctx, table, rid); !ok || err != nil {
			t.Fatalf("delete own insert: %v %v", ok, err)
		}
		// The deleted insert is gone even within the transaction.
		if _, found, _ := txn.Read(ctx, table, rid); found {
			t.Fatal("deleted own insert still readable")
		}
		mustCommit(t, ctx, txn)
		check, _ := pn.Begin(ctx)
		if _, _, found, _ := check.LookupPK(ctx, table, relational.I64(1)); found {
			t.Fatal("ephemeral row committed")
		}
		if row, found, _ := check.Read(ctx, table, rid2); !found || row[1].S != "kept" {
			t.Fatalf("kept row: %v %v", row, found)
		}
		mustCommit(t, ctx, check)
	})
}

func TestUpdateOwnInsertWithinTransaction(t *testing.T) {
	e := newEngine(t, 1, core.TB)
	e.run(t, func(ctx env.Ctx) {
		pn := e.pns[0]
		table, _ := pn.Catalog().CreateTable(ctx, accountsSchema())
		txn, _ := pn.Begin(ctx)
		rid, _ := txn.Insert(ctx, table, account(5, "v1", 0))
		// "Further updates to the record directly modify the newly added
		// version" (§5.1): still one version at commit.
		if ok, err := txn.Update(ctx, table, rid, account(5, "v2", 1)); !ok || err != nil {
			t.Fatalf("update own insert: %v %v", ok, err)
		}
		mustCommit(t, ctx, txn)
		check, _ := pn.Begin(ctx)
		_, row, found, _ := check.LookupPK(ctx, table, relational.I64(5))
		if !found || row[1].S != "v2" {
			t.Fatalf("row: %v %v", row, found)
		}
		raw, _, err := pn.Store().Get(ctx, relational.RecordKey(table.Schema.ID, rid))
		if err != nil {
			t.Fatal(err)
		}
		if n := countVersions(t, raw); n != 1 {
			t.Fatalf("record has %d versions, want 1", n)
		}
		mustCommit(t, ctx, check)
	})
}
