package core

import (
	"sync"
	"time"

	"tell/internal/env"
	"tell/internal/mvcc"
	"tell/internal/relational"
	"tell/internal/trace"
	"tell/internal/wire"
)

// This file implements the transaction-side of the paper's aggressive
// batching (§5.1): multi-record reads travel in single requests, and the
// independent B+tree operations of commit-time index maintenance run
// concurrently so the PN-wide request batcher can coalesce them.

// prefetch loads the records for the given rids into the transaction buffer
// with one batched storage request (records already buffered are skipped).
// Only the direct fetch path batches; the shared-buffer strategies fall
// back to their per-record validation protocols.
func (t *Txn) prefetch(ctx env.Ctx, table *TableInfo, rids []uint64) error {
	if t.pn.cfg.Buffer != TB {
		for _, rid := range rids {
			if _, err := t.readRecord(ctx, relational.RecordKey(table.Schema.ID, rid)); err != nil {
				return err
			}
		}
		return nil
	}
	var ops []wire.Op
	var keys []string
	for _, rid := range rids {
		key := relational.RecordKey(table.Schema.ID, rid)
		ks := string(key)
		if _, ok := t.reads[ks]; ok {
			continue
		}
		if _, ok := t.writes[ks]; ok {
			continue
		}
		ops = append(ops, wire.Op{Code: wire.OpGet, Key: key})
		keys = append(keys, ks)
	}
	if len(ops) == 0 {
		return nil
	}
	ctx.Work(time.Duration(len(ops)) * t.pn.cfg.Costs.ReadOp)
	results, err := t.pn.sc.Exec(ctx, ops)
	if err != nil {
		return err
	}
	for i, res := range results {
		re := &readEntry{}
		switch res.Status {
		case wire.StatusOK:
			rec, err := mvcc.Decode(res.Val)
			if err != nil {
				return err
			}
			re.rec = rec
			re.stamp = res.Stamp
		case wire.StatusNotFound:
		default:
			return statusToErr(res.Status)
		}
		t.reads[keys[i]] = re
	}
	return nil
}

// statusToErr maps non-OK statuses for the prefetch path.
func statusToErr(s wire.Status) error {
	switch s {
	case wire.StatusConflict:
		return ErrConflict
	default:
		return &storeStatusError{s}
	}
}

type storeStatusError struct{ s wire.Status }

func (e *storeStatusError) Error() string { return "core: storage status " + e.s.String() }

// LookupRids resolves several primary keys to rids concurrently: the tree
// traversals run as parallel sub-activities, so their leaf fetches coalesce
// in the client batcher. Missing keys yield rid 0.
func (t *Txn) LookupRids(ctx env.Ctx, table *TableInfo, pkVals [][]relational.Value) ([]uint64, error) {
	rids := make([]uint64, len(pkVals))
	if len(pkVals) == 0 {
		return rids, nil
	}
	if len(pkVals) == 1 {
		val, ok, err := table.PK.Lookup(ctx, relational.EncodeKey(pkVals[0]...))
		if err != nil {
			return nil, err
		}
		if ok {
			rids[0] = relational.RidFromIndexVal(val)
		}
		return rids, nil
	}
	var mu sync.Mutex
	var firstErr error
	futs := make([]env.Future, len(pkVals))
	for i := range pkVals {
		i := i
		key := relational.EncodeKey(pkVals[i]...)
		futs[i] = t.pn.envr.NewFuture()
		ctx.Go("pk-lookup", func(lctx env.Ctx) {
			val, ok, err := table.PK.Lookup(lctx, key)
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			} else if ok {
				rids[i] = relational.RidFromIndexVal(val)
			}
			futs[i].Set(nil)
		})
	}
	waitFutures(ctx, futs)
	ctx.Work(time.Duration(len(pkVals)) * t.pn.cfg.Costs.IndexOp)
	return rids, firstErr
}

// waitFutures blocks on all futures and charges the wait to the remote
// component of the driving transaction's breakdown: the sub-activities run
// with their own contexts (no aggregator), so from the caller's viewpoint
// this is time spent waiting on remote work.
func waitFutures(ctx env.Ctx, futs []env.Future) {
	sc := ctx.Trace()
	if sc.Agg == nil {
		for _, f := range futs {
			f.Get(ctx)
		}
		return
	}
	t0 := ctx.Now()
	for _, f := range futs {
		f.Get(ctx)
	}
	sc.Agg.Add(trace.CompRemote, ctx.Now()-t0)
}

// ReadMany resolves primary keys to visible rows with batched traffic:
// concurrent index lookups followed by one batched record fetch. Result i
// is nil when pkVals[i] has no visible row.
func (t *Txn) ReadMany(ctx env.Ctx, table *TableInfo, pkVals [][]relational.Value) (rids []uint64, rows []relational.Row, err error) {
	if t.state != StateRunning {
		return nil, nil, ErrTxnDone
	}
	rids, err = t.LookupRids(ctx, table, pkVals)
	if err != nil {
		return nil, nil, err
	}
	var present []uint64
	for _, rid := range rids {
		if rid != 0 {
			present = append(present, rid)
		}
	}
	if err := t.prefetch(ctx, table, present); err != nil {
		return nil, nil, err
	}
	rows = make([]relational.Row, len(pkVals))
	for i, rid := range rids {
		if rid == 0 {
			continue
		}
		row, found, err := t.Read(ctx, table, rid)
		if err != nil {
			return nil, nil, err
		}
		if found {
			rows[i] = row
		} else {
			rids[i] = 0
		}
	}
	return rids, rows, nil
}

// parallelIndexOps runs independent index-maintenance closures concurrently
// and returns the first error. ErrDuplicateKey wins over other errors so
// commit can classify the outcome deterministically.
func (t *Txn) parallelIndexOps(ctx env.Ctx, ops []func(env.Ctx) error) error {
	if len(ops) == 0 {
		return nil
	}
	if len(ops) == 1 {
		return ops[0](ctx)
	}
	var mu sync.Mutex
	var dupErr, firstErr error
	futs := make([]env.Future, len(ops))
	for i, op := range ops {
		i, op := i, op
		futs[i] = t.pn.envr.NewFuture()
		ctx.Go("index-op", func(ictx env.Ctx) {
			if err := op(ictx); err != nil {
				mu.Lock()
				if err == ErrDuplicateKey {
					dupErr = err
				} else if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
			futs[i].Set(nil)
		})
	}
	waitFutures(ctx, futs)
	if dupErr != nil {
		return dupErr
	}
	return firstErr
}
