package core

import (
	"tell/internal/env"
	"tell/internal/relational"
	"tell/internal/store"
)

// ScanTableFiltered is the push-down variant of ScanTable (§5.2): the
// storage nodes evaluate pred and return only the projected columns of
// matching rows visible in this transaction's snapshot. proj lists column
// positions (nil = all columns); the rows passed to fn follow the projected
// order. Compared with ScanTable, only matching projected bytes cross the
// network.
func (t *Txn) ScanTableFiltered(ctx env.Ctx, table *TableInfo, pred *store.Predicate, proj []int, fn func(rid uint64, row relational.Row) bool) error {
	if t.state != StateRunning {
		return ErrTxnDone
	}
	spec := &store.ScanSpec{
		Schema:   table.Schema,
		Snapshot: t.snap,
		Pred:     pred,
		Proj:     proj,
	}
	projected := spec.ProjectedSchema()
	lo, hi := relational.RecordPrefix(table.Schema.ID)
	pairs, err := t.pn.sc.ScanFiltered(ctx, lo, hi, spec, 0)
	if err != nil {
		return err
	}
	for _, p := range pairs {
		ctx.Work(t.pn.cfg.Costs.ReadOp / 2)
		rid, ok := relational.RidFromRecordKey(p.Key)
		if !ok {
			continue
		}
		row, err := relational.DecodeRow(projected, p.Val)
		if err != nil {
			return err
		}
		if !fn(rid, row) {
			return nil
		}
	}
	return nil
}
