package core_test

import (
	"fmt"
	"testing"
	"time"

	"tell/internal/commitmgr"
	"tell/internal/core"
	"tell/internal/env"
	"tell/internal/mvcc"
	"tell/internal/relational"
	"tell/internal/sim"
	"tell/internal/store"
	"tell/internal/testutil"
	"tell/internal/transport"
)

// TestStorageFailureDuringTransfers kills a storage node while concurrent
// transfers are running (RF2). The store fails over to replicas; committed
// money is never lost, the total stays invariant, and the workload keeps
// committing after the failure.
func TestStorageFailureDuringTransfers(t *testing.T) {
	e := newEngineRF(t, 2, core.TB, 2)
	const nAcc = 20
	const workers = 4
	var rids []uint64
	finished := 0
	transfersAfterKill := 0
	killed := false

	e.driver.Go("chaos", func(ctx env.Ctx) {
		table, err := e.pns[0].Catalog().CreateTable(ctx, accountsSchema())
		if err != nil {
			t.Error(err)
			e.k.Stop()
			return
		}
		setup, _ := e.pns[0].Begin(ctx)
		for i := int64(0); i < nAcc; i++ {
			rid, _ := setup.Insert(ctx, table, account(i, "a", 100))
			rids = append(rids, rid)
		}
		mustCommit(t, ctx, setup)

		for w := 0; w < workers; w++ {
			w := w
			pn := e.pns[w%len(e.pns)]
			e.driver.Go("worker", func(ctx env.Ctx) {
				tbl, _ := pn.Catalog().OpenTable(ctx, "accounts")
				rng := ctx.Rand()
				for i := 0; i < 120; i++ {
					from, to := rids[rng.Intn(nAcc)], rids[rng.Intn(nAcc)]
					if from == to {
						continue
					}
					for attempt := 0; attempt < 20; attempt++ {
						txn, err := pn.Begin(ctx)
						if err != nil {
							ctx.Sleep(5 * time.Millisecond)
							continue
						}
						fr, ok1, err1 := txn.Read(ctx, tbl, from)
						tr, ok2, err2 := txn.Read(ctx, tbl, to)
						if err1 != nil || err2 != nil || !ok1 || !ok2 {
							txn.Abort(ctx)
							ctx.Sleep(5 * time.Millisecond)
							continue
						}
						txn.Update(ctx, tbl, from, account(fr[0].I, "a", fr[2].I-1))
						txn.Update(ctx, tbl, to, account(tr[0].I, "a", tr[2].I+1))
						if err := txn.Commit(ctx); err == nil {
							if killed {
								transfersAfterKill++
							}
							break
						}
						ctx.Sleep(time.Millisecond)
					}
				}
				finished++
			})
		}

		// Kill a storage node mid-run.
		e.driver.Go("killer", func(ctx env.Ctx) {
			ctx.Sleep(10 * time.Millisecond)
			e.net.SetDown("sn1", true)
			killed = true
		})

		// Verifier: wait for workers, check the invariant.
		e.driver.Go("verify", func(ctx env.Ctx) {
			for finished < workers {
				ctx.Sleep(5 * time.Millisecond)
			}
			// Allow in-flight recovery to settle.
			ctx.Sleep(200 * time.Millisecond)
			var total int64
			ok := false
			for attempt := 0; attempt < 10 && !ok; attempt++ {
				txn, err := e.pns[0].Begin(ctx)
				if err != nil {
					ctx.Sleep(10 * time.Millisecond)
					continue
				}
				total = 0
				scanErr := txn.ScanTable(ctx, table, func(rid uint64, row relational.Row) bool {
					total += row[2].I
					return true
				})
				txn.Commit(ctx)
				if scanErr == nil {
					ok = true
				}
			}
			if !ok {
				t.Error("could not scan after failover")
			} else if total != nAcc*100 {
				t.Errorf("total = %d, want %d: committed money lost or duplicated", total, nAcc*100)
			}
			if transfersAfterKill == 0 {
				t.Error("no transfers committed after the storage failure (availability lost)")
			}
			e.k.Stop()
		})
	})
	if err := e.k.RunUntil(sim.Time(3000 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if finished != workers {
		t.Fatalf("only %d/%d workers finished", finished, workers)
	}
	e.k.Shutdown()
}

// engine2CM is the fault-tolerant variant of the test engine: two commit
// managers with fast peer-failure detection, so one can be killed and later
// restarted mid-workload.
type engine2CM struct {
	k      *sim.Kernel
	net    *transport.SimNet
	cms    []*commitmgr.Server
	pns    []*core.PN
	driver env.Node
}

func newEngine2CM(t *testing.T, seed int64, nPNs int) *engine2CM {
	t.Helper()
	k := sim.NewKernel(seed)
	envr := env.NewSim(k)
	net := transport.NewSimNet(k, transport.InfiniBand())
	cl, err := store.NewCluster(envr, net, store.ClusterConfig{NumNodes: 3, ReplicationFactor: 2})
	if err != nil {
		t.Fatal(err)
	}
	e := &engine2CM{k: k, net: net}
	cmAddrs := []string{"cm0", "cm1"}
	for _, id := range cmAddrs {
		node := envr.NewNode(id, 2)
		cm := commitmgr.New(id, id, envr, node, net, cl.NewClient(node))
		cm.Peers = cmAddrs
		cm.StalePeerTicks = 40
		cm.RecoveryEvery = 25
		cm.RecoveryGrace = 50 * time.Millisecond
		if err := cm.Start(); err != nil {
			t.Fatal(err)
		}
		e.cms = append(e.cms, cm)
	}
	for i := 0; i < nPNs; i++ {
		name := fmt.Sprintf("pn%d", i)
		node := envr.NewNode(name, 4)
		pn := core.New(core.Config{ID: name, Buffer: core.TB}, envr, node, net,
			cl.NewClient(node), commitmgr.NewClient(envr, node, net, cmAddrs))
		e.pns = append(e.pns, pn)
	}
	e.driver = envr.NewNode("driver", 4)
	return e
}

// TestCMKillRestartSnapshotMonotonicity kills the primary commit manager
// mid-workload and later brings it back. The survivor must take over (tid
// issue, snapshots, finish facts recovered from the transaction log), and
// snapshots must converge monotonically: after recovery settles, every
// acknowledged commit is visible in every new snapshot, and successive
// snapshots only grow.
func TestCMKillRestartSnapshotMonotonicity(t *testing.T) {
	seed := testutil.Seed(t, 29)
	e := newEngine2CM(t, seed, 2)
	const nAcc = 12
	const workers = 4
	const transfers = 60
	const killAt = 10 * time.Millisecond
	const restartAt = 80 * time.Millisecond

	var rids []uint64
	committedTids := make(map[uint64]bool) // acked commits, by tid
	finished := 0
	transfersAfterKill := 0
	midRunRegressions := 0

	e.driver.Go("cmchaos", func(ctx env.Ctx) {
		table, err := e.pns[0].Catalog().CreateTable(ctx, accountsSchema())
		if err != nil {
			t.Error(err)
			e.k.Stop()
			return
		}
		setup, _ := e.pns[0].Begin(ctx)
		for i := int64(0); i < nAcc; i++ {
			rid, _ := setup.Insert(ctx, table, account(i, "a", 100))
			rids = append(rids, rid)
		}
		mustCommit(t, ctx, setup)

		for w := 0; w < workers; w++ {
			pn := e.pns[w%len(e.pns)]
			e.driver.Go("worker", func(ctx env.Ctx) {
				defer func() { finished++ }()
				tbl, _ := pn.Catalog().OpenTable(ctx, "accounts")
				rng := ctx.Rand()
				for i := 0; i < transfers; i++ {
					from, to := rids[rng.Intn(nAcc)], rids[rng.Intn(nAcc)]
					if from == to {
						continue
					}
					for attempt := 0; attempt < 40; attempt++ {
						txn, err := pn.Begin(ctx)
						if err != nil {
							ctx.Sleep(5 * time.Millisecond)
							continue
						}
						fr, ok1, err1 := txn.Read(ctx, tbl, from)
						tr, ok2, err2 := txn.Read(ctx, tbl, to)
						if err1 != nil || err2 != nil || !ok1 || !ok2 {
							txn.Abort(ctx)
							ctx.Sleep(5 * time.Millisecond)
							continue
						}
						txn.Update(ctx, tbl, from, account(fr[0].I, "a", fr[2].I-1))
						txn.Update(ctx, tbl, to, account(tr[0].I, "a", tr[2].I+1))
						if err := txn.Commit(ctx); err == nil {
							committedTids[txn.TID()] = true
							if ctx.Now() > killAt {
								transfersAfterKill++
							}
							break
						}
						ctx.Sleep(time.Millisecond)
					}
				}
			})
		}

		// Kill cm0, then bring it back. While it is gone the survivor must
		// detect the death and recover lost finish facts from the txlog;
		// after the restart the stale manager rejoins the state merge (its
		// fenced tid range keeps it from committing anything unsafe).
		e.driver.Go("killer", func(ctx env.Ctx) {
			ctx.Sleep(killAt)
			e.net.SetDown("cm0", true)
			ctx.Sleep(restartAt - killAt)
			e.net.SetDown("cm0", false)
		})

		// Monitor: sample snapshots throughout the run. A committed tid seen
		// in one snapshot may transiently vanish right after the failover
		// (the survivor has not yet swept the txlog); count those, but they
		// must all heal by the final checks below.
		observed := make(map[uint64]bool)
		e.driver.Go("monitor", func(ctx env.Ctx) {
			for finished < workers {
				txn, err := e.pns[0].Begin(ctx)
				if err != nil {
					ctx.Sleep(2 * time.Millisecond)
					continue
				}
				snap := txn.Snapshot()
				for tid := range observed {
					if !snap.Contains(tid) {
						midRunRegressions++
					}
				}
				for tid := range committedTids {
					if snap.Contains(tid) {
						observed[tid] = true
					}
				}
				txn.Abort(ctx)
				ctx.Sleep(2 * time.Millisecond)
			}
		})

		e.driver.Go("verify", func(ctx env.Ctx) {
			for finished < workers {
				ctx.Sleep(5 * time.Millisecond)
			}
			ctx.Sleep(300 * time.Millisecond) // let recovery settle

			// After settling, snapshots must be supersets of everything ever
			// acknowledged and grow monotonically from sample to sample.
			var prev *mvcc.Snapshot
			for sample := 0; sample < 5; sample++ {
				txn, err := e.pns[0].Begin(ctx)
				if err != nil {
					t.Errorf("sample %d: begin after failover: %v", sample, err)
					break
				}
				snap := txn.Snapshot()
				for tid := range committedTids {
					if !snap.Contains(tid) {
						t.Errorf("sample %d: snapshot lost committed tid %d", sample, tid)
					}
				}
				if prev != nil && !prev.SubsetOf(snap) {
					t.Errorf("sample %d: snapshot shrank: %s -> %s", sample, prev, snap)
				}
				prev = snap
				txn.Abort(ctx)
				ctx.Sleep(5 * time.Millisecond)
			}

			// Conservation still holds through the failover.
			var total int64
			scanned := false
			for attempt := 0; attempt < 10 && !scanned; attempt++ {
				txn, err := e.pns[0].Begin(ctx)
				if err != nil {
					ctx.Sleep(10 * time.Millisecond)
					continue
				}
				total = 0
				scanErr := txn.ScanTable(ctx, table, func(rid uint64, row relational.Row) bool {
					total += row[2].I
					return true
				})
				txn.Commit(ctx)
				scanned = scanErr == nil
			}
			if !scanned {
				t.Error("could not scan after CM failover")
			} else if total != nAcc*100 {
				t.Errorf("total = %d, want %d: committed money lost or duplicated", total, nAcc*100)
			}
			if transfersAfterKill == 0 {
				t.Error("no transfers committed after the CM was killed (availability lost)")
			}
			t.Logf("seed=%d committed=%d afterKill=%d transientRegressions=%d",
				seed, len(committedTids), transfersAfterKill, midRunRegressions)
			e.k.Stop()
		})
	})
	if err := e.k.RunUntil(sim.Time(3000 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if finished != workers {
		t.Fatalf("only %d/%d workers finished", finished, workers)
	}
	e.k.Shutdown()
}
