package core_test

import (
	"testing"
	"time"

	"tell/internal/core"
	"tell/internal/env"
	"tell/internal/relational"
	"tell/internal/sim"
)

// TestStorageFailureDuringTransfers kills a storage node while concurrent
// transfers are running (RF2). The store fails over to replicas; committed
// money is never lost, the total stays invariant, and the workload keeps
// committing after the failure.
func TestStorageFailureDuringTransfers(t *testing.T) {
	e := newEngineRF(t, 2, core.TB, 2)
	const nAcc = 20
	const workers = 4
	var rids []uint64
	finished := 0
	transfersAfterKill := 0
	killed := false

	e.driver.Go("chaos", func(ctx env.Ctx) {
		table, err := e.pns[0].Catalog().CreateTable(ctx, accountsSchema())
		if err != nil {
			t.Error(err)
			e.k.Stop()
			return
		}
		setup, _ := e.pns[0].Begin(ctx)
		for i := int64(0); i < nAcc; i++ {
			rid, _ := setup.Insert(ctx, table, account(i, "a", 100))
			rids = append(rids, rid)
		}
		mustCommit(t, ctx, setup)

		for w := 0; w < workers; w++ {
			w := w
			pn := e.pns[w%len(e.pns)]
			e.driver.Go("worker", func(ctx env.Ctx) {
				tbl, _ := pn.Catalog().OpenTable(ctx, "accounts")
				rng := ctx.Rand()
				for i := 0; i < 120; i++ {
					from, to := rids[rng.Intn(nAcc)], rids[rng.Intn(nAcc)]
					if from == to {
						continue
					}
					for attempt := 0; attempt < 20; attempt++ {
						txn, err := pn.Begin(ctx)
						if err != nil {
							ctx.Sleep(5 * time.Millisecond)
							continue
						}
						fr, ok1, err1 := txn.Read(ctx, tbl, from)
						tr, ok2, err2 := txn.Read(ctx, tbl, to)
						if err1 != nil || err2 != nil || !ok1 || !ok2 {
							txn.Abort(ctx)
							ctx.Sleep(5 * time.Millisecond)
							continue
						}
						txn.Update(ctx, tbl, from, account(fr[0].I, "a", fr[2].I-1))
						txn.Update(ctx, tbl, to, account(tr[0].I, "a", tr[2].I+1))
						if err := txn.Commit(ctx); err == nil {
							if killed {
								transfersAfterKill++
							}
							break
						}
						ctx.Sleep(time.Millisecond)
					}
				}
				finished++
			})
		}

		// Kill a storage node mid-run.
		e.driver.Go("killer", func(ctx env.Ctx) {
			ctx.Sleep(10 * time.Millisecond)
			e.net.SetDown("sn1", true)
			killed = true
		})

		// Verifier: wait for workers, check the invariant.
		e.driver.Go("verify", func(ctx env.Ctx) {
			for finished < workers {
				ctx.Sleep(5 * time.Millisecond)
			}
			// Allow in-flight recovery to settle.
			ctx.Sleep(200 * time.Millisecond)
			var total int64
			ok := false
			for attempt := 0; attempt < 10 && !ok; attempt++ {
				txn, err := e.pns[0].Begin(ctx)
				if err != nil {
					ctx.Sleep(10 * time.Millisecond)
					continue
				}
				total = 0
				scanErr := txn.ScanTable(ctx, table, func(rid uint64, row relational.Row) bool {
					total += row[2].I
					return true
				})
				txn.Commit(ctx)
				if scanErr == nil {
					ok = true
				}
			}
			if !ok {
				t.Error("could not scan after failover")
			} else if total != nAcc*100 {
				t.Errorf("total = %d, want %d: committed money lost or duplicated", total, nAcc*100)
			}
			if transfersAfterKill == 0 {
				t.Error("no transfers committed after the storage failure (availability lost)")
			}
			e.k.Stop()
		})
	})
	if err := e.k.RunUntil(sim.Time(3000 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if finished != workers {
		t.Fatalf("only %d/%d workers finished", finished, workers)
	}
	e.k.Shutdown()
}
