package core

import (
	"container/list"
	"fmt"

	"tell/internal/det"
	"tell/internal/env"
	"tell/internal/mvcc"
	"tell/internal/relational"
	"tell/internal/sanitize"
	"tell/internal/store"
	"tell/internal/wire"
)

// fullSet is the version-number set "valid for every snapshot", used for
// records whose cache unit has never been written under SBVS.
func fullSet() *mvcc.Snapshot { return mvcc.NewSnapshot(1 << 62) }

// versionSetKey is the store key of the version-set entry covering rid's
// cache unit (§5.5.3: "multiple sequential records of a relational table
// are assigned to a cache unit").
func versionSetKey(tableID uint32, rid uint64, unitSize int) []byte {
	return []byte(fmt.Sprintf("vs/%d/%d", tableID, rid/uint64(unitSize)))
}

func encodeVS(s *mvcc.Snapshot) []byte {
	w := wire.NewWriter(s.Size())
	s.EncodeTo(w)
	return w.Bytes()
}

func decodeVS(b []byte) (*mvcc.Snapshot, error) {
	r := wire.NewReader(b)
	s, err := mvcc.DecodeSnapshotFrom(r)
	if err != nil {
		return nil, err
	}
	if err := r.Close(); err != nil {
		return nil, err
	}
	return s, nil
}

// sbEntry is one record in the PN-wide shared buffer (§5.5.2): the record,
// its LL stamp, and the version-number set B for which the copy is valid.
type sbEntry struct {
	key   string
	rec   *mvcc.Record
	stamp uint64
	b     *mvcc.Snapshot
	unit  string
	elem  *list.Element
}

// sharedBuffer is an LRU cache of records shared by all transactions on a
// processing node.
type sharedBuffer struct {
	mu      sanitize.Mutex
	max     int
	entries map[string]*sbEntry
	byUnit  map[string]map[string]*sbEntry
	lru     *list.List // front = most recent

	hits, misses uint64
}

func newSharedBuffer(max int) *sharedBuffer {
	b := &sharedBuffer{
		max:     max,
		entries: make(map[string]*sbEntry),
		byUnit:  make(map[string]map[string]*sbEntry),
		lru:     list.New(),
	}
	b.mu.SetName("core.sharedBuffer.mu")
	return b
}

// HitRatio returns the fraction of lookups served from the buffer.
func (b *sharedBuffer) HitRatio() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	total := b.hits + b.misses
	if total == 0 {
		return 0
	}
	return float64(b.hits) / float64(total)
}

func (b *sharedBuffer) get(key string) *sbEntry {
	b.mu.Lock()
	defer b.mu.Unlock()
	e, ok := b.entries[key]
	if !ok {
		return nil
	}
	b.lru.MoveToFront(e.elem)
	return e
}

func (b *sharedBuffer) recordHit(hit bool) {
	b.mu.Lock()
	if hit {
		b.hits++
	} else {
		b.misses++
	}
	b.mu.Unlock()
}

// put inserts or replaces an entry, evicting the least recently used one
// when full.
func (b *sharedBuffer) put(key string, rec *mvcc.Record, stamp uint64, vset *mvcc.Snapshot, unit string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.putLocked(key, rec, stamp, vset, unit)
}

func (b *sharedBuffer) putLocked(key string, rec *mvcc.Record, stamp uint64, vset *mvcc.Snapshot, unit string) {
	if e, ok := b.entries[key]; ok {
		e.rec, e.stamp, e.b = rec, stamp, vset
		b.setUnitLocked(e, unit)
		b.lru.MoveToFront(e.elem)
		return
	}
	e := &sbEntry{key: key, rec: rec, stamp: stamp, b: vset}
	e.elem = b.lru.PushFront(e)
	b.entries[key] = e
	b.setUnitLocked(e, unit)
	for len(b.entries) > b.max {
		tail := b.lru.Back()
		if tail == nil {
			break
		}
		victim := tail.Value.(*sbEntry)
		b.removeLocked(victim)
	}
}

func (b *sharedBuffer) setUnitLocked(e *sbEntry, unit string) {
	if e.unit == unit {
		return
	}
	if e.unit != "" {
		delete(b.byUnit[e.unit], e.key)
	}
	e.unit = unit
	if unit != "" {
		m := b.byUnit[unit]
		if m == nil {
			m = make(map[string]*sbEntry)
			b.byUnit[unit] = m
		}
		m[e.key] = e
	}
}

func (b *sharedBuffer) removeLocked(e *sbEntry) {
	b.lru.Remove(e.elem)
	delete(b.entries, e.key)
	if e.unit != "" {
		delete(b.byUnit[e.unit], e.key)
	}
}

// extendB widens an entry's validity set (sound when the stored version set
// was verified unchanged, §5.5.3 condition 2a).
func (b *sharedBuffer) extendB(key string, with *mvcc.Snapshot) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if e, ok := b.entries[key]; ok {
		e.b = mvcc.Union(e.b, with)
	}
}

// writeThrough installs the result of a committed update (§5.5.2: "record
// updates are applied to the buffer in a write-through manner").
func (b *sharedBuffer) writeThrough(key string, rec *mvcc.Record, stamp uint64, vset *mvcc.Snapshot) {
	b.mu.Lock()
	defer b.mu.Unlock()
	e, ok := b.entries[key]
	if !ok {
		b.putLocked(key, rec, stamp, vset, "")
		return
	}
	e.rec, e.stamp, e.b = rec, stamp, vset
	b.lru.MoveToFront(e.elem)
}

// invalidateUnit drops every buffered record of a cache unit (§5.5.3:
// "once the version number set is updated, all buffered records of a cache
// unit are invalidated").
func (b *sharedBuffer) invalidateUnit(unit string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	// Sorted walk: removal order shapes the LRU list, which decides later
	// evictions — simulation-visible state.
	m := b.byUnit[unit]
	for _, k := range det.Keys(m) {
		b.removeLocked(m[k])
	}
	delete(b.byUnit, unit)
}

// fetchRecord resolves a record read according to the configured buffering
// strategy (§5.5). It returns the full multi-version record and its LL
// stamp; store.ErrNotFound when the record does not exist.
func (pn *PN) fetchRecord(ctx env.Ctx, key []byte, snap *mvcc.Snapshot) (*mvcc.Record, uint64, error) {
	switch pn.cfg.Buffer {
	case SB:
		return pn.fetchSB(ctx, key, snap)
	case SBVS:
		return pn.fetchSBVS(ctx, key, snap)
	default:
		return pn.fetchDirect(ctx, key)
	}
}

func (pn *PN) fetchDirect(ctx env.Ctx, key []byte) (*mvcc.Record, uint64, error) {
	raw, stamp, err := pn.sc.Get(ctx, key)
	if err != nil {
		return nil, 0, err
	}
	rec, err := mvcc.Decode(raw)
	if err != nil {
		return nil, 0, err
	}
	return rec, stamp, nil
}

// fetchSB implements the shared record buffer (§5.5.2).
func (pn *PN) fetchSB(ctx env.Ctx, key []byte, snap *mvcc.Snapshot) (*mvcc.Record, uint64, error) {
	ks := string(key)
	if e := pn.shared.get(ks); e != nil && snap.SubsetOf(e.b) {
		// Condition 1: V_tx ⊆ B — the buffer is recent enough.
		pn.shared.recordHit(true)
		return e.rec, e.stamp, nil
	}
	pn.shared.recordHit(false)
	// Condition 2: fetch from the store and stamp the entry with V_max,
	// the version set of the most recently started transaction here.
	vm := pn.vmax()
	rec, stamp, err := pn.fetchDirect(ctx, key)
	if err != nil {
		return nil, 0, err
	}
	pn.shared.put(ks, rec, stamp, vm, "")
	return rec, stamp, nil
}

// fetchSBVS implements the shared buffer with version-set synchronization
// (§5.5.3).
func (pn *PN) fetchSBVS(ctx env.Ctx, key []byte, snap *mvcc.Snapshot) (*mvcc.Record, uint64, error) {
	tableID, rid, ok := relational.ParseRecordKey(key)
	if !ok {
		return pn.fetchDirect(ctx, key)
	}
	unitKey := versionSetKey(tableID, rid, pn.cfg.CacheUnitSize)
	ks := string(key)
	if e := pn.shared.get(ks); e != nil {
		if snap.SubsetOf(e.b) {
			// Condition 1: valid without any network traffic.
			pn.shared.recordHit(true)
			return e.rec, e.stamp, nil
		}
		// Condition 2: fetch only the (small) version set.
		cached := e.b
		vsPrime, err := pn.fetchVS(ctx, unitKey)
		if err != nil {
			return nil, 0, err
		}
		if vsPrime.Equal(cached) {
			// 2a: unchanged since caching — still valid; widen B so
			// future transactions pass condition 1.
			pn.shared.extendB(ks, snap)
			pn.shared.recordHit(true)
			return e.rec, e.stamp, nil
		}
		// 2b: the unit changed; re-fetch the record.
	}
	pn.shared.recordHit(false)
	rec, stamp, err := pn.fetchDirect(ctx, key)
	if err != nil {
		return nil, 0, err
	}
	vsPrime, err := pn.fetchVS(ctx, unitKey)
	if err != nil {
		return nil, 0, err
	}
	pn.shared.put(ks, rec, stamp, vsPrime, string(unitKey))
	return rec, stamp, nil
}

// fetchVS reads a unit's version set; a missing entry means the unit was
// never updated, i.e. valid for every snapshot.
func (pn *PN) fetchVS(ctx env.Ctx, unitKey []byte) (*mvcc.Snapshot, error) {
	raw, _, err := pn.sc.Get(ctx, unitKey)
	if err == store.ErrNotFound {
		return fullSet(), nil
	}
	if err != nil {
		return nil, err
	}
	return decodeVS(raw)
}

// SharedBufferHitRatio exposes the buffer hit ratio (Figure 11 reports it).
func (pn *PN) SharedBufferHitRatio() float64 {
	if pn.shared == nil {
		return 0
	}
	return pn.shared.HitRatio()
}
