package core

import (
	"tell/internal/mvcc"
	"tell/internal/relational"
)

// TxnRecorder observes the transaction history a PN produces: begins with
// their snapshots, reads with the version they resolved to, and outcomes
// with the committed write set. internal/histcheck implements it and checks
// the recorded history offline for snapshot-isolation anomalies.
//
// Recording is off (nil) by default and every hook is a single nil check,
// so the production path pays nothing. Implementations must be safe for
// concurrent use: multiple activities on one PN record interleaved.
type TxnRecorder interface {
	// RecBegin reports a started transaction and its snapshot descriptor.
	// The snapshot is a private clone.
	RecBegin(tid uint64, snap *mvcc.Snapshot)
	// RecRead reports a record read: versionTID is the version the
	// snapshot resolved to (0 when the key had no record), found is
	// whether a live (non-deleted) row was returned. Reads served from
	// the transaction's own write buffer are not reported.
	RecRead(tid uint64, key []byte, versionTID uint64, found bool)
	// RecCommit reports a successful commit and its write set (nil for
	// read-only transactions).
	RecCommit(tid uint64, writes []WriteRec)
	// RecAbort reports an abort, whether manual or conflict-induced.
	RecAbort(tid uint64)
}

// WriteRec is one committed write as seen by the TxnRecorder.
type WriteRec struct {
	// Key is the record key (table id + rid).
	Key []byte
	// BaseVersion is the version (tid) the write replaced — the row
	// visible in the writer's snapshot when it buffered the write. 0 for
	// inserts.
	BaseVersion uint64
	// Row is the new row; nil for deletes.
	Row relational.Row
	// Insert marks a fresh insert.
	Insert bool
}

// SetRecorder installs (or, with nil, removes) a transaction recorder.
// Install before running transactions; swapping mid-flight records a torn
// history.
func (pn *PN) SetRecorder(r TxnRecorder) {
	pn.mu.Lock()
	pn.rec = r
	pn.mu.Unlock()
}
