package core

import (
	"time"

	"tell/internal/env"
	"tell/internal/mvcc"
	"tell/internal/relational"
	"tell/internal/store"
)

// LazyGCResult summarizes one background garbage-collection pass.
type LazyGCResult struct {
	RecordsScanned int
	RecordsPruned  int
	RecordsRemoved int
	LogTruncated   int
}

// LazyGC runs one background garbage-collection pass (§5.4's second, lazy
// strategy, "useful for rarely accessed records"): every record of every
// known table is pruned against the current lowest active version number,
// and transaction-log entries below the lav checkpoint are dropped.
func (pn *PN) LazyGC(ctx env.Ctx, tables []*TableInfo) (LazyGCResult, error) {
	var res LazyGCResult
	// Learn the current lav by asking the commit manager for a snapshot
	// and immediately finishing the probe transaction.
	start, err := pn.cm.Start(ctx)
	if err != nil {
		return res, err
	}
	lav := start.Lav
	pn.cm.Aborted(ctx, start.TID)

	for _, table := range tables {
		lo, hi := relational.RecordPrefix(table.Schema.ID)
		pairs, err := pn.sc.Scan(ctx, lo, hi, 0, false)
		if err != nil {
			return res, err
		}
		for _, p := range pairs {
			res.RecordsScanned++
			rec, err := mvcc.Decode(p.Val)
			if err != nil {
				continue
			}
			pruned, changed, empty := rec.GC(lav)
			if !changed {
				continue
			}
			if empty {
				// The record's only surviving version is a delete
				// marker below the lav: remove the record. Dangling
				// index entries are collected by readers.
				if err := pn.sc.Delete(ctx, p.Key, p.Stamp); err == nil {
					res.RecordsRemoved++
				}
				continue
			}
			// Conditional write: interference means someone updated the
			// record (and GC'd it eagerly); skip.
			if _, err := pn.sc.CondPut(ctx, p.Key, pruned.Encode(), p.Stamp); err == nil {
				res.RecordsPruned++
			}
		}
	}
	// The lav acts as a rolling checkpoint for the transaction log
	// (§4.4.1); entries below it can never be needed by recovery again.
	if n, err := pn.log.Truncate(ctx, lav); err == nil {
		res.LogTruncated = n
	}
	return res, nil
}

// StartLazyGC launches the periodic background GC task (e.g. hourly in the
// paper; experiments use shorter intervals).
func (pn *PN) StartLazyGC(interval time.Duration, tables []*TableInfo) {
	pn.node.Go("lazy-gc", func(ctx env.Ctx) {
		for {
			ctx.Sleep(interval)
			if _, err := pn.LazyGC(ctx, tables); err == store.ErrUnavailable {
				return
			}
		}
	})
}
