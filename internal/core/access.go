package core

import (
	"bytes"

	"tell/internal/env"
	"tell/internal/mvcc"
	"tell/internal/relational"
)

// LookupPK resolves a primary key to its visible row. Indexes are
// version-unaware (§5.3.2), so the fetched record is validated against the
// transaction's snapshot; an entry that no longer matches any collectable
// version is garbage collected on the way (§5.4: "index GC is performed
// during read operations").
func (t *Txn) LookupPK(ctx env.Ctx, table *TableInfo, pkVals ...relational.Value) (rid uint64, row relational.Row, found bool, err error) {
	if t.state != StateRunning {
		return 0, nil, false, ErrTxnDone
	}
	ctx.Work(t.pn.cfg.Costs.IndexOp)
	pkKey := relational.EncodeKey(pkVals...)
	val, ok, err := table.PK.Lookup(ctx, pkKey)
	if err != nil {
		return 0, nil, false, err
	}
	if !ok {
		return 0, nil, false, nil
	}
	rid = relational.RidFromIndexVal(val)
	row, found, err = t.Read(ctx, table, rid)
	if err != nil {
		return 0, nil, false, err
	}
	if !found {
		// Unnecessary read (§5.3.2) — check whether the entry is
		// altogether obsolete and collect it if so.
		t.maybeGCEntry(ctx, table.PK, pkKey, table, table.Schema.PKCols, pkKey, rid)
		return 0, nil, false, nil
	}
	return rid, row, true, nil
}

// IndexEntry is one (rid, row) produced by an index scan.
type IndexEntry struct {
	Rid uint64
	Row relational.Row
}

// ScanPK visits rows whose primary keys fall in [loVals, hiVals) in key
// order. fn returning false stops the scan. hiVals nil means "to the end of
// the loVals prefix is NOT implied" — pass an explicit upper bound or nil
// for unbounded.
func (t *Txn) ScanPK(ctx env.Ctx, table *TableInfo, loVals, hiVals []relational.Value, fn func(e IndexEntry) bool) error {
	lo := relational.EncodeKey(loVals...)
	var hi []byte
	if hiVals != nil {
		hi = relational.EncodeKey(hiVals...)
	}
	return t.scanTree(ctx, table, table.PK, table.Schema.PKCols, lo, hi, false, fn)
}

// ScanIndex visits rows via the named secondary index within [loVals,
// hiVals). Secondary entries carry a rid suffix, making duplicates
// distinct.
func (t *Txn) ScanIndex(ctx env.Ctx, table *TableInfo, index string, loVals, hiVals []relational.Value, fn func(e IndexEntry) bool) error {
	tree, ok := table.Sec[index]
	if !ok {
		return errUnknownIndex(table, index)
	}
	var cols []int
	for i := range table.Schema.Indexes {
		if table.Schema.Indexes[i].Name == index {
			cols = table.Schema.Indexes[i].Cols
		}
	}
	lo := relational.EncodeKey(loVals...)
	var hi []byte
	if hiVals != nil {
		hi = relational.EncodeKey(hiVals...)
	}
	return t.scanTree(ctx, table, tree, cols, lo, hi, true, fn)
}

// ScanIndexPrefix visits all rows whose indexed columns equal the given
// prefix values.
func (t *Txn) ScanIndexPrefix(ctx env.Ctx, table *TableInfo, index string, prefix []relational.Value, fn func(e IndexEntry) bool) error {
	tree, ok := table.Sec[index]
	if !ok {
		return errUnknownIndex(table, index)
	}
	var cols []int
	for i := range table.Schema.Indexes {
		if table.Schema.Indexes[i].Name == index {
			cols = table.Schema.Indexes[i].Cols
		}
	}
	lo := relational.EncodeKey(prefix...)
	hi := relational.PrefixEnd(lo)
	return t.scanTree(ctx, table, tree, cols, lo, hi, true, fn)
}

func errUnknownIndex(table *TableInfo, index string) error {
	return &UnknownIndexError{Table: table.Schema.Name, Index: index}
}

// UnknownIndexError reports a scan over a non-existent index.
type UnknownIndexError struct{ Table, Index string }

func (e *UnknownIndexError) Error() string {
	return "core: table " + e.Table + " has no index " + e.Index
}

// scanTree drives an index scan: walk entries, resolve rids, decode the
// visible version, and garbage collect obsolete entries as encountered.
func (t *Txn) scanTree(ctx env.Ctx, table *TableInfo, tree treeHandle, cols []int, lo, hi []byte, ridSuffix bool, fn func(e IndexEntry) bool) error {
	if t.state != StateRunning {
		return ErrTxnDone
	}
	type hit struct {
		entryKey []byte
		rid      uint64
	}
	var hits []hit
	err := tree.Scan(ctx, lo, hi, func(k, v []byte) bool {
		ctx.Work(t.pn.cfg.Costs.IndexOp)
		hits = append(hits, hit{entryKey: append([]byte(nil), k...), rid: relational.RidFromIndexVal(v)})
		return true
	})
	if err != nil {
		return err
	}
	// Fetch all hit records with one batched request (§5.1).
	rids := make([]uint64, 0, len(hits))
	for _, h := range hits {
		rids = append(rids, h.rid)
	}
	if err := t.prefetch(ctx, table, rids); err != nil {
		return err
	}
	for _, h := range hits {
		row, found, err := t.Read(ctx, table, h.rid)
		if err != nil {
			return err
		}
		if !found {
			prefix := h.entryKey
			if ridSuffix && len(prefix) >= 8 {
				prefix = prefix[:len(prefix)-8]
			}
			t.maybeGCEntry(ctx, tree, h.entryKey, table, cols, prefix, h.rid)
			continue
		}
		// Version-unaware indexes can return rows whose current value
		// no longer matches the scanned range (the entry belongs to an
		// older version). Filter against the visible row.
		visKey := relational.IndexKeyFromRow(row, cols)
		prefix := h.entryKey
		if ridSuffix && len(prefix) >= 8 {
			prefix = prefix[:len(prefix)-8]
		}
		if !bytes.Equal(visKey, prefix) {
			t.maybeGCEntry(ctx, tree, h.entryKey, table, cols, prefix, h.rid)
			continue
		}
		if !fn(IndexEntry{Rid: h.rid, Row: row}) {
			return nil
		}
	}
	return nil
}

// treeHandle is the slice of the B+tree API the scanner needs; it lets
// tests substitute instrumented trees.
type treeHandle interface {
	Scan(ctx env.Ctx, lo, hi []byte, fn func(k, v []byte) bool) error
	Lookup(ctx env.Ctx, key []byte) ([]byte, bool, error)
	Delete(ctx env.Ctx, key []byte) (bool, error)
}

// maybeGCEntry removes an index entry whose key no longer matches any
// version that could still be read: the Va \ G = ∅ rule of §5.4.
func (t *Txn) maybeGCEntry(ctx env.Ctx, tree treeHandle, entryKey []byte, table *TableInfo, cols []int, keyPrefix []byte, rid uint64) {
	re, err := t.readRecord(ctx, relational.RecordKey(table.Schema.ID, rid))
	if err != nil {
		return
	}
	if !entryObsolete(table.Schema, cols, keyPrefix, re.rec, t.lav) {
		return
	}
	// Consistent removal via the tree's LL/SC update; failures are fine —
	// "if the LL/SC operation fails, GC is retried with the next read".
	tree.Delete(ctx, entryKey)
}

// entryObsolete reports whether no surviving (non-collectable) version of
// the record carries the indexed key: Va \ G = ∅ (§5.4).
func entryObsolete(schema *relational.TableSchema, cols []int, keyPrefix []byte, rec *mvcc.Record, lav uint64) bool {
	if rec == nil || len(rec.Versions) == 0 {
		return true // record is gone entirely
	}
	// G = everything applied before the GC survivor (mvcc.SurvivorIdx):
	// versions are in apply order, so collectable means positioned after
	// the newest-applied version with TID ≤ lav.
	surv := rec.SurvivorIdx(lav)
	live := rec.Versions
	if surv >= 0 {
		live = rec.Versions[:surv+1]
	}
	for i := range live {
		v := &live[i]
		if v.Deleted {
			continue
		}
		row, err := relational.DecodeRow(schema, v.Data)
		if err != nil {
			return false // be conservative on decode trouble
		}
		if bytes.Equal(relational.IndexKeyFromRow(row, cols), keyPrefix) {
			return false // a live version still carries this key
		}
	}
	return true
}

// ScanTable streams every visible row of a table directly from the record
// key space — the full-table-scan path of analytical queries (§5.2: the
// records are shipped to the query).
func (t *Txn) ScanTable(ctx env.Ctx, table *TableInfo, fn func(rid uint64, row relational.Row) bool) error {
	if t.state != StateRunning {
		return ErrTxnDone
	}
	lo, hi := relational.RecordPrefix(table.Schema.ID)
	pairs, err := t.pn.sc.Scan(ctx, lo, hi, 0, false)
	if err != nil {
		return err
	}
	for _, p := range pairs {
		ctx.Work(t.pn.cfg.Costs.ReadOp)
		rid, ok := relational.RidFromRecordKey(p.Key)
		if !ok {
			continue
		}
		// The transaction's own writes shadow stored rows.
		if w, shadowed := t.writes[string(p.Key)]; shadowed {
			if w.newRow != nil && !fn(rid, w.newRow) {
				return nil
			}
			continue
		}
		rec, err := mvcc.Decode(p.Val)
		if err != nil {
			return err
		}
		v, visible := rec.Visible(t.snap)
		if !visible {
			continue
		}
		row, err := relational.DecodeRow(table.Schema, v.Data)
		if err != nil {
			return err
		}
		if !fn(rid, row) {
			return nil
		}
	}
	return nil
}
