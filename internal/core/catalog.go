// Package core implements the processing node (PN) of Tell — the paper's
// primary contribution: transactional query processing on shared data
// (§4, §5). A PN executes transactions under distributed snapshot
// isolation: versioned reads against a snapshot descriptor, buffered
// writes, LL/SC-based conflict detection at commit, index maintenance on
// the shared latch-free B+trees, and both eager and lazy garbage
// collection. PNs share all data: any PN can execute any transaction.
package core

import (
	"fmt"

	"tell/internal/btree"
	"tell/internal/det"
	"tell/internal/env"
	"tell/internal/relational"
	"tell/internal/sanitize"
	"tell/internal/store"
)

// tableIDCounterKey allocates table ids in the shared catalog.
const tableIDCounterKey = "sys/tableid"

// TableInfo is a PN's handle to one table: schema plus index-tree handles.
type TableInfo struct {
	Schema *relational.TableSchema
	PK     *btree.Tree
	Sec    map[string]*btree.Tree
}

// PKKey builds the primary-key index key of a row.
func (t *TableInfo) PKKey(row relational.Row) []byte {
	return relational.IndexKeyFromRow(row, t.Schema.PKCols)
}

// Catalog resolves table names to TableInfo for one PN. Schemas live in the
// shared store, so every PN sees the same catalog.
type Catalog struct {
	sc      *store.Client
	fanout  int
	mu      sanitize.Mutex
	tables  map[string]*TableInfo
	caching bool
}

// NewCatalog creates a catalog over the given store client. fanout sets the
// B+tree node capacity; caching toggles inner-node caching on the index
// handles.
func NewCatalog(sc *store.Client, fanout int, caching bool) *Catalog {
	if fanout <= 0 {
		fanout = 64
	}
	c := &Catalog{sc: sc, fanout: fanout, tables: make(map[string]*TableInfo), caching: caching}
	c.mu.SetName("core.Catalog.mu")
	return c
}

// CreateTable registers a new table in the shared catalog and creates its
// index trees. If the table already exists (any PN may race on this), the
// existing definition is opened instead.
func (c *Catalog) CreateTable(ctx env.Ctx, schema *relational.TableSchema) (*TableInfo, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	id, err := c.sc.CounterAdd(ctx, []byte(tableIDCounterKey), 1)
	if err != nil {
		return nil, err
	}
	s := *schema
	s.ID = uint32(id)
	if _, err := c.sc.CondPut(ctx, relational.SchemaKey(s.Name), s.Encode(), 0); err != nil {
		if err == store.ErrConflict {
			return c.OpenTable(ctx, s.Name)
		}
		return nil, err
	}
	if err := btree.Create(ctx, relational.PKIndexName(s.Name), c.sc); err != nil {
		return nil, err
	}
	for _, ix := range s.Indexes {
		if err := btree.Create(ctx, relational.SecIndexName(s.Name, ix.Name), c.sc); err != nil {
			return nil, err
		}
	}
	// Initialize the rid counter.
	if _, err := c.sc.CounterAdd(ctx, relational.RidCounterKey(s.ID), 0); err != nil {
		return nil, err
	}
	return c.open(&s), nil
}

// OpenTable loads an existing table definition.
func (c *Catalog) OpenTable(ctx env.Ctx, name string) (*TableInfo, error) {
	c.mu.Lock()
	if t, ok := c.tables[name]; ok {
		c.mu.Unlock()
		return t, nil
	}
	c.mu.Unlock()
	raw, _, err := c.sc.Get(ctx, relational.SchemaKey(name))
	if err != nil {
		if err == store.ErrNotFound {
			return nil, fmt.Errorf("core: table %q does not exist", name)
		}
		return nil, err
	}
	s, err := relational.DecodeSchema(raw)
	if err != nil {
		return nil, err
	}
	return c.open(s), nil
}

func (c *Catalog) open(s *relational.TableSchema) *TableInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t, ok := c.tables[s.Name]; ok {
		return t
	}
	t := &TableInfo{Schema: s, Sec: make(map[string]*btree.Tree)}
	t.PK = btree.New(relational.PKIndexName(s.Name), c.sc)
	t.PK.MaxKeys = c.fanout
	t.PK.CacheInner = c.caching
	for _, ix := range s.Indexes {
		tr := btree.New(relational.SecIndexName(s.Name, ix.Name), c.sc)
		tr.MaxKeys = c.fanout
		tr.CacheInner = c.caching
		t.Sec[ix.Name] = tr
	}
	c.tables[s.Name] = t
	return t
}

// Tables lists the names this catalog has opened, in sorted order.
func (c *Catalog) Tables() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return det.Keys(c.tables)
}
