package core

import (
	"fmt"
	"testing"

	"tell/internal/mvcc"
)

func snap(base uint64, extra ...uint64) *mvcc.Snapshot {
	s := mvcc.NewSnapshot(base)
	for _, t := range extra {
		s.Add(t)
	}
	return s
}

func TestSharedBufferPutGetAndLRU(t *testing.T) {
	b := newSharedBuffer(3)
	for i := 0; i < 3; i++ {
		b.put(fmt.Sprintf("k%d", i), mvcc.NewRecord(1, nil), uint64(i+1), snap(10), "")
	}
	if e := b.get("k0"); e == nil || e.stamp != 1 {
		t.Fatalf("k0: %+v", e)
	}
	// Touch k0 so k1 is the LRU victim when k3 arrives.
	b.put("k3", mvcc.NewRecord(1, nil), 4, snap(10), "")
	if b.get("k1") != nil {
		t.Fatal("k1 should have been evicted")
	}
	if b.get("k0") == nil || b.get("k2") == nil || b.get("k3") == nil {
		t.Fatal("survivors missing")
	}
}

func TestSharedBufferWriteThroughUpdatesEntry(t *testing.T) {
	b := newSharedBuffer(10)
	b.put("k", mvcc.NewRecord(1, nil), 5, snap(10), "")
	rec2 := mvcc.NewRecord(2, nil)
	b.writeThrough("k", rec2, 9, snap(12, 15))
	e := b.get("k")
	if e.stamp != 9 || e.rec != rec2 {
		t.Fatalf("write-through lost: %+v", e)
	}
	if !e.b.Contains(15) {
		t.Fatal("version set not replaced")
	}
	// Write-through on an absent key inserts it.
	b.writeThrough("fresh", rec2, 1, snap(1))
	if b.get("fresh") == nil {
		t.Fatal("fresh entry missing")
	}
}

func TestSharedBufferUnitInvalidation(t *testing.T) {
	b := newSharedBuffer(10)
	b.put("a1", mvcc.NewRecord(1, nil), 1, snap(1), "unitA")
	b.put("a2", mvcc.NewRecord(1, nil), 2, snap(1), "unitA")
	b.put("b1", mvcc.NewRecord(1, nil), 3, snap(1), "unitB")
	b.invalidateUnit("unitA")
	if b.get("a1") != nil || b.get("a2") != nil {
		t.Fatal("unitA entries survived invalidation")
	}
	if b.get("b1") == nil {
		t.Fatal("unitB entry wrongly dropped")
	}
}

func TestSharedBufferExtendB(t *testing.T) {
	b := newSharedBuffer(10)
	b.put("k", mvcc.NewRecord(1, nil), 1, snap(5), "")
	b.extendB("k", snap(9))
	e := b.get("k")
	if !e.b.Contains(8) {
		t.Fatal("validity set not widened")
	}
	// Extending a missing key is a no-op, not a panic.
	b.extendB("missing", snap(1))
}

func TestSharedBufferHitRatio(t *testing.T) {
	b := newSharedBuffer(10)
	b.recordHit(true)
	b.recordHit(true)
	b.recordHit(false)
	if r := b.HitRatio(); r < 0.66 || r > 0.67 {
		t.Fatalf("ratio = %v", r)
	}
}

func TestVersionSetKeyGroupsByUnit(t *testing.T) {
	a := versionSetKey(3, 5, 10)
	b := versionSetKey(3, 9, 10)
	c := versionSetKey(3, 10, 10)
	if string(a) != string(b) {
		t.Fatalf("rids 5 and 9 should share unit: %s vs %s", a, b)
	}
	if string(a) == string(c) {
		t.Fatal("rid 10 should start a new unit")
	}
	if string(versionSetKey(4, 5, 10)) == string(a) {
		t.Fatal("different tables must not share units")
	}
}

func TestVSCodec(t *testing.T) {
	s := snap(100, 105, 170)
	got, err := decodeVS(encodeVS(s))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(s) {
		t.Fatalf("roundtrip: %v != %v", got, s)
	}
	if _, err := decodeVS([]byte{0xff}); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestFullSetContainsEverything(t *testing.T) {
	fs := fullSet()
	for _, tid := range []uint64{0, 1, 1 << 40, 1 << 61} {
		if !fs.Contains(tid) {
			t.Fatalf("fullSet missing %d", tid)
		}
	}
	if !snap(500, 777).SubsetOf(fs) {
		t.Fatal("every snapshot must be a subset of fullSet")
	}
}
