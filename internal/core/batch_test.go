package core_test

import (
	"fmt"
	"testing"

	"tell/internal/core"
	"tell/internal/env"
	"tell/internal/relational"
	"tell/internal/store"
)

func TestReadManyBatchesLookups(t *testing.T) {
	e := newEngine(t, 1, core.TB)
	e.run(t, func(ctx env.Ctx) {
		pn := e.pns[0]
		table, _ := pn.Catalog().CreateTable(ctx, accountsSchema())
		setup, _ := pn.Begin(ctx)
		for i := int64(0); i < 30; i++ {
			setup.Insert(ctx, table, account(i, fmt.Sprintf("o%d", i), i*10))
		}
		mustCommit(t, ctx, setup)

		txn, _ := pn.Begin(ctx)
		keys := [][]relational.Value{
			{relational.I64(5)},
			{relational.I64(999)}, // missing
			{relational.I64(17)},
			{relational.I64(0)},
		}
		rids, rows, err := txn.ReadMany(ctx, table, keys)
		if err != nil {
			t.Fatal(err)
		}
		if rows[0] == nil || rows[0][2].I != 50 {
			t.Fatalf("row 0: %v", rows[0])
		}
		if rids[1] != 0 || rows[1] != nil {
			t.Fatalf("missing key resolved: rid=%d row=%v", rids[1], rows[1])
		}
		if rows[2][2].I != 170 || rows[3][2].I != 0 {
			t.Fatalf("rows: %v %v", rows[2], rows[3])
		}
		// Prefetched records serve later point reads from the txn buffer,
		// and updates through them carry correct LL stamps.
		if ok, err := txn.Update(ctx, table, rids[0], account(5, "o5", 555)); !ok || err != nil {
			t.Fatalf("update after ReadMany: %v %v", ok, err)
		}
		mustCommit(t, ctx, txn)

		check, _ := pn.Begin(ctx)
		_, row, _, _ := check.LookupPK(ctx, table, relational.I64(5))
		if row[2].I != 555 {
			t.Fatalf("update lost: %v", row)
		}
		mustCommit(t, ctx, check)
	})
}

func TestReadManyUnderSharedBuffers(t *testing.T) {
	for _, buf := range []core.BufferStrategy{core.SB, core.SBVS} {
		buf := buf
		t.Run(buf.String(), func(t *testing.T) {
			e := newEngine(t, 1, buf)
			e.run(t, func(ctx env.Ctx) {
				pn := e.pns[0]
				table, _ := pn.Catalog().CreateTable(ctx, accountsSchema())
				setup, _ := pn.Begin(ctx)
				for i := int64(0); i < 10; i++ {
					setup.Insert(ctx, table, account(i, "x", i))
				}
				mustCommit(t, ctx, setup)
				txn, _ := pn.Begin(ctx)
				keys := [][]relational.Value{{relational.I64(3)}, {relational.I64(7)}}
				_, rows, err := txn.ReadMany(ctx, table, keys)
				if err != nil || rows[0][2].I != 3 || rows[1][2].I != 7 {
					t.Fatalf("rows: %v err=%v", rows, err)
				}
				mustCommit(t, ctx, txn)
			})
		})
	}
}

func TestScanIndexExplicitRange(t *testing.T) {
	e := newEngine(t, 1, core.TB)
	e.run(t, func(ctx env.Ctx) {
		pn := e.pns[0]
		table, _ := pn.Catalog().CreateTable(ctx, accountsSchema())
		setup, _ := pn.Begin(ctx)
		for i, name := range []string{"anna", "bert", "carl", "dora", "emil"} {
			setup.Insert(ctx, table, account(int64(i), name, 0))
		}
		mustCommit(t, ctx, setup)
		txn, _ := pn.Begin(ctx)
		var got []string
		err := txn.ScanIndex(ctx, table, "byowner",
			[]relational.Value{relational.Str("bert")},
			[]relational.Value{relational.Str("dora")},
			func(en core.IndexEntry) bool {
				got = append(got, en.Row[1].S)
				return true
			})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 2 || got[0] != "bert" || got[1] != "carl" {
			t.Fatalf("range scan: %v", got)
		}
		// Unknown index errors cleanly.
		if err := txn.ScanIndex(ctx, table, "nope", nil, nil, func(core.IndexEntry) bool { return true }); err == nil {
			t.Fatal("unknown index accepted")
		}
		mustCommit(t, ctx, txn)
	})
}

func TestScanTableFiltered(t *testing.T) {
	e := newEngine(t, 1, core.TB)
	e.run(t, func(ctx env.Ctx) {
		pn := e.pns[0]
		table, _ := pn.Catalog().CreateTable(ctx, accountsSchema())
		setup, _ := pn.Begin(ctx)
		for i := int64(0); i < 40; i++ {
			owner := "low"
			if i >= 20 {
				owner = "high"
			}
			setup.Insert(ctx, table, account(i, owner, i))
		}
		mustCommit(t, ctx, setup)

		txn, _ := pn.Begin(ctx)
		// Selection on balance >= 30, projection to (id, balance).
		pred := &store.Predicate{Col: 2, Op: store.CmpGE, Val: relational.I64(30)}
		var ids []int64
		err := txn.ScanTableFiltered(ctx, table, pred, []int{0, 2},
			func(rid uint64, row relational.Row) bool {
				if len(row) != 2 {
					t.Errorf("projection has %d cols", len(row))
				}
				ids = append(ids, row[0].I)
				return true
			})
		if err != nil {
			t.Fatal(err)
		}
		if len(ids) != 10 {
			t.Fatalf("matched %d rows, want 10", len(ids))
		}
		// String equality predicate, no projection.
		n := 0
		err = txn.ScanTableFiltered(ctx, table,
			&store.Predicate{Col: 1, Op: store.CmpEQ, Val: relational.Str("low")}, nil,
			func(rid uint64, row relational.Row) bool {
				if len(row) != 3 || row[1].S != "low" {
					t.Errorf("bad row %v", row)
				}
				n++
				return true
			})
		if err != nil || n != 20 {
			t.Fatalf("eq scan: %d %v", n, err)
		}
		mustCommit(t, ctx, txn)

		// Snapshot semantics: a concurrent update is invisible to an
		// older transaction's push-down scan.
		old, _ := pn.Begin(ctx)
		w, _ := pn.Begin(ctx)
		w.Insert(ctx, table, account(99, "low", 0))
		mustCommit(t, ctx, w)
		n = 0
		old.ScanTableFiltered(ctx, table,
			&store.Predicate{Col: 1, Op: store.CmpEQ, Val: relational.Str("low")}, nil,
			func(rid uint64, row relational.Row) bool { n++; return true })
		if n != 20 {
			t.Fatalf("snapshot violated: pushdown saw %d rows", n)
		}
		mustCommit(t, ctx, old)
	})
}
