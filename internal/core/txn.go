package core

import (
	"errors"
	"fmt"
	"time"

	"tell/internal/det"
	"tell/internal/env"
	"tell/internal/mvcc"
	"tell/internal/relational"
	"tell/internal/store"
	"tell/internal/trace"
	"tell/internal/txlog"
	"tell/internal/wire"
)

// Abort reason codes carried on "abort" trace instants (Arg2).
const (
	AbortUser int64 = iota
	AbortWriteConflict
	AbortCommitConflict
	AbortDuplicateKey
	AbortError
)

// Transaction errors.
var (
	// ErrConflict: a write-write conflict was detected at commit time —
	// one of the transaction's LL/SC apply operations failed because
	// another transaction changed the record first (§4.1). All applied
	// updates have been rolled back.
	ErrConflict = errors.New("core: write-write conflict, transaction aborted")
	// ErrDuplicateKey: a primary-key uniqueness violation at commit.
	ErrDuplicateKey = errors.New("core: duplicate primary key, transaction aborted")
	// ErrTxnDone: the transaction has already committed or aborted.
	ErrTxnDone = errors.New("core: transaction already finished")
)

// TxnState is the life-cycle state of §4.3.
type TxnState int

const (
	StateRunning TxnState = iota
	StateCommitted
	StateAborted
)

// readEntry is one record in the transaction buffer (§5.5.1): the record as
// fetched (all versions), its LL stamp, and the decoded visible row.
type readEntry struct {
	rec    *mvcc.Record
	stamp  uint64 // 0 = record absent from store
	row    relational.Row
	exists bool
}

// writeIntent is one buffered update (§4.3 Running: "updates are buffered
// on the PN in the scope of the transaction").
type writeIntent struct {
	table    *TableInfo
	rid      uint64
	key      []byte
	newRow   relational.Row // nil = delete
	isInsert bool
	oldRow   relational.Row
	baseRec  *mvcc.Record // record as read; nil for inserts
	baseStmp uint64       // LL stamp at read; 0 for inserts
	baseVTID uint64       // visible version (tid) replaced; 0 for inserts
}

// Txn is one transaction executing on a PN under snapshot isolation.
type Txn struct {
	pn    *PN
	tid   uint64
	snap  *mvcc.Snapshot
	lav   uint64
	state TxnState
	// doomed is set when a conflict was already detected while running
	// (§4.1 scenario 1: the record carried a version newer than the
	// snapshot when we tried to write it). Commit will abort.
	doomed bool
	// rec is the history recorder captured at Begin (nil = off).
	rec TxnRecorder

	reads  map[string]*readEntry
	writes map[string]*writeIntent
	order  []string
}

// Begin starts a transaction: it contacts the commit manager for a tid,
// snapshot descriptor and lav (§4.3 step 1).
func (pn *PN) Begin(ctx env.Ctx) (*Txn, error) {
	sc := ctx.Trace()
	var bstart time.Duration
	if sc.R.Enabled() {
		bstart = ctx.Now()
	}
	ctx.Work(pn.cfg.Costs.Begin)
	res, err := pn.cm.Start(ctx)
	if err != nil {
		return nil, err
	}
	if sc.R.Enabled() {
		sc.R.Span(0, sc.Span, pn.node.Name(), "begin", bstart, int64(res.TID), 0)
	}
	pn.mu.Lock()
	pn.lastSnap = res.Snap.Clone()
	rec := pn.rec
	pn.mu.Unlock()
	if rec != nil {
		rec.RecBegin(res.TID, res.Snap.Clone())
	}
	return &Txn{
		pn:     pn,
		tid:    res.TID,
		snap:   res.Snap,
		lav:    res.Lav,
		rec:    rec,
		reads:  make(map[string]*readEntry),
		writes: make(map[string]*writeIntent),
	}, nil
}

// TID returns the transaction id (also the version number of its writes).
func (t *Txn) TID() uint64 { return t.tid }

// Snapshot returns the transaction's snapshot descriptor.
func (t *Txn) Snapshot() *mvcc.Snapshot { return t.snap }

// State returns the life-cycle state.
func (t *Txn) State() TxnState { return t.state }

// vmax returns the snapshot of the most recently started transaction on
// this PN (the Vmax of §5.5.2).
func (pn *PN) vmax() *mvcc.Snapshot {
	pn.mu.Lock()
	defer pn.mu.Unlock()
	if pn.lastSnap == nil {
		return mvcc.NewSnapshot(0)
	}
	return pn.lastSnap.Clone()
}

// readRecord returns the buffered or fetched record for key, consulting the
// transaction buffer and, depending on strategy, the PN's shared buffer.
func (t *Txn) readRecord(ctx env.Ctx, key []byte) (*readEntry, error) {
	ks := string(key)
	if re, ok := t.reads[ks]; ok {
		return re, nil
	}
	ctx.Work(t.pn.cfg.Costs.ReadOp)
	rec, stamp, err := t.pn.fetchRecord(ctx, key, t.snap)
	re := &readEntry{}
	switch err {
	case nil:
		re.rec = rec
		re.stamp = stamp
	case store.ErrNotFound:
		// Negative result is cached too (repeatable reads).
	default:
		return nil, err
	}
	t.reads[ks] = re
	return re, nil
}

// decodeVisible extracts the visible row of a read entry for this txn.
func (t *Txn) decodeVisible(table *TableInfo, re *readEntry) (relational.Row, bool, error) {
	if re.rec == nil {
		return nil, false, nil
	}
	v, ok := re.rec.Visible(t.snap)
	if !ok {
		return nil, false, nil
	}
	row, err := relational.DecodeRow(table.Schema, v.Data)
	if err != nil {
		return nil, false, err
	}
	return row, true, nil
}

// Read returns the row of (table, rid) visible in this snapshot. The
// transaction's own buffered writes win over stored state.
func (t *Txn) Read(ctx env.Ctx, table *TableInfo, rid uint64) (relational.Row, bool, error) {
	if t.state != StateRunning {
		return nil, false, ErrTxnDone
	}
	key := relational.RecordKey(table.Schema.ID, rid)
	if w, ok := t.writes[string(key)]; ok {
		if w.newRow == nil {
			return nil, false, nil
		}
		return w.newRow, true, nil
	}
	re, err := t.readRecord(ctx, key)
	if err != nil {
		return nil, false, err
	}
	row, found, err := t.decodeVisible(table, re)
	if sc := ctx.Trace(); sc.R.Enabled() {
		var f int64
		if found {
			f = 1
		}
		sc.R.Instant(sc.Span, t.pn.node.Name(), "read", int64(rid), f)
	}
	if t.rec != nil && err == nil {
		var vtid uint64
		if re.rec != nil {
			if v, ok := re.rec.Visible(t.snap); ok {
				vtid = v.TID // deleted versions count: the read observed them
			}
		}
		t.rec.RecRead(t.tid, key, vtid, found)
	}
	return row, found, err
}

// Insert buffers a new row and returns its rid. The write is applied at
// commit; the new version's number is the transaction's tid.
func (t *Txn) Insert(ctx env.Ctx, table *TableInfo, row relational.Row) (uint64, error) {
	if t.state != StateRunning {
		return 0, ErrTxnDone
	}
	if _, err := relational.EncodeRow(table.Schema, row); err != nil {
		return 0, err // type check up front
	}
	ctx.Work(t.pn.cfg.Costs.WriteOp)
	rid, err := t.pn.allocRid(ctx, table.Schema.ID)
	if err != nil {
		return 0, err
	}
	key := relational.RecordKey(table.Schema.ID, rid)
	w := &writeIntent{table: table, rid: rid, key: key, newRow: row, isInsert: true}
	t.writes[string(key)] = w
	t.order = append(t.order, string(key))
	return rid, nil
}

// Update buffers a new version of (table, rid). It reads the current
// visible row first (the load-link); found is false when the row is not
// visible in this snapshot.
func (t *Txn) Update(ctx env.Ctx, table *TableInfo, rid uint64, newRow relational.Row) (found bool, err error) {
	return t.write(ctx, table, rid, newRow)
}

// Delete buffers a deletion of (table, rid).
func (t *Txn) Delete(ctx env.Ctx, table *TableInfo, rid uint64) (found bool, err error) {
	return t.write(ctx, table, rid, nil)
}

func (t *Txn) write(ctx env.Ctx, table *TableInfo, rid uint64, newRow relational.Row) (bool, error) {
	if t.state != StateRunning {
		return false, ErrTxnDone
	}
	if newRow != nil {
		if _, err := relational.EncodeRow(table.Schema, newRow); err != nil {
			return false, err
		}
	}
	ctx.Work(t.pn.cfg.Costs.WriteOp)
	key := relational.RecordKey(table.Schema.ID, rid)
	ks := string(key)
	if w, ok := t.writes[ks]; ok {
		// Updating our own buffered write: modify the new version in
		// place (§5.1: "further updates to the record directly modify
		// the newly added version").
		if w.newRow == nil && !w.isInsert {
			return false, nil // we deleted it earlier
		}
		if w.isInsert && newRow == nil {
			// Deleting our own uncommitted insert: the write intent
			// simply disappears — nothing was ever applied.
			delete(t.writes, ks)
			for i, o := range t.order {
				if o == ks {
					t.order = append(t.order[:i], t.order[i+1:]...)
					break
				}
			}
			return true, nil
		}
		w.newRow = newRow
		return true, nil
	}
	re, err := t.readRecord(ctx, key)
	if err != nil {
		return false, err
	}
	oldRow, visible, err := t.decodeVisible(table, re)
	if err != nil {
		return false, err
	}
	if !visible {
		return false, nil
	}
	// §4.1, scenario 1: another transaction already applied a version we
	// cannot see. Writing would lose its update (the LL stamp is current,
	// so the store-conditional alone would not catch it). Conflict now.
	// Every version must be checked, not just the highest tid: with
	// several commit managers handing out disjoint tid ranges, commit
	// order does not follow tid order, so an invisible version can sit
	// below the visible one.
	if !t.pn.cfg.SkipWriteValidation {
		for i := range re.rec.Versions {
			if vt := re.rec.Versions[i].TID; vt != t.tid && !t.snap.Contains(vt) {
				t.doomed = true
				if sc := ctx.Trace(); sc.R.Enabled() {
					sc.R.Instant(sc.Span, t.pn.node.Name(), "abort",
						int64(t.tid), AbortWriteConflict)
				}
				return false, ErrConflict
			}
		}
	}
	if sc := ctx.Trace(); sc.R.Enabled() {
		sc.R.Instant(sc.Span, t.pn.node.Name(), "write", int64(rid), 0)
	}
	var baseVTID uint64
	if v, ok := re.rec.Visible(t.snap); ok {
		baseVTID = v.TID
	}
	w := &writeIntent{
		table:    table,
		rid:      rid,
		key:      key,
		newRow:   newRow,
		oldRow:   oldRow,
		baseRec:  re.rec,
		baseStmp: re.stamp,
		baseVTID: baseVTID,
	}
	t.writes[ks] = w
	t.order = append(t.order, ks)
	return true, nil
}

// Abort rolls the transaction back. For a manually aborted transaction no
// updates have been applied yet, so only the commit manager is notified
// (§4.3 step 4b).
func (t *Txn) Abort(ctx env.Ctx) error {
	if t.state != StateRunning {
		return ErrTxnDone
	}
	if sc := ctx.Trace(); sc.R.Enabled() {
		sc.R.Instant(sc.Span, t.pn.node.Name(), "abort", int64(t.tid), AbortUser)
	}
	t.state = StateAborted
	t.pn.mu.Lock()
	t.pn.aborts++
	t.pn.mu.Unlock()
	if t.rec != nil {
		t.rec.RecAbort(t.tid)
	}
	return t.pn.cm.Aborted(ctx, t.tid)
}

// Commit runs the Try-Commit/Commit protocol of §4.3:
//
//  1. append a log entry with the write set,
//  2. apply all buffered updates with LL/SC conditional writes (batched);
//     any failure is a write-write conflict → roll back and abort,
//  3. alter the indexes,
//  4. set the commit flag in the log and notify the commit manager.
func (t *Txn) Commit(ctx env.Ctx) error {
	if t.state != StateRunning {
		return ErrTxnDone
	}
	sc := ctx.Trace()
	if sc.R.Enabled() {
		cstart := ctx.Now()
		defer func() {
			var committed int64
			if t.state == StateCommitted {
				committed = 1
			}
			sc.R.Span(0, sc.Span, t.pn.node.Name(), "txn-commit", cstart,
				int64(t.tid), committed)
		}()
	}
	if t.doomed {
		// A conflict was detected while running; nothing was applied.
		t.finishAbort(ctx, AbortWriteConflict)
		return ErrConflict
	}
	if len(t.writes) == 0 {
		t.state = StateCommitted
		t.pn.mu.Lock()
		t.pn.commits++
		t.pn.mu.Unlock()
		if t.rec != nil {
			t.rec.RecCommit(t.tid, nil)
		}
		return t.pn.cm.Committed(ctx, t.tid)
	}

	// 1. Try-Commit: log entry first — recovery depends on it (§4.4.1).
	entry := &txlog.Entry{TID: t.tid, PN: t.pn.cfg.ID, Timestamp: ctx.Now()}
	for _, ks := range t.order {
		entry.WriteSet = append(entry.WriteSet, t.writes[ks].key)
	}
	if err := t.pn.log.Append(ctx, entry); err != nil {
		t.Abort(ctx)
		return fmt.Errorf("core: txlog append: %w", err)
	}

	// SBVS: invalidate version-set entries before applying data so no
	// reader can validate a stale cache against an already-changed record.
	if t.pn.cfg.Buffer == SBVS {
		if err := t.writeVersionSets(ctx); err != nil {
			t.Abort(ctx)
			return err
		}
	}

	// 2. Apply updates with one batched request set.
	ops := make([]wire.Op, 0, len(t.order))
	newRecs := make([]*mvcc.Record, len(t.order))
	for i, ks := range t.order {
		w := t.writes[ks]
		ctx.Work(t.pn.cfg.Costs.CommitOp)
		var rec *mvcc.Record
		if w.isInsert {
			data, _ := relational.EncodeRow(w.table.Schema, w.newRow)
			rec = mvcc.NewRecord(t.tid, data)
		} else {
			if w.newRow == nil {
				rec = w.baseRec.WithVersion(t.tid, true, nil)
			} else {
				data, _ := relational.EncodeRow(w.table.Schema, w.newRow)
				rec = w.baseRec.WithVersion(t.tid, false, data)
			}
			// Eager GC piggybacks on the update (§5.4).
			if pruned, changed, _ := rec.GC(t.lav); changed {
				rec = pruned
			}
		}
		newRecs[i] = rec
		code := wire.OpCondPut
		if t.pn.cfg.SkipWriteValidation {
			// Negative-control mode: blind writes, no LL/SC conflict
			// detection. See Config.SkipWriteValidation.
			code = wire.OpPut
		}
		ops = append(ops, wire.Op{
			Code:  code,
			Key:   w.key,
			Val:   rec.Encode(),
			Stamp: w.baseStmp,
		})
	}
	if sc.R.Enabled() {
		sc.R.Instant(sc.Span, t.pn.node.Name(), "validate", int64(t.tid), int64(len(ops)))
	}
	results, err := t.pn.sc.Exec(ctx, ops)
	if err != nil {
		t.abortConflict(ctx, sc, nil, AbortError) // nothing known applied; best effort
		return err
	}
	applied := make([]int, 0, len(results))
	conflict := false
	for i, res := range results {
		switch res.Status {
		case wire.StatusOK:
			applied = append(applied, i)
			// Remember the new stamp for buffer write-through.
			t.writes[t.order[i]].baseStmp = res.Stamp
		case wire.StatusConflict:
			// A conditional put that was retried after a lost response is
			// indistinguishable from a genuine write-write conflict: the
			// first attempt may have applied, moving the stamp so the
			// retry fails. Read the record back — if our own version is
			// there, the update applied and this is no conflict. First-try
			// conflicts are unambiguous and skip the read-back.
			if res.WasRetried() && t.ownVersionApplied(ctx, t.order[i]) {
				applied = append(applied, i)
			} else {
				conflict = true
			}
		default:
			conflict = true
		}
	}
	if conflict {
		t.abortConflict(ctx, sc, applied, AbortCommitConflict)
		return ErrConflict
	}

	// 3. Alter the indexes (§4.3: "next, the indexes are altered to
	// reflect the updates").
	if err := t.maintainIndexes(ctx); err != nil {
		if err == ErrDuplicateKey {
			t.abortConflict(ctx, sc, applied, AbortDuplicateKey)
			return ErrDuplicateKey
		}
		// Index infrastructure failure: record data is applied, so the
		// safest course is still abort-with-rollback.
		t.abortConflict(ctx, sc, applied, AbortError)
		return err
	}

	// Shared-buffer write-through (§5.5.2).
	if t.pn.shared != nil {
		vm := t.pn.vmax()
		for i, ks := range t.order {
			w := t.writes[ks]
			b := vm.Clone()
			b.Add(t.tid)
			t.pn.shared.writeThrough(string(w.key), newRecs[i], w.baseStmp, b)
		}
	}

	// 4. Commit flag, then the commit manager. Committed() blocks until
	// the manager has acknowledged the finish — under the coalesced CM
	// protocol the note rides in a grouped message shared with other
	// workers' starts and finishes, but the visibility guarantee is
	// unchanged: any transaction started after Commit() returns sees this
	// one as committed.
	if err := t.pn.log.MarkCommitted(ctx, t.tid); err != nil {
		// The flag could not be set (store unavailable). The updates are
		// applied; recovery would roll this transaction back, so report
		// failure and abort bookkeeping-wise.
		t.abortConflict(ctx, sc, applied, AbortError)
		return err
	}
	t.state = StateCommitted
	t.pn.mu.Lock()
	t.pn.commits++
	t.pn.mu.Unlock()
	if t.rec != nil {
		wrs := make([]WriteRec, 0, len(t.order))
		for _, ks := range t.order {
			w := t.writes[ks]
			wrs = append(wrs, WriteRec{
				Key:         w.key,
				BaseVersion: w.baseVTID,
				Row:         w.newRow,
				Insert:      w.isInsert,
			})
		}
		t.rec.RecCommit(t.tid, wrs)
	}
	return t.pn.cm.Committed(ctx, t.tid)
}

func (t *Txn) finishAbort(ctx env.Ctx, reason int64) {
	if sc := ctx.Trace(); sc.R.Enabled() {
		sc.R.Instant(sc.Span, t.pn.node.Name(), "abort", int64(t.tid), reason)
	}
	t.state = StateAborted
	t.pn.mu.Lock()
	t.pn.aborts++
	t.pn.mu.Unlock()
	if t.rec != nil {
		t.rec.RecAbort(t.tid)
	}
	t.pn.cm.Aborted(ctx, t.tid)
}

// abortConflict rolls back the applied updates and finishes the abort,
// charging all time the cleanup consumes (rollback round trips, commit
// manager notification) to the conflict component of the transaction's
// latency breakdown.
func (t *Txn) abortConflict(ctx env.Ctx, sc *trace.Scope, applied []int, reason int64) {
	if sc.Agg != nil {
		prev := sc.Agg.Redirect
		sc.Agg.Redirect = trace.CompConflict
		defer func() { sc.Agg.Redirect = prev }()
	}
	t.rollbackApplied(ctx, applied)
	t.finishAbort(ctx, reason)
}

// rollbackApplied reverts the applied subset of this transaction's updates:
// the version with number tid is removed from each record (§4.3 step 4b).
func (t *Txn) rollbackApplied(ctx env.Ctx, applied []int) {
	for _, i := range applied {
		w := t.writes[t.order[i]]
		RollbackVersion(ctx, t.pn.sc, w.key, t.tid)
	}
}

// ownVersionApplied reads a record back after a conditional-put conflict
// and reports whether this transaction's version is already present — the
// signature of a retried apply whose first response was lost in transit.
// The current stamp is captured so a later rollback still targets the
// record correctly.
func (t *Txn) ownVersionApplied(ctx env.Ctx, ks string) bool {
	w := t.writes[ks]
	raw, stamp, err := t.pn.sc.Get(ctx, w.key)
	if err != nil {
		return false
	}
	rec, err := mvcc.Decode(raw)
	if err != nil {
		return false
	}
	if _, ok := rec.Get(t.tid); !ok {
		return false
	}
	w.baseStmp = stamp
	return true
}

// RollbackVersion removes version tid from the record at key, deleting the
// record entirely when no versions remain. It retries through interference
// and is shared with the recovery process (§4.4.1).
func RollbackVersion(ctx env.Ctx, sc *store.Client, key []byte, tid uint64) error {
	for attempt := 0; attempt < 64; attempt++ {
		raw, stamp, err := sc.Get(ctx, key)
		if err == store.ErrNotFound {
			return nil // already gone
		}
		if err != nil {
			return err
		}
		rec, err := mvcc.Decode(raw)
		if err != nil {
			return err
		}
		pruned, nonEmpty := rec.WithoutVersion(tid)
		if len(pruned.Versions) == len(rec.Versions) {
			return nil // version not present (already rolled back)
		}
		if nonEmpty {
			_, err = sc.CondPut(ctx, key, pruned.Encode(), stamp)
		} else {
			err = sc.Delete(ctx, key, stamp)
		}
		if err == nil {
			return nil
		}
		if err != store.ErrConflict {
			return err
		}
	}
	return fmt.Errorf("core: rollback of %q tid %d exhausted retries", key, tid)
}

// maintainIndexes inserts the index entries required by this transaction's
// writes. Indexes are version-unaware (§5.3.2): new entries appear only for
// inserts and for updates that changed an indexed key; obsolete entries are
// garbage collected by readers (§5.4). The tree operations are independent
// and run concurrently so the request batcher coalesces their traffic
// (§5.1).
func (t *Txn) maintainIndexes(ctx env.Ctx) error {
	var ops []func(env.Ctx) error
	for _, ks := range t.order {
		w := t.writes[ks]
		ctx.Work(t.pn.cfg.Costs.IndexOp)
		if w.isInsert {
			ops = append(ops, t.pkInsertOp(w.table, w.table.PKKey(w.newRow), w.rid))
			for _, name := range det.Keys(w.table.Sec) {
				ix := t.secSchema(w.table, name)
				key := relational.AppendRid(relational.IndexKeyFromRow(w.newRow, ix.Cols), w.rid)
				ops = append(ops, t.secInsertOp(w.table.Sec[name], key, w.rid))
			}
			continue
		}
		if w.newRow == nil {
			continue // deletes leave entries for the reader GC
		}
		// Updates: insert entries only for changed indexed keys.
		for _, name := range det.Keys(w.table.Sec) {
			tree := w.table.Sec[name]
			ix := t.secSchema(w.table, name)
			oldKey := relational.IndexKeyFromRow(w.oldRow, ix.Cols)
			newKey := relational.IndexKeyFromRow(w.newRow, ix.Cols)
			if string(oldKey) == string(newKey) {
				continue
			}
			ops = append(ops, t.secInsertOp(tree, relational.AppendRid(newKey, w.rid), w.rid))
		}
		oldPK := w.table.PKKey(w.oldRow)
		newPK := w.table.PKKey(w.newRow)
		if string(oldPK) != string(newPK) {
			ops = append(ops, t.pkInsertOp(w.table, newPK, w.rid))
		}
	}
	return t.parallelIndexOps(ctx, ops)
}

// pkInsertOp builds the primary-key insertion closure with the
// duplicate-key check.
func (t *Txn) pkInsertOp(table *TableInfo, pkKey []byte, rid uint64) func(env.Ctx) error {
	return func(ictx env.Ctx) error {
		existed, err := table.PK.Insert(ictx, pkKey, relational.RidToIndexVal(rid))
		if err != nil {
			return err
		}
		if !existed {
			return nil
		}
		// Another rid already owns this primary key. If its record is
		// alive this is a duplicate-key violation; otherwise the entry
		// is stale and can be replaced.
		dup, err := t.pkAlive(ictx, table, pkKey, rid)
		if err != nil {
			return err
		}
		if dup {
			return ErrDuplicateKey
		}
		_, err = table.PK.Update(ictx, pkKey, relational.RidToIndexVal(rid))
		return err
	}
}

// secInsertOp builds a secondary-index insertion closure.
func (t *Txn) secInsertOp(tree interface {
	Insert(ctx env.Ctx, key, val []byte) (bool, error)
}, key []byte, rid uint64) func(env.Ctx) error {
	return func(ictx env.Ctx) error {
		_, err := tree.Insert(ictx, key, relational.RidToIndexVal(rid))
		return err
	}
}

// pkAlive reports whether the existing PK entry points at a record that
// still has any version (owned by a rid other than ours).
func (t *Txn) pkAlive(ctx env.Ctx, table *TableInfo, pkKey []byte, ourRid uint64) (bool, error) {
	val, ok, err := table.PK.Lookup(ctx, pkKey)
	if err != nil {
		return false, err
	}
	if !ok {
		return false, nil
	}
	rid := relational.RidFromIndexVal(val)
	if rid == ourRid {
		return false, nil
	}
	key := relational.RecordKey(table.Schema.ID, rid)
	_, _, err = t.pn.sc.Get(ctx, key)
	if err == store.ErrNotFound {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	return true, nil
}

// secSchema finds the index schema by name.
func (t *Txn) secSchema(table *TableInfo, name string) *relational.IndexSchema {
	for i := range table.Schema.Indexes {
		if table.Schema.Indexes[i].Name == name {
			return &table.Schema.Indexes[i]
		}
	}
	panic("core: unknown index " + name)
}

// writeVersionSets updates the per-cache-unit version-set entries in the
// store before the data is applied (§5.5.3).
func (t *Txn) writeVersionSets(ctx env.Ctx) error {
	vm := t.pn.vmax()
	vm.Add(t.tid)
	units := make(map[string]bool)
	for _, ks := range t.order {
		w := t.writes[ks]
		units[string(versionSetKey(w.table.Schema.ID, w.rid, t.pn.cfg.CacheUnitSize))] = true
	}
	unitKeys := det.Keys(units)
	ops := make([]wire.Op, 0, len(unitKeys))
	for _, u := range unitKeys {
		ops = append(ops, wire.Op{Code: wire.OpPut, Key: []byte(u), Val: encodeVS(vm)})
	}
	res, err := t.pn.sc.Exec(ctx, ops)
	if err != nil {
		return err
	}
	for _, r := range res {
		if r.Status != wire.StatusOK {
			return fmt.Errorf("core: version-set write failed: %v", r.Status)
		}
	}
	// Invalidate our own buffered units too.
	if t.pn.shared != nil {
		for _, u := range unitKeys {
			t.pn.shared.invalidateUnit(u)
		}
	}
	return nil
}
