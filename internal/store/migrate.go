package store

import (
	"bytes"
	"fmt"
	"sort"
	"time"

	"tell/internal/det"
	"tell/internal/durable"
	"tell/internal/env"
	"tell/internal/resil"
	"tell/internal/wire"
)

// Live range migration, storage-node side. The manager drives a three-phase
// protocol against the source master:
//
//  1. Bulk copy (metaMigCopy): every cell of the range ships to the target
//     in bounded chunks, under short lock holds and an optional per-chunk
//     throttle, so the source keeps serving normal traffic. The reply
//     carries a stamp floor: any write applied after the copy began has a
//     stamp strictly above it.
//  2. Delta catch-up (metaMigDelta, repeated): cells above the floor ship
//     over, shrinking the catch-up window round by round.
//  3. Fenced cutover (metaMigFence): the source atomically fences the range
//     — writes fail with StatusStaleMap, reads stay live (STAR-style) — and
//     the final delta is collected under the same lock hold, so the shipped
//     set is provably complete. The manager then commits the cutover in its
//     journal and publishes the new map.
//
// Every phase is WAL-journaled on both ends (control records under the
// reserved migJournalPart id, skipped by recovery replay), so a crash at
// any boundary leaves a durable trace; ownership after a crash is decided
// by the manager's own journal (see placement.go).

// migJournalPart is the reserved partition id migration journal records ride
// the WAL under. Recovery replay skips it: these are control records, never
// memtable data.
const migJournalPart = ^uint64(0)

// Migration phase names (wire.MigrationStat.Phase and journal records).
const (
	migPhaseCopy    = "copy"
	migPhaseDelta   = "delta"
	migPhaseFence   = "fence"
	migPhaseAdopt   = "adopt"
	migPhaseCutover = "cutover"
	migPhaseDone    = "done"
	migPhaseAborted = "aborted"
)

const (
	// migDeltaRounds bounds delta catch-up rounds before the fence.
	migDeltaRounds = 8
	// migDeltaSettle: once a delta round ships at most this many cells, the
	// catch-up window is small enough to close under the fence.
	migDeltaSettle = 64
)

// findPartLocked returns this node's view of partition pid. Caller holds
// sn.mu.
func (sn *Node) findPartLocked(pid uint64) *Partition {
	for i := range sn.pmap.Partitions {
		if sn.pmap.Partitions[i].ID == pid {
			return &sn.pmap.Partitions[i]
		}
	}
	return nil
}

// migJournal appends one migration control record to the WAL and waits for
// it to be durable. No-op without a durability tier.
func (sn *Node) migJournal(ctx env.Ctx, pid uint64, phase, peer string) error {
	if sn.dur == nil {
		return nil
	}
	rec := durable.Record{Part: migJournalPart, Mut: wire.Mutation{
		Key: []byte(fmt.Sprintf("mig/%d", pid)),
		Val: []byte(phase + "/" + peer),
	}}
	return sn.walCommit(ctx, []durable.Record{rec})
}

// migTrack updates the node's migration telemetry row for pid (served
// through the extended stats protocol; `tellcli top` renders it).
func (sn *Node) migTrack(pid uint64, phase, source, target string, addBytes, addChunks int64) {
	sn.mu.Lock()
	if sn.migs == nil {
		sn.migs = make(map[uint64]*wire.MigrationStat)
	}
	g := sn.migs[pid]
	if g == nil {
		g = &wire.MigrationStat{Node: sn.addr, Range: pid}
		sn.migs[pid] = g
	}
	if phase != "" {
		g.Phase = phase
	}
	if source != "" {
		g.Source = source
	}
	if target != "" {
		g.Target = target
	}
	g.BytesMoved += addBytes
	g.Chunks += addChunks
	sn.mu.Unlock()
}

// fillMigStats appends the node's migration rows to an extended stats
// snapshot, in range order.
func (sn *Node) fillMigStats(ext *wire.StatsExt) {
	sn.mu.Lock()
	for _, pid := range det.Keys(sn.migs) {
		ext.Migr = append(ext.Migr, *sn.migs[pid])
	}
	sn.mu.Unlock()
}

// shipChunk sends one bounded batch of cells to target over the replicate
// protocol (apply-if-newer + WAL on the receiving side, so re-sends are
// safe). Returns the encoded request size.
func (sn *Node) shipChunk(ctx env.Ctx, pid uint64, target string, ms []wire.Mutation) (int, bool) {
	conn, err := sn.conn(target)
	if err != nil {
		return 0, false
	}
	req := &wire.ReplicateRequest{PartitionID: pid, Mutations: ms}
	enc := req.Encode()
	var raw []byte
	err = sn.retr.Do(ctx, resil.ClassReplicate, target, func(int) error {
		var rtErr error
		raw, rtErr = conn.RoundTrip(ctx, enc)
		return rtErr
	})
	if err != nil {
		return 0, false
	}
	rr, err := wire.DecodeReplicateResponse(raw)
	if err != nil || rr.Status != wire.StatusOK {
		return 0, false
	}
	return len(enc), true
}

// copyRange ships every cell of partition pid with stamp > floor to target,
// in transferChunk-sized batches collected under short lock holds (the
// memtable cursor advances between holds, so client traffic interleaves
// with the copy). The returned floor is the node's stamp counter when the
// pass began: a cell the cursor missed because it was written behind the
// cursor carries a stamp above that floor and is caught by the next pass.
func (sn *Node) copyRange(ctx env.Ctx, pid uint64, target string, floor uint64, throttle time.Duration) (migAck, bool) {
	ack := migAck{Status: wire.StatusOK}
	var lastKey []byte
	first := true
	for {
		start := append([]byte(nil), lastKey...)
		resume := lastKey != nil
		var batch []wire.Mutation
		done := true
		sn.mu.Lock()
		part := sn.findPartLocked(pid)
		if part == nil {
			sn.mu.Unlock()
			return ack, false
		}
		if first {
			ack.Floor = sn.stamp
			first = false
		}
		sn.mt.scan(start, nil, false, func(key []byte, c cell) bool {
			if resume && bytes.Equal(key, start) {
				return true // the cursor key itself was shipped last round
			}
			lastKey = append(lastKey[:0], key...)
			if part.Owns(KeyHash(key)) && c.stamp > floor {
				batch = append(batch, cellMutation(key, c))
			}
			if len(batch) >= transferChunk {
				done = false
				return false
			}
			return true
		})
		sn.mu.Unlock()
		if len(batch) > 0 {
			n, ok := sn.shipChunk(ctx, pid, target, batch)
			if !ok {
				return ack, false
			}
			ack.Count += uint64(len(batch))
			ack.Bytes += uint64(n)
		}
		if done {
			return ack, true
		}
		if throttle > 0 {
			ctx.Sleep(throttle)
		}
	}
}

// handleMigCopy serves the bulk-copy phase on the source master.
func (sn *Node) handleMigCopy(ctx env.Ctx, pid uint64, target string) []byte {
	if err := sn.migJournal(ctx, pid, migPhaseCopy, target); err != nil {
		return encodeMigAck(migAck{Status: wire.StatusUnavailable})
	}
	sn.migTrack(pid, migPhaseCopy, sn.addr, target, 0, 0)
	ack, ok := sn.copyRange(ctx, pid, target, 0, sn.MigrateChunkDelay)
	sn.migTrack(pid, "", "", "", int64(ack.Bytes), chunksOf(ack.Count))
	if !ok {
		return encodeMigAck(migAck{Status: wire.StatusUnavailable})
	}
	return encodeMigAck(ack)
}

// handleMigDelta serves one delta catch-up round on the source master.
func (sn *Node) handleMigDelta(ctx env.Ctx, pid uint64, target string, floor uint64) []byte {
	if err := sn.migJournal(ctx, pid, migPhaseDelta, target); err != nil {
		return encodeMigAck(migAck{Status: wire.StatusUnavailable})
	}
	sn.migTrack(pid, migPhaseDelta, sn.addr, target, 0, 0)
	ack, ok := sn.copyRange(ctx, pid, target, floor, sn.MigrateChunkDelay)
	sn.migTrack(pid, "", "", "", int64(ack.Bytes), chunksOf(ack.Count))
	if !ok {
		return encodeMigAck(migAck{Status: wire.StatusUnavailable})
	}
	return encodeMigAck(ack)
}

// handleMigFence raises the write fence on pid and ships the final delta.
// The fence flag and the delta collection happen under one sn.mu hold:
// writes execute under the same lock, so nothing can land between "last
// cell collected" and "writes start failing with StatusStaleMap" — the
// shipped set is complete, which is what makes the cutover linearizable
// for LL/SC (an in-flight conditional either executed before the fence and
// its cell shipped, or fails with the retriable stale-map status).
func (sn *Node) handleMigFence(ctx env.Ctx, pid uint64, target string, floor uint64) []byte {
	sn.mu.Lock()
	part := sn.findPartLocked(pid)
	if part == nil {
		sn.mu.Unlock()
		return encodeMigAck(migAck{Status: wire.StatusError})
	}
	if sn.fenced == nil {
		sn.fenced = make(map[uint64]bool)
	}
	sn.fenced[pid] = true
	var final []wire.Mutation
	sn.mt.scan(nil, nil, false, func(key []byte, c cell) bool {
		if part.Owns(KeyHash(key)) && c.stamp > floor {
			final = append(final, cellMutation(key, c))
		}
		return true
	})
	ack := migAck{Status: wire.StatusOK, Floor: sn.stamp}
	sn.mu.Unlock()

	abort := func() []byte {
		sn.mu.Lock()
		delete(sn.fenced, pid)
		sn.mu.Unlock()
		//lint:allow errdiscard best-effort abort trace; the manager journal decides ownership
		sn.migJournal(ctx, pid, migPhaseAborted, target)
		sn.migTrack(pid, migPhaseAborted, "", "", 0, 0)
		return encodeMigAck(migAck{Status: wire.StatusUnavailable})
	}
	// Journal the fence before shipping: a source crash after this point
	// leaves a durable trace that a fence was raised, and the manager's
	// journal decides whether the cutover committed.
	if err := sn.migJournal(ctx, pid, migPhaseFence, target); err != nil {
		return abort()
	}
	sn.migTrack(pid, migPhaseFence, sn.addr, target, 0, 0)
	for off := 0; off < len(final); off += transferChunk {
		end := off + transferChunk
		if end > len(final) {
			end = len(final)
		}
		n, ok := sn.shipChunk(ctx, pid, target, final[off:end])
		if !ok {
			return abort()
		}
		ack.Count += uint64(end - off)
		ack.Bytes += uint64(n)
	}
	sn.migTrack(pid, "", "", "", int64(ack.Bytes), chunksOf(ack.Count))
	return encodeMigAck(ack)
}

// handleMigFinish clears the fence after the manager committed (or aborted)
// the cutover. The stale data the source keeps for the range is harmless:
// it no longer masters the range, so reads and scans skip it, and if it
// serves as a replica the new master's stream overwrites it by stamp.
func (sn *Node) handleMigFinish(ctx env.Ctx, pid uint64, aborted bool) []byte {
	sn.mu.Lock()
	delete(sn.fenced, pid)
	sn.mu.Unlock()
	phase := migPhaseDone
	if aborted {
		phase = migPhaseAborted
	}
	if err := sn.migJournal(ctx, pid, phase, ""); err != nil {
		return encodeMetaAck(wire.StatusUnavailable)
	}
	sn.migTrack(pid, phase, "", "", 0, 0)
	return encodeMetaAck(wire.StatusOK)
}

// handleMigMedian replies a data-aware split point for range pid: the
// load-weighted median live-key hash, so one split separates roughly half
// of the range's ACCESSES, not half of its keys. Weighting by the per-key
// access counters matters twice over: a hash-midpoint split needs dozens
// of bisection steps when the range's keys sit in a narrow hash band
// (short keys with a shared prefix pin FNV's high bits), and a key-count
// median keeps all the heat on one side when a few keys carry most of the
// traffic (version-set entries, counters). The ack's Floor field carries
// the chosen hash. Unavailable when the node does not master the range or
// its keys give no point that leaves both halves non-empty.
func (sn *Node) handleMigMedian(pid uint64) []byte {
	sn.mu.Lock()
	defer sn.mu.Unlock()
	p := sn.findPartLocked(pid)
	if p == nil || p.Master != sn.addr {
		return encodeMigAck(migAck{Status: wire.StatusUnavailable})
	}
	type kw struct{ h, w uint64 }
	var ks []kw
	var total uint64
	sn.mt.scanHits(func(key []byte, c cell, hits uint64) bool {
		if !c.dead {
			if h := KeyHash(key); p.Owns(h) {
				w := hits + 1 // untouched keys still count as data
				ks = append(ks, kw{h, w})
				total += w
			}
		}
		return true
	})
	if len(ks) == 0 {
		return encodeMigAck(migAck{Status: wire.StatusUnavailable})
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i].h < ks[j].h })
	var acc uint64
	i := 0
	for ; i < len(ks)-1; i++ {
		acc += ks[i].w
		if 2*acc >= total {
			break
		}
	}
	// Keys with hash <= the split point stay in the lower half; back off
	// until the upper half keeps at least one key.
	for i >= 0 && ks[i].h == ks[len(ks)-1].h {
		i--
	}
	if i < 0 {
		return encodeMigAck(migAck{Status: wire.StatusUnavailable})
	}
	return encodeMigAck(migAck{Status: wire.StatusOK, Floor: ks[i].h})
}

// handleMigAdopt journals on the target that it is about to own pid — the
// target-side half of "every phase is journaled on both ends". The map push
// that follows makes the adoption effective; the returned floor is the
// target's stamp counter (it already covers every shipped cell, because
// applying the chunks advanced it past their stamps).
func (sn *Node) handleMigAdopt(ctx env.Ctx, pid uint64, src string) []byte {
	if err := sn.migJournal(ctx, pid, migPhaseAdopt, src); err != nil {
		return encodeMigAck(migAck{Status: wire.StatusUnavailable})
	}
	sn.migTrack(pid, migPhaseAdopt, src, sn.addr, 0, 0)
	sn.mu.Lock()
	ack := migAck{Status: wire.StatusOK, Floor: sn.stamp}
	sn.mu.Unlock()
	return encodeMigAck(ack)
}

// chunksOf converts a shipped-cell count to the chunk count it rode in.
func chunksOf(count uint64) int64 {
	return int64((count + transferChunk - 1) / transferChunk)
}
