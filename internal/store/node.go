package store

import (
	"encoding/binary"
	"fmt"
	"time"

	"tell/internal/det"
	"tell/internal/durable"
	"tell/internal/env"
	"tell/internal/metrics"
	"tell/internal/obs"
	"tell/internal/resil"
	"tell/internal/sanitize"
	"tell/internal/transport"
	"tell/internal/wire"
)

// Costs models the CPU service time a storage node charges per request and
// per operation under simulation. The defaults approximate RamCloud-class
// performance (~1M small operations per second per core, §6.1).
type Costs struct {
	PerRequest time.Duration // fixed dispatch cost per request
	PerOp      time.Duration // per operation in a batch
	PerKB      time.Duration // per kilobyte of values moved
}

// DefaultCosts returns the calibrated storage-node cost model.
func DefaultCosts() Costs {
	return Costs{
		PerRequest: 1 * time.Microsecond,
		PerOp:      1 * time.Microsecond,
		PerKB:      250 * time.Nanosecond,
	}
}

// chargeFor computes the CPU time for a batch of n ops moving b bytes.
func (c Costs) chargeFor(nops, nbytes int) time.Duration {
	return c.PerRequest + time.Duration(nops)*c.PerOp + time.Duration(nbytes)*c.PerKB/1024
}

// Node is one storage node (SN). It serves client batches for the
// partitions it masters, applies replication streams for the partitions it
// replicates, and transfers partition contents during recovery.
type Node struct {
	addr  string
	envr  env.Full
	node  env.Node
	tr    transport.Transport
	costs Costs

	mu    sanitize.Mutex
	mt    *memtable
	stamp uint64
	// pmap is the node's view of the cluster layout; masters caches the
	// partitions this node is currently master for.
	pmap    *PartitionMap
	masters []Partition

	conns   map[string]transport.Conn
	deadRep map[string]bool // replicas that timed out; skipped until reconfigured

	// dedup is the exactly-once window: client write retries replay their
	// cached results instead of re-executing (CounterAdd is not naturally
	// idempotent, and a re-executed CondPut would observe its own stamp).
	dedup *resil.Window
	// gate is the admission controller for client batches: past the
	// inflight bound, requests shed with StatusOverload instead of
	// queueing without limit.
	gate *resil.Gate
	// retr retries replication sends (idempotent: replicas apply-if-newer
	// by stamp) before declaring a replica dead.
	retr *resil.Retrier

	// dur is the durability tier (WAL + fuzzy checkpoints), nil when the
	// node runs memory-only. See durability.go.
	dur *durState

	// fenced marks ranges this node has fenced for live migration: writes
	// fail with StatusStaleMap until the cutover publishes (or aborts),
	// while reads stay live on the old master (see migrate.go). Guarded by
	// mu; nil until the first fence.
	fenced map[uint64]bool
	// migs is the node's migration telemetry (per range, served through the
	// extended stats protocol). Guarded by mu; nil until the first phase.
	migs map[uint64]*wire.MigrationStat
	// MigrateChunkDelay throttles bulk-copy chunk shipping so a migration
	// shares the node with foreground traffic instead of saturating it.
	// 0 (the default) ships back to back. Set at setup time.
	MigrateChunkDelay time.Duration

	// stats
	nGets, nWrites, nScans uint64
	lat                    *metrics.Summary // handler latency per request class

	// obs is the optional telemetry pipeline; obsHeat the node's per-range
	// heat tracker within it. Both are nil-safe, so the hot-path hooks stay
	// unconditional and cost nothing when telemetry is off.
	obs     *obs.Pipeline
	obsHeat *obs.Heat
}

// NewNode creates a storage node serving addr on the given execution node.
// envr provides synchronization primitives matching the execution
// environment (simulated or real).
func NewNode(addr string, envr env.Full, n env.Node, tr transport.Transport, costs Costs) *Node {
	sn := &Node{
		addr:    addr,
		envr:    envr,
		node:    n,
		tr:      tr,
		costs:   costs,
		mt:      newMemtable(int64(KeyHash([]byte(addr)))),
		pmap:    &PartitionMap{},
		conns:   make(map[string]transport.Conn),
		deadRep: make(map[string]bool),
		dedup:   resil.NewWindow(1024),
		gate:    resil.NewGate(envr, 256, time.Millisecond),
		retr:    resil.NewRetrier(),
		lat:     metrics.NewSummary(),
	}
	sn.mu.SetName("store.Node.mu")
	return sn
}

// SetObs attaches the telemetry pipeline: handler-class latencies feed its
// windowed series and every request's per-range activity feeds this node's
// heat tracker. Call at setup time, before the node serves traffic; a nil
// pipeline (the default) keeps all hooks free.
func (sn *Node) SetObs(p *obs.Pipeline) {
	sn.obs = p
	sn.obsHeat = p.Heat(sn.addr)
}

// SetAdmission reconfigures the admission gate: at most maxInflight client
// batches execute concurrently; arrivals beyond that wait up to queueDeadline
// for a slot and are then shed with StatusOverload (experiments size this to
// the offered load they model).
func (sn *Node) SetAdmission(maxInflight int, queueDeadline time.Duration) {
	sn.gate = resil.NewGate(sn.envr, maxInflight, queueDeadline)
}

// SetRetryPolicies replaces the node's retry policy table (replication
// shipping). Call at setup time, before the node serves traffic.
func (sn *Node) SetRetryPolicies(p [resil.NClasses]resil.Policy) { sn.retr.Policies = p }

// Sheds returns how many client batches the admission gate rejected.
func (sn *Node) Sheds() uint64 { return sn.gate.Sheds() }

// Replays returns how many duplicate writes were answered from the dedup
// window instead of re-executing.
func (sn *Node) Replays() uint64 { return sn.dedup.Replays() }

// Addr returns the node's serving address.
func (sn *Node) Addr() string { return sn.addr }

// OpStats returns the node's served operation counts (gets, writes, scans).
func (sn *Node) OpStats() (gets, writes, scans uint64) {
	sn.mu.Lock()
	defer sn.mu.Unlock()
	return sn.nGets, sn.nWrites, sn.nScans
}

// Keys returns the number of stored cells (for tests and capacity checks).
func (sn *Node) Keys() int {
	sn.mu.Lock()
	defer sn.mu.Unlock()
	return sn.mt.len()
}

// Start registers the node's request handler with the transport.
func (sn *Node) Start() error {
	return sn.tr.Listen(sn.addr, sn.node, sn.handle)
}

// Configure installs a new partition map. The node recomputes its roles.
func (sn *Node) Configure(m *PartitionMap) {
	sn.mu.Lock()
	defer sn.mu.Unlock()
	sn.applyMap(m)
}

// CurrentMap returns a copy of the partition map this node is serving
// under. Tests and tools use it to inspect convergence after failovers and
// migrations.
func (sn *Node) CurrentMap() *PartitionMap {
	sn.mu.Lock()
	defer sn.mu.Unlock()
	return sn.pmap.Clone()
}

// OwnedKeys returns every live key this node currently masters, in order.
// Synchronous and lock-bound: a post-run assertion helper for tests, not a
// serving path.
func (sn *Node) OwnedKeys() [][]byte {
	sn.mu.Lock()
	defer sn.mu.Unlock()
	var out [][]byte
	sn.mt.scan(nil, nil, false, func(key []byte, c cell) bool {
		if c.dead {
			return true
		}
		if _, mine := sn.masterOf(KeyHash(key)); mine {
			out = append(out, append([]byte(nil), key...))
		}
		return true
	})
	return out
}

func (sn *Node) applyMap(m *PartitionMap) {
	if m.Epoch < sn.pmap.Epoch {
		return
	}
	sn.pmap = m.Clone()
	sn.masters = sn.masters[:0]
	for i := range sn.pmap.Partitions {
		if sn.pmap.Partitions[i].Master == sn.addr {
			sn.masters = append(sn.masters, sn.pmap.Partitions[i])
		}
	}
	sn.deadRep = make(map[string]bool)
}

// masterOf returns the partition this node masters that owns hash h.
func (sn *Node) masterOf(h uint64) (*Partition, bool) {
	for i := range sn.masters {
		if sn.masters[i].Owns(h) {
			return &sn.masters[i], true
		}
	}
	return nil, false
}

// handle dispatches one incoming message and records the handler latency
// under the request-class name (served by `tellcli stats`).
func (sn *Node) handle(ctx env.Ctx, req []byte) []byte {
	start := ctx.Now()
	// A crashed or WAL-dead node refuses everything, pings included, so the
	// failure detector sees it exactly like a vanished process.
	if sn.dur != nil && sn.dur.down() {
		return unavailableFor(wire.PeekKind(req))
	}
	var class string
	var resp []byte
	switch wire.PeekKind(req) {
	case wire.KindStoreReq:
		// Admission control: shed rather than queue without bound. The
		// shed response is tiny and retryable, so overload degrades into
		// client backoff instead of timeout storms.
		if !sn.gate.Enter(ctx) {
			class, resp = "store", (&wire.StoreResponse{Status: wire.StatusOverload}).Encode()
		} else {
			class, resp = "store", sn.handleStore(ctx, req)
			sn.gate.Exit()
		}
	case wire.KindReplicate:
		class, resp = "replicate", sn.handleReplicate(ctx, req)
	case wire.KindMetaReq:
		class, resp = "meta", sn.handleMeta(ctx, req)
	case wire.KindPing:
		class, resp = "ping", []byte{byte(wire.KindPong)}
	case wire.KindRecoverReq:
		class, resp = "recover", sn.handleRecover(ctx, req)
	case wire.KindStatsReq:
		return sn.handleStats(ctx)
	case wire.KindStatsExtReq:
		ext := sn.obs.StatsExt(sn.addr)
		sn.fillMigStats(ext)
		return ext.Encode()
	default:
		return (&wire.StoreResponse{Status: wire.StatusError}).Encode()
	}
	elapsed := ctx.Now() - start
	sn.mu.Lock()
	sn.lat.Record(class, elapsed)
	sn.mu.Unlock()
	sn.obs.ObserveClass(start, sn.addr, class, elapsed)
	return resp
}

// unavailableFor encodes a kind-appropriate Unavailable refusal (a crashed
// node must answer every protocol family with something its caller decodes).
func unavailableFor(k wire.Kind) []byte {
	switch k {
	case wire.KindReplicate:
		return (&wire.ReplicateResponse{Status: wire.StatusUnavailable}).Encode()
	case wire.KindRecoverReq:
		return (&wire.RecoverResponse{Status: wire.StatusUnavailable}).Encode()
	case wire.KindMetaReq:
		return encodeMetaAck(wire.StatusUnavailable)
	default:
		return (&wire.StoreResponse{Status: wire.StatusUnavailable}).Encode()
	}
}

// handleStats serves a telemetry snapshot: per-class handler-latency digests
// plus operation counts and any trace-recorder counters.
func (sn *Node) handleStats(ctx env.Ctx) []byte {
	snap := &wire.StatsSnapshot{Node: sn.addr, UptimeNs: int64(ctx.Now())}
	sn.mu.Lock()
	for _, name := range sn.lat.Names() {
		h := sn.lat.Get(name)
		snap.Classes = append(snap.Classes, wire.StatsClass{
			Name:   name,
			Count:  h.Count(),
			MeanNs: int64(h.Mean()),
			P99Ns:  int64(h.Percentile(99)),
			MaxNs:  int64(h.Max()),
		})
	}
	snap.Counters = append(snap.Counters,
		wire.StatsCounter{Name: "ops/gets", Value: int64(sn.nGets)},
		wire.StatsCounter{Name: "ops/writes", Value: int64(sn.nWrites)},
		wire.StatsCounter{Name: "ops/scans", Value: int64(sn.nScans)},
		wire.StatsCounter{Name: "store/keys", Value: int64(sn.mt.len())},
		wire.StatsCounter{Name: "resil/replays", Value: int64(sn.dedup.Replays())},
		wire.StatsCounter{Name: "resil/sheds", Value: int64(sn.gate.Sheds())},
	)
	sn.mu.Unlock()
	for _, c := range env.Tracer(sn.envr).Counters() {
		snap.Counters = append(snap.Counters, wire.StatsCounter{Name: "trace/" + c.Name, Value: c.Value})
	}
	return snap.Encode()
}

// handleStore executes a client batch: run every op against the memtable,
// then synchronously replicate the resulting mutations before replying —
// "a SN ensures that data is replicated before acknowledging" (§4.4.2).
func (sn *Node) handleStore(ctx env.Ctx, raw []byte) []byte {
	req, err := wire.DecodeStoreRequest(raw)
	if err != nil {
		return (&wire.StoreResponse{Status: wire.StatusError}).Encode()
	}
	start := ctx.Now()
	ctx.Work(sn.costs.chargeFor(len(req.Ops), len(raw)))

	resp := &wire.StoreResponse{Status: wire.StatusOK}
	resp.Results = make([]wire.Result, len(req.Ops))
	// Mutations produced by this batch, grouped by partition.
	muts := make(map[uint64][]wire.Mutation)
	// Per-range activity of this batch, flushed to the heat tracker after
	// the reply is ready (nil when telemetry is off — zero cost).
	var heat map[uint64]*obs.HeatDelta
	if sn.obsHeat != nil {
		heat = make(map[uint64]*obs.HeatDelta)
	}

	// executed collects the indices of tokened writes this request actually
	// ran; their outcomes enter the dedup window only after replication
	// succeeded, so a replayed OK always implies a replicated write.
	var executed []int

	sn.mu.Lock()
	resp.Epoch = sn.pmap.Epoch
	for i := range req.Ops {
		op := &req.Ops[i]
		if req.Client != "" && op.Seq != 0 && op.Code.IsWrite() {
			cached, st := sn.dedup.Begin(req.Client, op.Seq)
			switch st {
			case resil.StateReplay:
				// Duplicate of a completed write: answer from the cache,
				// byte-identical to the original, without re-executing or
				// re-replicating.
				r := wire.NewReader(cached)
				wire.DecodeResult(r, &resp.Results[i])
				continue
			case resil.StateInFlight, resil.StateStale:
				// Racing duplicate (original still executing) or a token
				// below the window floor: refuse rather than risk a double
				// execution. Unavailable is retryable; by the retry the
				// original has completed and replays.
				resp.Results[i] = wire.Result{Status: wire.StatusUnavailable}
				continue
			}
			executed = append(executed, i)
		}
		sn.execOp(op, &resp.Results[i], muts, heat)
	}
	// Snapshot replica targets under the lock, in sorted partition order:
	// the jobs become replication messages, whose emission order must not
	// depend on map iteration. WAL records are collected in the same order.
	var jobs []replJob
	var walRecs []durable.Record
	for _, pid := range det.Keys(muts) {
		ms := muts[pid]
		if sn.dur != nil {
			for i := range ms {
				walRecs = append(walRecs, durable.Record{Part: pid, Mut: ms[i]})
			}
		}
		var part *Partition
		for j := range sn.masters {
			if sn.masters[j].ID == pid {
				part = &sn.masters[j]
				break
			}
		}
		if part == nil {
			continue
		}
		for _, rep := range part.Replicas {
			if sn.deadRep[rep] {
				continue
			}
			jobs = append(jobs, replJob{
				req:  &wire.ReplicateRequest{PartitionID: pid, Mutations: ms},
				addr: rep,
			})
		}
	}
	// Map piggybacking: when the client's map lags this node's, or an op hit
	// a fenced range, ride the full map along so long-lived clients converge
	// without a lookup-service round trip. (During a fence the node's map
	// may still match the client's — the piggyback is then same-epoch and
	// the client falls back to refreshing from the manager.)
	var pmPiggy *PartitionMap
	staleReq := req.Epoch != 0 && req.Epoch < sn.pmap.Epoch
	if !staleReq {
		for i := range resp.Results {
			if resp.Results[i].Status == wire.StatusStaleMap {
				staleReq = true
				break
			}
		}
	}
	if staleReq {
		pmPiggy = sn.pmap.Clone()
	}
	sn.mu.Unlock()
	if pmPiggy != nil {
		resp.Map = pmPiggy.Encode()
	}

	// Scans cost CPU proportional to the records they examined (Count
	// carries the examined-row count for scan ops) and to the bytes they
	// return — the dominant cost of push-down processing (§5.2).
	var scanned int64
	var respBytes int
	for i := range resp.Results {
		if code := req.Ops[i].Code; code == wire.OpScan || code == wire.OpScanFiltered {
			scanned += resp.Results[i].Count
		}
		for _, p := range resp.Results[i].Pairs {
			respBytes += len(p.Val)
		}
	}
	if scanned > 0 || respBytes > 0 {
		ctx.Work(time.Duration(scanned)*sn.costs.PerOp/4 +
			time.Duration(respBytes)*sn.costs.PerKB/1024)
	}

	// Log before ack: the batch's mutations must be durable before the
	// client can observe success. Group commit batches concurrent handlers
	// into one backend round-trip. A failed log means the node fail-stops;
	// release the dedup tokens so the writes can retry elsewhere.
	if err := sn.walCommit(ctx, walRecs); err != nil {
		for _, i := range executed {
			sn.dedup.Abort(req.Client, req.Ops[i].Seq)
		}
		return (&wire.StoreResponse{Status: wire.StatusUnavailable}).Encode()
	}

	sn.replicateAll(ctx, jobs)

	// Seal executed tokens now that replication is done. WrongPartition and
	// StaleMap mean the op did not execute here — release the token so the
	// client can retry against the real master after a map refresh.
	for _, i := range executed {
		if st := resp.Results[i].Status; st == wire.StatusWrongPartition || st == wire.StatusStaleMap {
			sn.dedup.Abort(req.Client, req.Ops[i].Seq)
			continue
		}
		w := wire.GetWriter()
		wire.EncodeResult(w, &resp.Results[i])
		b := w.Finish()
		sn.dedup.Commit(req.Client, req.Ops[i].Seq, b) // Commit clones
		wire.PutBuf(b)
	}

	// Flush the batch's per-range activity, attributing the batch's full
	// handler latency to each touched range (partition-granular
	// approximation: one batch rarely spans partitions, and the heat feed
	// needs relative weight, not exact accounting). Ranges in sorted order
	// so tracker state mutates identically across same-seed runs.
	if heat != nil {
		elapsed := ctx.Now() - start
		for _, pid := range det.Keys(heat) {
			d := heat[pid]
			d.Lat, d.LatN = elapsed, 1
			sn.obsHeat.Add(start, pid, *d)
		}
	}
	return resp.Encode()
}

// replJob pairs a replication batch with its destination.
type replJob struct {
	req  *wire.ReplicateRequest
	addr string
}

// replicateAll ships mutation batches to all replicas in parallel and waits
// for every acknowledgement.
func (sn *Node) replicateAll(ctx env.Ctx, jobs []replJob) {
	if len(jobs) == 0 {
		return
	}
	if len(jobs) == 1 {
		sn.replicateOne(ctx, jobs[0].addr, jobs[0].req)
		return
	}
	done := make([]env.Future, len(jobs))
	for i, j := range jobs {
		i, j := i, j
		done[i] = sn.envr.NewFuture()
		ctx.Go("replicate", func(rctx env.Ctx) {
			sn.replicateOne(rctx, j.addr, j.req)
			done[i].Set(nil)
		})
	}
	for _, f := range done {
		f.Get(ctx)
	}
}

func (sn *Node) replicateOne(ctx env.Ctx, addr string, req *wire.ReplicateRequest) {
	conn, err := sn.conn(addr)
	if err != nil {
		sn.markReplicaDead(addr)
		return
	}
	// Resending a replication batch is safe without tokens: replicas apply
	// mutations if-newer by stamp, so duplicates are no-ops. Retry transient
	// losses before giving a replica up for dead — a single dropped message
	// must not degrade the replication factor.
	enc := req.Encode()
	err = sn.retr.Do(ctx, resil.ClassReplicate, addr, func(int) error {
		raw, rtErr := conn.RoundTrip(ctx, enc)
		if rtErr != nil {
			return rtErr
		}
		rr, rtErr := wire.DecodeReplicateResponse(raw)
		if rtErr != nil {
			return resil.Permanent(rtErr)
		}
		if rr.Status != wire.StatusOK {
			// A refusal (crashed node draining in its network buffers, WAL
			// failure) will not heal by resending: let the failure detector
			// reconfigure rather than count this replica as caught up.
			return resil.Permanent(fmt.Errorf("store: replica %s refused: %v", addr, rr.Status))
		}
		return nil
	})
	if err != nil {
		// The replica stayed unreachable through the retry budget. The
		// management node's failure detector will reconfigure; until then
		// skip it so the partition stays available.
		sn.markReplicaDead(addr)
	}
}

func (sn *Node) markReplicaDead(addr string) {
	sn.mu.Lock()
	sn.deadRep[addr] = true
	sn.mu.Unlock()
}

func (sn *Node) conn(addr string) (transport.Conn, error) {
	sn.mu.Lock()
	if c, ok := sn.conns[addr]; ok {
		sn.mu.Unlock()
		return c, nil
	}
	sn.mu.Unlock()
	// Dial outside the lock: a slow dial must not stall the request path.
	c, err := sn.tr.Dial(sn.node, addr)
	if err != nil {
		return nil, err
	}
	sn.mu.Lock()
	defer sn.mu.Unlock()
	if exist, ok := sn.conns[addr]; ok {
		// Lost a dial race; keep the first connection.
		//lint:allow errdiscard closing a redundant just-dialed connection nothing was sent on
		c.Close()
		return exist, nil
	}
	sn.conns[addr] = c
	return c, nil
}

// counterBytes encodes a counter value the way Get returns it.
func counterBytes(v int64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, uint64(v))
	return b
}

// heatFor returns the accumulating delta for partition pid, or nil when
// telemetry is off (heat is nil then, so callers guard on the result).
func heatFor(heat map[uint64]*obs.HeatDelta, pid uint64) *obs.HeatDelta {
	if heat == nil {
		return nil
	}
	d := heat[pid]
	if d == nil {
		d = &obs.HeatDelta{}
		heat[pid] = d
	}
	return d
}

// execOp runs a single operation against the memtable, attributing its
// activity to the owning partition in heat (nil when telemetry is off).
// Caller holds sn.mu.
func (sn *Node) execOp(op *wire.Op, res *wire.Result, muts map[uint64][]wire.Mutation, heat map[uint64]*obs.HeatDelta) {
	if op.Code == wire.OpScan || op.Code == wire.OpScanFiltered {
		if op.Code == wire.OpScan {
			sn.execScan(op, res)
		} else {
			sn.execScanFiltered(op, res)
		}
		// A scan's rows are attributed to the partition of its start key —
		// range scans are contiguous in key space, so this identifies the
		// range driving scan load without re-hashing every returned row.
		if heat != nil {
			if p, ok := sn.pmap.Lookup(KeyHash(op.Key)); ok {
				d := heatFor(heat, p.ID)
				d.Reads += res.Count
				for i := range res.Pairs {
					d.ReadBytes += int64(len(res.Pairs[i].Val))
				}
			}
		}
		return
	}
	h := KeyHash(op.Key)
	part, ok := sn.masterOf(h)
	if !ok {
		// Replica reads: a client whose circuit breaker has opened on the
		// master may ask a replica directly (op.Replica). Replication is
		// synchronous, so the replica has every acknowledged write.
		if op.Code == wire.OpGet && op.Replica && sn.replicaOf(h) {
			sn.execGet(op, res)
			if heat != nil {
				if p, pok := sn.pmap.Lookup(h); pok {
					d := heatFor(heat, p.ID)
					d.Reads++
					d.ReadBytes += int64(len(res.Val))
				}
			}
			return
		}
		res.Status = wire.StatusWrongPartition
		return
	}
	// A range fenced for migration refuses writes with the retriable
	// stale-map status: an in-flight LL/SC either executed before the fence
	// (and its cell shipped with the final delta) or fails here and retries
	// against the new master once the cutover map arrives. Reads stay live —
	// the fenced copy is complete until the cutover publishes.
	if op.Code.IsWrite() && sn.fenced[part.ID] {
		res.Status = wire.StatusStaleMap
		return
	}
	if heat != nil {
		// Per-key access counter: the load weight behind data-aware split
		// points. Only meaningful (and only paid for) when telemetry flows.
		sn.mt.touch(op.Key)
		defer func() {
			d := heatFor(heat, part.ID)
			if op.Code == wire.OpGet {
				d.Reads++
				d.ReadBytes += int64(len(res.Val))
			} else {
				d.Writes++
				d.WriteBytes += int64(len(op.Val))
			}
			if res.Status == wire.StatusConflict {
				d.Conflicts++
			}
		}()
	}
	switch op.Code {
	case wire.OpGet:
		sn.execGet(op, res)

	case wire.OpPut:
		sn.nWrites++
		sn.stamp++
		c := cell{val: append([]byte(nil), op.Val...), stamp: sn.stamp}
		sn.mt.set(op.Key, c)
		res.Status = wire.StatusOK
		res.Stamp = c.stamp
		muts[part.ID] = append(muts[part.ID], wire.Mutation{Key: op.Key, Val: op.Val, Stamp: c.stamp})

	case wire.OpCondPut:
		sn.nWrites++
		cur, exists := sn.mt.get(op.Key)
		if exists && cur.dead {
			exists = false // tombstones read as absent
		}
		// LL/SC store-conditional: the expected stamp must match the
		// cell's current stamp exactly; 0 means "must not exist".
		if op.Stamp == 0 {
			if exists {
				res.Status = wire.StatusConflict
				res.Stamp = cur.stamp
				return
			}
		} else {
			if !exists {
				res.Status = wire.StatusNotFound
				return
			}
			if cur.stamp != op.Stamp {
				res.Status = wire.StatusConflict
				res.Stamp = cur.stamp
				return
			}
		}
		sn.stamp++
		c := cell{val: append([]byte(nil), op.Val...), stamp: sn.stamp}
		sn.mt.set(op.Key, c)
		res.Status = wire.StatusOK
		res.Stamp = c.stamp
		muts[part.ID] = append(muts[part.ID], wire.Mutation{Key: op.Key, Val: op.Val, Stamp: c.stamp})

	case wire.OpDelete:
		sn.nWrites++
		cur, exists := sn.mt.get(op.Key)
		if !exists || cur.dead {
			res.Status = wire.StatusNotFound
			return
		}
		if op.Stamp != 0 && cur.stamp != op.Stamp {
			res.Status = wire.StatusConflict
			res.Stamp = cur.stamp
			return
		}
		sn.stamp++
		// Deletes leave a tombstone so late-arriving replication of older
		// writes cannot resurrect the key (last-writer-wins by stamp).
		sn.mt.set(op.Key, cell{dead: true, stamp: sn.stamp})
		res.Status = wire.StatusOK
		muts[part.ID] = append(muts[part.ID], wire.Mutation{Key: op.Key, Deleted: true, Stamp: sn.stamp})

	case wire.OpCounterAdd:
		sn.nWrites++
		cur, exists := sn.mt.get(op.Key)
		if !exists || cur.dead {
			cur = cell{isCtr: true}
		}
		if !cur.isCtr {
			res.Status = wire.StatusError
			return
		}
		cur.counter += op.Delta
		sn.stamp++
		cur.stamp = sn.stamp
		sn.mt.set(op.Key, cur)
		res.Status = wire.StatusOK
		res.Count = cur.counter
		res.Stamp = cur.stamp
		muts[part.ID] = append(muts[part.ID], wire.Mutation{Key: op.Key, Counter: true, CtrVal: cur.counter, Stamp: cur.stamp})

	default:
		res.Status = wire.StatusError
	}
}

// execGet serves a point read from the memtable. Caller holds sn.mu.
func (sn *Node) execGet(op *wire.Op, res *wire.Result) {
	sn.nGets++
	c, ok := sn.mt.get(op.Key)
	if !ok || c.dead {
		res.Status = wire.StatusNotFound
		return
	}
	res.Status = wire.StatusOK
	res.Stamp = c.stamp
	if c.isCtr {
		res.Val = counterBytes(c.counter)
		res.Count = c.counter
	} else {
		res.Val = c.val
	}
}

// replicaOf reports whether this node replicates the partition owning hash
// h. Caller holds sn.mu.
func (sn *Node) replicaOf(h uint64) bool {
	for i := range sn.pmap.Partitions {
		p := &sn.pmap.Partitions[i]
		if !p.Owns(h) {
			continue
		}
		for _, rep := range p.Replicas {
			if rep == sn.addr {
				return true
			}
		}
	}
	return false
}

// execScan returns pairs in [Key, EndKey) that this node masters, up to
// Limit. Caller holds sn.mu.
func (sn *Node) execScan(op *wire.Op, res *wire.Result) {
	sn.nScans++
	res.Status = wire.StatusOK
	limit := int(op.Limit)
	if limit == 0 {
		limit = 1 << 30
	}
	var hi []byte
	if len(op.EndKey) > 0 {
		hi = op.EndKey
	}
	sn.mt.scan(op.Key, hi, op.Reverse, func(key []byte, c cell) bool {
		res.Count++
		if c.dead {
			return true
		}
		if _, mine := sn.masterOf(KeyHash(key)); !mine {
			return true // not ours; a peer will return it
		}
		val := c.val
		if c.isCtr {
			val = counterBytes(c.counter)
		}
		res.Pairs = append(res.Pairs, wire.Pair{
			Key:   append([]byte(nil), key...),
			Val:   append([]byte(nil), val...),
			Stamp: c.stamp,
		})
		return len(res.Pairs) < limit
	})
}

// handleReplicate applies a mutation stream from a partition master.
func (sn *Node) handleReplicate(ctx env.Ctx, raw []byte) []byte {
	req, err := wire.DecodeReplicateRequest(raw)
	if err != nil {
		return (&wire.ReplicateResponse{Status: wire.StatusError}).Encode()
	}
	ctx.Work(sn.costs.chargeFor(len(req.Mutations), len(raw)))
	sn.mu.Lock()
	for i := range req.Mutations {
		sn.applyMutationLocked(&req.Mutations[i])
	}
	sn.mu.Unlock()
	if sn.obsHeat != nil {
		d := obs.HeatDelta{Writes: int64(len(req.Mutations))}
		for i := range req.Mutations {
			d.WriteBytes += int64(len(req.Mutations[i].Val))
		}
		sn.obsHeat.Add(ctx.Now(), req.PartitionID, d)
	}
	// The replica's copy must be as durable as the master's: a write is
	// only acknowledged once every live replica logged it.
	if sn.dur != nil {
		recs := make([]durable.Record, len(req.Mutations))
		for i := range req.Mutations {
			recs[i] = durable.Record{Part: req.PartitionID, Mut: req.Mutations[i]}
		}
		if err := sn.walCommit(ctx, recs); err != nil {
			return (&wire.ReplicateResponse{Status: wire.StatusUnavailable}).Encode()
		}
	}
	return (&wire.ReplicateResponse{Status: wire.StatusOK}).Encode()
}

// applyMutationLocked applies one replicated mutation if-newer by stamp.
// Caller holds sn.mu.
//
// Apply-if-newer: concurrent replication batches (and parallel recovery
// workers) may deliver mutations out of order; stamps are unique and
// monotonic per master, so last-writer-wins reconstructs the master's final
// state regardless of arrival order.
func (sn *Node) applyMutationLocked(m *wire.Mutation) {
	if cur, ok := sn.mt.get(m.Key); ok && cur.stamp >= m.Stamp {
		return
	}
	sn.mt.set(m.Key, cellFromMutation(m))
	// Track the master's stamps so that, if promoted, this node issues
	// strictly larger ones (keeping LL/SC ABA-safe).
	if m.Stamp > sn.stamp {
		sn.stamp = m.Stamp
	}
}

// handleMeta serves control messages from the management node.
func (sn *Node) handleMeta(ctx env.Ctx, raw []byte) []byte {
	r := wire.NewReader(raw)
	r.Byte() // kind, already checked
	switch metaSub(r.Byte()) {
	case metaConfigure:
		m, err := DecodePartitionMapFrom(r)
		if err != nil {
			return encodeMetaAck(wire.StatusError)
		}
		sn.mu.Lock()
		// Promotion safety: issue stamps beyond anything the old
		// master might have assigned that we did not see.
		sn.stamp += stampSkipOnPromotion
		sn.applyMap(m)
		sn.mu.Unlock()
		return encodeMetaAck(wire.StatusOK)

	case metaTransfer:
		pid := r.Uvarint()
		target := r.String()
		if r.Err() != nil {
			return encodeMetaAck(wire.StatusError)
		}
		if !sn.transferPartition(ctx, pid, target) {
			return encodeMetaAck(wire.StatusUnavailable)
		}
		return encodeMetaAck(wire.StatusOK)

	case metaMigCopy, metaMigDelta, metaMigFence, metaMigFinish, metaMigAdopt, metaMigMedian:
		sub := metaSub(raw[1])
		pid := r.Uvarint()
		peer := r.String()
		floor := r.Uvarint()
		if r.Err() != nil {
			return encodeMetaAck(wire.StatusError)
		}
		switch sub {
		case metaMigCopy:
			return sn.handleMigCopy(ctx, pid, peer)
		case metaMigDelta:
			return sn.handleMigDelta(ctx, pid, peer, floor)
		case metaMigFence:
			return sn.handleMigFence(ctx, pid, peer, floor)
		case metaMigFinish:
			return sn.handleMigFinish(ctx, pid, floor != 0)
		case metaMigMedian:
			return sn.handleMigMedian(pid)
		default:
			return sn.handleMigAdopt(ctx, pid, peer)
		}
	}
	return encodeMetaAck(wire.StatusError)
}

// stampSkipOnPromotion is the stamp gap a freshly promoted master leaves to
// cover writes the failed master acknowledged but this replica never saw
// (impossible under synchronous replication, but cheap insurance).
const stampSkipOnPromotion = 1 << 20

// transferChunk is how many cells a partition transfer ships per request.
const transferChunk = 512

// transferPartition copies all cells of partition pid to target, restoring
// the replication factor after a node loss (§4.4.2: "eventually, the system
// re-organizes itself and restores the replication level"). It shares the
// migration copy machinery: a floor-0 bulk pass followed by delta rounds,
// so cells written while the copy runs are re-shipped under a stamp floor
// instead of relying on the live replication stream racing the scan, and
// the bulk pass holds the lock per chunk, not for the whole partition.
func (sn *Node) transferPartition(ctx env.Ctx, pid uint64, target string) bool {
	ack, ok := sn.copyRange(ctx, pid, target, 0, 0)
	if !ok {
		return false
	}
	floor := ack.Floor
	for round := 0; round < migDeltaRounds; round++ {
		d, ok := sn.copyRange(ctx, pid, target, floor, 0)
		if !ok {
			return false
		}
		floor = d.Floor
		if d.Count <= migDeltaSettle {
			// The remaining window is one delta's worth of writes, which the
			// live replication stream to the (already configured) new replica
			// covers from here on.
			break
		}
	}
	return true
}

// BulkLoad inserts cells directly into the node, bypassing the network path.
// It exists for benchmark population: loading the TPC-C dataset through the
// full RPC stack would dominate experiment runtime without exercising
// anything the experiments measure. Stamps are assigned normally, so LL/SC
// semantics hold for all subsequent traffic. Replicas must be loaded with
// LoadReplica using the returned stamps (the cluster helper does this).
func (sn *Node) BulkLoad(key, val []byte) uint64 {
	sn.mu.Lock()
	defer sn.mu.Unlock()
	sn.stamp++
	sn.mt.set(key, cell{val: append([]byte(nil), val...), stamp: sn.stamp})
	return sn.stamp
}

// LoadReplica installs a cell with a fixed stamp (bulk-load path only).
func (sn *Node) LoadReplica(key, val []byte, stamp uint64) {
	sn.mu.Lock()
	defer sn.mu.Unlock()
	sn.mt.set(key, cell{val: append([]byte(nil), val...), stamp: stamp})
	if stamp > sn.stamp {
		sn.stamp = stamp
	}
}

// BulkLoadCounter installs a counter cell directly (bulk-load path only).
func (sn *Node) BulkLoadCounter(key []byte, v int64) uint64 {
	sn.mu.Lock()
	defer sn.mu.Unlock()
	sn.stamp++
	sn.mt.set(key, cell{isCtr: true, counter: v, stamp: sn.stamp})
	return sn.stamp
}

// LoadReplicaCounter installs a counter cell with a fixed stamp (bulk-load
// path only).
func (sn *Node) LoadReplicaCounter(key []byte, v int64, stamp uint64) {
	sn.mu.Lock()
	defer sn.mu.Unlock()
	sn.mt.set(key, cell{isCtr: true, counter: v, stamp: stamp})
	if stamp > sn.stamp {
		sn.stamp = stamp
	}
}
