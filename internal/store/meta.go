package store

import (
	"fmt"

	"tell/internal/wire"
)

// The meta/control protocol carries cluster-management traffic: partition
// map lookups from clients, configuration pushes from the manager to the
// storage nodes, partition transfers during re-replication, and health
// pings. Frames are [KindMetaReq|KindMetaResp, subtype, payload].

type metaSub byte

const (
	metaGetMap metaSub = iota + 1
	metaConfigure
	metaTransfer
	metaAck
	metaMap
)

func encodeMetaGetMap() []byte {
	return []byte{byte(wire.KindMetaReq), byte(metaGetMap)}
}

func encodeMetaConfigure(m *PartitionMap) []byte {
	w := wire.NewWriter(64)
	w.Byte(byte(wire.KindMetaReq))
	w.Byte(byte(metaConfigure))
	m.EncodeTo(w)
	return w.Bytes()
}

// encodeMetaTransfer asks a node to copy partition pid's data to target,
// which will then serve as a fresh replica.
func encodeMetaTransfer(pid uint64, target string) []byte {
	w := wire.NewWriter(32)
	w.Byte(byte(wire.KindMetaReq))
	w.Byte(byte(metaTransfer))
	w.Uvarint(pid)
	w.String(target)
	return w.Bytes()
}

func encodeMetaAck(st wire.Status) []byte {
	return []byte{byte(wire.KindMetaResp), byte(metaAck), byte(st)}
}

func encodeMetaMap(m *PartitionMap) []byte {
	w := wire.NewWriter(64)
	w.Byte(byte(wire.KindMetaResp))
	w.Byte(byte(metaMap))
	m.EncodeTo(w)
	return w.Bytes()
}

func decodeMetaResp(b []byte) (metaSub, *wire.Reader, error) {
	r := wire.NewReader(b)
	if k := wire.Kind(r.Byte()); k != wire.KindMetaResp {
		return 0, nil, fmt.Errorf("store: kind %d is not a meta response", k)
	}
	return metaSub(r.Byte()), r, r.Err()
}

// decodeAckStatus parses a metaAck response.
func decodeAckStatus(b []byte) (wire.Status, error) {
	sub, r, err := decodeMetaResp(b)
	if err != nil {
		return 0, err
	}
	if sub != metaAck {
		return 0, fmt.Errorf("store: meta subtype %d is not an ack", sub)
	}
	return wire.Status(r.Byte()), r.Err()
}

// decodeMapResp parses a metaMap response.
func decodeMapResp(b []byte) (*PartitionMap, error) {
	sub, r, err := decodeMetaResp(b)
	if err != nil {
		return nil, err
	}
	if sub != metaMap {
		return nil, fmt.Errorf("store: meta subtype %d is not a map", sub)
	}
	return DecodePartitionMapFrom(r)
}
