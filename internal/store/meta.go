package store

import (
	"fmt"

	"tell/internal/wire"
)

// The meta/control protocol carries cluster-management traffic: partition
// map lookups from clients, configuration pushes from the manager to the
// storage nodes, partition transfers during re-replication, and health
// pings. Frames are [KindMetaReq|KindMetaResp, subtype, payload].

type metaSub byte

const (
	metaGetMap metaSub = iota + 1
	metaConfigure
	metaTransfer
	metaAck
	metaMap
	// Live-migration subtypes (manager → storage node). Appended after the
	// original subtypes so every earlier byte value is stable on the wire.
	metaMigCopy   // source: bulk-copy pid to target (floor 0), reply floor
	metaMigDelta  // source: ship cells above floor to target, reply new floor
	metaMigFence  // source: fence pid, ship the final delta, reply floor
	metaMigFinish // source: clear the fence (commit or abort)
	metaMigAdopt  // target: journal adoption of pid ahead of the map push
	metaMigAck    // response: status + stamp floor + shipped count/bytes
	metaMigMedian // master: reply the median live-key hash in pid (split point)
)

func encodeMetaGetMap() []byte {
	return []byte{byte(wire.KindMetaReq), byte(metaGetMap)}
}

func encodeMetaConfigure(m *PartitionMap) []byte {
	w := wire.NewWriter(64)
	w.Byte(byte(wire.KindMetaReq))
	w.Byte(byte(metaConfigure))
	m.EncodeTo(w)
	return w.Bytes()
}

// encodeMetaTransfer asks a node to copy partition pid's data to target,
// which will then serve as a fresh replica.
func encodeMetaTransfer(pid uint64, target string) []byte {
	w := wire.NewWriter(32)
	w.Byte(byte(wire.KindMetaReq))
	w.Byte(byte(metaTransfer))
	w.Uvarint(pid)
	w.String(target)
	return w.Bytes()
}

func encodeMetaAck(st wire.Status) []byte {
	return []byte{byte(wire.KindMetaResp), byte(metaAck), byte(st)}
}

func encodeMetaMap(m *PartitionMap) []byte {
	w := wire.NewWriter(64)
	w.Byte(byte(wire.KindMetaResp))
	w.Byte(byte(metaMap))
	m.EncodeTo(w)
	return w.Bytes()
}

// encodeMigReq builds one migration control request. target is the copy
// destination for copy/delta/fence, the source address for adopt, and unused
// for finish (where floor!=0 signals an abort).
func encodeMigReq(sub metaSub, pid uint64, target string, floor uint64) []byte {
	w := wire.NewWriter(32)
	w.Byte(byte(wire.KindMetaReq))
	w.Byte(byte(sub))
	w.Uvarint(pid)
	w.String(target)
	w.Uvarint(floor)
	return w.Bytes()
}

// migAck is the decoded metaMigAck response: the shipped stamp floor (any
// cell written after the request has a stamp strictly above it) plus volume
// accounting for throttling and telemetry.
type migAck struct {
	Status wire.Status
	Floor  uint64
	Count  uint64
	Bytes  uint64
}

func encodeMigAck(a migAck) []byte {
	w := wire.NewWriter(24)
	w.Byte(byte(wire.KindMetaResp))
	w.Byte(byte(metaMigAck))
	w.Byte(byte(a.Status))
	w.Uvarint(a.Floor)
	w.Uvarint(a.Count)
	w.Uvarint(a.Bytes)
	return w.Bytes()
}

func decodeMigAck(b []byte) (migAck, error) {
	sub, r, err := decodeMetaResp(b)
	if err != nil {
		return migAck{}, err
	}
	if sub == metaAck {
		// A crashed node answers every meta request with a plain ack.
		return migAck{Status: wire.Status(r.Byte())}, r.Err()
	}
	if sub != metaMigAck {
		return migAck{}, fmt.Errorf("store: meta subtype %d is not a migration ack", sub)
	}
	a := migAck{Status: wire.Status(r.Byte()), Floor: r.Uvarint(), Count: r.Uvarint(), Bytes: r.Uvarint()}
	return a, r.Err()
}

func decodeMetaResp(b []byte) (metaSub, *wire.Reader, error) {
	r := wire.NewReader(b)
	if k := wire.Kind(r.Byte()); k != wire.KindMetaResp {
		return 0, nil, fmt.Errorf("store: kind %d is not a meta response", k)
	}
	return metaSub(r.Byte()), r, r.Err()
}

// decodeAckStatus parses a metaAck response.
func decodeAckStatus(b []byte) (wire.Status, error) {
	sub, r, err := decodeMetaResp(b)
	if err != nil {
		return 0, err
	}
	if sub != metaAck {
		return 0, fmt.Errorf("store: meta subtype %d is not an ack", sub)
	}
	return wire.Status(r.Byte()), r.Err()
}

// decodeMapResp parses a metaMap response.
func decodeMapResp(b []byte) (*PartitionMap, error) {
	sub, r, err := decodeMetaResp(b)
	if err != nil {
		return nil, err
	}
	if sub != metaMap {
		return nil, fmt.Errorf("store: meta subtype %d is not a map", sub)
	}
	return DecodePartitionMapFrom(r)
}
