package store_test

import (
	"fmt"
	"testing"
	"time"

	"tell/internal/env"
	"tell/internal/sim"
	"tell/internal/store"
	"tell/internal/testutil"
	"tell/internal/transport"
	"tell/internal/wire"
)

// harness bundles a simulated storage cluster with a client.
type harness struct {
	k       *sim.Kernel
	envr    env.Full
	net     *transport.SimNet
	cluster *store.Cluster
	client  *store.Client
	pn      env.Node
}

func newHarness(t *testing.T, cfg store.ClusterConfig) *harness {
	t.Helper()
	k := sim.NewKernel(testutil.Seed(t, 7))
	envr := env.NewSim(k)
	net := transport.NewSimNet(k, transport.InfiniBand())
	cl, err := store.NewCluster(envr, net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pn := envr.NewNode("pn0", 4)
	return &harness{k: k, envr: envr, net: net, cluster: cl, client: cl.NewClient(pn), pn: pn}
}

// run executes fn as a simulated activity and drives the kernel until the
// simulation drains or the deadline passes.
func (h *harness) run(t *testing.T, fn func(ctx env.Ctx)) {
	t.Helper()
	done := false
	h.pn.Go("test", func(ctx env.Ctx) {
		fn(ctx)
		done = true
		h.k.Stop()
	})
	if err := h.k.RunUntil(sim.Time(600 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("test activity did not finish (simulated deadlock or timeout)")
	}
}

func (h *harness) close() { h.k.Shutdown() }

func TestGetPutRoundTrip(t *testing.T) {
	h := newHarness(t, store.ClusterConfig{NumNodes: 3})
	defer h.close()
	h.run(t, func(ctx env.Ctx) {
		if _, _, err := h.client.Get(ctx, []byte("missing")); err != store.ErrNotFound {
			t.Errorf("get missing: %v", err)
		}
		st, err := h.client.Put(ctx, []byte("k"), []byte("v1"))
		if err != nil {
			t.Fatalf("put: %v", err)
		}
		val, st2, err := h.client.Get(ctx, []byte("k"))
		if err != nil || string(val) != "v1" || st2 != st {
			t.Fatalf("get: %q %d %v (put stamp %d)", val, st2, err, st)
		}
	})
}

func TestLLSCDetectsInterference(t *testing.T) {
	h := newHarness(t, store.ClusterConfig{NumNodes: 1})
	defer h.close()
	h.run(t, func(ctx env.Ctx) {
		st, _ := h.client.Put(ctx, []byte("k"), []byte("v1"))
		// Load-link.
		_, stamp, _ := h.client.Get(ctx, []byte("k"))
		if stamp != st {
			t.Fatalf("stamp mismatch %d != %d", stamp, st)
		}
		// Interfering write.
		h.client.Put(ctx, []byte("k"), []byte("v2"))
		// Store-conditional must fail.
		if _, err := h.client.CondPut(ctx, []byte("k"), []byte("v3"), stamp); err != store.ErrConflict {
			t.Fatalf("condput after interference: %v", err)
		}
		// Value is untouched.
		val, _, _ := h.client.Get(ctx, []byte("k"))
		if string(val) != "v2" {
			t.Fatalf("value = %q", val)
		}
	})
}

func TestLLSCSolvesABA(t *testing.T) {
	// A CAS on values would wrongly succeed when the value returns to its
	// original bytes; the stamp-based LL/SC must not.
	h := newHarness(t, store.ClusterConfig{NumNodes: 1})
	defer h.close()
	h.run(t, func(ctx env.Ctx) {
		h.client.Put(ctx, []byte("k"), []byte("A"))
		_, stamp, _ := h.client.Get(ctx, []byte("k"))
		h.client.Put(ctx, []byte("k"), []byte("B"))
		h.client.Put(ctx, []byte("k"), []byte("A")) // back to A
		if _, err := h.client.CondPut(ctx, []byte("k"), []byte("C"), stamp); err != store.ErrConflict {
			t.Fatalf("ABA write succeeded: %v", err)
		}
	})
}

func TestCondPutInsertSemantics(t *testing.T) {
	h := newHarness(t, store.ClusterConfig{NumNodes: 2})
	defer h.close()
	h.run(t, func(ctx env.Ctx) {
		// Stamp 0 = insert; succeeds only when absent.
		if _, err := h.client.CondPut(ctx, []byte("new"), []byte("v"), 0); err != nil {
			t.Fatalf("insert: %v", err)
		}
		if _, err := h.client.CondPut(ctx, []byte("new"), []byte("v2"), 0); err != store.ErrConflict {
			t.Fatalf("re-insert: %v", err)
		}
		// CondPut on a missing key with non-zero stamp reports NotFound.
		if _, err := h.client.CondPut(ctx, []byte("gone"), []byte("v"), 42); err != store.ErrNotFound {
			t.Fatalf("condput missing: %v", err)
		}
	})
}

func TestDeleteAndTombstones(t *testing.T) {
	h := newHarness(t, store.ClusterConfig{NumNodes: 2})
	defer h.close()
	h.run(t, func(ctx env.Ctx) {
		st, _ := h.client.Put(ctx, []byte("k"), []byte("v"))
		// Conditional delete with wrong stamp fails.
		if err := h.client.Delete(ctx, []byte("k"), st+999); err != store.ErrConflict {
			t.Fatalf("conditional delete wrong stamp: %v", err)
		}
		if err := h.client.Delete(ctx, []byte("k"), st); err != nil {
			t.Fatalf("delete: %v", err)
		}
		if _, _, err := h.client.Get(ctx, []byte("k")); err != store.ErrNotFound {
			t.Fatalf("get after delete: %v", err)
		}
		if err := h.client.Delete(ctx, []byte("k"), 0); err != store.ErrNotFound {
			t.Fatalf("double delete: %v", err)
		}
		// Re-insert over the tombstone.
		if _, err := h.client.CondPut(ctx, []byte("k"), []byte("v2"), 0); err != nil {
			t.Fatalf("insert over tombstone: %v", err)
		}
		val, _, err := h.client.Get(ctx, []byte("k"))
		if err != nil || string(val) != "v2" {
			t.Fatalf("get after re-insert: %q %v", val, err)
		}
	})
}

func TestCounters(t *testing.T) {
	h := newHarness(t, store.ClusterConfig{NumNodes: 3})
	defer h.close()
	h.run(t, func(ctx env.Ctx) {
		v, err := h.client.CounterAdd(ctx, []byte("ctr"), 5)
		if err != nil || v != 5 {
			t.Fatalf("add: %d %v", v, err)
		}
		v, _ = h.client.CounterAdd(ctx, []byte("ctr"), 256)
		if v != 261 {
			t.Fatalf("add: %d", v)
		}
		v, _ = h.client.CounterAdd(ctx, []byte("ctr"), -1)
		if v != 260 {
			t.Fatalf("negative delta: %d", v)
		}
	})
}

func TestCounterConcurrentAtomicity(t *testing.T) {
	// 8 concurrent workers, 50 increments each: the counter must land on
	// exactly 400 — the uniqueness guarantee tid allocation relies on.
	h := newHarness(t, store.ClusterConfig{NumNodes: 3})
	defer h.close()
	const workers, incs = 8, 50
	doneCount := 0
	for w := 0; w < workers; w++ {
		h.pn.Go("worker", func(ctx env.Ctx) {
			for i := 0; i < incs; i++ {
				if _, err := h.client.CounterAdd(ctx, []byte("tid"), 1); err != nil {
					t.Errorf("add: %v", err)
				}
			}
			doneCount++
		})
	}
	h.pn.Go("check", func(ctx env.Ctx) {
		for doneCount < workers {
			ctx.Sleep(time.Millisecond)
		}
		v, err := h.client.CounterAdd(ctx, []byte("tid"), 0)
		if err != nil || v != workers*incs {
			t.Errorf("final counter = %d, want %d (err %v)", v, workers*incs, err)
		}
		h.k.Stop()
	})
	if err := h.k.RunUntil(sim.Time(60 * time.Second)); err != nil {
		t.Fatal(err)
	}
}

func TestBatchExecMixedOps(t *testing.T) {
	h := newHarness(t, store.ClusterConfig{NumNodes: 3})
	defer h.close()
	h.run(t, func(ctx env.Ctx) {
		ops := []wire.Op{
			{Code: wire.OpPut, Key: []byte("a"), Val: []byte("1")},
			{Code: wire.OpPut, Key: []byte("b"), Val: []byte("2")},
			{Code: wire.OpGet, Key: []byte("a")},
			{Code: wire.OpCounterAdd, Key: []byte("c"), Delta: 7},
		}
		res, err := h.client.Exec(ctx, ops)
		if err != nil {
			t.Fatal(err)
		}
		if res[0].Status != wire.StatusOK || res[1].Status != wire.StatusOK {
			t.Fatalf("puts: %+v", res[:2])
		}
		if res[2].Status != wire.StatusOK || string(res[2].Val) != "1" {
			t.Fatalf("get: %+v", res[2])
		}
		if res[3].Count != 7 {
			t.Fatalf("counter: %+v", res[3])
		}
	})
}

func TestBatchingCoalescesRequests(t *testing.T) {
	// Many concurrent single-op calls from one PN toward one SN must be
	// carried by far fewer requests (§5.1).
	h := newHarness(t, store.ClusterConfig{NumNodes: 1})
	defer h.close()
	const workers = 32
	done := 0
	for w := 0; w < workers; w++ {
		w := w
		h.pn.Go("worker", func(ctx env.Ctx) {
			for i := 0; i < 10; i++ {
				key := []byte(fmt.Sprintf("w%dk%d", w, i))
				if _, err := h.client.Put(ctx, key, []byte("v")); err != nil {
					t.Errorf("put: %v", err)
				}
			}
			done++
			if done == workers {
				h.k.Stop()
			}
		})
	}
	if err := h.k.RunUntil(sim.Time(60 * time.Second)); err != nil {
		t.Fatal(err)
	}
	ops, batches := h.client.Ops(), h.client.Batches()
	if ops != workers*10 {
		t.Fatalf("ops = %d", ops)
	}
	if batches >= ops {
		t.Fatalf("no batching achieved: %d batches for %d ops", batches, ops)
	}
	t.Logf("batching factor: %.1f ops/request", float64(ops)/float64(batches))
}

func TestScanAcrossPartitions(t *testing.T) {
	h := newHarness(t, store.ClusterConfig{NumNodes: 3, PartitionsPerNode: 2})
	defer h.close()
	h.run(t, func(ctx env.Ctx) {
		for i := 0; i < 40; i++ {
			key := []byte(fmt.Sprintf("scan/%03d", i))
			if _, err := h.client.Put(ctx, key, []byte{byte(i)}); err != nil {
				t.Fatalf("put: %v", err)
			}
		}
		pairs, err := h.client.Scan(ctx, []byte("scan/"), []byte("scan/~"), 0, false)
		if err != nil {
			t.Fatal(err)
		}
		if len(pairs) != 40 {
			t.Fatalf("scan returned %d pairs", len(pairs))
		}
		for i, p := range pairs {
			want := fmt.Sprintf("scan/%03d", i)
			if string(p.Key) != want {
				t.Fatalf("pair %d key %q, want %q", i, p.Key, want)
			}
		}
		// Limited reverse scan.
		pairs, err = h.client.Scan(ctx, []byte("scan/"), []byte("scan/~"), 5, true)
		if err != nil {
			t.Fatal(err)
		}
		if len(pairs) != 5 || string(pairs[0].Key) != "scan/039" {
			t.Fatalf("reverse: %d pairs, first %q", len(pairs), pairs[0].Key)
		}
	})
}

func TestReplicationCopiesData(t *testing.T) {
	h := newHarness(t, store.ClusterConfig{NumNodes: 3, ReplicationFactor: 3})
	defer h.close()
	h.run(t, func(ctx env.Ctx) {
		for i := 0; i < 30; i++ {
			if _, err := h.client.Put(ctx, []byte(fmt.Sprintf("k%d", i)), []byte("v")); err != nil {
				t.Fatalf("put: %v", err)
			}
		}
	})
	// With RF3 on 3 nodes every node holds every key.
	for _, n := range h.cluster.Nodes {
		if n.Keys() != 30 {
			t.Fatalf("node %s holds %d keys, want 30", n.Addr(), n.Keys())
		}
	}
}

func TestBulkLoadVisibleToClient(t *testing.T) {
	h := newHarness(t, store.ClusterConfig{NumNodes: 3, ReplicationFactor: 2})
	defer h.close()
	for i := 0; i < 20; i++ {
		if err := h.cluster.BulkLoad([]byte(fmt.Sprintf("bulk%d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	h.run(t, func(ctx env.Ctx) {
		val, stamp, err := h.client.Get(ctx, []byte("bulk7"))
		if err != nil || string(val) != "v" || stamp == 0 {
			t.Fatalf("get bulk7: %q %d %v", val, stamp, err)
		}
		// LL/SC works on bulk-loaded cells.
		if _, err := h.client.CondPut(ctx, []byte("bulk7"), []byte("v2"), stamp); err != nil {
			t.Fatalf("condput on bulk cell: %v", err)
		}
	})
}

func TestMasterFailoverPreservesData(t *testing.T) {
	h := newHarness(t, store.ClusterConfig{NumNodes: 3, ReplicationFactor: 2})
	defer h.close()
	h.run(t, func(ctx env.Ctx) {
		for i := 0; i < 50; i++ {
			if _, err := h.client.Put(ctx, []byte(fmt.Sprintf("k%d", i)), []byte("v")); err != nil {
				t.Fatalf("put: %v", err)
			}
		}
		// Kill sn0. The failure detector needs a few ping rounds.
		h.net.SetDown("sn0", true)
		ctx.Sleep(500 * time.Millisecond)
		// All keys must still be readable (promoted replicas serve them).
		for i := 0; i < 50; i++ {
			val, _, err := h.client.Get(ctx, []byte(fmt.Sprintf("k%d", i)))
			if err != nil || string(val) != "v" {
				t.Fatalf("get k%d after failover: %q %v", i, val, err)
			}
		}
		// Writes work too.
		if _, err := h.client.Put(ctx, []byte("post-failover"), []byte("v")); err != nil {
			t.Fatalf("put after failover: %v", err)
		}
	})
	if h.cluster.Manager.Failovers() != 1 {
		t.Fatalf("failovers = %d", h.cluster.Manager.Failovers())
	}
}

func TestFailoverRestoresReplicationFromSpare(t *testing.T) {
	// Losing sn0 costs one master copy and one replica copy, so two
	// spares are needed to restore RF2 everywhere.
	h := newHarness(t, store.ClusterConfig{NumNodes: 3, ReplicationFactor: 2, Spares: 2})
	defer h.close()
	h.run(t, func(ctx env.Ctx) {
		for i := 0; i < 50; i++ {
			if _, err := h.client.Put(ctx, []byte(fmt.Sprintf("k%d", i)), []byte("v")); err != nil {
				t.Fatalf("put: %v", err)
			}
		}
		h.net.SetDown("sn0", true)
		ctx.Sleep(time.Second)
		// The spare (sn3) must have been recruited and backfilled.
		pm := h.cluster.Manager.Map()
		uses := 0
		for _, p := range pm.Partitions {
			if p.Master == "sn3" {
				uses++
			}
			for _, r := range p.Replicas {
				if r == "sn3" {
					uses++
				}
			}
			if 1+len(p.Replicas) != 2 {
				t.Fatalf("partition %d has RF %d, want 2", p.ID, 1+len(p.Replicas))
			}
		}
		if uses == 0 {
			t.Fatal("spare was not recruited")
		}
	})
	if got := h.cluster.Node("sn3").Keys(); got == 0 {
		t.Fatal("spare received no data")
	}
}

func TestWrongPartitionRetryAfterReconfiguration(t *testing.T) {
	// A client with a stale map must transparently re-route.
	h := newHarness(t, store.ClusterConfig{NumNodes: 3, ReplicationFactor: 2})
	defer h.close()
	h.run(t, func(ctx env.Ctx) {
		if _, err := h.client.Put(ctx, []byte("k"), []byte("v")); err != nil {
			t.Fatalf("put: %v", err)
		}
		// Client has cached the map. Now fail sn1 and wait for failover.
		h.net.SetDown("sn1", true)
		ctx.Sleep(500 * time.Millisecond)
		// Every key (some of which lived on sn1) must still be writable
		// through the stale client.
		for i := 0; i < 30; i++ {
			if _, err := h.client.Put(ctx, []byte(fmt.Sprintf("x%d", i)), []byte("v")); err != nil {
				t.Fatalf("put x%d: %v", i, err)
			}
		}
	})
}

func TestLLSCLostUpdatePrevention(t *testing.T) {
	// Concurrent read-modify-write via LL/SC retry loops must not lose
	// updates: the classic optimistic-concurrency litmus test.
	h := newHarness(t, store.ClusterConfig{NumNodes: 2})
	defer h.close()
	const workers, incs = 6, 20
	done := 0
	h.pn.Go("init", func(ctx env.Ctx) {
		h.client.Put(ctx, []byte("n"), []byte{0, 0})
		for w := 0; w < workers; w++ {
			h.pn.Go("incr", func(ctx env.Ctx) {
				for i := 0; i < incs; i++ {
					for {
						val, stamp, err := h.client.Get(ctx, []byte("n"))
						if err != nil {
							t.Errorf("get: %v", err)
							return
						}
						n := int(val[0])<<8 | int(val[1])
						n++
						nv := []byte{byte(n >> 8), byte(n)}
						if _, err := h.client.CondPut(ctx, []byte("n"), nv, stamp); err == nil {
							break
						} else if err != store.ErrConflict {
							t.Errorf("condput: %v", err)
							return
						}
					}
				}
				done++
			})
		}
		// Coordinator: wait for all workers, verify, then stop.
		h.pn.Go("check", func(ctx env.Ctx) {
			for done < workers {
				ctx.Sleep(time.Millisecond)
			}
			val, _, err := h.client.Get(ctx, []byte("n"))
			if err != nil {
				t.Errorf("final get: %v", err)
			} else if n := int(val[0])<<8 | int(val[1]); n != workers*incs {
				t.Errorf("final = %d, want %d (lost updates)", n, workers*incs)
			}
			h.k.Stop()
		})
	})
	if err := h.k.RunUntil(sim.Time(120 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if done != workers {
		t.Fatalf("only %d workers finished", done)
	}
}

func TestPartitionMapCodec(t *testing.T) {
	pm := &store.PartitionMap{
		Epoch: 42,
		Partitions: []store.Partition{
			{ID: 0, LoHash: 0, HiHash: 1 << 62, Master: "sn0", Replicas: []string{"sn1", "sn2"}},
			{ID: 1, LoHash: 1<<62 + 1, HiHash: ^uint64(0), Master: "sn1"},
		},
	}
	got, err := store.DecodePartitionMap(pm.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != 42 || len(got.Partitions) != 2 {
		t.Fatalf("header: %+v", got)
	}
	if got.Partitions[0].Master != "sn0" || len(got.Partitions[0].Replicas) != 2 {
		t.Fatalf("partition 0: %+v", got.Partitions[0])
	}
	if got.Partitions[1].HiHash != ^uint64(0) {
		t.Fatalf("partition 1: %+v", got.Partitions[1])
	}
}

func TestEvenPartitionsCoverHashSpace(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 16} {
		parts := store.EvenPartitions(n)
		if len(parts) != n {
			t.Fatalf("n=%d: %d partitions", n, len(parts))
		}
		if parts[0].LoHash != 0 || parts[n-1].HiHash != ^uint64(0) {
			t.Fatalf("n=%d: ends not covered", n)
		}
		for i := 1; i < n; i++ {
			if parts[i].LoHash != parts[i-1].HiHash+1 {
				t.Fatalf("n=%d: gap at %d", n, i)
			}
		}
	}
	// Every hash maps to exactly one partition.
	pm := &store.PartitionMap{Partitions: store.EvenPartitions(7)}
	for _, h := range []uint64{0, 1, 1 << 30, 1 << 63, ^uint64(0)} {
		if _, ok := pm.Lookup(h); !ok {
			t.Fatalf("hash %d unowned", h)
		}
	}
}

func TestClientWorksOverLocalNet(t *testing.T) {
	// The same cluster code must run on the real-time transport.
	envr := env.NewReal(1)
	net := transport.NewLocalNet()
	cl, err := store.NewCluster(envr, net, store.ClusterConfig{NumNodes: 2, ReplicationFactor: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Manager.Stop()
	pn := envr.NewNode("pn0", 2)
	client := cl.NewClient(pn)
	// Real-env batcher activities are OS goroutines; Close wakes them so
	// the package leak checker sees them exit.
	defer client.Close()
	done := make(chan error, 1)
	pn.Go("test", func(ctx env.Ctx) {
		if _, err := client.Put(ctx, []byte("k"), []byte("v")); err != nil {
			done <- err
			return
		}
		val, stamp, err := client.Get(ctx, []byte("k"))
		if err != nil || string(val) != "v" {
			done <- fmt.Errorf("get: %q %v", val, err)
			return
		}
		if _, err := client.CondPut(ctx, []byte("k"), []byte("v2"), stamp); err != nil {
			done <- err
			return
		}
		done <- nil
	})
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestNodeRejectsMalformedRequests(t *testing.T) {
	// Garbage and unknown-kind frames must produce error responses, not
	// panics or hangs.
	h := newHarness(t, store.ClusterConfig{NumNodes: 1})
	defer h.close()
	h.run(t, func(ctx env.Ctx) {
		conn, err := h.net.Dial(h.pn, "sn0")
		if err != nil {
			t.Fatal(err)
		}
		for _, raw := range [][]byte{
			{0xFF, 0x01, 0x02},                           // unknown kind
			{byte(wire.KindStoreReq)},                    // truncated request
			{byte(wire.KindMetaReq), 99},                 // unknown meta subtype
			{byte(wire.KindReplicate), 0xFF, 0xFF, 0xFF}, // bad replicate
		} {
			resp, err := conn.RoundTrip(ctx, raw)
			if err != nil {
				t.Fatalf("transport error for %v: %v", raw, err)
			}
			if len(resp) == 0 {
				t.Fatalf("empty response for %v", raw)
			}
		}
		// The node still works afterwards.
		if _, err := h.client.Put(ctx, []byte("k"), []byte("v")); err != nil {
			t.Fatalf("put after garbage: %v", err)
		}
	})
}

func TestNodeOpStats(t *testing.T) {
	h := newHarness(t, store.ClusterConfig{NumNodes: 1})
	defer h.close()
	h.run(t, func(ctx env.Ctx) {
		h.client.Put(ctx, []byte("a"), []byte("1"))
		h.client.Get(ctx, []byte("a"))
		h.client.Scan(ctx, []byte("a"), []byte("z"), 0, false)
	})
	gets, writes, scans := h.cluster.Nodes[0].OpStats()
	if gets == 0 || writes == 0 || scans == 0 {
		t.Fatalf("stats: gets=%d writes=%d scans=%d", gets, writes, scans)
	}
}

func TestUnknownOpCodeReturnsError(t *testing.T) {
	h := newHarness(t, store.ClusterConfig{NumNodes: 1})
	defer h.close()
	h.run(t, func(ctx env.Ctx) {
		req := &wire.StoreRequest{Ops: []wire.Op{{Code: 99, Key: []byte("k")}}}
		conn, _ := h.net.Dial(h.pn, "sn0")
		// Encoding an unknown op writes only the code+key, which decodes
		// as an error; the node must answer with StatusError.
		resp, err := conn.RoundTrip(ctx, req.Encode())
		if err != nil {
			t.Fatal(err)
		}
		if wire.PeekKind(resp) != wire.KindStoreResp {
			t.Fatalf("kind %v", wire.PeekKind(resp))
		}
	})
}

// TestStatsSnapshot: after some traffic, a KindStatsReq must return a
// snapshot with per-class latency digests and operation counters that
// reflect the requests served.
func TestStatsSnapshot(t *testing.T) {
	h := newHarness(t, store.ClusterConfig{NumNodes: 1})
	defer h.close()
	h.run(t, func(ctx env.Ctx) {
		if _, err := h.client.Put(ctx, []byte("k"), []byte("v")); err != nil {
			t.Fatalf("put: %v", err)
		}
		if _, _, err := h.client.Get(ctx, []byte("k")); err != nil {
			t.Fatalf("get: %v", err)
		}
		conn, _ := h.net.Dial(h.pn, "sn0")
		raw, err := conn.RoundTrip(ctx, wire.EncodeStatsReq())
		if err != nil {
			t.Fatal(err)
		}
		snap, err := wire.DecodeStatsSnapshot(raw)
		if err != nil {
			t.Fatal(err)
		}
		if snap.Node != "sn0" || snap.UptimeNs <= 0 {
			t.Fatalf("snapshot header: %+v", snap)
		}
		var storeCount uint64
		for _, c := range snap.Classes {
			if c.Name == "store" {
				storeCount = c.Count
				if c.MaxNs < c.MeanNs || c.P99Ns < c.MeanNs {
					t.Fatalf("inconsistent digest: %+v", c)
				}
			}
		}
		if storeCount < 2 {
			t.Fatalf("store class count %d, want >= 2 (put+get)", storeCount)
		}
		counters := map[string]int64{}
		for _, c := range snap.Counters {
			counters[c.Name] = c.Value
		}
		if counters["ops/gets"] < 1 || counters["ops/writes"] < 1 || counters["store/keys"] < 1 {
			t.Fatalf("counters: %v", counters)
		}
	})
}

func TestOverloadShedsAndRetriesAbsorb(t *testing.T) {
	// A node flooded past its admission bound must shed with
	// StatusOverload rather than queue without bound, and the client's
	// backoff retries must absorb every shed: no operation may fail.
	h := newHarness(t, store.ClusterConfig{NumNodes: 1})
	defer h.close()
	// Direct (unbatched) sends so the workers produce genuinely
	// concurrent requests; no breaker, so the test isolates the
	// gate-shed / retry-absorb interaction.
	h.client.SetBatching(false)
	h.client.Resil.Breakers = nil
	for _, addr := range h.cluster.Addrs() {
		h.cluster.Node(addr).SetAdmission(1, 20*time.Microsecond)
	}
	const workers, puts = 16, 5
	done := 0
	for w := 0; w < workers; w++ {
		w := w
		h.pn.Go("worker", func(ctx env.Ctx) {
			for i := 0; i < puts; i++ {
				key := []byte(fmt.Sprintf("w%dk%d", w, i))
				if _, err := h.client.Put(ctx, key, []byte("v")); err != nil {
					t.Errorf("put under overload: %v", err)
				}
			}
			done++
			if done == workers {
				h.k.Stop()
			}
		})
	}
	if err := h.k.RunUntil(sim.Time(60 * time.Second)); err != nil {
		t.Fatal(err)
	}
	var sheds uint64
	for _, addr := range h.cluster.Addrs() {
		sheds += h.cluster.Node(addr).Sheds()
	}
	if sheds == 0 {
		t.Fatal("admission gate shed nothing; the flood never hit overload")
	}
}

func TestCircuitOpenRoutesReadsToReplica(t *testing.T) {
	// With the master's circuit breaker open, point reads must route to a
	// synchronous replica instead of failing or waiting out the cooldown.
	h := newHarness(t, store.ClusterConfig{NumNodes: 2, ReplicationFactor: 2})
	defer h.close()
	h.run(t, func(ctx env.Ctx) {
		if _, err := h.client.Put(ctx, []byte("k"), []byte("v")); err != nil {
			t.Errorf("put: %v", err)
			return
		}
		pm, err := h.client.FetchMap(ctx)
		if err != nil {
			t.Errorf("fetch map: %v", err)
			return
		}
		part, ok := pm.LookupKey([]byte("k"))
		if !ok || len(part.Replicas) == 0 {
			t.Errorf("no replica for key (have %+v)", part)
			return
		}
		for i := 0; i < 8; i++ {
			h.client.Resil.Breakers.Failure(part.Master, ctx.Now())
		}
		if !h.client.Resil.Breakers.Open(part.Master, ctx.Now()) {
			t.Error("breaker did not open after consecutive failures")
			return
		}
		val, _, err := h.client.Get(ctx, []byte("k"))
		if err != nil || string(val) != "v" {
			t.Errorf("get with master circuit open = %q, %v", val, err)
		}
	})
}
