package store

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestMemtableSetGetDelete(t *testing.T) {
	m := newMemtable(1)
	if _, ok := m.get([]byte("a")); ok {
		t.Fatal("empty table returned a value")
	}
	m.set([]byte("a"), cell{val: []byte("1"), stamp: 1})
	m.set([]byte("b"), cell{val: []byte("2"), stamp: 2})
	if c, ok := m.get([]byte("a")); !ok || string(c.val) != "1" {
		t.Fatalf("get a = %v %v", c, ok)
	}
	// Overwrite.
	m.set([]byte("a"), cell{val: []byte("1'"), stamp: 3})
	if c, _ := m.get([]byte("a")); string(c.val) != "1'" || c.stamp != 3 {
		t.Fatalf("overwrite failed: %+v", c)
	}
	if m.len() != 2 {
		t.Fatalf("len = %d", m.len())
	}
	if !m.delete([]byte("a")) {
		t.Fatal("delete a failed")
	}
	if m.delete([]byte("a")) {
		t.Fatal("double delete succeeded")
	}
	if _, ok := m.get([]byte("a")); ok {
		t.Fatal("deleted key still present")
	}
	if m.len() != 1 {
		t.Fatalf("len = %d", m.len())
	}
}

func TestMemtableScanForward(t *testing.T) {
	m := newMemtable(1)
	for _, k := range []string{"d", "a", "c", "b", "e"} {
		m.set([]byte(k), cell{val: []byte(k)})
	}
	var got []string
	m.scan([]byte("b"), []byte("e"), false, func(k []byte, c cell) bool {
		got = append(got, string(k))
		return true
	})
	want := []string{"b", "c", "d"}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestMemtableScanReverse(t *testing.T) {
	m := newMemtable(1)
	for _, k := range []string{"a", "b", "c", "d", "e"} {
		m.set([]byte(k), cell{val: []byte(k)})
	}
	var got []string
	m.scan([]byte("b"), []byte("e"), true, func(k []byte, c cell) bool {
		got = append(got, string(k))
		return true
	})
	want := []string{"d", "c", "b"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	// Unbounded reverse scan covers everything, descending.
	got = nil
	m.scan(nil, nil, true, func(k []byte, c cell) bool {
		got = append(got, string(k))
		return true
	})
	if fmt.Sprint(got) != fmt.Sprint([]string{"e", "d", "c", "b", "a"}) {
		t.Fatalf("unbounded reverse = %v", got)
	}
}

func TestMemtableScanEarlyStop(t *testing.T) {
	m := newMemtable(1)
	for i := 0; i < 10; i++ {
		m.set([]byte{byte('a' + i)}, cell{})
	}
	n := 0
	m.scan(nil, nil, false, func(k []byte, c cell) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Fatalf("visited %d, want 3", n)
	}
}

func TestMemtableScanEmptyAndMissRanges(t *testing.T) {
	m := newMemtable(1)
	ran := false
	m.scan(nil, nil, false, func(k []byte, c cell) bool { ran = true; return true })
	m.scan(nil, nil, true, func(k []byte, c cell) bool { ran = true; return true })
	if ran {
		t.Fatal("scan on empty table visited something")
	}
	m.set([]byte("m"), cell{})
	m.scan([]byte("x"), []byte("z"), false, func(k []byte, c cell) bool { ran = true; return true })
	m.scan([]byte("a"), []byte("c"), true, func(k []byte, c cell) bool { ran = true; return true })
	if ran {
		t.Fatal("out-of-range scan visited something")
	}
}

func TestMemtableReverseScanAfterTailDelete(t *testing.T) {
	m := newMemtable(1)
	m.set([]byte("a"), cell{})
	m.set([]byte("b"), cell{})
	m.delete([]byte("b"))
	var got []string
	m.scan(nil, nil, true, func(k []byte, c cell) bool {
		got = append(got, string(k))
		return true
	})
	if len(got) != 1 || got[0] != "a" {
		t.Fatalf("got %v", got)
	}
	m.delete([]byte("a"))
	got = nil
	m.scan(nil, nil, true, func(k []byte, c cell) bool {
		got = append(got, string(k))
		return true
	})
	if len(got) != 0 {
		t.Fatalf("got %v from emptied table", got)
	}
}

// TestMemtablePropertyAgainstMap drives random operations against both the
// skiplist and a reference map, verifying lookups and full ordered scans.
func TestMemtablePropertyAgainstMap(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := newMemtable(seed)
		ref := make(map[string]uint64)
		for i := 0; i < 400; i++ {
			k := []byte(fmt.Sprintf("key%03d", rng.Intn(80)))
			switch rng.Intn(3) {
			case 0, 1:
				st := uint64(i + 1)
				m.set(k, cell{val: k, stamp: st})
				ref[string(k)] = st
			case 2:
				delOK := m.delete(k)
				_, inRef := ref[string(k)]
				if delOK != inRef {
					return false
				}
				delete(ref, string(k))
			}
		}
		// Point lookups agree.
		for k, st := range ref {
			c, ok := m.get([]byte(k))
			if !ok || c.stamp != st {
				return false
			}
		}
		if m.len() != len(ref) {
			return false
		}
		// Forward scan yields exactly the reference keys in order.
		var keys []string
		m.scan(nil, nil, false, func(k []byte, c cell) bool {
			keys = append(keys, string(k))
			return true
		})
		if len(keys) != len(ref) {
			return false
		}
		if !sort.StringsAreSorted(keys) {
			return false
		}
		// Reverse scan is the exact mirror.
		var rkeys []string
		m.scan(nil, nil, true, func(k []byte, c cell) bool {
			rkeys = append(rkeys, string(k))
			return true
		})
		if len(rkeys) != len(keys) {
			return false
		}
		for i := range keys {
			if keys[i] != rkeys[len(rkeys)-1-i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMemtableBinaryKeys(t *testing.T) {
	m := newMemtable(1)
	keys := [][]byte{{0}, {0, 0}, {0, 1}, {1}, {0xff}, {0xff, 0}}
	for i, k := range keys {
		m.set(k, cell{stamp: uint64(i + 1)})
	}
	var got [][]byte
	m.scan(nil, nil, false, func(k []byte, c cell) bool {
		got = append(got, append([]byte(nil), k...))
		return true
	})
	if len(got) != len(keys) {
		t.Fatalf("got %d keys", len(got))
	}
	for i := 1; i < len(got); i++ {
		if bytes.Compare(got[i-1], got[i]) >= 0 {
			t.Fatalf("scan out of order at %d: %v >= %v", i, got[i-1], got[i])
		}
	}
}
