package store

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"tell/internal/det"
	"tell/internal/env"
	"tell/internal/resil"
	"tell/internal/sanitize"
	"tell/internal/trace"
	"tell/internal/transport"
	"tell/internal/wire"
)

// Client errors.
var (
	// ErrNotFound: the key does not exist.
	ErrNotFound = errors.New("store: key not found")
	// ErrConflict: the LL/SC store-conditional failed — the cell changed
	// since it was load-linked. This is the conflict signal the MVCC
	// protocol is built on (§4.1).
	ErrConflict = errors.New("store: conditional write conflict")
	// ErrUnavailable: the owning partition could not be reached after
	// retries and fail-over.
	ErrUnavailable = errors.New("store: partition unavailable")
)

// Client is the storage-system client library used by processing nodes. It
// caches the partition map, routes operations to partition masters, retries
// through fail-overs, and — centrally for performance (§5.1) — batches
// operations aggressively: all operations issued concurrently on one
// processing node toward the same storage node coalesce into single
// requests ("batching ... is also used to combine concurrent read
// operations from different transactions on the same PN").
type Client struct {
	envr    env.Full
	node    env.Node
	tr      transport.Transport
	mgrAddr string

	// MaxBatch bounds how many ops one request may carry.
	MaxBatch int
	// BatchWindow bounds how long a sender may linger, after draining the
	// queue, to let concurrent transactions widen the batch. The actual
	// wait adapts to load: it scales with an EWMA of recent batch sizes,
	// reaching BatchWindow once batches average a quarter of MaxBatch and
	// collapsing to zero when traffic is sparse, so idle workloads pay no
	// added latency. 0 disables lingering (the legacy greedy-drain
	// trigger: send as soon as the queue is empty). The window only pays
	// when it is small against the link round trip — the default suits
	// kernel-TCP networks; the experiment harness derives it from the
	// simulated link latency instead (a quarter of one-way).
	BatchWindow time.Duration
	// Senders is how many requests may be in flight per storage node
	// (pipelined batching): one sender would serialize all traffic to a
	// node behind a single round trip.
	Senders int
	// Retries bounds re-routing attempts per operation.
	Retries int
	// RetryDelay is slept between retries (virtual time under sim).
	RetryDelay time.Duration
	// Resil drives transport-level retries (identical request bytes,
	// capped backoff with seeded jitter) and the per-endpoint circuit
	// breaker. Write retries are safe because every write op carries an
	// idempotency token the storage node dedups on.
	Resil *resil.Retrier

	mu       sanitize.Mutex
	pmap     *PartitionMap
	conns    map[string]transport.Conn
	batchers map[string]*batcher
	batching bool
	seq      uint64 // idempotency-token sequence (per client, never reused)

	// clientID names this client in idempotency tokens; unique per
	// client instance so two clients on one node cannot collide.
	clientID string

	// Stats
	nBatches, nOps uint64
}

// clientInstances numbers client instances for token identity, per
// environment: two clients on one node must not collide, but a fresh
// environment (one simulation run) must restart the numbering — the ids go
// into wire idempotency tokens, and a process-global counter would make a
// run's message bytes (and so its simulated timing) depend on how many runs
// preceded it in the same process. Entries are never deleted; environments
// are few and small per process.
var (
	clientInstMu sync.Mutex
	clientInst   = make(map[env.Env]uint64)
)

func nextClientID(envr env.Env, node string) string {
	clientInstMu.Lock()
	defer clientInstMu.Unlock()
	clientInst[envr]++
	return fmt.Sprintf("%s#%d", node, clientInst[envr])
}

// NewClient creates a client on the given node. mgrAddr is the management
// node used as the lookup service. Batching is enabled by default.
func NewClient(envr env.Full, node env.Node, tr transport.Transport, mgrAddr string) *Client {
	r := resil.NewRetrier()
	r.Breakers = resil.NewBreakerSet(3, 10*time.Millisecond)
	return &Client{
		envr:        envr,
		node:        node,
		tr:          tr,
		mgrAddr:     mgrAddr,
		MaxBatch:    64,
		BatchWindow: 20 * time.Microsecond,
		Senders:     4,
		Retries:     10,
		RetryDelay:  2 * time.Millisecond,
		Resil:       r,
		conns:       make(map[string]transport.Conn),
		batchers:    make(map[string]*batcher),
		batching:    true,
		clientID:    nextClientID(envr, node.Name()),
	}
}

// nextSeq issues the next idempotency token for a write op.
func (c *Client) nextSeq() uint64 {
	c.mu.Lock()
	c.seq++
	s := c.seq
	c.mu.Unlock()
	return s
}

// SetBatching toggles cross-transaction request batching (the batching
// ablation experiment turns it off).
func (c *Client) SetBatching(on bool) { c.batching = on }

// Close shuts down the client's batcher activities and connections.
// In-flight operations may fail; the client must not be used afterwards.
func (c *Client) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	// Closing wakes blocked batcher activities; do it in sorted order so
	// the kernel sees the same wake-up sequence every run.
	for _, addr := range det.Keys(c.batchers) {
		c.batchers[addr].q.Close()
	}
	for _, addr := range det.Keys(c.conns) {
		//lint:allow errdiscard client teardown: the conns are being abandoned and in-flight failures are expected
		c.conns[addr].Close()
	}
}

// Ops returns the number of storage operations issued.
func (c *Client) Ops() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nOps
}

// Batches returns the number of storage requests sent; Ops/Batches is the
// achieved batching factor.
func (c *Client) Batches() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nBatches
}

// refreshMap fetches the partition map from the lookup service.
func (c *Client) refreshMap(ctx env.Ctx) error {
	conn, err := c.conn(c.mgrAddr)
	if err != nil {
		return err
	}
	var pm *PartitionMap
	req := encodeMetaGetMap()
	err = c.Resil.Do(ctx, resil.ClassMeta, c.mgrAddr, func(int) error {
		raw, err := conn.RoundTrip(ctx, req)
		if err != nil {
			return err
		}
		pm, err = decodeMapResp(raw)
		if err != nil {
			return resil.Permanent(err)
		}
		return nil
	})
	if err != nil {
		return err
	}
	c.mu.Lock()
	if c.pmap == nil || pm.Epoch > c.pmap.Epoch {
		c.pmap = pm
	}
	c.mu.Unlock()
	return nil
}

// FetchMap fetches the current partition map from the lookup service and
// caches it (node bootstrap uses this).
func (c *Client) FetchMap(ctx env.Ctx) (*PartitionMap, error) {
	if err := c.refreshMap(ctx); err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.pmap == nil {
		return nil, ErrUnavailable
	}
	return c.pmap.Clone(), nil
}

// installMap decodes a partition map piggybacked on a store response (see
// StoreResponse.Map) and installs it if newer than the cache. This is how
// clients converge on a migration cutover without a lookup-service round
// trip. A decode failure is ignored: the piggyback is an optimization and
// the lookup service stays authoritative.
func (c *Client) installMap(raw []byte) {
	pm, err := DecodePartitionMap(raw)
	if err != nil {
		return
	}
	c.mu.Lock()
	if c.pmap == nil || pm.Epoch > c.pmap.Epoch {
		c.pmap = pm
	}
	c.mu.Unlock()
}

// cachedEpoch returns the epoch of the cached map (0 = no map yet).
func (c *Client) cachedEpoch() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.pmap == nil {
		return 0
	}
	return c.pmap.Epoch
}

// pmapLocked returns the cached map, fetching it on first use.
func (c *Client) getMap(ctx env.Ctx) (*PartitionMap, error) {
	c.mu.Lock()
	pm := c.pmap
	c.mu.Unlock()
	if pm != nil {
		return pm, nil
	}
	if err := c.refreshMap(ctx); err != nil {
		return nil, err
	}
	c.mu.Lock()
	pm = c.pmap
	c.mu.Unlock()
	if pm == nil {
		return nil, ErrUnavailable
	}
	return pm, nil
}

func (c *Client) conn(addr string) (transport.Conn, error) {
	c.mu.Lock()
	if conn, ok := c.conns[addr]; ok {
		c.mu.Unlock()
		return conn, nil
	}
	c.mu.Unlock()
	// Dial outside the lock: a slow dial (TCP under faults) must not stall
	// every other connection lookup.
	conn, err := c.tr.Dial(c.node, addr)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if exist, ok := c.conns[addr]; ok {
		// Lost a dial race; keep the first connection.
		//lint:allow errdiscard closing a redundant just-dialed connection nothing was sent on
		conn.Close()
		return exist, nil
	}
	c.conns[addr] = conn
	return conn, nil
}

// batchReply carries one op's outcome through a future, along with the
// timing split the batcher observed (zero when untraced).
type batchReply struct {
	res   wire.Result
	err   error
	qwait time.Duration // time queued before the batch left
	net   time.Duration // modelled wire time of the carrying batch
}

// pendingOp is one queued operation inside a batcher. The submitting
// transaction's span rides along so the batch's network flow is parented
// on a real transaction (the first op's span wins for the whole batch).
type pendingOp struct {
	op   wire.Op
	fut  env.Future
	span trace.SpanID
	enq  time.Duration
}

// batcher serializes traffic to one storage node: while one request is in
// flight, newly issued operations queue up and leave in the next request.
// This is the paper's natural batching across transactions (§5.1).
type batcher struct {
	c    *Client
	addr string
	q    env.Queue

	mu sanitize.Mutex
	// sizeEWMA8 is an exponentially weighted moving average of batch sizes
	// in fixed-point (×8): after observing size n it becomes
	// ewma - ewma/8 + n. Senders read it to decide how long to linger.
	sizeEWMA8 uint64
}

// observe folds a sent batch's size into the load estimate.
func (b *batcher) observe(n int) {
	b.mu.Lock()
	b.sizeEWMA8 += uint64(n) - b.sizeEWMA8/8
	b.mu.Unlock()
}

// window returns how long a sender should linger for more operations after
// the queue runs dry: zero when adaptive batching is off or recent batches
// averaged under two ops (idle — lingering would only add latency), scaling
// linearly up to BatchWindow as average size approaches MaxBatch/4.
func (b *batcher) window() time.Duration {
	bw := b.c.BatchWindow
	if bw <= 0 {
		return 0
	}
	b.mu.Lock()
	e8 := b.sizeEWMA8
	b.mu.Unlock()
	if e8 < 16 { // average batch < 2 ops
		return 0
	}
	full8 := uint64(b.c.MaxBatch) * 8 // EWMA value meaning "batches are full"
	if full8 == 0 {
		return 0
	}
	scaled := e8 * 4 // full window at a quarter of MaxBatch
	if scaled > full8 {
		scaled = full8
	}
	return time.Duration(uint64(bw) * scaled / full8)
}

func (c *Client) batcherFor(addr string) *batcher {
	c.mu.Lock()
	defer c.mu.Unlock()
	if b, ok := c.batchers[addr]; ok {
		return b
	}
	b := &batcher{c: c, addr: addr, q: c.envr.NewQueue()}
	b.mu.SetName("store.batcher.mu")
	c.batchers[addr] = b
	n := c.Senders
	if n < 1 {
		n = 1
	}
	for i := 0; i < n; i++ {
		c.node.Go("batcher:"+addr, b.run)
	}
	return b
}

func (b *batcher) run(ctx env.Ctx) {
	// One response struct per sender, reused across batches: DecodeFrom
	// overwrites it in place, so steady state decodes without allocating.
	var resp wire.StoreResponse
	for {
		v, ok := b.q.Get(ctx)
		if !ok {
			return
		}
		batch := []*pendingOp{v.(*pendingOp)}
		for b.q.Len() > 0 && len(batch) < b.c.MaxBatch {
			v, _ := b.q.Get(ctx)
			batch = append(batch, v.(*pendingOp))
		}
		// Adaptive deadline window: when recent traffic suggests more ops
		// are coming, hold the batch briefly so concurrent transactions
		// can widen it instead of paying their own round trip.
		if w := b.window(); w > 0 && len(batch) < b.c.MaxBatch {
			deadline := ctx.Now() + w
			for len(batch) < b.c.MaxBatch {
				rem := deadline - ctx.Now()
				if rem <= 0 {
					break
				}
				v, ok, timedOut := b.q.GetTimeout(ctx, rem)
				if timedOut || !ok {
					break
				}
				batch = append(batch, v.(*pendingOp))
				for b.q.Len() > 0 && len(batch) < b.c.MaxBatch {
					v, _ := b.q.Get(ctx)
					batch = append(batch, v.(*pendingOp))
				}
			}
		}
		b.observe(len(batch))
		b.send(ctx, batch, &resp)
	}
}

// errOverload is the client-side face of wire.StatusOverload: the server's
// admission gate shed the request before execution, so a backoff-and-resend
// of the identical bytes is always safe.
var errOverload = errors.New("store: server overloaded")

// batchClass picks the retry policy for a batch: the write policy as soon
// as one op mutates (tokens make that safe), the read policy otherwise.
func batchClass(ops []wire.Op) resil.Class {
	for i := range ops {
		if ops[i].Code.IsWrite() {
			return resil.ClassWrite
		}
	}
	return resil.ClassRead
}

func (b *batcher) send(ctx env.Ctx, batch []*pendingOp, resp *wire.StoreResponse) {
	req := &wire.StoreRequest{Client: b.c.clientID, Ops: make([]wire.Op, len(batch))}
	for i, p := range batch {
		req.Ops[i] = p.op
	}
	b.c.mu.Lock()
	if b.c.pmap != nil {
		req.Epoch = b.c.pmap.Epoch
	}
	b.c.nBatches++
	b.c.nOps += uint64(len(batch))
	b.c.mu.Unlock()

	// Parent this batch's network flow on the first traced op's span, so
	// the exported trace stitches the transaction to the storage node even
	// though the round trip runs on the batcher's own activity.
	sc := ctx.Trace()
	var sendAt time.Duration
	if sc.R.Enabled() {
		sc.Span = 0
		for _, p := range batch {
			if p.span != 0 {
				sc.Span = p.span
				break
			}
		}
		sendAt = ctx.Now()
	}

	conn, err := b.c.conn(b.addr)
	if err == nil {
		// Encode once and retry the identical bytes: every attempt carries
		// the same idempotency tokens, so the node executes each write at
		// most once no matter how many copies arrive.
		enc := req.Encode()
		var raw []byte
		retried := false
		err = b.c.Resil.Do(ctx, batchClass(req.Ops), b.addr, func(attempt int) error {
			if attempt > 0 {
				retried = true
			}
			var rtErr error
			raw, rtErr = conn.RoundTrip(ctx, enc)
			if rtErr != nil {
				return rtErr
			}
			if rtErr = resp.DecodeFrom(raw); rtErr != nil {
				return resil.Permanent(rtErr)
			}
			if resp.Status == wire.StatusOverload {
				return errOverload
			}
			return nil
		})
		if err == nil {
			if len(resp.Map) > 0 {
				b.c.installMap(resp.Map)
			}
			if len(resp.Results) != len(batch) {
				err = fmt.Errorf("store: %d results for %d ops", len(resp.Results), len(batch))
			} else {
				var net time.Duration
				if sc.R.Enabled() {
					if tt, ok := conn.(transport.TransferTimer); ok {
						net = tt.TransferTime(len(enc)) + tt.TransferTime(len(raw))
					}
				}
				for i, p := range batch {
					rep := batchReply{res: resp.Results[i]}
					if retried {
						// A previous attempt may have been applied with its
						// response lost; conflicts are ambiguous (see
						// Result.WasRetried). The dedup window resolves the
						// outcome, but a fail-over loses it, so stay
						// conservative.
						rep.res.MarkRetried()
					}
					if sc.R.Enabled() {
						rep.qwait = sendAt - p.enq
						rep.net = net
					}
					p.fut.Set(rep)
				}
				return
			}
		}
	}
	for _, p := range batch {
		p.fut.Set(batchReply{err: err})
	}
}

// execBatch sends ops grouped by destination and waits for all outcomes.
// Results align with ops by index. Transport failures surface as results
// with StatusUnavailable so the retry loop treats them uniformly.
func (c *Client) execBatch(ctx env.Ctx, ops []wire.Op) ([]wire.Result, error) {
	pm, err := c.getMap(ctx)
	if err != nil {
		return nil, err
	}
	results := make([]wire.Result, len(ops))
	futs := make([]env.Future, len(ops))
	type direct struct {
		addr    string
		ops     []wire.Op
		indices []int
	}
	var directs map[string]*direct
	for i := range ops {
		part, ok := pm.LookupKey(ops[i].Key)
		if !ok || part.Master == "" {
			results[i] = wire.Result{Status: wire.StatusUnavailable}
			continue
		}
		op, addr := ops[i], part.Master
		// Circuit-broken master: route reads to a healthy replica rather
		// than waiting out the breaker. Replication is synchronous, so a
		// replica read observes every acknowledged write.
		if op.Code == wire.OpGet && c.Resil.Breakers.Open(addr, ctx.Now()) {
			for _, rep := range part.Replicas {
				if !c.Resil.Breakers.Open(rep, ctx.Now()) {
					op.Replica = true
					addr = rep
					break
				}
			}
		}
		if c.batching {
			p := &pendingOp{op: op, fut: c.envr.NewFuture()}
			if sc := ctx.Trace(); sc.R != nil {
				p.span = sc.Span
				p.enq = ctx.Now()
			}
			futs[i] = p.fut
			c.batcherFor(addr).q.Put(p)
		} else {
			if directs == nil {
				directs = make(map[string]*direct)
			}
			d, ok := directs[addr]
			if !ok {
				d = &direct{addr: addr}
				directs[addr] = d
			}
			d.ops = append(d.ops, op)
			d.indices = append(d.indices, i)
		}
	}
	// Non-batching path: one request per destination carrying only this
	// call's ops (still grouped per destination, as a single transaction
	// would do on its own). Destinations go out in sorted order so request
	// emission is deterministic.
	for _, addr := range det.Keys(directs) {
		d := directs[addr]
		req := &wire.StoreRequest{Epoch: pm.Epoch, Client: c.clientID, Ops: d.ops}
		c.mu.Lock()
		c.nBatches++
		c.nOps += uint64(len(d.indices))
		c.mu.Unlock()
		var resp *wire.StoreResponse
		conn, err := c.conn(d.addr)
		if err == nil {
			enc := req.Encode()
			retried := false
			err = c.Resil.Do(ctx, batchClass(req.Ops), d.addr, func(attempt int) error {
				if attempt > 0 {
					retried = true
				}
				raw, rtErr := conn.RoundTrip(ctx, enc)
				if rtErr != nil {
					return rtErr
				}
				resp, rtErr = wire.DecodeStoreResponse(raw)
				if rtErr != nil {
					return resil.Permanent(rtErr)
				}
				if resp.Status == wire.StatusOverload {
					return errOverload
				}
				return nil
			})
			if err == nil && retried {
				for k := range resp.Results {
					resp.Results[k].MarkRetried()
				}
			}
			if err == nil && len(resp.Map) > 0 {
				c.installMap(resp.Map)
			}
		}
		for k, i := range d.indices {
			if err != nil || resp == nil || k >= len(resp.Results) {
				results[i] = wire.Result{Status: wire.StatusUnavailable}
			} else {
				results[i] = resp.Results[k]
			}
		}
	}
	sc := ctx.Trace()
	var waitStart, maxQwait, maxNet time.Duration
	waiting := false
	for i, f := range futs {
		if f == nil {
			continue
		}
		if sc.Agg != nil && !waiting {
			waiting = true
			waitStart = ctx.Now()
		}
		rep := f.Get(ctx).(batchReply)
		if rep.qwait > maxQwait {
			maxQwait = rep.qwait
		}
		if rep.net > maxNet {
			maxNet = rep.net
		}
		if rep.err != nil {
			results[i] = wire.Result{Status: wire.StatusUnavailable}
		} else {
			results[i] = rep.res
		}
	}
	if waiting {
		// Split the blocked time using what the batchers observed: queue
		// wait before the batch left, modelled wire time of the carrying
		// batches, and the remainder as remote service. Concurrent batches
		// overlap, so each bound is the per-batch maximum, clamped to the
		// actually blocked time.
		total := ctx.Now() - waitStart
		if maxQwait > total {
			maxQwait = total
		}
		if maxNet > total-maxQwait {
			maxNet = total - maxQwait
		}
		sc.Agg.Add(trace.CompPoolWait, maxQwait)
		sc.Agg.Add(trace.CompNetwork, maxNet)
		sc.Agg.Add(trace.CompRemote, total-maxQwait-maxNet)
	}
	return results, nil
}

// Exec runs a batch of operations, transparently retrying operations that
// hit stale partition maps or fail-overs. Result i corresponds to op i.
func (c *Client) Exec(ctx env.Ctx, ops []wire.Op) ([]wire.Result, error) {
	if len(ops) == 0 {
		return nil, nil
	}
	// Stamp every write with an idempotency token before the first send.
	// Tokens stay fixed across transport retries AND across the re-routing
	// loop below, so no matter how often (or along which path) a write is
	// resent, the owning node executes it at most once.
	for i := range ops {
		if ops[i].Code.IsWrite() && ops[i].Seq == 0 {
			ops[i].Seq = c.nextSeq()
		}
	}
	results, err := c.execBatch(ctx, ops)
	if err != nil {
		return nil, err
	}
	// Retry loop for re-routable failures. All time spent retrying —
	// backoff sleeps, map refreshes, the retried requests themselves — is
	// charged to the retry component of the transaction's breakdown.
	sc := ctx.Trace()
	retrying := false
	epochSeen := c.cachedEpoch()
	for attempt := 0; attempt < c.Retries; attempt++ {
		var retryIdx []int
		for i := range results {
			switch results[i].Status {
			case wire.StatusWrongPartition, wire.StatusUnavailable, wire.StatusStaleMap:
				retryIdx = append(retryIdx, i)
			}
		}
		if len(retryIdx) == 0 {
			break
		}
		if !retrying && sc.Agg != nil && sc.Agg.Redirect < 0 {
			retrying = true
			sc.Agg.Redirect = trace.CompRetry
		}
		ctx.Sleep(c.RetryDelay)
		// The failing response usually piggybacks the newer map (migration
		// cutover); only fall back to the lookup service when the cache has
		// not moved since the failed attempt.
		if cur := c.cachedEpoch(); cur > epochSeen {
			epochSeen = cur
		} else if err := c.refreshMap(ctx); err != nil {
			continue
		}
		sub := make([]wire.Op, len(retryIdx))
		for k, i := range retryIdx {
			sub[k] = ops[i]
		}
		subResults, err := c.execBatch(ctx, sub)
		if err != nil {
			continue
		}
		for k, i := range retryIdx {
			subResults[k].MarkRetried()
			results[i] = subResults[k]
		}
	}
	if retrying {
		sc.Agg.Redirect = -1
	}
	return results, nil
}

// statusErr maps a result status to a client error.
func statusErr(s wire.Status) error {
	switch s {
	case wire.StatusOK:
		return nil
	case wire.StatusNotFound:
		return ErrNotFound
	case wire.StatusConflict:
		return ErrConflict
	case wire.StatusUnavailable, wire.StatusWrongPartition, wire.StatusOverload, wire.StatusStaleMap:
		return ErrUnavailable
	}
	return fmt.Errorf("store: status %v", s)
}

// Get returns the value and LL stamp for key. The stamp is the load-link
// token for a later CondPut.
func (c *Client) Get(ctx env.Ctx, key []byte) (val []byte, stamp uint64, err error) {
	res, err := c.Exec(ctx, []wire.Op{{Code: wire.OpGet, Key: key}})
	if err != nil {
		return nil, 0, err
	}
	if err := statusErr(res[0].Status); err != nil {
		return nil, 0, err
	}
	return res[0].Val, res[0].Stamp, nil
}

// Put unconditionally stores val under key.
func (c *Client) Put(ctx env.Ctx, key, val []byte) (stamp uint64, err error) {
	res, err := c.Exec(ctx, []wire.Op{{Code: wire.OpPut, Key: key, Val: val}})
	if err != nil {
		return 0, err
	}
	if err := statusErr(res[0].Status); err != nil {
		return 0, err
	}
	return res[0].Stamp, nil
}

// CondPut is the store-conditional: it writes val only if the cell's stamp
// still equals stamp (0 = key must not exist). On success it returns the
// new stamp; on interference it returns ErrConflict.
func (c *Client) CondPut(ctx env.Ctx, key, val []byte, stamp uint64) (newStamp uint64, err error) {
	res, err := c.Exec(ctx, []wire.Op{{Code: wire.OpCondPut, Key: key, Val: val, Stamp: stamp}})
	if err != nil {
		return 0, err
	}
	if err := statusErr(res[0].Status); err != nil {
		return 0, err
	}
	return res[0].Stamp, nil
}

// Delete removes key. A non-zero stamp makes the delete conditional.
func (c *Client) Delete(ctx env.Ctx, key []byte, stamp uint64) error {
	res, err := c.Exec(ctx, []wire.Op{{Code: wire.OpDelete, Key: key, Stamp: stamp}})
	if err != nil {
		return err
	}
	return statusErr(res[0].Status)
}

// CounterAdd atomically adds delta to the counter at key (creating it at
// zero) and returns the new value. Counters allocate tids and rids (§4.2).
func (c *Client) CounterAdd(ctx env.Ctx, key []byte, delta int64) (int64, error) {
	res, err := c.Exec(ctx, []wire.Op{{Code: wire.OpCounterAdd, Key: key, Delta: delta}})
	if err != nil {
		return 0, err
	}
	if err := statusErr(res[0].Status); err != nil {
		return 0, err
	}
	return res[0].Count, nil
}

// Scan returns up to limit pairs with lo <= key < hi in order (descending
// when reverse is set). It fans out to every partition master and merges.
// Scans bypass the batcher: they carry bulk payloads (§5.2).
func (c *Client) Scan(ctx env.Ctx, lo, hi []byte, limit int, reverse bool) ([]wire.Pair, error) {
	var lastErr error
	for attempt := 0; attempt <= c.Retries; attempt++ {
		if attempt > 0 {
			ctx.Sleep(c.RetryDelay)
			if err := c.refreshMap(ctx); err != nil {
				lastErr = err
				continue
			}
		}
		pairs, err := c.scanOnce(ctx, lo, hi, limit, reverse)
		if err == nil {
			return pairs, nil
		}
		lastErr = err
	}
	return nil, lastErr
}

func (c *Client) scanOnce(ctx env.Ctx, lo, hi []byte, limit int, reverse bool) ([]wire.Pair, error) {
	pm, err := c.getMap(ctx)
	if err != nil {
		return nil, err
	}
	masters := pm.Masters()
	type scanOut struct {
		pairs []wire.Pair
		err   error
	}
	futs := make([]env.Future, len(masters))
	op := wire.Op{Code: wire.OpScan, Key: lo, EndKey: hi, Limit: uint32(limit), Reverse: reverse}
	req := (&wire.StoreRequest{Epoch: pm.Epoch, Ops: []wire.Op{op}}).Encode()
	for i, addr := range masters {
		i, addr := i, addr
		futs[i] = c.envr.NewFuture()
		ctx.Go("scan", func(sctx env.Ctx) {
			conn, err := c.conn(addr)
			if err != nil {
				futs[i].Set(scanOut{err: err})
				return
			}
			var resp *wire.StoreResponse
			err = c.Resil.Do(sctx, resil.ClassRead, addr, func(int) error {
				raw, rtErr := conn.RoundTrip(sctx, req)
				if rtErr != nil {
					return rtErr
				}
				resp, rtErr = wire.DecodeStoreResponse(raw)
				if rtErr != nil {
					return resil.Permanent(rtErr)
				}
				if resp.Status == wire.StatusOverload {
					return errOverload
				}
				return nil
			})
			if err != nil {
				futs[i].Set(scanOut{err: err})
				return
			}
			if len(resp.Results) != 1 || resp.Results[0].Status != wire.StatusOK {
				futs[i].Set(scanOut{err: ErrUnavailable})
				return
			}
			futs[i].Set(scanOut{pairs: resp.Results[0].Pairs})
		})
	}
	sc := ctx.Trace()
	t0 := ctx.Now()
	var all []wire.Pair
	for _, f := range futs {
		out := f.Get(ctx).(scanOut)
		if out.err != nil {
			sc.Agg.Add(trace.CompRemote, ctx.Now()-t0)
			return nil, out.err
		}
		all = append(all, out.pairs...)
	}
	sc.Agg.Add(trace.CompRemote, ctx.Now()-t0)
	if reverse {
		sort.Slice(all, func(i, j int) bool { return bytes.Compare(all[i].Key, all[j].Key) > 0 })
	} else {
		sort.Slice(all, func(i, j int) bool { return bytes.Compare(all[i].Key, all[j].Key) < 0 })
	}
	if limit > 0 && len(all) > limit {
		all = all[:limit]
	}
	return all, nil
}

// ScanFiltered runs a push-down scan (§5.2): every partition master
// evaluates the spec's selection and projection server-side and returns
// only matching, projected rows. Traffic shrinks accordingly; see the
// ext-pushdown experiment.
func (c *Client) ScanFiltered(ctx env.Ctx, lo, hi []byte, spec *ScanSpec, limit int) ([]wire.Pair, error) {
	var lastErr error
	for attempt := 0; attempt <= c.Retries; attempt++ {
		if attempt > 0 {
			ctx.Sleep(c.RetryDelay)
			if err := c.refreshMap(ctx); err != nil {
				lastErr = err
				continue
			}
		}
		pairs, err := c.scanFilteredOnce(ctx, lo, hi, spec, limit)
		if err == nil {
			return pairs, nil
		}
		lastErr = err
	}
	return nil, lastErr
}

func (c *Client) scanFilteredOnce(ctx env.Ctx, lo, hi []byte, spec *ScanSpec, limit int) ([]wire.Pair, error) {
	pm, err := c.getMap(ctx)
	if err != nil {
		return nil, err
	}
	masters := pm.Masters()
	type scanOut struct {
		pairs []wire.Pair
		err   error
	}
	futs := make([]env.Future, len(masters))
	op := wire.Op{
		Code:   wire.OpScanFiltered,
		Key:    lo,
		EndKey: hi,
		Limit:  uint32(limit),
		Val:    spec.Encode(),
	}
	req := (&wire.StoreRequest{Epoch: pm.Epoch, Ops: []wire.Op{op}}).Encode()
	for i, addr := range masters {
		i, addr := i, addr
		futs[i] = c.envr.NewFuture()
		ctx.Go("scanf", func(sctx env.Ctx) {
			conn, err := c.conn(addr)
			if err != nil {
				futs[i].Set(scanOut{err: err})
				return
			}
			var resp *wire.StoreResponse
			err = c.Resil.Do(sctx, resil.ClassRead, addr, func(int) error {
				raw, rtErr := conn.RoundTrip(sctx, req)
				if rtErr != nil {
					return rtErr
				}
				resp, rtErr = wire.DecodeStoreResponse(raw)
				if rtErr != nil {
					return resil.Permanent(rtErr)
				}
				if resp.Status == wire.StatusOverload {
					return errOverload
				}
				return nil
			})
			if err != nil {
				futs[i].Set(scanOut{err: err})
				return
			}
			if len(resp.Results) != 1 || resp.Results[0].Status != wire.StatusOK {
				futs[i].Set(scanOut{err: ErrUnavailable})
				return
			}
			futs[i].Set(scanOut{pairs: resp.Results[0].Pairs})
		})
	}
	sc := ctx.Trace()
	t0 := ctx.Now()
	var all []wire.Pair
	for _, f := range futs {
		out := f.Get(ctx).(scanOut)
		if out.err != nil {
			sc.Agg.Add(trace.CompRemote, ctx.Now()-t0)
			return nil, out.err
		}
		all = append(all, out.pairs...)
	}
	sc.Agg.Add(trace.CompRemote, ctx.Now()-t0)
	sort.Slice(all, func(i, j int) bool { return bytes.Compare(all[i].Key, all[j].Key) < 0 })
	if limit > 0 && len(all) > limit {
		all = all[:limit]
	}
	return all, nil
}
