package store_test

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"tell/internal/env"
	"tell/internal/sim"
	"tell/internal/store"
	"tell/internal/testutil"
	"tell/internal/transport"
)

// errWrap lets an error (possibly nil) ride an env.Future.
type errWrap struct{ err error }

// pickPartition returns some partition mastered by addr.
func pickPartition(t *testing.T, m *store.Manager, addr string) uint64 {
	t.Helper()
	pm := m.Map()
	for _, p := range pm.Partitions {
		if p.Master == addr {
			return p.ID
		}
	}
	t.Fatalf("no partition mastered by %s", addr)
	return 0
}

func masterOf(t *testing.T, m *store.Manager, pid uint64) string {
	t.Helper()
	pm := m.Map()
	for _, p := range pm.Partitions {
		if p.ID == pid {
			return p.Master
		}
	}
	t.Fatalf("no partition %d in map", pid)
	return ""
}

// TestLiveMigrationUnderTraffic drives the full three-phase protocol while
// a client keeps writing: the copy is throttled so writes land in every
// phase, and afterwards every acknowledged write must be readable through
// the new master — zero lost updates across the cutover.
func TestLiveMigrationUnderTraffic(t *testing.T) {
	h := newHarness(t, store.ClusterConfig{NumNodes: 2, PartitionsPerNode: 2})
	defer h.close()
	h.run(t, func(ctx env.Ctx) {
		const n = 300
		want := make([]string, n)
		for i := 0; i < n; i++ {
			k := fmt.Sprintf("k%04d", i)
			v := fmt.Sprintf("v%04d", i)
			if _, err := h.client.Put(ctx, []byte(k), []byte(v)); err != nil {
				t.Fatalf("put %s: %v", k, err)
			}
			want[i] = v
		}
		// A load-link taken before the migration: its store-conditional must
		// still succeed against the new master (stamps ship unchanged).
		llKey := []byte("ll-across-migration")
		if _, err := h.client.Put(ctx, llKey, []byte("a")); err != nil {
			t.Fatal(err)
		}
		_, llStamp, err := h.client.Get(ctx, llKey)
		if err != nil {
			t.Fatal(err)
		}

		// Throttle the source's copy loop so live writes interleave with the
		// bulk copy, the delta rounds, and the fence.
		h.cluster.Node("sn0").MigrateChunkDelay = 500 * time.Microsecond

		pid := pickPartition(t, h.cluster.Manager, "sn0")
		mig := h.envr.NewFuture()
		h.cluster.Manager.Node().Go("migrate", func(mctx env.Ctx) {
			mig.Set(errWrap{h.cluster.Manager.MigratePartition(mctx, pid, "sn1")})
		})
		// Writes racing every migration phase.
		for i := 0; i < n; i++ {
			idx := i % 97
			k := fmt.Sprintf("k%04d", idx)
			v := fmt.Sprintf("w%04d", i)
			if _, err := h.client.Put(ctx, []byte(k), []byte(v)); err != nil {
				t.Fatalf("live put %s: %v", k, err)
			}
			want[idx] = v
			ctx.Sleep(50 * time.Microsecond)
		}
		if err := mig.Get(ctx).(errWrap).err; err != nil {
			t.Fatalf("migrate: %v", err)
		}
		if got := masterOf(t, h.cluster.Manager, pid); got != "sn1" {
			t.Fatalf("post-cutover master = %s, want sn1", got)
		}
		// Every acknowledged write is visible through the new map.
		for i := 0; i < n; i++ {
			k := fmt.Sprintf("k%04d", i)
			val, _, err := h.client.Get(ctx, []byte(k))
			if err != nil {
				t.Fatalf("get %s: %v", k, err)
			}
			if string(val) != want[i] {
				t.Fatalf("get %s = %q, want %q", k, val, want[i])
			}
		}
		// The pre-migration load-link token is still valid.
		if _, err := h.client.CondPut(ctx, llKey, []byte("b"), llStamp); err != nil {
			t.Fatalf("condput across migration: %v", err)
		}
	})
}

// TestScaleOutRebalance adds a fresh, empty storage node mid-run and forces
// placement passes until the map is balanced: the new node must end up
// mastering ranges, and every key stays readable.
func TestScaleOutRebalance(t *testing.T) {
	h := newHarness(t, store.ClusterConfig{NumNodes: 2, PartitionsPerNode: 3})
	defer h.close()
	h.run(t, func(ctx env.Ctx) {
		const n = 200
		for i := 0; i < n; i++ {
			k := fmt.Sprintf("k%04d", i)
			if _, err := h.client.Put(ctx, []byte(k), []byte("v")); err != nil {
				t.Fatalf("put: %v", err)
			}
		}
		if _, err := h.cluster.AddStorageNode("sn2"); err != nil {
			t.Fatalf("add node: %v", err)
		}
		done := h.envr.NewFuture()
		h.cluster.Manager.Node().Go("rebalance", func(mctx env.Ctx) {
			for {
				acted, err := h.cluster.Manager.RebalanceOnce(mctx)
				if err != nil {
					done.Set(errWrap{err})
					return
				}
				if !acted {
					done.Set(errWrap{nil})
					return
				}
			}
		})
		if err := done.Get(ctx).(errWrap).err; err != nil {
			t.Fatalf("rebalance: %v", err)
		}
		counts := map[string]int{}
		pm := h.cluster.Manager.Map()
		for _, p := range pm.Partitions {
			counts[p.Master]++
		}
		if counts["sn2"] == 0 {
			t.Fatalf("fresh node masters nothing: %v", counts)
		}
		for _, c := range counts {
			if c < 1 || c > 3 {
				t.Fatalf("unbalanced master counts: %v", counts)
			}
		}
		for i := 0; i < n; i++ {
			k := fmt.Sprintf("k%04d", i)
			if _, _, err := h.client.Get(ctx, []byte(k)); err != nil {
				t.Fatalf("get %s after rebalance: %v", k, err)
			}
		}
		if len(h.cluster.Manager.ScheduleLog()) == 0 {
			t.Fatal("rebalance left no schedule log")
		}
	})
}

// TestRebalanceScheduleDeterministic runs the identical scale-out scenario
// twice on the same seed: the controller's decision logs must be
// byte-identical (virtual timestamps included) — the determinism contract
// of the rebalancing experiment.
func TestRebalanceScheduleDeterministic(t *testing.T) {
	runOnce := func() []string {
		k := sim.NewKernel(testutil.Seed(t, 42))
		defer k.Shutdown()
		envr := env.NewSim(k)
		net := transport.NewSimNet(k, transport.InfiniBand())
		cl, err := store.NewCluster(envr, net, store.ClusterConfig{NumNodes: 2, PartitionsPerNode: 3})
		if err != nil {
			t.Fatal(err)
		}
		pn := envr.NewNode("pn0", 4)
		client := cl.NewClient(pn)
		var sched []string
		finished := false
		pn.Go("drive", func(ctx env.Ctx) {
			defer k.Stop()
			for i := 0; i < 120; i++ {
				k := fmt.Sprintf("k%04d", i)
				if _, err := client.Put(ctx, []byte(k), []byte("v")); err != nil {
					t.Errorf("put: %v", err)
					return
				}
			}
			if _, err := cl.AddStorageNode("sn2"); err != nil {
				t.Errorf("add node: %v", err)
				return
			}
			done := envr.NewFuture()
			cl.Manager.Node().Go("rebalance", func(mctx env.Ctx) {
				for {
					acted, err := cl.Manager.RebalanceOnce(mctx)
					if err != nil || !acted {
						done.Set(errWrap{err})
						return
					}
				}
			})
			if err := done.Get(ctx).(errWrap).err; err != nil {
				t.Errorf("rebalance: %v", err)
				return
			}
			sched = cl.Manager.ScheduleLog()
			finished = true
		})
		if err := k.RunUntil(sim.Time(600 * time.Second)); err != nil {
			t.Fatal(err)
		}
		if !finished {
			t.Fatal("driver did not finish")
		}
		return sched
	}
	a := runOnce()
	b := runOnce()
	if len(a) == 0 {
		t.Fatal("no schedule produced")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("schedules differ across same-seed runs:\n%v\n%v", a, b)
	}
}
