package store

import (
	"bytes"
	"fmt"

	"tell/internal/mvcc"
	"tell/internal/relational"
	"tell/internal/wire"
)

// Push-down scans (§5.2): "executing simple operations such as selection or
// projection in the SN would enable to reduce the size of the result set
// and lower the amount of data sent over the network". The storage node
// decodes each record in the range, resolves the version visible to the
// caller's snapshot, evaluates a selection predicate, and returns only the
// projected columns of matching rows. This is the paper's proposed
// direction for mixed OLTP/OLAP workloads; the ext-pushdown experiment
// measures the traffic reduction.

// CmpOp is a predicate comparison operator.
type CmpOp byte

const (
	CmpEQ CmpOp = iota + 1
	CmpNE
	CmpLT
	CmpLE
	CmpGT
	CmpGE
)

// Predicate compares one column against a constant.
type Predicate struct {
	Col int
	Op  CmpOp
	Val relational.Value
}

// Matches evaluates the predicate against a row using the order-preserving
// key encoding as the comparison domain (consistent across all types).
func (p *Predicate) Matches(row relational.Row) bool {
	c := bytes.Compare(
		relational.AppendKeyValue(nil, row[p.Col]),
		relational.AppendKeyValue(nil, p.Val),
	)
	switch p.Op {
	case CmpEQ:
		return c == 0
	case CmpNE:
		return c != 0
	case CmpLT:
		return c < 0
	case CmpLE:
		return c <= 0
	case CmpGT:
		return c > 0
	case CmpGE:
		return c >= 0
	}
	return false
}

// ScanSpec is the self-contained push-down request: the storage node needs
// no catalog access because the (small) schema travels with the scan.
type ScanSpec struct {
	Schema   *relational.TableSchema
	Snapshot *mvcc.Snapshot
	// Pred is optional (nil = select all).
	Pred *Predicate
	// Proj lists the column positions to return; empty = all columns.
	Proj []int
}

// Encode serializes the spec (carried in wire.Op.Val).
func (s *ScanSpec) Encode() []byte {
	w := wire.NewWriter(128)
	w.BytesN(s.Schema.Encode())
	s.Snapshot.EncodeTo(w)
	if s.Pred == nil {
		w.Bool(false)
	} else {
		w.Bool(true)
		w.Uvarint(uint64(s.Pred.Col))
		w.Byte(byte(s.Pred.Op))
		w.BytesN(encodeValue(s.Pred.Val))
	}
	w.Uvarint(uint64(len(s.Proj)))
	for _, c := range s.Proj {
		w.Uvarint(uint64(c))
	}
	return w.Bytes()
}

// DecodeScanSpec parses a spec.
func DecodeScanSpec(b []byte) (*ScanSpec, error) {
	r := wire.NewReader(b)
	schemaRaw := r.BytesN()
	if r.Err() != nil {
		return nil, r.Err()
	}
	schema, err := relational.DecodeSchema(schemaRaw)
	if err != nil {
		return nil, err
	}
	snap, err := mvcc.DecodeSnapshotFrom(r)
	if err != nil {
		return nil, err
	}
	spec := &ScanSpec{Schema: schema, Snapshot: snap}
	if r.Bool() {
		p := &Predicate{Col: int(r.Uvarint()), Op: CmpOp(r.Byte())}
		v, err := decodeValue(r.BytesN())
		if err != nil {
			return nil, err
		}
		p.Val = v
		if p.Col < 0 || p.Col >= len(schema.Cols) {
			return nil, fmt.Errorf("store: predicate column %d out of range", p.Col)
		}
		spec.Pred = p
	}
	n := r.Count(1)
	for i := 0; i < n; i++ {
		c := int(r.Uvarint())
		if c < 0 || c >= len(schema.Cols) {
			return nil, fmt.Errorf("store: projection column %d out of range", c)
		}
		spec.Proj = append(spec.Proj, c)
	}
	if err := r.Close(); err != nil {
		return nil, err
	}
	return spec, nil
}

// ProjectedSchema returns the schema of the rows a push-down scan returns.
func (s *ScanSpec) ProjectedSchema() *relational.TableSchema {
	if len(s.Proj) == 0 {
		return s.Schema
	}
	out := &relational.TableSchema{Name: s.Schema.Name + "#proj", PKCols: []int{0}}
	for _, c := range s.Proj {
		out.Cols = append(out.Cols, s.Schema.Cols[c])
	}
	return out
}

// encodeValue serializes one value as a single-column row.
func encodeValue(v relational.Value) []byte {
	s := &relational.TableSchema{
		Name:   "v",
		Cols:   []relational.Column{{Name: "v", Type: v.T}},
		PKCols: []int{0},
	}
	b, _ := relational.EncodeRow(s, relational.Row{v})
	w := wire.NewWriter(len(b) + 2)
	w.Byte(byte(v.T))
	w.BytesN(b)
	return w.Bytes()
}

func decodeValue(b []byte) (relational.Value, error) {
	r := wire.NewReader(b)
	t := relational.ColType(r.Byte())
	raw := r.BytesN()
	if err := r.Close(); err != nil {
		return relational.Value{}, err
	}
	s := &relational.TableSchema{
		Name:   "v",
		Cols:   []relational.Column{{Name: "v", Type: t}},
		PKCols: []int{0},
	}
	row, err := relational.DecodeRow(s, raw)
	if err != nil {
		return relational.Value{}, err
	}
	return row[0], nil
}

// execScanFiltered evaluates a push-down scan. Caller holds sn.mu.
func (sn *Node) execScanFiltered(op *wire.Op, res *wire.Result) {
	sn.nScans++
	spec, err := DecodeScanSpec(op.Val)
	if err != nil {
		res.Status = wire.StatusError
		return
	}
	res.Status = wire.StatusOK
	limit := int(op.Limit)
	if limit == 0 {
		limit = 1 << 30
	}
	projected := spec.ProjectedSchema()
	var hi []byte
	if len(op.EndKey) > 0 {
		hi = op.EndKey
	}
	sn.mt.scan(op.Key, hi, false, func(key []byte, c cell) bool {
		res.Count++
		if c.dead || c.isCtr {
			return true
		}
		if _, mine := sn.masterOf(KeyHash(key)); !mine {
			return true
		}
		rec, err := mvcc.Decode(c.val)
		if err != nil {
			return true
		}
		v, visible := rec.Visible(spec.Snapshot)
		if !visible {
			return true
		}
		row, err := relational.DecodeRow(spec.Schema, v.Data)
		if err != nil {
			return true
		}
		if spec.Pred != nil && !spec.Pred.Matches(row) {
			return true
		}
		out := row
		if len(spec.Proj) > 0 {
			out = make(relational.Row, len(spec.Proj))
			for i, col := range spec.Proj {
				out[i] = row[col]
			}
		}
		data, err := relational.EncodeRow(projected, out)
		if err != nil {
			return true
		}
		res.Pairs = append(res.Pairs, wire.Pair{
			Key:   append([]byte(nil), key...),
			Val:   data,
			Stamp: c.stamp,
		})
		return len(res.Pairs) < limit
	})
}
