package store

import (
	"errors"

	"tell/internal/det"
	"tell/internal/durable"
	"tell/internal/env"
	"tell/internal/resil"
	"tell/internal/sanitize"
	"tell/internal/wire"
)

// DurOptions configures a storage node's durability tier: a per-node WAL
// plus fuzzy checkpoints on a shared Backend, namespaced by node address so
// survivors can read a dead node's objects during scatter-gather recovery.
type DurOptions struct {
	Backend durable.Backend
	// SegmentBytes is the WAL segment roll threshold (default 64 KiB).
	// Recovery parallelism is bounded by object count, so experiments
	// shrink this to spread one node's log across many workers.
	SegmentBytes int
	// ChunkBytes bounds checkpoint chunk size (default 64 KiB).
	ChunkBytes int
	// CheckpointBytes triggers an automatic fuzzy checkpoint after this
	// many WAL bytes since the last one (0 = manual checkpoints only).
	CheckpointBytes int
	// Fence, when set, is sampled at checkpoint start and recorded in the
	// manifest — the commit-manager snapshot boundary the image is
	// consistent with (diagnostic; replay correctness comes from stamps).
	Fence func(ctx env.Ctx) uint64
}

// durState is the per-node durability runtime: the WAL plus the group-commit
// combiner that batches concurrent request handlers into one log append.
type durState struct {
	opts DurOptions

	mu       sanitize.Mutex
	wal      *durable.WAL
	pending  []durable.Record
	waiters  []env.Future
	flushing bool
	// dead: the WAL failed mid-append; the log tail is undefined, so the
	// node fail-stops (every request answers Unavailable) until recovered.
	dead bool
	// crashed: the process was killed (chaos CrashProcess); volatile state
	// is gone and the node refuses service until RecoverLocal completes.
	crashed  bool
	ckptBusy bool
	ckptSeq  uint64
	ckpts    uint64
}

// AttachDurability equips the node with a WAL and checkpointing. Call at
// setup, before the node serves traffic. No I/O happens here.
func (sn *Node) AttachDurability(opts DurOptions) {
	d := &durState{opts: opts}
	d.mu.SetName("store.durState.mu")
	d.wal = durable.OpenWAL(opts.Backend, sn.addr, durable.WALConfig{SegmentBytes: opts.SegmentBytes}, 0, 1)
	sn.dur = d
}

// Durable reports whether the node has a durability tier attached.
func (sn *Node) Durable() bool { return sn.dur != nil }

// down reports whether the node must refuse service (crashed or WAL dead).
func (d *durState) down() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.crashed || d.dead
}

// walCommit makes recs durable before the caller may acknowledge them. It is
// a group-commit combiner: one flusher drains the pending batch per WAL
// round-trip, every other caller parks on a future and shares that round's
// outcome. Returns nil immediately when the node has no durability tier or
// recs is empty.
func (sn *Node) walCommit(ctx env.Ctx, recs []durable.Record) error {
	d := sn.dur
	if d == nil || len(recs) == 0 {
		return nil
	}
	d.mu.Lock()
	if d.crashed || d.dead {
		d.mu.Unlock()
		return errors.New("store: durability tier down")
	}
	d.pending = append(d.pending, recs...)
	if d.flushing {
		// A flusher is running; it will pick this batch up on its next
		// round and deliver the outcome through the future.
		f := sn.envr.NewFuture()
		d.waiters = append(d.waiters, f)
		d.mu.Unlock()
		if err, _ := f.Get(ctx).(error); err != nil {
			return err
		}
		sn.maybeCheckpoint()
		return nil
	}
	d.flushing = true
	var firstErr error
	for first := true; ; first = false {
		batch := d.pending
		waiters := d.waiters
		d.pending = nil
		d.waiters = nil
		d.mu.Unlock()

		err := d.wal.Commit(ctx, batch)
		for _, w := range waiters {
			if err != nil {
				w.Set(err)
			} else {
				w.Set(nil)
			}
		}
		if first {
			firstErr = err
		}

		d.mu.Lock()
		if err != nil {
			// Fail-stop: a failed append leaves the log tail undefined.
			d.dead = true
		}
		if len(d.pending) == 0 || d.dead {
			// Unparked waiters of a dead log, if any, fail on their own
			// next round via the crashed/dead check above.
			for _, w := range d.waiters {
				w.Set(errors.New("store: durability tier down"))
			}
			d.waiters = nil
			d.pending = nil
			d.flushing = false
			d.mu.Unlock()
			if firstErr == nil {
				sn.maybeCheckpoint()
			}
			return firstErr
		}
	}
}

// maybeCheckpoint starts a background fuzzy checkpoint when enough WAL bytes
// accumulated since the last one.
func (sn *Node) maybeCheckpoint() {
	d := sn.dur
	if d == nil || d.opts.CheckpointBytes <= 0 {
		return
	}
	d.mu.Lock()
	start := !d.ckptBusy && !d.dead && !d.crashed &&
		d.wal.SinceCheckpoint() >= uint64(d.opts.CheckpointBytes)
	if start {
		d.ckptBusy = true
	}
	d.mu.Unlock()
	if start {
		sn.node.Go("checkpoint", func(ctx env.Ctx) { sn.checkpoint(ctx) })
	}
}

// Checkpoint writes a fuzzy checkpoint now (test and load-time hook; the
// steady-state path is the CheckpointBytes trigger). No-op if one is already
// running or the node is down.
func (sn *Node) Checkpoint(ctx env.Ctx) error {
	d := sn.dur
	if d == nil {
		return nil
	}
	d.mu.Lock()
	skip := d.ckptBusy || d.dead || d.crashed
	if !skip {
		d.ckptBusy = true
	}
	d.mu.Unlock()
	if skip {
		return nil
	}
	return sn.checkpoint(ctx)
}

// checkpoint performs the fuzzy checkpoint; d.ckptBusy is held by the caller
// and released here. The WAL floor is read BEFORE the memtable snapshot:
// every mutation the snapshot misses lands in a segment at or above the
// floor, so image + suffix replay loses nothing (stamps dedupe the overlap).
func (sn *Node) checkpoint(ctx env.Ctx) error {
	d := sn.dur
	defer func() {
		d.mu.Lock()
		d.ckptBusy = false
		d.mu.Unlock()
	}()

	floor, lsn := d.wal.Position()
	var fence uint64
	if d.opts.Fence != nil {
		fence = d.opts.Fence(ctx)
	}
	cells := sn.StateDump()
	var maxStamp uint64
	for i := range cells {
		if cells[i].Stamp > maxStamp {
			maxStamp = cells[i].Stamp
		}
	}

	d.mu.Lock()
	seq := d.ckptSeq + 1
	d.mu.Unlock()
	man := &durable.Manifest{Seq: seq, Floor: floor, LSN: lsn, Stamp: maxStamp, Fence: fence}
	if err := durable.WriteCheckpoint(ctx, d.opts.Backend, sn.addr, man, cells, d.opts.ChunkBytes); err != nil {
		// A failed checkpoint leaves the previous generation intact; the
		// node keeps serving from the (longer) log.
		return err
	}
	d.mu.Lock()
	d.ckptSeq = seq
	d.ckpts++
	d.mu.Unlock()
	d.wal.MarkCheckpoint()
	return d.wal.TruncateBefore(ctx, floor)
}

// StateDump snapshots the memtable as mutations in key order, tombstones
// included (checkpoint image; also handy for test assertions).
func (sn *Node) StateDump() []wire.Mutation {
	sn.mu.Lock()
	defer sn.mu.Unlock()
	var out []wire.Mutation
	sn.mt.scan(nil, nil, false, func(key []byte, c cell) bool {
		out = append(out, cellMutation(key, c))
		return true
	})
	return out
}

// cellMutation converts a memtable cell to its wire form, copying key and
// value out of the memtable.
func cellMutation(key []byte, c cell) wire.Mutation {
	m := wire.Mutation{Key: append([]byte(nil), key...), Stamp: c.stamp}
	switch {
	case c.dead:
		m.Deleted = true
	case c.isCtr:
		m.Counter = true
		m.CtrVal = c.counter
	default:
		m.Val = append([]byte(nil), c.val...)
	}
	return m
}

// cellFromMutation is the inverse of cellMutation.
func cellFromMutation(m *wire.Mutation) cell {
	switch {
	case m.Deleted:
		return cell{dead: true, stamp: m.Stamp}
	case m.Counter:
		return cell{isCtr: true, counter: m.CtrVal, stamp: m.Stamp}
	default:
		return cell{val: append([]byte(nil), m.Val...), stamp: m.Stamp}
	}
}

// CrashVolatile models a process crash: all volatile state (memtable, stamp
// counter, partition map, dedup window) is discarded and the node refuses
// service until RecoverLocal. With loseDisk the durable namespace is wiped
// too — the node comes back amnesiac, as after losing local storage.
func (sn *Node) CrashVolatile(loseDisk bool) {
	d := sn.dur
	if d != nil {
		d.mu.Lock()
		d.crashed = true
		d.mu.Unlock()
		if loseDisk {
			if w, ok := d.opts.Backend.(durable.Wiper); ok {
				w.Wipe(sn.addr + "/")
			}
		}
	}
	sn.mu.Lock()
	sn.mt = newMemtable(int64(KeyHash([]byte(sn.addr))))
	sn.stamp = 0
	sn.pmap = &PartitionMap{}
	sn.masters = nil
	sn.deadRep = make(map[string]bool)
	sn.dedup = resil.NewWindow(1024)
	sn.mu.Unlock()
}

// RecoverLocal rebuilds the node from its own durable objects: load the
// checkpoint image, replay the WAL suffix apply-if-newer, jump the stamp
// counter past everything recovered, and reopen the WAL on a fresh segment
// (never appending to one that may end torn). The dedup window is volatile
// and starts empty — the same property a promoted replica has today.
func (sn *Node) RecoverLocal(ctx env.Ctx) (durable.ReplayStats, error) {
	d := sn.dur
	if d == nil {
		return durable.ReplayStats{}, errors.New("store: node has no durability tier")
	}
	// Build the recovered image off to the side: backend reads block, and
	// sn.mu must not be held across them.
	mt := newMemtable(int64(KeyHash([]byte(sn.addr))))
	var maxStamp uint64
	apply := func(m *wire.Mutation) {
		if cur, ok := mt.get(m.Key); ok && cur.stamp >= m.Stamp {
			return
		}
		mt.set(m.Key, cellFromMutation(m))
		if m.Stamp > maxStamp {
			maxStamp = m.Stamp
		}
	}
	man, err := durable.LoadCheckpoint(ctx, d.opts.Backend, sn.addr, apply)
	if err != nil {
		return durable.ReplayStats{}, err
	}
	var floor, seq, manLSN uint64
	if man != nil {
		floor, seq, manLSN = man.Floor, man.Seq, man.LSN
		if man.Stamp > maxStamp {
			maxStamp = man.Stamp
		}
	}
	stats, err := durable.ReplayWAL(ctx, d.opts.Backend, sn.addr, floor, func(r *durable.Record) {
		if r.Part == migJournalPart {
			return // migration control records never enter the memtable
		}
		apply(&r.Mut)
	})
	if err != nil {
		return stats, err
	}

	sn.mu.Lock()
	sn.mt = mt
	// Skip past every stamp the dead incarnation might have assigned (the
	// same insurance a promoted replica takes).
	sn.stamp = maxStamp + stampSkipOnPromotion
	sn.mu.Unlock()

	nextLSN := stats.MaxLSN
	if manLSN > nextLSN {
		nextLSN = manLSN
	}
	d.mu.Lock()
	d.wal = durable.OpenWAL(d.opts.Backend, sn.addr,
		durable.WALConfig{SegmentBytes: d.opts.SegmentBytes}, stats.NextSeg, nextLSN+1)
	d.ckptSeq = seq
	d.pending = nil
	d.waiters = nil
	d.flushing = false
	d.crashed = false
	d.dead = false
	d.mu.Unlock()
	return stats, nil
}

// RecoverAsync spawns local recovery on the node's own execution node — the
// chaos restart hook: the process comes back, replays its disk, and only
// then serves again. On replay failure the node stays down (fail-stop).
func (sn *Node) RecoverAsync() {
	sn.node.Go("recover", func(ctx env.Ctx) {
		sn.RecoverLocal(ctx)
	})
}

// DurStats returns WAL commit/record counts and completed checkpoints.
func (sn *Node) DurStats() (commits, records, ckpts uint64) {
	d := sn.dur
	if d == nil {
		return 0, 0, 0
	}
	commits, records = d.wal.Stats()
	d.mu.Lock()
	ckpts = d.ckpts
	d.mu.Unlock()
	return commits, records, ckpts
}

// handleRecover is the scatter-gather worker: fetch the assigned shard of a
// dead node's durable objects, decode them, and route every record — applied
// and re-logged locally when this node is the partition's new master,
// forwarded as a replication batch otherwise. Apply-if-newer by stamp makes
// the routing order-independent across workers.
func (sn *Node) handleRecover(ctx env.Ctx, raw []byte) []byte {
	req, err := wire.DecodeRecoverRequest(raw)
	if err != nil || sn.dur == nil {
		return (&wire.RecoverResponse{Status: wire.StatusError}).Encode()
	}
	assign := make(map[uint64]string, len(req.Assign))
	for _, a := range req.Assign {
		assign[a.Pid] = a.Addr
	}
	resp := &wire.RecoverResponse{Status: wire.StatusOK}
	// Records grouped by destination partition, local vs forwarded.
	local := make(map[uint64][]wire.Mutation)
	remote := make(map[uint64][]wire.Mutation)
	for _, obj := range req.Objects {
		data, err := sn.dur.opts.Backend.Get(ctx, obj)
		if err != nil {
			return (&wire.RecoverResponse{Status: wire.StatusUnavailable}).Encode()
		}
		resp.Bytes += uint64(len(data))
		route := func(pid uint64, m *wire.Mutation) {
			target, ok := assign[pid]
			if !ok {
				// Not a partition being recovered (the dead node also
				// replicated others); the surviving master still has it.
				return
			}
			resp.Records++
			if target == sn.addr {
				local[pid] = append(local[pid], *m)
			} else {
				remote[pid] = append(remote[pid], *m)
			}
		}
		if durable.IsSegment(req.Dead, obj) {
			// A torn tail is the expected crash signature: the partial
			// frame's records were never acknowledged. Corruption is not.
			_, err := durable.DecodeSegment(data, func(r *durable.Record) {
				route(r.Part, &r.Mut)
			})
			if err != nil && !durable.IsTorn(err) {
				return (&wire.RecoverResponse{Status: wire.StatusError}).Encode()
			}
		} else {
			// Checkpoint chunks carry no partition id; route each cell by
			// its key hash against the assignment table.
			pids := det.Keys(assign)
			if err := durable.DecodeChunk(data, func(m *wire.Mutation) {
				for _, pid := range pids {
					if p := sn.partByID(pid); p != nil && p.Owns(KeyHash(m.Key)) {
						route(pid, m)
						return
					}
				}
			}); err != nil {
				return (&wire.RecoverResponse{Status: wire.StatusError}).Encode()
			}
		}
	}
	ctx.Work(sn.costs.chargeFor(int(resp.Records), int(resp.Bytes)))

	// Local records: apply under the lock, then WAL-log them so this node's
	// own durable state covers its new partitions.
	var recs []durable.Record
	sn.mu.Lock()
	for _, pid := range det.Keys(local) {
		for i := range local[pid] {
			m := &local[pid][i]
			sn.applyMutationLocked(m)
			recs = append(recs, durable.Record{Part: pid, Mut: *m})
		}
	}
	sn.mu.Unlock()
	if err := sn.walCommit(ctx, recs); err != nil {
		return (&wire.RecoverResponse{Status: wire.StatusUnavailable}).Encode()
	}

	// Forwarded records: chunked replication batches; the receiving master
	// applies and re-logs them through its own replicate path.
	for _, pid := range det.Keys(remote) {
		ms := remote[pid]
		target := assign[pid]
		for off := 0; off < len(ms); off += transferChunk {
			end := off + transferChunk
			if end > len(ms) {
				end = len(ms)
			}
			conn, err := sn.conn(target)
			if err != nil {
				return (&wire.RecoverResponse{Status: wire.StatusUnavailable}).Encode()
			}
			rr := &wire.ReplicateRequest{PartitionID: pid, Mutations: ms[off:end]}
			// Apply-if-newer on the receiving master makes re-sends safe.
			var raw []byte
			err = sn.retr.Do(ctx, resil.ClassReplicate, target, func(int) error {
				var rtErr error
				raw, rtErr = conn.RoundTrip(ctx, rr.Encode())
				return rtErr
			})
			if err != nil {
				return (&wire.RecoverResponse{Status: wire.StatusUnavailable}).Encode()
			}
			dec, err := wire.DecodeReplicateResponse(raw)
			if err != nil || dec.Status != wire.StatusOK {
				return (&wire.RecoverResponse{Status: wire.StatusUnavailable}).Encode()
			}
		}
	}
	return resp.Encode()
}

// partByID returns the node's view of partition pid. Caller need not hold
// sn.mu (reads a cloned map swapped atomically under it).
func (sn *Node) partByID(pid uint64) *Partition {
	sn.mu.Lock()
	defer sn.mu.Unlock()
	for i := range sn.pmap.Partitions {
		if sn.pmap.Partitions[i].ID == pid {
			return &sn.pmap.Partitions[i]
		}
	}
	return nil
}
