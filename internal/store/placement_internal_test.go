package store

import (
	"testing"
	"time"

	"tell/internal/durable"
	"tell/internal/env"
	"tell/internal/sim"
	"tell/internal/testutil"
	"tell/internal/transport"
)

// These tests exercise the manager-journal recovery rule directly: a fresh
// manager reading a journal left by a crashed one must resolve every
// migration to exactly one owner — pre-cutover entries abort (source keeps
// the range, fence cleared), cutover entries complete (journaled map
// republished).

func newJournalRig(t *testing.T) (*sim.Kernel, env.Full, *transport.SimNet, *Cluster, env.Node) {
	t.Helper()
	k := sim.NewKernel(testutil.Seed(t, 11))
	envr := env.NewSim(k)
	net := transport.NewSimNet(k, transport.InfiniBand())
	cl, err := NewCluster(envr, net, ClusterConfig{NumNodes: 2, PartitionsPerNode: 2})
	if err != nil {
		t.Fatal(err)
	}
	return k, envr, net, cl, envr.NewNode("driver", 2)
}

func drive(t *testing.T, k *sim.Kernel, n env.Node, fn func(ctx env.Ctx)) {
	t.Helper()
	done := false
	n.Go("test", func(ctx env.Ctx) {
		fn(ctx)
		done = true
		k.Stop()
	})
	if err := k.RunUntil(sim.Time(600 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("driver did not finish")
	}
}

func TestResolveJournalAbortsPreCutover(t *testing.T) {
	k, envr, net, cl, driver := newJournalRig(t)
	defer k.Shutdown()
	j := durable.NewMem()
	pid := cl.Manager.Map().Partitions[0].ID
	src := cl.Manager.Map().Partitions[0].Master
	sn := cl.Node(src)

	drive(t, k, driver, func(ctx env.Ctx) {
		// A manager died after fencing but before the cutover committed:
		// the fence is up on the source and the journal stops at "fence".
		sn.mu.Lock()
		sn.fenced = map[uint64]bool{pid: true}
		sn.mu.Unlock()
		e := &migJournalEntry{Phase: migPhaseFence, Pid: pid, Src: src, Dst: "sn1"}
		if err := j.Put(ctx, migJournalKey(pid), e.encode()); err != nil {
			t.Fatalf("seed journal: %v", err)
		}

		m2 := NewManager("mgmt2", envr, envr.NewNode("mgmt2", 2), net)
		m2.SetMap(cl.Manager.Map())
		m2.SetJournal(j)
		if err := m2.ResolveJournal(ctx); err != nil {
			t.Fatalf("resolve: %v", err)
		}

		// The source keeps the range and its fence is cleared.
		sn.mu.Lock()
		fenced := sn.fenced[pid]
		sn.mu.Unlock()
		if fenced {
			t.Fatal("fence not cleared by journal resolution")
		}
		raw, err := j.Get(ctx, migJournalKey(pid))
		if err != nil {
			t.Fatalf("journal get: %v", err)
		}
		got, err := decodeMigJournalEntry(raw)
		if err != nil {
			t.Fatalf("journal decode: %v", err)
		}
		if got.Phase != migPhaseAborted {
			t.Fatalf("journal phase = %q, want aborted", got.Phase)
		}
	})
}

func TestResolveJournalCompletesCutover(t *testing.T) {
	k, envr, net, cl, driver := newJournalRig(t)
	defer k.Shutdown()
	j := durable.NewMem()
	base := cl.Manager.Map()
	pid := base.Partitions[0].ID
	src := base.Partitions[0].Master
	dst := "sn1"
	if src == dst {
		dst = "sn0"
	}

	drive(t, k, driver, func(ctx env.Ctx) {
		// A manager died right after journaling the cutover: the record
		// embeds the committed map, so recovery must finish the migration.
		committed := base.Clone()
		for i := range committed.Partitions {
			if committed.Partitions[i].ID == pid {
				committed.Partitions[i].Master = dst
			}
		}
		committed.Epoch = base.Epoch + 1
		e := &migJournalEntry{Phase: migPhaseCutover, Pid: pid, Src: src, Dst: dst, Map: committed.Encode()}
		if err := j.Put(ctx, migJournalKey(pid), e.encode()); err != nil {
			t.Fatalf("seed journal: %v", err)
		}

		m2 := NewManager("mgmt2", envr, envr.NewNode("mgmt2", 2), net)
		m2.SetMap(base)
		m2.SetJournal(j)
		if err := m2.ResolveJournal(ctx); err != nil {
			t.Fatalf("resolve: %v", err)
		}

		// The fresh manager holds the committed map...
		pm := m2.Map()
		if pm.Epoch != committed.Epoch {
			t.Fatalf("manager epoch = %d, want %d", pm.Epoch, committed.Epoch)
		}
		for _, p := range pm.Partitions {
			if p.ID == pid && p.Master != dst {
				t.Fatalf("range %d master = %s, want %s", pid, p.Master, dst)
			}
		}
		// ...and pushed it to the storage nodes.
		for _, addr := range []string{"sn0", "sn1"} {
			n := cl.Node(addr)
			n.mu.Lock()
			epoch := n.pmap.Epoch
			n.mu.Unlock()
			if epoch != committed.Epoch {
				t.Fatalf("%s epoch = %d, want %d", addr, epoch, committed.Epoch)
			}
		}
		// The journal entry is terminal now.
		raw, _ := j.Get(ctx, migJournalKey(pid))
		got, err := decodeMigJournalEntry(raw)
		if err != nil || got.Phase != migPhaseDone {
			t.Fatalf("journal phase = %q (%v), want done", got.Phase, err)
		}
	})
}
