package store

import (
	"fmt"

	"tell/internal/env"
	"tell/internal/transport"
)

// ClusterConfig describes a storage cluster to assemble.
type ClusterConfig struct {
	// NumNodes is the number of storage nodes (SNs).
	NumNodes int
	// PartitionsPerNode splits each node's load (default 1).
	PartitionsPerNode int
	// ReplicationFactor is the total number of copies, master included
	// (RF1 = no replication), matching the paper's RF1/RF2/RF3 axes.
	ReplicationFactor int
	// CoresPerNode sizes the simulated machines (default 4, half of the
	// paper's dual-socket servers: each process was pinned to one NUMA
	// unit, §6.1).
	CoresPerNode int
	// Spares is how many standby nodes to provision for re-replication.
	Spares int
	// Costs is the CPU cost model (DefaultCosts if zero).
	Costs Costs
	// Durable, when non-nil, attaches a WAL + fuzzy-checkpoint tier to
	// every storage node (spares included) on the shared backend named in
	// the options.
	Durable *DurOptions
}

func (c *ClusterConfig) fill() {
	if c.NumNodes <= 0 {
		c.NumNodes = 1
	}
	if c.PartitionsPerNode <= 0 {
		c.PartitionsPerNode = 1
	}
	if c.ReplicationFactor <= 0 {
		c.ReplicationFactor = 1
	}
	if c.CoresPerNode <= 0 {
		c.CoresPerNode = 4
	}
	if c.Costs == (Costs{}) {
		c.Costs = DefaultCosts()
	}
}

// Cluster is an assembled storage layer: nodes, manager and topology. It
// exists for in-process deployments (simulation, tests, examples); the
// telld binary assembles the same pieces across real processes.
type Cluster struct {
	Env       env.Full
	Transport transport.Transport
	Manager   *Manager
	Nodes     []*Node

	byAddr map[string]*Node
	cfg    ClusterConfig
}

// NewCluster assembles and starts a storage cluster. Partitions are spread
// round-robin across nodes; each partition's replicas live on the next
// ReplicationFactor-1 nodes.
func NewCluster(envr env.Full, tr transport.Transport, cfg ClusterConfig) (*Cluster, error) {
	cfg.fill()
	if cfg.ReplicationFactor > cfg.NumNodes {
		return nil, fmt.Errorf("store: replication factor %d exceeds node count %d",
			cfg.ReplicationFactor, cfg.NumNodes)
	}
	c := &Cluster{
		Env:       envr,
		Transport: tr,
		byAddr:    make(map[string]*Node),
		cfg:       cfg,
	}

	nParts := cfg.NumNodes * cfg.PartitionsPerNode
	parts := EvenPartitions(nParts)
	addrs := make([]string, cfg.NumNodes)
	for i := 0; i < cfg.NumNodes; i++ {
		addrs[i] = fmt.Sprintf("sn%d", i)
	}
	for i := range parts {
		owner := i % cfg.NumNodes
		parts[i].Master = addrs[owner]
		for r := 1; r < cfg.ReplicationFactor; r++ {
			parts[i].Replicas = append(parts[i].Replicas, addrs[(owner+r)%cfg.NumNodes])
		}
	}
	pmap := &PartitionMap{Epoch: 1, Partitions: parts}

	// Management node.
	mgrEnvNode := envr.NewNode("mgmt", 2)
	c.Manager = NewManager("mgmt", envr, mgrEnvNode, tr)
	c.Manager.ReplicationFactor = cfg.ReplicationFactor
	c.Manager.SetMap(pmap)

	// Storage nodes.
	for i := 0; i < cfg.NumNodes+cfg.Spares; i++ {
		addr := fmt.Sprintf("sn%d", i)
		n := envr.NewNode(addr, cfg.CoresPerNode)
		sn := NewNode(addr, envr, n, tr, cfg.Costs)
		if cfg.Durable != nil {
			sn.AttachDurability(*cfg.Durable)
		}
		sn.Configure(pmap)
		if err := sn.Start(); err != nil {
			return nil, err
		}
		c.Nodes = append(c.Nodes, sn)
		c.byAddr[addr] = sn
		if i >= cfg.NumNodes {
			c.Manager.AddSpare(addr)
		}
	}
	if err := c.Manager.Start(); err != nil {
		return nil, err
	}
	return c, nil
}

// AddStorageNode provisions and starts a fresh, empty storage node at addr
// (scale-out). The node gets the cluster's cost model, core count and — when
// the cluster is durable — its own durability tier, learns the current
// partition map, and registers with the manager so the failure detector and
// the placement controller see it. It masters nothing until the rebalancer
// (or an explicit MigratePartition) moves ranges onto it.
func (c *Cluster) AddStorageNode(addr string) (*Node, error) {
	if c.byAddr[addr] != nil {
		return nil, fmt.Errorf("store: node %q already exists", addr)
	}
	n := c.Env.NewNode(addr, c.cfg.CoresPerNode)
	sn := NewNode(addr, c.Env, n, c.Transport, c.cfg.Costs)
	if c.cfg.Durable != nil {
		sn.AttachDurability(*c.cfg.Durable)
	}
	sn.Configure(c.Manager.Map())
	if err := sn.Start(); err != nil {
		return nil, err
	}
	c.Nodes = append(c.Nodes, sn)
	c.byAddr[addr] = sn
	c.Manager.AddNode(addr)
	return sn, nil
}

// ManagerAddr returns the lookup-service address for clients.
func (c *Cluster) ManagerAddr() string { return c.Manager.Addr() }

// NewClient creates a storage client homed on the given execution node.
func (c *Cluster) NewClient(node env.Node) *Client {
	return NewClient(c.Env, node, c.Transport, c.ManagerAddr())
}

// Node returns the storage node serving addr.
func (c *Cluster) Node(addr string) *Node { return c.byAddr[addr] }

// Addrs returns the addresses of all storage nodes, spares included, in
// creation order (sn0, sn1, ...). Fault injectors use it to pick targets.
func (c *Cluster) Addrs() []string {
	addrs := make([]string, len(c.Nodes))
	for i, n := range c.Nodes {
		addrs[i] = n.Addr()
	}
	return addrs
}

// BulkLoad installs a key directly on its master and replicas, bypassing
// the RPC path. Only for dataset population before an experiment starts.
func (c *Cluster) BulkLoad(key, val []byte) error {
	part, ok := c.Manager.Map().LookupKey(key)
	if !ok {
		return fmt.Errorf("store: no partition for key %q", key)
	}
	master := c.byAddr[part.Master]
	if master == nil {
		return fmt.Errorf("store: unknown master %q", part.Master)
	}
	stamp := master.BulkLoad(key, val)
	for _, rep := range part.Replicas {
		if rn := c.byAddr[rep]; rn != nil {
			rn.LoadReplica(key, val, stamp)
		}
	}
	return nil
}

// BulkLoadCounter installs a counter cell directly on its master and
// replicas (dataset population only).
func (c *Cluster) BulkLoadCounter(key []byte, v int64) error {
	part, ok := c.Manager.Map().LookupKey(key)
	if !ok {
		return fmt.Errorf("store: no partition for key %q", key)
	}
	master := c.byAddr[part.Master]
	if master == nil {
		return fmt.Errorf("store: unknown master %q", part.Master)
	}
	stamp := master.BulkLoadCounter(key, v)
	for _, rep := range part.Replicas {
		if rn := c.byAddr[rep]; rn != nil {
			rn.LoadReplicaCounter(key, v, stamp)
		}
	}
	return nil
}

// CheckpointAll writes a fuzzy checkpoint on every durable node. Call after
// bulk loading: BulkLoad bypasses the WAL, so the loaded image must reach
// the backend before faults are injected.
func (c *Cluster) CheckpointAll(ctx env.Ctx) error {
	for _, n := range c.Nodes {
		if !n.Durable() {
			continue
		}
		if err := n.Checkpoint(ctx); err != nil {
			return err
		}
	}
	return nil
}

// TotalKeys sums stored cells across masters (each key counted once per
// owning master).
func (c *Cluster) TotalKeys() int {
	total := 0
	for _, n := range c.Nodes {
		total += n.Keys()
	}
	return total
}
