package store

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"tell/internal/det"
	"tell/internal/durable"
	"tell/internal/env"
	"tell/internal/resil"
	"tell/internal/wire"
)

// Manager-side live migration and autonomic placement. The manager drives
// the three-phase protocol (see migrate.go) against the source and target
// nodes, journals every phase transition on a durable backend so a manager
// crash at any boundary resolves to exactly one owner, and runs an optional
// placement controller that consumes the cluster heat map and issues
// split/migrate plans under a deterministic hysteresis policy (H2O-style
// autonomic placement over the paper's shared-data elasticity claim).

// migJournalEntry is one durable record of a migration's progress. The
// cutover record carries the full new partition map: after it is durable
// the migration completes even across a manager crash (ResolveJournal
// republishes the map); before it, recovery aborts and the source keeps
// the range.
type migJournalEntry struct {
	Phase string
	Pid   uint64
	Src   string
	Dst   string
	// Fence is the commit-manager snapshot boundary sampled at cutover
	// (diagnostic: SI safety comes from the write fence + stamp floors).
	Fence uint64
	// Map is the encoded post-cutover partition map (cutover phase only).
	Map []byte
}

func migJournalKey(pid uint64) string { return fmt.Sprintf("mgmt/mig/%020d", pid) }

func (e *migJournalEntry) encode() []byte {
	w := wire.NewWriter(64 + len(e.Map))
	w.String(e.Phase)
	w.Uvarint(e.Pid)
	w.String(e.Src)
	w.String(e.Dst)
	w.Uvarint(e.Fence)
	w.BytesN(e.Map)
	return w.Bytes()
}

func decodeMigJournalEntry(b []byte) (*migJournalEntry, error) {
	r := wire.NewReader(b)
	e := &migJournalEntry{Phase: r.String(), Pid: r.Uvarint(), Src: r.String(), Dst: r.String(), Fence: r.Uvarint()}
	e.Map = r.BytesN()
	return e, r.Close()
}

// SetJournal attaches the manager's durable migration journal. Without one
// migrations still run, but a manager crash mid-migration cannot be
// resolved from disk.
func (m *Manager) SetJournal(b durable.Backend) {
	m.mu.Lock()
	m.journal = b
	m.mu.Unlock()
}

func (m *Manager) journalPut(ctx env.Ctx, e *migJournalEntry) error {
	m.mu.Lock()
	j := m.journal
	m.mu.Unlock()
	if j == nil {
		return nil
	}
	return j.Put(ctx, migJournalKey(e.Pid), e.encode())
}

// readbackCutover disambiguates the commit-point write after an errored
// Put: it returns (entry, true) when a durable cutover record exists for
// the range, (nil, true) when the journal definitively holds no cutover
// for it, and (nil, false) when the journal cannot be read at all — the
// outcome is then unknowable and only ResolveJournal may decide it.
func (m *Manager) readbackCutover(ctx env.Ctx, pid uint64) (*migJournalEntry, bool) {
	m.mu.Lock()
	j := m.journal
	m.mu.Unlock()
	if j == nil {
		return nil, true
	}
	raw, err := j.Get(ctx, migJournalKey(pid))
	if errors.Is(err, durable.ErrNotExist) {
		return nil, true
	}
	if err != nil {
		return nil, false
	}
	e, err := decodeMigJournalEntry(raw)
	if err != nil {
		// Puts are atomic, so a durable record never decodes dirty; treat
		// the impossible as unknowable rather than presuming an outcome.
		return nil, false
	}
	if e.Phase == migPhaseCutover {
		return e, true
	}
	return nil, true
}

// completeCutover finishes a durably committed cutover: install the
// journaled map (epoch-guarded), publish it target-first, release the
// source's fence, and mark the journal done. Shared by journal recovery
// and the coordinator's ambiguous-commit readback path. The terminal marks
// are best-effort — the cutover record alone decides ownership, and
// re-resolving an unmarked record is an idempotent republish.
func (m *Manager) completeCutover(ctx env.Ctx, e *migJournalEntry) error {
	pm, err := DecodePartitionMap(e.Map)
	if err != nil {
		return err
	}
	m.mu.Lock()
	if pm.Epoch > m.pmap.Epoch {
		m.pmap = pm.Clone()
	}
	m.mu.Unlock()
	m.publishMap(ctx, pm, e.Dst)
	//lint:allow errdiscard best-effort fence clear on a completed cutover
	m.migCall(ctx, e.Src, metaMigFinish, e.Pid, "", 0)
	//lint:allow errdiscard terminal journal mark; the cutover record already committed ownership
	m.journalPut(ctx, &migJournalEntry{Phase: migPhaseDone, Pid: e.Pid, Src: e.Src, Dst: e.Dst, Fence: e.Fence})
	m.setMig(e.Pid, migPhaseDone, e.Src, e.Dst, 0, 0)
	return nil
}

// AddNode registers a storage node with the manager before it holds any
// ranges: the failure detector starts probing it and the placement
// controller counts it as a (cold, empty) migration target. This is the
// scale-out entry point — a fresh node joins empty and the rebalancer
// moves ranges onto it.
func (m *Manager) AddNode(addr string) {
	m.mu.Lock()
	if m.known == nil {
		m.known = make(map[string]bool)
	}
	m.known[addr] = true
	m.mu.Unlock()
}

// setMigLocked updates the manager's authoritative migration telemetry row.
// Caller holds m.mu.
func (m *Manager) setMigLocked(pid uint64, phase, src, dst string, addBytes, addChunks int64) {
	if m.migs == nil {
		m.migs = make(map[uint64]*wire.MigrationStat)
	}
	g := m.migs[pid]
	if g == nil {
		g = &wire.MigrationStat{Node: m.addr, Range: pid}
		m.migs[pid] = g
	}
	if phase != "" {
		g.Phase = phase
	}
	if src != "" {
		g.Source = src
	}
	if dst != "" {
		g.Target = dst
	}
	g.BytesMoved += addBytes
	g.Chunks += addChunks
}

func (m *Manager) setMig(pid uint64, phase, src, dst string, addBytes, addChunks int64) {
	m.mu.Lock()
	m.setMigLocked(pid, phase, src, dst, addBytes, addChunks)
	m.mu.Unlock()
}

// fillMigStats appends the manager's migration rows to a stats snapshot.
func (m *Manager) fillMigStats(ext *wire.StatsExt) {
	m.mu.Lock()
	for _, pid := range det.Keys(m.migs) {
		ext.Migr = append(ext.Migr, *m.migs[pid])
	}
	m.mu.Unlock()
}

// logSchedule appends one line to the controller's decision log. The log
// carries virtual timestamps only, so two same-seed runs produce
// byte-identical schedules (the determinism contract of the rebalancing
// experiment).
func (m *Manager) logSchedule(now time.Duration, format string, args ...interface{}) {
	m.mu.Lock()
	m.schedule = append(m.schedule, fmt.Sprintf("%dns %s", int64(now), fmt.Sprintf(format, args...)))
	m.mu.Unlock()
}

// ScheduleLog returns the placement controller's decision log: one line per
// split/migrate action, virtual-timestamped.
func (m *Manager) ScheduleLog() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]string(nil), m.schedule...)
}

// metaCall sends one control request with meta-class retries.
func (m *Manager) metaCall(ctx env.Ctx, addr string, req []byte) ([]byte, error) {
	conn, err := m.conn(addr)
	if err != nil {
		return nil, err
	}
	var raw []byte
	err = m.retr.Do(ctx, resil.ClassMeta, addr, func(int) error {
		var rtErr error
		raw, rtErr = conn.RoundTrip(ctx, req)
		return rtErr
	})
	return raw, err
}

// migCall sends one migration control request and decodes the ack.
func (m *Manager) migCall(ctx env.Ctx, addr string, sub metaSub, pid uint64, peer string, floor uint64) (migAck, error) {
	raw, err := m.metaCall(ctx, addr, encodeMigReq(sub, pid, peer, floor))
	if err != nil {
		return migAck{}, err
	}
	ack, err := decodeMigAck(raw)
	if err != nil {
		return migAck{}, err
	}
	if ack.Status != wire.StatusOK {
		return ack, fmt.Errorf("store: migration rpc to %s refused: %v", addr, ack.Status)
	}
	return ack, nil
}

// ErrMigrationInFlight: the range already has an active migration.
var ErrMigrationInFlight = errors.New("store: migration already in flight for range")

// MigratePartition live-migrates range pid to dst through the three-phase
// protocol: bulk copy, delta catch-up rounds, fenced cutover. It blocks
// until the migration commits or aborts; on abort the source keeps the
// range and the fence is cleared. Safe to call while the range serves
// traffic — that is the point.
func (m *Manager) MigratePartition(ctx env.Ctx, pid uint64, dst string) error {
	m.mu.Lock()
	var src string
	for i := range m.pmap.Partitions {
		if m.pmap.Partitions[i].ID == pid {
			src = m.pmap.Partitions[i].Master
		}
	}
	switch {
	case src == "":
		m.mu.Unlock()
		return fmt.Errorf("store: no master for range %d", pid)
	case src == dst:
		m.mu.Unlock()
		return fmt.Errorf("store: range %d already mastered by %s", pid, dst)
	case m.dead[src] || m.dead[dst]:
		m.mu.Unlock()
		return fmt.Errorf("store: migration endpoint dead (%s -> %s)", src, dst)
	case m.inflight[pid]:
		m.mu.Unlock()
		return ErrMigrationInFlight
	}
	if m.inflight == nil {
		m.inflight = make(map[uint64]bool)
	}
	m.inflight[pid] = true
	m.setMigLocked(pid, migPhaseCopy, src, dst, 0, 0)
	m.mu.Unlock()
	defer func() {
		m.mu.Lock()
		delete(m.inflight, pid)
		m.mu.Unlock()
	}()

	abort := func(cause error) error {
		// Clear the fence best-effort (the source may be the thing that
		// died), then durably mark the migration aborted: recovery resolves
		// the range to its current owner, the source.
		//lint:allow errdiscard best-effort fence clear; a dead source has no fence to clear
		m.migCall(ctx, src, metaMigFinish, pid, "", 1)
		//lint:allow errdiscard the abort mark is advisory; a missing journal resolves pre-cutover entries to abort anyway
		m.journalPut(ctx, &migJournalEntry{Phase: migPhaseAborted, Pid: pid, Src: src, Dst: dst})
		m.setMig(pid, migPhaseAborted, "", "", 0, 0)
		return fmt.Errorf("store: migration of range %d aborted: %w", pid, cause)
	}

	// A prior coordinator may have left an undecided commit record for this
	// range (its cutover write errored with the outcome unknown). Never
	// overwrite a durable cutover with a fresh intent — finish it instead.
	if e, known := m.readbackCutover(ctx, pid); known && e != nil {
		if err := m.completeCutover(ctx, e); err != nil {
			return err
		}
		return fmt.Errorf("store: range %d had a committed but unresolved cutover to %s; completed it", pid, e.Dst)
	}

	// Phase 1: bulk copy, throttled, under live traffic.
	if err := m.journalPut(ctx, &migJournalEntry{Phase: migPhaseCopy, Pid: pid, Src: src, Dst: dst}); err != nil {
		return err
	}
	ack, err := m.migCall(ctx, src, metaMigCopy, pid, dst, 0)
	if err != nil {
		return abort(err)
	}
	m.setMig(pid, "", "", "", int64(ack.Bytes), chunksOf(ack.Count))
	floor := ack.Floor

	// Phase 2: delta catch-up until the window settles.
	for round := 0; round < migDeltaRounds; round++ {
		if err := m.journalPut(ctx, &migJournalEntry{Phase: migPhaseDelta, Pid: pid, Src: src, Dst: dst}); err != nil {
			return abort(err)
		}
		m.setMig(pid, migPhaseDelta, "", "", 0, 0)
		d, err := m.migCall(ctx, src, metaMigDelta, pid, dst, floor)
		if err != nil {
			return abort(err)
		}
		m.setMig(pid, "", "", "", int64(d.Bytes), chunksOf(d.Count))
		floor = d.Floor
		if d.Count <= migDeltaSettle {
			break
		}
	}

	// Phase 3: fence + final delta, then the cutover commit.
	if err := m.journalPut(ctx, &migJournalEntry{Phase: migPhaseFence, Pid: pid, Src: src, Dst: dst}); err != nil {
		return abort(err)
	}
	m.setMig(pid, migPhaseFence, "", "", 0, 0)
	f, err := m.migCall(ctx, src, metaMigFence, pid, dst, floor)
	if err != nil {
		return abort(err)
	}
	m.setMig(pid, "", "", "", int64(f.Bytes), chunksOf(f.Count))

	// Sample the commit-manager snapshot boundary the cutover serializes
	// against; recorded in the journal for diagnosis.
	var fence uint64
	if m.Fence != nil {
		fence = m.Fence(ctx)
	}
	if _, err := m.migCall(ctx, dst, metaMigAdopt, pid, src, 0); err != nil {
		return abort(err)
	}

	// Cutover: build the new map from the current one, journal it, install
	// it only if no concurrent reconfiguration (failover) won the race. The
	// journal write is THE commit point — after it, recovery republishes
	// the new map; before it, recovery aborts. applyMap/SetMap are
	// epoch-guarded, so a cutover record that lost a race resolves to a
	// no-op republish.
	var newMap *PartitionMap
	for attempt := 0; attempt < 3; attempt++ {
		m.mu.Lock()
		var pp *Partition
		for i := range m.pmap.Partitions {
			if m.pmap.Partitions[i].ID == pid {
				pp = &m.pmap.Partitions[i]
			}
		}
		if pp == nil || pp.Master != src || m.dead[src] || m.dead[dst] {
			m.mu.Unlock()
			return abort(errors.New("store: range reconfigured during migration"))
		}
		baseEpoch := m.pmap.Epoch
		cand := m.pmap.Clone()
		for i := range cand.Partitions {
			p := &cand.Partitions[i]
			if p.ID != pid {
				continue
			}
			p.Master = dst
			// The source keeps a complete copy through the fence: keep it in
			// the replica set in the target's old slot, preserving RF without
			// a backfill. If the target was not a replica the set is already
			// full — the source's copy simply goes cold.
			for j, r := range p.Replicas {
				if r == dst {
					p.Replicas[j] = src
				}
			}
		}
		cand.Epoch = baseEpoch + 1
		m.mu.Unlock()

		if err := m.journalPut(ctx, &migJournalEntry{
			Phase: migPhaseCutover, Pid: pid, Src: src, Dst: dst, Fence: fence, Map: cand.Encode(),
		}); err != nil {
			// The commit-point write is the protocol's one ambiguous
			// boundary: an errored Put may still be durable (crash between
			// write and ack). Presuming abort would clear the fence and
			// resume the source while the journal durably says cutover — a
			// later ResolveJournal would then flip ownership to a target
			// missing the source's post-abort writes. Read back to decide.
			switch e, known := m.readbackCutover(ctx, pid); {
			case e != nil:
				// The record landed: committed. Finish exactly as journal
				// recovery would (the durable map, not this attempt's).
				return m.completeCutover(ctx, e)
			case known:
				// Definitively absent — pre-cutover, safe to presume abort.
				return abort(err)
			default:
				// Journal unreachable: the outcome is undecided and only
				// the journal may decide it. Leave the fence up so the
				// source takes no further writes on the range until
				// ResolveJournal settles ownership one way or the other.
				m.setMig(pid, migPhaseFence, "", "", 0, 0)
				return fmt.Errorf("store: migration of range %d undecided at cutover (journal unavailable): %w", pid, err)
			}
		}
		if m.OnCutoverJournaled != nil && !m.OnCutoverJournaled(pid) {
			// Crash emulation for recovery tests: the coordinator dies right
			// after the commit point. Nothing is installed or published and
			// the fence stays up — a recovering manager must finish the
			// cutover from the journal.
			return errors.New("store: coordinator abandoned at cutover commit point")
		}
		m.mu.Lock()
		if m.pmap.Epoch == baseEpoch {
			m.pmap = cand.Clone()
			newMap = cand
			m.mu.Unlock()
			break
		}
		// A failover advanced the map while we journaled; rebuild against
		// the fresh map (the superseded cutover record is overwritten).
		m.mu.Unlock()
	}
	if newMap == nil {
		return abort(errors.New("store: lost cutover race to concurrent reconfiguration"))
	}
	m.setMig(pid, migPhaseCutover, "", "", 0, 0)

	m.publishMap(ctx, newMap, dst)

	// Release the source's fence. Best-effort: a source that misses this
	// also received the new map (or will refetch it) and answers
	// WrongPartition for the range either way.
	//lint:allow errdiscard best-effort fence clear after a committed cutover
	m.migCall(ctx, src, metaMigFinish, pid, "", 0)
	//lint:allow errdiscard terminal journal mark; cutover already committed ownership
	m.journalPut(ctx, &migJournalEntry{Phase: migPhaseDone, Pid: pid, Src: src, Dst: dst, Fence: fence})
	m.setMig(pid, migPhaseDone, "", "", 0, 0)
	return nil
}

// publishMap pushes a configuration to every node in the map, the new
// master first so the range is servable the instant clients learn the new
// epoch. Best-effort with meta-class retries, like failover pushes.
func (m *Manager) publishMap(ctx env.Ctx, pm *PartitionMap, first string) {
	cfg := encodeMetaConfigure(pm)
	pushed := map[string]bool{}
	push := func(addr string) {
		if addr == "" || pushed[addr] {
			return
		}
		pushed[addr] = true
		//lint:allow errdiscard best-effort config push; stragglers refetch on WrongPartition
		m.metaCall(ctx, addr, cfg)
	}
	push(first)
	m.mu.Lock()
	targets := m.liveNodesLocked()
	m.mu.Unlock()
	for _, addr := range targets {
		push(addr)
	}
}

// ResolveJournal replays the migration journal after a manager restart:
// entries short of the cutover abort (clear the fence, source keeps the
// range); cutover entries complete (republish the journaled map, which
// epoch-guards make a no-op if the cluster moved on). Call after SetMap
// and SetJournal, before Start.
func (m *Manager) ResolveJournal(ctx env.Ctx) error {
	m.mu.Lock()
	j := m.journal
	m.mu.Unlock()
	if j == nil {
		return nil
	}
	names, err := j.List(ctx, "mgmt/mig/")
	if err != nil {
		return err
	}
	sort.Strings(names)
	for _, name := range names {
		raw, err := j.Get(ctx, name)
		if err != nil {
			return err
		}
		e, err := decodeMigJournalEntry(raw)
		if err != nil {
			return err
		}
		switch e.Phase {
		case migPhaseDone, migPhaseAborted:
			continue
		case migPhaseCutover:
			if err := m.completeCutover(ctx, e); err != nil {
				return err
			}
		default:
			// intent/copy/delta/fence: the cutover never committed — the
			// source owns the range. Clear its fence and mark the abort.
			//lint:allow errdiscard best-effort fence clear; a crashed source lost its (volatile) fence anyway
			m.migCall(ctx, e.Src, metaMigFinish, e.Pid, "", 1)
			if err := m.journalPut(ctx, &migJournalEntry{Phase: migPhaseAborted, Pid: e.Pid, Src: e.Src, Dst: e.Dst}); err != nil {
				return err
			}
			m.setMig(e.Pid, migPhaseAborted, e.Src, e.Dst, 0, 0)
		}
	}
	return nil
}

// RebalancePolicy tunes the placement controller. All decisions are pure
// functions of (heat snapshot, partition map, policy), evaluated on the
// virtual clock — no wall time — so schedules are deterministic per seed.
type RebalancePolicy struct {
	// Interval is the controller tick.
	Interval time.Duration
	// Ratio triggers planning when hottest-node load exceeds Ratio times
	// coldest-node load.
	Ratio float64
	// Hysteresis is how many consecutive imbalanced ticks must pass before
	// the controller acts — transient skew must not thrash ranges around.
	Hysteresis int
	// MinOps ignores imbalance below this absolute recent-ops level (an
	// idle cluster is trivially "imbalanced").
	MinOps int64
	// Cooldown is how many planning passes a just-migrated range sits out
	// before it may migrate again. When residual node loads are close, heat
	// noise flips the hot/cold inequality from pass to pass and the same
	// range ping-pongs between owners; the cooldown forces the controller
	// to either find a different useful action or declare convergence at
	// the achievable granularity.
	Cooldown int
}

// DefaultRebalancePolicy returns the calibrated controller policy.
func DefaultRebalancePolicy() RebalancePolicy {
	return RebalancePolicy{
		Interval:   250 * time.Millisecond,
		Ratio:      1.5,
		Hysteresis: 3,
		MinOps:     256,
		Cooldown:   4,
	}
}

// nodeLoad is one node's placement-relevant load: recent ops attributed to
// the ranges it masters.
type nodeLoad struct {
	addr   string
	ops    int64
	ranges []rangeLoad // sorted by pid
}

type rangeLoad struct {
	pid uint64
	ops int64
}

// loads builds the per-node load view the planner works from: heat-based
// when telemetry flows, partition-count-based otherwise (each mastered
// range counts 1). Heat is the per-(node, range) op count since the
// controller's PREVIOUS pass — not the telemetry retention window — so a
// range's heat follows it to its new owner as soon as traffic does, and a
// just-split or just-moved range never keeps planning passes churning on
// its stale history. Nodes registered via AddNode appear even when they
// master nothing — that is exactly what makes a fresh node the coldest
// target. The second return reports whether the view is heat-based; the
// count-based fallback needs a different MinOps floor (every range scores
// exactly 1).
func (m *Manager) loads(ctx env.Ctx) ([]nodeLoad, bool) {
	ext := m.collectExt(ctx)
	heat := make(map[string]map[uint64]int64)
	m.mu.Lock()
	if m.heatPrev == nil {
		m.heatPrev = make(map[string]map[uint64]int64)
	}
	for i := range ext.Heat {
		h := &ext.Heat[i]
		total := h.Reads + h.Writes
		prev := m.heatPrev[h.Node][h.Range]
		if total < prev {
			prev = 0 // the node restarted and its counters reset
		}
		if m.heatPrev[h.Node] == nil {
			m.heatPrev[h.Node] = make(map[uint64]int64)
		}
		m.heatPrev[h.Node][h.Range] = total
		if heat[h.Node] == nil {
			heat[h.Node] = make(map[uint64]int64)
		}
		heat[h.Node][h.Range] += total - prev
	}
	m.mu.Unlock()

	m.mu.Lock()
	nodes := m.liveNodesLocked()
	type pa struct {
		pid    uint64
		master string
	}
	parts := make([]pa, 0, len(m.pmap.Partitions))
	for i := range m.pmap.Partitions {
		if mast := m.pmap.Partitions[i].Master; mast != "" && !m.dead[mast] {
			parts = append(parts, pa{pid: m.pmap.Partitions[i].ID, master: mast})
		}
	}
	m.mu.Unlock()
	sort.Slice(parts, func(i, j int) bool { return parts[i].pid < parts[j].pid })

	anyHeat := false
	for _, p := range parts {
		if heat[p.master][p.pid] > 0 {
			anyHeat = true
			break
		}
	}
	byNode := make(map[string]*nodeLoad)
	for _, addr := range nodes {
		byNode[addr] = &nodeLoad{addr: addr}
	}
	for _, p := range parts {
		nl := byNode[p.master]
		if nl == nil {
			nl = &nodeLoad{addr: p.master}
			byNode[p.master] = nl
		}
		ops := int64(1)
		if anyHeat {
			ops = heat[p.master][p.pid]
		}
		nl.ops += ops
		nl.ranges = append(nl.ranges, rangeLoad{pid: p.pid, ops: ops})
	}
	out := make([]nodeLoad, 0, len(byNode))
	for _, addr := range det.Keys(byNode) {
		out = append(out, *byNode[addr])
	}
	return out, anyHeat
}

// migPlan is one planned placement action.
type migPlan struct {
	split bool
	pid   uint64
	src   string
	dst   string
}

// plan derives the next placement action from a load view, or nil when the
// cluster is balanced (or nothing helpful can move). Deterministic: ties
// break toward lexicographically smaller addresses and lower range ids.
func (m *Manager) plan(loads []nodeLoad, pol RebalancePolicy) *migPlan {
	if len(loads) < 2 {
		return nil
	}
	hot, cold := &loads[0], &loads[0]
	for i := range loads {
		nl := &loads[i]
		if nl.ops > hot.ops || (nl.ops == hot.ops && nl.addr < hot.addr) {
			hot = nl
		}
		if nl.ops < cold.ops || (nl.ops == cold.ops && nl.addr < cold.addr) {
			cold = nl
		}
	}
	var total int64
	for i := range loads {
		total += loads[i].ops
	}
	m.mu.Lock()
	m.hotShare = 0
	if total > 0 {
		m.hotShare = float64(hot.ops) / float64(total)
	}
	m.mu.Unlock()
	if hot.addr == cold.addr || hot.ops < pol.MinOps {
		return nil
	}
	if cold.ops > 0 && float64(hot.ops) <= pol.Ratio*float64(cold.ops) {
		return nil
	}
	gap := hot.ops - cold.ops
	// Move the range that best levels the pair: post-move imbalance is
	// |gap - 2·ops|, so the ideal move carries gap/2. Only ranges with
	// 0 < ops < gap improve anything at all.
	m.mu.Lock()
	m.planPass++
	inflight := make(map[uint64]bool, len(m.inflight))
	for pid := range m.inflight {
		inflight[pid] = true
	}
	cooling := make(map[uint64]bool, len(m.cooled))
	for pid, pass := range m.cooled {
		if m.planPass-pass <= pol.Cooldown {
			cooling[pid] = true
		}
	}
	atom := make(map[uint64]bool) // single-point spans that cannot split
	for i := range m.pmap.Partitions {
		if p := &m.pmap.Partitions[i]; p.LoHash >= p.HiHash {
			atom[p.ID] = true
		}
	}
	m.mu.Unlock()
	var best *rangeLoad
	var bestDist int64 = 1<<62 - 1
	for i := range hot.ranges {
		r := &hot.ranges[i]
		if inflight[r.pid] || cooling[r.pid] || r.ops <= 0 || r.ops >= gap {
			continue
		}
		dist := gap - 2*r.ops
		if dist < 0 {
			dist = -dist
		}
		if dist < bestDist || (dist == bestDist && best != nil && r.pid < best.pid) {
			best, bestDist = r, dist
		}
	}
	if best != nil {
		return &migPlan{pid: best.pid, src: hot.addr, dst: cold.addr}
	}
	// No movable range: one range carries (at least) the whole gap. Split
	// the hottest range at its hash midpoint so the next tick can move one
	// half — the classic hot-range escape hatch.
	var hottest *rangeLoad
	for i := range hot.ranges {
		r := &hot.ranges[i]
		if inflight[r.pid] || atom[r.pid] {
			continue
		}
		if hottest == nil || r.ops > hottest.ops || (r.ops == hottest.ops && r.pid < hottest.pid) {
			hottest = r
		}
	}
	if hottest == nil || hottest.ops <= 0 {
		return nil
	}
	return &migPlan{split: true, pid: hottest.pid, src: hot.addr}
}

// ErrUnsplittable reports a split of a range whose hash span is already a
// single point. The planner skips such ranges; hitting this directly means
// the map changed between planning and execution.
var ErrUnsplittable = errors.New("hash span is a single point; cannot split further")

// SplitPartition splits range pid: a map-only change — both halves stay on
// the same master and replicas, which already hold the data. The split
// point is the master's median live-key hash when it can report one (so a
// single split separates half the stored keys even when they cluster in a
// narrow hash band), the hash midpoint otherwise. Returns the new range's
// id.
func (m *Manager) SplitPartition(ctx env.Ctx, pid uint64) (uint64, error) {
	median, haveMedian := m.splitMedian(ctx, pid)
	return m.splitPartition(ctx, pid, median, haveMedian)
}

// splitMedian asks pid's master for the median live-key hash — the
// data-aware split point. ok is false when the master is unknown,
// unreachable, or reports that no point separates the range's keys (zero
// or one distinct hash).
func (m *Manager) splitMedian(ctx env.Ctx, pid uint64) (uint64, bool) {
	m.mu.Lock()
	var master string
	for i := range m.pmap.Partitions {
		if p := &m.pmap.Partitions[i]; p.ID == pid {
			master = p.Master
		}
	}
	m.mu.Unlock()
	if master == "" {
		return 0, false
	}
	ack, err := m.migCall(ctx, master, metaMigMedian, pid, "", 0)
	if err != nil || ack.Status != wire.StatusOK {
		return 0, false
	}
	return ack.Floor, true
}

func (m *Manager) splitPartition(ctx env.Ctx, pid, median uint64, haveMedian bool) (uint64, error) {
	m.mu.Lock()
	var pp *Partition
	var maxID uint64
	for i := range m.pmap.Partitions {
		p := &m.pmap.Partitions[i]
		if p.ID > maxID {
			maxID = p.ID
		}
		if p.ID == pid {
			pp = p
		}
	}
	if pp == nil {
		m.mu.Unlock()
		return 0, fmt.Errorf("store: no such range %d", pid)
	}
	if pp.LoHash >= pp.HiHash {
		m.mu.Unlock()
		return 0, fmt.Errorf("store: range %d: %w", pid, ErrUnsplittable)
	}
	mid := pp.LoHash + (pp.HiHash-pp.LoHash)/2
	if haveMedian && median >= pp.LoHash && median < pp.HiHash {
		mid = median
	}
	nu := Partition{
		ID:       maxID + 1,
		LoHash:   mid + 1,
		HiHash:   pp.HiHash,
		Master:   pp.Master,
		Replicas: append([]string(nil), pp.Replicas...),
	}
	pp.HiHash = mid
	m.pmap.Partitions = append(m.pmap.Partitions, nu)
	m.pmap.Epoch++
	newMap := m.pmap.Clone()
	m.mu.Unlock()
	m.publishMap(ctx, newMap, nu.Master)
	return nu.ID, nil
}

// HotShare reports the hottest node's fraction of total ops at the latest
// planning pass (0 before any pass). Rebalance loops watch it to detect
// when further actions stop improving the balance.
func (m *Manager) HotShare() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.hotShare
}

// RebalanceOnce runs one forced controller pass (no hysteresis): plan one
// action from the current load view and execute it. Returns whether an
// action ran. Cluster.Rebalance loops this until the view is balanced.
func (m *Manager) RebalanceOnce(ctx env.Ctx) (bool, error) {
	pol := DefaultRebalancePolicy()
	view, heatBased := m.loads(ctx)
	if !heatBased {
		// Count-based view: every range scores 1 op, so the policy's heat
		// noise floor would veto every plan. A forced pass balances range
		// counts even on an idle cluster.
		pol.MinOps = 1
	}
	p := m.plan(view, pol)
	if p == nil {
		return false, nil
	}
	if err := m.executePlan(ctx, p); err != nil {
		if errors.Is(err, ErrUnsplittable) {
			// The map moved under the plan; nothing useful ran.
			return false, nil
		}
		return true, err
	}
	return true, nil
}

func (m *Manager) executePlan(ctx env.Ctx, p *migPlan) error {
	if p.split {
		// A controller split exists to separate load; without a data split
		// point (the range's heat sits on a single key) a midpoint split
		// cannot move any ops — an isolated hot key is the terminal state.
		median, ok := m.splitMedian(ctx, p.pid)
		if !ok {
			return fmt.Errorf("store: range %d: %w", p.pid, ErrUnsplittable)
		}
		nu, err := m.splitPartition(ctx, p.pid, median, true)
		if err != nil {
			return err
		}
		m.logSchedule(ctx.Now(), "split p%d -> p%d on %s", p.pid, nu, p.src)
		return nil
	}
	m.logSchedule(ctx.Now(), "migrate p%d %s -> %s", p.pid, p.src, p.dst)
	m.mu.Lock()
	if m.cooled == nil {
		m.cooled = make(map[uint64]int)
	}
	m.cooled[p.pid] = m.planPass
	m.mu.Unlock()
	return m.MigratePartition(ctx, p.pid, p.dst)
}

// StartRebalancer launches the autonomic placement loop: every Interval it
// rebuilds the cluster load view from per-range heat, and after Hysteresis
// consecutive imbalanced ticks it executes one split or migrate action,
// then re-arms. Runs until Stop.
func (m *Manager) StartRebalancer(pol RebalancePolicy) {
	if pol.Interval <= 0 {
		pol = DefaultRebalancePolicy()
	}
	m.node.Go("rebalancer", func(ctx env.Ctx) {
		streak := 0
		for {
			ctx.Sleep(pol.Interval)
			m.mu.Lock()
			stopped := m.stopped
			m.mu.Unlock()
			if stopped {
				return
			}
			view, _ := m.loads(ctx)
			p := m.plan(view, pol)
			if p == nil {
				streak = 0
				continue
			}
			streak++
			if streak < pol.Hysteresis {
				continue
			}
			streak = 0
			//lint:allow errdiscard an aborted plan re-arms on the next tick; the journal records the abort
			m.executePlan(ctx, p)
		}
	})
}
