package store

import (
	"hash/fnv"

	"tell/internal/wire"
)

// KeyHash maps a key into the 64-bit hash space that partitions divide up.
// Like RamCloud tablets, partitions own contiguous ranges of key *hashes*,
// which balances load regardless of key distribution while still being
// "range partitioning" over the hash space.
func KeyHash(key []byte) uint64 {
	h := fnv.New64a()
	//lint:allow errdiscard hash.Hash Write is documented to never return an error
	h.Write(key)
	return h.Sum64()
}

// Partition is one shard of the key-hash space.
type Partition struct {
	ID     uint64
	LoHash uint64 // inclusive
	HiHash uint64 // inclusive
	// Master is the address serving reads and writes; Replicas receive
	// synchronous copies of every mutation (§4.4.2).
	Master   string
	Replicas []string
}

// Owns reports whether the partition covers hash h.
func (p *Partition) Owns(h uint64) bool { return h >= p.LoHash && h <= p.HiHash }

// PartitionMap is the lookup service state: the authoritative assignment of
// hash ranges to storage nodes. Epoch increases on every change (fail-over,
// re-replication), letting clients detect staleness.
type PartitionMap struct {
	Epoch      uint64
	Partitions []Partition
}

// Lookup returns the partition owning key hash h.
func (m *PartitionMap) Lookup(h uint64) (*Partition, bool) {
	for i := range m.Partitions {
		if m.Partitions[i].Owns(h) {
			return &m.Partitions[i], true
		}
	}
	return nil, false
}

// LookupKey returns the partition owning key.
func (m *PartitionMap) LookupKey(key []byte) (*Partition, bool) {
	return m.Lookup(KeyHash(key))
}

// Masters returns the distinct master addresses in map order.
func (m *PartitionMap) Masters() []string {
	seen := make(map[string]bool)
	var out []string
	for i := range m.Partitions {
		a := m.Partitions[i].Master
		if !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	return out
}

// Clone returns a deep copy.
func (m *PartitionMap) Clone() *PartitionMap {
	c := &PartitionMap{Epoch: m.Epoch, Partitions: make([]Partition, len(m.Partitions))}
	copy(c.Partitions, m.Partitions)
	for i := range c.Partitions {
		c.Partitions[i].Replicas = append([]string(nil), m.Partitions[i].Replicas...)
	}
	return c
}

// EvenPartitions splits the hash space into n equal ranges.
func EvenPartitions(n int) []Partition {
	if n <= 0 {
		panic("store: need at least one partition")
	}
	parts := make([]Partition, n)
	step := ^uint64(0) / uint64(n)
	for i := 0; i < n; i++ {
		lo := uint64(i) * step
		hi := lo + step - 1
		if i == n-1 {
			hi = ^uint64(0)
		}
		parts[i] = Partition{ID: uint64(i), LoHash: lo, HiHash: hi}
	}
	return parts
}

// Encode serializes the map (without any protocol framing; the meta
// protocol wraps it).
func (m *PartitionMap) Encode() []byte {
	w := wire.NewWriter(64)
	m.EncodeTo(w)
	return w.Bytes()
}

// EncodeTo appends the serialized map to w.
func (m *PartitionMap) EncodeTo(w *wire.Writer) {
	w.Uvarint(m.Epoch)
	w.Uvarint(uint64(len(m.Partitions)))
	for i := range m.Partitions {
		p := &m.Partitions[i]
		w.Uvarint(p.ID)
		w.U64(p.LoHash)
		w.U64(p.HiHash)
		w.String(p.Master)
		w.Uvarint(uint64(len(p.Replicas)))
		for _, r := range p.Replicas {
			w.String(r)
		}
	}
}

// DecodePartitionMap parses a serialized PartitionMap.
func DecodePartitionMap(b []byte) (*PartitionMap, error) {
	r := wire.NewReader(b)
	m, err := DecodePartitionMapFrom(r)
	if err != nil {
		return nil, err
	}
	return m, r.Close()
}

// DecodePartitionMapFrom parses a serialized PartitionMap from r.
func DecodePartitionMapFrom(r *wire.Reader) (*PartitionMap, error) {
	m := &PartitionMap{Epoch: r.Uvarint()}
	n := r.Count(18)
	m.Partitions = make([]Partition, n)
	for i := range m.Partitions {
		p := &m.Partitions[i]
		p.ID = r.Uvarint()
		p.LoHash = r.U64()
		p.HiHash = r.U64()
		p.Master = r.String()
		nr := r.Count(1)
		for j := 0; j < nr; j++ {
			p.Replicas = append(p.Replicas, r.String())
		}
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return m, nil
}
