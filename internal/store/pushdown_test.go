package store_test

import (
	"testing"
	"time"

	"tell/internal/env"
	"tell/internal/mvcc"
	"tell/internal/relational"
	"tell/internal/store"
)

func specSchema() *relational.TableSchema {
	return &relational.TableSchema{
		Name: "t",
		Cols: []relational.Column{
			{Name: "id", Type: relational.TInt64},
			{Name: "tag", Type: relational.TString},
			{Name: "score", Type: relational.TFloat64},
		},
		PKCols: []int{0},
	}
}

func TestScanSpecCodec(t *testing.T) {
	snap := mvcc.NewSnapshot(42)
	snap.Add(50)
	spec := &store.ScanSpec{
		Schema:   specSchema(),
		Snapshot: snap,
		Pred:     &store.Predicate{Col: 1, Op: store.CmpEQ, Val: relational.Str("x")},
		Proj:     []int{0, 2},
	}
	got, err := store.DecodeScanSpec(spec.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema.Name != "t" || len(got.Schema.Cols) != 3 {
		t.Fatalf("schema: %+v", got.Schema)
	}
	if !got.Snapshot.Contains(50) || got.Snapshot.Contains(51) {
		t.Fatal("snapshot lost")
	}
	if got.Pred.Col != 1 || got.Pred.Op != store.CmpEQ || got.Pred.Val.S != "x" {
		t.Fatalf("pred: %+v", got.Pred)
	}
	if len(got.Proj) != 2 || got.Proj[1] != 2 {
		t.Fatalf("proj: %v", got.Proj)
	}
	// No predicate, no projection.
	spec2 := &store.ScanSpec{Schema: specSchema(), Snapshot: mvcc.NewSnapshot(1)}
	got2, err := store.DecodeScanSpec(spec2.Encode())
	if err != nil || got2.Pred != nil || len(got2.Proj) != 0 {
		t.Fatalf("minimal spec: %+v %v", got2, err)
	}
	// Out-of-range columns rejected.
	bad := &store.ScanSpec{
		Schema:   specSchema(),
		Snapshot: mvcc.NewSnapshot(1),
		Pred:     &store.Predicate{Col: 9, Op: store.CmpEQ, Val: relational.I64(1)},
	}
	if _, err := store.DecodeScanSpec(bad.Encode()); err == nil {
		t.Fatal("bad predicate column accepted")
	}
	if _, err := store.DecodeScanSpec([]byte{1, 2, 3}); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestPredicateOperators(t *testing.T) {
	row := relational.Row{relational.I64(5), relational.Str("m"), relational.F64(1.5)}
	cases := []struct {
		p    store.Predicate
		want bool
	}{
		{store.Predicate{Col: 0, Op: store.CmpEQ, Val: relational.I64(5)}, true},
		{store.Predicate{Col: 0, Op: store.CmpNE, Val: relational.I64(5)}, false},
		{store.Predicate{Col: 0, Op: store.CmpLT, Val: relational.I64(6)}, true},
		{store.Predicate{Col: 0, Op: store.CmpLE, Val: relational.I64(5)}, true},
		{store.Predicate{Col: 0, Op: store.CmpGT, Val: relational.I64(5)}, false},
		{store.Predicate{Col: 0, Op: store.CmpGE, Val: relational.I64(5)}, true},
		{store.Predicate{Col: 1, Op: store.CmpLT, Val: relational.Str("z")}, true},
		{store.Predicate{Col: 1, Op: store.CmpGT, Val: relational.Str("z")}, false},
		{store.Predicate{Col: 2, Op: store.CmpGE, Val: relational.F64(1.5)}, true},
		{store.Predicate{Col: 2, Op: store.CmpGT, Val: relational.F64(-2)}, true},
		// Negative numbers order correctly through the key encoding.
		{store.Predicate{Col: 0, Op: store.CmpGT, Val: relational.I64(-10)}, true},
	}
	for i, c := range cases {
		if got := c.p.Matches(row); got != c.want {
			t.Fatalf("case %d: got %v", i, got)
		}
	}
}

func TestScanFilteredThroughCluster(t *testing.T) {
	h := newHarness(t, store.ClusterConfig{NumNodes: 3})
	defer h.close()
	schema := specSchema()
	schema.ID = 7
	// Load multi-version records directly: id i with tag "even"/"odd".
	for i := int64(0); i < 30; i++ {
		tag := "even"
		if i%2 == 1 {
			tag = "odd"
		}
		data, err := relational.EncodeRow(schema, relational.Row{
			relational.I64(i), relational.Str(tag), relational.F64(float64(i)),
		})
		if err != nil {
			t.Fatal(err)
		}
		rec := mvcc.NewRecord(0, data)
		if err := h.cluster.BulkLoad(relational.RecordKey(schema.ID, uint64(i+1)), rec.Encode()); err != nil {
			t.Fatal(err)
		}
	}
	h.run(t, func(ctx env.Ctx) {
		spec := &store.ScanSpec{
			Schema:   schema,
			Snapshot: mvcc.NewSnapshot(10),
			Pred:     &store.Predicate{Col: 1, Op: store.CmpEQ, Val: relational.Str("odd")},
			Proj:     []int{0},
		}
		lo, hi := relational.RecordPrefix(schema.ID)
		pairs, err := h.client.ScanFiltered(ctx, lo, hi, spec, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(pairs) != 15 {
			t.Fatalf("matched %d, want 15", len(pairs))
		}
		proj := spec.ProjectedSchema()
		for _, p := range pairs {
			row, err := relational.DecodeRow(proj, p.Val)
			if err != nil {
				t.Fatal(err)
			}
			if len(row) != 1 || row[0].I%2 != 1 {
				t.Fatalf("bad projected row: %v", row)
			}
		}
		// Limit applies across partitions.
		pairs, err = h.client.ScanFiltered(ctx, lo, hi, spec, 4)
		if err != nil || len(pairs) != 4 {
			t.Fatalf("limited: %d %v", len(pairs), err)
		}
	})
}

func TestScanFilteredSurvivesFailover(t *testing.T) {
	h := newHarness(t, store.ClusterConfig{NumNodes: 3, ReplicationFactor: 2})
	defer h.close()
	schema := specSchema()
	schema.ID = 7
	for i := int64(0); i < 10; i++ {
		data, _ := relational.EncodeRow(schema, relational.Row{
			relational.I64(i), relational.Str("x"), relational.F64(0),
		})
		rec := mvcc.NewRecord(0, data)
		h.cluster.BulkLoad(relational.RecordKey(schema.ID, uint64(i+1)), rec.Encode())
	}
	h.run(t, func(ctx env.Ctx) {
		h.net.SetDown("sn0", true)
		ctx.Sleep(500 * time.Millisecond) // failover
		spec := &store.ScanSpec{Schema: schema, Snapshot: mvcc.NewSnapshot(10)}
		lo, hi := relational.RecordPrefix(schema.ID)
		pairs, err := h.client.ScanFiltered(ctx, lo, hi, spec, 0)
		if err != nil || len(pairs) != 10 {
			t.Fatalf("after failover: %d %v", len(pairs), err)
		}
	})
}
