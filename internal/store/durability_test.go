package store_test

import (
	"bytes"
	"fmt"
	"testing"

	"tell/internal/durable"
	"tell/internal/env"
	"tell/internal/store"
	"tell/internal/wire"
)

// dumpEqual compares two state dumps field by field (stamps included: both
// sides of these tests replay the same log, so stamps must agree too).
func dumpEqual(a, b []wire.Mutation) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !bytes.Equal(a[i].Key, b[i].Key) || !bytes.Equal(a[i].Val, b[i].Val) ||
			a[i].Stamp != b[i].Stamp || a[i].Deleted != b[i].Deleted ||
			a[i].Counter != b[i].Counter || a[i].CtrVal != b[i].CtrVal {
			return false
		}
	}
	return true
}

// TestDurableCrashRecoverRoundTrip drives acknowledged writes through the
// full client path into a WAL-backed node, crashes it (volatile state gone,
// disk kept), recovers from checkpoint + log, and requires the recovered
// memtable to be identical to the pre-crash one.
func TestDurableCrashRecoverRoundTrip(t *testing.T) {
	be := durable.NewMem()
	h := newHarness(t, store.ClusterConfig{
		NumNodes: 1,
		Durable:  &store.DurOptions{Backend: be, SegmentBytes: 512},
	})
	defer h.close()
	h.run(t, func(ctx env.Ctx) {
		sn := h.cluster.Node("sn0")
		for i := 0; i < 40; i++ {
			key := []byte(fmt.Sprintf("k%03d", i))
			if _, err := h.client.Put(ctx, key, []byte(fmt.Sprintf("v%d", i))); err != nil {
				t.Fatalf("put %d: %v", i, err)
			}
		}
		// A mid-stream fuzzy checkpoint plus more traffic: recovery must
		// stitch image + suffix.
		if err := sn.Checkpoint(ctx); err != nil {
			t.Fatalf("checkpoint: %v", err)
		}
		if _, err := h.client.CounterAdd(ctx, []byte("ctr"), 5); err != nil {
			t.Fatalf("counter: %v", err)
		}
		if err := h.client.Delete(ctx, []byte("k003"), 0); err != nil {
			t.Fatalf("delete: %v", err)
		}
		before := sn.StateDump()

		sn.CrashVolatile(false)
		if sn.Keys() != 0 {
			t.Fatal("crash left volatile state behind")
		}
		stats, err := sn.RecoverLocal(ctx)
		if err != nil {
			t.Fatalf("recover: %v", err)
		}
		if stats.Records == 0 {
			t.Fatal("recovery replayed nothing")
		}
		after := sn.StateDump()
		if !dumpEqual(before, after) {
			t.Fatalf("recovered state differs:\nbefore: %d cells\nafter:  %d cells", len(before), len(after))
		}

		// The recovered node serves again, and new stamps are strictly
		// larger than anything pre-crash.
		sn.Configure(h.cluster.Manager.Map())
		st, err := h.client.Put(ctx, []byte("post"), []byte("crash"))
		if err != nil {
			t.Fatalf("put after recovery: %v", err)
		}
		for i := range before {
			if before[i].Stamp >= st {
				t.Fatalf("stamp regression: recovered cell stamp %d >= new stamp %d", before[i].Stamp, st)
			}
		}
	})
}

// TestDurableCrashRefusesService pins the fail-stop contract: a crashed node
// answers every protocol family with Unavailable until recovered.
func TestDurableCrashRefusesService(t *testing.T) {
	be := durable.NewMem()
	h := newHarness(t, store.ClusterConfig{
		NumNodes: 1,
		Durable:  &store.DurOptions{Backend: be},
	})
	defer h.close()
	h.run(t, func(ctx env.Ctx) {
		// This test pins node-level fail-stop, not failover: keep the
		// failure detector from declaring the RF1 node dead (which would
		// leave the partition headless with nothing to promote).
		h.cluster.Manager.Stop()
		sn := h.cluster.Node("sn0")
		if _, err := h.client.Put(ctx, []byte("k"), []byte("v")); err != nil {
			t.Fatalf("put: %v", err)
		}
		sn.CrashVolatile(false)
		if _, _, err := h.client.Get(ctx, []byte("k")); err == nil {
			t.Fatal("crashed node served a read")
		}
		if _, err := sn.RecoverLocal(ctx); err != nil {
			t.Fatalf("recover: %v", err)
		}
		sn.Configure(h.cluster.Manager.Map())
		// Fresh client: the old one's circuit breaker opened on the dead
		// node and is still cooling down.
		val, _, err := h.cluster.NewClient(h.pn).Get(ctx, []byte("k"))
		if err != nil || !bytes.Equal(val, []byte("v")) {
			t.Fatalf("get after recovery: %q %v", val, err)
		}
	})
}

// TestDurableLoseDiskLosesData is the negative control: wiping the namespace
// at crash time must leave nothing to recover.
func TestDurableLoseDiskLosesData(t *testing.T) {
	be := durable.NewMem()
	h := newHarness(t, store.ClusterConfig{
		NumNodes: 1,
		Durable:  &store.DurOptions{Backend: be},
	})
	defer h.close()
	h.run(t, func(ctx env.Ctx) {
		sn := h.cluster.Node("sn0")
		if _, err := h.client.Put(ctx, []byte("k"), []byte("v")); err != nil {
			t.Fatalf("put: %v", err)
		}
		sn.CrashVolatile(true)
		stats, err := sn.RecoverLocal(ctx)
		if err != nil {
			t.Fatalf("recover: %v", err)
		}
		if stats.Records != 0 || len(sn.StateDump()) != 0 {
			t.Fatalf("data survived a lost disk: %d records, %d cells", stats.Records, len(sn.StateDump()))
		}
	})
}

// TestDurableGroupCommit checks that concurrent writers share WAL commits:
// with 32 parallel single-op batches, the log should see far fewer than 32
// backend round-trips.
func TestDurableGroupCommit(t *testing.T) {
	// A nonzero op latency makes commits slow enough that writers pile up
	// behind the flusher and batch.
	be := durable.NewBlob(durable.S3Profile())
	h := newHarness(t, store.ClusterConfig{
		NumNodes: 1,
		Durable:  &store.DurOptions{Backend: be},
	})
	defer h.close()
	h.run(t, func(ctx env.Ctx) {
		const writers = 32
		done := make([]env.Future, writers)
		for i := 0; i < writers; i++ {
			i := i
			done[i] = h.envr.NewFuture()
			ctx.Go("writer", func(wctx env.Ctx) {
				cl := h.cluster.NewClient(h.pn)
				_, err := cl.Put(wctx, []byte(fmt.Sprintf("k%02d", i)), []byte("v"))
				done[i].Set(err)
			})
		}
		for i := range done {
			if err, _ := done[i].Get(ctx).(error); err != nil {
				t.Fatalf("writer %d: %v", i, err)
			}
		}
		sn := h.cluster.Node("sn0")
		commits, records, _ := sn.DurStats()
		if records != writers {
			t.Fatalf("logged %d records, want %d", records, writers)
		}
		if commits >= writers {
			t.Fatalf("no group commit: %d commits for %d writers", commits, writers)
		}
	})
}

// TestDurableAutoCheckpoint checks the byte-triggered checkpoint fires and
// truncates the log.
func TestDurableAutoCheckpoint(t *testing.T) {
	be := durable.NewMem()
	h := newHarness(t, store.ClusterConfig{
		NumNodes: 1,
		Durable:  &store.DurOptions{Backend: be, SegmentBytes: 256, CheckpointBytes: 1024},
	})
	defer h.close()
	h.run(t, func(ctx env.Ctx) {
		val := bytes.Repeat([]byte("x"), 64)
		for i := 0; i < 64; i++ {
			if _, err := h.client.Put(ctx, []byte(fmt.Sprintf("k%03d", i)), val); err != nil {
				t.Fatalf("put: %v", err)
			}
		}
		sn := h.cluster.Node("sn0")
		_, _, ckpts := sn.DurStats()
		if ckpts == 0 {
			t.Fatal("auto checkpoint never fired")
		}
		// And recovery over image+suffix reproduces the live state.
		before := sn.StateDump()
		sn.CrashVolatile(false)
		if _, err := sn.RecoverLocal(ctx); err != nil {
			t.Fatalf("recover: %v", err)
		}
		if !dumpEqual(before, sn.StateDump()) {
			t.Fatal("recovered state differs after auto checkpoint")
		}
	})
}

// TestDurableReplicaLogs checks RF2: both master and replica log every
// mutation, so either copy alone can rebuild the partition.
func TestDurableReplicaLogs(t *testing.T) {
	be := durable.NewMem()
	h := newHarness(t, store.ClusterConfig{
		NumNodes: 2, ReplicationFactor: 2,
		Durable: &store.DurOptions{Backend: be},
	})
	defer h.close()
	h.run(t, func(ctx env.Ctx) {
		for i := 0; i < 10; i++ {
			if _, err := h.client.Put(ctx, []byte(fmt.Sprintf("k%02d", i)), []byte("v")); err != nil {
				t.Fatalf("put: %v", err)
			}
		}
		for _, addr := range []string{"sn0", "sn1"} {
			_, records, _ := h.cluster.Node(addr).DurStats()
			if records != 10 {
				t.Fatalf("%s logged %d records, want 10 (master+replica each log all)", addr, records)
			}
		}
	})
}
