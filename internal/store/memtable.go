// Package store implements the distributed in-memory record store that the
// processing layer runs against — the counterpart of RamCloud in the paper
// (§6.1). It provides exactly the storage contract §4 and §5 assume:
//
//   - consistent get/put on single records,
//   - LL/SC: every cell carries a stamp that changes on every write, and
//     conditional writes fail if the stamp moved (this is stronger than
//     compare-and-swap and immune to the ABA problem, §4.1),
//   - atomic counters (tid and rid allocation, §4.2/§5.1),
//   - ordered scans (transaction-log recovery, analytics),
//   - range partitioning of the key-hash space across storage nodes, with
//     synchronous replication and master fail-over (§4.4.2),
//   - batched requests (§5.1).
package store

import (
	"bytes"
	"math/rand"
)

// cell is one stored record on a node. Deleted keys keep a tombstone cell
// (dead=true) so that replication can resolve write/delete races by stamp.
type cell struct {
	val     []byte
	stamp   uint64
	counter int64
	isCtr   bool
	dead    bool
}

const maxLevel = 24

// memtable is the node-local ordered map: an in-memory skiplist keyed by
// []byte. It supports forward and reverse ordered scans (the transaction
// log is iterated backwards during recovery, §4.4.1). Callers synchronize
// externally.
type memtable struct {
	head  *mtNode
	tail  *mtNode // sentinel for reverse scans
	level int
	size  int
	rng   *rand.Rand
}

type mtNode struct {
	key  []byte
	cell cell
	// hits counts client accesses of this key on this node — node-local
	// telemetry (never replicated or compared) that weights data-aware
	// split points by load rather than key count.
	hits uint64
	next []*mtNode
	prev *mtNode // level-0 back pointer
}

func newMemtable(seed int64) *memtable {
	head := &mtNode{next: make([]*mtNode, maxLevel)}
	return &memtable{head: head, level: 1, rng: rand.New(rand.NewSource(seed))}
}

func (m *memtable) len() int { return m.size }

func (m *memtable) randomLevel() int {
	l := 1
	for l < maxLevel && m.rng.Intn(4) == 0 {
		l++
	}
	return l
}

// findPredecessors fills update with the rightmost node at each level whose
// key is < key, and returns the level-0 successor candidate.
func (m *memtable) findPredecessors(key []byte, update *[maxLevel]*mtNode) *mtNode {
	x := m.head
	for i := m.level - 1; i >= 0; i-- {
		for x.next[i] != nil && bytes.Compare(x.next[i].key, key) < 0 {
			x = x.next[i]
		}
		update[i] = x
	}
	return x.next[0]
}

// get returns the cell stored under key.
func (m *memtable) get(key []byte) (cell, bool) {
	x := m.head
	for i := m.level - 1; i >= 0; i-- {
		for x.next[i] != nil && bytes.Compare(x.next[i].key, key) < 0 {
			x = x.next[i]
		}
	}
	n := x.next[0]
	if n != nil && bytes.Equal(n.key, key) {
		return n.cell, true
	}
	return cell{}, false
}

// set stores c under key, inserting or overwriting.
func (m *memtable) set(key []byte, c cell) {
	var update [maxLevel]*mtNode
	n := m.findPredecessors(key, &update)
	if n != nil && bytes.Equal(n.key, key) {
		n.cell = c
		return
	}
	lvl := m.randomLevel()
	if lvl > m.level {
		for i := m.level; i < lvl; i++ {
			update[i] = m.head
		}
		m.level = lvl
	}
	nn := &mtNode{key: append([]byte(nil), key...), cell: c, next: make([]*mtNode, lvl)}
	for i := 0; i < lvl; i++ {
		nn.next[i] = update[i].next[i]
		update[i].next[i] = nn
	}
	nn.prev = update[0]
	if nn.next[0] != nil {
		nn.next[0].prev = nn
	} else {
		m.tail = nn
	}
	m.size++
}

// touch bumps key's access counter, if the key is present.
func (m *memtable) touch(key []byte) {
	x := m.head
	for i := m.level - 1; i >= 0; i-- {
		for x.next[i] != nil && bytes.Compare(x.next[i].key, key) < 0 {
			x = x.next[i]
		}
	}
	if n := x.next[0]; n != nil && bytes.Equal(n.key, key) {
		n.hits++
	}
}

// scanHits is a forward scan that also yields each key's access counter.
func (m *memtable) scanHits(fn func(key []byte, c cell, hits uint64) bool) {
	for n := m.head.next[0]; n != nil; n = n.next[0] {
		if !fn(n.key, n.cell, n.hits) {
			return
		}
	}
}

// delete removes key, reporting whether it was present.
func (m *memtable) delete(key []byte) bool {
	var update [maxLevel]*mtNode
	n := m.findPredecessors(key, &update)
	if n == nil || !bytes.Equal(n.key, key) {
		return false
	}
	for i := 0; i < m.level; i++ {
		if update[i].next[i] == n {
			update[i].next[i] = n.next[i]
		}
	}
	if n.next[0] != nil {
		n.next[0].prev = update[0]
	} else {
		if m.tail == n {
			if update[0] == m.head {
				m.tail = nil
			} else {
				m.tail = update[0]
			}
		}
	}
	for m.level > 1 && m.head.next[m.level-1] == nil {
		m.level--
	}
	m.size--
	return true
}

// scan calls fn for keys in [lo, hi) in ascending order (or descending when
// reverse is set, starting just below hi). Scanning stops when fn returns
// false. A nil hi means "no upper bound"; a nil/empty lo means "no lower
// bound".
func (m *memtable) scan(lo, hi []byte, reverse bool, fn func(key []byte, c cell) bool) {
	if !reverse {
		x := m.head
		for i := m.level - 1; i >= 0; i-- {
			for x.next[i] != nil && (len(lo) > 0 && bytes.Compare(x.next[i].key, lo) < 0) {
				x = x.next[i]
			}
		}
		for n := x.next[0]; n != nil; n = n.next[0] {
			if hi != nil && bytes.Compare(n.key, hi) >= 0 {
				return
			}
			if !fn(n.key, n.cell) {
				return
			}
		}
		return
	}
	// Reverse: find the last node with key < hi (or the tail when hi nil).
	var n *mtNode
	if hi == nil {
		n = m.tail
	} else {
		x := m.head
		for i := m.level - 1; i >= 0; i-- {
			for x.next[i] != nil && bytes.Compare(x.next[i].key, hi) < 0 {
				x = x.next[i]
			}
		}
		if x == m.head {
			return
		}
		n = x
	}
	for n != nil && n != m.head {
		if len(lo) > 0 && bytes.Compare(n.key, lo) < 0 {
			return
		}
		if !fn(n.key, n.cell) {
			return
		}
		n = n.prev
	}
}
