package store

import (
	"time"

	"tell/internal/det"
	"tell/internal/durable"
	"tell/internal/env"
	"tell/internal/resil"
	"tell/internal/sanitize"
	"tell/internal/transport"
	"tell/internal/wire"
)

// Manager is the storage layer's management node (§4.4.2): it detects
// failures with a timeout-based (eventually perfect) failure detector,
// manages the partition map, fails partitions over to replicas, restores
// the replication level from spare nodes, and serves partition-map lookups
// to clients (the "lookup service" of §2.1).
type Manager struct {
	addr string
	envr env.Full
	node env.Node
	tr   transport.Transport

	// PingInterval and FailAfter tune the failure detector: a node is
	// declared dead after FailAfter consecutive missed pings.
	PingInterval time.Duration
	FailAfter    int
	// ReplicationFactor is the target number of copies (master included).
	ReplicationFactor int

	// retr brackets every outbound RPC in a retry policy: pings pin to the
	// single-attempt ClassPing so the FailAfter calibration holds, and
	// failover pushes use ClassMeta so a transient drop does not strand a
	// survivor on a stale partition map.
	retr *resil.Retrier

	mu      sanitize.Mutex
	pmap    *PartitionMap
	spares  []string
	dead    map[string]bool
	misses  map[string]int
	conns   map[string]transport.Conn
	stopped bool

	// OnFailover, if set, is called (without the lock) after a node has
	// been failed over; tests use it to observe recovery.
	OnFailover func(addr string)

	// Recoverer, if set, rebuilds partitions that lost every copy from the
	// dead node's durable log (scatter-gather across survivors, see
	// internal/recovery). Without it such partitions go headless.
	Recoverer SNRecoverer

	// Fence, if set, samples the commit managers' snapshot boundary (the
	// lowest active version) at migration cutover; the token rides the
	// cutover journal record. Wired to commitmgr by the cluster assembly.
	Fence func(ctx env.Ctx) uint64

	// OnCutoverJournaled, if set, is called after a migration's cutover
	// record is durable but before the new map is installed or published.
	// Returning false abandons the coordinator mid-flight — crash-recovery
	// tests use it to emulate a manager death at the commit point.
	OnCutoverJournaled func(pid uint64) bool

	// journal is the durable migration journal (see placement.go). Guarded
	// by mu; nil means migrations are not crash-recoverable on the manager.
	journal durable.Backend
	// known lists storage nodes registered via AddNode that may not appear
	// in the partition map yet (fresh, empty scale-out targets).
	known map[string]bool
	// migs is the manager's authoritative migration telemetry, by range id.
	migs map[uint64]*wire.MigrationStat
	// inflight marks ranges with an active migration.
	inflight map[uint64]bool
	// heatPrev holds the cumulative per-(node, range) op totals seen at the
	// controller's previous load pass: planning ranks ranges by the delta
	// since then, so heat follows a range to its new owner immediately
	// instead of lingering at the old one for a retention horizon.
	heatPrev map[string]map[uint64]int64
	// planPass counts controller planning passes; cooled records the pass
	// at which each range last migrated (anti-ping-pong cooldown).
	planPass int
	cooled   map[uint64]int
	// hotShare is the hottest node's fraction of total ops at the latest
	// planning pass — the convergence signal Cluster.Rebalance watches to
	// stop once actions no longer improve the balance (some hotspots, like
	// an append-frontier log range, are irreducible by placement).
	hotShare float64
	// schedule is the placement controller's decision log (virtual
	// timestamps only, so same-seed runs produce identical schedules).
	schedule []string

	// probing marks dead nodes with a rejoin probe in flight, so the
	// monitor never stacks probes on one address.
	probing map[string]bool

	failovers  int
	recoveries int
	rejoins    int
}

// SNRecoverer reconstructs a dead storage node's partitions from its durable
// objects. It returns the surviving node that now masters each recovered
// partition. Called without the manager lock; survivors excludes the dead
// node.
type SNRecoverer interface {
	RecoverSN(ctx env.Ctx, dead string, pids []uint64, survivors []string) (map[uint64]string, error)
}

// NewManager creates a management node serving addr.
func NewManager(addr string, envr env.Full, node env.Node, tr transport.Transport) *Manager {
	m := &Manager{
		addr:              addr,
		envr:              envr,
		node:              node,
		tr:                tr,
		retr:              resil.NewRetrier(),
		PingInterval:      5 * time.Millisecond,
		FailAfter:         3,
		ReplicationFactor: 1,
		pmap:              &PartitionMap{Epoch: 1},
		dead:              make(map[string]bool),
		misses:            make(map[string]int),
		probing:           make(map[string]bool),
		conns:             make(map[string]transport.Conn),
	}
	m.mu.SetName("store.Manager.mu")
	return m
}

// Addr returns the manager's serving address.
func (m *Manager) Addr() string { return m.addr }

// Node returns the manager's execution node. Drivers (tests, the embedded
// API) spawn migration-control activities on it so control RPCs originate
// from the management node in both environments.
func (m *Manager) Node() env.Node { return m.node }

// Failovers returns how many node fail-overs the manager has executed.
func (m *Manager) Failovers() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.failovers
}

// Recoveries returns how many log-based partition recoveries succeeded.
func (m *Manager) Recoveries() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.recoveries
}

// Map returns a copy of the current partition map.
func (m *Manager) Map() *PartitionMap {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.pmap.Clone()
}

// SetMap installs the initial partition map (cluster bootstrap).
func (m *Manager) SetMap(pm *PartitionMap) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.pmap = pm.Clone()
}

// AddSpare registers a standby storage node used to restore the replication
// factor after failures.
func (m *Manager) AddSpare(addr string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.spares = append(m.spares, addr)
}

// Start registers the lookup-service handler and launches the failure
// detector.
func (m *Manager) Start() error {
	if err := m.tr.Listen(m.addr, m.node, m.handle); err != nil {
		return err
	}
	m.node.Go("failure-detector", m.monitor)
	return nil
}

// Stop halts the failure detector loop.
func (m *Manager) Stop() {
	m.mu.Lock()
	m.stopped = true
	m.mu.Unlock()
}

func (m *Manager) handle(ctx env.Ctx, raw []byte) []byte {
	if wire.PeekKind(raw) == wire.KindPing {
		return []byte{byte(wire.KindPong)}
	}
	if wire.PeekKind(raw) == wire.KindStatsExtReq {
		return m.handleStatsExt(ctx)
	}
	r := wire.NewReader(raw)
	if wire.Kind(r.Byte()) != wire.KindMetaReq {
		return encodeMetaAck(wire.StatusError)
	}
	switch metaSub(r.Byte()) {
	case metaGetMap:
		m.mu.Lock()
		pm := m.pmap.Clone()
		m.mu.Unlock()
		return encodeMetaMap(pm)
	}
	return encodeMetaAck(wire.StatusError)
}

// handleStatsExt answers the extended stats request with a cluster-wide
// aggregation: the manager fans the request out to every live storage node
// and merges the answers, so one query paints the whole heatmap. A node
// that cannot be reached is simply absent from the merged view — telemetry
// must not block on a dying SN.
func (m *Manager) handleStatsExt(ctx env.Ctx) []byte {
	return m.collectExt(ctx).Encode()
}

// collectExt fans the extended-stats request out to every live node, merges
// the answers, and overlays the manager's own migration telemetry. Also the
// placement controller's load-view source.
func (m *Manager) collectExt(ctx env.Ctx) *wire.StatsExt {
	m.mu.Lock()
	targets := m.liveNodesLocked()
	m.mu.Unlock()

	agg := &wire.StatsExt{Node: m.addr}
	req := wire.EncodeStatsExtReq()
	for _, addr := range targets {
		conn, err := m.conn(addr)
		if err != nil {
			continue
		}
		var raw []byte
		err = m.retr.Do(ctx, resil.ClassMeta, addr, func(int) error {
			var rtErr error
			raw, rtErr = conn.RoundTrip(ctx, req)
			return rtErr
		})
		if err != nil {
			continue
		}
		ext, err := wire.DecodeStatsExt(raw)
		if err != nil {
			continue
		}
		agg.Merge(ext)
	}
	m.fillMigStats(agg)
	agg.SortRows()
	return agg
}

// monitor is the failure-detector loop.
func (m *Manager) monitor(ctx env.Ctx) {
	for {
		m.mu.Lock()
		if m.stopped {
			m.mu.Unlock()
			return
		}
		targets := m.liveNodesLocked()
		m.mu.Unlock()

		for _, addr := range targets {
			alive := m.ping(ctx, addr)
			m.mu.Lock()
			if alive {
				m.misses[addr] = 0
				m.mu.Unlock()
				continue
			}
			m.misses[addr]++
			failed := m.misses[addr] >= m.FailAfter && !m.dead[addr]
			m.mu.Unlock()
			if failed {
				m.failover(ctx, addr)
			}
		}
		m.probeDead()
		ctx.Sleep(m.PingInterval)
	}
}

// probeDead launches one async rejoin probe per dead node without one in
// flight. A node that answers again — a healed partition or a restarted
// process that finished local recovery — rejoins as an empty placement
// target: it is pushed the current map first, so a node that kept stale
// state across a network partition demotes itself before it can serve a
// single stale read, and the placement controller may then move ranges back
// onto it.
func (m *Manager) probeDead() {
	m.mu.Lock()
	var probes []string
	if !m.stopped {
		for _, addr := range det.Keys(m.dead) {
			if m.dead[addr] && !m.probing[addr] {
				m.probing[addr] = true
				probes = append(probes, addr)
			}
		}
	}
	m.mu.Unlock()
	for _, addr := range probes {
		addr := addr
		m.node.Go("rejoin-probe", func(ctx env.Ctx) {
			alive := m.ping(ctx, addr)
			m.mu.Lock()
			delete(m.probing, addr)
			if !alive || !m.dead[addr] || m.stopped {
				m.mu.Unlock()
				return
			}
			delete(m.dead, addr)
			m.misses[addr] = 0
			if m.known == nil {
				m.known = make(map[string]bool)
			}
			m.known[addr] = true
			m.rejoins++
			pm := m.pmap.Clone()
			m.mu.Unlock()
			cfg := encodeMetaConfigure(pm)
			if conn, err := m.conn(addr); err == nil {
				//lint:allow errdiscard best-effort: a rejoined node that misses the push answers from an empty or older map and is demoted by the next configure
				m.retr.Do(ctx, resil.ClassMeta, addr, func(int) error {
					_, err := conn.RoundTrip(ctx, cfg)
					return err
				})
			}
		})
	}
}

// Rejoins returns how many dead nodes have been reintegrated after healing.
func (m *Manager) Rejoins() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.rejoins
}

// liveNodesLocked lists distinct storage addresses that are not known dead:
// every address in the map plus nodes registered via AddNode (which may not
// master anything yet). Caller holds m.mu.
func (m *Manager) liveNodesLocked() []string {
	seen := make(map[string]bool)
	var out []string
	add := func(a string) {
		if a != "" && !seen[a] && !m.dead[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	for i := range m.pmap.Partitions {
		add(m.pmap.Partitions[i].Master)
		for _, r := range m.pmap.Partitions[i].Replicas {
			add(r)
		}
	}
	for _, a := range det.Keys(m.known) {
		add(a)
	}
	return out
}

func (m *Manager) ping(ctx env.Ctx, addr string) bool {
	conn, err := m.conn(addr)
	if err != nil {
		return false
	}
	// ClassPing allows exactly one attempt: one probe, one verdict.
	alive := false
	_ = m.retr.Do(ctx, resil.ClassPing, addr, func(int) error {
		resp, err := conn.RoundTrip(ctx, []byte{byte(wire.KindPing)})
		if err != nil {
			return err
		}
		alive = wire.PeekKind(resp) == wire.KindPong
		return nil
	})
	return alive
}

func (m *Manager) conn(addr string) (transport.Conn, error) {
	m.mu.Lock()
	if c, ok := m.conns[addr]; ok {
		m.mu.Unlock()
		return c, nil
	}
	m.mu.Unlock()
	// Dial outside the lock: the failure detector must keep probing other
	// nodes while one dial hangs.
	c, err := m.tr.Dial(m.node, addr)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if exist, ok := m.conns[addr]; ok {
		// Lost a dial race; keep the first connection.
		//lint:allow errdiscard closing a redundant just-dialed connection nothing was sent on
		c.Close()
		return exist, nil
	}
	m.conns[addr] = c
	return c, nil
}

// failover removes deadAddr from the map, promoting replicas to master
// where needed, pushes the new configuration, and restores the replication
// factor from spares.
func (m *Manager) failover(ctx env.Ctx, deadAddr string) {
	type transfer struct {
		master string
		pid    uint64
		target string
	}
	var transfers []transfer

	m.mu.Lock()
	if m.dead[deadAddr] {
		m.mu.Unlock()
		return
	}
	m.dead[deadAddr] = true
	m.failovers++
	pm := m.pmap
	var headless []uint64
	for i := range pm.Partitions {
		p := &pm.Partitions[i]
		// Drop the dead node from the replica list.
		reps := p.Replicas[:0]
		for _, r := range p.Replicas {
			if r != deadAddr {
				reps = append(reps, r)
			}
		}
		p.Replicas = reps
		if p.Master == deadAddr {
			if len(p.Replicas) == 0 {
				// No replica to promote. With a Recoverer the partition
				// is rebuilt below from the dead node's durable log;
				// without one this is data loss and the partition stays
				// headless (clients see Unavailable).
				p.Master = ""
				if m.Recoverer != nil {
					headless = append(headless, p.ID)
				}
				continue
			}
			p.Master = p.Replicas[0]
			p.Replicas = p.Replicas[1:]
		}
		// Restore the replication factor from spares.
		for 1+len(p.Replicas) < m.ReplicationFactor && len(m.spares) > 0 {
			spare := m.spares[0]
			m.spares = m.spares[1:]
			p.Replicas = append(p.Replicas, spare)
			transfers = append(transfers, transfer{master: p.Master, pid: p.ID, target: spare})
		}
	}
	survivors := m.liveNodesLocked()
	m.mu.Unlock()

	// Scatter-gather recovery (RamCloud-style): partition the dead node's
	// WAL segments and checkpoint chunks across the survivors, replay in
	// parallel, and install the recovered masters before publishing the new
	// map. Blocking here is deliberate — the partitions are unavailable
	// either way until their data is reconstructed.
	if len(headless) > 0 {
		assigned, err := m.Recoverer.RecoverSN(ctx, deadAddr, headless, survivors)
		if err == nil {
			m.mu.Lock()
			for i := range pm.Partitions {
				p := &pm.Partitions[i]
				if a, ok := assigned[p.ID]; ok && p.Master == "" {
					p.Master = a
					m.recoveries++
				}
			}
			m.mu.Unlock()
		}
	}

	m.mu.Lock()
	pm.Epoch++
	newMap := pm.Clone()
	targets := m.liveNodesLocked()
	m.mu.Unlock()

	// Push the new configuration to every surviving node. Best-effort with
	// ClassMeta retries: a node the push cannot reach is on its way to being
	// declared dead itself, and clients refetch the map on Unavailable.
	cfg := encodeMetaConfigure(newMap)
	for _, addr := range targets {
		if conn, err := m.conn(addr); err == nil {
			_ = m.retr.Do(ctx, resil.ClassMeta, addr, func(int) error {
				_, err := conn.RoundTrip(ctx, cfg)
				return err
			})
		}
	}
	// Backfill new replicas from their masters. Apply-if-newer on the
	// replica makes this safe concurrently with live writes.
	for _, tr := range transfers {
		if conn, err := m.conn(tr.master); err == nil {
			req := encodeMetaTransfer(tr.pid, tr.target)
			_ = m.retr.Do(ctx, resil.ClassMeta, tr.master, func(int) error {
				_, err := conn.RoundTrip(ctx, req)
				return err
			})
		}
	}
	if m.OnFailover != nil {
		m.OnFailover(deadAddr)
	}
}
