package transport

import (
	"fmt"
	"time"

	"tell/internal/env"
	"tell/internal/sim"
	"tell/internal/trace"
)

// Fault is what a fault injector does to one message leg (request or
// response). The zero value is a clean delivery.
type Fault struct {
	// Drop loses the message: a dropped request never reaches the
	// handler, a dropped response leaves the client to time out.
	Drop bool
	// Delay is added on top of the link's modelled transfer time.
	Delay time.Duration
	// Duplicate delivers the message twice. A duplicated request runs
	// the handler twice (the first response wins); a duplicated response
	// arrives twice at the client (the second copy is discarded). The
	// duplicate leg is passed through the fault fn again — so a duplicate
	// can itself be dropped or delayed — with its Duplicate verdict
	// ignored, bounding each leg at one extra copy.
	Duplicate bool
}

// FaultFn inspects one message leg between two endpoints and returns the
// fault to apply. payload is the encoded message, so injectors can target
// specific protocols via wire.PeekKind. It runs on the kernel goroutine and
// must not block.
type FaultFn func(src, dst string, payload []byte) Fault

// SimNet is the simulated cluster network. Message delivery advances virtual
// time by the network class's latency plus size/bandwidth; handlers execute
// as simulated activities on the destination node, so their ctx.Work calls
// queue on that node's modelled CPU cores.
type SimNet struct {
	k       *sim.Kernel
	class   NetworkClass
	timeout time.Duration
	eps     map[string]*simEndpoint
	down    map[string]bool
	// DropFn, if set, drops messages between the given addresses,
	// modelling a network partition.
	DropFn func(src, dst string) bool
	// fault, if set, is consulted per message leg (internal/chaos
	// installs it via SetFaultFn).
	fault FaultFn

	stats Stats
}

type simEndpoint struct {
	addr string
	node env.Node
	h    Handler
}

// NewSimNet creates a network on kernel k with the given link parameters.
func NewSimNet(k *sim.Kernel, class NetworkClass) *SimNet {
	return &SimNet{
		k:       k,
		class:   class,
		timeout: 50 * time.Millisecond,
		eps:     make(map[string]*simEndpoint),
		down:    make(map[string]bool),
	}
}

// SetTimeout changes how long requests to dead or partitioned endpoints
// wait before failing (default 50ms of virtual time).
func (n *SimNet) SetTimeout(d time.Duration) { n.timeout = d }

// Class returns the configured network class.
func (n *SimNet) Class() NetworkClass { return n.class }

// Stats returns cumulative traffic counters.
func (n *SimNet) Stats() Stats { return n.stats }

// SetDown marks addr as failed (true) or recovered (false). Requests to a
// down endpoint time out, as do responses from handlers that were running
// when the endpoint went down.
func (n *SimNet) SetDown(addr string, down bool) { n.down[addr] = down }

// SetFaultFn installs (or, with nil, removes) a per-message fault injector.
func (n *SimNet) SetFaultFn(f FaultFn) { n.fault = f }

func (n *SimNet) faultFor(src, dst string, payload []byte) Fault {
	if n.fault == nil {
		return Fault{}
	}
	return n.fault(src, dst, payload)
}

// Listen registers h as the server for addr on the given node.
func (n *SimNet) Listen(addr string, node env.Node, h Handler) error {
	if _, ok := n.eps[addr]; ok {
		return fmt.Errorf("simnet: address %q already in use", addr)
	}
	n.eps[addr] = &simEndpoint{addr: addr, node: node, h: h}
	return nil
}

// Dial opens a connection from node to addr. The endpoint need not exist
// yet; resolution happens per request.
func (n *SimNet) Dial(node env.Node, addr string) (Conn, error) {
	return &simConn{net: n, src: node, dst: addr}, nil
}

type simConn struct {
	net    *SimNet
	src    env.Node
	dst    string
	closed bool
}

func (c *simConn) Close() error {
	c.closed = true
	return nil
}

func (c *simConn) reachable() bool {
	n := c.net
	if n.down[c.dst] || n.down[c.src.Name()] {
		return false
	}
	if n.DropFn != nil && n.DropFn(c.src.Name(), c.dst) {
		return false
	}
	_, ok := n.eps[c.dst]
	return ok
}

// TransferTime reports the modelled wire time for a payload of b bytes on
// this connection's link (the transport.TransferTimer interface).
func (c *simConn) TransferTime(b int) time.Duration { return c.net.class.TransferTime(b) }

// simReply carries a response and its trace flow id back to the client.
type simReply struct {
	data []byte
	flow trace.SpanID
}

// RoundTrip sends req to the destination endpoint and blocks the calling
// activity until the response has travelled back.
func (c *simConn) RoundTrip(ctx env.Ctx, req []byte) ([]byte, error) {
	if c.closed {
		return nil, ErrClosed
	}
	n := c.net
	n.stats.Requests++
	n.stats.BytesSent += uint64(len(req))

	sc := ctx.Trace()
	var t0 time.Duration
	if sc.Agg != nil {
		t0 = ctx.Now()
	}

	if !c.reachable() {
		ctx.Sleep(n.timeout)
		sc.Agg.Add(trace.CompNetwork, n.timeout)
		return nil, ErrTimeout
	}

	flow := sc.R.MsgSend(sc.Span, c.src.Name(), c.dst, int64(len(req)))
	fut := sim.NewFuture(n.k)
	// Request travels to the server.
	deliver := func(extra time.Duration) {
		n.k.After(n.class.TransferTime(len(req))+extra, func() {
			ep, ok := n.eps[c.dst]
			if !ok || n.down[c.dst] {
				return // lost; client times out
			}
			// The handler runs as an activity on the serving node.
			ep.node.Go("handler", func(hctx env.Ctx) {
				hsc := hctx.Trace()
				var hstart time.Duration
				var hspan trace.SpanID
				if hsc.R.Enabled() {
					hsc.R.MsgRecv(flow, c.dst, int64(len(req)))
					hstart = hctx.Now()
					hspan = hsc.R.NewID()
					hsc.Span = hspan // handlers parent their spans here
				}
				resp := ep.h(hctx, req)
				if n.down[c.dst] || n.down[c.src.Name()] {
					return // server or client died meanwhile
				}
				rf := n.faultFor(c.dst, c.src.Name(), resp)
				if rf.Drop {
					n.stats.Dropped++
					return // lost response; client times out
				}
				var rflow trace.SpanID
				if hsc.R.Enabled() {
					hsc.R.Span(hspan, flow, c.dst, "handler", hstart,
						int64(len(req)), int64(len(resp)))
					rflow = hsc.R.MsgSend(hspan, c.dst, c.src.Name(), int64(len(resp)))
				}
				// Response travels back to the client. With duplicated
				// responses the first arrival wins; later copies are
				// discarded (the reply future is write-once).
				respond := func(extra time.Duration) {
					n.k.After(n.class.TransferTime(len(resp))+extra, func() {
						if fut.IsSet() {
							return
						}
						n.stats.BytesRecv += uint64(len(resp))
						fut.Set(simReply{data: resp, flow: rflow})
					})
				}
				respond(rf.Delay)
				if rf.Duplicate {
					// The duplicate leg passes through the fault injector
					// again so dup+drop and dup+delay compose; only its
					// Duplicate verdict is ignored (one copy per leg, no
					// duplication cascades). Seed-stable: the extra draw
					// happens exactly when a duplication fires.
					n.stats.Duplicated++
					df := n.faultFor(c.dst, c.src.Name(), resp)
					if df.Drop {
						n.stats.Dropped++
					} else {
						respond(df.Delay)
					}
				}
			})
		})
	}
	qf := n.faultFor(c.src.Name(), c.dst, req)
	if qf.Drop {
		n.stats.Dropped++
		ctx.Sleep(n.timeout)
		sc.Agg.Add(trace.CompNetwork, n.timeout)
		return nil, ErrTimeout
	}
	deliver(qf.Delay)
	if qf.Duplicate {
		// As on the response leg: the duplicate request is itself subject
		// to drop/delay faults (fresh draw), but never duplicates again.
		n.stats.Duplicated++
		df := n.faultFor(c.src.Name(), c.dst, req)
		if df.Drop {
			n.stats.Dropped++
		} else {
			deliver(df.Delay)
		}
	}

	v, ok := fut.GetTimeout(simProc(ctx), n.timeout)
	if !ok {
		sc.Agg.Add(trace.CompNetwork, ctx.Now()-t0)
		return nil, ErrTimeout
	}
	rep := v.(simReply)
	sc.R.MsgRecv(rep.flow, c.src.Name(), int64(len(rep.data)))
	if sc.R.Enabled() {
		sc.R.CounterAdd(c.src.Name(), "net/msgs", 1)
		sc.R.CounterAdd(c.src.Name(), "net/bytes", int64(len(req)+len(rep.data)))
	}
	if sc.Agg != nil {
		// Split the round trip into wire time and remote service (handler
		// execution + remote queueing), clamped to the measured total.
		total := ctx.Now() - t0
		net := n.class.TransferTime(len(req)) + n.class.TransferTime(len(rep.data))
		if net > total {
			net = total
		}
		sc.Agg.Add(trace.CompNetwork, net)
		sc.Agg.Add(trace.CompRemote, total-net)
	}
	return rep.data, nil
}

// simProc extracts the simulation process behind ctx; SimNet only works
// with simulated contexts.
func simProc(ctx env.Ctx) *sim.Proc {
	k := env.Kernel(ctx)
	if k == nil {
		panic("transport: SimNet used with a non-simulated context")
	}
	return env.Proc(ctx)
}
