package transport_test

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"tell/internal/env"
	"tell/internal/sim"
	"tell/internal/transport"
)

// echoUpper is a trivial handler that upper-cases ASCII.
func echoUpper(ctx env.Ctx, req []byte) []byte {
	out := make([]byte, len(req))
	for i, b := range req {
		if 'a' <= b && b <= 'z' {
			b -= 32
		}
		out[i] = b
	}
	return out
}

func TestSimNetRoundTrip(t *testing.T) {
	k := sim.NewKernel(1)
	e := env.NewSim(k)
	net := transport.NewSimNet(k, transport.InfiniBand())
	server := e.NewNode("sn1", 2)
	client := e.NewNode("pn1", 2)
	if err := net.Listen("sn1", server, echoUpper); err != nil {
		t.Fatal(err)
	}
	var got []byte
	client.Go("c", func(ctx env.Ctx) {
		conn, err := net.Dial(client, "sn1")
		if err != nil {
			t.Error(err)
			return
		}
		got, err = conn.RoundTrip(ctx, []byte("hello"))
		if err != nil {
			t.Error(err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if string(got) != "HELLO" {
		t.Fatalf("got %q", got)
	}
	// Two one-way transfers of 5 bytes at InfiniBand latency.
	min := 2 * transport.InfiniBand().Latency
	if k.Now().Duration() < min {
		t.Fatalf("elapsed %v < minimum %v", k.Now().Duration(), min)
	}
	k.Shutdown()
}

func TestSimNetLatencyModel(t *testing.T) {
	// Ethernet round trips must be slower than InfiniBand ones.
	measure := func(class transport.NetworkClass) time.Duration {
		k := sim.NewKernel(1)
		e := env.NewSim(k)
		net := transport.NewSimNet(k, class)
		server := e.NewNode("s", 1)
		client := e.NewNode("c", 1)
		net.Listen("s", server, echoUpper)
		var elapsed time.Duration
		client.Go("c", func(ctx env.Ctx) {
			conn, _ := net.Dial(client, "s")
			for i := 0; i < 10; i++ {
				conn.RoundTrip(ctx, []byte("x"))
			}
			elapsed = ctx.Now()
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		k.Shutdown()
		return elapsed
	}
	ib := measure(transport.InfiniBand())
	eth := measure(transport.Ethernet10G())
	if eth < 5*ib {
		t.Fatalf("ethernet (%v) should be much slower than infiniband (%v)", eth, ib)
	}
}

func TestSimNetHandlerChargesServerCPU(t *testing.T) {
	k := sim.NewKernel(1)
	e := env.NewSim(k)
	net := transport.NewSimNet(k, transport.InfiniBand())
	server := e.NewNode("s", 1)
	client := e.NewNode("c", 4)
	busy := func(ctx env.Ctx, req []byte) []byte {
		ctx.Work(time.Millisecond)
		return req
	}
	net.Listen("s", server, busy)
	// 4 concurrent clients, 1 server core: requests serialize on the
	// server CPU, so total time is at least 4ms.
	for i := 0; i < 4; i++ {
		client.Go("c", func(ctx env.Ctx) {
			conn, _ := net.Dial(client, "s")
			conn.RoundTrip(ctx, []byte("x"))
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if k.Now().Duration() < 4*time.Millisecond {
		t.Fatalf("elapsed %v, want >= 4ms (CPU-serialized)", k.Now().Duration())
	}
	k.Shutdown()
}

func TestSimNetDownEndpointTimesOut(t *testing.T) {
	k := sim.NewKernel(1)
	e := env.NewSim(k)
	net := transport.NewSimNet(k, transport.InfiniBand())
	net.SetTimeout(5 * time.Millisecond)
	server := e.NewNode("s", 1)
	client := e.NewNode("c", 1)
	net.Listen("s", server, echoUpper)
	net.SetDown("s", true)
	var err error
	client.Go("c", func(ctx env.Ctx) {
		conn, _ := net.Dial(client, "s")
		_, err = conn.RoundTrip(ctx, []byte("x"))
	})
	if e := k.Run(); e != nil {
		t.Fatal(e)
	}
	if err != transport.ErrTimeout {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if k.Now().Duration() < 5*time.Millisecond {
		t.Fatal("timeout should consume virtual time")
	}
	k.Shutdown()
}

func TestSimNetRecoveryAfterDown(t *testing.T) {
	k := sim.NewKernel(1)
	e := env.NewSim(k)
	net := transport.NewSimNet(k, transport.InfiniBand())
	net.SetTimeout(time.Millisecond)
	server := e.NewNode("s", 1)
	client := e.NewNode("c", 1)
	net.Listen("s", server, echoUpper)
	net.SetDown("s", true)
	var first, second error
	client.Go("c", func(ctx env.Ctx) {
		conn, _ := net.Dial(client, "s")
		_, first = conn.RoundTrip(ctx, []byte("x"))
		net.SetDown("s", false)
		_, second = conn.RoundTrip(ctx, []byte("x"))
	})
	if e := k.Run(); e != nil {
		t.Fatal(e)
	}
	if first == nil || second != nil {
		t.Fatalf("first=%v second=%v", first, second)
	}
	k.Shutdown()
}

func TestSimNetStats(t *testing.T) {
	k := sim.NewKernel(1)
	e := env.NewSim(k)
	net := transport.NewSimNet(k, transport.InfiniBand())
	server := e.NewNode("s", 1)
	client := e.NewNode("c", 1)
	net.Listen("s", server, echoUpper)
	client.Go("c", func(ctx env.Ctx) {
		conn, _ := net.Dial(client, "s")
		conn.RoundTrip(ctx, []byte("abcde"))
		conn.RoundTrip(ctx, []byte("xyz"))
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	st := net.Stats()
	if st.Requests != 2 || st.BytesSent != 8 || st.BytesRecv != 8 {
		t.Fatalf("stats = %+v", st)
	}
	k.Shutdown()
}

func TestLocalNetRoundTrip(t *testing.T) {
	e := env.NewReal(1)
	net := transport.NewLocalNet()
	server := e.NewNode("s", 1)
	client := e.NewNode("c", 1)
	if err := net.Listen("s", server, echoUpper); err != nil {
		t.Fatal(err)
	}
	res := make(chan []byte, 1)
	client.Go("c", func(ctx env.Ctx) {
		conn, _ := net.Dial(client, "s")
		got, err := conn.RoundTrip(ctx, []byte("tell"))
		if err != nil {
			t.Error(err)
		}
		res <- got
	})
	if got := <-res; string(got) != "TELL" {
		t.Fatalf("got %q", got)
	}
}

func TestLocalNetDown(t *testing.T) {
	e := env.NewReal(1)
	net := transport.NewLocalNet()
	server := e.NewNode("s", 1)
	client := e.NewNode("c", 1)
	net.Listen("s", server, echoUpper)
	net.SetDown("s", true)
	res := make(chan error, 1)
	client.Go("c", func(ctx env.Ctx) {
		conn, _ := net.Dial(client, "s")
		_, err := conn.RoundTrip(ctx, []byte("x"))
		res <- err
	})
	if err := <-res; err != transport.ErrUnreachable {
		t.Fatalf("err = %v", err)
	}
}

func TestLocalNetConcurrentClients(t *testing.T) {
	e := env.NewReal(1)
	net := transport.NewLocalNet()
	server := e.NewNode("s", 1)
	net.Listen("s", server, echoUpper)
	var wg sync.WaitGroup
	errs := make(chan error, 50)
	for i := 0; i < 50; i++ {
		wg.Add(1)
		client := e.NewNode("c", 1)
		client.Go("c", func(ctx env.Ctx) {
			defer wg.Done()
			conn, _ := net.Dial(client, "s")
			got, err := conn.RoundTrip(ctx, []byte("abc"))
			if err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(got, []byte("ABC")) {
				t.Errorf("got %q", got)
			}
		})
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestTCPNetRoundTrip(t *testing.T) {
	e := env.NewReal(1)
	tn := transport.NewTCPNet()
	defer tn.Close()
	server := e.NewNode("s", 1)
	if err := tn.Listen("127.0.0.1:0", server, echoUpper); err != nil {
		t.Fatal(err)
	}
	addr := tn.Addr(0)
	client := e.NewNode("c", 1)
	res := make(chan []byte, 1)
	client.Go("c", func(ctx env.Ctx) {
		conn, err := tn.Dial(client, addr)
		if err != nil {
			t.Error(err)
			res <- nil
			return
		}
		defer conn.Close()
		got, err := conn.RoundTrip(ctx, []byte("over tcp"))
		if err != nil {
			t.Error(err)
		}
		res <- got
	})
	if got := <-res; string(got) != "OVER TCP" {
		t.Fatalf("got %q", got)
	}
}

func TestTCPNetMultiplexing(t *testing.T) {
	e := env.NewReal(1)
	tn := transport.NewTCPNet()
	defer tn.Close()
	server := e.NewNode("s", 1)
	slowEcho := func(ctx env.Ctx, req []byte) []byte {
		time.Sleep(time.Duration(req[0]) * time.Millisecond)
		return req
	}
	if err := tn.Listen("127.0.0.1:0", server, slowEcho); err != nil {
		t.Fatal(err)
	}
	addr := tn.Addr(0)
	client := e.NewNode("c", 1)
	conn, err := tn.Dial(client, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Issue concurrent requests with different delays over ONE connection;
	// responses must be matched by id, not by order.
	var wg sync.WaitGroup
	for i := byte(1); i <= 5; i++ {
		i := i
		wg.Add(1)
		client.Go("c", func(ctx env.Ctx) {
			defer wg.Done()
			payload := []byte{6 - i, i} // later requests get shorter delays
			got, err := conn.RoundTrip(ctx, payload)
			if err != nil {
				t.Error(err)
				return
			}
			if !bytes.Equal(got, payload) {
				t.Errorf("response mismatch: %v != %v", got, payload)
			}
		})
	}
	wg.Wait()
}

func TestTCPNetLargePayload(t *testing.T) {
	e := env.NewReal(1)
	tn := transport.NewTCPNet()
	defer tn.Close()
	server := e.NewNode("s", 1)
	echo := func(ctx env.Ctx, req []byte) []byte { return req }
	if err := tn.Listen("127.0.0.1:0", server, echo); err != nil {
		t.Fatal(err)
	}
	client := e.NewNode("c", 1)
	conn, err := tn.Dial(client, tn.Addr(0))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	big := make([]byte, 1<<20)
	for i := range big {
		big[i] = byte(i)
	}
	res := make(chan []byte, 1)
	client.Go("c", func(ctx env.Ctx) {
		got, err := conn.RoundTrip(ctx, big)
		if err != nil {
			t.Error(err)
		}
		res <- got
	})
	if got := <-res; !bytes.Equal(got, big) {
		t.Fatal("large payload corrupted")
	}
}

// dupRig builds a one-client one-server sim network with a scripted fault
// fn and returns the handler invocation count after the round trip.
func dupRig(t *testing.T, fault transport.FaultFn) (handlerRuns int, rtErr error, stats transport.Stats) {
	t.Helper()
	k := sim.NewKernel(1)
	e := env.NewSim(k)
	net := transport.NewSimNet(k, transport.InfiniBand())
	server := e.NewNode("s", 2)
	client := e.NewNode("c", 2)
	net.Listen("s", server, func(ctx env.Ctx, req []byte) []byte {
		handlerRuns++
		return []byte("ok")
	})
	net.SetFaultFn(fault)
	client.Go("c", func(ctx env.Ctx) {
		conn, _ := net.Dial(client, "s")
		_, rtErr = conn.RoundTrip(ctx, []byte("req"))
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	return handlerRuns, rtErr, net.Stats()
}

// TestSimNetDuplicateLegReEvaluatesFaults pins the dup+drop composition:
// the duplicate copy of a request passes through the fault fn again, so a
// Drop verdict on the second draw loses the duplicate (handler runs once)
// without touching the original delivery.
func TestSimNetDuplicateLegReEvaluatesFaults(t *testing.T) {
	call := 0
	runs, err, stats := dupRig(t, func(src, dst string, payload []byte) transport.Fault {
		if dst != "s" {
			return transport.Fault{} // clean response leg
		}
		call++
		switch call {
		case 1:
			return transport.Fault{Duplicate: true}
		case 2:
			return transport.Fault{Drop: true} // verdict for the duplicate copy
		}
		return transport.Fault{}
	})
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if call != 2 {
		t.Fatalf("fault fn consulted %d times on the request path, want 2 (original + duplicate)", call)
	}
	if runs != 1 {
		t.Fatalf("handler ran %d times, want 1 (duplicate was dropped)", runs)
	}
	if stats.Duplicated != 1 || stats.Dropped != 1 {
		t.Fatalf("stats = %+v, want 1 duplicated and 1 dropped", stats)
	}
}

// TestSimNetDuplicateLegDelivers is the composing-delay side: a clean
// second draw delivers the duplicate, running the handler twice.
func TestSimNetDuplicateLegDelivers(t *testing.T) {
	first := true
	runs, err, _ := dupRig(t, func(src, dst string, payload []byte) transport.Fault {
		if dst != "s" {
			return transport.Fault{}
		}
		if first {
			first = false
			return transport.Fault{Duplicate: true}
		}
		return transport.Fault{Delay: time.Millisecond}
	})
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if runs != 2 {
		t.Fatalf("handler ran %d times, want 2", runs)
	}
}

// TestSimNetDuplicateNoCascade pins the bound: even a fault fn that
// duplicates every leg produces exactly one extra copy per leg (the
// duplicate's own Duplicate verdict is ignored).
func TestSimNetDuplicateNoCascade(t *testing.T) {
	runs, err, _ := dupRig(t, func(src, dst string, payload []byte) transport.Fault {
		return transport.Fault{Duplicate: true}
	})
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if runs != 2 {
		t.Fatalf("handler ran %d times, want exactly 2 under always-duplicate", runs)
	}
}
