// Package transport moves encoded messages between nodes. Three
// implementations share one interface:
//
//   - simnet: runs on the discrete-event simulator, modelling per-link
//     latency and bandwidth. Used by all scalability experiments; the
//     network-class parameters (InfiniBand vs 10 GbE) reproduce §6.6.
//   - localnet: in-process delivery on real goroutines, with optional
//     injected latency. Used by unit tests and the examples.
//   - tcpnet: real TCP with length-prefixed frames and request
//     multiplexing. Used by cmd/telld and cmd/tellcli.
package transport

import (
	"errors"
	"time"

	"tell/internal/env"
)

// Handler processes one request and returns the encoded response. Handlers
// run on the serving node's execution context and should charge CPU via
// ctx.Work for simulation fidelity. The returned response is relinquished
// to the transport: a handler must not retain or reuse its bytes after
// returning (real-network transports recycle large response buffers into
// the wire encoder pool once written; small shared literals are safe
// because the pool rejects them).
type Handler func(ctx env.Ctx, req []byte) []byte

// Conn is a client connection to one remote address.
type Conn interface {
	// RoundTrip sends req and blocks until the response arrives.
	RoundTrip(ctx env.Ctx, req []byte) ([]byte, error)
	Close() error
}

// TransferTimer is implemented by connections whose link models wire time
// as a function of payload size (the simulated network). Tracing uses it
// to split a round trip into network and remote-service components.
type TransferTimer interface {
	TransferTime(bytes int) time.Duration
}

// Transport connects named endpoints.
type Transport interface {
	// Listen registers a handler serving addr on the given node.
	Listen(addr string, node env.Node, h Handler) error
	// Dial opens a connection from the given node to addr.
	Dial(node env.Node, addr string) (Conn, error)
}

// Errors shared by all transports.
var (
	ErrUnknownAddr = errors.New("transport: unknown address")
	ErrTimeout     = errors.New("transport: request timed out")
	ErrClosed      = errors.New("transport: connection closed")
	ErrUnreachable = errors.New("transport: endpoint unreachable")
)

// NetworkClass is a named set of link parameters, calibrated to the paper's
// test bed (§6.1: 40 Gbit QDR InfiniBand; §6.6: 10 Gbit Ethernet).
type NetworkClass struct {
	Name string
	// Latency is the one-way propagation plus stack delay for a minimal
	// message.
	Latency time.Duration
	// BytesPerSec is the effective link bandwidth; transfer time is
	// size/BytesPerSec on top of Latency.
	BytesPerSec float64
}

// InfiniBand models RDMA over 40 Gbit QDR InfiniBand: a few microseconds
// one-way (§2.2: "RDMA within a few microseconds").
func InfiniBand() NetworkClass {
	return NetworkClass{Name: "InfiniBand", Latency: 4 * time.Microsecond, BytesPerSec: 4e9}
}

// Ethernet10G models 10 Gbit Ethernet through the kernel TCP stack:
// the effective one-way delay including both hosts' interrupt, socket and
// scheduler costs (§6.6 observed >6× on the TPC-C against RDMA).
func Ethernet10G() NetworkClass {
	return NetworkClass{Name: "10GbE", Latency: 80 * time.Microsecond, BytesPerSec: 1.1e9}
}

// TransferTime returns the modelled one-way delay for a message of n bytes.
func (c NetworkClass) TransferTime(n int) time.Duration {
	d := c.Latency
	if c.BytesPerSec > 0 {
		d += time.Duration(float64(n) / c.BytesPerSec * float64(time.Second))
	}
	return d
}

// Stats aggregates traffic counters for a transport. All transports count
// requests and bytes so experiments can report network utilisation (§6.6).
type Stats struct {
	Requests  uint64
	BytesSent uint64
	BytesRecv uint64
	// Dropped and Duplicated count message legs affected by an installed
	// fault injector (simnet only).
	Dropped    uint64
	Duplicated uint64
}
