package transport

import (
	"fmt"
	"math/rand"
	"time"

	"tell/internal/env"
	"tell/internal/sanitize"
	"tell/internal/trace"
)

// LocalNet delivers messages in-process on real goroutines. It is the
// transport for unit tests and single-process deployments (the examples run
// a whole virtual cluster inside one binary this way). An optional fixed
// latency can be injected per round trip.
type LocalNet struct {
	mu      sanitize.RWMutex
	eps     map[string]*localEndpoint
	down    map[string]bool
	latency time.Duration

	statsMu sanitize.Mutex
	stats   Stats
}

type localEndpoint struct {
	node env.Node
	h    Handler
}

// NewLocalNet returns an empty in-process network.
func NewLocalNet() *LocalNet {
	n := &LocalNet{eps: make(map[string]*localEndpoint), down: make(map[string]bool)}
	n.mu.SetName("transport.LocalNet.mu")
	n.statsMu.SetName("transport.LocalNet.statsMu")
	return n
}

// SetLatency injects a fixed real-time delay per round trip.
func (n *LocalNet) SetLatency(d time.Duration) { n.latency = d }

// SetDown marks addr as failed or recovered.
func (n *LocalNet) SetDown(addr string, down bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.down[addr] = down
}

// Stats returns cumulative traffic counters.
func (n *LocalNet) Stats() Stats {
	n.statsMu.Lock()
	defer n.statsMu.Unlock()
	return n.stats
}

// Listen registers h as the server for addr on the given node.
func (n *LocalNet) Listen(addr string, node env.Node, h Handler) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.eps[addr]; ok {
		return fmt.Errorf("localnet: address %q already in use", addr)
	}
	n.eps[addr] = &localEndpoint{node: node, h: h}
	return nil
}

// Dial opens a connection from node to addr.
func (n *LocalNet) Dial(node env.Node, addr string) (Conn, error) {
	return &localConn{net: n, src: node, dst: addr}, nil
}

type localConn struct {
	net    *LocalNet
	src    env.Node
	dst    string
	closed bool
}

func (c *localConn) Close() error {
	c.closed = true
	return nil
}

func (c *localConn) RoundTrip(ctx env.Ctx, req []byte) ([]byte, error) {
	if c.closed {
		return nil, ErrClosed
	}
	n := c.net
	n.mu.RLock()
	ep, ok := n.eps[c.dst]
	isDown := n.down[c.dst]
	n.mu.RUnlock()

	n.statsMu.Lock()
	n.stats.Requests++
	n.stats.BytesSent += uint64(len(req))
	n.statsMu.Unlock()

	if !ok || isDown {
		return nil, ErrUnreachable
	}
	sc := ctx.Trace()
	var srcName string
	var t0 time.Duration
	if sc.R.Enabled() {
		srcName = nodeName(c.src)
		t0 = ctx.Now()
	}
	if n.latency > 0 {
		ctx.Sleep(n.latency)
	}
	flow := sc.R.MsgSend(sc.Span, srcName, c.dst, int64(len(req)))
	// The handler runs inline on the caller's goroutine but against the
	// serving node's context, so Node() reports correctly. Under the real
	// environment Work is free, so no accounting is lost.
	hctx := &detachedCtx{ctx: ctx, node: ep.node}
	var hstart time.Duration
	if sc.R.Enabled() {
		sc.R.MsgRecv(flow, c.dst, int64(len(req)))
		hstart = ctx.Now()
		hctx.sc = trace.Scope{R: sc.R, Span: sc.R.NewID()}
	}
	resp := ep.h(hctx, req)
	if sc.R.Enabled() {
		sc.R.Span(hctx.sc.Span, flow, c.dst, "handler", hstart,
			int64(len(req)), int64(len(resp)))
		rflow := sc.R.MsgSend(hctx.sc.Span, c.dst, srcName, int64(len(resp)))
		defer sc.R.MsgRecv(rflow, srcName, int64(len(resp)))
	}
	if n.latency > 0 {
		ctx.Sleep(n.latency)
	}
	if sc.R.Enabled() {
		sc.R.CounterAdd(srcName, "net/msgs", 1)
		sc.R.CounterAdd(srcName, "net/bytes", int64(len(req)+len(resp)))
	}
	if sc.Agg != nil {
		// Wire time is the injected latency (both legs); everything else
		// in the round trip is remote service.
		total := ctx.Now() - t0
		net := 2 * n.latency
		if net > total {
			net = total
		}
		sc.Agg.Add(trace.CompNetwork, net)
		sc.Agg.Add(trace.CompRemote, total-net)
	}
	n.statsMu.Lock()
	n.stats.BytesRecv += uint64(len(resp))
	n.statsMu.Unlock()
	return resp, nil
}

// nodeName tolerates the nil source node of pre-instrumentation dials.
func nodeName(n env.Node) string {
	if n == nil {
		return "?"
	}
	return n.Name()
}

// detachedCtx runs a handler on the caller's goroutine while reporting the
// serving node as its home.
type detachedCtx struct {
	ctx  env.Ctx
	node env.Node
	sc   trace.Scope
}

func (d *detachedCtx) Node() env.Node               { return d.node }
func (d *detachedCtx) Now() time.Duration           { return d.ctx.Now() }
func (d *detachedCtx) Sleep(dur time.Duration)      { d.ctx.Sleep(dur) }
func (d *detachedCtx) Work(time.Duration)           {}
func (d *detachedCtx) Trace() *trace.Scope          { return &d.sc }
func (d *detachedCtx) Go(n string, f func(env.Ctx)) { d.node.Go(n, f) }
func (d *detachedCtx) Rand() *rand.Rand             { return d.ctx.Rand() }
