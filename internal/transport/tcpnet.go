// This file is the real-TCP transport behind cmd/telld and cmd/tellcli. It
// never executes under the DES kernel, so the determinism analyzers are
// waived for the whole file:
//
//lint:allow nogoroutine real-network transport; connection handling needs real goroutines and never runs under the sim kernel
//lint:allow nowallclock real-network transport; round-trip timeouts are genuine wall-clock deadlines
//lint:allow maporder real-network transport; in-flight-request teardown order is not simulation-visible

package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"tell/internal/env"
)

// TCPNet carries requests over real TCP connections. Frames are
// [uint32 length][uint64 request id][payload]; responses echo the request
// id, so a single connection multiplexes many in-flight requests. This is
// the transport behind cmd/telld and cmd/tellcli.
type TCPNet struct {
	// Timeout bounds each round trip (default 10s).
	Timeout time.Duration

	mu        sync.Mutex
	listeners []net.Listener

	statsMu sync.Mutex
	stats   Stats
}

// NewTCPNet returns a TCP transport.
func NewTCPNet() *TCPNet { return &TCPNet{Timeout: 10 * time.Second} }

// Stats returns cumulative traffic counters.
func (t *TCPNet) Stats() Stats {
	t.statsMu.Lock()
	defer t.statsMu.Unlock()
	return t.stats
}

// Close shuts down all listeners.
func (t *TCPNet) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	var err error
	for _, l := range t.listeners {
		if e := l.Close(); e != nil && err == nil {
			err = e
		}
	}
	t.listeners = nil
	return err
}

const maxFrame = 64 << 20 // 64 MiB sanity bound on a single frame

func writeFrame(w io.Writer, id uint64, payload []byte) error {
	hdr := make([]byte, 12)
	binary.LittleEndian.PutUint32(hdr, uint32(len(payload)))
	binary.LittleEndian.PutUint64(hdr[4:], id)
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func readFrame(r io.Reader) (id uint64, payload []byte, err error) {
	hdr := make([]byte, 12)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr)
	if n > maxFrame {
		return 0, nil, fmt.Errorf("tcpnet: frame of %d bytes exceeds limit", n)
	}
	id = binary.LittleEndian.Uint64(hdr[4:])
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return id, payload, nil
}

// Listen binds a real TCP listener on addr (host:port) and serves requests
// with h. Handler invocations run as activities on node.
func (t *TCPNet) Listen(addr string, node env.Node, h Handler) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	t.mu.Lock()
	t.listeners = append(t.listeners, l)
	t.mu.Unlock()
	go t.acceptLoop(l, node, h)
	return nil
}

// Addr returns the bound address of the i-th listener (useful with ":0").
func (t *TCPNet) Addr(i int) string {
	t.mu.Lock()
	defer t.mu.Unlock()
	if i < 0 || i >= len(t.listeners) {
		return ""
	}
	return t.listeners[i].Addr().String()
}

func (t *TCPNet) acceptLoop(l net.Listener, node env.Node, h Handler) {
	for {
		c, err := l.Accept()
		if err != nil {
			return
		}
		go t.serveConn(c, node, h)
	}
}

func (t *TCPNet) serveConn(c net.Conn, node env.Node, h Handler) {
	defer c.Close()
	var wmu sync.Mutex
	for {
		id, payload, err := readFrame(c)
		if err != nil {
			return
		}
		t.statsMu.Lock()
		t.stats.Requests++
		t.stats.BytesRecv += uint64(len(payload))
		t.statsMu.Unlock()
		node.Go("tcp-handler", func(ctx env.Ctx) {
			resp := h(ctx, payload)
			wmu.Lock()
			defer wmu.Unlock()
			if err := writeFrame(c, id, resp); err != nil {
				c.Close()
			}
		})
	}
}

// Dial connects to addr over TCP.
func (t *TCPNet) Dial(node env.Node, addr string) (Conn, error) {
	c, err := net.DialTimeout("tcp", addr, t.Timeout)
	if err != nil {
		return nil, err
	}
	tc := &tcpConn{
		net:     t,
		conn:    c,
		pending: make(map[uint64]chan []byte),
	}
	go tc.readLoop()
	return tc, nil
}

type tcpConn struct {
	net  *TCPNet
	conn net.Conn

	wmu sync.Mutex // serializes frame writes

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan []byte
	closed  bool
}

func (c *tcpConn) Close() error {
	c.mu.Lock()
	c.closed = true
	for id, ch := range c.pending {
		close(ch)
		delete(c.pending, id)
	}
	c.mu.Unlock()
	return c.conn.Close()
}

func (c *tcpConn) readLoop() {
	for {
		id, payload, err := readFrame(c.conn)
		if err != nil {
			c.Close()
			return
		}
		c.mu.Lock()
		ch, ok := c.pending[id]
		if ok {
			delete(c.pending, id)
		}
		c.mu.Unlock()
		if ok {
			ch <- payload
		}
	}
}

func (c *tcpConn) RoundTrip(ctx env.Ctx, req []byte) ([]byte, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	c.nextID++
	id := c.nextID
	ch := make(chan []byte, 1)
	c.pending[id] = ch
	c.mu.Unlock()

	c.net.statsMu.Lock()
	c.net.stats.BytesSent += uint64(len(req))
	c.net.statsMu.Unlock()

	c.wmu.Lock()
	err := writeFrame(c.conn, id, req)
	c.wmu.Unlock()
	if err != nil {
		c.forget(id)
		return nil, err
	}

	timeout := c.net.Timeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	select {
	case resp, ok := <-ch:
		if !ok {
			return nil, ErrClosed
		}
		return resp, nil
	case <-time.After(timeout):
		c.forget(id)
		return nil, ErrTimeout
	}
}

func (c *tcpConn) forget(id uint64) {
	c.mu.Lock()
	delete(c.pending, id)
	c.mu.Unlock()
}
