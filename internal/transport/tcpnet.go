// This file is the real-TCP transport behind cmd/telld and cmd/tellcli. It
// never executes under the DES kernel, so the determinism analyzers are
// waived for the whole file:
//
//lint:allow nogoroutine real-network transport; connection handling needs real goroutines and never runs under the sim kernel
//lint:allow nowallclock real-network transport; round-trip timeouts are genuine wall-clock deadlines
//lint:allow maporder real-network transport; in-flight-request teardown order is not simulation-visible

package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"time"

	"tell/internal/env"
	"tell/internal/sanitize"
	"tell/internal/trace"
	"tell/internal/wire"
)

// TCPNet carries requests over real TCP connections. Frames are
// [uint32 length][uint64 request id][uint64 trace flow][payload]; responses
// echo the request id, so a single connection multiplexes many in-flight
// requests. The flow field carries the sender's trace message id across the
// wire, so a process that records traces can stitch handler spans to the
// requesting transaction exactly like simnet and localnet do. This is the
// transport behind cmd/telld and cmd/tellcli.
type TCPNet struct {
	// Timeout bounds each round trip (default 10s).
	Timeout time.Duration

	mu        sanitize.Mutex
	listeners []net.Listener

	statsMu sanitize.Mutex
	stats   Stats
}

// NewTCPNet returns a TCP transport.
func NewTCPNet() *TCPNet {
	t := &TCPNet{Timeout: 10 * time.Second}
	t.mu.SetName("transport.TCPNet.mu")
	t.statsMu.SetName("transport.TCPNet.statsMu")
	return t
}

// Stats returns cumulative traffic counters.
func (t *TCPNet) Stats() Stats {
	t.statsMu.Lock()
	defer t.statsMu.Unlock()
	return t.stats
}

// Close shuts down all listeners.
func (t *TCPNet) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	var err error
	for _, l := range t.listeners {
		if e := l.Close(); e != nil && err == nil {
			err = e
		}
	}
	t.listeners = nil
	return err
}

const (
	maxFrame    = 64 << 20 // 64 MiB sanity bound on a single frame
	frameHdrLen = 20       // u32 length + u64 request id + u64 trace flow
)

// framer owns the preallocated header scratch for one direction of one
// connection, so steady-state frame I/O allocates nothing beyond the
// payload. A framer must not be shared between concurrent writers (callers
// serialize on the connection's write mutex) or concurrent readers (each
// read loop owns its own).
type framer struct {
	hdr [frameHdrLen]byte
}

func (f *framer) writeFrame(w io.Writer, id, flow uint64, payload []byte) error {
	binary.LittleEndian.PutUint32(f.hdr[:], uint32(len(payload)))
	binary.LittleEndian.PutUint64(f.hdr[4:], id)
	binary.LittleEndian.PutUint64(f.hdr[12:], flow)
	if _, err := w.Write(f.hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func (f *framer) readFrame(r io.Reader) (id, flow uint64, payload []byte, err error) {
	if _, err := io.ReadFull(r, f.hdr[:]); err != nil {
		return 0, 0, nil, err
	}
	n := binary.LittleEndian.Uint32(f.hdr[:])
	if n > maxFrame {
		return 0, 0, nil, fmt.Errorf("tcpnet: frame of %d bytes exceeds limit", n)
	}
	id = binary.LittleEndian.Uint64(f.hdr[4:])
	flow = binary.LittleEndian.Uint64(f.hdr[12:])
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, 0, nil, err
	}
	return id, flow, payload, nil
}

// Listen binds a real TCP listener on addr (host:port) and serves requests
// with h. Handler invocations run as activities on node.
func (t *TCPNet) Listen(addr string, node env.Node, h Handler) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	t.mu.Lock()
	t.listeners = append(t.listeners, l)
	t.mu.Unlock()
	go t.acceptLoop(l, node, h)
	return nil
}

// Addr returns the bound address of the i-th listener (useful with ":0").
func (t *TCPNet) Addr(i int) string {
	t.mu.Lock()
	defer t.mu.Unlock()
	if i < 0 || i >= len(t.listeners) {
		return ""
	}
	return t.listeners[i].Addr().String()
}

func (t *TCPNet) acceptLoop(l net.Listener, node env.Node, h Handler) {
	for {
		c, err := l.Accept()
		if err != nil {
			return
		}
		go t.serveConn(c, node, h)
	}
}

func (t *TCPNet) serveConn(c net.Conn, node env.Node, h Handler) {
	//lint:allow errdiscard server-side teardown of a connection whose peer already went away
	defer c.Close()
	var wmu sanitize.Mutex
	wmu.SetName("transport.serveConn.wmu")
	var rf, wf framer // rf owned by this loop; wf guarded by wmu
	peer := c.RemoteAddr().String()
	for {
		id, flow, payload, err := rf.readFrame(c)
		if err != nil {
			return
		}
		t.statsMu.Lock()
		t.stats.Requests++
		t.stats.BytesRecv += uint64(len(payload))
		t.statsMu.Unlock()
		node.Go("tcp-handler", func(ctx env.Ctx) {
			// Mirror the simnet/localnet handler instrumentation: receive
			// the request on the flow the client stamped into the frame,
			// run the handler under its own span parented on that flow,
			// then send the response back on a fresh flow that the client
			// will receive. The ids only stitch into one trace when client
			// and server share a process (tests, single-binary clusters);
			// across real processes they are still recorded and harmless.
			sc := ctx.Trace()
			srvName := nodeName(node)
			var hstart time.Duration
			var hspan trace.SpanID
			if sc.R.Enabled() {
				sc.R.MsgRecv(trace.SpanID(flow), srvName, int64(len(payload)))
				hstart = ctx.Now()
				hspan = sc.R.NewID()
				sc.Span = hspan // handlers parent their spans here
			}
			resp := h(ctx, payload)
			var rflow uint64
			if sc.R.Enabled() {
				sc.R.Span(hspan, trace.SpanID(flow), srvName, "handler", hstart,
					int64(len(payload)), int64(len(resp)))
				rflow = uint64(sc.R.MsgSend(hspan, srvName, peer, int64(len(resp))))
				sc.R.CounterAdd(srvName, "net/msgs", 1)
				sc.R.CounterAdd(srvName, "net/bytes", int64(len(payload)+len(resp)))
			}
			wmu.Lock()
			err := wf.writeFrame(c, id, rflow, resp)
			wmu.Unlock()
			if err != nil {
				//lint:allow errdiscard the write already failed; Close is a best-effort kick so the read loop exits too
				c.Close()
				return
			}
			// The response bytes are on the socket and the handler has
			// relinquished ownership (Handler contract), so the buffer can
			// be recycled into the encoder pool. Tiny shared literals are
			// rejected by PutBuf's capacity band.
			wire.PutBuf(resp)
		})
	}
}

// Dial connects to addr over TCP.
func (t *TCPNet) Dial(node env.Node, addr string) (Conn, error) {
	c, err := net.DialTimeout("tcp", addr, t.Timeout)
	if err != nil {
		return nil, err
	}
	tc := &tcpConn{
		net:     t,
		src:     node,
		dst:     addr,
		conn:    c,
		pending: make(map[uint64]chan tcpReply),
	}
	tc.wmu.SetName("transport.tcpConn.wmu")
	tc.mu.SetName("transport.tcpConn.mu")
	go tc.readLoop()
	return tc, nil
}

// tcpReply carries a response and its trace flow id back to the waiter.
type tcpReply struct {
	flow uint64
	data []byte
}

type tcpConn struct {
	net  *TCPNet
	src  env.Node
	dst  string
	conn net.Conn

	wmu sanitize.Mutex // serializes frame writes; wf's scratch lives under it
	wf  framer

	mu      sanitize.Mutex
	nextID  uint64
	pending map[uint64]chan tcpReply
	closed  bool
}

func (c *tcpConn) Close() error {
	c.mu.Lock()
	c.closed = true
	for id, ch := range c.pending {
		close(ch)
		delete(c.pending, id)
	}
	c.mu.Unlock()
	return c.conn.Close()
}

func (c *tcpConn) readLoop() {
	var rf framer // owned by this loop
	for {
		id, flow, payload, err := rf.readFrame(c.conn)
		if err != nil {
			//lint:allow errdiscard the read already failed; Close just fails pending callers so they can retry elsewhere
			c.Close()
			return
		}
		c.mu.Lock()
		ch, ok := c.pending[id]
		if ok {
			delete(c.pending, id)
		}
		c.mu.Unlock()
		if ok {
			ch <- tcpReply{flow: flow, data: payload}
		}
	}
}

func (c *tcpConn) RoundTrip(ctx env.Ctx, req []byte) ([]byte, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	c.nextID++
	id := c.nextID
	ch := make(chan tcpReply, 1)
	c.pending[id] = ch
	c.mu.Unlock()

	c.net.statsMu.Lock()
	c.net.stats.BytesSent += uint64(len(req))
	c.net.statsMu.Unlock()

	sc := ctx.Trace()
	var srcName string
	var flow trace.SpanID
	if sc.R.Enabled() {
		srcName = nodeName(c.src)
		flow = sc.R.MsgSend(sc.Span, srcName, c.dst, int64(len(req)))
	}

	c.wmu.Lock()
	err := c.wf.writeFrame(c.conn, id, uint64(flow), req)
	c.wmu.Unlock()
	if err != nil {
		c.forget(id)
		return nil, err
	}

	timeout := c.net.Timeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	select {
	case rep, ok := <-ch:
		if !ok {
			return nil, ErrClosed
		}
		if sc.R.Enabled() {
			sc.R.MsgRecv(trace.SpanID(rep.flow), srcName, int64(len(rep.data)))
			sc.R.CounterAdd(srcName, "net/msgs", 1)
			sc.R.CounterAdd(srcName, "net/bytes", int64(len(req)+len(rep.data)))
		}
		return rep.data, nil
	case <-time.After(timeout):
		c.forget(id)
		return nil, ErrTimeout
	}
}

func (c *tcpConn) forget(id uint64) {
	c.mu.Lock()
	delete(c.pending, id)
	c.mu.Unlock()
}
