package query_test

import (
	"testing"
	"time"

	"tell/internal/commitmgr"
	"tell/internal/core"
	"tell/internal/env"
	"tell/internal/query"
	"tell/internal/relational"
	"tell/internal/sim"
	"tell/internal/store"
	"tell/internal/testutil"
	"tell/internal/transport"
)

// qRig is a small full stack for query tests.
type qRig struct {
	k      *sim.Kernel
	envr   env.Full
	pn     *core.PN
	driver env.Node
}

func newQRig(t *testing.T) *qRig {
	t.Helper()
	k := sim.NewKernel(testutil.Seed(t, 9))
	envr := env.NewSim(k)
	net := transport.NewSimNet(k, transport.InfiniBand())
	cl, err := store.NewCluster(envr, net, store.ClusterConfig{NumNodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	cmNode := envr.NewNode("cm0", 2)
	cm := commitmgr.New("cm0", "cm0", envr, cmNode, net, cl.NewClient(cmNode))
	if err := cm.Start(); err != nil {
		t.Fatal(err)
	}
	pnNode := envr.NewNode("pn0", 4)
	pn := core.New(core.Config{ID: "pn0"}, envr, pnNode, net,
		cl.NewClient(pnNode), commitmgr.NewClient(envr, pnNode, net, []string{"cm0"}))
	return &qRig{k: k, envr: envr, pn: pn, driver: envr.NewNode("driver", 2)}
}

func (r *qRig) run(t *testing.T, fn func(ctx env.Ctx)) {
	t.Helper()
	done := false
	r.driver.Go("test", func(ctx env.Ctx) {
		defer r.k.Stop()
		fn(ctx)
		done = true
	})
	if err := r.k.RunUntil(sim.Time(300 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("did not finish")
	}
	r.k.Shutdown()
}

// salesSchema: region, product, qty, revenue.
func salesSchema() *relational.TableSchema {
	return &relational.TableSchema{
		Name: "sales",
		Cols: []relational.Column{
			{Name: "id", Type: relational.TInt64},
			{Name: "region", Type: relational.TString},
			{Name: "product", Type: relational.TInt64},
			{Name: "qty", Type: relational.TInt64},
			{Name: "revenue", Type: relational.TFloat64},
		},
		PKCols: []int{0},
	}
}

func loadSales(t *testing.T, ctx env.Ctx, pn *core.PN) *core.TableInfo {
	t.Helper()
	table, err := pn.Catalog().CreateTable(ctx, salesSchema())
	if err != nil {
		t.Fatal(err)
	}
	txn, _ := pn.Begin(ctx)
	regions := []string{"emea", "amer", "apac"}
	for i := int64(0); i < 30; i++ {
		_, err := txn.Insert(ctx, table, relational.Row{
			relational.I64(i),
			relational.Str(regions[i%3]),
			relational.I64(i % 5),
			relational.I64(i),
			relational.F64(float64(i) * 1.5),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := txn.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	return table
}

func TestSelectProjectOrderLimit(t *testing.T) {
	r := newQRig(t)
	r.run(t, func(ctx env.Ctx) {
		table := loadSales(t, ctx, r.pn)
		txn, _ := r.pn.Begin(ctx)
		defer txn.Commit(ctx)
		src, err := query.TableScan(ctx, txn, table)
		if err != nil {
			t.Fatal(err)
		}
		// SELECT id, qty WHERE region='emea' ORDER BY qty DESC-ish
		// (ascending, take via limit): qty ∈ {0,3,6,...,27}.
		it := query.Limit(
			query.OrderBy(
				query.Project(
					query.Select(src, func(row relational.Row) bool { return row[1].S == "emea" }),
					[]int{0, 3}),
				[]int{1}),
			3)
		rows, err := query.Collect(ctx, it)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 3 {
			t.Fatalf("rows = %d", len(rows))
		}
		for i, want := range []int64{0, 3, 6} {
			if rows[i][1].I != want {
				t.Fatalf("row %d qty = %d, want %d", i, rows[i][1].I, want)
			}
		}
	})
}

func TestGroupByAggregates(t *testing.T) {
	r := newQRig(t)
	r.run(t, func(ctx env.Ctx) {
		table := loadSales(t, ctx, r.pn)
		txn, _ := r.pn.Begin(ctx)
		defer txn.Commit(ctx)
		src, _ := query.TableScan(ctx, txn, table)
		// SELECT region, COUNT(*), SUM(qty), SUM(revenue), MAX(qty)
		// GROUP BY region.
		it := query.OrderBy(query.GroupBy(src, []int{1}, []query.Agg{
			{Fn: query.Count},
			{Fn: query.SumI, Col: 3},
			{Fn: query.SumF, Col: 4},
			{Fn: query.MaxV, Col: 3},
		}), []int{0})
		rows, err := query.Collect(ctx, it)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 3 {
			t.Fatalf("groups = %d", len(rows))
		}
		// Sorted by region: amer (ids ≡1 mod 3), apac (≡2), emea (≡0).
		wantSum := map[string]int64{"amer": 145, "apac": 155, "emea": 135}
		totalQty := int64(0)
		for _, row := range rows {
			region := row[0].S
			if row[1].I != 10 {
				t.Fatalf("%s count = %d", region, row[1].I)
			}
			if row[2].I != wantSum[region] {
				t.Fatalf("%s sum qty = %d, want %d", region, row[2].I, wantSum[region])
			}
			if row[4].I < 25 {
				t.Fatalf("%s max qty = %d", region, row[4].I)
			}
			totalQty += row[2].I
		}
		if totalQty != 29*30/2 {
			t.Fatalf("total qty = %d", totalQty)
		}
	})
}

func TestHashJoin(t *testing.T) {
	r := newQRig(t)
	r.run(t, func(ctx env.Ctx) {
		table := loadSales(t, ctx, r.pn)
		txn, _ := r.pn.Begin(ctx)
		defer txn.Commit(ctx)
		// Join sales (product) against a literal product dimension.
		products := query.Rows([]relational.Row{
			{relational.I64(0), relational.Str("widget")},
			{relational.I64(1), relational.Str("gadget")},
		})
		src, _ := query.TableScan(ctx, txn, table)
		it := query.HashJoin(src, products, []int{2}, []int{0})
		rows, err := query.Collect(ctx, it)
		if err != nil {
			t.Fatal(err)
		}
		// Products 0 and 1 each appear 6 times among 30 rows.
		if len(rows) != 12 {
			t.Fatalf("join rows = %d", len(rows))
		}
		for _, row := range rows {
			if len(row) != 7 {
				t.Fatalf("join width = %d", len(row))
			}
			if row[2].I != row[5].I {
				t.Fatalf("join key mismatch: %v", row)
			}
			name := row[6].S
			if name != "widget" && name != "gadget" {
				t.Fatalf("name = %q", name)
			}
		}
	})
}

func TestPushdownSourceMatchesFullScan(t *testing.T) {
	r := newQRig(t)
	r.run(t, func(ctx env.Ctx) {
		table := loadSales(t, ctx, r.pn)
		txn, _ := r.pn.Begin(ctx)
		defer txn.Commit(ctx)
		pred := &store.Predicate{Col: 1, Op: store.CmpEQ, Val: relational.Str("apac")}
		pushed, err := query.TableScanPushdown(ctx, txn, table, pred, []int{0, 4})
		if err != nil {
			t.Fatal(err)
		}
		pushedRows, _ := query.Collect(ctx, pushed)

		full, _ := query.TableScan(ctx, txn, table)
		reference, _ := query.Collect(ctx, query.Project(
			query.Select(full, func(row relational.Row) bool { return row[1].S == "apac" }),
			[]int{0, 4}))
		if len(pushedRows) != len(reference) {
			t.Fatalf("pushdown %d rows vs reference %d", len(pushedRows), len(reference))
		}
		sum1, sum2 := 0.0, 0.0
		for i := range reference {
			sum1 += reference[i][1].F
			sum2 += pushedRows[i][1].F
		}
		if sum1 != sum2 {
			t.Fatalf("revenue mismatch: %v != %v", sum1, sum2)
		}
	})
}

func TestIndexRangeSource(t *testing.T) {
	r := newQRig(t)
	r.run(t, func(ctx env.Ctx) {
		table := loadSales(t, ctx, r.pn)
		txn, _ := r.pn.Begin(ctx)
		defer txn.Commit(ctx)
		it, err := query.IndexRange(ctx, txn, table, "",
			[]relational.Value{relational.I64(10)},
			[]relational.Value{relational.I64(15)})
		if err != nil {
			t.Fatal(err)
		}
		rows, _ := query.Collect(ctx, it)
		if len(rows) != 5 || rows[0][0].I != 10 || rows[4][0].I != 14 {
			t.Fatalf("range rows: %v", rows)
		}
	})
}
