// Package query provides volcano-style relational operators over Tell
// transactions — the "complex queries" capability of §2.1/§5: ordering,
// aggregation, filtering and joins composed as iterators. Base iterators
// ship records from the shared store to the query ("data is shipped to the
// query"); the push-down variant moves selection and projection into the
// storage nodes (§5.2).
package query

import (
	"bytes"
	"errors"
	"sort"

	"tell/internal/core"
	"tell/internal/env"
	"tell/internal/relational"
	"tell/internal/store"
)

// ErrClosed is returned by Next after Close.
var ErrClosed = errors.New("query: iterator closed")

// Iterator produces rows one at a time; ok=false signals exhaustion.
type Iterator interface {
	Next(ctx env.Ctx) (row relational.Row, ok bool, err error)
	Close()
}

// rowsIter serves a materialized row set.
type rowsIter struct {
	rows   []relational.Row
	pos    int
	closed bool
}

func (it *rowsIter) Next(env.Ctx) (relational.Row, bool, error) {
	if it.closed {
		return nil, false, ErrClosed
	}
	if it.pos >= len(it.rows) {
		return nil, false, nil
	}
	r := it.rows[it.pos]
	it.pos++
	return r, true, nil
}

func (it *rowsIter) Close() { it.closed = true }

// Rows wraps a literal row set as an iterator (tests, VALUES clauses).
func Rows(rows []relational.Row) Iterator { return &rowsIter{rows: rows} }

// TableScan reads every visible row of the table within txn's snapshot.
// Rows are fetched from the shared store (full shipping).
func TableScan(ctx env.Ctx, txn *core.Txn, table *core.TableInfo) (Iterator, error) {
	var rows []relational.Row
	err := txn.ScanTable(ctx, table, func(rid uint64, row relational.Row) bool {
		rows = append(rows, row)
		return true
	})
	if err != nil {
		return nil, err
	}
	return &rowsIter{rows: rows}, nil
}

// TableScanPushdown reads the table with server-side selection and
// projection (§5.2). pred and proj may be nil/empty.
func TableScanPushdown(ctx env.Ctx, txn *core.Txn, table *core.TableInfo, pred *store.Predicate, proj []int) (Iterator, error) {
	var rows []relational.Row
	err := txn.ScanTableFiltered(ctx, table, pred, proj, func(rid uint64, row relational.Row) bool {
		rows = append(rows, row)
		return true
	})
	if err != nil {
		return nil, err
	}
	return &rowsIter{rows: rows}, nil
}

// IndexRange reads rows via an index within [lo, hi) (pass index "" for the
// primary key).
func IndexRange(ctx env.Ctx, txn *core.Txn, table *core.TableInfo, index string, lo, hi []relational.Value) (Iterator, error) {
	var rows []relational.Row
	collect := func(e core.IndexEntry) bool {
		rows = append(rows, e.Row)
		return true
	}
	var err error
	if index == "" {
		err = txn.ScanPK(ctx, table, lo, hi, collect)
	} else {
		err = txn.ScanIndex(ctx, table, index, lo, hi, collect)
	}
	if err != nil {
		return nil, err
	}
	return &rowsIter{rows: rows}, nil
}

// Select filters rows by a predicate.
func Select(in Iterator, pred func(relational.Row) bool) Iterator {
	return &selectIter{in: in, pred: pred}
}

type selectIter struct {
	in   Iterator
	pred func(relational.Row) bool
}

func (it *selectIter) Next(ctx env.Ctx) (relational.Row, bool, error) {
	for {
		row, ok, err := it.in.Next(ctx)
		if err != nil || !ok {
			return nil, false, err
		}
		if it.pred(row) {
			return row, true, nil
		}
	}
}

func (it *selectIter) Close() { it.in.Close() }

// Project keeps only the given column positions, in order.
func Project(in Iterator, cols []int) Iterator {
	return &projectIter{in: in, cols: cols}
}

type projectIter struct {
	in   Iterator
	cols []int
}

func (it *projectIter) Next(ctx env.Ctx) (relational.Row, bool, error) {
	row, ok, err := it.in.Next(ctx)
	if err != nil || !ok {
		return nil, false, err
	}
	out := make(relational.Row, len(it.cols))
	for i, c := range it.cols {
		out[i] = row[c]
	}
	return out, true, nil
}

func (it *projectIter) Close() { it.in.Close() }

// OrderBy sorts the input by the given columns (ascending, using the
// order-preserving value encoding for type-correct comparison).
func OrderBy(in Iterator, cols []int) Iterator {
	return &orderIter{in: in, cols: cols}
}

type orderIter struct {
	in     Iterator
	cols   []int
	sorted []relational.Row
	done   bool
	pos    int
}

func (it *orderIter) Next(ctx env.Ctx) (relational.Row, bool, error) {
	if !it.done {
		for {
			row, ok, err := it.in.Next(ctx)
			if err != nil {
				return nil, false, err
			}
			if !ok {
				break
			}
			it.sorted = append(it.sorted, row)
		}
		sort.SliceStable(it.sorted, func(i, j int) bool {
			return bytes.Compare(
				relational.IndexKeyFromRow(it.sorted[i], it.cols),
				relational.IndexKeyFromRow(it.sorted[j], it.cols)) < 0
		})
		it.done = true
	}
	if it.pos >= len(it.sorted) {
		return nil, false, nil
	}
	r := it.sorted[it.pos]
	it.pos++
	return r, true, nil
}

func (it *orderIter) Close() { it.in.Close() }

// Limit stops after n rows.
func Limit(in Iterator, n int) Iterator { return &limitIter{in: in, left: n} }

type limitIter struct {
	in   Iterator
	left int
}

func (it *limitIter) Next(ctx env.Ctx) (relational.Row, bool, error) {
	if it.left <= 0 {
		return nil, false, nil
	}
	row, ok, err := it.in.Next(ctx)
	if err != nil || !ok {
		return nil, false, err
	}
	it.left--
	return row, true, nil
}

func (it *limitIter) Close() { it.in.Close() }

// AggFunc identifies an aggregate function.
type AggFunc int

const (
	Count AggFunc = iota
	SumI          // sum of an int64 column
	SumF          // sum of a float64 column
	MinV          // minimum by value ordering
	MaxV          // maximum by value ordering
)

// Agg is one aggregate over a column (Col ignored for Count).
type Agg struct {
	Fn  AggFunc
	Col int
}

// GroupBy groups rows by key columns and computes aggregates per group.
// Output rows are [keyCols..., aggValues...] in first-seen group order.
func GroupBy(in Iterator, keyCols []int, aggs []Agg) Iterator {
	return &groupIter{in: in, keyCols: keyCols, aggs: aggs}
}

type groupState struct {
	key    relational.Row
	counts []int64
	sumsI  []int64
	sumsF  []float64
	minMax []relational.Value
	seen   []bool
}

type groupIter struct {
	in      Iterator
	keyCols []int
	aggs    []Agg
	groups  []*groupState
	index   map[string]*groupState
	done    bool
	pos     int
}

func (it *groupIter) Next(ctx env.Ctx) (relational.Row, bool, error) {
	if !it.done {
		it.index = make(map[string]*groupState)
		for {
			row, ok, err := it.in.Next(ctx)
			if err != nil {
				return nil, false, err
			}
			if !ok {
				break
			}
			key := relational.IndexKeyFromRow(row, it.keyCols)
			g, exists := it.index[string(key)]
			if !exists {
				g = &groupState{
					counts: make([]int64, len(it.aggs)),
					sumsI:  make([]int64, len(it.aggs)),
					sumsF:  make([]float64, len(it.aggs)),
					minMax: make([]relational.Value, len(it.aggs)),
					seen:   make([]bool, len(it.aggs)),
				}
				for _, c := range it.keyCols {
					g.key = append(g.key, row[c])
				}
				it.index[string(key)] = g
				it.groups = append(it.groups, g)
			}
			for i, a := range it.aggs {
				switch a.Fn {
				case Count:
					g.counts[i]++
				case SumI:
					g.sumsI[i] += row[a.Col].I
				case SumF:
					g.sumsF[i] += row[a.Col].F
				case MinV, MaxV:
					v := row[a.Col]
					if !g.seen[i] {
						g.minMax[i], g.seen[i] = v, true
						break
					}
					c := bytes.Compare(
						relational.AppendKeyValue(nil, v),
						relational.AppendKeyValue(nil, g.minMax[i]))
					if (a.Fn == MinV && c < 0) || (a.Fn == MaxV && c > 0) {
						g.minMax[i] = v
					}
				}
			}
		}
		it.done = true
	}
	if it.pos >= len(it.groups) {
		return nil, false, nil
	}
	g := it.groups[it.pos]
	it.pos++
	out := append(relational.Row{}, g.key...)
	for i, a := range it.aggs {
		switch a.Fn {
		case Count:
			out = append(out, relational.I64(g.counts[i]))
		case SumI:
			out = append(out, relational.I64(g.sumsI[i]))
		case SumF:
			out = append(out, relational.F64(g.sumsF[i]))
		case MinV, MaxV:
			out = append(out, g.minMax[i])
		}
	}
	return out, true, nil
}

func (it *groupIter) Close() { it.in.Close() }

// HashJoin joins two inputs on equality of the given column sets; output
// rows are the concatenation left ++ right. The right input is built into a
// hash table (it should be the smaller side).
func HashJoin(left, right Iterator, leftCols, rightCols []int) Iterator {
	return &joinIter{left: left, right: right, lCols: leftCols, rCols: rightCols}
}

type joinIter struct {
	left, right  Iterator
	lCols, rCols []int
	table        map[string][]relational.Row
	built        bool
	pending      []relational.Row // matches for the current left row
	current      relational.Row
}

func (it *joinIter) Next(ctx env.Ctx) (relational.Row, bool, error) {
	if !it.built {
		it.table = make(map[string][]relational.Row)
		for {
			row, ok, err := it.right.Next(ctx)
			if err != nil {
				return nil, false, err
			}
			if !ok {
				break
			}
			k := string(relational.IndexKeyFromRow(row, it.rCols))
			it.table[k] = append(it.table[k], row)
		}
		it.built = true
	}
	for {
		if len(it.pending) > 0 {
			r := it.pending[0]
			it.pending = it.pending[1:]
			out := append(append(relational.Row{}, it.current...), r...)
			return out, true, nil
		}
		row, ok, err := it.left.Next(ctx)
		if err != nil || !ok {
			return nil, false, err
		}
		it.current = row
		k := string(relational.IndexKeyFromRow(row, it.lCols))
		it.pending = it.table[k]
	}
}

func (it *joinIter) Close() {
	it.left.Close()
	it.right.Close()
}

// Collect drains an iterator into a slice and closes it.
func Collect(ctx env.Ctx, it Iterator) ([]relational.Row, error) {
	defer it.Close()
	var out []relational.Row
	for {
		row, ok, err := it.Next(ctx)
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, row)
	}
}
