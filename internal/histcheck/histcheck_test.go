package histcheck_test

import (
	"strings"
	"testing"

	"tell/internal/core"
	"tell/internal/histcheck"
	"tell/internal/mvcc"
	"tell/internal/relational"
)

func snap(base uint64, extra ...uint64) *mvcc.Snapshot {
	s := &mvcc.Snapshot{Base: base}
	for _, tid := range extra {
		s.Add(tid)
	}
	return s
}

func row(v int64) relational.Row { return relational.Row{relational.I64(v)} }

func write(key string, base uint64, v int64) core.WriteRec {
	return core.WriteRec{Key: []byte(key), BaseVersion: base, Row: row(v)}
}

func insert(key string, v int64) core.WriteRec {
	return core.WriteRec{Key: []byte(key), Row: row(v), Insert: true}
}

// TestCleanHistory: a straightforward serial history raises nothing.
func TestCleanHistory(t *testing.T) {
	h := histcheck.New()
	h.RecBegin(1, snap(0))
	h.RecCommit(1, []core.WriteRec{insert("k", 1)})
	h.RecBegin(2, snap(1))
	h.RecRead(2, []byte("k"), 1, true)
	h.RecRead(2, []byte("k"), 1, true) // repeatable
	h.RecCommit(2, []core.WriteRec{write("k", 1, 2)})
	h.RecBegin(3, snap(2))
	h.RecRead(3, []byte("k"), 2, true)
	h.RecAbort(3)
	rep := h.Check()
	if !rep.Ok() {
		t.Fatalf("clean history flagged: %v", rep)
	}
	if rep.ReadsChecked != 3 || rep.WritesChecked != 2 {
		t.Fatalf("checked %d reads %d writes", rep.ReadsChecked, rep.WritesChecked)
	}
	begun, committed, aborted, reads := h.Stats()
	if begun != 3 || committed != 2 || aborted != 1 || reads != 3 {
		t.Fatalf("stats: %d %d %d %d", begun, committed, aborted, reads)
	}
}

// TestLostUpdateDetected: two committed transactions replace the same
// version of the same key — first-committer-wins failed.
func TestLostUpdateDetected(t *testing.T) {
	h := histcheck.New()
	h.RecBegin(2, snap(1))
	h.RecBegin(3, snap(1))
	h.RecCommit(2, []core.WriteRec{write("acct", 1, 90)})
	h.RecCommit(3, []core.WriteRec{write("acct", 1, 110)}) // same base 1
	rep := h.Check()
	if rep.ByKind(histcheck.LostUpdate) != 1 {
		t.Fatalf("want 1 lost update, got %v", rep)
	}
	a := rep.Anomalies[0]
	if len(a.Txns) != 2 || a.Txns[0] != 2 || a.Txns[1] != 3 {
		t.Fatalf("txns: %v", a.Txns)
	}
	if !strings.Contains(rep.String(), "lost-update") {
		t.Fatalf("report: %s", rep)
	}
}

// TestDistinctBasesAreFine: sequential writers replacing different
// versions are not lost updates.
func TestDistinctBasesAreFine(t *testing.T) {
	h := histcheck.New()
	h.RecCommit(2, []core.WriteRec{write("k", 1, 10)})
	h.RecCommit(3, []core.WriteRec{write("k", 2, 20)})
	h.RecCommit(5, []core.WriteRec{write("k", 3, 30)})
	if rep := h.Check(); !rep.Ok() {
		t.Fatalf("serial chain flagged: %v", rep)
	}
}

// TestAbortedReadDetected (G1a).
func TestAbortedReadDetected(t *testing.T) {
	h := histcheck.New()
	h.RecBegin(2, snap(1))
	h.RecAbort(2)
	h.RecBegin(3, snap(1, 2))
	h.RecRead(3, []byte("k"), 2, true) // read the aborted writer's version
	h.RecCommit(3, nil)
	rep := h.Check()
	if rep.ByKind(histcheck.AbortedRead) != 1 {
		t.Fatalf("want G1a, got %v", rep)
	}
}

// TestDirtyReadDetected (G1b): the writer never finished.
func TestDirtyReadDetected(t *testing.T) {
	h := histcheck.New()
	h.RecBegin(2, snap(1)) // never commits or aborts
	h.RecBegin(3, snap(1))
	h.RecRead(3, []byte("k"), 2, true)
	h.RecCommit(3, nil)
	rep := h.Check()
	if rep.ByKind(histcheck.DirtyRead) != 1 {
		t.Fatalf("want G1b, got %v", rep)
	}
}

// TestSnapshotViolationDetected: a read resolved to a committed version
// outside the reader's snapshot.
func TestSnapshotViolationDetected(t *testing.T) {
	h := histcheck.New()
	h.RecBegin(5, snap(3)) // snapshot = {1,2,3}
	h.RecBegin(4, snap(3))
	h.RecCommit(4, []core.WriteRec{write("k", 3, 9)})
	h.RecRead(5, []byte("k"), 4, true) // 4 ∉ snap(3)
	h.RecCommit(5, nil)
	rep := h.Check()
	if rep.ByKind(histcheck.SnapshotViolation) != 1 {
		t.Fatalf("want snapshot violation, got %v", rep)
	}
	// The same read is legal when the snapshot includes 4 via the bitset.
	h2 := histcheck.New()
	h2.RecBegin(5, snap(3, 4))
	h2.RecBegin(4, snap(3))
	h2.RecCommit(4, []core.WriteRec{write("k", 3, 9)})
	h2.RecRead(5, []byte("k"), 4, true)
	h2.RecCommit(5, nil)
	if rep := h2.Check(); !rep.Ok() {
		t.Fatalf("bitset member flagged: %v", rep)
	}
}

// TestNonRepeatableReadDetected: one transaction saw two versions.
func TestNonRepeatableReadDetected(t *testing.T) {
	h := histcheck.New()
	h.RecBegin(3, snap(2))
	h.RecRead(3, []byte("k"), 1, true)
	h.RecRead(3, []byte("k"), 2, true)
	h.RecCommit(3, nil)
	rep := h.Check()
	if rep.ByKind(histcheck.NonRepeatableRead) != 1 {
		t.Fatalf("want non-repeatable read, got %v", rep)
	}
}

// TestDuplicateInsertDetected.
func TestDuplicateInsertDetected(t *testing.T) {
	h := histcheck.New()
	h.RecCommit(2, []core.WriteRec{insert("k", 1)})
	h.RecCommit(3, []core.WriteRec{insert("k", 2)})
	rep := h.Check()
	if rep.ByKind(histcheck.DuplicateInsert) != 1 {
		t.Fatalf("want duplicate insert, got %v", rep)
	}
}

// TestCommittedState: highest committed tid wins per key; deletes remove;
// uncommitted and aborted writes never surface.
func TestCommittedState(t *testing.T) {
	h := histcheck.New()
	h.RecCommit(2, []core.WriteRec{insert("a", 10), insert("b", 20)})
	h.RecCommit(4, []core.WriteRec{write("a", 2, 11)})
	h.RecCommit(3, []core.WriteRec{write("a", 2, 99)}) // lower tid: loses to 4
	h.RecCommit(5, []core.WriteRec{{Key: []byte("b"), BaseVersion: 2, Row: nil}}) // delete b
	h.RecBegin(6, snap(5))
	h.RecAbort(6)
	state := h.CommittedState()
	if len(state) != 1 {
		t.Fatalf("state: %v", state)
	}
	if got := state["a"][0].I; got != 11 {
		t.Fatalf("a = %d, want 11", got)
	}
	if _, ok := state["b"]; ok {
		t.Fatal("deleted key resurfaced")
	}
}
