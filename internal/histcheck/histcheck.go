// Package histcheck records the transaction histories a Tell deployment
// produces and checks them offline for snapshot-isolation anomalies. The
// recorder (History) implements core.TxnRecorder; install it on every PN
// with pn.SetRecorder(h), run a workload — chaotic or not — and call Check.
//
// The checker is history-theoretic: it needs no access to the engine, only
// the recorded begins (with snapshot descriptors), reads (with the version
// each resolved to), commits (with write sets and the version each write
// replaced) and aborts. On top of the stock MVCC invariants this catches:
//
//   - lost updates: two committed transactions overwrote the same version
//     of the same key (first-committer-wins was not enforced);
//   - G1a aborted reads: a committed transaction read a version written by
//     a transaction that aborted;
//   - dirty/intermediate reads (G1b): a read resolved to a version whose
//     writer never committed;
//   - snapshot violations: a read resolved to a version outside the
//     reader's snapshot (data committed after the snapshot was taken);
//   - non-repeatable snapshot reads: one transaction read the same key
//     twice and saw different versions.
//
// CommittedState replays the committed history into final per-key rows, so
// tests can additionally verify conservation invariants (e.g. bank totals)
// and compare against what the store actually contains after the run.
package histcheck

import (
	"fmt"
	"sort"
	"sync"

	"tell/internal/core"
	"tell/internal/det"
	"tell/internal/mvcc"
	"tell/internal/relational"
)

// AnomalyKind classifies a detected violation.
type AnomalyKind int

const (
	// LostUpdate: two committed transactions replaced the same version
	// of the same key.
	LostUpdate AnomalyKind = iota
	// AbortedRead (G1a): a read resolved to a version whose writer
	// aborted.
	AbortedRead
	// DirtyRead (G1b): a read resolved to a version whose writer never
	// committed (and is not known to have aborted).
	DirtyRead
	// SnapshotViolation: a read resolved to a version outside the
	// reader's snapshot.
	SnapshotViolation
	// NonRepeatableRead: one transaction saw two different versions of
	// the same key.
	NonRepeatableRead
	// DuplicateInsert: two committed transactions inserted the same key.
	DuplicateInsert
)

func (k AnomalyKind) String() string {
	switch k {
	case LostUpdate:
		return "lost-update"
	case AbortedRead:
		return "aborted-read(G1a)"
	case DirtyRead:
		return "dirty-read(G1b)"
	case SnapshotViolation:
		return "snapshot-violation"
	case NonRepeatableRead:
		return "non-repeatable-read"
	case DuplicateInsert:
		return "duplicate-insert"
	}
	return "?"
}

// Anomaly is one detected isolation violation.
type Anomaly struct {
	Kind AnomalyKind
	// Key is the record key involved.
	Key string
	// Txns are the transaction ids involved (reader first for read
	// anomalies; both writers for lost updates).
	Txns []uint64
	// Detail is a human-readable explanation.
	Detail string
}

func (a Anomaly) String() string {
	return fmt.Sprintf("%v key=%x txns=%v: %s", a.Kind, a.Key, a.Txns, a.Detail)
}

// readRec is one recorded read.
type readRec struct {
	tid   uint64
	key   string
	vtid  uint64
	found bool
}

// History is a low-overhead recorder of the events core.TxnRecorder
// delivers. One History can serve several PNs; it is safe for concurrent
// use (under the simulator recording is effectively serialized anyway).
type History struct {
	mu     sync.Mutex
	snaps  map[uint64]*mvcc.Snapshot
	status map[uint64]byte // 'c' committed, 'a' aborted; absent = unfinished
	reads  []readRec
	writes map[uint64][]core.WriteRec
}

// New returns an empty history.
func New() *History {
	return &History{
		snaps:  make(map[uint64]*mvcc.Snapshot),
		status: make(map[uint64]byte),
		writes: make(map[uint64][]core.WriteRec),
	}
}

// RecBegin implements core.TxnRecorder.
func (h *History) RecBegin(tid uint64, snap *mvcc.Snapshot) {
	h.mu.Lock()
	h.snaps[tid] = snap
	h.mu.Unlock()
}

// RecRead implements core.TxnRecorder.
func (h *History) RecRead(tid uint64, key []byte, versionTID uint64, found bool) {
	h.mu.Lock()
	h.reads = append(h.reads, readRec{tid: tid, key: string(key), vtid: versionTID, found: found})
	h.mu.Unlock()
}

// RecCommit implements core.TxnRecorder. Rows are captured by shallow copy;
// workloads must not mutate a row after handing it to Update/Insert.
func (h *History) RecCommit(tid uint64, writes []core.WriteRec) {
	h.mu.Lock()
	h.status[tid] = 'c'
	if len(writes) > 0 {
		ws := make([]core.WriteRec, len(writes))
		copy(ws, writes)
		for i := range ws {
			ws[i].Row = append(relational.Row(nil), ws[i].Row...)
			if writes[i].Row == nil {
				ws[i].Row = nil
			}
		}
		h.writes[tid] = ws
	}
	h.mu.Unlock()
}

// RecAbort implements core.TxnRecorder.
func (h *History) RecAbort(tid uint64) {
	h.mu.Lock()
	h.status[tid] = 'a'
	h.mu.Unlock()
}

// Stats returns (transactions begun, committed, aborted, reads recorded).
func (h *History) Stats() (begun, committed, aborted, reads int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, s := range h.status {
		if s == 'c' {
			committed++
		} else {
			aborted++
		}
	}
	return len(h.snaps), committed, aborted, len(h.reads)
}

// Report is the checker's verdict.
type Report struct {
	Anomalies []Anomaly
	// Checked counts how many reads and committed writes were examined.
	ReadsChecked, WritesChecked int
}

// Ok reports a clean history.
func (r *Report) Ok() bool { return len(r.Anomalies) == 0 }

// ByKind counts anomalies of one kind.
func (r *Report) ByKind(k AnomalyKind) int {
	n := 0
	for _, a := range r.Anomalies {
		if a.Kind == k {
			n++
		}
	}
	return n
}

func (r *Report) String() string {
	if r.Ok() {
		return fmt.Sprintf("histcheck: clean (%d reads, %d writes checked)", r.ReadsChecked, r.WritesChecked)
	}
	s := fmt.Sprintf("histcheck: %d anomalies (%d reads, %d writes checked)", len(r.Anomalies), r.ReadsChecked, r.WritesChecked)
	max := len(r.Anomalies)
	if max > 10 {
		max = 10
	}
	for _, a := range r.Anomalies[:max] {
		s += "\n  " + a.String()
	}
	if len(r.Anomalies) > max {
		s += fmt.Sprintf("\n  ... and %d more", len(r.Anomalies)-max)
	}
	return s
}

// Check analyses the recorded history. It may be called while transactions
// are still running, but the intended use is after the workload has
// drained: still-running transactions are treated as never-committed, so a
// read of their versions counts as a dirty read.
func (h *History) Check() *Report {
	h.mu.Lock()
	defer h.mu.Unlock()
	rep := &Report{}

	// Read anomalies.
	type seenRead struct {
		vtid uint64
		set  bool
	}
	firstRead := make(map[string]seenRead) // per (tid,key)
	for _, rd := range h.reads {
		rep.ReadsChecked++
		if rd.vtid != 0 && rd.vtid != rd.tid {
			switch h.status[rd.vtid] {
			case 'c':
				// Committed writer: must be inside the reader's snapshot.
				if snap, ok := h.snaps[rd.tid]; ok && !snap.Contains(rd.vtid) {
					rep.add(Anomaly{
						Kind: SnapshotViolation, Key: rd.key,
						Txns:   []uint64{rd.tid, rd.vtid},
						Detail: fmt.Sprintf("txn %d read version %d which is outside its snapshot %v", rd.tid, rd.vtid, snap),
					})
				}
			case 'a':
				rep.add(Anomaly{
					Kind: AbortedRead, Key: rd.key,
					Txns:   []uint64{rd.tid, rd.vtid},
					Detail: fmt.Sprintf("txn %d read version %d written by an aborted transaction", rd.tid, rd.vtid),
				})
			default:
				rep.add(Anomaly{
					Kind: DirtyRead, Key: rd.key,
					Txns:   []uint64{rd.tid, rd.vtid},
					Detail: fmt.Sprintf("txn %d read version %d whose writer never committed", rd.tid, rd.vtid),
				})
			}
		}
		// Repeatability within one transaction.
		rk := fmt.Sprintf("%d\x00%s", rd.tid, rd.key)
		if prev, ok := firstRead[rk]; ok {
			if prev.vtid != rd.vtid {
				rep.add(Anomaly{
					Kind: NonRepeatableRead, Key: rd.key,
					Txns:   []uint64{rd.tid},
					Detail: fmt.Sprintf("txn %d first saw version %d, then %d", rd.tid, prev.vtid, rd.vtid),
				})
			}
		} else {
			firstRead[rk] = seenRead{vtid: rd.vtid, set: true}
		}
	}

	// Write anomalies: for every key, committed writes grouped by the
	// version they replaced. Two committed writers replacing the same
	// version means first-committer-wins failed (lost update). Two
	// committed inserts of the same key are a duplicate insert.
	type writer struct{ tid, base uint64 }
	byKey := make(map[string][]writer)
	inserts := make(map[string][]uint64)
	// Walk transactions in tid order so the per-key writer and insert
	// lists (and through them the anomaly report) are deterministic.
	for _, tid := range det.Keys(h.writes) {
		ws := h.writes[tid]
		if h.status[tid] != 'c' {
			continue
		}
		for _, w := range ws {
			rep.WritesChecked++
			k := string(w.Key)
			if w.Insert {
				inserts[k] = append(inserts[k], tid)
				continue
			}
			byKey[k] = append(byKey[k], writer{tid: tid, base: w.BaseVersion})
		}
	}
	for _, k := range det.Keys(byKey) {
		ws := byKey[k]
		sort.Slice(ws, func(i, j int) bool { return ws[i].tid < ws[j].tid })
		byBase := make(map[uint64]uint64) // base → first committed tid seen
		for _, w := range ws {
			if prev, ok := byBase[w.base]; ok {
				rep.add(Anomaly{
					Kind: LostUpdate, Key: k,
					Txns:   []uint64{prev, w.tid},
					Detail: fmt.Sprintf("txns %d and %d both committed a write replacing version %d", prev, w.tid, w.base),
				})
				continue
			}
			byBase[w.base] = w.tid
		}
	}
	for _, k := range det.Keys(inserts) {
		tids := inserts[k]
		if len(tids) > 1 {
			sort.Slice(tids, func(i, j int) bool { return tids[i] < tids[j] })
			rep.add(Anomaly{
				Kind: DuplicateInsert, Key: k,
				Txns:   tids,
				Detail: fmt.Sprintf("%d committed inserts of the same key", len(tids)),
			})
		}
	}
	return rep
}

func (r *Report) add(a Anomaly) { r.Anomalies = append(r.Anomalies, a) }

// CommittedState replays the committed history into the final row of every
// key: per key, the write of the highest committed tid wins (versions are
// totally ordered by tid, matching the MVCC record layout). Deleted keys
// are absent. Tests use it for conservation invariants and to cross-check
// the store's actual contents.
func (h *History) CommittedState() map[string]relational.Row {
	h.mu.Lock()
	defer h.mu.Unlock()
	winner := make(map[string]uint64)
	for tid, ws := range h.writes {
		if h.status[tid] != 'c' {
			continue
		}
		for _, w := range ws {
			k := string(w.Key)
			if prev, ok := winner[k]; !ok || tid > prev {
				winner[k] = tid
			}
		}
	}
	state := make(map[string]relational.Row)
	for k, tid := range winner {
		if row := rowOf(h.writes[tid], k); row != nil {
			state[k] = row
		}
	}
	return state
}

func rowOf(ws []core.WriteRec, key string) relational.Row {
	for i := len(ws) - 1; i >= 0; i-- {
		if string(ws[i].Key) == key {
			return ws[i].Row
		}
	}
	return nil
}
