package mvcc

import (
	"fmt"

	"tell/internal/wire"
)

// SnapshotDelta is the difference between two snapshot descriptors taken
// from the same monotonically advancing source (a commit manager's committed
// set, §4.2). Descriptors evolve by advancing the base and flipping a few
// bits near it, so the delta — the base advance plus sparse XOR patches of
// the bitset — is much smaller than the full descriptor, which every start()
// would otherwise retransmit.
type SnapshotDelta struct {
	// Advance is how far the base moved: new.Base - old.Base.
	Advance uint64
	// Patches XOR the rebased old bitset into the new one. Indices are
	// word positions relative to the new base, ascending.
	Patches []DeltaPatch
}

// DeltaPatch corrects one 64-bit word of the rebased bitset.
type DeltaPatch struct {
	Index uint64 // word index: covers tids newBase+1+64·Index .. newBase+64·(Index+1)
	Word  uint64 // XOR mask
}

// maxDeltaWords bounds the bitset a decoded delta may address, so corrupt
// input cannot force a huge allocation. 1<<16 words cover 4M in-flight tids
// above the base — far beyond any real descriptor.
const maxDeltaWords = 1 << 16

// rebaseBits shifts a bitset down by shift positions: the result anchored at
// Base+shift covers the same members above that new base. Members that fall
// at or below the new base drop out (they become implicit). Trailing zero
// words are trimmed.
func rebaseBits(bits []uint64, shift uint64) []uint64 {
	ws := shift / 64
	bs := uint(shift % 64)
	if ws >= uint64(len(bits)) {
		return nil
	}
	out := make([]uint64, 0, uint64(len(bits))-ws)
	for i := int(ws); i < len(bits); i++ {
		w := bits[i] >> bs
		if bs > 0 && i+1 < len(bits) {
			w |= bits[i+1] << (64 - bs)
		}
		out = append(out, w)
	}
	for len(out) > 0 && out[len(out)-1] == 0 {
		out = out[:len(out)-1]
	}
	return out
}

// Diff computes the delta that turns old into new. It returns nil when
// new.Base has moved backwards (the caller must fall back to sending the
// full descriptor — bases only regress across a fail-over to a manager with
// stale state).
func Diff(old, new *Snapshot) *SnapshotDelta {
	if new.Base < old.Base {
		return nil
	}
	shift := new.Base - old.Base
	ob := rebaseBits(old.bits, shift)
	d := &SnapshotDelta{Advance: shift}
	n := len(ob)
	if len(new.bits) > n {
		n = len(new.bits)
	}
	for i := 0; i < n; i++ {
		var o, nw uint64
		if i < len(ob) {
			o = ob[i]
		}
		if i < len(new.bits) {
			nw = new.bits[i]
		}
		if x := o ^ nw; x != 0 {
			d.Patches = append(d.Patches, DeltaPatch{Index: uint64(i), Word: x})
		}
	}
	return d
}

// Apply reconstructs the new snapshot from old and the delta. old is not
// modified. It fails on deltas addressing an implausibly large bitset
// (corrupt or hostile input).
func (d *SnapshotDelta) Apply(old *Snapshot) (*Snapshot, error) {
	out := &Snapshot{Base: old.Base + d.Advance, bits: rebaseBits(old.bits, d.Advance)}
	for _, p := range d.Patches {
		if p.Index >= maxDeltaWords {
			return nil, fmt.Errorf("mvcc: delta patch index %d out of range", p.Index)
		}
		for uint64(len(out.bits)) <= p.Index {
			out.bits = append(out.bits, 0)
		}
		out.bits[p.Index] ^= p.Word
	}
	for len(out.bits) > 0 && out.bits[len(out.bits)-1] == 0 {
		out.bits = out.bits[:len(out.bits)-1]
	}
	return out, nil
}

// uvarintLen is the encoded size of v as a base-128 varint.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// EncodedSize is the exact wire size of the delta, used to decide whether
// the delta actually beats retransmitting the full descriptor. (It must not
// over-estimate: typical descriptors are small, so a pessimistic bound
// would suppress the delta exactly where shipping it is cheapest.)
func (d *SnapshotDelta) EncodedSize() int {
	n := uvarintLen(d.Advance) + uvarintLen(uint64(len(d.Patches)))
	for i := range d.Patches {
		n += uvarintLen(d.Patches[i].Index) + 8
	}
	return n
}

// EncodeTo appends the delta to w.
func (d *SnapshotDelta) EncodeTo(w *wire.Writer) {
	w.Uvarint(d.Advance)
	w.Uvarint(uint64(len(d.Patches)))
	for i := range d.Patches {
		w.Uvarint(d.Patches[i].Index)
		w.U64(d.Patches[i].Word)
	}
}

// DecodeSnapshotDeltaFrom reads a delta from r.
func DecodeSnapshotDeltaFrom(r *wire.Reader) (*SnapshotDelta, error) {
	d := &SnapshotDelta{Advance: r.Uvarint()}
	n := r.Count(9)
	for i := 0; i < n; i++ {
		d.Patches = append(d.Patches, DeltaPatch{Index: r.Uvarint(), Word: r.U64()})
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return d, nil
}
