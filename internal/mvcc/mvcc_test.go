package mvcc

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"tell/internal/wire"
)

func TestSnapshotBaseMembership(t *testing.T) {
	s := NewSnapshot(10)
	for tid := uint64(0); tid <= 10; tid++ {
		if !s.Contains(tid) {
			t.Fatalf("tid %d should be visible", tid)
		}
	}
	if s.Contains(11) {
		t.Fatal("tid 11 should not be visible")
	}
}

func TestSnapshotAddAndContains(t *testing.T) {
	s := NewSnapshot(10)
	s.Add(12)
	s.Add(75) // crosses a word boundary
	s.Add(200)
	if !s.Contains(12) || !s.Contains(75) || !s.Contains(200) {
		t.Fatal("added tids missing")
	}
	if s.Contains(11) || s.Contains(13) || s.Contains(76) {
		t.Fatal("false positives")
	}
	if s.Max() != 200 {
		t.Fatalf("Max = %d", s.Max())
	}
	s.Add(5) // below base: no-op
	if !s.Contains(5) {
		t.Fatal("tid below base must be contained")
	}
}

func TestSnapshotNormalize(t *testing.T) {
	s := NewSnapshot(10)
	s.Add(11)
	s.Add(12)
	s.Add(14)
	s.Normalize()
	if s.Base != 12 {
		t.Fatalf("base = %d, want 12", s.Base)
	}
	if !s.Contains(14) || s.Contains(13) {
		t.Fatal("membership changed by Normalize")
	}
	if s.Max() != 14 {
		t.Fatalf("Max = %d", s.Max())
	}
}

func TestSnapshotSubset(t *testing.T) {
	a := NewSnapshot(10)
	b := NewSnapshot(10)
	if !a.SubsetOf(b) || !b.SubsetOf(a) {
		t.Fatal("equal sets must be mutual subsets")
	}
	b.Add(12)
	if !a.SubsetOf(b) {
		t.Fatal("a ⊆ b after b grew")
	}
	if b.SubsetOf(a) {
		t.Fatal("b ⊄ a")
	}
	// Higher base vs bitset members.
	c := NewSnapshot(12) // {≤12}
	d := NewSnapshot(10)
	d.Add(11)
	d.Add(12) // {≤10, 11, 12} — same set
	if !c.SubsetOf(d) || !d.SubsetOf(c) || !c.Equal(d) {
		t.Fatal("equivalent representations must compare equal")
	}
	e := NewSnapshot(10)
	e.Add(12) // missing 11
	if c.SubsetOf(e) {
		t.Fatal("c ⊄ e: 11 is missing from e")
	}
	if !e.SubsetOf(c) {
		t.Fatal("e ⊆ c")
	}
}

func TestSnapshotCodec(t *testing.T) {
	s := NewSnapshot(1000)
	s.Add(1005)
	s.Add(1100)
	w := wire.NewWriter(0)
	s.EncodeTo(w)
	r := wire.NewReader(w.Bytes())
	got, err := DecodeSnapshotFrom(r)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(s) {
		t.Fatalf("decoded %v != %v", got, s)
	}
}

// TestSnapshotPropertyVsMapSet compares the bitset implementation against a
// plain map-based set under random operations.
func TestSnapshotPropertyVsMapSet(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		base := uint64(rng.Intn(1000))
		s := NewSnapshot(base)
		ref := make(map[uint64]bool)
		for i := 0; i < 200; i++ {
			tid := base + uint64(rng.Intn(500))
			s.Add(tid)
			if tid > base {
				ref[tid] = true
			}
		}
		for tid := uint64(0); tid < base+600; tid++ {
			want := tid <= base || ref[tid]
			if s.Contains(tid) != want {
				return false
			}
		}
		// Normalize must preserve membership.
		n := s.Clone()
		n.Normalize()
		for tid := uint64(0); tid < base+600; tid++ {
			if s.Contains(tid) != n.Contains(tid) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRecordCodecRoundTrip(t *testing.T) {
	rec := &Record{Versions: []Version{
		{TID: 30, Data: []byte("v30")},
		{TID: 20, Deleted: true},
		{TID: 10, Data: []byte("v10")},
	}}
	got, err := Decode(rec.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Versions) != 3 {
		t.Fatalf("versions = %d", len(got.Versions))
	}
	if got.Versions[0].TID != 30 || string(got.Versions[0].Data) != "v30" {
		t.Fatalf("v0 = %+v", got.Versions[0])
	}
	if !got.Versions[1].Deleted {
		t.Fatal("delete marker lost")
	}
}

func TestRecordVisible(t *testing.T) {
	rec := &Record{Versions: []Version{
		{TID: 30, Data: []byte("v30")},
		{TID: 10, Data: []byte("v10")},
	}}
	// Snapshot sees only tid 10.
	s := NewSnapshot(15)
	v, ok := rec.Visible(s)
	if !ok || v.TID != 10 {
		t.Fatalf("visible = %+v %v", v, ok)
	}
	// Snapshot sees both: highest wins.
	s = NewSnapshot(30)
	v, ok = rec.Visible(s)
	if !ok || v.TID != 30 {
		t.Fatalf("visible = %+v %v", v, ok)
	}
	// Snapshot predates all versions.
	s = NewSnapshot(5)
	if _, ok := rec.Visible(s); ok {
		t.Fatal("nothing should be visible")
	}
	// Bitset visibility: snapshot {≤15, 30}.
	s = NewSnapshot(15)
	s.Add(30)
	v, _ = rec.Visible(s)
	if v.TID != 30 {
		t.Fatalf("visible = %+v", v)
	}
}

func TestRecordVisibleDeleteMarker(t *testing.T) {
	rec := &Record{Versions: []Version{
		{TID: 20, Deleted: true},
		{TID: 10, Data: []byte("v10")},
	}}
	if _, ok := rec.Visible(NewSnapshot(25)); ok {
		t.Fatal("deleted row visible")
	}
	if v, ok := rec.Visible(NewSnapshot(15)); !ok || v.TID != 10 {
		t.Fatal("old version should be visible below the delete")
	}
}

func TestWithVersionKeepsApplyOrder(t *testing.T) {
	// Versions are ordered by application, newest first — NOT by tid: with
	// several commit managers a later committer can carry a smaller tid.
	rec := NewRecord(10, []byte("a"))
	rec = rec.WithVersion(30, false, []byte("c"))
	rec = rec.WithVersion(20, false, []byte("b")) // smaller tid, applied last
	tids := []uint64{rec.Versions[0].TID, rec.Versions[1].TID, rec.Versions[2].TID}
	if tids[0] != 20 || tids[1] != 30 || tids[2] != 10 {
		t.Fatalf("order = %v", tids)
	}
	// Replacing an existing version keeps one copy in place.
	rec = rec.WithVersion(30, false, []byte("c2"))
	if len(rec.Versions) != 3 || rec.Versions[1].TID != 30 {
		t.Fatalf("rec = %v", rec)
	}
	v, _ := rec.Get(30)
	if string(v.Data) != "c2" {
		t.Fatalf("v30 = %q", v.Data)
	}
}

func TestWithoutVersion(t *testing.T) {
	rec := NewRecord(10, []byte("a")).WithVersion(20, false, []byte("b"))
	rec, nonEmpty := rec.WithoutVersion(20)
	if !nonEmpty || len(rec.Versions) != 1 || rec.Versions[0].TID != 10 {
		t.Fatalf("rollback: %+v", rec)
	}
	rec, nonEmpty = rec.WithoutVersion(10)
	if nonEmpty {
		t.Fatal("record should be empty")
	}
}

func TestGCRules(t *testing.T) {
	rec := &Record{Versions: []Version{
		{TID: 40, Data: []byte("d")},
		{TID: 30, Data: []byte("c")},
		{TID: 20, Data: []byte("b")},
		{TID: 10, Data: []byte("a")},
	}}
	// lav=35: C={30,20,10}, G={20,10}. Versions 40 and 30 survive.
	pruned, changed, empty := rec.GC(35)
	if !changed || empty {
		t.Fatalf("changed=%v empty=%v", changed, empty)
	}
	if len(pruned.Versions) != 2 || pruned.Versions[0].TID != 40 || pruned.Versions[1].TID != 30 {
		t.Fatalf("pruned = %v", pruned)
	}
	// lav=5: nothing collectable.
	if _, changed, _ := rec.GC(5); changed {
		t.Fatal("nothing should change below all versions")
	}
	// max(C) is never collected even when all versions qualify.
	pruned, _, _ = rec.GC(100)
	if len(pruned.Versions) != 1 || pruned.Versions[0].TID != 40 {
		t.Fatalf("pruned = %v", pruned)
	}
}

func TestGCEmptyOnDeadRecord(t *testing.T) {
	rec := &Record{Versions: []Version{
		{TID: 20, Deleted: true},
		{TID: 10, Data: []byte("a")},
	}}
	pruned, changed, empty := rec.GC(50)
	if !changed || !empty {
		t.Fatalf("changed=%v empty=%v pruned=%v", changed, empty, pruned)
	}
	// But not while the delete version is above the lav.
	if _, _, empty := rec.GC(15); empty {
		t.Fatal("record must survive while old versions are readable")
	}
}

// TestRecordPropertyRoundTripAndVisibility fuzzes version sets through the
// codec and checks Visible against a reference implementation.
func TestRecordPropertyRoundTripAndVisibility(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// Distinct random tids.
		tidSet := make(map[uint64]bool)
		for len(tidSet) < 8 {
			tidSet[uint64(rng.Intn(100)+1)] = true
		}
		var tids []uint64
		for tid := range tidSet {
			tids = append(tids, tid)
		}
		sort.Slice(tids, func(i, j int) bool { return tids[i] > tids[j] })
		rec := &Record{}
		for _, tid := range tids {
			rec.Versions = append(rec.Versions, Version{
				TID:     tid,
				Deleted: rng.Intn(5) == 0,
				Data:    []byte{byte(tid)},
			})
		}
		got, err := Decode(rec.Encode())
		if err != nil || len(got.Versions) != len(rec.Versions) {
			return false
		}
		for i := range rec.Versions {
			if got.Versions[i].TID != rec.Versions[i].TID ||
				got.Versions[i].Deleted != rec.Versions[i].Deleted ||
				!bytes.Equal(got.Versions[i].Data, rec.Versions[i].Data) {
				return false
			}
		}
		// Visibility agrees with a linear reference.
		base := uint64(rng.Intn(120))
		snap := NewSnapshot(base)
		var want *Version
		for i := range rec.Versions {
			if rec.Versions[i].TID <= base {
				want = &rec.Versions[i]
				break
			}
		}
		v, ok := rec.Visible(snap)
		if want == nil || want.Deleted {
			return !ok
		}
		return ok && v.TID == want.TID
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestGCPropertyNeverLosesVisibleVersions: after GC with lav, any snapshot
// at or above lav reads the same version as before.
func TestGCPropertyNeverLosesVisibleVersions(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rec := &Record{}
		used := make(map[uint64]bool)
		for i := 0; i < 6; i++ {
			tid := uint64(rng.Intn(50) + 1)
			if used[tid] {
				continue
			}
			used[tid] = true
			rec = rec.WithVersion(tid, false, []byte{byte(tid)})
		}
		if len(rec.Versions) == 0 {
			return true
		}
		lav := uint64(rng.Intn(60))
		pruned, _, empty := rec.GC(lav)
		if empty {
			return false // no delete markers here, must never empty
		}
		for base := lav; base < 60; base++ {
			snap := NewSnapshot(base)
			v1, ok1 := rec.Visible(snap)
			v2, ok2 := pruned.Visible(snap)
			if ok1 != ok2 {
				return false
			}
			if ok1 && v1.TID != v2.TID {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotUnion(t *testing.T) {
	a := NewSnapshot(10)
	a.Add(14)
	b := NewSnapshot(12)
	b.Add(20)
	u := Union(a, b)
	for _, tid := range []uint64{1, 10, 11, 12, 14, 20} {
		if !u.Contains(tid) {
			t.Fatalf("union missing %d", tid)
		}
	}
	if u.Contains(13) || u.Contains(15) || u.Contains(21) {
		t.Fatal("union has extras")
	}
	// Union is symmetric.
	if !Union(b, a).Equal(u) {
		t.Fatal("union not symmetric")
	}
	// Inputs unchanged.
	if a.Contains(20) || b.Contains(14) {
		t.Fatal("union mutated inputs")
	}
}
