// Package mvcc implements the multi-version concurrency-control primitives
// of the paper: snapshot descriptors (§4.2), the multi-version record
// encoding in which one key-value pair carries all versions of a row
// (§5.1), and the garbage-collection rules over version sets (§5.4).
package mvcc

import (
	"fmt"

	"tell/internal/wire"
)

// Snapshot is a snapshot descriptor: the set of transaction ids whose
// versions a transaction may read. It consists of a base version number b —
// all tids ≤ b belong to finished transactions — and a bitset N of
// committed tids > b ("b+1 is not committed; when b+1 commits, the base
// version is incremented until the next non-committed tid", §4.2).
//
// The same structure doubles as the paper's "version number set" used by
// the shared-buffer strategies (§5.5.2): a set of the form {x ≤ b} ∪ N.
type Snapshot struct {
	Base uint64
	// bits[i] covers tids Base+1+64i .. Base+64(i+1).
	bits []uint64
}

// NewSnapshot returns the set {x ≤ base}.
func NewSnapshot(base uint64) *Snapshot { return &Snapshot{Base: base} }

// Clone returns a deep copy.
func (s *Snapshot) Clone() *Snapshot {
	return &Snapshot{Base: s.Base, bits: append([]uint64(nil), s.bits...)}
}

// Add inserts tid into the set. tids at or below Base are already members.
func (s *Snapshot) Add(tid uint64) {
	if tid <= s.Base {
		return
	}
	idx := tid - s.Base - 1
	word := idx / 64
	for uint64(len(s.bits)) <= word {
		s.bits = append(s.bits, 0)
	}
	s.bits[word] |= 1 << (idx % 64)
}

// Contains reports set membership: the visibility test v ∈ V* of §4.2.
func (s *Snapshot) Contains(tid uint64) bool {
	if tid <= s.Base {
		return true
	}
	idx := tid - s.Base - 1
	word := idx / 64
	if word >= uint64(len(s.bits)) {
		return false
	}
	return s.bits[word]&(1<<(idx%64)) != 0
}

// Max returns the largest member (Base if the bitset is empty).
func (s *Snapshot) Max() uint64 {
	for w := len(s.bits) - 1; w >= 0; w-- {
		if s.bits[w] == 0 {
			continue
		}
		for b := 63; b >= 0; b-- {
			if s.bits[w]&(1<<uint(b)) != 0 {
				return s.Base + 1 + uint64(w*64+b)
			}
		}
	}
	return s.Base
}

// Members returns the members above Base in ascending order. (Members at
// or below Base are implicit.)
func (s *Snapshot) Members() []uint64 { return s.extra() }

// extra returns the members above Base in ascending order.
func (s *Snapshot) extra() []uint64 {
	var out []uint64
	for w := range s.bits {
		word := s.bits[w]
		for word != 0 {
			b := trailingZeros(word)
			out = append(out, s.Base+1+uint64(w*64+b))
			word &^= 1 << uint(b)
		}
	}
	return out
}

func trailingZeros(x uint64) int {
	n := 0
	for x&1 == 0 {
		x >>= 1
		n++
	}
	return n
}

// SubsetOf reports whether every member of s is a member of o — the
// buffer-validity test V_tx ⊆ B of §5.5.2.
func (s *Snapshot) SubsetOf(o *Snapshot) bool {
	// Members ≤ s.Base: covered iff ≤ o.Base or set in o's bitset.
	if s.Base > o.Base {
		for t := o.Base + 1; t <= s.Base; t++ {
			if !o.Contains(t) {
				return false
			}
		}
	}
	for _, t := range s.extra() {
		if !o.Contains(t) {
			return false
		}
	}
	return true
}

// Equal reports set equality.
func (s *Snapshot) Equal(o *Snapshot) bool {
	return s.SubsetOf(o) && o.SubsetOf(s)
}

// Union returns a new snapshot containing every member of a and b.
func Union(a, b *Snapshot) *Snapshot {
	lo, hi := a, b
	if lo.Base > hi.Base {
		lo, hi = hi, lo
	}
	out := hi.Clone()
	for _, t := range lo.extra() {
		out.Add(t)
	}
	return out
}

// Normalize advances Base across a dense committed prefix, shrinking the
// bitset. The set's membership is unchanged: {≤b} ∪ {b+1, b+3} becomes
// {≤b+1} ∪ {b+3}.
func (s *Snapshot) Normalize() {
	if !s.Contains(s.Base + 1) {
		return
	}
	members := s.extra()
	i := 0
	for i < len(members) && members[i] == s.Base+1 {
		s.Base++
		i++
	}
	s.bits = s.bits[:0]
	for _, t := range members[i:] {
		s.Add(t)
	}
}

// Size returns the encoded size class (for diagnostics; §4.2 notes the
// descriptor stays small even with many parallel transactions).
func (s *Snapshot) Size() int { return 8 + 8*len(s.bits) }

// EncodeTo appends the snapshot to w.
func (s *Snapshot) EncodeTo(w *wire.Writer) {
	w.Uvarint(s.Base)
	w.Uvarint(uint64(len(s.bits)))
	for _, word := range s.bits {
		w.U64(word)
	}
}

// DecodeSnapshotFrom reads a snapshot from r.
func DecodeSnapshotFrom(r *wire.Reader) (*Snapshot, error) {
	s := &Snapshot{Base: r.Uvarint()}
	n := r.Count(8)
	for i := 0; i < n; i++ {
		s.bits = append(s.bits, r.U64())
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return s, nil
}

// String renders the set for debugging.
func (s *Snapshot) String() string {
	return fmt.Sprintf("{≤%d ∪ %v}", s.Base, s.extra())
}
