package mvcc

import (
	"fmt"

	"tell/internal/wire"
)

// Version is one version of a record. TID is both the identifier of the
// writing transaction and the version number (§4.2: "tids and version
// numbers are synonyms"). A Deleted version marks the row as removed for
// snapshots that include it.
type Version struct {
	TID     uint64
	Deleted bool
	Data    []byte
}

// Record is the serialized set of all versions of a row, stored as a single
// key-value pair (§5.1): one read returns every version, and one atomic
// conditional write both applies an update and detects write-write
// conflicts. Versions are kept sorted by descending TID.
type Record struct {
	Versions []Version
}

// Decode parses a record value fetched from the store.
func Decode(b []byte) (*Record, error) {
	r := wire.NewReader(b)
	n := r.Count(2)
	rec := &Record{Versions: make([]Version, n)}
	for i := range rec.Versions {
		v := &rec.Versions[i]
		v.TID = r.Uvarint()
		v.Deleted = r.Bool()
		v.Data = r.BytesN()
	}
	if err := r.Close(); err != nil {
		return nil, err
	}
	return rec, nil
}

// Encode serializes the record for storage.
func (rec *Record) Encode() []byte {
	size := 4
	for i := range rec.Versions {
		size += 12 + len(rec.Versions[i].Data)
	}
	w := wire.NewWriter(size)
	w.Uvarint(uint64(len(rec.Versions)))
	for i := range rec.Versions {
		v := &rec.Versions[i]
		w.Uvarint(v.TID)
		w.Bool(v.Deleted)
		w.BytesN(v.Data)
	}
	return w.Bytes()
}

// NewRecord creates a record with a single initial version.
func NewRecord(tid uint64, data []byte) *Record {
	return &Record{Versions: []Version{{TID: tid, Data: data}}}
}

// Visible returns the version the snapshot may read: the version with the
// highest version number v ∈ V ∩ V* (§4.2). ok is false when no version is
// visible or the visible version is a delete marker.
func (rec *Record) Visible(snap *Snapshot) (v *Version, ok bool) {
	for i := range rec.Versions {
		if snap.Contains(rec.Versions[i].TID) {
			if rec.Versions[i].Deleted {
				return nil, false
			}
			return &rec.Versions[i], true
		}
	}
	return nil, false
}

// Latest returns the version with the highest TID.
func (rec *Record) Latest() *Version {
	if len(rec.Versions) == 0 {
		return nil
	}
	return &rec.Versions[0]
}

// Get returns the version with exactly the given tid.
func (rec *Record) Get(tid uint64) (*Version, bool) {
	for i := range rec.Versions {
		if rec.Versions[i].TID == tid {
			return &rec.Versions[i], true
		}
	}
	return nil, false
}

// WithVersion returns a copy of the record with version tid set to data,
// inserted in descending-TID position (replacing an existing tid version).
func (rec *Record) WithVersion(tid uint64, deleted bool, data []byte) *Record {
	out := &Record{Versions: make([]Version, 0, len(rec.Versions)+1)}
	inserted := false
	nv := Version{TID: tid, Deleted: deleted, Data: data}
	for _, v := range rec.Versions {
		switch {
		case v.TID == tid:
			continue // replaced
		case !inserted && v.TID < tid:
			out.Versions = append(out.Versions, nv)
			inserted = true
		}
		out.Versions = append(out.Versions, v)
	}
	if !inserted {
		out.Versions = append(out.Versions, nv)
	}
	return out
}

// WithoutVersion returns a copy with version tid removed (rollback of an
// aborted transaction, §4.3/4.4.1). The second result is false when the
// record then has no versions left and should be deleted from the store.
func (rec *Record) WithoutVersion(tid uint64) (*Record, bool) {
	out := &Record{Versions: make([]Version, 0, len(rec.Versions))}
	for _, v := range rec.Versions {
		if v.TID != tid {
			out.Versions = append(out.Versions, v)
		}
	}
	return out, len(out.Versions) > 0
}

// GC removes versions that no current or future transaction can read,
// given the lowest active version number (§5.4): with C = {x ∈ V : x ≤ lav},
// the collectable set is G = C \ {max(C)}. It returns the pruned record and
// whether anything was removed. If the sole surviving version is a delete
// marker that is itself ≤ lav, empty is true: the whole record (and its
// index entries) can be removed.
func (rec *Record) GC(lav uint64) (pruned *Record, changed, empty bool) {
	maxC := uint64(0)
	found := false
	for i := range rec.Versions {
		if rec.Versions[i].TID <= lav {
			if !found || rec.Versions[i].TID > maxC {
				maxC = rec.Versions[i].TID
				found = true
			}
		}
	}
	if !found {
		return rec, false, false
	}
	out := &Record{Versions: make([]Version, 0, len(rec.Versions))}
	for _, v := range rec.Versions {
		if v.TID <= lav && v.TID != maxC {
			changed = true
			continue
		}
		out.Versions = append(out.Versions, v)
	}
	if len(out.Versions) == 1 && out.Versions[0].Deleted && out.Versions[0].TID <= lav {
		return out, true, true
	}
	if !changed {
		return rec, false, false
	}
	return out, true, false
}

// String renders the record for debugging.
func (rec *Record) String() string {
	s := "["
	for i, v := range rec.Versions {
		if i > 0 {
			s += " "
		}
		if v.Deleted {
			s += fmt.Sprintf("%d:†", v.TID)
		} else {
			s += fmt.Sprintf("%d:%dB", v.TID, len(v.Data))
		}
	}
	return s + "]"
}
