package mvcc

import (
	"fmt"

	"tell/internal/wire"
)

// Version is one version of a record. TID is both the identifier of the
// writing transaction and the version number (§4.2: "tids and version
// numbers are synonyms"). A Deleted version marks the row as removed for
// snapshots that include it.
type Version struct {
	TID     uint64
	Deleted bool
	Data    []byte
}

// Record is the serialized set of all versions of a row, stored as a single
// key-value pair (§5.1): one read returns every version, and one atomic
// conditional write both applies an update and detects write-write
// conflicts. Versions are kept in apply order, newest first. Apply order is
// serialized by the storage node's LL/SC stamps and therefore equals commit
// order per key; with a single commit manager it coincides with descending
// TID, but with several managers handing out disjoint tid ranges a later
// committer can carry a smaller tid, so list position — not TID — is the
// version order.
type Record struct {
	Versions []Version
}

// Decode parses a record value fetched from the store.
func Decode(b []byte) (*Record, error) {
	r := wire.NewReader(b)
	n := r.Count(2)
	rec := &Record{Versions: make([]Version, n)}
	for i := range rec.Versions {
		v := &rec.Versions[i]
		v.TID = r.Uvarint()
		v.Deleted = r.Bool()
		v.Data = r.BytesN()
	}
	if err := r.Close(); err != nil {
		return nil, err
	}
	return rec, nil
}

// Encode serializes the record for storage.
func (rec *Record) Encode() []byte {
	size := 4
	for i := range rec.Versions {
		size += 12 + len(rec.Versions[i].Data)
	}
	w := wire.NewWriter(size)
	w.Uvarint(uint64(len(rec.Versions)))
	for i := range rec.Versions {
		v := &rec.Versions[i]
		w.Uvarint(v.TID)
		w.Bool(v.Deleted)
		w.BytesN(v.Data)
	}
	return w.Bytes()
}

// NewRecord creates a record with a single initial version.
func NewRecord(tid uint64, data []byte) *Record {
	return &Record{Versions: []Version{{TID: tid, Data: data}}}
}

// Visible returns the version the snapshot may read: the newest committed
// version v ∈ V ∩ V* (§4.2; the scan is in apply order, so the first member
// of the snapshot is the newest the snapshot may see). ok is false when no
// version is visible or the visible version is a delete marker.
func (rec *Record) Visible(snap *Snapshot) (v *Version, ok bool) {
	for i := range rec.Versions {
		if snap.Contains(rec.Versions[i].TID) {
			if rec.Versions[i].Deleted {
				return nil, false
			}
			return &rec.Versions[i], true
		}
	}
	return nil, false
}

// Latest returns the most recently applied version.
func (rec *Record) Latest() *Version {
	if len(rec.Versions) == 0 {
		return nil
	}
	return &rec.Versions[0]
}

// Get returns the version with exactly the given tid.
func (rec *Record) Get(tid uint64) (*Version, bool) {
	for i := range rec.Versions {
		if rec.Versions[i].TID == tid {
			return &rec.Versions[i], true
		}
	}
	return nil, false
}

// WithVersion returns a copy of the record with version tid set to data,
// prepended as the newest applied version (an existing tid version is
// replaced in place, preserving its position).
func (rec *Record) WithVersion(tid uint64, deleted bool, data []byte) *Record {
	nv := Version{TID: tid, Deleted: deleted, Data: data}
	out := &Record{Versions: make([]Version, 0, len(rec.Versions)+1)}
	replaced := false
	for _, v := range rec.Versions {
		if v.TID == tid {
			out.Versions = append(out.Versions, nv)
			replaced = true
			continue
		}
		out.Versions = append(out.Versions, v)
	}
	if !replaced {
		out.Versions = append([]Version{nv}, out.Versions...)
	}
	return out
}

// WithoutVersion returns a copy with version tid removed (rollback of an
// aborted transaction, §4.3/4.4.1). The second result is false when the
// record then has no versions left and should be deleted from the store.
func (rec *Record) WithoutVersion(tid uint64) (*Record, bool) {
	out := &Record{Versions: make([]Version, 0, len(rec.Versions))}
	for _, v := range rec.Versions {
		if v.TID != tid {
			out.Versions = append(out.Versions, v)
		}
	}
	return out, len(out.Versions) > 0
}

// GC removes versions that no current or future transaction can read,
// given the lowest active version number (§5.4). The paper states the
// collectable set over a tid-ordered list as G = C \ {max(C)} with
// C = {x ∈ V : x ≤ lav}; with apply-ordered versions the equivalent rule is
// positional: the survivor is the newest-applied version with TID ≤ lav
// (see SurvivorIdx), and everything applied before it is unreadable — any
// reader scanning from the head stops at the survivor or earlier, because
// TID ≤ lav puts the survivor in every current and future snapshot. It
// returns the pruned record and whether anything was removed. If the sole
// surviving version is a delete marker, empty is true: the whole record
// (and its index entries) can be removed.
func (rec *Record) GC(lav uint64) (pruned *Record, changed, empty bool) {
	i := rec.SurvivorIdx(lav)
	if i < 0 {
		return rec, false, false
	}
	out := &Record{Versions: append([]Version(nil), rec.Versions[:i+1]...)}
	if len(out.Versions) == 1 && out.Versions[0].Deleted {
		return out, true, true
	}
	if i == len(rec.Versions)-1 {
		return rec, false, false
	}
	return out, true, false
}

// SurvivorIdx returns the position of the oldest version GC must keep: the
// first (newest-applied) version with TID ≤ lav. Every version applied
// before it is unreachable by any current or future snapshot. Returns -1
// when no version is ≤ lav yet.
func (rec *Record) SurvivorIdx(lav uint64) int {
	for i := range rec.Versions {
		if rec.Versions[i].TID <= lav {
			return i
		}
	}
	return -1
}

// String renders the record for debugging.
func (rec *Record) String() string {
	s := "["
	for i, v := range rec.Versions {
		if i > 0 {
			s += " "
		}
		if v.Deleted {
			s += fmt.Sprintf("%d:†", v.TID)
		} else {
			s += fmt.Sprintf("%d:%dB", v.TID, len(v.Data))
		}
	}
	return s + "]"
}
