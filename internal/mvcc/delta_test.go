package mvcc

import (
	"math/rand"
	"testing"

	"tell/internal/wire"
)

// randSnapshot builds a plausible descriptor: a base plus a sparse band of
// committed tids above it, like a CM under concurrent load produces.
func randSnapshot(rng *rand.Rand, base uint64) *Snapshot {
	s := NewSnapshot(base)
	n := rng.Intn(40)
	for i := 0; i < n; i++ {
		s.Add(base + 1 + uint64(rng.Intn(400)))
	}
	return s
}

// advance evolves s the way a CM does: commit a few of the missing tids near
// the base, then normalize.
func advance(rng *rand.Rand, s *Snapshot) *Snapshot {
	out := s.Clone()
	n := 1 + rng.Intn(30)
	for i := 0; i < n; i++ {
		out.Add(out.Base + 1 + uint64(rng.Intn(300)))
	}
	out.Normalize()
	return out
}

func TestDeltaDiffApply(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		old := randSnapshot(rng, uint64(rng.Intn(1000)))
		new := advance(rng, old)
		d := Diff(old, new)
		if d == nil {
			t.Fatalf("trial %d: Diff returned nil for advancing snapshots", trial)
		}
		got, err := d.Apply(old)
		if err != nil {
			t.Fatalf("trial %d: Apply: %v", trial, err)
		}
		if !got.Equal(new) {
			t.Fatalf("trial %d: Apply(old, Diff(old,new)) = %v, want %v (old %v, delta %+v)",
				trial, got, new, old, d)
		}
		if got.Base != new.Base {
			t.Fatalf("trial %d: base %d, want %d", trial, got.Base, new.Base)
		}
	}
}

func TestDeltaIdentity(t *testing.T) {
	s := NewSnapshot(10)
	s.Add(12)
	s.Add(14)
	d := Diff(s, s)
	if d.Advance != 0 || len(d.Patches) != 0 {
		t.Fatalf("self-diff not empty: %+v", d)
	}
	got, err := d.Apply(s)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if !got.Equal(s) {
		t.Fatalf("identity apply changed the set: %v vs %v", got, s)
	}
}

func TestDeltaBackwardsBase(t *testing.T) {
	old := NewSnapshot(100)
	new := NewSnapshot(50)
	if d := Diff(old, new); d != nil {
		t.Fatalf("Diff across a base regression must be nil (full-resync signal), got %+v", d)
	}
}

func TestDeltaLargeAdvance(t *testing.T) {
	// The whole old bitset falls below the new base.
	old := NewSnapshot(0)
	for i := 1; i <= 200; i++ {
		old.Add(uint64(i) * 2)
	}
	new := NewSnapshot(100_000)
	new.Add(100_003)
	d := Diff(old, new)
	got, err := d.Apply(old)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if !got.Equal(new) {
		t.Fatalf("got %v, want %v", got, new)
	}
}

func TestDeltaEncodeDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		old := randSnapshot(rng, uint64(rng.Intn(1000)))
		new := advance(rng, old)
		d := Diff(old, new)
		w := wire.NewWriter(64)
		d.EncodeTo(w)
		r := wire.NewReader(w.Bytes())
		got, err := DecodeSnapshotDeltaFrom(r)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if err := r.Close(); err != nil {
			t.Fatalf("trailing bytes: %v", err)
		}
		applied, err := got.Apply(old)
		if err != nil {
			t.Fatalf("apply decoded: %v", err)
		}
		if !applied.Equal(new) {
			t.Fatalf("decoded delta does not reproduce target: %v vs %v", applied, new)
		}
	}
}

func TestDeltaApplyBoundsPatchIndex(t *testing.T) {
	d := &SnapshotDelta{Patches: []DeltaPatch{{Index: maxDeltaWords, Word: 1}}}
	if _, err := d.Apply(NewSnapshot(0)); err == nil {
		t.Fatal("out-of-range patch index must be rejected")
	}
}

// TestDeltaDecodeGarbage feeds random bytes to the decoder: it must never
// panic, and whatever decodes must survive Apply without panicking either.
func TestDeltaDecodeGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	base := NewSnapshot(40)
	base.Add(42)
	for trial := 0; trial < 2000; trial++ {
		buf := make([]byte, rng.Intn(60))
		rng.Read(buf)
		d, err := DecodeSnapshotDeltaFrom(wire.NewReader(buf))
		if err != nil {
			continue
		}
		if _, err := d.Apply(base); err != nil {
			continue // bound rejection is fine; panics are not
		}
	}
}

func TestDeltaSmallerThanFull(t *testing.T) {
	// A realistic steady-state step: base advances a little, a few bits
	// flip. The delta must be much smaller than the full descriptor.
	old := NewSnapshot(1000)
	for i := 0; i < 60; i++ {
		old.Add(1001 + uint64(i*3))
	}
	new := old.Clone()
	new.Add(1001)
	new.Add(1002)
	new.Normalize()
	d := Diff(old, new)
	w := wire.NewWriter(64)
	d.EncodeTo(w)
	fw := wire.NewWriter(64)
	new.EncodeTo(fw)
	if w.Len() >= fw.Len() {
		t.Fatalf("delta (%dB) not smaller than full descriptor (%dB)", w.Len(), fw.Len())
	}
	if d.EncodedSize() < w.Len() {
		t.Fatalf("EncodedSize %d underestimates actual %d", d.EncodedSize(), w.Len())
	}
}
