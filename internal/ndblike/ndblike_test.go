package ndblike_test

import (
	"fmt"
	"testing"
	"time"

	"tell/internal/baseline"
	"tell/internal/env"
	"tell/internal/ndblike"
	"tell/internal/sim"
	"tell/internal/testutil"
	"tell/internal/tpcc"
)

func runNDB(t *testing.T, mix tpcc.Mix, nodes, terminals, txns int, cfg tpcc.Config) (*tpcc.Result, *ndblike.Engine, *baseline.Dataset) {
	t.Helper()
	k := sim.NewKernel(testutil.Seed(t, 19))
	envr := env.NewSim(k)
	ds := baseline.NewDataset(cfg)
	var enodes []env.Node
	for i := 0; i < nodes; i++ {
		enodes = append(enodes, envr.NewNode(fmt.Sprintf("ndb%d", i), 8))
	}
	eng := ndblike.New(ndblike.Config{}, envr, ds, enodes)
	drv := tpcc.NewDriver(cfg, mix, []tpcc.Engine{eng}, terminals, 21)
	driver := envr.NewNode("driver", 4)
	var res *tpcc.Result
	driver.Go("drv", func(ctx env.Ctx) {
		defer k.Stop()
		res = drv.Run(ctx, envr, driver, 10, txns)
	})
	if err := k.RunUntil(sim.Time(30000 * time.Second)); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	if res == nil {
		t.Fatal("driver did not finish")
	}
	return res, eng, ds
}

func TestNDBRunsStandardMix(t *testing.T) {
	cfg := tpcc.Config{Warehouses: 8, Scale: 0.02, Seed: 3}
	res, eng, ds := runNDB(t, tpcc.StandardMix(), 3, 24, 400, cfg)
	if res.TotalCommitted() == 0 || res.TpmC() <= 0 {
		t.Fatalf("no throughput: %v", res)
	}
	// Locking, not optimistic: concurrency shows up as waits, almost
	// never as aborts.
	if res.AbortRate() > 0.05 {
		t.Fatalf("abort rate %.3f", res.AbortRate())
	}
	if eng.LockWaits() == 0 {
		t.Fatal("expected some lock waits under contention")
	}
	// Consistency after the storm.
	for _, wh := range ds.Warehouses {
		for _, d := range wh.Districts {
			var maxO int64
			for o := range d.Orders {
				if o > maxO {
					maxO = o
				}
			}
			if d.NextO != maxO+1 {
				t.Fatalf("w%d d%d: nextO=%d maxO=%d", wh.W, d.ID, d.NextO, maxO)
			}
		}
	}
}

func TestNDBSingleWarehouseTransactionsNotBlockedByDistributed(t *testing.T) {
	// §6.4: "single-partition transactions are not blocked by distributed
	// transactions" — with row locks, a payment at warehouse 1 proceeds
	// while a cross-warehouse payment between 2 and 3 runs.
	cfg := tpcc.Config{Warehouses: 4, Scale: 0.02, Seed: 3}
	std, _, _ := runNDB(t, tpcc.StandardMix(), 2, 16, 300, cfg)
	shard, _, _ := runNDB(t, tpcc.ShardableMix(), 2, 16, 300, cfg)
	// Removing remote transactions helps (2PC avoided) but the gap is
	// mild compared to voltlike's: well under 2×.
	ratio := shard.Tps() / std.Tps()
	if ratio > 2.0 {
		t.Fatalf("shardable/standard ratio %.2f too large for row-locking", ratio)
	}
	if std.Tps() <= 0 || shard.Tps() <= 0 {
		t.Fatal("no throughput")
	}
	t.Logf("standard=%.0f shardable=%.0f Tps (ratio %.2f)", std.Tps(), shard.Tps(), ratio)
}
