// Package ndblike implements the MySQL-Cluster-style comparison system of
// §6.4: a partitioned database whose data nodes hold warehouse shards with
// row-level locks, fronted by SQL nodes that federate row accesses over the
// network and finish distributed transactions with two-phase commit.
//
// The property the paper highlights — MySQL Cluster is "slightly faster
// than VoltDB because single-partition transactions are not blocked by
// distributed transactions" — emerges here from row-level locking: a
// cross-warehouse payment only blocks the rows it touches, not whole
// partitions, but every row access pays a network round trip through the
// SQL-node federation layer, which bounds absolute throughput.
package ndblike

import (
	"sort"
	"strings"
	"sync"
	"time"

	"tell/internal/baseline"
	"tell/internal/det"
	"tell/internal/env"
	"tell/internal/tpcc"
	"tell/internal/trace"
)

// Costs parameterize the model.
type Costs struct {
	// SQLOverhead is the per-transaction cost on the SQL node (parsing,
	// plan, federation bookkeeping).
	SQLOverhead time.Duration
	// PerRow is the data-node CPU per row access.
	PerRow time.Duration
	// NetRTT is one SQL-node ↔ data-node round trip (TCP over the
	// InfiniBand fabric).
	NetRTT time.Duration
	// RowsPerBatch is how many row operations one network round trip
	// carries (NDB batches reads).
	RowsPerBatch int
	// ReplicaRTT is charged per participant data node per replica for
	// synchronous replication.
	ReplicaRTT time.Duration
	// LockWaitTimeout aborts transactions that wait too long.
	LockWaitTimeout time.Duration
}

// DefaultCosts returns calibrated parameters.
func DefaultCosts() Costs {
	return Costs{
		SQLOverhead: 200 * time.Microsecond,
		PerRow:      20 * time.Microsecond,
		// The effective per-row federation cost through the MySQL SQL
		// layer and the NDB API (statement processing + TCP round trip):
		// calibrated against Table 4's 34ms mean transaction latency.
		NetRTT:          1200 * time.Microsecond,
		RowsPerBatch:    1,
		ReplicaRTT:      400 * time.Microsecond,
		LockWaitTimeout: 400 * time.Millisecond,
	}
}

// Config assembles an engine.
type Config struct {
	// DataNodes is the number of data nodes (warehouses are sharded over
	// them).
	DataNodes int
	// SQLWorkers bounds concurrent transactions per SQL node; the engine
	// models one SQL node per data node.
	SQLWorkers int
	// ReplicationFactor: copies per fragment (NDB NoOfReplicas).
	ReplicationFactor int
	Costs             Costs
}

// Engine is an NDB-style cluster over a native TPC-C dataset.
type Engine struct {
	cfg  Config
	envr env.Full
	ds   *baseline.Dataset

	// state guards procedure bodies: they are pure CPU between blocking
	// points, so the critical sections are instantaneous in virtual time.
	state *env.Locker
	locks *lockTable

	sqlNodes []*sqlNode
	next     int
	mu       sync.Mutex

	lockWaits uint64
	timeouts  uint64
}

// sqlNode is one SQL-node worker pool.
type sqlNode struct {
	node env.Node
	jobs env.Queue
}

// New builds the engine over the given execution nodes (one SQL node and
// one data node are co-located per machine, as the paper's deployments
// paired them).
func New(cfg Config, envr env.Full, ds *baseline.Dataset, nodes []env.Node) *Engine {
	if cfg.DataNodes <= 0 {
		cfg.DataNodes = len(nodes)
	}
	if cfg.SQLWorkers <= 0 {
		cfg.SQLWorkers = 8
	}
	if cfg.ReplicationFactor <= 0 {
		cfg.ReplicationFactor = 1
	}
	if cfg.Costs == (Costs{}) {
		cfg.Costs = DefaultCosts()
	}
	e := &Engine{
		cfg:   cfg,
		envr:  envr,
		ds:    ds,
		state: env.NewLocker(envr),
		locks: newLockTable(envr),
	}
	for _, n := range nodes {
		sn := &sqlNode{node: n, jobs: envr.NewQueue()}
		e.sqlNodes = append(e.sqlNodes, sn)
		for w := 0; w < cfg.SQLWorkers; w++ {
			n.Go("sql-worker", func(ctx env.Ctx) {
				sc := ctx.Trace()
				for {
					v, ok := sn.jobs.Get(ctx)
					if !ok {
						return
					}
					j := v.(*job)
					if j.sc.R != nil {
						saved := *sc
						*sc = j.sc
						j.sc.Agg.Add(trace.CompPoolWait, ctx.Now()-j.enq)
						j.fn(ctx)
						*sc = saved
					} else {
						j.fn(ctx)
					}
					j.done.Set(nil)
				}
			})
		}
	}
	return e
}

// job carries the submitting transaction's tracing scope so the worker's
// time is attributed to it (sc/enq mirror the voltlike partition jobs).
type job struct {
	fn   func(ctx env.Ctx)
	done env.Future
	sc   trace.Scope
	enq  time.Duration
}

// LockWaits returns how many lock acquisitions had to wait.
func (e *Engine) LockWaits() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.lockWaits
}

// Timeouts returns how many transactions aborted on lock-wait timeout.
func (e *Engine) Timeouts() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.timeouts
}

// dataNodeOf maps a row key to its owning data node by warehouse.
func (e *Engine) dataNodeOf(key string) int {
	// Keys look like "d/3/7": the second component is the warehouse.
	parts := strings.SplitN(key, "/", 3)
	w := 0
	if len(parts) >= 2 {
		for _, ch := range parts[1] {
			w = w*10 + int(ch-'0')
		}
	}
	return w % e.cfg.DataNodes
}

// run executes one transaction on an SQL node worker.
func (e *Engine) run(ctx env.Ctx, t tpcc.TxType, input any) (bool, error) {
	e.mu.Lock()
	sn := e.sqlNodes[e.next%len(e.sqlNodes)]
	e.next++
	e.mu.Unlock()
	var ok bool
	var err error
	j := &job{done: e.envr.NewFuture()}
	j.fn = func(wctx env.Ctx) { ok, err = e.transact(wctx, t, input) }
	if sc := ctx.Trace(); sc.R != nil {
		j.sc = *sc
		j.enq = ctx.Now()
	}
	sn.jobs.Put(j)
	j.done.Get(ctx)
	return ok, err
}

// transact is the SQL-node transaction driver: lock, fetch, execute, 2PC.
func (e *Engine) transact(ctx env.Ctx, t tpcc.TxType, input any) (bool, error) {
	c := e.cfg.Costs
	ctx.Work(c.SQLOverhead)

	// Plan: determine the access set and acquire row locks in global key
	// order (deadlock-free).
	reads, writes := baseline.AccessSet(e.ds, t, input)
	type lockReq struct {
		key  string
		excl bool
	}
	// Deduplicate (write mode wins) so a transaction never waits on its
	// own lock, then sort for deadlock-free acquisition order.
	mode := make(map[string]bool, len(reads)+len(writes))
	for _, k := range reads {
		if _, ok := mode[k]; !ok {
			mode[k] = false
		}
	}
	for _, k := range writes {
		mode[k] = true
	}
	reqs := make([]lockReq, 0, len(mode))
	for k, excl := range mode {
		reqs = append(reqs, lockReq{key: k, excl: excl})
	}
	sort.Slice(reqs, func(i, j int) bool { return reqs[i].key < reqs[j].key })

	// Row accesses travel to their data nodes in batches, visited in
	// sorted order: the sleeps below are scheduling points, so the visit
	// order is simulation-visible.
	dnRows := make(map[int]int)
	for _, r := range reqs {
		dnRows[e.dataNodeOf(r.key)]++
	}
	participants := det.Keys(dnRows)
	for _, dn := range participants {
		rows := dnRows[dn]
		batches := (rows + c.RowsPerBatch - 1) / c.RowsPerBatch
		for b := 0; b < batches; b++ {
			baseline.SleepNet(ctx, c.NetRTT)
		}
		ctx.Work(time.Duration(rows) * c.PerRow)
	}

	var held []string
	abort := func() {
		for _, k := range held {
			e.locks.unlock(k)
		}
	}
	for _, r := range reqs {
		lockStart := ctx.Now()
		waited, ok := e.locks.lock(ctx, r.key, r.excl, c.LockWaitTimeout)
		baseline.Charge(ctx, trace.CompConflict, ctx.Now()-lockStart)
		if waited {
			e.mu.Lock()
			e.lockWaits++
			e.mu.Unlock()
		}
		if !ok {
			e.mu.Lock()
			e.timeouts++
			e.mu.Unlock()
			abort()
			return false, nil
		}
		held = append(held, r.key)
	}

	// Execute under the locks. The body is pure CPU, made atomic by the
	// state locker; its cost is charged afterwards.
	stateStart := ctx.Now()
	e.state.Lock(ctx)
	baseline.Charge(ctx, trace.CompConflict, ctx.Now()-stateStart)
	res := baseline.Exec(e.ds, t, input)
	e.state.Unlock()
	nr, nw := res.RowAccessCount()
	ctx.Work(time.Duration(nr+nw) * c.PerRow)

	if res.OK && baseline.IsWrite(t) {
		// Two-phase commit across participants: prepare + commit, one
		// round trip each, plus synchronous fragment replication.
		rounds := 1
		if len(participants) > 1 {
			rounds = 2
		}
		for i := 0; i < rounds; i++ {
			for range participants {
				baseline.SleepNet(ctx, c.NetRTT)
			}
		}
		for range participants {
			for rf := 1; rf < e.cfg.ReplicationFactor; rf++ {
				baseline.SleepNet(ctx, c.ReplicaRTT)
			}
		}
	}
	for _, k := range held {
		e.locks.unlock(k)
	}
	return res.OK, nil
}

// --- tpcc.Engine implementation ---

// NewOrder runs the new-order transaction via row locks and two-phase commit.
func (e *Engine) NewOrder(ctx env.Ctx, in *tpcc.NewOrderInput) (bool, error) {
	return e.run(ctx, tpcc.TxNewOrder, in)
}

// Payment runs the payment transaction via row locks and two-phase commit.
func (e *Engine) Payment(ctx env.Ctx, in *tpcc.PaymentInput) (bool, error) {
	return e.run(ctx, tpcc.TxPayment, in)
}

// OrderStatus runs the order-status transaction via row locks and two-phase commit.
func (e *Engine) OrderStatus(ctx env.Ctx, in *tpcc.OrderStatusInput) (bool, error) {
	return e.run(ctx, tpcc.TxOrderStatus, in)
}

// Delivery runs the delivery transaction via row locks and two-phase commit.
func (e *Engine) Delivery(ctx env.Ctx, in *tpcc.DeliveryInput) (bool, error) {
	return e.run(ctx, tpcc.TxDelivery, in)
}

// StockLevel runs the stock-level transaction via row locks and two-phase commit.
func (e *Engine) StockLevel(ctx env.Ctx, in *tpcc.StockLevelInput) (bool, error) {
	return e.run(ctx, tpcc.TxStockLevel, in)
}
