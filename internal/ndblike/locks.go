package ndblike

import (
	"sync"
	"time"

	"tell/internal/env"
)

// lockTable implements shared/exclusive row locks with FIFO waiting. The
// bookkeeping is guarded by a plain mutex (all operations are
// non-blocking); waiting happens on environment futures, so parked
// transactions are simulation-safe.
type lockTable struct {
	envr env.Full
	mu   sync.Mutex
	rows map[string]*rowLock
}

type rowLock struct {
	// sharedHolders > 0 means read-locked; exclusive means write-locked.
	sharedHolders int
	exclusive     bool
	waiters       []*lockWaiter
}

type lockWaiter struct {
	excl    bool
	granted env.Future
}

func newLockTable(envr env.Full) *lockTable {
	return &lockTable{envr: envr, rows: make(map[string]*rowLock)}
}

// lock acquires key in the requested mode, waiting FIFO behind conflicting
// holders. It reports whether it had to wait and whether it succeeded
// within the timeout.
func (t *lockTable) lock(ctx env.Ctx, key string, excl bool, timeout time.Duration) (waited, ok bool) {
	t.mu.Lock()
	rl := t.rows[key]
	if rl == nil {
		rl = &rowLock{}
		t.rows[key] = rl
	}
	if t.grantableLocked(rl, excl) && len(rl.waiters) == 0 {
		t.grantLocked(rl, excl)
		t.mu.Unlock()
		return false, true
	}
	w := &lockWaiter{excl: excl, granted: t.envr.NewFuture()}
	rl.waiters = append(rl.waiters, w)
	t.mu.Unlock()

	if _, got := w.granted.GetTimeout(ctx, timeout); got {
		return true, true
	}
	// Timed out: remove from the queue (if still there) and fail. A
	// concurrent grant may have raced the timeout; detect via IsSet.
	t.mu.Lock()
	if w.granted.IsSet() {
		t.mu.Unlock()
		return true, true
	}
	for i, q := range rl.waiters {
		if q == w {
			rl.waiters = append(rl.waiters[:i], rl.waiters[i+1:]...)
			break
		}
	}
	t.mu.Unlock()
	return true, false
}

func (t *lockTable) grantableLocked(rl *rowLock, excl bool) bool {
	if excl {
		return rl.sharedHolders == 0 && !rl.exclusive
	}
	return !rl.exclusive
}

func (t *lockTable) grantLocked(rl *rowLock, excl bool) {
	if excl {
		rl.exclusive = true
	} else {
		rl.sharedHolders++
	}
}

// unlock releases one hold on key and grants waiters in FIFO order
// (multiple compatible shared waiters are granted together).
func (t *lockTable) unlock(key string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	rl := t.rows[key]
	if rl == nil {
		return
	}
	if rl.exclusive {
		rl.exclusive = false
	} else if rl.sharedHolders > 0 {
		rl.sharedHolders--
	}
	for len(rl.waiters) > 0 {
		w := rl.waiters[0]
		if !t.grantableLocked(rl, w.excl) {
			break
		}
		rl.waiters = rl.waiters[1:]
		t.grantLocked(rl, w.excl)
		w.granted.Set(nil)
		if w.excl {
			break
		}
	}
	if !rl.exclusive && rl.sharedHolders == 0 && len(rl.waiters) == 0 {
		delete(t.rows, key)
	}
}
