package commitmgr

import (
	"fmt"

	"tell/internal/mvcc"
	"tell/internal/wire"
)

// Grouped CM protocol (cmStartGroup). One round trip carries everything a
// processing node owes or wants from its commit manager: pending
// finish()/abort notifications ride along, several concurrent start() calls
// share one descriptor fetch, and the descriptor itself is delta-encoded
// against the last one the client acknowledged. Steady state this replaces
// the ≥2 messages per transaction of the split protocol (one start, one
// finished) with a fraction of one.

// Bounds on untrusted grouped requests; a legitimate client stays far below
// both (its window is MaxGroup starts and maxGroupFins pending finishes).
const (
	maxGroupCount = 4096
	maxGroupFins  = 4096
)

// FinNote is one piggybacked finish notification: setCommitted/setAborted
// (§4.2) folded into the next start() round trip.
type FinNote struct {
	TID       uint64
	Committed bool
}

// StartGroupReq asks for Count transaction starts and delivers pending
// finish notifications in the same message.
type StartGroupReq struct {
	// Client is a stable identity for descriptor delta tracking and
	// exactly-once dedup ("" opts out: the response always carries the
	// full descriptor and duplicates may re-execute).
	Client string
	// Seq is the idempotency token for this request (0 = none). Retries
	// resend the identical bytes; the manager executes each (Client, Seq)
	// at most once and replays the cached response to duplicates, so a
	// retried group cannot leak a second tid allocation.
	Seq uint64
	// AckServer/AckSeq identify the last descriptor this client applied:
	// the id of the manager that sent it and its per-client sequence
	// number. The manager sends a delta only when both match its own
	// memory — a fail-over or lost response breaks the chain and forces a
	// full resync. AckSeq 0 means "no base, send full".
	AckServer string
	AckSeq    uint64
	// Count is how many tids the client wants (one per coalesced start()).
	// May be zero for a pure finish flush.
	Count uint64
	Fins  []FinNote
}

// Encode serializes the request.
func (m *StartGroupReq) Encode() []byte {
	w := wire.NewWriter(64 + 4*len(m.Fins))
	w.Byte(byte(wire.KindCMReq))
	w.Byte(byte(cmStartGroup))
	w.String(m.Client)
	w.Uvarint(m.Seq)
	w.String(m.AckServer)
	w.Uvarint(m.AckSeq)
	w.Uvarint(m.Count)
	w.Uvarint(uint64(len(m.Fins)))
	for i := range m.Fins {
		w.Uvarint(m.Fins[i].TID)
		w.Bool(m.Fins[i].Committed)
	}
	return w.Bytes()
}

// DecodeStartGroupReq parses an encoded StartGroupReq.
func DecodeStartGroupReq(raw []byte) (*StartGroupReq, error) {
	r := wire.NewReader(raw)
	if wire.Kind(r.Byte()) != wire.KindCMReq || cmSub(r.Byte()) != cmStartGroup {
		return nil, fmt.Errorf("commitmgr: not a grouped start request")
	}
	m := &StartGroupReq{
		Client:    r.String(),
		Seq:       r.Uvarint(),
		AckServer: r.String(),
		AckSeq:    r.Uvarint(),
		Count:     r.Uvarint(),
	}
	n := r.Count(2)
	for i := 0; i < n; i++ {
		m.Fins = append(m.Fins, FinNote{TID: r.Uvarint(), Committed: r.Bool()})
	}
	if err := r.Close(); err != nil {
		return nil, err
	}
	if m.Count > maxGroupCount || len(m.Fins) > maxGroupFins {
		return nil, fmt.Errorf("commitmgr: grouped request too large (%d starts, %d fins)",
			m.Count, len(m.Fins))
	}
	return m, nil
}

// StartGroupResp answers a grouped start: one tid per requested start, one
// descriptor (full or delta) shared by all of them, and the lav.
type StartGroupResp struct {
	Status wire.Status
	// TIDs are the allocated transaction ids, ascending (gap-encoded on the
	// wire; interleaved allocation makes the gaps regular and tiny).
	TIDs []uint64
	// Server/Seq is what the client echoes as AckServer/AckSeq next time.
	Server string
	Seq    uint64
	// Full selects which descriptor form follows: the whole snapshot, or a
	// delta against the client's acknowledged one.
	Full  bool
	Snap  *mvcc.Snapshot
	Delta *mvcc.SnapshotDelta
	Lav   uint64
}

// Encode serializes the response. Failed responses (Status != OK) carry no
// payload: TIDs, Server, Seq, Full, Snap, Delta and Lav are encoded only on
// the success path.
func (m *StartGroupResp) Encode() []byte {
	w := wire.GetWriter()
	w.Byte(byte(wire.KindCMResp))
	w.Byte(byte(cmStartGroup))
	w.Byte(byte(m.Status))
	if m.Status != wire.StatusOK {
		return w.Finish()
	}
	w.Uvarint(uint64(len(m.TIDs)))
	var prev uint64
	for i, t := range m.TIDs {
		if i == 0 {
			w.Uvarint(t)
		} else {
			w.Uvarint(t - prev)
		}
		prev = t
	}
	w.String(m.Server)
	w.Uvarint(m.Seq)
	w.Bool(m.Full)
	if m.Full {
		m.Snap.EncodeTo(w)
	} else {
		m.Delta.EncodeTo(w)
	}
	w.Uvarint(m.Lav)
	return w.Finish()
}

// DecodeStartGroupResp parses an encoded StartGroupResp.
func DecodeStartGroupResp(raw []byte) (*StartGroupResp, error) {
	r := wire.NewReader(raw)
	if wire.Kind(r.Byte()) != wire.KindCMResp || cmSub(r.Byte()) != cmStartGroup {
		return nil, fmt.Errorf("commitmgr: not a grouped start response")
	}
	m := &StartGroupResp{Status: wire.Status(r.Byte())}
	if r.Err() != nil {
		return nil, r.Err()
	}
	if m.Status != wire.StatusOK {
		return m, r.Close()
	}
	n := r.Count(1)
	var prev uint64
	for i := 0; i < n; i++ {
		d := r.Uvarint()
		if i == 0 {
			prev = d
		} else {
			prev += d
		}
		m.TIDs = append(m.TIDs, prev)
	}
	m.Server = r.String()
	m.Seq = r.Uvarint()
	m.Full = r.Bool()
	var err error
	if m.Full {
		m.Snap, err = mvcc.DecodeSnapshotFrom(r)
	} else {
		m.Delta, err = mvcc.DecodeSnapshotDeltaFrom(r)
	}
	if err != nil {
		return nil, err
	}
	m.Lav = r.Uvarint()
	if err := r.Close(); err != nil {
		return nil, err
	}
	return m, nil
}
