// Package commitmgr implements the commit-manager service (§4.2): a
// lightweight authority that hands starting transactions a system-wide
// unique transaction id, a snapshot descriptor, and the lowest active
// version number (lav). Commit managers do no commit validation — conflict
// detection happens at the storage layer via LL/SC (§4.1) — which is why
// they are not a bottleneck (Table 3).
//
// Several commit managers run in parallel for scale and fault-tolerance.
// tid uniqueness comes from an atomic counter in the shared store, bumped
// in ranges; snapshot state is synchronized through the store at a short
// interval (1 ms by default; §6.3.3 shows this does not raise abort rates).
package commitmgr

import (
	"slices"
	"time"

	"tell/internal/env"
	"tell/internal/metrics"
	"tell/internal/mvcc"
	"tell/internal/obs"
	"tell/internal/resil"
	"tell/internal/sanitize"
	"tell/internal/store"
	"tell/internal/transport"
	"tell/internal/txlog"
	"tell/internal/wire"
)

// Store keys used by the commit-manager fleet.
const (
	// tidCounterKey is the shared LL/SC counter that makes tids unique.
	tidCounterKey = "sys/cm/tidctr"
	// statePrefix + id holds each manager's published state.
	statePrefix = "sys/cm/state/"
)

// Server is one commit-manager instance.
type Server struct {
	addr string
	id   string
	envr env.Full
	node env.Node
	tr   transport.Transport
	sc   *store.Client

	// SyncInterval is how often state is pushed to and pulled from the
	// store (paper default: 1 ms).
	SyncInterval time.Duration
	// TidRange is how many tids one counter bump reserves (paper: e.g. 256).
	TidRange int64
	// Interleaved switches tid allocation from contiguous ranges to the
	// interleaved scheme §4.2 names as near-future work: a manager
	// reserves a block of the global sequence but issues only every n-th
	// tid of it (n = fleet size), closing the rest immediately. Issued
	// tids are therefore spread thinly across the number space instead of
	// forming long per-manager runs, so a burst of commits from one
	// manager leaves no wide un-finished gap below the snapshot base —
	// the staleness effect the paper blames for contiguous ranges' higher
	// abort rate. Every tid in a reserved block has exactly one manager
	// responsible for finishing it, so the base always advances.
	Interleaved bool
	// Peers lists the ids of all commit managers (including this one)
	// whose states are merged.
	Peers []string

	mu sanitize.Mutex
	// fin is the finished set: {x ≤ Base} all finished, bits = finished
	// tids above Base (committed or aborted). Base is the paper's b.
	fin *mvcc.Snapshot
	// comm is the snapshot descriptor handed to transactions: committed
	// tids. Its {≤Base} region may include aborted tids — safe, because
	// aborted transactions have rolled their versions back (§4.2).
	comm *mvcc.Snapshot
	// active maps running tids (started here) to their snapshot base and
	// start time.
	active map[uint64]activeTx
	// tid range state.
	nextTid, tidEnd uint64
	issuedThisTick  bool
	// peerLav caches the min-active-base each peer last published;
	// peerSeq/peerStale expire managers that stopped publishing.
	peerLav   map[string]uint64
	peerSeq   map[string]uint64
	peerStale map[string]int
	seq       uint64
	// peerRange caches each peer's last published unissued tid range
	// [next, end]; deadPeers marks peers presumed dead, whose ranges and
	// unreported finishes are recovered from the transaction log.
	peerRange map[string][2]uint64
	deadPeers map[string]bool
	syncTick  int
	// clients remembers, per grouped-protocol client, the last descriptor
	// sent and its sequence number, so the next response can ship a delta
	// (§4.2 descriptors change little between consecutive starts). Soft
	// state: losing it merely forces a full retransmit.
	clients map[string]*clientDescState

	// ActiveTTL expires transactions that never reported an outcome (a
	// processing node that died before writing its first log entry, so
	// recovery cannot see it). It must exceed any plausible transaction
	// duration plus failure-detection time; expired tids count as
	// aborted. Such a transaction wrote nothing, so this is safe.
	ActiveTTL time.Duration
	// StalePeerTicks drops a peer's published lav after this many sync
	// ticks without change (the peer is presumed dead).
	StalePeerTicks int
	// RecoveryGrace is how old a transaction-log entry without an outcome
	// must be before a recovery sweep fences it off as aborted. It bounds
	// the window in which fencing could spuriously abort a slow but alive
	// transaction (which stays safe — the fence makes MarkCommitted fail —
	// just wasteful).
	RecoveryGrace time.Duration
	// RecoveryEvery is how many sync ticks pass between recovery sweeps
	// while some peer is presumed dead.
	RecoveryEvery int

	// dedup is the exactly-once window for grouped starts: a retried
	// StartGroupReq replays its cached response instead of allocating a
	// second batch of tids (which would pin the lav until ActiveTTL).
	dedup *resil.Window
	// gate is the admission controller: past the inflight bound, requests
	// shed with StatusOverload instead of queueing without limit.
	gate *resil.Gate

	stopped bool
	starts  uint64
	// deltas/fulls count grouped responses by descriptor form (telemetry
	// for the delta-encoding hit rate; gap or fail-over forces a full).
	deltas, fulls uint64
	lat           *metrics.Summary // handler latency per request class
	// obs, if set, feeds handler latencies into the windowed telemetry
	// pipeline (nil disables; every hook below is nil-safe).
	obs *obs.Pipeline
}

// SetObs attaches the telemetry pipeline. Call before Start.
func (s *Server) SetObs(p *obs.Pipeline) { s.obs = p }

// New creates a commit manager. id must be unique across the fleet; addr is
// where PNs reach it. sc is its client to the shared store.
func New(id, addr string, envr env.Full, node env.Node, tr transport.Transport, sc *store.Client) *Server {
	s := &Server{
		addr:           addr,
		id:             id,
		envr:           envr,
		node:           node,
		tr:             tr,
		sc:             sc,
		SyncInterval:   time.Millisecond,
		TidRange:       256,
		Peers:          []string{id},
		fin:            mvcc.NewSnapshot(0),
		comm:           mvcc.NewSnapshot(0),
		active:         make(map[uint64]activeTx),
		peerLav:        make(map[string]uint64),
		peerSeq:        make(map[string]uint64),
		peerStale:      make(map[string]int),
		peerRange:      make(map[string][2]uint64),
		deadPeers:      make(map[string]bool),
		clients:        make(map[string]*clientDescState),
		dedup:          resil.NewWindow(256),
		gate:           resil.NewGate(envr, 256, time.Millisecond),
		ActiveTTL:      30 * time.Second,
		StalePeerTicks: 5000,
		RecoveryGrace:  100 * time.Millisecond,
		RecoveryEvery:  100,
		lat:            metrics.NewSummary(),
	}
	s.mu.SetName("commitmgr.Server.mu")
	return s
}

// Addr returns the server's address.
func (s *Server) Addr() string { return s.addr }

// Sheds returns how many requests the admission gate rejected.
func (s *Server) Sheds() uint64 { return s.gate.Sheds() }

// Replays returns how many duplicate grouped starts were answered from the
// dedup window instead of re-executing.
func (s *Server) Replays() uint64 { return s.dedup.Replays() }

// Starts returns how many transactions this manager has started.
func (s *Server) Starts() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.starts
}

// Start registers the handler and the synchronization loop.
func (s *Server) Start() error {
	if err := s.tr.Listen(s.addr, s.node, s.handle); err != nil {
		return err
	}
	s.node.Go("cm-sync", s.syncLoop)
	return nil
}

// Stop ends the synchronization loop.
func (s *Server) Stop() {
	s.mu.Lock()
	s.stopped = true
	s.mu.Unlock()
}

// Restore rebuilds state from the peers' published snapshots — how a fresh
// commit manager takes over after a failure (§4.4.3).
func (s *Server) Restore(ctx env.Ctx) {
	s.pullPeers(ctx)
}

// Resume adopts the state this manager's own previous incarnation published
// to the store — the same-id variant of Restore, for a process restart
// against a store that outlived it (the durable tier makes that possible:
// a WAL-backed storage node replays the tid counter, the published CM
// state and every committed version, so a cold-started manager must not
// begin at snapshot base 0 and treat history as uncommitted). The published
// (fin, comm) fast-forward the descriptor past every tid the old process
// closed; the unissued tail of its last tid range is fenced and closed
// through the transaction log exactly like a dead peer's (§4.4.3). On a
// fresh store (no state record) this is a no-op.
func (s *Server) Resume(ctx env.Ctx) {
	raw, _, err := s.sc.Get(ctx, []byte(statePrefix+s.id))
	if err != nil {
		return
	}
	r := wire.NewReader(raw)
	pfin, err := mvcc.DecodeSnapshotFrom(r)
	if err != nil {
		return
	}
	pcomm, err := mvcc.DecodeSnapshotFrom(r)
	if err != nil {
		return
	}
	r.Uvarint() // lav: ours now that the old incarnation is gone
	pseq := r.Uvarint()
	pnext := r.Uvarint()
	pend := r.Uvarint()
	if r.Err() != nil {
		return
	}
	// "~prev" is not a valid peer id, so it is never pulled or published;
	// it exists only to route the old range through dead-peer recovery.
	const prev = "~prev"
	s.mu.Lock()
	s.merge(pfin, pcomm)
	if pseq > s.seq {
		s.seq = pseq // keep the publish sequence monotonic across restarts
	}
	s.peerRange[prev] = [2]uint64{pnext, pend}
	s.deadPeers[prev] = true
	s.advanceLocked()
	s.mu.Unlock()
	s.recoverDeadPeers(ctx)
	s.mu.Lock()
	delete(s.deadPeers, prev)
	delete(s.peerRange, prev)
	s.mu.Unlock()
}

func (s *Server) handle(ctx env.Ctx, raw []byte) []byte {
	if wire.PeekKind(raw) == wire.KindPing {
		return []byte{byte(wire.KindPong)}
	}
	if wire.PeekKind(raw) == wire.KindStatsReq {
		return s.handleStats(ctx)
	}
	if wire.PeekKind(raw) == wire.KindStatsExtReq {
		return s.obs.StatsExt(s.id).Encode()
	}
	// Admission control: shed rather than queue without bound (pings and
	// stats above bypass — the failure detector must see an overloaded
	// manager as alive).
	if !s.gate.Enter(ctx) {
		if len(raw) >= 2 && cmSub(raw[1]) == cmStartGroup {
			return (&StartGroupResp{Status: wire.StatusOverload}).Encode()
		}
		return ackResp(wire.StatusOverload)
	}
	resp := s.handleCM(ctx, raw)
	s.gate.Exit()
	return resp
}

func (s *Server) handleCM(ctx env.Ctx, raw []byte) []byte {
	r := wire.NewReader(raw)
	if wire.Kind(r.Byte()) != wire.KindCMReq {
		return ackResp(wire.StatusError)
	}
	began := ctx.Now()
	switch cmSub(r.Byte()) {
	case cmStart:
		resp := s.handleStart(ctx)
		s.recordLat("start", ctx.Now()-began)
		return resp
	case cmStartGroup:
		req, err := DecodeStartGroupReq(raw)
		if err != nil {
			return (&StartGroupResp{Status: wire.StatusError}).Encode()
		}
		resp := s.startGroupDedup(ctx, req)
		s.recordLat("start-group", ctx.Now()-began)
		return resp
	case cmFinished:
		tid := r.Uvarint()
		committed := r.Bool()
		if r.Err() != nil {
			return ackResp(wire.StatusError)
		}
		s.finish(tid, committed)
		s.recordLat("finish", ctx.Now()-began)
		return ackResp(wire.StatusOK)
	case cmFence:
		w := wire.NewWriter(16)
		w.Byte(byte(wire.KindCMResp))
		w.Byte(byte(cmFence))
		w.Byte(byte(wire.StatusOK))
		w.Uvarint(s.Lav())
		s.recordLat("fence", ctx.Now()-began)
		return w.Bytes()
	}
	return ackResp(wire.StatusError)
}

func (s *Server) recordLat(class string, d time.Duration) {
	s.mu.Lock()
	s.lat.Record(class, d)
	s.mu.Unlock()
	s.obs.ObserveClass(s.obs.Now(), s.id, class, d)
}

// handleStats serves a telemetry snapshot: per-class handler-latency digests
// plus start counts, the current lav, and any trace-recorder counters.
func (s *Server) handleStats(ctx env.Ctx) []byte {
	snap := &wire.StatsSnapshot{Node: s.id, UptimeNs: int64(ctx.Now())}
	s.mu.Lock()
	for _, name := range s.lat.Names() {
		h := s.lat.Get(name)
		snap.Classes = append(snap.Classes, wire.StatsClass{
			Name:   name,
			Count:  h.Count(),
			MeanNs: int64(h.Mean()),
			P99Ns:  int64(h.Percentile(99)),
			MaxNs:  int64(h.Max()),
		})
	}
	snap.Counters = append(snap.Counters,
		wire.StatsCounter{Name: "cm/starts", Value: int64(s.starts)},
		wire.StatsCounter{Name: "cm/active", Value: int64(len(s.active))},
		wire.StatsCounter{Name: "cm/lav", Value: int64(s.lavLocked())},
		wire.StatsCounter{Name: "cm/deltas", Value: int64(s.deltas)},
		wire.StatsCounter{Name: "cm/fulls", Value: int64(s.fulls)},
		wire.StatsCounter{Name: "resil/replays", Value: int64(s.dedup.Replays())},
		wire.StatsCounter{Name: "resil/sheds", Value: int64(s.gate.Sheds())},
	)
	s.mu.Unlock()
	for _, c := range env.Tracer(s.envr).Counters() {
		snap.Counters = append(snap.Counters, wire.StatsCounter{Name: "trace/" + c.Name, Value: c.Value})
	}
	return snap.Encode()
}

// peerIndex returns this manager's position in the (sorted) fleet and the
// fleet size, the parameters of interleaved allocation.
func (s *Server) peerIndex() (idx, n int) {
	n = len(s.Peers)
	if n == 0 {
		return 0, 1
	}
	sorted := append([]string(nil), s.Peers...)
	sortStrings(sorted)
	for i, p := range sorted {
		if p == s.id {
			return i, n
		}
	}
	return 0, n
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// handleStart implements start() → (tid, snapshot descriptor, lav).
func (s *Server) handleStart(ctx env.Ctx) []byte {
	ctx.Work(500 * time.Nanosecond)
	s.mu.Lock()
	if s.nextTid > s.tidEnd {
		// Range exhausted: reserve a fresh one through the shared
		// counter. Dropping the lock during the RPC would let
		// concurrent starts double-issue, so refill synchronously.
		s.mu.Unlock()
		if err := s.refillRange(ctx); err != nil {
			return ackResp(wire.StatusUnavailable)
		}
		s.mu.Lock()
		if s.nextTid > s.tidEnd {
			s.mu.Unlock()
			return ackResp(wire.StatusUnavailable)
		}
	}
	tid := s.nextTid
	if s.Interleaved {
		_, n := s.peerIndex()
		s.nextTid += uint64(n)
	} else {
		s.nextTid++
	}
	s.issuedThisTick = true
	s.starts++
	snap := s.comm.Clone()
	s.active[tid] = activeTx{base: snap.Base, at: ctx.Now()}
	lav := s.lavLocked()
	s.mu.Unlock()

	w := wire.NewWriter(64)
	w.Byte(byte(wire.KindCMResp))
	w.Byte(byte(cmStart))
	w.Byte(byte(wire.StatusOK))
	w.Uvarint(tid)
	snap.EncodeTo(w)
	w.Uvarint(lav)
	return w.Bytes()
}

// startGroupDedup is the exactly-once wrapper around handleStartGroup. A
// grouped start is NOT idempotent — re-executing allocates fresh tids (left
// active until ActiveTTL, pinning the lav) and advances the per-client
// descriptor sequence — so duplicates of a completed request replay the
// cached response byte-identically, and duplicates racing the in-flight
// original are refused with a retryable status. Failed executions release
// the token so the client's retry runs fresh.
func (s *Server) startGroupDedup(ctx env.Ctx, req *StartGroupReq) []byte {
	tokened := req.Client != "" && req.Seq != 0
	if tokened {
		cached, st := s.dedup.Begin(req.Client, req.Seq)
		switch st {
		case resil.StateReplay:
			return cached
		case resil.StateInFlight, resil.StateStale:
			return (&StartGroupResp{Status: wire.StatusUnavailable}).Encode()
		}
	}
	resp := s.handleStartGroup(ctx, req)
	if tokened {
		if len(resp) >= 3 && wire.Status(resp[2]) == wire.StatusOK {
			s.dedup.Commit(req.Client, req.Seq, resp) // Commit clones
		} else {
			s.dedup.Abort(req.Client, req.Seq)
		}
	}
	return resp
}

// clientDescState is the per-client descriptor memory behind delta
// encoding: the last snapshot sent and its sequence number.
type clientDescState struct {
	seq  uint64
	snap *mvcc.Snapshot
}

// handleStartGroup serves the coalesced protocol: apply the piggybacked
// finish notifications, allocate one tid per requested start, and answer
// with a single shared descriptor — as a delta against the client's last
// acknowledged one when the ack chain is intact, full otherwise.
func (s *Server) handleStartGroup(ctx env.Ctx, req *StartGroupReq) []byte {
	// Cost model: same base as a split start plus a small per-item charge
	// for the extra tids and folded finishes.
	ctx.Work(500*time.Nanosecond + time.Duration(int(req.Count)+len(req.Fins))*100*time.Nanosecond)

	// Finishes first, so the descriptor handed out reflects them: a client
	// whose commit rides this request must see its own transaction in the
	// next snapshot it receives.
	if len(req.Fins) > 0 {
		s.mu.Lock()
		for _, f := range req.Fins {
			delete(s.active, f.TID)
			s.fin.Add(f.TID)
			if f.Committed {
				s.comm.Add(f.TID)
			}
		}
		s.advanceLocked()
		s.mu.Unlock()
	}

	// Allocate Count tids, refilling the range as needed (same synchronous
	// discipline as handleStart: the lock never spans the counter RPC).
	tids := make([]uint64, 0, req.Count)
	for uint64(len(tids)) < req.Count {
		s.mu.Lock()
		step := uint64(1)
		if s.Interleaved {
			_, n := s.peerIndex()
			step = uint64(n)
		}
		for s.nextTid <= s.tidEnd && uint64(len(tids)) < req.Count {
			tids = append(tids, s.nextTid)
			s.nextTid += step
		}
		done := uint64(len(tids)) >= req.Count
		s.mu.Unlock()
		if done {
			break
		}
		if err := s.refillRange(ctx); err != nil {
			s.closeTids(tids)
			return (&StartGroupResp{Status: wire.StatusUnavailable}).Encode()
		}
		s.mu.Lock()
		empty := s.nextTid > s.tidEnd
		s.mu.Unlock()
		if empty {
			s.closeTids(tids)
			return (&StartGroupResp{Status: wire.StatusUnavailable}).Encode()
		}
	}

	resp := &StartGroupResp{Status: wire.StatusOK, TIDs: tids, Server: s.id, Full: true}
	now := ctx.Now()
	s.mu.Lock()
	if len(tids) > 0 {
		s.issuedThisTick = true
	}
	s.starts += uint64(len(tids))
	snap := s.comm.Clone()
	for _, tid := range tids {
		s.active[tid] = activeTx{base: snap.Base, at: now}
	}
	resp.Lav = s.lavLocked()
	ent := s.clients[req.Client]
	if ent != nil && req.AckSeq != 0 && req.AckServer == s.id && req.AckSeq == ent.seq {
		// Ack chain intact: the client still holds the descriptor we last
		// sent, so ship only the difference — unless the descriptor moved
		// so much that the delta would not actually save bytes.
		if d := mvcc.Diff(ent.snap, snap); d != nil && d.EncodedSize() < snap.Size() {
			resp.Full = false
			resp.Delta = d
		}
	}
	if resp.Full {
		resp.Snap = snap
		s.fulls++
	} else {
		s.deltas++
	}
	if req.Client != "" {
		seq := uint64(1)
		if ent != nil {
			seq = ent.seq + 1
		}
		s.clients[req.Client] = &clientDescState{seq: seq, snap: snap}
		resp.Seq = seq
	}
	s.mu.Unlock()
	return resp.Encode()
}

// closeTids finishes tids that were pulled from the range but can no longer
// be issued (the rest of their group's allocation failed). Left open they
// would pin the global base forever.
func (s *Server) closeTids(tids []uint64) {
	if len(tids) == 0 {
		return
	}
	s.mu.Lock()
	for _, tid := range tids {
		s.fin.Add(tid)
	}
	s.advanceLocked()
	s.mu.Unlock()
}

// refillRange reserves fresh tids. Contiguous mode bumps the shared store
// counter by TidRange. Interleaved mode reserves a *block* of the global
// sequence and issues only this manager's residue class within it: with n
// managers, block b covers tids (b·TidRange·n, (b+1)·TidRange·n] and
// manager i issues those ≡ i+1 (mod n). Uniqueness still comes from the
// shared counter (block ids never repeat).
func (s *Server) refillRange(ctx env.Ctx) error {
	//lint:allow guardedfield Interleaved is configuration, set before Start and immutable afterwards
	if !s.Interleaved {
		hi, err := s.sc.CounterAdd(ctx, []byte(tidCounterKey), s.TidRange)
		if err != nil {
			return err
		}
		lo := uint64(hi) - uint64(s.TidRange) + 1
		s.mu.Lock()
		if lo > s.tidEnd {
			s.nextTid, s.tidEnd = lo, uint64(hi)
		}
		s.mu.Unlock()
		return nil
	}
	idx, n := s.peerIndex()
	span := s.TidRange * int64(n)
	hi, err := s.sc.CounterAdd(ctx, []byte(tidCounterKey), span)
	if err != nil {
		return err
	}
	blockLo := uint64(hi) - uint64(span) + 1 // first tid of the block
	first := blockLo + uint64(idx)
	last := first + uint64(s.TidRange-1)*uint64(n)
	s.mu.Lock()
	if first > s.tidEnd {
		s.nextTid, s.tidEnd = first, last
		// The residue classes of the other managers in this block are
		// not ours to issue; if the fleet is smaller than n (or peers
		// idle), close them immediately so the base can advance. A peer
		// that reserved its own block never collides with these tids —
		// blocks are disjoint — but two managers could reserve different
		// blocks and leave each other's residues open; closing only our
		// own block's foreign residues is handled by each manager for
		// the blocks IT reserved, so every tid has exactly one closer.
		for t := blockLo; t <= blockLo+uint64(span)-1; t++ {
			if (t-blockLo)%uint64(n) != uint64(idx) {
				s.fin.Add(t)
			}
		}
		s.advanceLocked()
	}
	s.mu.Unlock()
	return nil
}

// finish implements setCommitted/setAborted.
func (s *Server) finish(tid uint64, committed bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.active, tid)
	s.fin.Add(tid)
	if committed {
		s.comm.Add(tid)
	}
	s.advanceLocked()
}

// advanceLocked normalizes the finished set and rebases the committed set
// onto the new base.
func (s *Server) advanceLocked() {
	oldBase := s.fin.Base
	s.fin.Normalize()
	if s.fin.Base == oldBase {
		return
	}
	reb := mvcc.NewSnapshot(s.fin.Base)
	for _, t := range s.comm.Members() {
		reb.Add(t)
	}
	s.comm = reb
}

// lavLocked is the lowest active version number: the smallest snapshot base
// among active transactions across the fleet (§4.2). Versions below it are
// garbage-collection candidates.
func (s *Server) lavLocked() uint64 {
	lav := s.fin.Base
	for _, a := range s.active {
		if a.base < lav {
			lav = a.base
		}
	}
	for _, p := range s.peerLav {
		if p < lav {
			lav = p
		}
	}
	return lav
}

// Lav exposes the current lav (used by the lazy background GC, §5.4).
func (s *Server) Lav() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lavLocked()
}

// Descriptor returns a copy of the current snapshot descriptor.
func (s *Server) Descriptor() *mvcc.Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.comm.Clone()
}

// syncLoop periodically publishes this manager's state to the store and
// merges the other managers' states (§4.2: "in short intervals, every
// commit manager writes its snapshot to the store and thereafter reads the
// latest snapshots of the other commit managers").
func (s *Server) syncLoop(ctx env.Ctx) {
	for {
		s.mu.Lock()
		stopped := s.stopped
		s.mu.Unlock()
		if stopped {
			return
		}
		s.closeIdleRange(ctx)
		s.pushState(ctx)
		if sc := ctx.Trace(); sc.R.Enabled() {
			s.mu.Lock()
			tick, lav := s.syncTick, s.lavLocked()
			s.mu.Unlock()
			sc.R.Instant(0, s.node.Name(), "epoch", int64(tick), int64(lav))
		}
		if len(s.Peers) > 1 {
			s.pullPeers(ctx)
			s.mu.Lock()
			s.syncTick++
			sweep := len(s.deadPeers) > 0 && s.syncTick%s.RecoveryEvery == 0
			s.mu.Unlock()
			if sweep {
				s.recoverDeadPeers(ctx)
			}
		}
		ctx.Sleep(s.SyncInterval)
	}
}

// closeIdleRange finishes the unissued remainder of the tid range if no tid
// was issued since the last tick, so the global base does not stall behind
// tids that will never run (§4.2 discusses the limitation of continuous
// ranges; this is the mitigation).
func (s *Server) closeIdleRange(ctx env.Ctx) {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Expire transactions that never reported back (see ActiveTTL). The
	// expired tids join fin in sorted order so its interval structure is
	// identical across runs.
	now := ctx.Now()
	var expired []uint64
	for tid, a := range s.active {
		if now-a.at > s.ActiveTTL {
			expired = append(expired, tid)
		}
	}
	slices.Sort(expired)
	for _, tid := range expired {
		delete(s.active, tid)
		s.fin.Add(tid)
	}
	if s.issuedThisTick {
		s.issuedThisTick = false
		s.advanceLocked()
		return
	}
	for s.nextTid <= s.tidEnd {
		s.fin.Add(s.nextTid)
		s.nextTid++
	}
	s.advanceLocked()
}

// activeTx records a running transaction's snapshot base and start time.
type activeTx struct {
	base uint64
	at   time.Duration
}

// pushState publishes (fin, comm, minActiveBase, unissued tid range).
func (s *Server) pushState(ctx env.Ctx) {
	s.mu.Lock()
	w := wire.NewWriter(64)
	s.fin.EncodeTo(w)
	s.comm.EncodeTo(w)
	minActive := s.fin.Base
	for _, a := range s.active {
		if a.base < minActive {
			minActive = a.base
		}
	}
	w.Uvarint(minActive)
	s.seq++
	w.Uvarint(s.seq)
	w.Uvarint(s.nextTid)
	w.Uvarint(s.tidEnd)
	payload := w.Bytes()
	s.mu.Unlock()
	//lint:allow errdiscard best-effort gossip: a failed publish leaves peers on the previous epoch and the next pushState supersedes it
	s.sc.Put(ctx, []byte(statePrefix+s.id), payload)
}

// pullPeers merges every peer's published state into ours.
func (s *Server) pullPeers(ctx env.Ctx) {
	for _, peer := range s.Peers {
		if peer == s.id {
			continue
		}
		raw, _, err := s.sc.Get(ctx, []byte(statePrefix+peer))
		if err != nil {
			continue
		}
		r := wire.NewReader(raw)
		pfin, err := mvcc.DecodeSnapshotFrom(r)
		if err != nil {
			continue
		}
		pcomm, err := mvcc.DecodeSnapshotFrom(r)
		if err != nil {
			continue
		}
		plav := r.Uvarint()
		pseq := r.Uvarint()
		pnext := r.Uvarint()
		pend := r.Uvarint()
		if r.Err() != nil {
			continue
		}
		s.mu.Lock()
		s.merge(pfin, pcomm)
		s.peerRange[peer] = [2]uint64{pnext, pend}
		if pseq == s.peerSeq[peer] {
			s.peerStale[peer]++
			if s.peerStale[peer] > s.StalePeerTicks {
				// Presumed dead: stop letting it pin the lav, and mark it
				// for transaction-log recovery (§4.4.3).
				delete(s.peerLav, peer)
				s.deadPeers[peer] = true
			}
		} else {
			s.peerSeq[peer] = pseq
			s.peerStale[peer] = 0
			s.peerLav[peer] = plav
			delete(s.deadPeers, peer) // publishing again: it is back
		}
		s.advanceLocked()
		s.mu.Unlock()
	}
}

// recoverDeadPeers reconstructs the finish facts a crashed manager took
// with it (§4.4.3). A manager's fin/comm sets are soft state pushed to the
// store every SyncInterval; a crash loses at most the last interval of
// acknowledged finish reports plus the unissued remainder of its tid range,
// and both would stall the global snapshot base forever. The durable truth
// is the transaction log (§4.4.1): a transaction is committed iff its log
// entry carries the committed flag. The sweep therefore
//
//  1. closes the dead peer's published unissued range, writing a fenced
//     log entry first so the tid can never be issued and committed later
//     (a falsely-suspected manager that still holds the range stays safe:
//     its transactions fail the log append and abort), and
//  2. walks the log over the unfinished gap and finishes every entry with
//     a recorded outcome; entries without one are fenced off as aborted
//     once they are older than RecoveryGrace, matching the recovery rule
//     for failed processing nodes.
func (s *Server) recoverDeadPeers(ctx env.Ctx) {
	s.mu.Lock()
	dead := make([]string, 0, len(s.deadPeers))
	for p := range s.deadPeers {
		dead = append(dead, p)
	}
	// Recovery issues log and storage requests per dead peer; keep that
	// order independent of map iteration.
	slices.Sort(dead)
	finBase := s.fin.Base
	s.mu.Unlock()
	if len(dead) == 0 {
		return
	}
	hi, err := s.sc.CounterAdd(ctx, []byte(tidCounterKey), 0)
	if err != nil || hi <= 0 {
		return
	}
	l := txlog.New(s.sc)

	// 1. Fence and close the unissued ranges of dead peers.
	for _, p := range dead {
		s.mu.Lock()
		rng, ok := s.peerRange[p]
		s.mu.Unlock()
		if !ok || rng[0] > rng[1] {
			continue
		}
		for tid := rng[0]; tid <= rng[1]; tid++ {
			if s.tidFinished(tid) {
				continue
			}
			s.fenceAndClose(ctx, l, tid)
		}
	}

	// 2. Sweep the log over the unfinished gap for recorded outcomes.
	now := ctx.Now()
	var entries []*txlog.Entry
	l.ScanBackward(ctx, finBase+1, uint64(hi), func(e *txlog.Entry) bool {
		entries = append(entries, e)
		return true
	})
	for _, e := range entries {
		if s.tidFinished(e.TID) {
			continue
		}
		switch {
		case e.Committed:
			s.finish(e.TID, true)
		case e.Aborted:
			s.finish(e.TID, false)
		case now-e.Timestamp > s.RecoveryGrace:
			// No outcome for a long time: the report was lost with the
			// dead manager. Fence, then close; the fence resolves the race
			// with an owner that is merely slow.
			if fenced, committed, err := l.MarkAborted(ctx, e.TID); err == nil {
				if committed {
					s.finish(e.TID, true)
				} else if fenced {
					s.finish(e.TID, false)
				}
			}
		}
	}
}

// tidFinished reports whether tid is already in the finished set.
func (s *Server) tidFinished(tid uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fin.Contains(tid)
}

// fenceAndClose writes a pre-fenced log entry for a tid that was never
// issued and marks it finished. If an entry already exists the tid WAS
// issued in the dead manager's final interval; an entry with an outcome is
// applied, one without is left for the grace-period sweep.
func (s *Server) fenceAndClose(ctx env.Ctx, l *txlog.Log, tid uint64) {
	err := l.Append(ctx, &txlog.Entry{
		TID:       tid,
		PN:        "recovery:" + s.id,
		Timestamp: ctx.Now(),
		Aborted:   true,
	})
	if err == nil {
		s.finish(tid, false)
		return
	}
	e, err := l.Get(ctx, tid)
	if err != nil {
		return
	}
	switch {
	case e.Committed:
		s.finish(tid, true)
	case e.Aborted:
		s.finish(tid, false)
	}
}

// merge folds a peer's (fin, comm) into ours. Caller holds s.mu.
func (s *Server) merge(pfin, pcomm *mvcc.Snapshot) {
	// Union of finished sets: a higher base is a global fact (all those
	// tids finished), so take the max and the union of extras.
	if pfin.Base > s.fin.Base {
		newFin := pfin.Clone()
		for _, t := range s.fin.Members() {
			newFin.Add(t)
		}
		s.fin = newFin
	} else {
		for _, t := range pfin.Members() {
			s.fin.Add(t)
		}
	}
	if pcomm.Base > s.comm.Base {
		newComm := pcomm.Clone()
		for _, t := range s.comm.Members() {
			newComm.Add(t)
		}
		s.comm = newComm
	} else {
		for _, t := range pcomm.Members() {
			s.comm.Add(t)
		}
	}
}

// ackResp encodes a status-only response.
func ackResp(st wire.Status) []byte {
	return []byte{byte(wire.KindCMResp), byte(cmFinished), byte(st)}
}

type cmSub byte

const (
	cmStart cmSub = iota + 1
	cmFinished
	// cmStartGroup is the coalesced protocol: starts, finish notifications
	// and a (possibly delta-encoded) descriptor in one round trip.
	cmStartGroup
	// cmFence samples the snapshot boundary (the lav) for a migration
	// cutover: every transaction that started before the fence call holds a
	// snapshot at or above the returned version, so the storage manager can
	// record what the cutover serialized against.
	cmFence
)
