package commitmgr_test

import (
	"fmt"
	"testing"
	"time"

	"tell/internal/commitmgr"
	"tell/internal/env"
	"tell/internal/sim"
	"tell/internal/store"
	"tell/internal/testutil"
	"tell/internal/transport"
	"tell/internal/wire"
)

// cmHarness wires a store cluster plus n commit managers on the simulator.
type cmHarness struct {
	k      *sim.Kernel
	envr   env.Full
	net    *transport.SimNet
	sc     *store.Cluster
	cms    []*commitmgr.Server
	client *commitmgr.Client
	pn     env.Node
}

func newCMHarness(t *testing.T, nCMs int) *cmHarness {
	t.Helper()
	k := sim.NewKernel(testutil.Seed(t, 3))
	envr := env.NewSim(k)
	net := transport.NewSimNet(k, transport.InfiniBand())
	sc, err := store.NewCluster(envr, net, store.ClusterConfig{NumNodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	h := &cmHarness{k: k, envr: envr, net: net, sc: sc}
	var ids []string
	for i := 0; i < nCMs; i++ {
		ids = append(ids, fmt.Sprintf("cm%d", i))
	}
	var addrs []string
	for i := 0; i < nCMs; i++ {
		addr := fmt.Sprintf("cm%d", i)
		node := envr.NewNode(addr, 2)
		srv := commitmgr.New(addr, addr, envr, node, net, sc.NewClient(node))
		srv.Peers = ids
		if err := srv.Start(); err != nil {
			t.Fatal(err)
		}
		h.cms = append(h.cms, srv)
		addrs = append(addrs, addr)
	}
	h.pn = envr.NewNode("pn0", 2)
	h.client = commitmgr.NewClient(envr, h.pn, net, addrs)
	return h
}

func (h *cmHarness) run(t *testing.T, fn func(ctx env.Ctx)) {
	t.Helper()
	done := false
	h.pn.Go("test", func(ctx env.Ctx) {
		fn(ctx)
		done = true
		h.k.Stop()
	})
	if err := h.k.RunUntil(sim.Time(300 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("test activity did not finish")
	}
	h.k.Shutdown()
}

func TestStartAssignsUniqueIncreasingTids(t *testing.T) {
	h := newCMHarness(t, 1)
	h.run(t, func(ctx env.Ctx) {
		seen := make(map[uint64]bool)
		last := uint64(0)
		for i := 0; i < 100; i++ {
			res, err := h.client.Start(ctx)
			if err != nil {
				t.Fatalf("start: %v", err)
			}
			if seen[res.TID] {
				t.Fatalf("tid %d issued twice", res.TID)
			}
			seen[res.TID] = true
			if res.TID <= last {
				t.Fatalf("tid %d not increasing after %d", res.TID, last)
			}
			last = res.TID
			// Own tid is never in the snapshot.
			if res.Snap.Contains(res.TID) {
				t.Fatalf("snapshot contains own tid %d", res.TID)
			}
			h.client.Committed(ctx, res.TID)
		}
	})
}

func TestCommittedBecomesVisible(t *testing.T) {
	h := newCMHarness(t, 1)
	h.run(t, func(ctx env.Ctx) {
		t1, _ := h.client.Start(ctx)
		t2, _ := h.client.Start(ctx)
		// t2 must not see t1 (still running).
		if t2.Snap.Contains(t1.TID) {
			t.Fatal("running transaction visible")
		}
		h.client.Committed(ctx, t1.TID)
		t3, _ := h.client.Start(ctx)
		if !t3.Snap.Contains(t1.TID) {
			t.Fatal("committed transaction not visible")
		}
		if t3.Snap.Contains(t2.TID) {
			t.Fatal("still-running transaction visible")
		}
		h.client.Committed(ctx, t2.TID)
		h.client.Committed(ctx, t3.TID)
	})
}

func TestAbortedNeverEntersCommittedSetButBaseAdvances(t *testing.T) {
	h := newCMHarness(t, 1)
	h.run(t, func(ctx env.Ctx) {
		t1, _ := h.client.Start(ctx)
		h.client.Aborted(ctx, t1.TID)
		t2, _ := h.client.Start(ctx)
		// Base must have advanced past the aborted tid (its updates were
		// rolled back, so {≤b} treating it as readable is harmless —
		// there is nothing to read).
		if t2.Snap.Base < t1.TID {
			t.Fatalf("base %d did not advance past aborted %d", t2.Snap.Base, t1.TID)
		}
		h.client.Committed(ctx, t2.TID)
	})
}

func TestLavTracksOldestActive(t *testing.T) {
	h := newCMHarness(t, 1)
	h.run(t, func(ctx env.Ctx) {
		told, _ := h.client.Start(ctx) // long-running
		for i := 0; i < 20; i++ {
			r, _ := h.client.Start(ctx)
			h.client.Committed(ctx, r.TID)
		}
		r, _ := h.client.Start(ctx)
		if r.Lav > told.Snap.Base {
			t.Fatalf("lav %d advanced past oldest active's base %d", r.Lav, told.Snap.Base)
		}
		h.client.Committed(ctx, told.TID)
		h.client.Committed(ctx, r.TID)
		// After the old transaction finished, lav can move.
		r2, _ := h.client.Start(ctx)
		if r2.Lav <= told.Snap.Base {
			t.Fatalf("lav %d stuck after oldest finished", r2.Lav)
		}
		h.client.Committed(ctx, r2.TID)
	})
}

func TestIdleRangeCloseAdvancesBase(t *testing.T) {
	h := newCMHarness(t, 1)
	h.run(t, func(ctx env.Ctx) {
		r, _ := h.client.Start(ctx)
		h.client.Committed(ctx, r.TID)
		// The range has ~255 unissued tids. After a few idle sync ticks
		// they must be closed so the base advances to the range end.
		ctx.Sleep(20 * time.Millisecond)
		r2, _ := h.client.Start(ctx)
		if r2.Snap.Base < r.TID {
			t.Fatalf("base %d stalled behind unissued range (tid %d)", r2.Snap.Base, r.TID)
		}
		if len(r2.Snap.Members()) != 0 {
			t.Fatalf("descriptor still carries bits: %v", r2.Snap)
		}
		h.client.Committed(ctx, r2.TID)
	})
}

func TestTwoCommitManagersIssueDisjointTids(t *testing.T) {
	h := newCMHarness(t, 2)
	// Talk to each CM directly via separate clients.
	c0 := commitmgr.NewClient(h.envr, h.pn, h.net, []string{"cm0"})
	c1 := commitmgr.NewClient(h.envr, h.pn, h.net, []string{"cm1"})
	h.run(t, func(ctx env.Ctx) {
		seen := make(map[uint64]string)
		for i := 0; i < 50; i++ {
			r0, err := c0.Start(ctx)
			if err != nil {
				t.Fatalf("cm0 start: %v", err)
			}
			r1, err := c1.Start(ctx)
			if err != nil {
				t.Fatalf("cm1 start: %v", err)
			}
			for tid, who := range map[uint64]string{r0.TID: "cm0", r1.TID: "cm1"} {
				if prev, dup := seen[tid]; dup {
					t.Fatalf("tid %d issued by both %s and %s", tid, prev, who)
				}
				seen[tid] = who
			}
			c0.Committed(ctx, r0.TID)
			c1.Committed(ctx, r1.TID)
		}
	})
}

func TestCrossManagerVisibilityAfterSync(t *testing.T) {
	h := newCMHarness(t, 2)
	c0 := commitmgr.NewClient(h.envr, h.pn, h.net, []string{"cm0"})
	c1 := commitmgr.NewClient(h.envr, h.pn, h.net, []string{"cm1"})
	h.run(t, func(ctx env.Ctx) {
		r0, err := c0.Start(ctx)
		if err != nil {
			t.Fatalf("start: %v", err)
		}
		c0.Committed(ctx, r0.TID)
		// Within the sync interval the other manager may not know yet;
		// after a few intervals it must.
		ctx.Sleep(10 * time.Millisecond)
		r1, err := c1.Start(ctx)
		if err != nil {
			t.Fatalf("start: %v", err)
		}
		if !r1.Snap.Contains(r0.TID) {
			t.Fatalf("cm1 snapshot %v does not contain cm0's committed tid %d", r1.Snap, r0.TID)
		}
		c1.Committed(ctx, r1.TID)
	})
}

func TestClientFailsOverToNextManager(t *testing.T) {
	h := newCMHarness(t, 2)
	h.run(t, func(ctx env.Ctx) {
		r, err := h.client.Start(ctx)
		if err != nil {
			t.Fatalf("start: %v", err)
		}
		h.client.Committed(ctx, r.TID)
		// Kill cm0; the client must transparently use cm1.
		h.net.SetDown("cm0", true)
		r2, err := h.client.Start(ctx)
		if err != nil {
			t.Fatalf("start after cm0 death: %v", err)
		}
		if err := h.client.Committed(ctx, r2.TID); err != nil {
			t.Fatalf("commit after cm0 death: %v", err)
		}
	})
}

func TestFreshManagerRestoresStateFromStore(t *testing.T) {
	h := newCMHarness(t, 1)
	h.run(t, func(ctx env.Ctx) {
		var lastTid uint64
		for i := 0; i < 30; i++ {
			r, err := h.client.Start(ctx)
			if err != nil {
				t.Fatalf("start: %v", err)
			}
			h.client.Committed(ctx, r.TID)
			lastTid = r.TID
		}
		ctx.Sleep(5 * time.Millisecond) // let state publish
		// Boot a replacement manager that has never seen any traffic.
		node := h.envr.NewNode("cm9", 2)
		srv := commitmgr.New("cm9", "cm9", h.envr, node, h.net, h.sc.NewClient(node))
		srv.Peers = []string{"cm0", "cm9"}
		srv.Restore(ctx)
		if err := srv.Start(); err != nil {
			t.Fatal(err)
		}
		c9 := commitmgr.NewClient(h.envr, h.pn, h.net, []string{"cm9"})
		r, err := c9.Start(ctx)
		if err != nil {
			t.Fatalf("start at restored manager: %v", err)
		}
		// The restored manager must know all previous commits and issue
		// a tid beyond them (counter-based uniqueness).
		if !r.Snap.Contains(lastTid) {
			t.Fatalf("restored snapshot %v missing tid %d", r.Snap, lastTid)
		}
		if r.TID <= lastTid {
			t.Fatalf("restored manager issued stale tid %d <= %d", r.TID, lastTid)
		}
		c9.Committed(ctx, r.TID)
	})
}

func TestInterleavedTidsUniqueAndBaseAdvances(t *testing.T) {
	h := newCMHarness(t, 2)
	for _, cm := range h.cms {
		cm.Interleaved = true
		cm.TidRange = 8
	}
	c0 := commitmgr.NewClient(h.envr, h.pn, h.net, []string{"cm0"})
	c1 := commitmgr.NewClient(h.envr, h.pn, h.net, []string{"cm1"})
	h.run(t, func(ctx env.Ctx) {
		seen := make(map[uint64]bool)
		for i := 0; i < 60; i++ {
			r0, err := c0.Start(ctx)
			if err != nil {
				t.Fatalf("cm0: %v", err)
			}
			r1, err := c1.Start(ctx)
			if err != nil {
				t.Fatalf("cm1: %v", err)
			}
			if seen[r0.TID] || seen[r1.TID] || r0.TID == r1.TID {
				t.Fatalf("duplicate tid: %d / %d", r0.TID, r1.TID)
			}
			seen[r0.TID] = true
			seen[r1.TID] = true
			c0.Committed(ctx, r0.TID)
			c1.Committed(ctx, r1.TID)
		}
		// After everything finished and synced, a fresh snapshot's base
		// must cover all issued tids (no stuck residues).
		ctx.Sleep(30 * time.Millisecond)
		r, err := c0.Start(ctx)
		if err != nil {
			t.Fatal(err)
		}
		for tid := range seen {
			if !r.Snap.Contains(tid) {
				t.Fatalf("tid %d not visible (base %d)", tid, r.Snap.Base)
			}
		}
		if len(r.Snap.Members()) != 0 {
			t.Fatalf("descriptor carries %d bits; base stalled", len(r.Snap.Members()))
		}
		c0.Committed(ctx, r.TID)
	})
}

// TestStatsSnapshot: a KindStatsReq against a commit manager must return a
// snapshot reflecting the starts it has served.
func TestStatsSnapshot(t *testing.T) {
	h := newCMHarness(t, 1)
	h.run(t, func(ctx env.Ctx) {
		for i := 0; i < 3; i++ {
			if _, err := h.client.Start(ctx); err != nil {
				t.Fatalf("start: %v", err)
			}
		}
		conn, err := h.net.Dial(h.pn, "cm0")
		if err != nil {
			t.Fatal(err)
		}
		raw, err := conn.RoundTrip(ctx, wire.EncodeStatsReq())
		if err != nil {
			t.Fatal(err)
		}
		snap, err := wire.DecodeStatsSnapshot(raw)
		if err != nil {
			t.Fatal(err)
		}
		if snap.Node != "cm0" {
			t.Fatalf("node %q", snap.Node)
		}
		// The default client coalesces starts into grouped requests, so the
		// latency class is "start-group"; the split protocol records
		// "start". Sequential starts cannot batch, so either way three
		// requests were served.
		var startCount uint64
		for _, c := range snap.Classes {
			if c.Name == "start" || c.Name == "start-group" {
				startCount += c.Count
			}
		}
		if startCount != 3 {
			t.Fatalf("start(+group) class count %d, want 3", startCount)
		}
		counters := map[string]int64{}
		for _, c := range snap.Counters {
			counters[c.Name] = c.Value
		}
		if counters["cm/starts"] != 3 {
			t.Fatalf("cm/starts = %d", counters["cm/starts"])
		}
	})
}

func TestRestartedManagerResumesOwnState(t *testing.T) {
	// Same-id restart against a store that outlived the manager (the
	// durable-tier scenario: WAL replay brings back the tid counter and
	// the published CM state, then a cold-started cm0 must not treat the
	// old commits as uncommitted).
	h := newCMHarness(t, 1)
	h.run(t, func(ctx env.Ctx) {
		var lastTid uint64
		for i := 0; i < 30; i++ {
			r, err := h.client.Start(ctx)
			if err != nil {
				t.Fatalf("start: %v", err)
			}
			h.client.Committed(ctx, r.TID)
			lastTid = r.TID
		}
		ctx.Sleep(5 * time.Millisecond) // let cm0 publish its state
		h.cms[0].Stop()
		// Boot a fresh process with the SAME id against the same store.
		node := h.envr.NewNode("cm0b", 2)
		srv := commitmgr.New("cm0", "cm0b", h.envr, node, h.net, h.sc.NewClient(node))
		srv.Resume(ctx)
		if err := srv.Start(); err != nil {
			t.Fatal(err)
		}
		cb := commitmgr.NewClient(h.envr, h.pn, h.net, []string{"cm0b"})
		r, err := cb.Start(ctx)
		if err != nil {
			t.Fatalf("start at resumed manager: %v", err)
		}
		if !r.Snap.Contains(lastTid) {
			t.Fatalf("resumed snapshot %v missing committed tid %d", r.Snap, lastTid)
		}
		if r.TID <= lastTid {
			t.Fatalf("resumed manager issued stale tid %d <= %d", r.TID, lastTid)
		}
		cb.Committed(ctx, r.TID)
		// A second resume on a store with no state record is a no-op: a
		// brand-new id must still come up at base 0 without erroring.
		node2 := h.envr.NewNode("cmZ", 2)
		fresh := commitmgr.New("cmZ", "cmZ", h.envr, node2, h.net, h.sc.NewClient(node2))
		fresh.Resume(ctx)
		if err := fresh.Start(); err != nil {
			t.Fatal(err)
		}
	})
}
