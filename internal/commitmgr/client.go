package commitmgr

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"tell/internal/env"
	"tell/internal/mvcc"
	"tell/internal/resil"
	"tell/internal/sanitize"
	"tell/internal/trace"
	"tell/internal/transport"
	"tell/internal/wire"
)

// ErrUnavailable means no commit manager could be reached.
var ErrUnavailable = errors.New("commitmgr: no commit manager available")

// ErrClosed means the client was closed.
var ErrClosed = errors.New("commitmgr: client closed")

// Client is the PN-side interface to the commit-manager fleet. If the
// current manager becomes unreachable, the client switches to the next one
// (§4.4.3: "if a commit manager becomes unavailable, PNs automatically
// switch to the next one").
//
// By default the client coalesces the commit path: all Start and
// Committed/Aborted calls funnel through one sender activity that packs
// whatever is pending — up to MaxGroup starts plus the buffered finish
// notifications — into a single grouped round trip sharing one descriptor
// fetch, delta-encoded against the last descriptor acknowledged. While one
// request is in flight the next group accumulates, so under load the
// protocol self-paces toward large groups and steady-state CM messages per
// transaction drop well below the 2 (one start, one finished) of the split
// protocol. Every call still blocks until its operation is acknowledged, so
// ordering guarantees are unchanged: when Committed returns, a subsequent
// Start anywhere sees the commit (modulo multi-manager sync lag, as
// before). Set Coalesce=false for the original one-RPC-per-call protocol.
type Client struct {
	envr env.Full
	node env.Node
	tr   transport.Transport

	// Retries per request before giving up (after rotating through the
	// whole fleet each attempt).
	Retries int
	// Coalesce enables the grouped protocol (see type comment).
	Coalesce bool
	// DeltaSnapshots lets the manager send descriptor deltas instead of
	// full bitsets. Only meaningful with Coalesce.
	DeltaSnapshots bool
	// MaxGroup caps how many concurrent Start calls share one request.
	MaxGroup int
	// FinFlush is how long a group holding only finish notifications waits
	// for a Start to piggyback on before going out alone. Zero sends
	// fin-only groups immediately (lowest commit latency, one more
	// message); at the default each finish can wait a few network round
	// trips for company.
	FinFlush time.Duration
	// Resil drives grouped-request retries: capped backoff with seeded
	// jitter, resending the identical bytes each attempt so the manager's
	// dedup window can replay rather than re-execute. No circuit breaker —
	// roundTrip already rotates through the whole fleet per attempt.
	Resil *resil.Retrier

	mu     sanitize.Mutex
	addrs  []string
	cur    int
	conns  map[string]transport.Conn
	closed bool
	// cmSeq numbers grouped requests for the dedup token; clientID names
	// this client instance in tokens and descriptor-delta tracking (unique
	// per instance so two clients on one node cannot collide).
	cmSeq    uint64
	clientID string
	// Coalescer state. Only the sender activity performs grouped RPCs and
	// touches the delta-descriptor cache; the mutex covers what crosses
	// activities (connection map, stats counters, closed flag).
	startQ   env.Queue
	senderOn bool
	lastSrv  string
	lastSeq  uint64
	lastSnap *mvcc.Snapshot
	nMsgs    uint64
	nStarts  uint64
	nFins    uint64
}

// cmClientInstances numbers client instances for token identity, per
// environment: ids go into wire idempotency tokens, so a process-global
// counter would make one run's message bytes (and its simulated timing)
// depend on how many runs preceded it in the same process. Entries are
// never deleted; environments are few and small per process.
var (
	cmClientInstMu sync.Mutex
	cmClientInst   = make(map[env.Env]uint64)
)

func nextCMClientID(envr env.Env, node string) string {
	cmClientInstMu.Lock()
	defer cmClientInstMu.Unlock()
	cmClientInst[envr]++
	return fmt.Sprintf("%s#%d", node, cmClientInst[envr])
}

// NewClient creates a client that talks to the managers at addrs. The
// coalesced protocol is on by default.
func NewClient(envr env.Full, node env.Node, tr transport.Transport, addrs []string) *Client {
	c := &Client{
		envr:           envr,
		node:           node,
		tr:             tr,
		Retries:        2,
		Coalesce:       true,
		DeltaSnapshots: true,
		MaxGroup:       16,
		FinFlush:       100 * time.Microsecond,
		Resil:          resil.NewRetrier(),
		addrs:          append([]string(nil), addrs...),
		conns:          make(map[string]transport.Conn),
		clientID:       nextCMClientID(envr, nodeLabel(node)),
	}
	c.mu.SetName("commitmgr.Client.mu")
	return c
}

// nextSeq issues the next grouped-request idempotency token.
func (c *Client) nextSeq() uint64 {
	c.mu.Lock()
	c.cmSeq++
	s := c.cmSeq
	c.mu.Unlock()
	return s
}

// Msgs returns how many CM round trips this client has issued.
func (c *Client) Msgs() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nMsgs
}

// Started returns how many transaction starts this client has served.
func (c *Client) Started() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nStarts
}

// FinsSent returns how many finish notifications were acknowledged.
func (c *Client) FinsSent() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nFins
}

// Close shuts the coalescer down. Operations already queued are still
// served (the sender drains the queue before exiting); new calls fail with
// ErrClosed.
func (c *Client) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	q := c.startQ
	c.mu.Unlock()
	if q != nil {
		q.Close()
	}
}

func (c *Client) conn(addr string) (transport.Conn, error) {
	c.mu.Lock()
	if conn, ok := c.conns[addr]; ok {
		c.mu.Unlock()
		return conn, nil
	}
	c.mu.Unlock()
	// Dial outside the lock: fleet rotation must keep trying other
	// managers while one dial hangs.
	conn, err := c.tr.Dial(c.node, addr)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if exist, ok := c.conns[addr]; ok {
		// Lost a dial race; keep the first connection.
		//lint:allow errdiscard closing a redundant just-dialed connection nothing was sent on
		conn.Close()
		return exist, nil
	}
	c.conns[addr] = conn
	return conn, nil
}

// roundTrip tries the current manager, rotating through the fleet on
// failure. It returns the connection that served the request so callers can
// model its wire time.
func (c *Client) roundTrip(ctx env.Ctx, req []byte) ([]byte, transport.Conn, error) {
	c.mu.Lock()
	n := len(c.addrs)
	start := c.cur
	c.nMsgs++
	c.mu.Unlock()
	ctx.Trace().R.CounterAdd(nodeLabel(c.node), "cm/msgs", 1)
	for i := 0; i < n; i++ {
		addr := c.addrs[(start+i)%n]
		conn, err := c.conn(addr)
		if err != nil {
			continue
		}
		//lint:allow ctxdeadline fleet-rotation primitive: grouped callers wrap it in Resil.Do(ClassCM); the solo path bounds retries with c.Retries
		resp, err := conn.RoundTrip(ctx, req)
		if err != nil {
			continue
		}
		if i != 0 {
			c.mu.Lock()
			c.cur = (start + i) % n
			c.mu.Unlock()
		}
		return resp, conn, nil
	}
	return nil, nil, ErrUnavailable
}

func nodeLabel(n env.Node) string {
	if n == nil {
		return "?"
	}
	return n.Name()
}

// StartResult is everything a transaction receives at begin (§4.2).
type StartResult struct {
	TID  uint64
	Snap *mvcc.Snapshot
	Lav  uint64
}

// startWaiter is one coalesced Start call parked on the sender queue; its
// future resolves to a startOutcome. span/enq mirror the store batcher's
// pendingOp: the submitting transaction's span parents the group's network
// flow, and enq feeds the blocked-time attribution.
type startWaiter struct {
	fut  env.Future
	span trace.SpanID
	enq  time.Duration
}

// finWaiter is one coalesced Committed/Aborted call; its future resolves to
// a finOutcome.
type finWaiter struct {
	note FinNote
	fut  env.Future
	span trace.SpanID
	enq  time.Duration
}

// rpcTiming is the timing split the sender observed for one grouped round
// trip (zero when untraced): queue wait before the request left, and the
// modelled wire time; the waiter books the rest of its blocked time as
// remote service.
type rpcTiming struct {
	qwait time.Duration
	net   time.Duration
}

// startOutcome is what a startWaiter's future resolves to.
type startOutcome struct {
	res StartResult
	err error
	t   rpcTiming
}

// finOutcome is what a finWaiter's future resolves to.
type finOutcome struct {
	err error
	t   rpcTiming
}

// Start begins a new transaction.
func (c *Client) Start(ctx env.Ctx) (StartResult, error) {
	if !c.Coalesce {
		return c.startSolo(ctx)
	}
	w := &startWaiter{fut: c.envr.NewFuture(), span: ctx.Trace().Span, enq: ctx.Now()}
	if err := c.enqueue(w); err != nil {
		return StartResult{}, err
	}
	sc := ctx.Trace()
	var waitStart time.Duration
	if sc.Agg != nil {
		waitStart = ctx.Now()
	}
	out := w.fut.Get(ctx).(startOutcome)
	if sc.Agg != nil {
		attributeWait(sc, ctx.Now()-waitStart, out.t)
	}
	return out.res, out.err
}

// attributeWait splits time blocked on the coalescer into the components
// the sender observed: queue wait before the group left, modelled wire
// time, and the remainder as remote service (same split as the store
// batcher's waiter side).
func attributeWait(sc *trace.Scope, total time.Duration, t rpcTiming) {
	q, net := t.qwait, t.net
	if q > total {
		q = total
	}
	if net > total-q {
		net = total - q
	}
	sc.Agg.Add(trace.CompPoolWait, q)
	sc.Agg.Add(trace.CompNetwork, net)
	sc.Agg.Add(trace.CompRemote, total-q-net)
}

// Committed reports a successful commit (setCommitted, §4.2). Under the
// coalesced protocol the notification piggybacks on the next grouped
// request; the call still blocks until the manager acknowledges it.
func (c *Client) Committed(ctx env.Ctx, tid uint64) error {
	if !c.Coalesce {
		return c.finished(ctx, tid, true)
	}
	return c.finGrouped(ctx, tid, true)
}

// Aborted reports an abort after rollback (setAborted, §4.2). See Committed
// for coalesced-delivery semantics.
func (c *Client) Aborted(ctx env.Ctx, tid uint64) error {
	if !c.Coalesce {
		return c.finished(ctx, tid, false)
	}
	return c.finGrouped(ctx, tid, false)
}

func (c *Client) finGrouped(ctx env.Ctx, tid uint64, committed bool) error {
	w := &finWaiter{
		note: FinNote{TID: tid, Committed: committed},
		fut:  c.envr.NewFuture(),
		span: ctx.Trace().Span,
		enq:  ctx.Now(),
	}
	if err := c.enqueue(w); err != nil {
		return err
	}
	sc := ctx.Trace()
	var waitStart time.Duration
	if sc.Agg != nil {
		waitStart = ctx.Now()
	}
	out := w.fut.Get(ctx).(finOutcome)
	if sc.Agg != nil {
		attributeWait(sc, ctx.Now()-waitStart, out.t)
	}
	return out.err
}

// enqueue parks w on the sender queue, starting the sender on first use.
func (c *Client) enqueue(w any) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	if c.startQ == nil {
		c.startQ = c.envr.NewQueue()
	}
	q := c.startQ
	spawn := !c.senderOn
	c.senderOn = true
	c.mu.Unlock()
	if spawn {
		c.node.Go("cm-sender", c.senderLoop)
	}
	q.Put(w)
	return nil
}

// senderLoop is the only activity that issues grouped RPCs: it drains the
// queue into one bounded group and sends a single request for all of it.
// Requests self-pace — while one round trip is in flight the next group
// accumulates.
func (c *Client) senderLoop(ctx env.Ctx) {
	for {
		v, ok := c.startQ.Get(ctx)
		if !ok {
			return
		}
		starts, fins := c.collectGroup(ctx, v)
		c.sendGroup(ctx, starts, fins)
	}
}

// collectGroup greedily drains the queue into one group, starting from
// first. A group holding only finish notifications lingers up to FinFlush
// for a Start to share the round trip with.
func (c *Client) collectGroup(ctx env.Ctx, first any) (starts []*startWaiter, fins []*finWaiter) {
	max := c.MaxGroup
	if max < 1 {
		max = 1
	}
	add := func(v any) {
		switch w := v.(type) {
		case *startWaiter:
			starts = append(starts, w)
		case *finWaiter:
			fins = append(fins, w)
		}
	}
	add(first)
	drain := func() {
		for len(starts) < max && len(fins) < maxGroupFins && c.startQ.Len() > 0 {
			v, ok := c.startQ.Get(ctx)
			if !ok {
				return
			}
			add(v)
		}
	}
	drain()
	if len(starts) == 0 && c.FinFlush > 0 {
		deadline := ctx.Now() + c.FinFlush
		for len(starts) == 0 && len(fins) < maxGroupFins {
			rem := deadline - ctx.Now()
			if rem <= 0 {
				break
			}
			v, ok, timedOut := c.startQ.GetTimeout(ctx, rem)
			if timedOut || !ok {
				break
			}
			add(v)
			drain()
		}
	}
	return starts, fins
}

// sendGroup issues one grouped request and resolves every waiter.
func (c *Client) sendGroup(ctx env.Ctx, starts []*startWaiter, fins []*finWaiter) {
	notes := make([]FinNote, len(fins))
	for i, f := range fins {
		notes[i] = f.note
	}
	// Parent the group's network flow on the first traced waiter's span so
	// the exported trace stitches transactions to the manager even though
	// the round trip runs on the sender's own activity.
	sc := ctx.Trace()
	if sc.R.Enabled() {
		sc.Span = 0
		for _, w := range starts {
			if w.span != 0 {
				sc.Span = w.span
				break
			}
		}
		if sc.Span == 0 {
			for _, f := range fins {
				if f.span != 0 {
					sc.Span = f.span
					break
				}
			}
		}
	}
	// Build the request ONCE, with a fresh idempotency token: every retry
	// resends the identical bytes, so a manager that already executed the
	// group replays its cached response (same tids, same descriptor, same
	// sequence number — the ack chain survives a lost response). Rebuilding
	// per attempt would change the ack fields and break that identity.
	req := c.buildGroupReq(len(starts), notes)
	var sendAt time.Duration
	var raw []byte
	var conn transport.Conn
	var results []StartResult
	err := c.Resil.Do(ctx, resil.ClassCM, cmFleet, func(int) error {
		if sc.R.Enabled() {
			sendAt = ctx.Now()
		}
		var rtErr error
		raw, conn, rtErr = c.roundTrip(ctx, req)
		if rtErr != nil {
			return rtErr
		}
		resp, rtErr := DecodeStartGroupResp(raw)
		if rtErr != nil {
			return resil.Permanent(rtErr)
		}
		if resp.Status != wire.StatusOK {
			// Unavailable (racing duplicate, tid range exhausted) and
			// Overload (shed by admission control) are transient: back off
			// and resend the same bytes.
			return fmt.Errorf("commitmgr: grouped start failed: %v", resp.Status)
		}
		results, rtErr = c.applyGroupResp(resp, len(starts))
		if rtErr != nil {
			return resil.Permanent(rtErr)
		}
		return nil
	})
	if err == nil {
		var net time.Duration
		if sc.R.Enabled() {
			if tt, ok := conn.(transport.TransferTimer); ok {
				net = tt.TransferTime(len(req)) + tt.TransferTime(len(raw))
			}
		}
		c.mu.Lock()
		c.nStarts += uint64(len(starts))
		c.nFins += uint64(len(fins))
		c.mu.Unlock()
		for i, w := range starts {
			out := startOutcome{res: results[i]}
			if sc.R.Enabled() {
				out.t = rpcTiming{qwait: sendAt - w.enq, net: net}
			}
			w.fut.Set(out)
		}
		for _, f := range fins {
			out := finOutcome{}
			if sc.R.Enabled() {
				out.t = rpcTiming{qwait: sendAt - f.enq, net: net}
			}
			f.fut.Set(out)
		}
		return
	}
	// Out of attempts. The ack chain may be mid-step (a manager could have
	// advanced its per-client sequence on a response we never applied), so
	// force a full descriptor next time. (The unapplied finish notes are
	// safe to re-send later — finish is idempotent on the manager.)
	c.resetDeltaState()
	for _, w := range starts {
		w.fut.Set(startOutcome{err: err})
	}
	for _, f := range fins {
		f.fut.Set(finOutcome{err: err})
	}
}

// cmFleet is the breaker/schedule label for grouped requests: roundTrip
// rotates through every manager per attempt, so retries are per-fleet, not
// per-endpoint.
const cmFleet = "cm-fleet"

func (c *Client) buildGroupReq(count int, fins []FinNote) []byte {
	req := StartGroupReq{Client: c.clientID, Seq: c.nextSeq(), Count: uint64(count), Fins: fins}
	if c.DeltaSnapshots {
		req.AckServer, req.AckSeq = c.lastSrv, c.lastSeq
	}
	return req.Encode()
}

// applyGroupResp reconstructs the shared descriptor (resolving a delta
// against the cached base) and fans it out, one clone per waiter.
func (c *Client) applyGroupResp(resp *StartGroupResp, want int) ([]StartResult, error) {
	if len(resp.TIDs) != want {
		return nil, fmt.Errorf("commitmgr: got %d tids, want %d", len(resp.TIDs), want)
	}
	var snap *mvcc.Snapshot
	if resp.Full {
		snap = resp.Snap
	} else {
		if c.lastSnap == nil || c.lastSrv != resp.Server {
			return nil, fmt.Errorf("commitmgr: delta response without matching base descriptor")
		}
		applied, err := resp.Delta.Apply(c.lastSnap)
		if err != nil {
			return nil, err
		}
		snap = applied
	}
	if resp.Seq != 0 {
		c.lastSrv, c.lastSeq, c.lastSnap = resp.Server, resp.Seq, snap
	}
	out := make([]StartResult, want)
	for i := range out {
		out[i] = StartResult{TID: resp.TIDs[i], Snap: snap.Clone(), Lav: resp.Lav}
	}
	return out, nil
}

func (c *Client) resetDeltaState() {
	c.lastSrv, c.lastSeq, c.lastSnap = "", 0, nil
}

// startSolo is the split protocol: one start RPC per transaction.
func (c *Client) startSolo(ctx env.Ctx) (StartResult, error) {
	req := []byte{byte(wire.KindCMReq), byte(cmStart)}
	for attempt := 0; ; attempt++ {
		raw, _, err := c.roundTrip(ctx, req)
		if err != nil {
			return StartResult{}, err
		}
		res, err := decodeStartResp(raw)
		if err == nil {
			c.mu.Lock()
			c.nStarts++
			c.mu.Unlock()
			return res, nil
		}
		if attempt >= c.Retries {
			return StartResult{}, err
		}
		ctx.Sleep(time.Millisecond)
	}
}

func decodeStartResp(raw []byte) (StartResult, error) {
	r := wire.NewReader(raw)
	if wire.Kind(r.Byte()) != wire.KindCMResp {
		return StartResult{}, fmt.Errorf("commitmgr: bad response kind")
	}
	sub := cmSub(r.Byte())
	st := wire.Status(r.Byte())
	if sub != cmStart || st != wire.StatusOK {
		return StartResult{}, fmt.Errorf("commitmgr: start failed: %v", st)
	}
	tid := r.Uvarint()
	snap, err := mvcc.DecodeSnapshotFrom(r)
	if err != nil {
		return StartResult{}, err
	}
	lav := r.Uvarint()
	if err := r.Close(); err != nil {
		return StartResult{}, err
	}
	return StartResult{TID: tid, Snap: snap, Lav: lav}, nil
}

// Fence samples the fleet's snapshot boundary (the lav) for a migration
// cutover. One solo round trip — fences are rare control-plane events and
// must not wait behind the grouped sender.
func (c *Client) Fence(ctx env.Ctx) (uint64, error) {
	raw, _, err := c.roundTrip(ctx, []byte{byte(wire.KindCMReq), byte(cmFence)})
	if err != nil {
		return 0, err
	}
	r := wire.NewReader(raw)
	if wire.Kind(r.Byte()) != wire.KindCMResp {
		return 0, fmt.Errorf("commitmgr: bad fence response kind")
	}
	if sub := cmSub(r.Byte()); sub != cmFence {
		return 0, fmt.Errorf("commitmgr: subtype %d is not a fence ack", sub)
	}
	if st := wire.Status(r.Byte()); st != wire.StatusOK {
		return 0, fmt.Errorf("commitmgr: fence failed: %v", st)
	}
	lav := r.Uvarint()
	return lav, r.Close()
}

// finished is the split protocol's one-RPC-per-outcome notification.
func (c *Client) finished(ctx env.Ctx, tid uint64, committed bool) error {
	w := wire.NewWriter(16)
	w.Byte(byte(wire.KindCMReq))
	w.Byte(byte(cmFinished))
	w.Uvarint(tid)
	w.Bool(committed)
	raw, _, err := c.roundTrip(ctx, w.Bytes())
	if err != nil {
		return err
	}
	r := wire.NewReader(raw)
	r.Byte() // kind
	r.Byte() // sub
	if st := wire.Status(r.Byte()); st != wire.StatusOK {
		return fmt.Errorf("commitmgr: finished(%d) failed: %v", tid, st)
	}
	c.mu.Lock()
	c.nFins++
	c.mu.Unlock()
	return nil
}
