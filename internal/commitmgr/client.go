package commitmgr

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"tell/internal/env"
	"tell/internal/mvcc"
	"tell/internal/transport"
	"tell/internal/wire"
)

// ErrUnavailable means no commit manager could be reached.
var ErrUnavailable = errors.New("commitmgr: no commit manager available")

// Client is the PN-side interface to the commit-manager fleet. If the
// current manager becomes unreachable, the client switches to the next one
// (§4.4.3: "if a commit manager becomes unavailable, PNs automatically
// switch to the next one").
type Client struct {
	envr env.Full
	node env.Node
	tr   transport.Transport

	// Retries per manager before moving on.
	Retries int

	mu    sync.Mutex
	addrs []string
	cur   int
	conns map[string]transport.Conn
}

// NewClient creates a client that talks to the managers at addrs.
func NewClient(envr env.Full, node env.Node, tr transport.Transport, addrs []string) *Client {
	return &Client{
		envr:    envr,
		node:    node,
		tr:      tr,
		Retries: 2,
		addrs:   append([]string(nil), addrs...),
		conns:   make(map[string]transport.Conn),
	}
}

func (c *Client) conn(addr string) (transport.Conn, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if conn, ok := c.conns[addr]; ok {
		return conn, nil
	}
	conn, err := c.tr.Dial(c.node, addr)
	if err != nil {
		return nil, err
	}
	c.conns[addr] = conn
	return conn, nil
}

// roundTrip tries the current manager, rotating through the fleet on
// failure.
func (c *Client) roundTrip(ctx env.Ctx, req []byte) ([]byte, error) {
	c.mu.Lock()
	n := len(c.addrs)
	start := c.cur
	c.mu.Unlock()
	for i := 0; i < n; i++ {
		addr := c.addrs[(start+i)%n]
		conn, err := c.conn(addr)
		if err != nil {
			continue
		}
		resp, err := conn.RoundTrip(ctx, req)
		if err != nil {
			continue
		}
		if i != 0 {
			c.mu.Lock()
			c.cur = (start + i) % n
			c.mu.Unlock()
		}
		return resp, nil
	}
	return nil, ErrUnavailable
}

// StartResult is everything a transaction receives at begin (§4.2).
type StartResult struct {
	TID  uint64
	Snap *mvcc.Snapshot
	Lav  uint64
}

// Start begins a new transaction.
func (c *Client) Start(ctx env.Ctx) (StartResult, error) {
	req := []byte{byte(wire.KindCMReq), byte(cmStart)}
	for attempt := 0; ; attempt++ {
		raw, err := c.roundTrip(ctx, req)
		if err != nil {
			return StartResult{}, err
		}
		res, err := decodeStartResp(raw)
		if err == nil {
			return res, nil
		}
		if attempt >= c.Retries {
			return StartResult{}, err
		}
		ctx.Sleep(time.Millisecond)
	}
}

func decodeStartResp(raw []byte) (StartResult, error) {
	r := wire.NewReader(raw)
	if wire.Kind(r.Byte()) != wire.KindCMResp {
		return StartResult{}, fmt.Errorf("commitmgr: bad response kind")
	}
	sub := cmSub(r.Byte())
	st := wire.Status(r.Byte())
	if sub != cmStart || st != wire.StatusOK {
		return StartResult{}, fmt.Errorf("commitmgr: start failed: %v", st)
	}
	tid := r.Uvarint()
	snap, err := mvcc.DecodeSnapshotFrom(r)
	if err != nil {
		return StartResult{}, err
	}
	lav := r.Uvarint()
	if err := r.Close(); err != nil {
		return StartResult{}, err
	}
	return StartResult{TID: tid, Snap: snap, Lav: lav}, nil
}

// Committed reports a successful commit (setCommitted, §4.2).
func (c *Client) Committed(ctx env.Ctx, tid uint64) error {
	return c.finished(ctx, tid, true)
}

// Aborted reports an abort after rollback (setAborted, §4.2).
func (c *Client) Aborted(ctx env.Ctx, tid uint64) error {
	return c.finished(ctx, tid, false)
}

func (c *Client) finished(ctx env.Ctx, tid uint64, committed bool) error {
	w := wire.NewWriter(16)
	w.Byte(byte(wire.KindCMReq))
	w.Byte(byte(cmFinished))
	w.Uvarint(tid)
	w.Bool(committed)
	raw, err := c.roundTrip(ctx, w.Bytes())
	if err != nil {
		return err
	}
	r := wire.NewReader(raw)
	r.Byte() // kind
	r.Byte() // sub
	if st := wire.Status(r.Byte()); st != wire.StatusOK {
		return fmt.Errorf("commitmgr: finished(%d) failed: %v", tid, st)
	}
	return nil
}
