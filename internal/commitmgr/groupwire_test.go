package commitmgr_test

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"tell/internal/commitmgr"
	"tell/internal/env"
	"tell/internal/mvcc"
	"tell/internal/wire"
)

// FuzzGroupWire feeds arbitrary bytes to the grouped-CM decoders. Corrupt
// input must fail cleanly; input that decodes must reach an encode fixpoint
// by the second generation (the original bytes may hold non-canonical
// varints the encoder normalizes).
func FuzzGroupWire(f *testing.F) {
	f.Add([]byte{})
	f.Add((&commitmgr.StartGroupReq{
		Client: "pn0", AckServer: "cm0", AckSeq: 3, Count: 4,
		Fins: []commitmgr.FinNote{{TID: 17, Committed: true}, {TID: 19}},
	}).Encode())
	f.Add((&commitmgr.StartGroupReq{Count: 1}).Encode())
	full := mvcc.NewSnapshot(100)
	full.Add(103)
	full.Add(170)
	f.Add((&commitmgr.StartGroupResp{
		Status: wire.StatusOK, TIDs: []uint64{171, 172}, Server: "cm0",
		Seq: 4, Full: true, Snap: full, Lav: 99,
	}).Encode())
	next := full.Clone()
	next.Add(171)
	delta := mvcc.Diff(full, next)
	f.Add((&commitmgr.StartGroupResp{
		Status: wire.StatusOK, TIDs: []uint64{173}, Server: "cm0",
		Seq: 5, Full: false, Delta: delta, Lav: 100,
	}).Encode())
	f.Add((&commitmgr.StartGroupResp{Status: wire.StatusUnavailable}).Encode())
	// Corrupt variants: truncated, oversized counts, bit noise.
	f.Add([]byte{byte(wire.KindCMReq), 3})
	f.Add([]byte{byte(wire.KindCMResp), 3, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		if m, err := commitmgr.DecodeStartGroupReq(data); err == nil {
			e1 := m.Encode()
			m2, err := commitmgr.DecodeStartGroupReq(e1)
			if err != nil {
				t.Fatalf("re-decode StartGroupReq: %v", err)
			}
			if e2 := m2.Encode(); !bytes.Equal(e1, e2) {
				t.Fatalf("StartGroupReq fixpoint: % x != % x", e1, e2)
			}
		}
		if m, err := commitmgr.DecodeStartGroupResp(data); err == nil {
			e1 := m.Encode()
			m2, err := commitmgr.DecodeStartGroupResp(e1)
			if err != nil {
				t.Fatalf("re-decode StartGroupResp: %v", err)
			}
			if e2 := m2.Encode(); !bytes.Equal(e1, e2) {
				t.Fatalf("StartGroupResp fixpoint: % x != % x", e1, e2)
			}
		}
	})
}

// TestGroupWireDecodeGarbageNeverPanics hammers the grouped decoders with
// random buffers (the continuous-fuzzing session goes further; this keeps a
// fast deterministic sample in the regular run).
func TestGroupWireDecodeGarbageNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 2000; i++ {
		buf := make([]byte, rng.Intn(200))
		rng.Read(buf)
		// Half the probes get a valid prefix so decoding reaches the body.
		if i%2 == 0 && len(buf) >= 2 {
			if i%4 == 0 {
				buf[0] = byte(wire.KindCMReq)
			} else {
				buf[0] = byte(wire.KindCMResp)
			}
			buf[1] = 3
		}
		commitmgr.DecodeStartGroupReq(buf)
		commitmgr.DecodeStartGroupResp(buf)
	}
}

// TestGroupedStartsUseDeltas drives commit cycles through the coalescing
// client and asserts, via the manager's telemetry counters, that the steady
// state ships delta descriptors: after the first full response every
// subsequent grouped response should ride the intact ack chain.
func TestGroupedStartsUseDeltas(t *testing.T) {
	h := newCMHarness(t, 1)
	h.run(t, func(ctx env.Ctx) {
		for i := 0; i < 40; i++ {
			r, err := h.client.Start(ctx)
			if err != nil {
				t.Fatalf("start: %v", err)
			}
			h.client.Committed(ctx, r.TID)
		}
		deltas, fulls := cmCounters(t, ctx, h, "cm0")
		if fulls == 0 || deltas == 0 {
			t.Fatalf("deltas=%d fulls=%d: want at least one of each (first response is full, rest delta)", deltas, fulls)
		}
		if deltas < 30 {
			t.Fatalf("only %d of ~40 grouped responses were deltas (fulls=%d); ack chain keeps breaking", deltas, fulls)
		}
	})
}

// TestAckGapForcesFullResync breaks the ack chain deliberately — a stale
// AckSeq, as after a lost response — and checks the manager answers with a
// full descriptor rather than a delta the client could not apply.
func TestAckGapForcesFullResync(t *testing.T) {
	h := newCMHarness(t, 1)
	h.run(t, func(ctx env.Ctx) {
		conn, err := h.net.Dial(h.pn, "cm0")
		if err != nil {
			t.Fatal(err)
		}
		send := func(req *commitmgr.StartGroupReq) *commitmgr.StartGroupResp {
			raw, err := conn.RoundTrip(ctx, req.Encode())
			if err != nil {
				t.Fatalf("round trip: %v", err)
			}
			resp, err := commitmgr.DecodeStartGroupResp(raw)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if resp.Status != wire.StatusOK {
				t.Fatalf("status %v", resp.Status)
			}
			return resp
		}
		// Establish the chain: first response is necessarily full.
		r1 := send(&commitmgr.StartGroupReq{Client: "probe", Count: 1})
		if !r1.Full {
			t.Fatal("first grouped response must carry the full descriptor")
		}
		// Intact ack: this one may be a delta.
		r2 := send(&commitmgr.StartGroupReq{
			Client: "probe", AckServer: r1.Server, AckSeq: r1.Seq, Count: 1,
			Fins: []commitmgr.FinNote{{TID: r1.TIDs[0], Committed: true}},
		})
		if r2.Full {
			t.Fatal("intact ack chain did not produce a delta")
		}
		// Gap: replay the old seq (as if r2's response was lost). The
		// manager's memory is at seq r2.Seq, so r1.Seq must not match and
		// the answer must be full — a delta against r1's descriptor would
		// desynchronize the client.
		r3 := send(&commitmgr.StartGroupReq{
			Client: "probe", AckServer: r2.Server, AckSeq: r1.Seq, Count: 1,
			Fins: []commitmgr.FinNote{{TID: r2.TIDs[0], Committed: true}},
		})
		if !r3.Full {
			t.Fatal("stale AckSeq (gap) answered with a delta; must force full resync")
		}
		// Unknown server id (fail-over echo) must also force full.
		r4 := send(&commitmgr.StartGroupReq{
			Client: "probe", AckServer: "cm-gone", AckSeq: r3.Seq, Count: 1,
			Fins: []commitmgr.FinNote{{TID: r3.TIDs[0], Committed: true}},
		})
		if !r4.Full {
			t.Fatal("foreign AckServer answered with a delta; must force full resync")
		}
		send(&commitmgr.StartGroupReq{
			Client: "probe",
			Fins:   []commitmgr.FinNote{{TID: r4.TIDs[0], Committed: true}},
		})
	})
}

// TestFailOverResyncsDeltaState kills the primary manager mid-stream and
// checks the client keeps operating correctly: the fail-over lands on a
// manager with no descriptor memory for this client, so the client must
// resync on a full descriptor and rebuild the chain — visible as correct
// snapshots throughout.
func TestFailOverResyncsDeltaState(t *testing.T) {
	h := newCMHarness(t, 2)
	h.run(t, func(ctx env.Ctx) {
		var committed []uint64
		for i := 0; i < 10; i++ {
			r, err := h.client.Start(ctx)
			if err != nil {
				t.Fatalf("start: %v", err)
			}
			h.client.Committed(ctx, r.TID)
			committed = append(committed, r.TID)
		}
		// A manager's fin/comm sets are soft state pushed to the store every
		// SyncInterval; taking cm0 down immediately would legitimately lose
		// the final interval. Let it push, then let cm1 pull.
		ctx.Sleep(10 * time.Millisecond)
		h.net.SetDown("cm0", true)
		ctx.Sleep(10 * time.Millisecond)
		for i := 0; i < 10; i++ {
			r, err := h.client.Start(ctx)
			if err != nil {
				t.Fatalf("start after fail-over: %v", err)
			}
			// The snapshot from the surviving manager must be coherent:
			// after the sync interval it contains every commit this client
			// performed before the fail-over.
			if i > 0 {
				for _, tid := range committed {
					if !r.Snap.Contains(tid) {
						t.Fatalf("post-fail-over snapshot lost committed tid %d", tid)
					}
				}
			}
			if err := h.client.Committed(ctx, r.TID); err != nil {
				t.Fatalf("commit after fail-over: %v", err)
			}
			committed = append(committed, r.TID)
			ctx.Sleep(2 * time.Millisecond) // let cm1's pull sync absorb cm0's state
		}
	})
}

// cmCounters fetches the delta/full response counters from a manager's
// stats endpoint.
func cmCounters(t *testing.T, ctx env.Ctx, h *cmHarness, addr string) (deltas, fulls int64) {
	t.Helper()
	conn, err := h.net.Dial(h.pn, addr)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := conn.RoundTrip(ctx, wire.EncodeStatsReq())
	if err != nil {
		t.Fatal(err)
	}
	snap, err := wire.DecodeStatsSnapshot(raw)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range snap.Counters {
		switch c.Name {
		case "cm/deltas":
			deltas = c.Value
		case "cm/fulls":
			fulls = c.Value
		}
	}
	return deltas, fulls
}
