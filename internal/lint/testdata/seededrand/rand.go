package seededrand

import (
	"math/rand"
	randv2 "math/rand/v2"
)

func draw() int {
	return rand.Intn(10) // want "rand.Intn draws from the process-global source"
}

func shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "rand.Shuffle draws from the process-global source"
}

func drawV2() int {
	return randv2.IntN(10) // want "rand.IntN draws from the process-global source"
}

// Constructing an explicitly seeded generator is the sanctioned pattern;
// methods on the resulting *rand.Rand are not package-level draws.
func seeded(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}
