package errdiscard

import "bytes"

// wal stands in for any durability handle: its Sync/Close/Append errors
// guard acknowledged writes.
type wal struct{}

func (w *wal) Sync() error                  { return nil }
func (w *wal) Close() error                 { return nil }
func (w *wal) Append(b []byte) (int, error) { return len(b), nil }
func (w *wal) Ping() error                  { return nil }

func bareStatement(w *wal) {
	w.Sync() // want "result discarded"
}

func deferredDiscard(w *wal) {
	defer w.Close() // want "deferred with result discarded"
}

func blankAssign(w *wal) {
	_ = w.Sync() // want "assigned to _"
}

// Keeping the value but blanking the error is still a discard.
func keepCountDropError(w *wal) int {
	n, _ := w.Append([]byte("x")) // want "assigned to _"
	return n
}

// Handling the error is the fix.
func handled(w *wal) error {
	if err := w.Sync(); err != nil {
		return err
	}
	return w.Close()
}

// Contract-infallible writers (bytes, strings, hash) are allowlisted:
// their error results exist only to satisfy io interfaces.
func buffered(buf *bytes.Buffer) {
	buf.Write([]byte("x"))
}

// Non-critical names are out of scope even when an error is dropped.
func pinged(w *wal) {
	w.Ping()
}

// A justified suppression.
func allowClose(w *wal) {
	//lint:allow errdiscard fixture: teardown of an abandoned handle
	w.Close()
}
