package lockorder

import (
	"sync"
	"time"
)

type account struct {
	mu  sync.Mutex
	bal int
}

// The engine's core locking rule: a mutex protects in-memory state between
// scheduling points and must be released before anything that can park the
// goroutine.
func holdAcrossSleep(a *account) {
	a.mu.Lock()
	time.Sleep(time.Millisecond) // want "held across time.Sleep"
	a.mu.Unlock()
}

// Releasing before the blocking call is the fix.
func releaseBeforeSleep(a *account) {
	a.mu.Lock()
	a.bal++
	a.mu.Unlock()
	time.Sleep(time.Millisecond)
}

// Go mutexes are not reentrant: re-acquiring on the same instance is a
// guaranteed self-deadlock.
func reacquire(a *account) {
	a.mu.Lock()
	a.mu.Lock() // want "acquired while already held"
	a.mu.Unlock()
	a.mu.Unlock()
}

// Blocking reached through a same-package helper is still blocking.
func nap() {
	time.Sleep(time.Millisecond)
}

func holdAcrossHelper(a *account) {
	a.mu.Lock()
	nap() // want "which blocks"
	a.mu.Unlock()
}

// Two instances of the same class locked without a consistent order: a
// concurrent transfer(b, a) deadlocks with transfer(a, b).
func transfer(from, to *account) {
	from.mu.Lock()
	to.mu.Lock() // want "lock-order hazard"
	to.bal++
	from.bal--
	to.mu.Unlock()
	from.mu.Unlock()
}

// A justified suppression: the directive names the analyzer and a reason.
func allowHeld(a *account) {
	a.mu.Lock()
	//lint:allow lockorder fixture: demonstrating a justified suppression
	time.Sleep(time.Millisecond)
	a.mu.Unlock()
}
