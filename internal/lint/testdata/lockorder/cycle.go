package lockorder

import "sync"

// Two distinct lock classes acquired in opposite orders on two paths form
// an acquisition-order cycle — the classic AB/BA deadlock.
type pair struct {
	amu sync.Mutex
	bmu sync.Mutex

	a, b int
}

func lockAB(p *pair) {
	p.amu.Lock()
	p.bmu.Lock() // want "lock-order cycle"
	p.a++
	p.b++
	p.bmu.Unlock()
	p.amu.Unlock()
}

func lockBA(p *pair) {
	p.bmu.Lock()
	p.amu.Lock() // want "lock-order cycle"
	p.b--
	p.a--
	p.amu.Unlock()
	p.bmu.Unlock()
}

// Once two classes participate in a cycle, every edge between them is
// reported — including sites that follow one of the two orders — so the
// triage view shows all acquisition points that need a consistent order.
func lockConsistent(p *pair) {
	p.amu.Lock()
	defer p.amu.Unlock()
	p.bmu.Lock() // want "lock-order cycle"
	defer p.bmu.Unlock()
	p.a += p.b
}
