package nowallclock

import "time"

func stamp() time.Time {
	return time.Now() // want "time.Now reads the wall clock"
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want "time.Since reads the wall clock"
}

func pause() {
	time.Sleep(time.Millisecond) // want "time.Sleep reads the wall clock"
	t := time.NewTicker(time.Second) // want "time.NewTicker reads the wall clock"
	t.Stop()
}

// Duration arithmetic, constants and conversions never touch the clock.
func fine() time.Duration {
	d := 3 * time.Millisecond
	return d.Round(time.Millisecond)
}

// A method that happens to be named like a banned package function is fine:
// only package-level time.* functions are wall-clock reads.
type clock struct{}

func (clock) Now() time.Time { return time.Time{} }

func useMethod() time.Time {
	var c clock
	return c.Now()
}
