// This file models a component that only runs on the real environment, so
// the whole file is exempted by an allow above the package clause.
//
//lint:allow nowallclock fixture: file-scope exemption

package allow

import "time"

func wholeFile() time.Duration {
	time.Sleep(time.Millisecond)
	return time.Since(time.Unix(0, 0))
}
