package allow

import "time"

// Suppressed by an allow on the offending line.
func sameLine() time.Duration {
	return time.Since(time.Unix(0, 0)) //lint:allow nowallclock fixture: intentional wall-clock read
}

// Suppressed by an allow on the line above.
func lineAbove() {
	//lint:allow nowallclock fixture: the sleep is intentional
	time.Sleep(time.Millisecond)
}

// An allow naming a different analyzer does not suppress.
func wrongAnalyzer() time.Duration {
	//lint:allow nogoroutine fixture: names the wrong analyzer
	return time.Since(time.Unix(0, 0)) // want "time.Since reads the wall clock"
}
