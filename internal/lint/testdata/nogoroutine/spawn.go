package nogoroutine

func spawn(fn func()) {
	go fn() // want "raw goroutine bypasses the DES kernel"
}

func spawnClosure(n int) {
	go func() { // want "raw goroutine bypasses the DES kernel"
		_ = n * 2
	}()
}

// Direct and deferred calls are fine; only the go keyword escapes the
// kernel's scheduler.
func fine(fn func()) {
	defer fn()
	fn()
}
