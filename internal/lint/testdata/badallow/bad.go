package badallow

import "time"

// A directive without the mandatory reason is itself a finding and
// suppresses nothing.
func malformed() {
	//lint:allow nowallclock
	time.Sleep(0)
}
