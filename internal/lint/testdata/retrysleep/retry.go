package retrysleep

import "time"

// A classic bootstrap retry loop pacing itself with a bare sleep.
func retryLoop(try func() error) {
	for {
		if try() == nil {
			return
		}
		time.Sleep(time.Second) // want "time.Sleep in a loop is undeclared retry pacing"
	}
}

// Range loops count too.
func rangeLoop(addrs []string, dial func(string) error) {
	for _, a := range addrs {
		for dial(a) != nil {
			time.Sleep(time.Millisecond) // want "time.Sleep in a loop is undeclared retry pacing"
		}
	}
}

// A sleep outside any loop is not retry pacing.
func oneShot() {
	time.Sleep(time.Millisecond)
}

// A closure defined inside a loop starts a fresh scope: its body does not
// run per iteration just because its definition site is inside one.
func closureInLoop(spawn func(func())) {
	for i := 0; i < 3; i++ {
		spawn(func() {
			time.Sleep(time.Millisecond)
		})
	}
}

// A loop inside a closure is still a loop.
func loopInClosure() func() {
	return func() {
		for i := 0; i < 3; i++ {
			time.Sleep(time.Millisecond) // want "time.Sleep in a loop is undeclared retry pacing"
		}
	}
}

// Methods named Sleep are not time.Sleep.
type pacer struct{}

func (pacer) Sleep(time.Duration) {}

func methodSleep(p pacer) {
	for i := 0; i < 3; i++ {
		p.Sleep(time.Millisecond)
	}
}

// A justified fixed-cadence sleep is suppressed with an allow.
func measured(sample func()) {
	for i := 0; i < 4; i++ {
		//lint:allow retrysleep fixture: fixed-cadence measurement window, not a retry
		time.Sleep(100 * time.Millisecond)
		sample()
	}
}
