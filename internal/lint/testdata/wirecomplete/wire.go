package wirecomplete

// Msg has one complete field, one field in neither codec path, one that is
// encoded but dropped by the decoder, and one the decoder expects but the
// encoder never writes.
type Msg struct {
	A int
	B int // want "field Msg.B is in neither the encode nor the decode path"
	C int // want "field Msg.C is encoded but never decoded"
	D int // want "field Msg.D is decoded but never encoded"
}

func (m *Msg) Encode() []byte {
	return []byte{byte(m.A), byte(m.C)}
}

func DecodeMsg(b []byte) *Msg {
	return &Msg{A: int(b[0]), D: int(b[1])}
}

// Ack round-trips completely: no findings.
type Ack struct {
	Code uint8
}

func (a *Ack) Encode() []byte { return []byte{a.Code} }

func DecodeAck(b []byte) *Ack { return &Ack{Code: b[0]} }

// Options is not a wire message — no Encode method and no codec references
// — so its fields are ignored.
type Options struct {
	Verbose bool
	Depth   int
}
