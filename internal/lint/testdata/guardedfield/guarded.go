package guardedfield

import "sync"

// counter.n is accessed under mu at three sites, so majority usage infers
// the guard; the lock-free peek is the outlier.
type counter struct {
	mu sync.Mutex
	n  int
}

func (c *counter) inc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func (c *counter) get() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func (c *counter) add(d int) {
	c.mu.Lock()
	c.n += d
	c.mu.Unlock()
}

func (c *counter) racyPeek() int {
	return c.n // want "accessed under"
}

// Initialization before publication is exempt: constructors (functions
// returning the type) and freshly built locals need no lock.
func newCounter() *counter {
	c := &counter{}
	c.n = 1
	return c
}
