package guardedfield

import "sync"

// A justified suppression on the one unguarded site.
type gauge struct {
	mu sync.Mutex
	v  int
}

func (g *gauge) set(v int) {
	g.mu.Lock()
	g.v = v
	g.mu.Unlock()
}

func (g *gauge) get() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

func (g *gauge) snapshot() int {
	//lint:allow guardedfield teardown snapshot: all writers have exited
	return g.v
}

// Below the inference threshold: one guarded site against two unguarded
// ones is no majority, so nothing is reported.
type loose struct {
	mu sync.Mutex
	a  int
}

func (l *loose) touch() { l.a++ }
func (l *loose) poke()  { l.a = 2 }
func (l *loose) one() {
	l.mu.Lock()
	l.a = 3
	l.mu.Unlock()
}
