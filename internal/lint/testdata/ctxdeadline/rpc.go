package ctxdeadline

import (
	"tell/internal/env"
	"tell/internal/resil"
	"tell/internal/transport"
)

// A bare RoundTrip bypasses the per-class deadline/backoff/give-up policy.
func bare(ctx env.Ctx, conn transport.Conn, req []byte) ([]byte, error) {
	return conn.RoundTrip(ctx, req) // want "bare conn.RoundTrip"
}

// Wrapping the attempt in Retrier.Do threads the policy.
func policied(ctx env.Ctx, r *resil.Retrier, conn transport.Conn, addr string, req []byte) ([]byte, error) {
	var resp []byte
	err := r.Do(ctx, resil.ClassRead, addr, func(int) error {
		var rtErr error
		resp, rtErr = conn.RoundTrip(ctx, req)
		return rtErr
	})
	return resp, err
}

// A justified suppression: some primitives own their retry schedule.
func allowed(ctx env.Ctx, conn transport.Conn, req []byte) ([]byte, error) {
	//lint:allow ctxdeadline fixture: the caller owns the retry schedule
	return conn.RoundTrip(ctx, req)
}
