package maporder

import "sort"

// Appending to an outer slice in map order without a later sort leaks the
// iteration order into the result.
func collectUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "appended to in map-iteration order and never sorted"
	}
	return keys
}

// The canonical collect-then-sort idiom is allowed.
func collectSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// A statement-level call inside the loop is an effect executed in map order.
func emit(m map[string]int, send func(string)) {
	for k := range m {
		send(k) // want "send executes its effect in map-iteration order"
	}
}

func sendCh(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k // want "channel send inside map iteration emits in nondeterministic order"
	}
}

// Float accumulation is order-sensitive: addition is not associative.
func sumFloats(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want "non-integer accumulation is order-sensitive"
	}
	return sum
}

// Plain assignment keeps whichever key the runtime visited last.
func lastKey(m map[string]int) string {
	last := ""
	for k := range m {
		last = k // want "last is assigned in map-iteration order"
	}
	return last
}

// Integer accumulation commutes exactly: allowed.
func sumInts(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Writing into another map keyed by the loop variable is order-free.
func invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// A pure min/max reduction yields the same extremum in any order.
func minVal(m map[string]int) int {
	best := 1 << 30
	for _, v := range m {
		if v < best {
			best = v
		}
	}
	return best
}

// Deleting from the ranged map is the sanctioned cleanup idiom.
func drop(m map[string]int, bad func(string) bool) {
	for k := range m {
		if bad(k) {
			delete(m, k)
		}
	}
}
