package lint

import (
	"go/ast"
)

// randPkgs are the import paths whose global generators are banned.
var randPkgs = []string{"math/rand", "math/rand/v2"}

// seededRandAllowed are the math/rand package-level functions that do not
// draw from the shared global source. Constructing an explicitly seeded
// generator is exactly what engine code should do (with a seed threaded
// from TELL_SEED / the experiment options).
var seededRandAllowed = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true, // takes a *Rand; has no global state
	"NewPCG":    true, // math/rand/v2
	"NewChaCha8": true,
}

// SeededRand forbids the global math/rand functions (rand.Intn, rand.Perm,
// rand.Shuffle, ...) in sim-executed packages. The global source is seeded
// once per process and shared by every goroutine, so any draw from it makes
// data generation and workload choice unreplayable. Engine code must thread
// an explicit *rand.Rand derived from the run's seed (TELL_SEED,
// exp.Options.Seed, env.Ctx.Rand()).
var SeededRand = &Analyzer{
	Name: "seededrand",
	Doc: "forbid global math/rand functions in sim-executed packages; thread an explicitly " +
		"seeded *rand.Rand (TELL_SEED / exp.Options.Seed / env.Ctx.Rand) instead",
	Run: runSeededRand,
}

func runSeededRand(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			for _, pkg := range randPkgs {
				fn := pkgLevelFunc(pass, sel, pkg)
				if fn == nil || seededRandAllowed[fn.Name()] {
					continue
				}
				pass.Reportf(sel.Pos(),
					"rand.%s draws from the process-global source and is not replayable; use an explicitly seeded *rand.Rand (derive the seed from TELL_SEED)",
					fn.Name())
			}
			return true
		})
	}
	return nil
}
