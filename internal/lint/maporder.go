package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapOrder flags `range` statements over maps whose iteration order can
// leak into simulation-visible state. Go randomizes map iteration on
// purpose; any result slice, emitted message, blocking call or
// order-sensitive accumulation produced inside such a loop therefore
// differs run to run, which breaks the simulator's same-seed ⇒ same-history
// guarantee.
//
// Order-insensitive bodies are allowed: writes into another map keyed by
// the loop variables, integer-typed commutative accumulation (n++, n += v),
// deletes, and reads. Everything else inside a map range is reported:
//
//   - appending to a slice declared outside the loop — unless the slice is
//     visibly sorted later in the same function (the canonical
//     collect-keys-then-sort idiom);
//   - statement-level calls (method or function calls whose result is
//     discarded are effects: message emission, ctx.Sleep/Work, metric
//     recording) and channel sends;
//   - any other write to state declared outside the loop (plain
//     assignment, float or string accumulation — float addition is not
//     associative, so even a "sum" differs with order).
//
// The fix is to iterate deterministically (collect keys, sort, then loop)
// or, when order provably cannot matter, annotate with
// //lint:allow maporder <reason>.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc: "flag map iteration feeding simulation-visible state (result slices, emitted messages, " +
		"blocking calls, order-sensitive accumulation) without sorting",
	Run: runMapOrder,
}

func runMapOrder(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				rng, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				if t := pass.TypeOf(rng.X); t == nil || !isMap(t) {
					return true
				}
				checkMapRange(pass, fn.Body, rng)
				return true
			})
		}
	}
	return nil
}

func isMap(t types.Type) bool {
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// checkMapRange inspects the body of one range-over-map for
// order-sensitive effects. funcBody is the enclosing function, searched
// for sort calls that launder collected slices.
func checkMapRange(pass *Pass, funcBody *ast.BlockStmt, rng *ast.RangeStmt) {
	body := rng.Body
	outer := func(e ast.Expr) (types.Object, bool) { return outerBase(pass, body, e) }

	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.RangeStmt:
			// A nested map range is checked on its own; its body's
			// findings should not be double-reported here.
			if s != rng {
				if t := pass.TypeOf(s.X); t != nil && isMap(t) {
					return false
				}
			}
		case *ast.IfStmt:
			// `if v < best { best = v }` is a pure min/max reduction:
			// its result is the same in any iteration order.
			if isMinMaxReduction(pass, s, outer) {
				return false
			}
		case *ast.AssignStmt:
			checkAssign(pass, funcBody, rng, s, outer)
		case *ast.IncDecStmt:
			if obj, isOuter := outer(s.X); isOuter && !isIntegerObj(pass, s.X) {
				pass.Reportf(s.Pos(),
					"%s is modified in map-iteration order; sort the keys first or use an integer accumulator", objName(obj))
			}
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				checkStmtCall(pass, call)
			}
		case *ast.SendStmt:
			pass.Reportf(s.Pos(),
				"channel send inside map iteration emits in nondeterministic order; sort the keys first")
		}
		return true
	})
}

// checkAssign handles assignments inside a map-range body. Allowed:
// definitions of loop-local variables, writes into maps indexed by
// loop-derived keys, and integer commutative accumulation.
func checkAssign(pass *Pass, funcBody *ast.BlockStmt, rng *ast.RangeStmt, s *ast.AssignStmt,
	outer func(ast.Expr) (types.Object, bool)) {

	for i, lhs := range s.Lhs {
		obj, isOuter := outer(lhs)
		if !isOuter {
			continue
		}
		// append to an outer slice: the collect-then-sort idiom is fine,
		// an unsorted result slice is not.
		if i < len(s.Rhs) && len(s.Lhs) == len(s.Rhs) {
			if call, ok := s.Rhs[i].(*ast.CallExpr); ok && isBuiltin(pass, call, "append") {
				if !sortedAfter(pass, funcBody, rng, obj) {
					pass.Reportf(s.Pos(),
						"%s is appended to in map-iteration order and never sorted; sort the keys first or sort the slice before use", objName(obj))
				}
				continue
			}
		}
		// m[k] = v into an outer map, keyed by something loop-derived:
		// distinct keys, order-free.
		if ix, ok := unparen(lhs).(*ast.IndexExpr); ok {
			if t := pass.TypeOf(ix.X); t != nil && isMap(t) && usesLoopVar(pass, rng, ix.Index) {
				continue
			}
		}
		// Integer accumulation commutes exactly.
		if s.Tok != token.ASSIGN && s.Tok != token.DEFINE && isIntegerObj(pass, lhs) {
			continue
		}
		what := "assigned"
		if s.Tok != token.ASSIGN && s.Tok != token.DEFINE {
			what = "accumulated (non-integer accumulation is order-sensitive)"
		}
		pass.Reportf(s.Pos(), "%s is %s in map-iteration order; sort the keys first", objName(obj), what)
	}
}

// checkStmtCall flags statement-level calls: a call whose result is
// discarded is (almost always) an effect, and effects inside a map range
// happen in nondeterministic order. delete and the ranged map's own
// cleanup are exempt; panics are exempt (they fire at most once).
func checkStmtCall(pass *Pass, call *ast.CallExpr) {
	if isBuiltin(pass, call, "delete") || isBuiltin(pass, call, "panic") {
		return
	}
	pass.Reportf(call.Pos(),
		"%s executes its effect in map-iteration order; iterate over sorted keys instead", callName(call))
}

// isMinMaxReduction matches `if x OP y { lhs = rhs }` where OP is an
// ordering comparison, the condition reads the assigned variable, and the
// assignment is the if-body's only statement. Such a reduction computes the
// extremum of the values seen, which no iteration order can change.
func isMinMaxReduction(pass *Pass, s *ast.IfStmt, outer func(ast.Expr) (types.Object, bool)) bool {
	if s.Else != nil || s.Init != nil || len(s.Body.List) != 1 {
		return false
	}
	cond, ok := s.Cond.(*ast.BinaryExpr)
	if !ok {
		return false
	}
	switch cond.Op {
	case token.LSS, token.GTR, token.LEQ, token.GEQ:
	default:
		return false
	}
	assign, ok := s.Body.List[0].(*ast.AssignStmt)
	if !ok || assign.Tok != token.ASSIGN || len(assign.Lhs) != 1 {
		return false
	}
	obj, isOuter := outer(assign.Lhs[0])
	if !isOuter || obj == nil {
		return false
	}
	return refersTo(pass, cond.X, obj) || refersTo(pass, cond.Y, obj)
}

// sortedAfter reports whether obj (a slice collected inside the range) is
// passed to a sort-like call later in the enclosing function — any call
// whose name contains "sort" (sort.Slice, slices.Sort, a sortPairs helper)
// with obj among its arguments.
func sortedAfter(pass *Pass, funcBody *ast.BlockStmt, rng *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(funcBody, func(n ast.Node) bool {
		if found || n == nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		if !strings.Contains(strings.ToLower(callName(call)), "sort") {
			return true
		}
		for _, arg := range call.Args {
			if refersTo(pass, arg, obj) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// outerBase unwraps an lvalue to its base object and reports whether that
// object is declared outside body (and therefore survives the loop).
func outerBase(pass *Pass, body *ast.BlockStmt, e ast.Expr) (types.Object, bool) {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			// For s.field the mutated state lives in s; but prefer
			// reporting the field object when the base is a package name.
			if id, ok := x.X.(*ast.Ident); ok {
				if _, isPkg := pass.ObjectOf(id).(*types.PkgName); isPkg {
					e = x.Sel
					continue
				}
			}
			e = x.X
		case *ast.Ident:
			if x.Name == "_" {
				return nil, false
			}
			obj := pass.ObjectOf(x)
			if obj == nil {
				return nil, false
			}
			if _, isVar := obj.(*types.Var); !isVar {
				return nil, false
			}
			declaredInside := obj.Pos() >= body.Pos() && obj.Pos() <= body.End()
			return obj, !declaredInside
		default:
			return nil, false
		}
	}
}

// usesLoopVar reports whether e references a variable defined by the range
// statement's Key/Value or any variable declared inside its body.
func usesLoopVar(pass *Pass, rng *ast.RangeStmt, e ast.Expr) bool {
	used := false
	ast.Inspect(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.ObjectOf(id)
		if obj == nil {
			return true
		}
		if obj.Pos() >= rng.Pos() && obj.Pos() <= rng.Body.End() {
			used = true
			return false
		}
		return true
	})
	return used
}

func isIntegerObj(pass *Pass, e ast.Expr) bool {
	t := pass.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

func isBuiltin(pass *Pass, call *ast.CallExpr, name string) bool {
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = pass.ObjectOf(id).(*types.Builtin)
	return ok
}

func refersTo(pass *Pass, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.ObjectOf(id) == obj {
			found = true
			return false
		}
		return !found
	})
	return found
}

func callName(call *ast.CallExpr) string {
	switch f := unparen(call.Fun).(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		if id, ok := f.X.(*ast.Ident); ok {
			return id.Name + "." + f.Sel.Name
		}
		return f.Sel.Name
	}
	return "call"
}

func objName(obj types.Object) string {
	if obj == nil {
		return "state"
	}
	return obj.Name()
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
