package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CtxDeadline verifies that every RPC send path threads a deadline/retry
// policy from internal/resil: a transport.Conn.RoundTrip call in engine
// code must sit lexically inside the attempt closure of a
// (*resil.Retrier).Do call. A bare RoundTrip bypasses the per-class
// deadline, backoff and give-up policy — under faults it either hangs on
// the transport timeout or fails without the deterministic retry schedule
// the simulation (and the paper's availability numbers) depend on.
var CtxDeadline = &Analyzer{
	Name: "ctxdeadline",
	Doc:  "require transport RoundTrip calls to run inside a resil.Retrier.Do policy",
	Run:  runCtxDeadline,
}

func runCtxDeadline(pass *Pass) error {
	for _, f := range pass.Files {
		// Collect the attempt-closure spans of Retrier.Do calls first.
		var policied []span
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !isRetrierDo(pass, call) {
				return true
			}
			for _, a := range call.Args {
				if lit, ok := unparen(a).(*ast.FuncLit); ok {
					policied = append(policied, span{lit.Pos(), lit.End()})
				}
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "RoundTrip" {
				return true
			}
			fn, _ := pass.ObjectOf(sel.Sel).(*types.Func)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "tell/internal/transport" {
				return true
			}
			for _, sp := range policied {
				if call.Pos() >= sp.lo && call.End() <= sp.hi {
					return true
				}
			}
			pass.Reportf(call.Pos(), "bare conn.RoundTrip: wrap the attempt in (*resil.Retrier).Do so it carries a deadline/backoff policy (or //lint:allow ctxdeadline <reason>)")
			return true
		})
	}
	return nil
}

type span struct{ lo, hi token.Pos }

// isRetrierDo matches calls to (*resil.Retrier).Do.
func isRetrierDo(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Do" {
		return false
	}
	fn, _ := pass.ObjectOf(sel.Sel).(*types.Func)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == "tell/internal/resil"
}
