package lint

import (
	"go/ast"
	"go/types"
)

// wallClockFuncs are the package time functions that read or act on the
// machine's real clock. Conversions, constants and arithmetic on
// time.Duration/time.Time values are fine — only acquiring wall-clock time
// (or timers driven by it) is banned.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"Tick":      true,
	"AfterFunc": true,
	"NewTicker": true,
	"NewTimer":  true,
}

// NoWallClock forbids wall-clock time in sim-executed packages. Under the
// discrete-event kernel, time is virtual: activities must read it from
// env.Ctx.Now / env.Env.Now and sleep via env.Ctx.Sleep, so that a given
// seed replays the identical schedule. One time.Now in engine code silently
// couples results to the host machine.
var NoWallClock = &Analyzer{
	Name: "nowallclock",
	Doc: "forbid time.Now/Since/Sleep/After/NewTicker/NewTimer in sim-executed packages; " +
		"use the env virtual clock (env.Ctx.Now, env.Ctx.Sleep)",
	Run: runNoWallClock,
}

func runNoWallClock(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn := pkgLevelFunc(pass, sel, "time")
			if fn == nil || !wallClockFuncs[fn.Name()] {
				return true
			}
			pass.Reportf(sel.Pos(),
				"time.%s reads the wall clock and breaks deterministic replay; use the env virtual clock (env.Ctx.Now/Sleep)",
				fn.Name())
			return true
		})
	}
	return nil
}

// pkgLevelFunc resolves sel to a package-level function of the package with
// import path pkgPath, or returns nil. Methods (which have a receiver) do
// not match, so rng.Intn is distinct from rand.Intn.
func pkgLevelFunc(pass *Pass, sel *ast.SelectorExpr, pkgPath string) *types.Func {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return nil
	}
	if pn, ok := pass.ObjectOf(id).(*types.PkgName); !ok || pn.Imported().Path() != pkgPath {
		return nil
	}
	fn, ok := pass.ObjectOf(sel.Sel).(*types.Func)
	if !ok || fn.Type().(*types.Signature).Recv() != nil {
		return nil
	}
	return fn
}
