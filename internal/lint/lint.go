// Package lint is tellvet's analyzer suite: static checks that keep the
// engine deterministic under the discrete-event simulator (internal/sim).
//
// The whole evaluation methodology of this repository rests on replayable
// simulation — a seed fully determines the event order, fault schedule and
// results. That property is destroyed silently by wall-clock reads, global
// math/rand, map-iteration order leaking into simulation-visible state, or
// goroutines that bypass the kernel's cooperative scheduler. The analyzers
// here make those hazards compile-time (well, vet-time) errors instead of
// code-review conventions:
//
//	nowallclock  — no time.Now/Since/Sleep/... in sim-executed packages
//	seededrand   — no global math/rand functions; randomness is seed-threaded
//	maporder     — no map iteration feeding simulation-visible state unsorted
//	nogoroutine  — no raw `go` statements; processes spawn via env/sim
//	wirecomplete — every exported wire message field is encoded AND decoded
//	retrysleep   — no time.Sleep-paced retry loops in real-env code (cmd/,
//	               examples/, the public API); pacing goes through env/resil
//
// The framework deliberately mirrors golang.org/x/tools/go/analysis
// (Analyzer, Pass, Reportf) so the suite could be ported to the upstream
// driver, but it is self-contained: the only dependencies are the standard
// library and the `go` tool itself (for export data, see load.go).
//
// # Suppression
//
// A finding is silenced with a justified annotation:
//
//	//lint:allow <analyzer> <reason>
//
// placed on the offending line, on the line directly above it, or — to
// exempt a whole file (for example a real-clock transport that never runs
// under the kernel) — in the file header before the package clause. The
// reason is mandatory; an allow without one is itself reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one static check. The shape follows
// golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name is the analyzer's identifier, used in diagnostics and in
	// //lint:allow annotations.
	Name string
	// Doc is a one-paragraph description.
	Doc string
	// Applies reports whether the analyzer should run over the package
	// with the given import path. nil means every package.
	Applies func(importPath string) bool
	// Run analyzes one package, reporting findings through the pass.
	Run func(*Pass) error
}

// Pass carries one analyzed package to an analyzer, and its diagnostics
// back.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of expression e, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.TypesInfo.TypeOf(e) }

// ObjectOf returns the object denoted by identifier id, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if o := p.TypesInfo.ObjectOf(id); o != nil {
		return o
	}
	return nil
}

// Diagnostic is one reported finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// AllowDirective is the comment prefix of a suppression annotation.
const AllowDirective = "//lint:allow"

// allow is one parsed //lint:allow annotation.
type allow struct {
	analyzer string
	reason   string
	file     string
	line     int
	// fileScope exempts the whole file (annotation above the package
	// clause).
	fileScope bool
	used      bool
}

// parseAllows extracts the suppression annotations of one file. Malformed
// annotations (no analyzer, or no reason) are reported as diagnostics of
// the pseudo-analyzer "lintdirective".
func parseAllows(fset *token.FileSet, f *ast.File, report func(Diagnostic)) []*allow {
	var allows []*allow
	pkgLine := fset.Position(f.Package).Line
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, AllowDirective) {
				continue
			}
			pos := fset.Position(c.Pos())
			rest := strings.TrimPrefix(c.Text, AllowDirective)
			fields := strings.Fields(rest)
			if len(fields) < 2 {
				report(Diagnostic{
					Analyzer: "lintdirective",
					Pos:      pos,
					Message:  fmt.Sprintf("malformed %s: want %q", AllowDirective, AllowDirective+" <analyzer> <reason>"),
				})
				continue
			}
			allows = append(allows, &allow{
				analyzer:  fields[0],
				reason:    strings.Join(fields[1:], " "),
				file:      pos.Filename,
				line:      pos.Line,
				fileScope: pos.Line < pkgLine,
			})
		}
	}
	return allows
}

// Stats summarizes one Run: how many packages were analyzed and, per
// analyzer, how many diagnostics survived suppression and how many were
// suppressed by //lint:allow annotations. Every analyzer in the run has an
// entry (zero counts included), so the summary's shape is stable — the
// `make lint` determinism check compares two renderings byte-for-byte.
type Stats struct {
	Packages   int
	Findings   map[string]int
	Suppressed map[string]int
}

// Run applies the analyzers to the packages and returns the surviving
// (unsuppressed) diagnostics, sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	diags, _, err := RunStats(pkgs, analyzers)
	return diags, err
}

// RunStats is Run plus per-analyzer finding/suppression counts.
func RunStats(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, Stats, error) {
	stats := Stats{
		Packages:   len(pkgs),
		Findings:   map[string]int{},
		Suppressed: map[string]int{},
	}
	for _, a := range analyzers {
		stats.Findings[a.Name] = 0
		stats.Suppressed[a.Name] = 0
	}
	var raw []Diagnostic
	collect := func(d Diagnostic) { raw = append(raw, d) }

	var allows []*allow
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			allows = append(allows, parseAllows(pkg.Fset, f, collect)...)
		}
	}

	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Applies != nil && !a.Applies(pkg.ImportPath) {
				continue
			}
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				report:    collect,
			}
			if err := a.Run(pass); err != nil {
				return nil, Stats{}, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.ImportPath, err)
			}
		}
	}

	kept := raw[:0]
	for _, d := range raw {
		if suppressed(d, allows) {
			stats.Suppressed[d.Analyzer]++
			continue
		}
		stats.Findings[d.Analyzer]++
		kept = append(kept, d)
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return kept, stats, nil
}

// suppressed reports whether d is covered by an allow annotation: same
// analyzer and either file scope or on the diagnostic's line / the line
// above it.
func suppressed(d Diagnostic, allows []*allow) bool {
	if d.Analyzer == "lintdirective" {
		return false
	}
	for _, a := range allows {
		if a.analyzer != d.Analyzer || a.file != d.Pos.Filename {
			continue
		}
		if a.fileScope || a.line == d.Pos.Line || a.line == d.Pos.Line-1 {
			a.used = true
			return true
		}
	}
	return false
}
