package lint

import (
	"go/ast"
)

// RetrySleep forbids time.Sleep inside a for loop in the real-environment
// packages (cmd/, examples/, the public API) that nowallclock does not
// cover. A loop body that sleeps is, in this codebase, almost always a
// retry or polling loop — and a bare time.Sleep there is invisible to the
// simulator and to the resilience layer's deterministic backoff schedule.
// Retry pacing must go through env (ctx.Sleep on a detached context) or
// through internal/resil, whose backoff is seeded and replayable. A sleep
// that is genuinely not retry pacing (a fixed-cadence measurement window,
// say) is suppressed with //lint:allow retrysleep <reason>.
var RetrySleep = &Analyzer{
	Name: "retrysleep",
	Doc: "forbid time.Sleep inside for loops outside the engine; retry pacing must use " +
		"env (ctx.Sleep) or internal/resil backoff so schedules stay deterministic",
	Run: runRetrySleep,
}

func runRetrySleep(pass *Pass) error {
	for _, f := range pass.Files {
		var walk func(n ast.Node, loopDepth int)
		walk = func(n ast.Node, loopDepth int) {
			switch n := n.(type) {
			case nil:
				return
			case *ast.FuncLit:
				// A closure starts a fresh scope: its body runs when the
				// closure is called, not per iteration of an enclosing loop.
				walk(n.Body, 0)
				return
			case *ast.ForStmt:
				walk(n.Init, loopDepth)
				walk(n.Cond, loopDepth)
				walk(n.Post, loopDepth)
				walk(n.Body, loopDepth+1)
				return
			case *ast.RangeStmt:
				walk(n.Body, loopDepth+1)
				return
			case *ast.CallExpr:
				if loopDepth > 0 {
					if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
						if fn := pkgLevelFunc(pass, sel, "time"); fn != nil && fn.Name() == "Sleep" {
							pass.Reportf(sel.Pos(),
								"time.Sleep in a loop is undeclared retry pacing; use env's ctx.Sleep or internal/resil backoff")
						}
					}
				}
			}
			// Generic descent for every other node kind.
			ast.Inspect(n, func(c ast.Node) bool {
				if c == n {
					return true
				}
				walk(c, loopDepth)
				return false
			})
		}
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				walk(fd.Body, 0)
			}
		}
	}
	return nil
}
