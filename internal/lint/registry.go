package lint

import "strings"

// enginePrefix is the import-path prefix of sim-executed code.
const enginePrefix = "tell/internal/"

// engineExempt names the internal packages that are, by design, outside
// the simulated world and may use real time, goroutines and scheduling:
//
//	env      — provides the real/virtual clock split itself
//	sim      — is the kernel (its goroutines ARE the scheduling mechanism)
//	testutil — test-only helpers (seed plumbing, leak checking)
//	lint     — this tool
//	sanitize — the telldebug runtime sanitizers (instrument real time on
//	           purpose; the passthrough build is inert)
var engineExempt = map[string]bool{
	"env":      true,
	"sim":      true,
	"testutil": true,
	"lint":     true,
	"sanitize": true,
}

// EnginePackage reports whether importPath holds sim-executed engine code,
// the scope of the determinism analyzers. Everything under tell/internal/
// is in scope except the exempt substrate packages; cmd/, examples/ and
// the embedded public API (package tell) run only on the real environment.
func EnginePackage(importPath string) bool {
	rest, ok := strings.CutPrefix(importPath, enginePrefix)
	if !ok {
		return false
	}
	top, _, _ := strings.Cut(rest, "/")
	return !engineExempt[top]
}

// RealEnvPackage reports whether importPath holds code that runs only on
// the real environment: the public API, the command binaries and the
// examples. The determinism analyzers do not apply there, but retrysleep
// does — a retry loop pacing itself with a bare time.Sleep bypasses both
// env's clock and resil's deterministic backoff.
func RealEnvPackage(importPath string) bool {
	return importPath == "tell" ||
		strings.HasPrefix(importPath, "tell/cmd/") ||
		strings.HasPrefix(importPath, "tell/examples/")
}

// AnalysisPackage reports whether importPath is in scope for the
// concurrency/protocol analyzers (lockorder, guardedfield, errdiscard):
// all module code — engine and real-environment alike — since locking and
// error discipline matter on both sides of the env split.
func AnalysisPackage(importPath string) bool {
	return EnginePackage(importPath) || RealEnvPackage(importPath)
}

// Default returns the tellvet analyzer suite with its repository scoping
// applied: the determinism analyzers run over engine packages, the wire
// completeness check over the wire codec, the retry-pacing check over the
// real-environment packages, and the concurrency/protocol analyzers over
// both.
func Default() []*Analyzer {
	scoped := func(a *Analyzer, applies func(string) bool) *Analyzer {
		b := *a
		b.Applies = applies
		return &b
	}
	return []*Analyzer{
		scoped(NoWallClock, EnginePackage),
		scoped(SeededRand, EnginePackage),
		scoped(MapOrder, EnginePackage),
		scoped(NoGoroutine, EnginePackage),
		scoped(WireComplete, func(path string) bool { return path == "tell/internal/wire" }),
		scoped(RetrySleep, RealEnvPackage),
		scoped(LockOrder, AnalysisPackage),
		scoped(GuardedField, AnalysisPackage),
		scoped(ErrDiscard, AnalysisPackage),
		// The transport package implements RoundTrip; wrapping its own
		// internals in retry policies would be circular.
		scoped(CtxDeadline, func(path string) bool {
			return EnginePackage(path) && path != "tell/internal/transport"
		}),
	}
}

// ByName returns the analyzer with the given name from Default(), or nil.
func ByName(name string) *Analyzer {
	for _, a := range Default() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
