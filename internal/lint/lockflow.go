package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
)

// This file is the shared flow machinery behind the concurrency analyzers
// (lockorder, guardedfield): a syntactic held-lock tracker that walks a
// function body in rough execution order maintaining the set of mutexes
// held, plus a package-local fixpoint that infers "caller holds mu"
// conventions — an unexported method whose every in-package call site holds
// a given receiver mutex is analyzed as if it acquired that mutex on entry.
//
// The tracking is deliberately approximate (branches are merged
// heuristically, closures start with an empty held set); the analyzers
// built on top report candidate hazards for human triage, with //lint:allow
// as the escape hatch, so precision is tuned for a useful signal-to-noise
// ratio rather than soundness.

// lockRef identifies one mutex as precisely as static analysis allows: the
// mutex variable (struct field, package-level or local var) plus the access
// path of the instance that owns it. base is a canonical string ("" when
// the path is too dynamic to canonicalize, which then never matches).
type lockRef struct {
	obj   *types.Var
	base  string
	class string // stable display name: "(pkg.Type).field" or "pkg.var"
}

func (l lockRef) sameInstance(o lockRef) bool {
	return l.obj == o.obj && l.base != "" && l.base == o.base
}

// heldLock is one entry of the held set.
type heldLock struct {
	ref lockRef
	pos token.Pos // acquisition site
}

// isMutexType reports whether t is sync.Mutex/RWMutex or the sanitize
// instrumented equivalents.
func isMutexType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil {
		return false
	}
	switch obj.Pkg().Path() {
	case "sync", "tell/internal/sanitize":
		return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
	}
	return false
}

// basePath canonicalizes the owner expression of a mutex or field access.
// Roots are identified by declaration position so shadowed names stay
// distinct; the result is deterministic across runs (token.Pos of a
// declaration is stable for a fixed file set).
func basePath(pass *Pass, e ast.Expr) (string, bool) {
	switch x := unparen(e).(type) {
	case *ast.Ident:
		obj := pass.ObjectOf(x)
		if obj == nil {
			return "", false
		}
		return strconv.Itoa(int(obj.Pos())), true
	case *ast.SelectorExpr:
		p, ok := basePath(pass, x.X)
		if !ok {
			return "", false
		}
		return p + "." + x.Sel.Name, true
	case *ast.StarExpr:
		return basePath(pass, x.X)
	}
	return "", false
}

func deref(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// namedOf returns the named type behind t (through one pointer), or nil.
func namedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	n, _ := deref(t).(*types.Named)
	return n
}

// lockClassName builds the stable display name of a mutex variable.
func lockClassName(pass *Pass, ownerExpr ast.Expr, v *types.Var) string {
	if v.IsField() && ownerExpr != nil {
		if n := namedOf(pass.TypeOf(ownerExpr)); n != nil {
			return "(" + pass.Pkg.Name() + "." + n.Obj().Name() + ")." + v.Name()
		}
	}
	return pass.Pkg.Name() + "." + v.Name()
}

type lockOp int

const (
	opNone lockOp = iota
	opAcquire
	opRelease
)

// classifyLockCall recognizes x.mu.Lock()/RLock()/Unlock()/RUnlock() (and
// the same on a bare mutex variable) and returns the operation plus the
// mutex reference.
func classifyLockCall(pass *Pass, call *ast.CallExpr) (lockOp, lockRef, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return opNone, lockRef{}, false
	}
	var op lockOp
	switch sel.Sel.Name {
	case "Lock", "RLock":
		op = opAcquire
	case "Unlock", "RUnlock":
		op = opRelease
	default:
		return opNone, lockRef{}, false
	}
	t := pass.TypeOf(sel.X)
	if t == nil || !isMutexType(deref(t)) {
		return opNone, lockRef{}, false
	}
	switch mx := unparen(sel.X).(type) {
	case *ast.SelectorExpr: // owner.mu
		v, _ := pass.ObjectOf(mx.Sel).(*types.Var)
		if v == nil {
			return opNone, lockRef{}, false
		}
		base, _ := basePath(pass, mx.X)
		return op, lockRef{obj: v, base: base, class: lockClassName(pass, mx.X, v)}, true
	case *ast.Ident: // package-level or local mutex
		v, _ := pass.ObjectOf(mx).(*types.Var)
		if v == nil {
			return opNone, lockRef{}, false
		}
		return op, lockRef{obj: v, base: "", class: lockClassName(pass, nil, v)}, true
	}
	return opNone, lockRef{}, false
}

// calleeFunc resolves the statically-called function of call, or nil.
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	switch f := unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pass.ObjectOf(f).(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.ObjectOf(f.Sel).(*types.Func)
		return fn
	}
	return nil
}

// lockScanner walks a function body tracking held locks. Callbacks may be
// nil. Branch merging is heuristic: a branch that terminates (returns,
// panics, breaks) does not contribute its lock effects to the fall-through
// state, which matches the dominant `if cond { mu.Unlock(); return }`
// idiom; sibling non-terminating branches are applied in order. Function
// literals inherit the held set at their syntactic position — in this
// codebase closures not launched with Go() run inline (mt.scan callbacks,
// retry attempts, local helpers), so the lock state at the literal is the
// state at invocation; only goroutine bodies start empty.
type lockScanner struct {
	pass      *Pass
	onAcquire func(ref lockRef, held []heldLock, pos token.Pos)
	onCall    func(call *ast.CallExpr, held []heldLock)
	onAccess  func(sel *ast.SelectorExpr, held []heldLock)
}

func (s *lockScanner) scanBody(body *ast.BlockStmt, entry []heldLock) {
	if body == nil {
		return
	}
	held := append([]heldLock(nil), entry...)
	s.stmtList(body.List, &held)
}

func (s *lockScanner) stmtList(list []ast.Stmt, held *[]heldLock) {
	for _, st := range list {
		s.stmt(st, held)
	}
}

func copyHeld(h []heldLock) []heldLock { return append([]heldLock(nil), h...) }

func (s *lockScanner) stmt(st ast.Stmt, held *[]heldLock) {
	switch st := st.(type) {
	case nil:
	case *ast.BlockStmt:
		s.stmtList(st.List, held)
	case *ast.ExprStmt:
		s.expr(st.X, held)
	case *ast.AssignStmt:
		for _, e := range st.Rhs {
			s.expr(e, held)
		}
		for _, e := range st.Lhs {
			s.expr(e, held)
		}
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, sp := range gd.Specs {
				if vs, ok := sp.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						s.expr(e, held)
					}
				}
			}
		}
	case *ast.DeferStmt:
		op, ref, ok := classifyLockCall(s.pass, st.Call)
		if ok && op == opRelease {
			// Deferred unlock: the lock stays held to the end of the
			// function as far as this scan can see. Intentional.
			_ = ref
			return
		}
		for _, a := range st.Call.Args {
			s.expr(a, held)
		}
		if ok && op == opAcquire {
			return
		}
		if lit, ok := st.Call.Fun.(*ast.FuncLit); ok {
			s.funcLit(lit, *held)
		}
		if s.onCall != nil {
			s.onCall(st.Call, *held)
		}
	case *ast.GoStmt:
		// The spawned call runs concurrently: its body never executes
		// under the caller's locks.
		for _, a := range st.Call.Args {
			s.expr(a, held)
		}
		if lit, ok := st.Call.Fun.(*ast.FuncLit); ok {
			var empty []heldLock
			s.stmtList(lit.Body.List, &empty)
		}
	case *ast.SendStmt:
		s.expr(st.Chan, held)
		s.expr(st.Value, held)
	case *ast.IncDecStmt:
		s.expr(st.X, held)
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			s.expr(e, held)
		}
	case *ast.LabeledStmt:
		s.stmt(st.Stmt, held)
	case *ast.IfStmt:
		s.stmt(st.Init, held)
		s.expr(st.Cond, held)
		thenHeld := copyHeld(*held)
		s.stmtList(st.Body.List, &thenHeld)
		thenTerm := terminates(st.Body)
		if st.Else != nil {
			elseHeld := copyHeld(*held)
			s.stmt(st.Else, &elseHeld)
			elseTerm := stmtTerminates(st.Else)
			switch {
			case thenTerm && elseTerm:
				// fall-through unreachable; keep entry state
			case thenTerm:
				*held = elseHeld
			default:
				*held = thenHeld
			}
		} else if !thenTerm {
			*held = thenHeld
		}
	case *ast.ForStmt:
		s.stmt(st.Init, held)
		if st.Cond != nil {
			s.expr(st.Cond, held)
		}
		body := copyHeld(*held)
		s.stmtList(st.Body.List, &body)
		s.stmt(st.Post, &body)
		*held = body
	case *ast.RangeStmt:
		s.expr(st.X, held)
		body := copyHeld(*held)
		s.stmtList(st.Body.List, &body)
		*held = body
	case *ast.SwitchStmt:
		s.stmt(st.Init, held)
		if st.Tag != nil {
			s.expr(st.Tag, held)
		}
		s.caseClauses(st.Body, held)
	case *ast.TypeSwitchStmt:
		s.stmt(st.Init, held)
		s.stmt(st.Assign, held)
		s.caseClauses(st.Body, held)
	case *ast.SelectStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				branch := copyHeld(*held)
				if cc.Comm != nil {
					s.stmt(cc.Comm, &branch)
				}
				s.stmtList(cc.Body, &branch)
			}
		}
	}
}

func (s *lockScanner) caseClauses(body *ast.BlockStmt, held *[]heldLock) {
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok {
			branch := copyHeld(*held)
			for _, e := range cc.List {
				s.expr(e, &branch)
			}
			s.stmtList(cc.Body, &branch)
		}
	}
}

// funcLit scans a literal's body with the held state at its position;
// mutations inside the closure stay local to it.
func (s *lockScanner) funcLit(lit *ast.FuncLit, held []heldLock) {
	body := copyHeld(held)
	s.stmtList(lit.Body.List, &body)
}

func (s *lockScanner) expr(e ast.Expr, held *[]heldLock) {
	switch e := e.(type) {
	case nil:
	case *ast.CallExpr:
		if op, ref, ok := classifyLockCall(s.pass, e); ok {
			// Visit the owner path for field-access accounting first.
			if sel, ok := e.Fun.(*ast.SelectorExpr); ok {
				if mx, ok := unparen(sel.X).(*ast.SelectorExpr); ok {
					s.expr(mx.X, held)
				}
			}
			switch op {
			case opAcquire:
				if s.onAcquire != nil {
					s.onAcquire(ref, *held, e.Pos())
				}
				*held = append(*held, heldLock{ref: ref, pos: e.Pos()})
			case opRelease:
				s.release(held, ref)
			}
			return
		}
		s.expr(e.Fun, held)
		for _, a := range e.Args {
			s.expr(a, held)
		}
		if s.onCall != nil {
			s.onCall(e, *held)
		}
	case *ast.FuncLit:
		s.funcLit(e, *held)
	case *ast.SelectorExpr:
		s.expr(e.X, held)
		if s.onAccess != nil {
			s.onAccess(e, *held)
		}
	case *ast.ParenExpr:
		s.expr(e.X, held)
	case *ast.StarExpr:
		s.expr(e.X, held)
	case *ast.UnaryExpr:
		s.expr(e.X, held)
	case *ast.BinaryExpr:
		s.expr(e.X, held)
		s.expr(e.Y, held)
	case *ast.IndexExpr:
		s.expr(e.X, held)
		s.expr(e.Index, held)
	case *ast.SliceExpr:
		s.expr(e.X, held)
		s.expr(e.Low, held)
		s.expr(e.High, held)
		s.expr(e.Max, held)
	case *ast.TypeAssertExpr:
		s.expr(e.X, held)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				s.expr(kv.Value, held)
				continue
			}
			s.expr(el, held)
		}
	case *ast.KeyValueExpr:
		s.expr(e.Value, held)
	}
}

// release removes the innermost held entry matching ref's variable (and
// instance, when both sides have a canonical base).
func (s *lockScanner) release(held *[]heldLock, ref lockRef) {
	h := *held
	for i := len(h) - 1; i >= 0; i-- {
		if h[i].ref.obj != ref.obj {
			continue
		}
		if h[i].ref.base != ref.base && h[i].ref.base != "" && ref.base != "" {
			continue
		}
		*held = append(h[:i:i], h[i+1:]...)
		return
	}
}

// terminates reports whether a block always transfers control away (the
// approximation behind branch merging).
func terminates(b *ast.BlockStmt) bool {
	if b == nil || len(b.List) == 0 {
		return false
	}
	return stmtTerminates(b.List[len(b.List)-1])
}

func stmtTerminates(st ast.Stmt) bool {
	switch st := st.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok {
			if id, ok := unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.BlockStmt:
		return terminates(st)
	case *ast.IfStmt:
		return st.Else != nil && terminates(st.Body) && stmtTerminates(st.Else)
	case *ast.LabeledStmt:
		return stmtTerminates(st.Stmt)
	}
	return false
}

// funcFacts is the per-function result of the context-propagation fixpoint.
type funcFacts struct {
	decl    *ast.FuncDecl
	fn      *types.Func
	recv    *types.Var
	ctxHeld map[*types.Var]bool // receiver mutex fields held at every in-package call site
	escapes bool                // referenced as a value: unknown callers exist
}

// lockFacts is the package-wide analysis state shared by lockorder and
// guardedfield.
type lockFacts struct {
	pass  *Pass
	funcs []*funcFacts // declaration order
	byFn  map[*types.Func]*funcFacts
}

// entryHeld translates a function's inferred context into scanner entry
// state: each context mutex appears held on the receiver's path.
func (lf *lockFacts) entryHeld(ff *funcFacts) []heldLock {
	if ff.recv == nil || len(ff.ctxHeld) == 0 {
		return nil
	}
	base := strconv.Itoa(int(ff.recv.Pos()))
	var fields []*types.Var
	for v := range ff.ctxHeld {
		fields = append(fields, v)
	}
	sort.Slice(fields, func(i, j int) bool { return fields[i].Pos() < fields[j].Pos() })
	var out []heldLock
	for _, v := range fields {
		class := lockClassName(lf.pass, nil, v)
		if n := namedOf(ff.recv.Type()); n != nil {
			class = "(" + lf.pass.Pkg.Name() + "." + n.Obj().Name() + ")." + v.Name()
		}
		out = append(out, heldLock{
			ref: lockRef{obj: v, base: base, class: class},
			pos: ff.decl.Pos(),
		})
	}
	return out
}

// mutexFields lists the mutex-typed fields of the named struct type.
func mutexFields(n *types.Named) []*types.Var {
	st, ok := n.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	var out []*types.Var
	for i := 0; i < st.NumFields(); i++ {
		if isMutexType(deref(st.Field(i).Type())) {
			out = append(out, st.Field(i))
		}
	}
	return out
}

// freshLocals collects local variables assigned from composite literals or
// same-package constructor calls (package-level functions, the New*/Decode*
// shape): values still private to the function that built them, which no
// lock can be expected to guard yet.
func freshLocals(pass *Pass, fd *ast.FuncDecl) map[string]bool {
	out := map[string]bool{}
	ast.Inspect(fd, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) < 1 {
			return true
		}
		if len(as.Rhs) == len(as.Lhs) {
			for i, rhs := range as.Rhs {
				if freshRhs(pass, rhs) {
					markFresh(pass, as.Lhs[i], out)
				}
			}
			return true
		}
		// v, err := NewX(...) style multi-value constructor.
		if len(as.Rhs) == 1 && freshRhs(pass, as.Rhs[0]) {
			markFresh(pass, as.Lhs[0], out)
		}
		return true
	})
	return out
}

func freshRhs(pass *Pass, rhs ast.Expr) bool {
	e := unparen(rhs)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		e = unparen(u.X)
	}
	switch e := e.(type) {
	case *ast.CompositeLit:
		return true
	case *ast.CallExpr:
		fn := calleeFunc(pass, e)
		if fn == nil || fn.Pkg() != pass.Pkg {
			return false
		}
		sig, _ := fn.Type().(*types.Signature)
		return sig != nil && sig.Recv() == nil
	}
	return false
}

func markFresh(pass *Pass, lhs ast.Expr, out map[string]bool) {
	id, ok := unparen(lhs).(*ast.Ident)
	if !ok {
		return
	}
	if obj := pass.ObjectOf(id); obj != nil {
		out[strconv.Itoa(int(obj.Pos()))] = true
	}
}

// rootFresh reports whether the access path is rooted at a fresh local.
func rootFresh(base string, fresh map[string]bool) bool {
	root := base
	for i := 0; i < len(base); i++ {
		if base[i] == '.' {
			root = base[:i]
			break
		}
	}
	return fresh[root]
}

// buildLockFacts runs the "guarded call path" fixpoint: starting from
// lexically-held locks, it repeatedly infers that an unexported,
// never-escaping method is always entered with a receiver mutex held when
// every in-package call site holds it, until nothing changes.
func buildLockFacts(pass *Pass) *lockFacts {
	lf := &lockFacts{pass: pass, byFn: map[*types.Func]*funcFacts{}}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.ObjectOf(fd.Name).(*types.Func)
			if fn == nil {
				continue
			}
			ff := &funcFacts{decl: fd, fn: fn, ctxHeld: map[*types.Var]bool{}}
			if fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
				ff.recv, _ = pass.ObjectOf(fd.Recv.List[0].Names[0]).(*types.Var)
			}
			lf.funcs = append(lf.funcs, ff)
			lf.byFn[fn] = ff
		}
	}

	// A function referenced outside call position (stored, passed as a
	// handler, ...) has callers the call-graph cannot see.
	callPos := map[*ast.Ident]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				switch fun := unparen(call.Fun).(type) {
				case *ast.Ident:
					callPos[fun] = true
				case *ast.SelectorExpr:
					callPos[fun.Sel] = true
				}
			}
			return true
		})
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || callPos[id] {
				return true
			}
			// Uses only: the declaration ident itself is not a reference.
			if fn, ok := pass.TypesInfo.Uses[id].(*types.Func); ok {
				if ff := lf.byFn[fn]; ff != nil {
					ff.escapes = true
				}
			}
			return true
		})
	}

	// Fixpoint: held context only grows, so this converges.
	for iter := 0; iter < 10; iter++ {
		// callee → per-call-site held mutex fields; nil slice means no
		// call sites seen yet.
		siteHeld := map[*funcFacts][]map[*types.Var]bool{}
		for _, ff := range lf.funcs {
			entry := lf.entryHeld(ff)
			fresh := freshLocals(pass, ff.decl)
			sc := &lockScanner{pass: pass}
			sc.onCall = func(call *ast.CallExpr, held []heldLock) {
				fn := calleeFunc(pass, call)
				if fn == nil {
					return
				}
				callee := lf.byFn[fn]
				if callee == nil || callee.recv == nil {
					return
				}
				sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
				if !ok {
					return
				}
				base, ok := basePath(pass, sel.X)
				if !ok {
					base = "\x00nomatch"
				}
				// A method call on a still-private value needs no lock;
				// such sites must not veto the callee's held context.
				if ok && rootFresh(base, fresh) {
					return
				}
				heldFields := map[*types.Var]bool{}
				for _, h := range held {
					if h.ref.base == base && h.ref.obj.IsField() {
						heldFields[h.ref.obj] = true
					}
				}
				siteHeld[callee] = append(siteHeld[callee], heldFields)
			}
			sc.scanBody(ff.decl.Body, entry)
		}
		changed := false
		for _, ff := range lf.funcs {
			if ff.recv == nil || ff.fn.Exported() || ff.escapes {
				continue
			}
			sites := siteHeld[ff]
			if len(sites) == 0 {
				continue
			}
			inter := map[*types.Var]bool{}
			for v := range sites[0] {
				inter[v] = true
			}
			for _, s := range sites[1:] {
				for v := range inter {
					if !s[v] {
						delete(inter, v)
					}
				}
			}
			// Restrict to mutex fields of the receiver's own struct.
			if n := namedOf(ff.recv.Type()); n != nil {
				own := map[*types.Var]bool{}
				for _, mf := range mutexFields(n) {
					own[mf] = true
				}
				for v := range inter {
					if !own[v] {
						delete(inter, v)
					}
				}
			} else {
				inter = map[*types.Var]bool{}
			}
			for v := range inter {
				if !ff.ctxHeld[v] {
					ff.ctxHeld[v] = true
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	return lf
}
