package lint

import (
	"go/ast"
)

// NoGoroutine forbids raw `go` statements in sim-executed packages. A bare
// goroutine runs preemptively on the Go scheduler, outside the kernel's
// strict one-process-at-a-time hand-off, so its interleaving with simulated
// activities differs run to run. Concurrency in engine code must spawn
// through env.Node.Go / env.Ctx.Go (which the simulated environment routes
// to sim.Kernel.Go) so the kernel owns the schedule.
var NoGoroutine = &Analyzer{
	Name: "nogoroutine",
	Doc: "forbid raw go statements in sim-executed packages; spawn activities via " +
		"env.Node.Go / env.Ctx.Go so the DES kernel schedules them",
	Run: runNoGoroutine,
}

func runNoGoroutine(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				pass.Reportf(g.Pos(),
					"raw goroutine bypasses the DES kernel's deterministic scheduler; spawn via env.Node.Go / env.Ctx.Go")
			}
			return true
		})
	}
	return nil
}
