package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// GuardedField infers "field X is only accessed while mu is held" from
// majority usage and flags the outlier accesses. A field of a struct that
// also holds a mutex is considered guarded by that mutex when at least
// guardedMin accesses happen under it and guarded sites outnumber
// unguarded ones by guardedRatio; the remaining unguarded accesses are then
// likely races. Accesses in constructors (functions returning the struct)
// and on freshly built composite literals are exempt — initialization before
// publication needs no lock. "Caller holds mu" helper methods are credited
// through the same call-path context inference lockorder uses.
var GuardedField = &Analyzer{
	Name: "guardedfield",
	Doc:  "flag unguarded accesses to fields that are mutex-guarded by majority usage",
	Run:  runGuardedField,
}

const (
	guardedMin   = 2 // minimum guarded accesses before the field counts as guarded
	guardedRatio = 2 // guarded sites must be >= ratio × unguarded sites
)

type fieldStats struct {
	field     *types.Var
	owner     *types.Named
	guarded   int
	guardians map[*types.Var]int // which mutex was held, for the message
	unguarded []token.Pos
}

func runGuardedField(pass *Pass) error {
	lf := buildLockFacts(pass)

	stats := map[*types.Var]*fieldStats{}
	var fieldOrder []*types.Var

	for _, ff := range lf.funcs {
		ctor := constructorResults(pass, ff.decl)
		fresh := freshLocals(pass, ff.decl)
		sc := &lockScanner{pass: pass}
		sc.onAccess = func(sel *ast.SelectorExpr, held []heldLock) {
			selInfo := pass.TypesInfo.Selections[sel]
			if selInfo == nil || selInfo.Kind() != types.FieldVal {
				return
			}
			field, _ := selInfo.Obj().(*types.Var)
			if field == nil || isMutexType(deref(field.Type())) {
				return
			}
			owner := namedOf(selInfo.Recv())
			if owner == nil || owner.Obj().Pkg() != pass.Pkg {
				return
			}
			mus := mutexFields(owner)
			if len(mus) == 0 {
				return
			}
			if ctor[owner] {
				return
			}
			base, ok := basePath(pass, sel.X)
			if !ok {
				return
			}
			if rootFresh(base, fresh) {
				return
			}
			st := stats[field]
			if st == nil {
				st = &fieldStats{field: field, owner: owner, guardians: map[*types.Var]int{}}
				stats[field] = st
				fieldOrder = append(fieldOrder, field)
			}
			for _, h := range held {
				if h.ref.base == base && isOwnMutex(mus, h.ref.obj) {
					st.guarded++
					st.guardians[h.ref.obj]++
					return
				}
			}
			st.unguarded = append(st.unguarded, sel.Sel.Pos())
		}
		sc.scanBody(ff.decl.Body, lf.entryHeld(ff))
	}

	sort.Slice(fieldOrder, func(i, j int) bool { return fieldOrder[i].Pos() < fieldOrder[j].Pos() })
	for _, f := range fieldOrder {
		st := stats[f]
		if st.guarded < guardedMin || len(st.unguarded) == 0 {
			continue
		}
		if st.guarded < guardedRatio*len(st.unguarded) {
			continue
		}
		guardian := dominantGuardian(st.guardians)
		owner := "(" + pass.Pkg.Name() + "." + st.owner.Obj().Name() + ")"
		for _, pos := range st.unguarded {
			pass.Reportf(pos, "%s.%s is accessed under %s.%s at %d site(s) but not here; hold the mutex or //lint:allow guardedfield <reason>",
				owner, st.field.Name(), owner, guardian.Name(), st.guarded)
		}
	}
	return nil
}

func isOwnMutex(mus []*types.Var, v *types.Var) bool {
	for _, m := range mus {
		if m == v {
			return true
		}
	}
	return false
}

func dominantGuardian(g map[*types.Var]int) *types.Var {
	var best *types.Var
	for v, n := range g {
		if best == nil || n > g[best] || (n == g[best] && v.Pos() < best.Pos()) {
			best = v
		}
	}
	return best
}

// constructorResults lists the named struct types a function returns —
// accesses to their fields inside it are initialization, not sharing.
func constructorResults(pass *Pass, fd *ast.FuncDecl) map[*types.Named]bool {
	out := map[*types.Named]bool{}
	if fd.Type.Results == nil {
		return out
	}
	for _, r := range fd.Type.Results.List {
		if n := namedOf(pass.TypeOf(r.Type)); n != nil {
			out[n] = true
		}
	}
	return out
}
