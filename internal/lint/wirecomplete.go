package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// WireComplete verifies that every exported field of a wire-format message
// struct is referenced by both the encode side and the decode side of the
// package's codec. A field that is encoded but never decoded (or added to
// the struct but wired into neither) is silently dropped on the wire: the
// round-trip fuzz target cannot see it because both directions agree on the
// truncated form. This analyzer catches it structurally.
//
// Conventions (those of internal/wire): the encode side is every method
// named Encode plus every function whose name starts with "encode"; the
// decode side is every function whose name starts with "Decode" or
// "decode". A struct participates in the codec when at least one of its
// exported fields is referenced on either side or it has an Encode method;
// structs outside the codec (option bags, helpers) are ignored.
//
// Intentionally unserialized fields (client-side annotations) carry a
// //lint:allow wirecomplete <reason> on their declaration line.
var WireComplete = &Analyzer{
	Name: "wirecomplete",
	Doc: "verify every exported field of wire message structs is referenced by both the " +
		"encode and decode functions, catching silently-dropped fields",
	Run: runWireComplete,
}

func runWireComplete(pass *Pass) error {
	encodeRefs := map[*types.Var]bool{} // struct fields referenced on the encode side
	decodeRefs := map[*types.Var]bool{}
	hasEncode := map[*types.Named]bool{} // named struct types with an Encode method

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			name := fn.Name.Name
			isMethod := fn.Recv != nil
			var side map[*types.Var]bool
			switch {
			case isMethod && name == "Encode",
				!isMethod && strings.HasPrefix(name, "encode"),
				!isMethod && strings.HasPrefix(name, "Encode"):
				side = encodeRefs
			case strings.HasPrefix(name, "Decode"), strings.HasPrefix(name, "decode"):
				side = decodeRefs
			default:
				continue
			}
			if isMethod && name == "Encode" {
				if named := receiverNamed(pass, fn); named != nil {
					hasEncode[named] = true
				}
			}
			collectFieldRefs(pass, fn.Body, side)
		}
	}

	// Check each exported struct type declared in this package.
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || !ts.Name.IsExported() {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				checkMessageStruct(pass, ts, st, encodeRefs, decodeRefs, hasEncode)
			}
		}
	}
	return nil
}

func checkMessageStruct(pass *Pass, ts *ast.TypeSpec, st *ast.StructType,
	encodeRefs, decodeRefs map[*types.Var]bool, hasEncode map[*types.Named]bool) {

	// Gather this struct's exported field objects.
	type fieldDecl struct {
		obj  *types.Var
		name *ast.Ident
	}
	var fields []fieldDecl
	for _, fld := range st.Fields.List {
		for _, name := range fld.Names {
			if !name.IsExported() {
				continue
			}
			if v, ok := pass.ObjectOf(name).(*types.Var); ok {
				fields = append(fields, fieldDecl{obj: v, name: name})
			}
		}
	}
	if len(fields) == 0 {
		return
	}

	inCodec := false
	if named, ok := pass.ObjectOf(ts.Name).Type().(*types.Named); ok && hasEncode[named] {
		inCodec = true
	}
	for _, fd := range fields {
		if encodeRefs[fd.obj] || decodeRefs[fd.obj] {
			inCodec = true
		}
	}
	if !inCodec {
		return
	}

	for _, fd := range fields {
		switch {
		case !encodeRefs[fd.obj] && !decodeRefs[fd.obj]:
			pass.Reportf(fd.name.Pos(),
				"field %s.%s is in neither the encode nor the decode path: it is silently dropped on the wire",
				ts.Name.Name, fd.name.Name)
		case !encodeRefs[fd.obj]:
			pass.Reportf(fd.name.Pos(),
				"field %s.%s is decoded but never encoded: senders always transmit the zero value",
				ts.Name.Name, fd.name.Name)
		case !decodeRefs[fd.obj]:
			pass.Reportf(fd.name.Pos(),
				"field %s.%s is encoded but never decoded: receivers silently drop it",
				ts.Name.Name, fd.name.Name)
		}
	}
}

// collectFieldRefs records every struct-field object referenced in body:
// selector expressions (m.Field, incl. through pointers and slice
// elements) and keyed composite-literal fields (&T{Field: v}).
func collectFieldRefs(pass *Pass, body *ast.BlockStmt, into map[*types.Var]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SelectorExpr:
			if sel, ok := pass.TypesInfo.Selections[x]; ok && sel.Kind() == types.FieldVal {
				if v, ok := sel.Obj().(*types.Var); ok && v.IsField() {
					into[v] = true
				}
			}
		case *ast.KeyValueExpr:
			if id, ok := x.Key.(*ast.Ident); ok {
				if v, ok := pass.ObjectOf(id).(*types.Var); ok && v.IsField() {
					into[v] = true
				}
			}
		}
		return true
	})
}

func receiverNamed(pass *Pass, fn *ast.FuncDecl) *types.Named {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return nil
	}
	t := pass.TypeOf(fn.Recv.List[0].Type)
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}
