package lint

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, parsed and type-checked package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listedPkg is the subset of `go list -json` output the loader consumes.
type listedPkg struct {
	Dir        string
	ImportPath string
	Name       string
	Export     string
	Standard   bool
	GoFiles    []string
	Error      *struct{ Err string }
}

// Load parses and type-checks the non-test Go files of the packages matched
// by patterns (relative to dir, e.g. "./..."), resolving imports through
// compiler export data.
//
// There is no golang.org/x/tools dependency: the loader shells out to
// `go list -deps -export -json`, which compiles every dependency (standard
// library included) into the build cache and reports the export-data file
// per package; go/importer's gc importer then consumes those files via its
// lookup hook. This is the same arrangement `go vet` sets up for its
// analyzers, done by hand.
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{
		"list", "-deps", "-export", "-e",
		"-json=Dir,ImportPath,Name,Export,Standard,GoFiles,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list: %v\n%s", err, stderr.String())
	}

	exports := map[string]string{}
	var targets []*listedPkg
	matched := map[string]bool{}
	// `go list -deps pattern...` prints the dependency closure; the
	// packages named by the patterns are exactly those whose ImportPath
	// reappears when listing without -deps. Cheaper: a package is a target
	// if it is non-standard and belongs to the patterns' module — callers
	// here always lint the current module, so "not Standard" is the test.
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.Standard && !matched[p.ImportPath] {
			matched[p.ImportPath] = true
			q := p
			targets = append(targets, &q)
		}
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*Package
	for _, t := range targets {
		pkg, err := check(fset, imp, t.ImportPath, t.Dir, t.GoFiles)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadDir parses and type-checks a single directory of Go files as one
// package outside any module — the fixture loader for analyzer tests.
// Imports resolve against the dependency closure of the packages listed in
// deps, which must be importable from modDir.
func LoadDir(fixtureDir, modDir string, deps ...string) (*Package, error) {
	args := append([]string{
		"list", "-deps", "-export",
		"-json=Dir,ImportPath,Name,Export,Standard,GoFiles",
	}, deps...)
	cmd := exec.Command("go", args...)
	cmd.Dir = modDir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %v: %v\n%s", deps, err, stderr.String())
	}
	exports := map[string]string{}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, err
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}

	entries, err := os.ReadDir(fixtureDir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".go" {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		return nil, errors.New("lint: no fixture files in " + fixtureDir)
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: fixture imports %q, not in the fixture dep closure", path)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)
	return check(fset, imp, "fixture", fixtureDir, names)
}

func check(fset *token.FileSet, imp types.Importer, importPath, dir string, goFiles []string) (*Package, error) {
	var files []*ast.File
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}
