package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder builds a per-package mutex-acquisition graph from guarded call
// paths and reports (a) acquisition-order cycles — potential deadlocks,
// (b) re-acquisition of a mutex already held on the same instance — a
// guaranteed self-deadlock with Go's non-reentrant mutexes, and (c) locks
// held across blocking operations (network round trips, WAL/backend syncs,
// virtual-clock sleeps, queue waits). The last class is the engine's core
// locking rule: a sync.Mutex protects in-memory state between scheduling
// points and must be released before any operation that can park the
// goroutine (see internal/env.Locker for the blocking-safe alternative).
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "report mutex acquisition-order cycles and locks held across blocking I/O",
	Run:  runLockOrder,
}

// blockingCalls maps package path → function/method name → why it blocks.
// Method lookups use the package that declares the method (interface
// methods resolve to the interface's package), so transport.Conn.RoundTrip
// covers every transport implementation.
var blockingCalls = map[string]map[string]string{
	"time": {"Sleep": "wall-clock sleep"},
	"os":   {"Sync": "file fsync"},
	"tell/internal/env": {
		"Sleep":      "virtual-clock sleep",
		"Get":        "queue/future wait",
		"GetTimeout": "queue/future wait",
		"Lock":       "env.Locker wait",
	},
	"tell/internal/transport": {
		"RoundTrip": "network round trip",
		"Dial":      "connection dial",
	},
	"tell/internal/resil": {
		"Do":    "retry loop (RPC attempts + backoff sleeps)",
		"Enter": "admission-gate wait",
	},
	"tell/internal/durable": {
		"Put":             "backend write",
		"Append":          "backend append",
		"Sync":            "backend sync",
		"Get":             "backend read",
		"List":            "backend list",
		"Delete":          "backend delete",
		"Commit":          "WAL group commit",
		"WriteCheckpoint": "checkpoint write",
		"LoadCheckpoint":  "checkpoint read",
		"ReplayWAL":       "WAL replay",
		"RecoveryObjects": "backend list",
	},
}

// blockingReason returns why calling fn blocks, or "".
func blockingReason(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return blockingCalls[fn.Pkg().Path()][fn.Name()]
}

type lockEdge struct {
	from, to string
	pos      token.Pos
	via      string // callee name when the acquisition is transitive
}

type fnSummary struct {
	acquires map[string]bool // lock classes acquired anywhere in the body
	blocks   string          // non-empty: why the function (transitively) blocks
	blockVia string          // call chain hint for transitive blocking
}

func runLockOrder(pass *Pass) error {
	lf := buildLockFacts(pass)

	// Pass 1: per-function direct facts — classes acquired, direct blocking
	// calls, and the same-package static call list.
	type callRec struct {
		fn  *types.Func
		pos token.Pos
	}
	direct := map[*funcFacts]*fnSummary{}
	calls := map[*funcFacts][]callRec{}
	for _, ff := range lf.funcs {
		sum := &fnSummary{acquires: map[string]bool{}}
		direct[ff] = sum
		sc := &lockScanner{pass: pass}
		sc.onAcquire = func(ref lockRef, held []heldLock, pos token.Pos) {
			sum.acquires[ref.class] = true
		}
		sc.onCall = func(call *ast.CallExpr, held []heldLock) {
			fn := calleeFunc(pass, call)
			if fn == nil {
				return
			}
			if why := blockingReason(fn); why != "" && sum.blocks == "" {
				sum.blocks = why
				sum.blockVia = fn.Name()
			}
			if callee := lf.byFn[fn]; callee != nil {
				calls[ff] = append(calls[ff], callRec{fn: fn, pos: call.Pos()})
			}
		}
		sc.scanBody(ff.decl.Body, nil)
	}

	// Transitive closure over the package-local call graph: acquires and
	// blocking propagate from callees to callers.
	summary := map[*funcFacts]*fnSummary{}
	for ff, d := range direct {
		s := &fnSummary{acquires: map[string]bool{}, blocks: d.blocks, blockVia: d.blockVia}
		for c := range d.acquires {
			s.acquires[c] = true
		}
		summary[ff] = s
	}
	for iter := 0; iter < 20; iter++ {
		changed := false
		for _, ff := range lf.funcs {
			s := summary[ff]
			for _, cr := range calls[ff] {
				cs := summary[lf.byFn[cr.fn]]
				for c := range cs.acquires {
					if !s.acquires[c] {
						s.acquires[c] = true
						changed = true
					}
				}
				if s.blocks == "" && cs.blocks != "" {
					s.blocks = cs.blocks
					s.blockVia = cr.fn.Name() + " → " + cs.blockVia
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}

	// Pass 2: with inferred entry contexts, collect order edges and
	// held-across-blocking sites.
	var edges []lockEdge
	for _, ff := range lf.funcs {
		sc := &lockScanner{pass: pass}
		sc.onAcquire = func(ref lockRef, held []heldLock, pos token.Pos) {
			for _, h := range held {
				if h.ref.sameInstance(ref) {
					pass.Reportf(pos, "%s acquired while already held (self-deadlock; Go mutexes are not reentrant)", ref.class)
					continue
				}
				// Same class on a distinct instance records a self-edge, so
				// two-instance ordering shows up as a cycle.
				edges = append(edges, lockEdge{from: h.ref.class, to: ref.class, pos: pos})
			}
		}
		sc.onCall = func(call *ast.CallExpr, held []heldLock) {
			if len(held) == 0 {
				return
			}
			fn := calleeFunc(pass, call)
			if fn == nil {
				return
			}
			classes := heldClasses(held)
			if why := blockingReason(fn); why != "" {
				pass.Reportf(call.Pos(), "%s held across %s.%s (%s); release before blocking or //lint:allow lockorder <reason>",
					classes, calleePkgName(fn), fn.Name(), why)
				return
			}
			callee := lf.byFn[fn]
			if callee == nil {
				return
			}
			cs := summary[callee]
			if cs.blocks != "" && !callContextCovered(pass, lf, call, callee, held) {
				pass.Reportf(call.Pos(), "%s held across call to %s, which blocks (%s via %s)",
					classes, fn.Name(), cs.blocks, cs.blockVia)
			}
			for _, h := range held {
				for c := range cs.acquires {
					if c == h.ref.class {
						continue
					}
					edges = append(edges, lockEdge{from: h.ref.class, to: c, pos: call.Pos(), via: fn.Name()})
				}
			}
		}
		sc.scanBody(ff.decl.Body, lf.entryHeld(ff))
	}

	reportCycles(pass, edges)
	return nil
}

// callContextCovered reports whether the callee's inferred held context
// already accounts for every lock held at this call site — i.e. the callee
// is a "caller holds mu" helper and its own body was checked under that
// context, so re-reporting at the call site would duplicate the finding.
func callContextCovered(pass *Pass, lf *lockFacts, call *ast.CallExpr, callee *funcFacts, held []heldLock) bool {
	if len(callee.ctxHeld) == 0 {
		return false
	}
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	base, ok := basePath(pass, sel.X)
	if !ok {
		return false
	}
	for _, h := range held {
		if h.ref.base == base && callee.ctxHeld[h.ref.obj] {
			continue
		}
		return false
	}
	return true
}

func heldClasses(held []heldLock) string {
	seen := map[string]bool{}
	var names []string
	for _, h := range held {
		if !seen[h.ref.class] {
			seen[h.ref.class] = true
			names = append(names, h.ref.class)
		}
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

func calleePkgName(fn *types.Func) string {
	if fn.Pkg() == nil {
		return "?"
	}
	return fn.Pkg().Name()
}

// reportCycles finds strongly connected components of the acquisition graph
// and reports every edge participating in a cycle.
func reportCycles(pass *Pass, edges []lockEdge) {
	adj := map[string]map[string]bool{}
	nodes := map[string]bool{}
	for _, e := range edges {
		nodes[e.from], nodes[e.to] = true, true
		if adj[e.from] == nil {
			adj[e.from] = map[string]bool{}
		}
		adj[e.from][e.to] = true
	}
	var order []string
	for n := range nodes {
		order = append(order, n)
	}
	sort.Strings(order)

	// Tarjan SCC, iterative enough for these tiny graphs via recursion.
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	comp := map[string]int{}
	nextIndex, nextComp := 0, 0
	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = nextIndex
		low[v] = nextIndex
		nextIndex++
		stack = append(stack, v)
		onStack[v] = true
		var succs []string
		for w := range adj[v] {
			succs = append(succs, w)
		}
		sort.Strings(succs)
		for _, w := range succs {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp[w] = nextComp
				if w == v {
					break
				}
			}
			nextComp++
		}
	}
	for _, n := range order {
		if _, seen := index[n]; !seen {
			strongconnect(n)
		}
	}

	compSize := map[int]int{}
	for _, c := range comp {
		compSize[c]++
	}
	compMembers := map[int][]string{}
	for _, n := range order {
		compMembers[comp[n]] = append(compMembers[comp[n]], n)
	}

	reported := map[string]bool{}
	for _, e := range edges {
		inCycle := comp[e.from] == comp[e.to] &&
			(compSize[comp[e.from]] > 1 || (e.from == e.to && adj[e.from][e.to]))
		if !inCycle {
			continue
		}
		key := fmt.Sprintf("%d:%s:%s", e.pos, e.from, e.to)
		if reported[key] {
			continue
		}
		reported[key] = true
		cycle := strings.Join(compMembers[comp[e.from]], " ⇄ ")
		via := ""
		if e.via != "" {
			via = " (via " + e.via + ")"
		}
		if e.from == e.to {
			pass.Reportf(e.pos, "lock-order hazard: %s acquired while another %s instance is held%s; order instances consistently or //lint:allow lockorder <reason>", e.to, e.from, via)
			continue
		}
		pass.Reportf(e.pos, "lock-order cycle [%s]: %s acquired while %s is held%s; a concurrent path acquires them in the opposite order", cycle, e.to, e.from, via)
	}
}
