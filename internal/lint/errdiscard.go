package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrDiscard flags dropped errors on durability- and wire-critical calls.
// A silently ignored Sync error can acknowledge an unsynced write; an
// ignored Close on a WAL handle can mask a lost flush; an ignored
// RoundTrip result can drop a protocol failure on the floor. The check
// fires when every error result of a call to one of the critical names is
// discarded — as a bare statement, a deferred call, or a blank assignment.
// Contract-infallible writers (bytes, strings, hash implementations) are
// allowlisted; anything else needs explicit handling or a justified
// //lint:allow errdiscard annotation.
var ErrDiscard = &Analyzer{
	Name: "errdiscard",
	Doc:  "flag discarded errors on durability/wire-critical calls (Sync, Close, Flush, ...)",
	Run:  runErrDiscard,
}

// criticalNames are the method/function names whose errors guard
// durability or wire correctness.
var criticalNames = map[string]bool{
	"Sync":            true,
	"Close":           true,
	"Flush":           true,
	"Commit":          true,
	"Append":          true,
	"Put":             true,
	"Write":           true,
	"Encode":          true,
	"EncodeTo":        true,
	"RoundTrip":       true,
	"Rename":          true,
	"Truncate":        true,
	"TruncateBefore":  true,
	"WriteCheckpoint": true,
}

// errDiscardAllowPkgs are packages whose Write/Sync-family methods cannot
// fail by contract (their error results exist only to satisfy io
// interfaces).
var errDiscardAllowPkgs = []string{"bytes", "strings", "hash/", "crypto/"}

func runErrDiscard(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.ExprStmt:
				if call, ok := st.X.(*ast.CallExpr); ok {
					checkDiscard(pass, call, "result discarded")
				}
			case *ast.DeferStmt:
				checkDiscard(pass, st.Call, "deferred with result discarded")
			case *ast.AssignStmt:
				checkBlankAssign(pass, st)
			}
			return true
		})
	}
	return nil
}

// criticalErrCall reports whether call targets a critical name and returns
// at least one error; errIdx lists the error result indices.
func criticalErrCall(pass *Pass, call *ast.CallExpr) (fn *types.Func, errIdx []int, ok bool) {
	fn = calleeFunc(pass, call)
	if fn == nil || !criticalNames[fn.Name()] {
		return nil, nil, false
	}
	if pkg := fn.Pkg(); pkg != nil {
		for _, allowed := range errDiscardAllowPkgs {
			if pkg.Path() == allowed || strings.HasPrefix(pkg.Path(), allowed) {
				return nil, nil, false
			}
		}
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil {
		return nil, nil, false
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if isErrorType(res.At(i).Type()) {
			errIdx = append(errIdx, i)
		}
	}
	if len(errIdx) == 0 {
		return nil, nil, false
	}
	return fn, errIdx, true
}

func isErrorType(t types.Type) bool {
	n, ok := t.(*types.Named)
	return ok && n.Obj().Pkg() == nil && n.Obj().Name() == "error"
}

func checkDiscard(pass *Pass, call *ast.CallExpr, how string) {
	fn, _, ok := criticalErrCall(pass, call)
	if !ok {
		return
	}
	pass.Reportf(call.Pos(), "error from %s.%s %s; durability/wire-critical errors must be handled (or //lint:allow errdiscard <reason>)",
		calleePkgName(fn), fn.Name(), how)
}

// checkBlankAssign flags `_ = f.Close()` style assignments where every
// error result lands in a blank identifier.
func checkBlankAssign(pass *Pass, st *ast.AssignStmt) {
	if len(st.Rhs) != 1 {
		return
	}
	call, ok := unparen(st.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	fn, errIdx, ok := criticalErrCall(pass, call)
	if !ok {
		return
	}
	for _, i := range errIdx {
		if i >= len(st.Lhs) {
			return
		}
		if id, ok := unparen(st.Lhs[i]).(*ast.Ident); !ok || id.Name != "_" {
			return
		}
	}
	pass.Reportf(call.Pos(), "error from %s.%s assigned to _; durability/wire-critical errors must be handled (or //lint:allow errdiscard <reason>)",
		calleePkgName(fn), fn.Name())
}
