package lint

import (
	"bufio"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The fixture convention follows x/tools' analysistest: each file under
// testdata/<analyzer>/ is real Go source, and a line that should produce a
// diagnostic carries a trailing
//
//	// want "regexp"
//
// comment. runFixture type-checks the directory as one package, runs a
// single analyzer over it (through Run, so //lint:allow processing is
// exercised too), and requires the produced diagnostics and the want
// annotations to match one-to-one.

type want struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

var wantRe = regexp.MustCompile(`// want "([^"]+)"`)

func runFixture(t *testing.T, a *Analyzer, sub string, deps ...string) {
	t.Helper()
	dir := filepath.Join("testdata", sub)
	pkg, err := LoadDir(dir, "../..", deps...)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run([]*Package{pkg}, []*Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}
	wants := parseWants(t, dir)
	for _, d := range diags {
		if !matchWant(wants, d) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matched %q", w.file, w.line, w.re)
		}
	}
}

// matchWant consumes the first unmatched want at the diagnostic's position
// whose pattern matches its message.
func matchWant(wants []*want, d Diagnostic) bool {
	for _, w := range wants {
		if !w.hit && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
			w.hit = true
			return true
		}
	}
	return false
}

func parseWants(t *testing.T, dir string) []*want {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var wants []*want
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".go" {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			for _, m := range wantRe.FindAllStringSubmatch(sc.Text(), -1) {
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %q: %v", path, line, m[1], err)
				}
				wants = append(wants, &want{file: path, line: line, re: re})
			}
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	return wants
}

func TestNoWallClockFixture(t *testing.T) {
	runFixture(t, NoWallClock, "nowallclock", "time")
}

func TestSeededRandFixture(t *testing.T) {
	runFixture(t, SeededRand, "seededrand", "math/rand", "math/rand/v2")
}

func TestNoGoroutineFixture(t *testing.T) {
	runFixture(t, NoGoroutine, "nogoroutine")
}

func TestMapOrderFixture(t *testing.T) {
	runFixture(t, MapOrder, "maporder", "sort")
}

func TestWireCompleteFixture(t *testing.T) {
	runFixture(t, WireComplete, "wirecomplete")
}

func TestRetrySleepFixture(t *testing.T) {
	runFixture(t, RetrySleep, "retrysleep", "time")
}

func TestLockOrderFixture(t *testing.T) {
	runFixture(t, LockOrder, "lockorder", "sync", "time")
}

func TestGuardedFieldFixture(t *testing.T) {
	runFixture(t, GuardedField, "guardedfield", "sync")
}

func TestErrDiscardFixture(t *testing.T) {
	runFixture(t, ErrDiscard, "errdiscard", "bytes")
}

func TestCtxDeadlineFixture(t *testing.T) {
	runFixture(t, CtxDeadline, "ctxdeadline",
		"tell/internal/env", "tell/internal/resil", "tell/internal/transport")
}

// TestAllowFixture exercises the suppression paths: same-line allow,
// line-above allow, whole-file allow, and an allow naming the wrong
// analyzer (which must not suppress).
func TestAllowFixture(t *testing.T) {
	runFixture(t, NoWallClock, "allow", "time")
}

// TestMalformedAllowDirective: an allow without the mandatory reason is
// itself reported (pseudo-analyzer "lintdirective") and suppresses nothing.
func TestMalformedAllowDirective(t *testing.T) {
	pkg, err := LoadDir(filepath.Join("testdata", "badallow"), "../..", "time")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run([]*Package{pkg}, []*Analyzer{NoWallClock})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 2 {
		t.Fatalf("want 2 diagnostics (malformed directive + unsuppressed finding), got %d:\n%v", len(diags), diags)
	}
	if diags[0].Analyzer != "lintdirective" || !strings.Contains(diags[0].Message, "malformed") {
		t.Errorf("first diagnostic should report the malformed directive, got %s", diags[0])
	}
	if diags[1].Analyzer != "nowallclock" {
		t.Errorf("the malformed allow must not suppress; got %s", diags[1])
	}
}

// TestEnginePackageScope pins the analyzer scoping rules.
func TestEnginePackageScope(t *testing.T) {
	cases := map[string]bool{
		"tell/internal/core":        true,
		"tell/internal/store":       true,
		"tell/internal/wire":        true,
		"tell/internal/sim":         false,
		"tell/internal/env":         false,
		"tell/internal/testutil":    false,
		"tell/internal/lint":        false,
		"tell":                      false,
		"tell/cmd/telld":            false,
		"other/internal/thing":      false,
		"tell/internal/sim/nothing": false,
	}
	for path, wantIn := range cases {
		if got := EnginePackage(path); got != wantIn {
			t.Errorf("EnginePackage(%q) = %v, want %v", path, got, wantIn)
		}
	}
	if ByName("maporder") == nil || ByName("nope") != nil {
		t.Error("ByName lookup broken")
	}
}
