package chaos_test

import (
	"math/rand"
	"testing"
	"time"

	"tell/internal/chaos"
	"tell/internal/core"
	"tell/internal/env"
	"tell/internal/relational"
	"tell/internal/sim"
	"tell/internal/tpcc"
	"tell/internal/transport"
)

// tpccScenarios is the reduced fault grid for the heavier TPC-C workload:
// one storage failure, one commit-manager failure, and an always-on lossy
// network cover the three distinct recovery paths.
func tpccScenarios(at time.Duration) []scenario {
	return []scenario{
		{"storage-crash", at, func(r *rig) chaos.Plan { return chaos.StorageCrash("sn1", at) }},
		{"cm-failover", at, func(r *rig) chaos.Plan { return chaos.CMFailover("cm0", at) }},
		{"flaky-network", 0, func(r *rig) chaos.Plan {
			return chaos.FlakyNetwork(0.003, 0.003, 200*time.Microsecond)
		}},
		// Duplicate + drop the mutating kinds only (store writes, grouped CM
		// starts): the TPC-C consistency check (d_next_o_id vs max(o_id))
		// would catch a double-applied NewOrder immediately.
		{"dup-mutations", 0, func(r *rig) chaos.Plan {
			return chaos.DupMutations(0.005, 0.015, 200*time.Microsecond)
		}},
	}
}

// TestTPCCChaosMatrix drives the standard TPC-C mix through retry-tolerant
// terminals while faults strike. Every cell must keep committing after the
// fault, record an anomaly-free history, and satisfy TPC-C consistency
// condition 1&3 (clause 3.3.2: d_next_o_id - 1 == max(o_id) per district).
func TestTPCCChaosMatrix(t *testing.T) {
	for _, class := range networkClasses() {
		at := 60 * time.Millisecond
		if class.Name == transport.InfiniBand().Name {
			at = 15 * time.Millisecond
		}
		for _, sc := range tpccScenarios(at) {
			class, sc := class, sc
			t.Run(class.Name+"/"+sc.name, func(t *testing.T) {
				runTpccCell(t, class, sc)
			})
		}
	}
}

// issueTx dispatches one generated transaction to the engine (the chaos
// harness drives engines directly: the stock tpcc.Driver terminals stop on
// the first infrastructure error, which under fault injection is the point).
func issueTx(ctx env.Ctx, e tpcc.Engine, tt tpcc.TxType, input any) (bool, error) {
	switch tt {
	case tpcc.TxNewOrder:
		return e.NewOrder(ctx, input.(*tpcc.NewOrderInput))
	case tpcc.TxPayment:
		return e.Payment(ctx, input.(*tpcc.PaymentInput))
	case tpcc.TxOrderStatus:
		return e.OrderStatus(ctx, input.(*tpcc.OrderStatusInput))
	case tpcc.TxDelivery:
		return e.Delivery(ctx, input.(*tpcc.DeliveryInput))
	default:
		return e.StockLevel(ctx, input.(*tpcc.StockLevelInput))
	}
}

func runTpccCell(t *testing.T, class transport.NetworkClass, sc scenario) {
	seed := cellSeed(t, "tpcc", class.Name, sc.name)
	runTpccCellOn(t, newRig(t, seed, class, false), class, sc, seed)
}

func runTpccCellOn(t *testing.T, r *rig, class transport.NetworkClass, sc scenario, seed int64) {
	cfg := tpcc.Config{Warehouses: 2, Scale: 0.02, Seed: seed}
	loaded, err := tpcc.Load(r.cluster, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg = loaded.Config
	inj := chaos.Install(r.k, r.net, sc.plan(r), seed)
	r.wireNodeHooks(inj)
	defer inj.Uninstall()

	const terminals = 4
	const txPerTerminal = 30
	finished := 0
	committed := 0
	commitsAfterFault := 0

	r.driver.Go("tpcc", func(ctx env.Ctx) {
		// BulkLoad writes straight into the memtables, bypassing the WAL;
		// on a durable rig, checkpoint the loaded state first so a crash
		// can rebuild the initial database from the blob tier.
		if r.rec != nil {
			if err := r.cluster.CheckpointAll(ctx); err != nil {
				t.Errorf("checkpoint after load: %v", err)
				r.k.Stop()
				return
			}
		}
		for term := 0; term < terminals; term++ {
			term := term
			pn := r.pns[term%len(r.pns)]
			r.driver.Go("terminal", func(ctx env.Ctx) {
				defer func() { finished++ }()
				// Engine construction opens the catalog; always-on plans
				// are already dropping packets, so retry.
				var eng tpcc.Engine
				for attempt := 0; ; attempt++ {
					var err error
					eng, err = tpcc.NewTellEngine(ctx, pn)
					if err == nil {
						break
					}
					if attempt > 20 {
						t.Errorf("terminal %d: engine: %v", term, err)
						return
					}
					ctx.Sleep(10 * time.Millisecond)
				}
				w := (term % cfg.Warehouses) + 1
				d := (term/cfg.Warehouses)%tpcc.DistrictsPerWarehouse + 1
				rng := rand.New(rand.NewSource(seed + int64(term)*7919))
				gen := tpcc.NewInputGen(cfg, tpcc.StandardMix(), w, d, rng)
				for i := 0; i < txPerTerminal; i++ {
					tt, input := gen.Next()
					// Unlike the benchmark driver, retry infrastructure
					// errors: under injected faults they are expected, and
					// the cell asserts the system works through them.
					for attempt := 0; attempt < 40; attempt++ {
						ok, err := issueTx(ctx, eng, tt, input)
						if err == nil {
							if ok {
								committed++
								if ctx.Now() > sc.faultAt {
									commitsAfterFault++
								}
							}
							break
						}
						ctx.Sleep(5 * time.Millisecond)
					}
				}
			})
		}

		for finished < terminals {
			ctx.Sleep(5 * time.Millisecond)
		}
		ctx.Sleep(300 * time.Millisecond) // let recovery settle

		// TPC-C consistency 1&3 (clause 3.3.2), checked across every
		// district with retries: d_next_o_id - 1 == max(o_id).
		checked := false
		var lastErr error
		for attempt := 0; attempt < 20 && !checked; attempt++ {
			lastErr = checkDistricts(ctx, t, r.pns[0], cfg)
			checked = lastErr == nil
			if !checked {
				ctx.Sleep(10 * time.Millisecond)
			}
		}
		if !checked {
			t.Errorf("district consistency unverifiable: %v", lastErr)
		}
		r.k.Stop()
	})
	if err := r.k.RunUntil(sim.Time(3000 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if finished != terminals {
		t.Fatalf("only %d/%d terminals finished", finished, terminals)
	}
	if committed == 0 {
		t.Error("nothing committed")
	}
	if commitsAfterFault == 0 {
		t.Errorf("no transactions committed after the fault at %v (availability lost)", sc.faultAt)
	}
	rep := r.hist.Check()
	if !rep.Ok() {
		t.Errorf("history anomalies under %s/%s:\n%s", class.Name, sc.name, rep)
	}
	drops, dups, delays := inj.Stats()
	t.Logf("%s/%s: seed=%d committed=%d afterFault=%d faults(drop=%d dup=%d delay=%d)\n%s",
		class.Name, sc.name, seed, committed, commitsAfterFault, drops, dups, delays, rep)
	r.k.Shutdown()
}

// checkDistricts verifies d_next_o_id - 1 == max(o_id) for every district.
// An assertion mismatch fails the test immediately; infrastructure errors
// are returned so the caller can retry while recovery is still settling.
func checkDistricts(ctx env.Ctx, t *testing.T, pn *core.PN, cfg tpcc.Config) error {
	dist, err := pn.Catalog().OpenTable(ctx, tpcc.TDistrict)
	if err != nil {
		return err
	}
	ords, err := pn.Catalog().OpenTable(ctx, tpcc.TOrders)
	if err != nil {
		return err
	}
	txn, err := pn.Begin(ctx)
	if err != nil {
		return err
	}
	defer txn.Commit(ctx)
	for w := 1; w <= cfg.Warehouses; w++ {
		for d := 1; d <= tpcc.DistrictsPerWarehouse; d++ {
			_, dRow, found, err := txn.LookupPK(ctx, dist,
				relational.I64(int64(w)), relational.I64(int64(d)))
			if err != nil {
				return err
			}
			if !found {
				t.Fatalf("district %d/%d missing", w, d)
			}
			var maxO int64
			err = txn.ScanPK(ctx, ords,
				[]relational.Value{relational.I64(int64(w)), relational.I64(int64(d))},
				[]relational.Value{relational.I64(int64(w)), relational.I64(int64(d + 1))},
				func(e core.IndexEntry) bool {
					if e.Row[tpcc.OID].I > maxO {
						maxO = e.Row[tpcc.OID].I
					}
					return true
				})
			if err != nil {
				return err
			}
			if dRow[tpcc.DNextOID].I != maxO+1 {
				t.Fatalf("w%d d%d: next_o_id=%d max(o_id)=%d",
					w, d, dRow[tpcc.DNextOID].I, maxO)
			}
		}
	}
	return nil
}
