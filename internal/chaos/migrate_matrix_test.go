package chaos_test

import (
	"fmt"
	"testing"
	"time"

	"tell/internal/chaos"
	"tell/internal/durable"
	"tell/internal/env"
	"tell/internal/store"
	"tell/internal/transport"
)

// Migration chaos cells: a live range migration is in flight while a crash
// strikes one of the three parties (source master, target, coordinating
// manager). Whatever the boundary, the range must end on exactly one owner
// with zero SI anomalies and zero committed-data loss — the standard bank
// and TPC-C cell assertions apply unchanged on top of the per-cell checks.
//
// The copy phase is widened deterministically so the kill lands inside the
// protocol: the migrated partition is bulk-filled past one transfer chunk
// and the source's inter-chunk throttle is raised, giving a multi-
// millisecond copy window at a known virtual time.

// migKill names which party dies mid-migration.
type migKill int

const (
	killSource migKill = iota
	killTarget
	killManager
)

type migCell struct {
	name string
	kill migKill
}

func migCells() []migCell {
	return []migCell{
		{"kill-source-mid-migration", killSource},
		{"kill-target-mid-migration", killTarget},
		{"kill-manager-at-cutover", killManager},
	}
}

// migStart is when the coordinator begins the migration; crashes strike
// midway through the widened copy phase.
const migStart = 6 * time.Millisecond
const migCrashAt = migStart + 12*time.Millisecond

// migProbe observes one scripted migration from the outside: the
// coordinator's result, and (for the manager-kill cell) the recovery
// manager that resolved the orphaned journal.
type migProbe struct {
	pid      uint64
	src, dst string
	err      error
	done     bool
	recovery *store.Manager
}

// launchMigration scripts the cell's migration on the manager's node: fill
// the store so the copy spans multiple throttled chunks, then migrate a
// range off sn1 onto sn2 at migStart. For the manager-kill cell the
// coordinator abandons at the cutover commit point and a fresh manager
// later adopts the journal.
func launchMigration(t *testing.T, r *rig, kill migKill, fill int) *migProbe {
	t.Helper()
	mgr := r.cluster.Manager
	journal := durable.NewMem()
	mgr.SetJournal(journal)

	for i := 0; i < fill; i++ {
		key := fmt.Sprintf("fill%05d", i)
		if err := r.cluster.BulkLoad([]byte(key), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if kill != killManager {
		// Widen the copy window so the node kill lands inside it. The manager
		// kill is emulated at the journal boundary and needs no widening — a
		// throttled copy there only starves the delta phase under TPC-C's
		// write rate.
		for _, addr := range r.cluster.Addrs() {
			r.cluster.Node(addr).MigrateChunkDelay = 25 * time.Millisecond
		}
	}

	p := &migProbe{}
	for _, part := range mgr.Map().Partitions {
		if part.Master == "sn1" {
			p.pid, p.src, p.dst = part.ID, "sn1", "sn2"
			break
		}
	}
	if p.src == "" {
		t.Fatal("no partition mastered by sn1")
	}
	reachedCutover := false
	if kill == killManager {
		// "Die" at the commit point: the cutover record is durable but the
		// new map is never installed or published, and the fence stays up.
		mgr.OnCutoverJournaled = func(uint64) bool { reachedCutover = true; return false }
	}

	mgr.Node().Go("migration-driver", func(ctx env.Ctx) {
		// The filler bypassed the WAL; on a durable rig checkpoint it so the
		// crashed node's recovery rebuilds a complete image.
		if fill > 0 && r.rec != nil {
			if err := r.cluster.CheckpointAll(ctx); err != nil {
				t.Errorf("checkpoint after fill: %v", err)
			}
		}
		if now := ctx.Now(); now < migStart {
			ctx.Sleep(migStart - now)
		}
		if kill != killManager {
			p.err = mgr.MigratePartition(ctx, p.pid, p.dst)
			p.done = true
			return
		}
		// Under live write traffic the delta phase may legitimately refuse to
		// settle and abort; keep retrying until an attempt reaches the cutover
		// commit point, where the hook abandons the coordinator.
		for attempt := 0; attempt < 40 && !reachedCutover; attempt++ {
			if attempt > 0 {
				ctx.Sleep(30 * time.Millisecond)
			}
			p.err = mgr.MigratePartition(ctx, p.pid, p.dst)
		}
		p.done = true
		if !reachedCutover {
			t.Errorf("no migration attempt reached the cutover commit point (last err: %v)", p.err)
			return
		}
		// The dead coordinator left the fence up and the journal at cutover.
		// A fresh manager adopting the journal must finish the migration:
		// republish the committed map and release the fence, while the bank
		// workers ride out the fenced window on their retry budget.
		ctx.Sleep(60 * time.Millisecond)
		m2 := store.NewManager("mgmt-r", r.envr, r.envr.NewNode("mgmt-r", 2), r.net)
		m2.SetMap(mgr.Map())
		m2.SetJournal(journal)
		if err := m2.ResolveJournal(ctx); err != nil {
			t.Errorf("resolve journal: %v", err)
		}
		p.recovery = m2
	})
	return p
}

// checkProbe asserts the per-cell migration outcome after the workload run.
func checkProbe(t *testing.T, p *migProbe, kill migKill) {
	t.Helper()
	if !p.done {
		t.Fatal("migration coordinator never returned")
	}
	switch kill {
	case killSource, killTarget:
		// The kill lands inside the copy window, so the migration must have
		// been disrupted and aborted — if it completed, the cell's timing no
		// longer exercises a mid-migration crash.
		if p.err == nil {
			t.Errorf("migration of range %d completed despite the crash; expected an abort", p.pid)
		}
	case killManager:
		if p.err == nil {
			t.Error("abandoned coordinator reported success")
		}
		if p.recovery == nil {
			t.Fatal("recovery manager never resolved the journal")
		}
		// Exactly one owner, and it is the journaled cutover's target.
		pm := p.recovery.Map()
		for _, part := range pm.Partitions {
			if part.ID == p.pid && part.Master != p.dst {
				t.Errorf("range %d master = %s after journal resolution, want %s",
					p.pid, part.Master, p.dst)
			}
		}
	}
}

// migPlan builds the fault plan for a cell: crash-and-restart the killed
// storage node, or no network-level faults for the manager kill (the
// coordinator's death is emulated at the journal boundary).
func migPlan(p *migProbe, kill migKill) (chaos.Plan, time.Duration) {
	switch kill {
	case killSource:
		return chaos.CrashRestartWithDisk(p.src, migCrashAt, 250*time.Millisecond), migCrashAt
	case killTarget:
		return chaos.CrashRestartWithDisk(p.dst, migCrashAt, 250*time.Millisecond), migCrashAt
	default:
		return chaos.NoFaults(), migStart
	}
}

// TestBankMigrationChaos runs the bank workload across the three migration
// crash boundaries at RF 2 with the durable tier attached.
func TestBankMigrationChaos(t *testing.T) {
	class := transport.InfiniBand()
	for _, c := range migCells() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			seed := cellSeed(t, "bank-mig", class.Name, c.name)
			r := newDurableRig(t, seed, class, 2)
			// Push the migrated partition past one transfer chunk so the
			// copy needs a second, throttled pass.
			p := launchMigration(t, r, c.kill, 4200)
			plan, faultAt := migPlan(p, c.kill)
			sc := scenario{name: c.name, faultAt: faultAt,
				plan: func(*rig) chaos.Plan { return plan }}
			runBankCellOn(t, r, class, sc, seed)
			checkProbe(t, p, c.kill)
		})
	}
}

// TestTPCCMigrationChaos repeats the three boundaries under TPC-C: the
// loaded warehouses already exceed one transfer chunk per partition, so no
// filler is needed, and the district consistency check replaces the bank's
// conservation invariant.
func TestTPCCMigrationChaos(t *testing.T) {
	class := transport.InfiniBand()
	for _, c := range migCells() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			seed := cellSeed(t, "tpcc-mig", class.Name, c.name)
			r := newDurableRig(t, seed, class, 2)
			p := launchMigration(t, r, c.kill, 0)
			plan, faultAt := migPlan(p, c.kill)
			sc := scenario{name: c.name, faultAt: faultAt,
				plan: func(*rig) chaos.Plan { return plan }}
			runTpccCellOn(t, r, class, sc, seed)
			checkProbe(t, p, c.kill)
		})
	}
}
