// Package chaos is a deterministic fault-injection layer for simulated Tell
// deployments. A Plan declares what goes wrong and when — node crashes and
// restarts, network partitions and heals, and random per-message faults
// (drop, delay, duplication) — and an Injector installs it into the
// discrete-event kernel and the simulated network. Because the simulator is
// deterministic, a plan plus a seed always reproduces the same failure
// schedule, message casualties included: a failing chaos test replays
// exactly from its printed seed.
//
// Timed events ride on sim.Kernel.After; per-message faults hook into
// transport.SimNet via SetFaultFn. Crashing a storage node exercises the
// store's failure detector and replica failover; crashing a commit manager
// exercises the PN client's manager rotation (§4.4); delaying only
// wire.KindReplicate messages models replica lag.
package chaos

import (
	"fmt"
	"math/rand"
	"time"

	"tell/internal/sim"
	"tell/internal/transport"
	"tell/internal/wire"
)

// EventKind is a scheduled fault transition.
type EventKind int

const (
	// Crash makes the target endpoint unreachable: requests to it and
	// responses from it time out. The process keeps running (it is the
	// network's view that dies), which models both a crashed machine and
	// a machine cut off from the cluster.
	Crash EventKind = iota
	// Restart makes a crashed endpoint reachable again.
	Restart
	// Partition splits the named groups from each other: messages
	// between endpoints in different groups are dropped. Endpoints not
	// named in any group communicate freely with everyone.
	Partition
	// Heal removes the partition.
	Heal
	// CrashWithDisk kills the target's process — volatile state is lost
	// but its durable log and checkpoints survive (NodeHooks.Crash with
	// loseDisk=false) — and takes it off the network.
	CrashWithDisk
	// CrashLosingDisk kills the process AND wipes its durable namespace:
	// the node comes back amnesiac, forcing log-based recovery on peers.
	CrashLosingDisk
	// RestartRecover brings the process back on the network and starts
	// local replay (NodeHooks.Restart); the node refuses service until the
	// replay completes.
	RestartRecover
)

func (k EventKind) String() string {
	switch k {
	case Crash:
		return "crash"
	case Restart:
		return "restart"
	case Partition:
		return "partition"
	case Heal:
		return "heal"
	case CrashWithDisk:
		return "crash-with-disk"
	case CrashLosingDisk:
		return "crash-losing-disk"
	case RestartRecover:
		return "restart-recover"
	}
	return "?"
}

// Event is one scheduled fault transition.
type Event struct {
	// At is when the event fires, in virtual time since Install.
	At   time.Duration
	Kind EventKind
	// Target is the endpoint to crash or restart.
	Target string
	// Groups are the partition sides (Partition events only).
	Groups [][]string
}

// MessageFaults is a random per-message fault source. Probabilities are
// evaluated independently per message leg (request and response count
// separately) against the injector's seeded RNG. A duplicated leg's extra
// copy is passed through the injector again by the transport — so
// duplication composes with drop and delay (the duplicate itself can be
// lost or delayed) — with the copy's own Duplicate verdict ignored, which
// bounds every leg at one extra delivery. The extra draw happens exactly
// when a duplication fires, so schedules stay seed-stable.
type MessageFaults struct {
	// DropProb loses the leg entirely.
	DropProb float64
	// DupProb delivers the leg twice.
	DupProb float64
	// DelayProb adds a uniform random delay in (0, MaxDelay] to the leg.
	DelayProb float64
	MaxDelay  time.Duration
	// Addrs restricts the faults to legs whose source or destination is
	// listed (nil = every leg).
	Addrs []string
	// Kinds restricts the faults to the listed wire protocol kinds
	// (nil = every kind). {wire.KindReplicate} models replica lag.
	Kinds []wire.Kind
	// After suppresses the faults before this virtual time, Until after
	// it (zero Until = forever).
	After, Until time.Duration
}

func (m *MessageFaults) matches(src, dst string, payload []byte, now time.Duration) bool {
	if now < m.After || (m.Until > 0 && now >= m.Until) {
		return false
	}
	if m.Kinds != nil {
		k := wire.PeekKind(payload)
		ok := false
		for _, want := range m.Kinds {
			if k == want {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	if m.Addrs != nil {
		ok := false
		for _, a := range m.Addrs {
			if src == a || dst == a {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// Plan is a declarative fault schedule.
type Plan struct {
	// Name labels the plan in test output.
	Name string
	// Events are timed transitions, in any order.
	Events []Event
	// Msg are random per-message fault sources, all consulted per leg.
	Msg []MessageFaults
}

// Injector is an installed Plan. It also exposes the fault transitions as
// manual calls so tests can trigger them at data-dependent moments.
type Injector struct {
	k   *sim.Kernel
	net *transport.SimNet
	rng *rand.Rand

	plan Plan
	// group maps a partitioned endpoint to its side; empty = no
	// partition in force.
	group map[string]int
	// hooks connect process-level crash/restart events to the application
	// (storage nodes with durable state); nil hooks degrade those events
	// to plain network-level crash/restart.
	hooks NodeHooks

	drops, dups, delays uint64
}

// NodeHooks are the application-side callbacks for process-level faults.
// Crash must atomically discard the node's volatile state (and its durable
// namespace when loseDisk); Restart must start the node's local recovery.
// Both are called on the kernel goroutine and must not block.
type NodeHooks struct {
	Crash   func(addr string, loseDisk bool)
	Restart func(addr string)
}

// Install wires plan into the kernel and network. The injector draws all
// randomness from its own rand.Rand seeded with seed, so the same plan,
// seed and workload replay the same faults. Install may be called before
// the simulation starts or from within it.
func Install(k *sim.Kernel, net *transport.SimNet, plan Plan, seed int64) *Injector {
	in := &Injector{
		k:     k,
		net:   net,
		rng:   rand.New(rand.NewSource(seed)),
		plan:  plan,
		group: make(map[string]int),
	}
	net.SetFaultFn(in.fault)
	for _, ev := range plan.Events {
		ev := ev
		k.After(ev.At, func() { in.apply(ev) })
	}
	return in
}

// Uninstall removes the injector's network hook (scheduled events that have
// not fired yet still fire).
func (in *Injector) Uninstall() { in.net.SetFaultFn(nil) }

// Stats returns how many message legs were dropped, duplicated and delayed.
func (in *Injector) Stats() (drops, dups, delays uint64) {
	return in.drops, in.dups, in.delays
}

// SetNodeHooks installs process-level crash/restart callbacks.
func (in *Injector) SetNodeHooks(h NodeHooks) { in.hooks = h }

func (in *Injector) apply(ev Event) {
	switch ev.Kind {
	case Crash:
		in.CrashNode(ev.Target)
	case Restart:
		in.RestartNode(ev.Target)
	case Partition:
		in.PartitionNet(ev.Groups...)
	case Heal:
		in.HealNet()
	case CrashWithDisk:
		in.CrashProcess(ev.Target, false)
	case CrashLosingDisk:
		in.CrashProcess(ev.Target, true)
	case RestartRecover:
		in.RestartProcess(ev.Target)
	}
}

// CrashNode makes addr unreachable immediately.
func (in *Injector) CrashNode(addr string) { in.net.SetDown(addr, true) }

// RestartNode makes addr reachable again.
func (in *Injector) RestartNode(addr string) { in.net.SetDown(addr, false) }

// CrashProcess kills addr's process: volatile state is discarded through the
// node hooks (durable namespace too when loseDisk) and the endpoint drops
// off the network.
func (in *Injector) CrashProcess(addr string, loseDisk bool) {
	if in.hooks.Crash != nil {
		in.hooks.Crash(addr, loseDisk)
	}
	in.net.SetDown(addr, true)
}

// RestartProcess brings addr back on the network and starts its local
// recovery; until the replay completes the node answers Unavailable.
func (in *Injector) RestartProcess(addr string) {
	in.net.SetDown(addr, false)
	if in.hooks.Restart != nil {
		in.hooks.Restart(addr)
	}
}

// PartitionNet installs a partition between the given groups.
func (in *Injector) PartitionNet(groups ...[]string) {
	in.group = make(map[string]int)
	for i, g := range groups {
		for _, a := range g {
			in.group[a] = i
		}
	}
}

// HealNet removes any partition.
func (in *Injector) HealNet() { in.group = map[string]int{} }

// fault is the transport.FaultFn: partition first, then the plan's random
// message-fault sources. It runs on the kernel goroutine.
func (in *Injector) fault(src, dst string, payload []byte) transport.Fault {
	var f transport.Fault
	if len(in.group) > 0 {
		gs, okS := in.group[src]
		gd, okD := in.group[dst]
		if okS && okD && gs != gd {
			in.drops++
			return transport.Fault{Drop: true}
		}
	}
	now := in.k.Now().Duration()
	for i := range in.plan.Msg {
		m := &in.plan.Msg[i]
		if !m.matches(src, dst, payload, now) {
			continue
		}
		if m.DropProb > 0 && in.rng.Float64() < m.DropProb {
			in.drops++
			return transport.Fault{Drop: true}
		}
		if m.DupProb > 0 && in.rng.Float64() < m.DupProb {
			f.Duplicate = true
			in.dups++
		}
		if m.DelayProb > 0 && m.MaxDelay > 0 && in.rng.Float64() < m.DelayProb {
			f.Delay += time.Duration(1 + in.rng.Int63n(int64(m.MaxDelay)))
			in.delays++
		}
	}
	return f
}

// String renders the plan for test logs.
func (p Plan) String() string {
	return fmt.Sprintf("plan %q: %d events, %d message-fault sources", p.Name, len(p.Events), len(p.Msg))
}
