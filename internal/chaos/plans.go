package chaos

import (
	"time"

	"tell/internal/wire"
)

// Canned fault plans used by the chaos test matrix. Each returns a Plan
// parameterised on the deployment's addresses; tests combine them with
// network classes and seeds.

// NoFaults is the control plan.
func NoFaults() Plan { return Plan{Name: "none"} }

// StorageCrash kills one storage node at the given time. With RF ≥ 2 the
// manager fails its partitions over to replicas; with a spare provisioned
// the replication level is restored.
func StorageCrash(addr string, at time.Duration) Plan {
	return Plan{
		Name:   "storage-crash",
		Events: []Event{{At: at, Kind: Crash, Target: addr}},
	}
}

// StorageCrashRestart kills a storage node and brings it back later. The
// restarted node has been failed out of the partition map, so the rejoin
// must not corrupt state (stale master syndrome).
func StorageCrashRestart(addr string, crashAt, restartAt time.Duration) Plan {
	return Plan{
		Name: "storage-crash-restart",
		Events: []Event{
			{At: crashAt, Kind: Crash, Target: addr},
			{At: restartAt, Kind: Restart, Target: addr},
		},
	}
}

// CrashRestartWithDisk kills a storage node's process (volatile state lost,
// durable log kept) and restarts it later; the restart replays checkpoint +
// WAL before serving. Requires NodeHooks wired to the store's
// CrashVolatile/RecoverAsync.
func CrashRestartWithDisk(addr string, crashAt, restartAt time.Duration) Plan {
	return Plan{
		Name: "crash-restart-disk",
		Events: []Event{
			{At: crashAt, Kind: CrashWithDisk, Target: addr},
			{At: restartAt, Kind: RestartRecover, Target: addr},
		},
	}
}

// CrashLoseDisk kills a storage node's process and wipes its durable
// namespace: nothing local survives, so the cluster must rebuild the node's
// partitions from replicas or scatter-gather log recovery on the survivors.
func CrashLoseDisk(addr string, at time.Duration) Plan {
	return Plan{
		Name:   "crash-lose-disk",
		Events: []Event{{At: at, Kind: CrashLosingDisk, Target: addr}},
	}
}

// CMFailover kills one commit manager mid-run; PN clients must rotate to a
// surviving manager (§4.4.3).
func CMFailover(addr string, at time.Duration) Plan {
	return Plan{
		Name:   "cm-failover",
		Events: []Event{{At: at, Kind: Crash, Target: addr}},
	}
}

// PartitionHeal splits the endpoints into two sides for a window, then
// heals. While the partition is in force, cross-side messages are dropped.
func PartitionHeal(sideA, sideB []string, at, healAt time.Duration) Plan {
	return Plan{
		Name: "partition-heal",
		Events: []Event{
			{At: at, Kind: Partition, Groups: [][]string{sideA, sideB}},
			{At: healAt, Kind: Heal},
		},
	}
}

// FlakyNetwork drops, duplicates and delays a small fraction of every
// message leg for the whole run.
func FlakyNetwork(dropProb, dupProb float64, maxDelay time.Duration) Plan {
	return Plan{
		Name: "flaky-network",
		Msg: []MessageFaults{{
			DropProb:  dropProb,
			DupProb:   dupProb,
			DelayProb: 0.05,
			MaxDelay:  maxDelay,
		}},
	}
}

// DupMutations drops and duplicates only the mutating message kinds: store
// requests (writes ride wire.KindStoreReq) and commit-manager traffic
// (grouped transaction starts ride wire.KindCMReq). A duplicated store write
// or StartGroup that re-executes would double-apply money or leak a second
// tid allocation — this plan exists to prove the idempotency-token dedup
// actually delivers exactly-once under duplication + retry.
func DupMutations(dropProb, dupProb float64, maxDelay time.Duration) Plan {
	return Plan{
		Name: "dup-mutations",
		Msg: []MessageFaults{{
			DropProb:  dropProb,
			DupProb:   dupProb,
			DelayProb: 0.05,
			MaxDelay:  maxDelay,
			Kinds:     []wire.Kind{wire.KindStoreReq, wire.KindCMReq},
		}},
	}
}

// ReplicaLag delays every master→replica mutation stream, so replicas trail
// their masters; a failover promotes a replica that may be mid-catch-up.
func ReplicaLag(maxDelay time.Duration) Plan {
	return Plan{
		Name: "replica-lag",
		Msg: []MessageFaults{{
			DelayProb: 1,
			MaxDelay:  maxDelay,
			Kinds:     []wire.Kind{wire.KindReplicate},
		}},
	}
}

// ReplicaLagWithFailover combines replica lag with a storage-node crash:
// the promoted replica took over while lagging, which is exactly when
// acknowledged writes are easiest to lose.
func ReplicaLagWithFailover(addr string, at time.Duration, maxDelay time.Duration) Plan {
	p := ReplicaLag(maxDelay)
	p.Name = "replica-lag+failover"
	p.Events = []Event{{At: at, Kind: Crash, Target: addr}}
	return p
}
