package chaos_test

import (
	"testing"
	"time"

	"tell/internal/chaos"
	"tell/internal/transport"
)

// durableCell is one row of the durability-tier grid: a process-level fault
// plan plus the replication factor it should run against. RF 1 makes the
// WAL + scatter-gather path load-bearing (there is no replica to promote);
// RF 2 checks the durable tier coexists with ordinary replica failover.
type durableCell struct {
	scenario
	rf int
}

func durableCells(at time.Duration) []durableCell {
	return []durableCell{
		// Process dies, disk survives. At RF 1 the manager's only way back
		// is scatter-gather log recovery onto the survivors; the restarted
		// node replays locally but stays failed out of the partition map.
		{scenario{"crash-restart-disk", at, func(r *rig) chaos.Plan {
			return chaos.CrashRestartWithDisk("sn1", at, at+200*time.Millisecond)
		}}, 1},
		// Process dies AND its durable namespace is wiped: nothing to
		// scatter-gather, so the replicas must carry the partitions — and
		// the amnesiac node must not resurrect stale state.
		{scenario{"crash-lose-disk", at, func(r *rig) chaos.Plan {
			return chaos.CrashLoseDisk("sn1", at)
		}}, 2},
	}
}

// TestBankDurableChaosMatrix runs the bank transfer workload on WAL-backed
// storage nodes while a process-level crash strikes. Cells assert exactly
// what the plain matrix does — zero committed-data loss (conservation in the
// store and in the recorded history), zero SI anomalies, and commits after
// the fault — except here surviving the fault requires checkpoint + log
// replay rather than a live replica.
func TestBankDurableChaosMatrix(t *testing.T) {
	for _, class := range networkClasses() {
		at := 30 * time.Millisecond
		if class.Name == transport.InfiniBand().Name {
			at = 8 * time.Millisecond
		}
		for _, cell := range durableCells(at) {
			class, cell := class, cell
			t.Run(class.Name+"/"+cell.name, func(t *testing.T) {
				seed := cellSeed(t, "bank-durable", class.Name, cell.name)
				r := newDurableRig(t, seed, class, cell.rf)
				runBankCellOn(t, r, class, cell.scenario, seed)
			})
		}
	}
}

// TestTPCCDurableChaosMatrix drives the TPC-C mix through a crash that
// destroys a storage node's volatile state at RF 1: every committed NewOrder
// on the dead node exists only in its WAL, so the district consistency check
// (d_next_o_id - 1 == max(o_id)) fails if replay loses or duplicates one.
func TestTPCCDurableChaosMatrix(t *testing.T) {
	for _, class := range networkClasses() {
		at := 60 * time.Millisecond
		if class.Name == transport.InfiniBand().Name {
			at = 15 * time.Millisecond
		}
		class := class
		sc := scenario{"crash-restart-disk", at, func(r *rig) chaos.Plan {
			return chaos.CrashRestartWithDisk("sn1", at, at+200*time.Millisecond)
		}}
		t.Run(class.Name+"/"+sc.name, func(t *testing.T) {
			seed := cellSeed(t, "tpcc-durable", class.Name, sc.name)
			r := newDurableRig(t, seed, class, 1)
			runTpccCellOn(t, r, class, sc, seed)
		})
	}
}
